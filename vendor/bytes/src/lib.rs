//! Offline stand-in for the [`bytes`](https://docs.rs/bytes) crate.
//!
//! The smapp workspace is built in an environment with no access to
//! crates.io, so this vendored crate re-implements the (small) subset of
//! the `bytes` 1.x API that the workspace actually uses, with the same
//! semantics:
//!
//! * [`Bytes`] — a cheaply cloneable, immutable, reference-counted byte
//!   buffer supporting zero-copy [`Bytes::slice`].
//! * [`BytesMut`] — a growable buffer that can be frozen into [`Bytes`].
//! * [`BufMut`] — the append-style writer trait (`put_u8`, `put_u16`, …)
//!   implemented by [`BytesMut`] and `Vec<u8>`.
//!
//! Only drop-in-compatible behaviour is provided; anything this workspace
//! does not call is intentionally absent.

#![warn(missing_docs)]

use std::borrow::Borrow;
use std::cell::RefCell;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::mem;
use std::ops::{Bound, Deref, DerefMut, RangeBounds};
use std::sync::{Arc, OnceLock};

/// Buffers above this capacity are dropped rather than pooled: the
/// simulator's packets top out around the MTU, so hoarding one-off large
/// buffers (whole-stream send-buffer chunks) would only waste memory.
const POOL_MAX_CAP: usize = 1 << 16;
/// Upper bound on pooled buffers per thread. Steady-state packet traffic
/// needs tens of buffers (one per packet in flight inside a single event
/// step); the bound only caps pathological churn.
const POOL_MAX_BUFS: usize = 1024;

thread_local! {
    /// Per-thread free list of retired backing buffers.
    ///
    /// Stored as `Arc<Vec<u8>>` with strong count 1, so a recycled buffer
    /// reuses *both* allocations a `BytesMut::with_capacity` + `freeze`
    /// round trip would otherwise make (the byte storage and the Arc
    /// control block). Thread-local means no locking on the hot path; a
    /// buffer freed on a different thread than it was allocated on simply
    /// joins that thread's pool.
    static POOL: RefCell<Vec<Arc<Vec<u8>>>> = const { RefCell::new(Vec::new()) };
}

/// Pop a recycled buffer with at least `cap` capacity, or allocate.
fn pool_get(cap: usize) -> Arc<Vec<u8>> {
    if cap <= POOL_MAX_CAP {
        let popped = POOL.with(|p| p.borrow_mut().pop());
        if let Some(mut arc) = popped {
            let v = Arc::get_mut(&mut arc).expect("pooled buffer is uniquely owned");
            v.clear();
            // May grow a smaller recycled buffer; after warm-up the pool
            // converges on packet-sized capacities and this is free.
            v.reserve(cap);
            return arc;
        }
    }
    Arc::new(Vec::with_capacity(cap))
}

/// Retire a backing buffer into the thread-local pool, if worth keeping.
fn pool_put(mut arc: Arc<Vec<u8>>) {
    if let Some(v) = Arc::get_mut(&mut arc) {
        if v.capacity() == 0 || v.capacity() > POOL_MAX_CAP {
            return;
        }
        v.clear();
        POOL.with(|p| {
            let mut p = p.borrow_mut();
            if p.len() < POOL_MAX_BUFS {
                p.push(arc);
            }
        });
    }
}

/// A cheaply cloneable, immutable slice of reference-counted bytes.
///
/// Cloning is an `Arc` bump; [`Bytes::slice`] shares the same backing
/// allocation. This mirrors `bytes::Bytes` for the operations the smapp
/// data plane performs (packet payloads are sliced, re-sliced and cloned
/// on every hop).
///
/// The backing store is `Arc<Vec<u8>>` rather than `Arc<[u8]>` so that
/// `Bytes::from(vec)` / [`BytesMut::freeze`] *move* the vector instead of
/// copying it into a fresh slice allocation — freezing an encoded segment
/// must not memcpy the payload a second time.
///
/// Dropping the last reference returns the backing buffer to a
/// thread-local pool (`POOL` in this module); together with the pool-aware
/// [`BytesMut::with_capacity`], a steady-state packet cycle
/// (encode → transmit → decode → drop) performs no heap allocation.
#[derive(Clone)]
pub struct Bytes {
    buf: Arc<Vec<u8>>,
    start: usize,
    end: usize,
}

/// Shared empty backing store, so `Bytes::new()` stays allocation-free.
fn empty_buf() -> Arc<Vec<u8>> {
    static EMPTY: OnceLock<Arc<Vec<u8>>> = OnceLock::new();
    Arc::clone(EMPTY.get_or_init(|| Arc::new(Vec::new())))
}

impl Drop for Bytes {
    fn drop(&mut self) {
        // Sole owner (no other Bytes and the static empty buffer is never
        // at count 1): recycle the backing buffer instead of freeing it.
        if Arc::strong_count(&self.buf) == 1 {
            pool_put(mem::replace(&mut self.buf, empty_buf()));
        }
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl Bytes {
    /// An empty buffer (does not allocate a backing store per call).
    pub fn new() -> Self {
        Bytes {
            buf: empty_buf(),
            start: 0,
            end: 0,
        }
    }

    /// Wrap a static byte slice.
    pub fn from_static(data: &'static [u8]) -> Self {
        Bytes::from(data.to_vec())
    }

    /// Copy `data` into a fresh buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes::from(data.to_vec())
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True when the buffer holds no bytes.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// A zero-copy sub-slice sharing this buffer's backing allocation.
    ///
    /// Panics if the range is out of bounds, like `bytes::Bytes::slice`.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Self {
        let len = self.len();
        let begin = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => len,
        };
        assert!(
            begin <= end && end <= len,
            "range out of bounds: {begin}..{end} of {len}"
        );
        Bytes {
            buf: Arc::clone(&self.buf),
            start: self.start + begin,
            end: self.start + end,
        }
    }

    /// Copy the contents into a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_ref().to_vec()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.buf[self.start..self.end]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let end = v.len();
        Bytes {
            buf: Arc::new(v),
            start: 0,
            end,
        }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(v: &'static [u8]) -> Self {
        Bytes::from(v.to_vec())
    }
}

impl From<Box<[u8]>> for Bytes {
    fn from(v: Box<[u8]>) -> Self {
        Bytes::from(v.into_vec())
    }
}

impl From<BytesMut> for Bytes {
    fn from(v: BytesMut) -> Self {
        v.freeze()
    }
}

impl From<String> for Bytes {
    fn from(v: String) -> Self {
        Bytes::from(v.into_bytes())
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Self {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_ref() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_ref() == other.as_ref()
    }
}
impl Eq for Bytes {}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.as_ref().cmp(other.as_ref())
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_ref().hash(state);
    }
}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_ref() == other
    }
}
impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_ref() == *other
    }
}
impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_ref() == other.as_slice()
    }
}
impl PartialEq<Bytes> for [u8] {
    fn eq(&self, other: &Bytes) -> bool {
        self == other.as_ref()
    }
}
impl PartialEq<Bytes> for Vec<u8> {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_slice() == other.as_ref()
    }
}

impl<'a> IntoIterator for &'a Bytes {
    type Item = &'a u8;
    type IntoIter = std::slice::Iter<'a, u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_ref().iter()
    }
}

/// A growable byte buffer, frozen into [`Bytes`] once written.
///
/// Backed by the same `Arc<Vec<u8>>` shape as [`Bytes`] (held at strong
/// count 1 so mutation through [`Arc::get_mut`] is always possible):
/// [`BytesMut::with_capacity`] draws from the thread-local buffer pool and
/// [`BytesMut::freeze`] moves the Arc straight into the `Bytes`, so the
/// whole encode path allocates nothing once the pool is warm.
pub struct BytesMut {
    /// Invariant: uniquely owned (strong == 1, no weak refs).
    buf: Arc<Vec<u8>>,
}

impl BytesMut {
    /// An empty buffer (pool-recycled, so usually allocation-free).
    pub fn new() -> Self {
        BytesMut { buf: pool_get(0) }
    }

    /// A buffer with `cap` bytes of capacity, recycled from the
    /// thread-local pool when one is available.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut { buf: pool_get(cap) }
    }

    fn vec(&self) -> &Vec<u8> {
        &self.buf
    }

    fn vec_mut(&mut self) -> &mut Vec<u8> {
        Arc::get_mut(&mut self.buf).expect("BytesMut backing buffer is uniquely owned")
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.vec().len()
    }

    /// True when the buffer holds no bytes.
    pub fn is_empty(&self) -> bool {
        self.vec().is_empty()
    }

    /// Ensure room for at least `additional` more bytes.
    pub fn reserve(&mut self, additional: usize) {
        self.vec_mut().reserve(additional);
    }

    /// Append a byte slice.
    pub fn extend_from_slice(&mut self, extend: &[u8]) {
        self.vec_mut().extend_from_slice(extend);
    }

    /// Resize to `new_len`, filling new space with `value`.
    pub fn resize(&mut self, new_len: usize, value: u8) {
        self.vec_mut().resize(new_len, value);
    }

    /// Truncate to `len` bytes (no-op when already shorter).
    pub fn truncate(&mut self, len: usize) {
        self.vec_mut().truncate(len);
    }

    /// Remove all bytes.
    pub fn clear(&mut self) {
        self.vec_mut().clear();
    }

    /// Convert into an immutable [`Bytes`] without copying: the backing
    /// Arc moves over as-is, no allocation, no memcpy.
    pub fn freeze(self) -> Bytes {
        let end = self.buf.len();
        Bytes {
            buf: self.buf,
            start: 0,
            end,
        }
    }
}

impl Default for BytesMut {
    fn default() -> Self {
        BytesMut::new()
    }
}

impl Clone for BytesMut {
    fn clone(&self) -> Self {
        BytesMut::from(&self.vec()[..])
    }
}

impl PartialEq for BytesMut {
    fn eq(&self, other: &Self) -> bool {
        self.vec() == other.vec()
    }
}

impl Eq for BytesMut {}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.vec()
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        self.vec_mut()
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        self.vec()
    }
}

impl From<&[u8]> for BytesMut {
    fn from(v: &[u8]) -> Self {
        let mut b = BytesMut::with_capacity(v.len());
        b.extend_from_slice(v);
        b
    }
}

impl From<Vec<u8>> for BytesMut {
    fn from(v: Vec<u8>) -> Self {
        BytesMut { buf: Arc::new(v) }
    }
}

impl fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_ref() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

impl Extend<u8> for BytesMut {
    fn extend<T: IntoIterator<Item = u8>>(&mut self, iter: T) {
        self.vec_mut().extend(iter);
    }
}

/// Append-style writer trait: big-endian `put_*` plus explicit `_le`
/// variants, matching the subset of `bytes::BufMut` the codecs use.
pub trait BufMut {
    /// Append a raw byte slice.
    fn put_slice(&mut self, src: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, n: u8) {
        self.put_slice(&[n]);
    }
    /// Append a `u16` in network (big-endian) byte order.
    fn put_u16(&mut self, n: u16) {
        self.put_slice(&n.to_be_bytes());
    }
    /// Append a `u32` in network (big-endian) byte order.
    fn put_u32(&mut self, n: u32) {
        self.put_slice(&n.to_be_bytes());
    }
    /// Append a `u64` in network (big-endian) byte order.
    fn put_u64(&mut self, n: u64) {
        self.put_slice(&n.to_be_bytes());
    }
    /// Append a `u16` in little-endian byte order (Linux netlink framing).
    fn put_u16_le(&mut self, n: u16) {
        self.put_slice(&n.to_le_bytes());
    }
    /// Append a `u32` in little-endian byte order (Linux netlink framing).
    fn put_u32_le(&mut self, n: u32) {
        self.put_slice(&n.to_le_bytes());
    }
    /// Append a `u64` in little-endian byte order (Linux netlink framing).
    fn put_u64_le(&mut self, n: u64) {
        self.put_slice(&n.to_le_bytes());
    }
    /// Append `cnt` copies of `val` (chunked; no temporary allocation).
    fn put_bytes(&mut self, val: u8, cnt: usize) {
        let chunk = [val; 64];
        let mut left = cnt;
        while left > 0 {
            let n = left.min(chunk.len());
            self.put_slice(&chunk[..n]);
            left -= n;
        }
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.vec_mut().extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slice_shares_backing_and_checks_bounds() {
        let b = Bytes::from(vec![1u8, 2, 3, 4, 5]);
        let s = b.slice(1..4);
        assert_eq!(&s[..], &[2, 3, 4]);
        let ss = s.slice(..2);
        assert_eq!(&ss[..], &[2, 3]);
        assert_eq!(b.len(), 5);
    }

    #[test]
    #[should_panic]
    fn slice_out_of_bounds_panics() {
        Bytes::from(vec![1u8, 2]).slice(0..3);
    }

    #[test]
    fn bufmut_endianness() {
        let mut m = BytesMut::new();
        m.put_u16(0x0102);
        m.put_u16_le(0x0102);
        assert_eq!(&m[..], &[0x01, 0x02, 0x02, 0x01]);
        assert_eq!(m.freeze(), Bytes::from(vec![0x01u8, 0x02, 0x02, 0x01]));
    }

    #[test]
    fn put_bytes_fills_without_temporaries() {
        let mut m = BytesMut::new();
        m.put_bytes(0xAA, 200);
        assert_eq!(m.len(), 200);
        assert!(m.iter().all(|&b| b == 0xAA));
    }

    #[test]
    fn drop_recycles_backing_buffer_through_the_pool() {
        // Write, freeze, drop — then the next with_capacity must hand the
        // same backing storage back (same data pointer), proving the
        // encode→transmit→drop cycle stops allocating once warm.
        let mut m = BytesMut::with_capacity(512);
        m.put_slice(&[7u8; 100]);
        let frozen = m.freeze();
        let ptr = frozen.as_ref().as_ptr();
        drop(frozen);
        let m2 = BytesMut::with_capacity(256);
        assert_eq!(m2.as_ref().as_ptr(), ptr, "buffer should be pool-recycled");
    }

    #[test]
    fn shared_buffers_are_not_recycled_while_referenced() {
        let b = Bytes::from(vec![1u8, 2, 3, 4]);
        let s = b.slice(1..3);
        let ptr = b.as_ref().as_ptr();
        drop(b); // `s` still references the buffer: must NOT hit the pool
        let fresh = BytesMut::with_capacity(4);
        assert_ne!(fresh.vec().as_ptr(), ptr);
        assert_eq!(&s[..], &[2, 3]);
    }

    #[test]
    fn oversized_buffers_bypass_the_pool() {
        let big = Bytes::from(vec![0u8; POOL_MAX_CAP + 1]);
        let ptr = big.as_ref().as_ptr();
        drop(big);
        let m = BytesMut::with_capacity(64);
        assert_ne!(m.vec().as_ptr(), ptr);
    }
}
