//! Offline stand-in for the [`criterion`](https://docs.rs/criterion)
//! benchmark harness.
//!
//! The smapp workspace is built without network access, so this vendored
//! crate provides the subset of the Criterion API its `benches/` use —
//! [`Criterion`], [`criterion_group!`], [`criterion_main!`],
//! benchmark groups with [`BenchmarkGroup::sample_size`] /
//! [`BenchmarkGroup::throughput`], and [`Bencher::iter`] — backed by a
//! simple wall-clock timer instead of Criterion's statistical machinery.
//!
//! Each benchmark warms up briefly, then runs the requested number of
//! samples and prints `name  median  mean  min  max` per-iteration times
//! (plus derived throughput when one was declared). The numbers are honest
//! medians over real iterations; they are just not Criterion's
//! bootstrapped confidence intervals.

#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Declared work-per-iteration, used to derive throughput from the
/// measured time.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Abstract elements processed per iteration.
    Elements(u64),
}

/// The benchmark driver: owns defaults and prints results.
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_sample_size: 50,
        }
    }
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: self.default_sample_size,
            throughput: None,
            _parent: self,
        }
    }

    /// Run a stand-alone benchmark (an anonymous group of one).
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let sample_size = self.default_sample_size;
        run_bench(name, sample_size, None, f);
        self
    }
}

/// A named group of benchmarks sharing sample-size/throughput settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set how many timed samples each benchmark in the group records.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Declare per-iteration work so results include throughput.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Run one benchmark within the group.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, name);
        run_bench(&full, self.sample_size, self.throughput, f);
        self
    }

    /// End the group (printing is per-benchmark; this is a no-op kept for
    /// API compatibility).
    pub fn finish(&mut self) {}
}

/// Passed to each benchmark closure; call [`Bencher::iter`] with the code
/// under test.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Time `routine`, recording one sample per invocation.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Brief warm-up so first-touch effects don't land in the samples.
        let warmup = Instant::now();
        while warmup.elapsed() < Duration::from_millis(20) {
            std::hint::black_box(routine());
        }
        self.samples.clear();
        for _ in 0..self.sample_size {
            let t = Instant::now();
            std::hint::black_box(routine());
            self.samples.push(t.elapsed());
        }
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(
    name: &str,
    sample_size: usize,
    throughput: Option<Throughput>,
    mut f: F,
) {
    let mut b = Bencher {
        samples: Vec::new(),
        sample_size,
    };
    f(&mut b);
    if b.samples.is_empty() {
        println!("{name:<44} (no samples)");
        return;
    }
    b.samples.sort();
    let median = b.samples[b.samples.len() / 2];
    let min = b.samples[0];
    let max = *b.samples.last().unwrap();
    let mean = b.samples.iter().sum::<Duration>() / b.samples.len() as u32;
    let tp = match throughput {
        Some(Throughput::Bytes(n)) if median.as_nanos() > 0 => {
            let gib_s = n as f64 / median.as_secs_f64() / (1u64 << 30) as f64;
            format!("  {gib_s:9.3} GiB/s")
        }
        Some(Throughput::Elements(n)) if median.as_nanos() > 0 => {
            let me_s = n as f64 / median.as_secs_f64() / 1e6;
            format!("  {me_s:9.3} Melem/s")
        }
        _ => String::new(),
    };
    println!(
        "{name:<44} median {median:>12?}  mean {mean:>12?}  min {min:>12?}  max {max:>12?}{tp}"
    );
}

/// Re-export of [`std::hint::black_box`], matching `criterion::black_box`.
pub use std::hint::black_box;

/// Declare a benchmark group: a function running each target in order.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declare the benchmark entry point running each group.
///
/// Accepts and ignores `--bench`-style CLI arguments that cargo passes
/// through, so `cargo bench` works with `harness = false`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
