//! Offline stand-in for the [`proptest`](https://docs.rs/proptest) crate.
//!
//! The smapp workspace is built without crates.io access, so this vendored
//! crate re-implements the subset of the proptest API its property tests
//! use: the [`proptest!`] macro, [`strategy::Strategy`] with `prop_map` /
//! `prop_filter`, [`arbitrary::any`], [`strategy::Just`], [`prop_oneof!`],
//! [`fn@collection::vec`], [`option::of`], and the `prop_assert*` /
//! [`prop_assume!`] macros.
//!
//! Semantics differences from real proptest, deliberately accepted:
//!
//! * inputs are drawn from a deterministic per-test RNG (seeded from the
//!   test's module path), so every run exercises the same cases —
//!   reproducible by construction, no persistence files;
//! * there is **no shrinking**: a failing case panics with the assertion
//!   message, which includes the offending values' `Debug` output.

#![warn(missing_docs)]

/// The glob-importable surface, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{Just, Strategy};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Deterministic pseudo-random generation for test inputs.
pub mod rng {
    /// A small, fast, deterministic generator (SplitMix64 core).
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seed deterministically from a test identifier (FNV-1a hash).
        pub fn deterministic(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng { state: h | 1 }
        }

        /// Next 64 uniformly random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform integer in `[lo, hi)`. Panics on an empty range.
        pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
            assert!(lo < hi, "empty range {lo}..{hi}");
            let span = hi - lo;
            // Rejection sampling to avoid modulo bias on huge spans.
            let zone = u64::MAX - (u64::MAX % span);
            loop {
                let v = self.next_u64();
                if v < zone {
                    return lo + v % span;
                }
            }
        }

        /// Uniform float in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }
}

#[doc(hidden)]
pub use rng::TestRng;

/// Run a property-style test: each `fn name(arg in strategy, …) { body }`
/// becomes a test that draws 64 deterministic cases and checks the body
/// against each.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)+) => {
        $(
            $(#[$meta])*
            fn $name() {
                const CASES: u32 = 64;
                let mut rng = $crate::TestRng::deterministic(
                    concat!(module_path!(), "::", stringify!($name)));
                let mut ran = 0u32;
                let mut attempts = 0u32;
                while ran < CASES {
                    attempts += 1;
                    assert!(attempts < CASES * 50,
                            "too many rejected cases in {}", stringify!($name));
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                    let result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (move || {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    match result {
                        ::std::result::Result::Ok(()) => ran += 1,
                        ::std::result::Result::Err(
                            $crate::test_runner::TestCaseError::Reject(_)) => {}
                        ::std::result::Result::Err(
                            $crate::test_runner::TestCaseError::Fail(msg)) => {
                            panic!("property {} failed (case {}): {}",
                                   stringify!($name), ran, msg);
                        }
                    }
                }
            }
        )+
    };
}

/// Assert a condition inside a [`proptest!`] body, failing the case (not
/// aborting the process) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::Fail(format!($($fmt)*)));
        }
    };
}

/// Assert two values are equal inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left == right,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
            left,
            right
        );
    }};
}

/// Assert two values are unequal inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left != right,
            "assertion failed: `(left != right)`\n  both: `{:?}`",
            left
        );
    }};
}

/// Discard the current case (drawing a replacement) when the precondition
/// does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                concat!("assumption failed: ", stringify!($cond)).to_string(),
            ));
        }
    };
}

/// Choose uniformly among several strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Core strategy trait and combinators.
pub mod strategy {
    use crate::rng::TestRng;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value;

        /// Draw one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values with `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Discard generated values failing `pred` (regenerating in place).
        fn prop_filter<F: Fn(&Self::Value) -> bool>(
            self,
            whence: &'static str,
            pred: F,
        ) -> Filter<Self, F>
        where
            Self: Sized,
        {
            Filter {
                inner: self,
                whence,
                pred,
            }
        }

        /// Type-erase for storage in heterogeneous collections
        /// ([`prop_oneof!`]).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A type-erased strategy.
    pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            (**self).generate(rng)
        }
    }

    /// Always produce a clone of the given value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_filter`].
    pub struct Filter<S, F> {
        pub(crate) inner: S,
        pub(crate) whence: &'static str,
        pub(crate) pred: F,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..1000 {
                let v = self.inner.generate(rng);
                if (self.pred)(&v) {
                    return v;
                }
            }
            panic!(
                "prop_filter rejected 1000 consecutive values: {}",
                self.whence
            );
        }
    }

    /// Uniform choice among boxed strategies (built by [`prop_oneof!`]).
    pub struct Union<V> {
        arms: Vec<BoxedStrategy<V>>,
    }

    impl<V> Union<V> {
        /// Build from at least one arm.
        pub fn new(arms: Vec<BoxedStrategy<V>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            let i = rng.range_u64(0, self.arms.len() as u64) as usize;
            self.arms[i].generate(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),+) => {$(
            impl Strategy for ::std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.range_u64(0, span) as i128) as $t
                }
            }
            impl Strategy for ::std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start() as i128, *self.end() as i128);
                    assert!(lo <= hi, "empty range");
                    let span = (hi - lo + 1) as u64;
                    // span == 0 only when the range covers all of u64/i64;
                    // fall back to a raw draw in that case.
                    if span == 0 {
                        return rng.next_u64() as $t;
                    }
                    (lo + rng.range_u64(0, span) as i128) as $t
                }
            }
        )+};
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for ::std::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range");
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    macro_rules! tuple_strategy {
        ($(($($S:ident $idx:tt),+);)+) => {$(
            impl<$($S: Strategy),+> Strategy for ($($S,)+) {
                type Value = ($($S::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )+};
    }

    tuple_strategy! {
        (A 0);
        (A 0, B 1);
        (A 0, B 1, C 2);
        (A 0, B 1, C 2, D 3);
        (A 0, B 1, C 2, D 3, E 4);
        (A 0, B 1, C 2, D 3, E 4, F 5);
        (A 0, B 1, C 2, D 3, E 4, F 5, G 6);
        (A 0, B 1, C 2, D 3, E 4, F 5, G 6, H 7);
    }
}

/// `any::<T>()` — the canonical strategy for a type.
pub mod arbitrary {
    use crate::rng::TestRng;
    use crate::strategy::Strategy;
    use std::marker::PhantomData;

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary {
        /// Draw an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    /// The strategy returned by [`any`].
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy producing any value of `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    macro_rules! int_arbitrary {
        ($($t:ty),+) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )+};
    }

    int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            rng.unit_f64()
        }
    }

    impl<T: Arbitrary + Default + Copy, const N: usize> Arbitrary for [T; N] {
        fn arbitrary(rng: &mut TestRng) -> [T; N] {
            let mut out = [T::default(); N];
            for slot in &mut out {
                *slot = T::arbitrary(rng);
            }
            out
        }
    }
}

/// Collection strategies (`collection::vec`).
pub mod collection {
    use crate::rng::TestRng;
    use crate::strategy::Strategy;
    use std::ops::Range;

    /// The strategy returned by [`vec()`].
    pub struct VecStrategy<S> {
        elem: S,
        len: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = rng.range_u64(self.len.start as u64, self.len.end as u64) as usize;
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }

    /// A vector whose length is uniform in `len` and whose elements come
    /// from `elem`.
    pub fn vec<S: Strategy>(elem: S, len: Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "empty length range");
        VecStrategy { elem, len }
    }
}

/// Option strategies (`option::of`).
pub mod option {
    use crate::rng::TestRng;
    use crate::strategy::Strategy;

    /// The strategy returned by [`of`].
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            // 3-in-4 Some, like proptest's default weighting favours Some.
            if rng.range_u64(0, 4) == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }

    /// `None` a quarter of the time, otherwise `Some` of the inner value.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }
}

/// Errors a property-test case can produce.
pub mod test_runner {
    /// Why a case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// The case was discarded by [`crate::prop_assume!`]; another is drawn.
        Reject(String),
        /// An assertion failed; the test panics with this message.
        Fail(String),
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_respect_bounds(x in 5u8..=253, y in 1u64..2000, z in 0.0f64..1.0) {
            prop_assert!((5..=253).contains(&x));
            prop_assert!((1..2000).contains(&y));
            prop_assert!((0.0..1.0).contains(&z));
        }

        #[test]
        fn assume_discards(v in 0u32..100) {
            prop_assume!(v % 2 == 0);
            prop_assert_eq!(v % 2, 0);
        }
    }

    #[test]
    fn oneof_covers_all_arms() {
        let strat = prop_oneof![Just(1u8), Just(2u8), Just(3u8)];
        let mut rng = crate::TestRng::deterministic("oneof");
        let mut seen = [false; 4];
        for _ in 0..100 {
            seen[crate::strategy::Strategy::generate(&strat, &mut rng) as usize] = true;
        }
        assert_eq!(&seen[1..], &[true, true, true]);
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::TestRng::deterministic("x");
        let mut b = crate::TestRng::deterministic("x");
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
