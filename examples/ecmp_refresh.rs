//! §4.4 — exploiting flow-based load balancing.
//!
//! The client opens 5 subflows with random source ports over a 4-path ECMP
//! fabric. Every 2.5 s the refresh controller polls each subflow's
//! `pacing_rate`, kills the slowest and opens a replacement with a fresh
//! random port — a fresh ECMP hash — until the connection spreads over all
//! paths.
//!
//! ```text
//! cargo run --release -p smapp --example ecmp_refresh
//! ```

use smapp::prelude::*;
use smapp::{controller_of, ControllerRuntime};
use smapp_mptcp::apps::{BulkSender, Sink};
use smapp_pm::topo::{self, SERVER_ADDR};

fn main() {
    const TRANSFER: u64 = 40_000_000;

    let controller = RefreshController::new(RefreshConfig::default());
    let mut client = Host::new("client", StackConfig::default()).with_user(
        ControllerRuntime::boxed(controller),
        LatencyModel::idle_host(),
    );
    client.connect_at(
        SimTime::from_millis(10),
        None,
        SERVER_ADDR,
        80,
        Box::new(
            BulkSender::new(TRANSFER)
                .close_when_done()
                .stop_sim_when_acked(),
        ),
    );
    let mut server = Host::new("server", StackConfig::default());
    server.listen(
        80,
        Box::new(|| {
            Box::new(Sink {
                close_on_eof: true,
                ..Default::default()
            })
        }),
    );

    // The paper's fabric: 4 paths, 8 Mb/s each, 10/20/30/40 ms delay.
    let paths: Vec<LinkCfg> = (1..=4).map(|i| LinkCfg::mbps_ms(8, 10 * i)).collect();
    let net = topo::ecmp(123, client, server, &paths);
    let mut sim = net.sim;
    sim.core.set_trace(Box::new(smapp_sim::Oracle::new()));
    let summary = sim.run_until(SimTime::from_secs(300));
    smapp_pm::verify::conclude(&mut sim, &summary, "ecmp_refresh", 123).expect_clean();
    println!("protocol-invariant oracle: clean");

    println!("40 MB over 4x8 Mb/s ECMP paths with 5 subflows");
    println!("completed at t = {}", summary.ended_at);
    println!(
        "aggregate throughput ≈ {:.1} Mb/s of a 32 Mb/s optimum",
        TRANSFER as f64 * 8.0 / summary.ended_at.as_secs_f64() / 1e6
    );
    let ctrl = controller_of::<RefreshController>(topo::host(&sim, net.client)).unwrap();
    println!("refreshes performed: {}", ctrl.refreshes.len());
    for (at, victim, rate) in ctrl.refreshes.iter().take(10) {
        println!(
            "  t={at}: killed subflow {victim} (pacing_rate {:.2} Mb/s), opened a fresh port",
            *rate as f64 * 8.0 / 1e6
        );
    }
    println!("per-path bytes (A→B):");
    for (i, l) in net.paths.iter().enumerate() {
        let s = sim.core.link_stats(*l, smapp_sim::Dir::AtoB);
        println!(
            "  path {} ({} ms): {:.1} MB",
            i + 1,
            10 * (i + 1),
            s.bytes_delivered as f64 / 1e6
        );
    }
}
