//! §4.2 — break-before-make backup on a "smartphone".
//!
//! The WiFi path degrades to 30 % loss mid-transfer and then loses its
//! association entirely — both scripted through the typed [`Netem`]
//! impairment language. The smart-backup controller
//! watches the paper's `timeout` events; when the backed-off
//! retransmission timeout exceeds one second (or the WiFi interface dies
//! under it) it cuts the WiFi subflow and opens one over the cellular
//! interface — which was *never* established beforehand (saving energy
//! and radio resources).
//!
//! ```text
//! cargo run -p smapp --example mobile_backup
//! ```

use std::time::Duration;

use smapp::prelude::*;
use smapp::{controller_of, ControllerRuntime};
use smapp_mptcp::apps::{BulkSender, Sink};
use smapp_pm::topo::{self, CLIENT_ADDR1, CLIENT_ADDR2, SERVER_ADDR};

fn main() {
    let controller = BackupController::new(BackupConfig {
        rto_threshold: Duration::from_secs(1),
        backup_src: CLIENT_ADDR2, // the cellular interface
    });
    let mut client = Host::new("smartphone", StackConfig::default()).with_user(
        ControllerRuntime::boxed(controller),
        LatencyModel::idle_host(),
    );
    client.connect_at(
        SimTime::from_millis(10),
        Some(CLIENT_ADDR1), // start on WiFi
        SERVER_ADDR,
        80,
        Box::new(
            BulkSender::new(3_000_000)
                .close_when_done()
                .stop_sim_when_acked(),
        ),
    );
    let mut server = Host::new("server", StackConfig::default());
    server.listen(
        80,
        Box::new(|| {
            Box::new(Sink {
                close_on_eof: true,
                ..Default::default()
            })
        }),
    );

    let net = topo::two_path(
        7,
        client,
        server,
        LinkCfg::mbps_ms(5, 10), // WiFi
        LinkCfg::mbps_ms(5, 40), // cellular: more delay
    );
    let mut sim = net.sim;
    sim.core.set_trace(Box::new(smapp_sim::Oracle::new()));

    // The mobility story, as a typed netem program: the user walks away
    // from the access point at t = 1 s, and the radio loses its
    // association completely at t = 8 s.
    sim.install(
        NetemScript::new()
            .at(
                SimTime::from_secs(1),
                Netem::on(net.link1).loss(LossPct::percent(30.0)),
            )
            .at(SimTime::from_secs(8), Netem::iface(net.client_if1).down()),
        InstallPolicy::Sort,
    )
    .unwrap();
    println!("scripted: WiFi degrades to 30% loss at t=1s, dies at t=8s");

    let summary = sim.run_until(SimTime::from_secs(120));
    smapp_pm::verify::conclude(&mut sim, &summary, "mobile_backup", 7).expect_clean();
    println!("protocol-invariant oracle: clean");

    let phone = topo::host(&sim, net.client);
    let ctrl = controller_of::<BackupController>(phone).unwrap();
    match ctrl.switchovers.first() {
        Some((at, _token, killed)) => {
            println!(
                "t={at}: controller killed underperforming subflow {killed} \
                 and opened the cellular subflow"
            );
        }
        None => println!("controller never needed to switch"),
    }
    println!("transfer completed at t = {}", summary.ended_at);
    println!(
        "without SMAPP, the kernel would have retransmitted on WiFi for \
         ~13 minutes before giving up (run the sec42_baseline bench binary)"
    );
}
