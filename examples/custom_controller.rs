//! Writing your own subflow controller.
//!
//! The whole point of SMAPP: "the specific knowledge of an application can
//! not be known in advance", so the paper delegates path management to the
//! application. This example implements a custom policy from scratch in
//! ~40 lines of controller logic: a **latency ceiling** controller that
//! keeps adding subflows (up to a budget) while the measured smoothed RTT
//! of every established subflow stays above a target.
//!
//! ```text
//! cargo run -p smapp --example custom_controller
//! ```

use std::time::Duration;

use smapp::prelude::*;
use smapp::{controller_of, ControlApi, ControllerRuntime, SubflowController};
use smapp_mptcp::apps::{BulkSender, Sink};
use smapp_pm::topo::{self, SERVER_ADDR};
use smapp_tcp::TcpInfo;

/// Add subflows while all subflows' SRTT exceeds `target`; stop at `max`.
struct LatencyCeiling {
    target_us: u64,
    max_subflows: usize,
    opened: usize,
    conn: Option<(ConnToken, Addr, u16, Addr)>,
    decisions: Vec<String>,
}

impl SubflowController for LatencyCeiling {
    fn on_event(&mut self, api: &mut ControlApi<'_, '_>, ev: &PmEvent) {
        if let PmEvent::ConnEstablished {
            token,
            tuple,
            is_client: true,
        } = ev
        {
            self.conn = Some((*token, tuple.src, tuple.dst_port, tuple.dst));
            self.opened = 1;
            api.set_timer(Duration::from_millis(500), 0);
        }
    }

    fn on_timer(&mut self, api: &mut ControlApi<'_, '_>, _token: u64) {
        if let Some((token, ..)) = self.conn {
            api.get_info(token, None, 0);
            api.set_timer(Duration::from_millis(500), 0);
        }
    }

    fn on_info(
        &mut self,
        api: &mut ControlApi<'_, '_>,
        _tag: u64,
        token: ConnToken,
        _conn: Option<(u64, u64)>,
        subflows: &[(SubflowId, TcpInfo)],
    ) {
        let Some((_, src, dst_port, dst)) = self.conn else {
            return;
        };
        if self.opened >= self.max_subflows {
            return;
        }
        let sampled: Vec<u64> = subflows
            .iter()
            .filter(|(_, i)| i.srtt_us > 0)
            .map(|(_, i)| i.srtt_us)
            .collect();
        if !sampled.is_empty() && sampled.iter().all(|&s| s > self.target_us) {
            self.opened += 1;
            self.decisions.push(format!(
                "t={}: all {} subflows above {} us — opening subflow #{}",
                api.now(),
                sampled.len(),
                self.target_us,
                self.opened
            ));
            api.open_subflow(token, src, 0, dst, dst_port, false);
        }
    }

    fn name(&self) -> &'static str {
        "latency-ceiling"
    }
}

fn main() {
    let controller = LatencyCeiling {
        target_us: 25_000, // 25 ms SRTT target
        max_subflows: 4,
        opened: 0,
        conn: None,
        decisions: Vec::new(),
    };
    let mut client = Host::new("client", StackConfig::default()).with_user(
        ControllerRuntime::boxed(controller),
        LatencyModel::idle_host(),
    );
    client.connect_at(
        SimTime::from_millis(10),
        None,
        SERVER_ADDR,
        80,
        Box::new(
            BulkSender::new(20_000_000)
                .close_when_done()
                .stop_sim_when_acked(),
        ),
    );
    let mut server = Host::new("server", StackConfig::default());
    server.listen(
        80,
        Box::new(|| {
            Box::new(Sink {
                close_on_eof: true,
                ..Default::default()
            })
        }),
    );

    // An ECMP fabric where queueing pushes the RTT well above 25 ms: the
    // controller reacts by spreading load over more paths.
    let paths: Vec<LinkCfg> = (1..=4).map(|i| LinkCfg::mbps_ms(8, 15 * i)).collect();
    let net = topo::ecmp(9, client, server, &paths);
    let mut sim = net.sim;
    sim.core.set_trace(Box::new(smapp_sim::Oracle::new()));
    let summary = sim.run_until(SimTime::from_secs(300));
    smapp_pm::verify::conclude(&mut sim, &summary, "custom_controller", 9).expect_clean();
    println!("protocol-invariant oracle: clean");

    println!("custom latency-ceiling controller over a 4-path fabric");
    println!("completed at t = {}", summary.ended_at);
    let ctrl = controller_of::<LatencyCeiling>(topo::host(&sim, net.client)).unwrap();
    println!("subflows opened: {}", ctrl.opened);
    for d in &ctrl.decisions {
        println!("  {d}");
    }
    println!(
        "this controller is {} lines of application logic — no kernel module required",
        60
    );
}
