//! §4.3 — smart streaming: keep 64 KB blocks flowing within their
//! one-second deadline despite loss on the initial path.
//!
//! The controller checks progress 500 ms into every block (via the
//! `snd_una` it polls over netlink) and opens a second subflow when fewer
//! than 32 KB of the block were acknowledged; any subflow whose RTO grows
//! past one second is closed immediately.
//!
//! ```text
//! cargo run -p smapp --example smart_streaming
//! ```

use std::time::Duration;

use smapp::prelude::*;
use smapp::{controller_of, ControllerRuntime};
use smapp_mptcp::apps::{Sink, StreamSender};
use smapp_pm::topo::{self, CLIENT_ADDR1, CLIENT_ADDR2, SERVER_ADDR};

fn main() {
    const BLOCK: u64 = 64 * 1024;
    const BLOCKS: u64 = 20;

    let controller = StreamController::new(StreamConfig::paper(CLIENT_ADDR2));
    let mut client = Host::new("streamer", StackConfig::default()).with_user(
        ControllerRuntime::boxed(controller),
        LatencyModel::idle_host(),
    );
    client.connect_at(
        SimTime::from_millis(10),
        Some(CLIENT_ADDR1),
        SERVER_ADDR,
        80,
        Box::new(StreamSender::new(BLOCK, Duration::from_secs(1), BLOCKS)),
    );
    let mut server = Host::new("viewer", StackConfig::default());
    server.listen(
        80,
        Box::new(|| {
            Box::new(Sink {
                close_on_eof: true,
                stop_on_eof: true,
                ..Sink::with_blocks(BLOCK)
            })
        }),
    );

    let net = topo::two_path(
        3,
        client,
        server,
        LinkCfg::mbps_ms(5, 10),
        LinkCfg::mbps_ms(5, 10),
    );
    let mut sim = net.sim;
    sim.core.set_trace(Box::new(smapp_sim::Oracle::new()));
    // The initial path starts losing 30% of packets shortly after start.
    let l1 = net.link1;
    sim.at(SimTime::from_millis(500), move |core| {
        core.set_loss_both(l1, LossModel::Bernoulli(0.30));
    });
    let summary = sim.run_until(SimTime::from_secs(120));
    smapp_pm::verify::conclude(&mut sim, &summary, "smart_streaming", 3).expect_clean();
    println!("protocol-invariant oracle: clean");

    // Report per-block delivery delay.
    let starts = topo::host(&sim, net.client)
        .stack
        .connections()
        .next()
        .and_then(|c| c.app())
        .and_then(|a| a.as_any().downcast_ref::<StreamSender>())
        .map(|s| s.block_starts.clone())
        .unwrap_or_default();
    let completions = topo::host(&sim, net.server)
        .stack
        .connections()
        .next()
        .and_then(|c| c.app())
        .and_then(|a| a.as_any().downcast_ref::<Sink>())
        .map(|s| s.block_completions.clone())
        .unwrap_or_default();
    println!("block  delay");
    let mut worst = 0.0f64;
    for (i, (s, c)) in starts.iter().zip(&completions).enumerate() {
        let d = c.saturating_since(*s).as_secs_f64();
        worst = worst.max(d);
        println!("{i:>5}  {d:.3}s");
    }
    println!("worst block delay: {worst:.3}s (deadline: 1s per block)");

    let ctrl = controller_of::<StreamController>(topo::host(&sim, net.client)).unwrap();
    match ctrl.interventions.first() {
        Some(at) => println!("controller opened the second subflow at t = {at}"),
        None => println!("controller never intervened (path was healthy)"),
    }
    for (at, id) in &ctrl.rto_closes {
        println!("controller closed subflow {id} at t = {at} (RTO > 1s)");
    }
}
