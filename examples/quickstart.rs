//! Quickstart: a multihomed client transfers a file to a server over two
//! paths, with the kernel full-mesh path manager aggregating bandwidth.
//!
//! ```text
//! cargo run -p smapp --example quickstart
//! ```

use smapp::prelude::*;
use smapp_mptcp::apps::{BulkSender, Sink};
use smapp_pm::topo::{self, SERVER_ADDR};

fn main() {
    const TRANSFER: u64 = 10_000_000;

    // A dual-homed client ("smartphone": wlan0 + lte0) with the in-kernel
    // full-mesh path manager, sending 10 MB.
    let mut client =
        Host::new("client", StackConfig::default()).with_pm(Box::new(FullMeshPm::new()));
    client.connect_at(
        SimTime::from_millis(10),
        None,
        SERVER_ADDR,
        80,
        Box::new(
            BulkSender::new(TRANSFER)
                .close_when_done()
                .stop_sim_when_acked(),
        ),
    );

    // A server that consumes the stream and closes when done.
    let mut server = Host::new("server", StackConfig::default());
    server.listen(
        80,
        Box::new(|| {
            Box::new(Sink {
                close_on_eof: true,
                ..Default::default()
            })
        }),
    );

    // Two 10 Mb/s paths with 20 ms / 30 ms one-way delay.
    let net = topo::two_path(
        42,
        client,
        server,
        LinkCfg::mbps_ms(10, 20),
        LinkCfg::mbps_ms(10, 30),
    );
    let mut sim = net.sim;
    // The protocol-invariant oracle rides along on every run: wire-level
    // conservation/parseability plus end-host stream integrity.
    sim.core.set_trace(Box::new(smapp_sim::Oracle::new()));
    let summary = sim.run_until(SimTime::from_secs(60));
    smapp_pm::verify::conclude(&mut sim, &summary, "quickstart", 42).expect_clean();
    println!("protocol-invariant oracle: clean");

    // Inspect the result.
    let client = topo::host(&sim, net.client);
    let conn = client.stack.connections().next().expect("connection");
    println!("transfer finished at t = {}", summary.ended_at);
    println!(
        "throughput ≈ {:.2} Mb/s (two 10 Mb/s paths)",
        TRANSFER as f64 * 8.0 / summary.ended_at.as_secs_f64() / 1e6
    );
    println!("subflows used:");
    for id in [0u8, 1] {
        if let Some(info) = conn.subflow_info(id) {
            println!(
                "  subflow {id}: {} bytes acked, srtt {} us, {} retransmissions",
                info.bytes_acked, info.srtt_us, info.retrans
            );
        }
    }
    let l1 = sim.core.link_stats(net.link1, smapp_sim::Dir::AtoB);
    let l2 = sim.core.link_stats(net.link2, smapp_sim::Dir::AtoB);
    println!(
        "path utilisation: link1 {} pkts / link2 {} pkts",
        l1.delivered, l2.delivered
    );
}
