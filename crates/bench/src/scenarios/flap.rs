//! Flap — a periodically failing ECMP bottleneck path under the scripted
//! dynamics engine, routed around by the §4.4 refresh controller.
//!
//! The §4.4 fabric (four parallel paths behind flow-hashing routers), but
//! one path now *flaps*: a [`smapp_sim::NetemScript`] takes the whole
//! link administratively down and back up on a fixed period — a carrier
//! losing and regaining light, invisible to the routers' ECMP hash, which
//! keeps assigning flows onto the dead path. The refresh controller's
//! pacing-rate poll is exactly the defence the paper proposes: every
//! 2.5 s it kills the slowest subflow and redraws a new source port,
//! re-establishing over (with high probability) a healthy path.
//!
//! Because the flaps are calendar-queue events, the whole run — flap
//! instants, refresh decisions, completion time — is bit-identical per
//! seed at any sweep `--jobs` count.

use smapp::{controller_of, ControllerRuntime, RefreshConfig, RefreshController};
use smapp_mptcp::apps::{BulkSender, Sink};
use smapp_mptcp::StackConfig;
use smapp_netlink::LatencyModel;
use smapp_pm::topo::{self, SERVER_ADDR};
use smapp_pm::Host;
use smapp_sim::{InstallPolicy, LinkCfg, Netem, NetemScript, SimTime};

/// Parameters of one flap run.
#[derive(Debug, Clone)]
pub struct Params {
    /// RNG seed.
    pub seed: u64,
    /// Transfer size in bytes.
    pub transfer: u64,
    /// Subflows the refresh controller maintains (paper: 5).
    pub n: u8,
    /// First instant the flapping path goes down.
    pub first_down: SimTime,
    /// How long the path stays down per flap.
    pub down_for: std::time::Duration,
    /// Flap period (down instant to next down instant).
    pub period: std::time::Duration,
    /// Number of down/up cycles before the path stays up for good.
    pub flaps: u32,
    /// Simulation horizon.
    pub horizon: SimTime,
}

impl Default for Params {
    fn default() -> Self {
        Params {
            seed: 31,
            transfer: 20_000_000,
            n: 5,
            first_down: SimTime::from_secs(2),
            down_for: std::time::Duration::from_secs(2),
            period: std::time::Duration::from_secs(5),
            flaps: 4,
            horizon: SimTime::from_secs(600),
        }
    }
}

/// Results of one flap run.
#[derive(Debug)]
pub struct Results {
    /// Bytes the server received.
    pub delivered: u64,
    /// Completion time, if the transfer finished within the horizon.
    pub completed_at: Option<f64>,
    /// Subflow refreshes the controller performed: `(seconds, killed
    /// subflow id, its pacing rate)`.
    pub refreshes: Vec<(f64, u8, u64)>,
    /// Distinct bottleneck paths that carried meaningful traffic.
    pub paths_used: usize,
}

/// Run one flap experiment.
pub fn run(p: &Params) -> Results {
    run_instrumented(p).1
}

/// Like [`run`], additionally returning the simulator's
/// [`smapp_sim::RunSummary`] for the perf harness and sweep matrix.
pub fn run_instrumented(p: &Params) -> (smapp_sim::RunSummary, Results) {
    let mut client = Host::new("client", StackConfig::default()).with_user(
        ControllerRuntime::boxed(RefreshController::new(RefreshConfig {
            n: p.n,
            ..Default::default()
        })),
        LatencyModel::idle_host(),
    );
    client.connect_at(
        SimTime::from_millis(10),
        None,
        SERVER_ADDR,
        80,
        Box::new(
            BulkSender::new(p.transfer)
                .close_when_done()
                .stop_sim_when_acked(),
        ),
    );
    let mut server = Host::new("server", StackConfig::default());
    server.listen(
        80,
        Box::new(|| {
            Box::new(Sink {
                close_on_eof: true,
                ..Default::default()
            })
        }),
    );
    // The §4.4 fabric: 4 × 8 Mb/s, 10/20/30/40 ms.
    let path_cfgs: Vec<LinkCfg> = (1..=4).map(|i| LinkCfg::mbps_ms(8, 10 * i)).collect();
    let net = topo::ecmp(p.seed, client, server, &path_cfgs);
    let mut sim = net.sim;
    sim.core.set_trace(Box::new(smapp_sim::Oracle::new()));

    // Flap the first (fastest) bottleneck path: down for `down_for` every
    // `period`, `flaps` times.
    let victim = net.paths[0];
    let mut script = NetemScript::new();
    for k in 0..p.flaps {
        let down_at = p.first_down + p.period * k;
        script.add(down_at, Netem::on(victim).down());
        script.add(down_at + p.down_for, Netem::on(victim).up());
    }
    sim.install(script, InstallPolicy::Sort).unwrap();

    let summary = sim.run_until(p.horizon);
    smapp_pm::verify::conclude(&mut sim, &summary, "flap", p.seed).expect_clean();

    let delivered = topo::host(&sim, net.server)
        .stack
        .connections()
        .next()
        .map(|c| {
            c.app()
                .unwrap()
                .as_any()
                .downcast_ref::<Sink>()
                .unwrap()
                .received
        })
        .unwrap_or(0);
    let ctrl = controller_of::<RefreshController>(topo::host(&sim, net.client)).unwrap();
    let refreshes = ctrl
        .refreshes
        .iter()
        .map(|(t, id, rate)| (t.as_secs_f64(), *id, *rate))
        .collect();
    let paths_used = net
        .paths
        .iter()
        .filter(|&&l| {
            sim.core.link_stats(l, smapp_sim::Dir::AtoB).bytes_delivered > p.transfer / 100
        })
        .count();
    let completed_at = (delivered >= p.transfer).then(|| summary.ended_at.as_secs_f64());
    (
        summary,
        Results {
            delivered,
            completed_at,
            refreshes,
            paths_used,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flap_completes_with_refresh_reestablishment() {
        // 10 MB needs several seconds on the 32 Mb/s fabric, so the flaps
        // (2 s down every 5 s from t=2 s) land mid-transfer and starve
        // whatever subflows the hash put on the victim path.
        let p = Params {
            transfer: 10_000_000,
            ..Default::default()
        };
        let r = run(&p);
        assert_eq!(r.delivered, p.transfer, "transfer survives the flaps");
        let done = r.completed_at.expect("completed within horizon");
        assert!(
            !r.refreshes.is_empty(),
            "the flapping path forces at least one refresh"
        );
        assert!(
            r.paths_used >= 2,
            "refresh spreads over healthy paths: {} used",
            r.paths_used
        );
        // 10 MB over a >=24 Mb/s healthy residual fabric: well under the
        // horizon even with the flap outages.
        assert!(done < 120.0, "completed in {done:.1}s");
    }

    #[test]
    fn flap_is_deterministic_per_seed() {
        let p = Params {
            transfer: 2_000_000,
            flaps: 2,
            ..Default::default()
        };
        let (s1, r1) = run_instrumented(&p);
        let (s2, r2) = run_instrumented(&p);
        assert_eq!(s1, s2);
        assert_eq!(r1.refreshes, r2.refreshes);
        assert_eq!(r1.completed_at, r2.completed_at);
    }
}
