//! §4.2 baseline narrative — what happens *without* SMAPP.
//!
//! "A connection starts over one interface and the second is set as a
//! backup interface. After 1 second, the packet loss ratio over the
//! primary path increases [until the radio is effectively dead]. Multipath
//! TCP tries to retransmit the data over this interface and applies the
//! exponential backoff to its retransmission timer until it reaches the
//! maximum value (15 doublings on Linux). At this point (after 12 minutes
//! in our experiment with the default Linux configuration), TCP eventually
//! terminates the subflow. This triggers Multipath TCP to use the backup
//! subflow since it is the only available one."
//!
//! We drive the primary into a full blackhole (the "region where an IP
//! address is assigned but most packets are lost" in its terminal form) so
//! every retransmission is lost and the doubling runs to completion.

use smapp_mptcp::apps::{BulkSender, Sink};
use smapp_mptcp::StackConfig;
use smapp_pm::topo::{self, CLIENT_ADDR1, SERVER_ADDR};
use smapp_pm::Host;
use smapp_sim::{LinkCfg, LossModel, SimTime};

use crate::pms::BackupFlagPm;
use crate::trace::SeqTraceSink;

/// Parameters of the baseline run.
#[derive(Debug, Clone)]
pub struct Params {
    /// RNG seed.
    pub seed: u64,
    /// When the primary path dies.
    pub loss_onset: SimTime,
    /// Transfer size.
    pub transfer: u64,
    /// RTO give-up count (Linux: 15).
    pub max_retries: u32,
}

impl Default for Params {
    fn default() -> Self {
        Params {
            seed: 11,
            loss_onset: SimTime::from_secs(1),
            transfer: 4_000_000,
            max_retries: 15,
        }
    }
}

/// Results of the baseline run.
#[derive(Debug)]
pub struct Results {
    /// When data first flowed on the backup path (seconds) — i.e. when the
    /// kernel finally gave up on the primary.
    pub switch_at: Option<f64>,
    /// Completion time, if the transfer finished within the horizon.
    pub completed_at: Option<f64>,
    /// Bytes delivered.
    pub delivered: u64,
}

/// Run the baseline.
pub fn run(p: &Params) -> Results {
    run_instrumented(p).1
}

/// Like [`run`], additionally returning the simulator's
/// [`smapp_sim::RunSummary`] (event count, peak queue depth) for the perf
/// harness and sweep matrix.
pub fn run_instrumented(p: &Params) -> (smapp_sim::RunSummary, Results) {
    let mut cfg = StackConfig::default();
    cfg.rto.max_retries = p.max_retries;
    let mut client =
        Host::new("client", cfg).with_pm(Box::new(BackupFlagPm::new(topo::CLIENT_ADDR2)));
    client.connect_at(
        SimTime::from_millis(10),
        Some(CLIENT_ADDR1),
        SERVER_ADDR,
        80,
        Box::new(
            BulkSender::new(p.transfer)
                .close_when_done()
                .stop_sim_when_acked(),
        ),
    );
    let mut server = Host::new("server", StackConfig::default());
    server.listen(
        80,
        Box::new(|| {
            Box::new(Sink {
                close_on_eof: true,
                ..Default::default()
            })
        }),
    );
    let net = topo::two_path(
        p.seed,
        client,
        server,
        LinkCfg::mbps_ms(5, 10),
        LinkCfg::mbps_ms(5, 10),
    );
    let mut sim = net.sim;
    sim.core
        .set_trace(smapp_sim::Oracle::wrapping(Box::new(SeqTraceSink::new(
            vec![net.link1, net.link2],
        ))));
    let l1 = net.link1;
    sim.at(p.loss_onset, move |core| {
        core.set_loss_both(l1, LossModel::Bernoulli(1.0));
    });
    // Horizon: the give-up takes ~13.5 minutes; allow the transfer to
    // finish afterwards.
    let summary = sim.run_until(SimTime::from_secs(1800));

    let verdict = smapp_pm::verify::conclude(&mut sim, &summary, "sec42", p.seed);
    verdict.expect_clean();
    let sink = verdict.inner.expect("trace installed");
    let rows = sink
        .as_any()
        .downcast_ref::<SeqTraceSink>()
        .expect("seq sink")
        .relative_rows();
    // First data on the backup link *after* the loss onset is the switch.
    let switch_at = rows
        .iter()
        .find(|(t, _, path)| *path == 1 && *t > p.loss_onset.as_secs_f64())
        .map(|(t, _, _)| *t);
    let delivered = topo::host(&sim, net.server)
        .stack
        .connections()
        .next()
        .map(|c| {
            c.app()
                .unwrap()
                .as_any()
                .downcast_ref::<Sink>()
                .unwrap()
                .received
        })
        .unwrap_or(0);
    let completed_at = (delivered >= p.transfer).then(|| summary.ended_at.as_secs_f64());
    (
        summary,
        Results {
            switch_at,
            completed_at,
            delivered,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sec42_backoff_kill_takes_minutes() {
        let r = run(&Params::default());
        let switch = r.switch_at.expect("backup eventually used");
        // The paper: "after 12 minutes". Our RTO policy gives
        // 0.2+0.4+...+102.4 + 5×120 ≈ 805 s ≈ 13.4 min from the moment the
        // backoff run starts. Accept the 10–16 minute band.
        let minutes = switch / 60.0;
        assert!(
            (10.0..16.0).contains(&minutes),
            "kernel gave up after {minutes:.1} minutes"
        );
        assert_eq!(r.delivered, 4_000_000, "backup finished the transfer");
    }

    #[test]
    fn sec42_quick_variant_scales_with_retries() {
        // With 6 retries the give-up shrinks to ~25 s — the mechanism, not
        // the constant, drives the narrative.
        let r = run(&Params {
            max_retries: 6,
            transfer: 1_000_000,
            ..Default::default()
        });
        let switch = r.switch_at.expect("switch happened");
        assert!(
            (5.0..90.0).contains(&switch),
            "6-retry give-up after {switch:.1}s"
        );
    }
}
