//! Middlebox — an MPTCP-option-stripping hop and the graceful plain-TCP
//! fallback.
//!
//! The deployment hazard that motivates MPTCP's fallback design (§1 of the
//! paper; RFC 6824 §3.7): a "transparent" middlebox that normalizes TCP by
//! removing options it does not understand. Here the two-path topology's
//! router is toggled into option-stripping mode by a
//! [`smapp_sim::NetemScript`] command: every forwarded TCP segment
//! loses its kind-30 options, the `MP_CAPABLE` handshake degrades to plain
//! TCP, the path manager's join attempts are refused, and the transfer
//! still completes — on exactly one subflow.
//!
//! The `clear` variant runs the identical world with stripping off, as the
//! control: MPTCP negotiates, the backup join succeeds, two subflows live.

use smapp_mptcp::apps::{BulkSender, Sink};
use smapp_mptcp::StackConfig;
use smapp_pm::topo::{self, CLIENT_ADDR1, CLIENT_ADDR2, SERVER_ADDR};
use smapp_pm::Host;
use smapp_sim::{InstallPolicy, LinkCfg, Netem, NetemScript, Router, SimTime};

use crate::pms::BackupFlagPm;

/// Parameters of one middlebox run.
#[derive(Debug, Clone)]
pub struct Params {
    /// RNG seed.
    pub seed: u64,
    /// Whether the router strips MPTCP options.
    pub strip: bool,
    /// When stripping switches on (default: before the first SYN).
    pub strip_at: SimTime,
    /// Transfer size in bytes.
    pub transfer: u64,
    /// Simulation horizon.
    pub horizon: SimTime,
}

impl Default for Params {
    fn default() -> Self {
        Params {
            seed: 41,
            strip: true,
            strip_at: SimTime::ZERO,
            transfer: 2_000_000,
            horizon: SimTime::from_secs(120),
        }
    }
}

/// Results of one middlebox run.
#[derive(Debug)]
pub struct Results {
    /// Did the client connection end up in plain-TCP fallback?
    pub fallback: bool,
    /// Live + ever-created subflows on the client connection.
    pub subflows: usize,
    /// MPTCP options the router removed.
    pub options_stripped: u64,
    /// Bytes the server received.
    pub delivered: u64,
    /// Completion time, if the transfer finished within the horizon.
    pub completed_at: Option<f64>,
}

/// Run one middlebox experiment.
pub fn run(p: &Params) -> Results {
    run_instrumented(p).1
}

/// Like [`run`], additionally returning the simulator's
/// [`smapp_sim::RunSummary`] for the perf harness and sweep matrix.
pub fn run_instrumented(p: &Params) -> (smapp_sim::RunSummary, Results) {
    // The client tries to add a subflow over its second interface as soon
    // as the connection establishes — which a fallback connection refuses.
    let mut client = Host::new("client", StackConfig::default())
        .with_pm(Box::new(BackupFlagPm::new(CLIENT_ADDR2)));
    client.connect_at(
        SimTime::from_millis(10),
        Some(CLIENT_ADDR1),
        SERVER_ADDR,
        80,
        Box::new(
            BulkSender::new(p.transfer)
                .close_when_done()
                .stop_sim_when_acked(),
        ),
    );
    let mut server = Host::new("server", StackConfig::default());
    server.listen(
        80,
        Box::new(|| {
            Box::new(Sink {
                close_on_eof: true,
                ..Default::default()
            })
        }),
    );
    let net = topo::two_path(
        p.seed,
        client,
        server,
        LinkCfg::mbps_ms(5, 10),
        LinkCfg::mbps_ms(5, 10),
    );
    let mut sim = net.sim;
    sim.core.set_trace(Box::new(smapp_sim::Oracle::new()));
    if p.strip {
        sim.install(
            NetemScript::new().at(p.strip_at, Netem::peer(net.router).strip_mptcp(true)),
            InstallPolicy::Sort,
        )
        .unwrap();
    }
    let summary = sim.run_until(p.horizon);
    smapp_pm::verify::conclude(&mut sim, &summary, "middlebox", p.seed).expect_clean();

    let conn_facts = topo::host(&sim, net.client)
        .stack
        .connections()
        .next()
        .map(|c| (c.is_fallback(), c.subflow_count()));
    let (fallback, subflows) = conn_facts.unwrap_or((false, 0));
    let options_stripped = sim
        .node(net.router)
        .as_any()
        .downcast_ref::<Router>()
        .expect("router node")
        .options_stripped;
    let delivered = topo::host(&sim, net.server)
        .stack
        .connections()
        .next()
        .map(|c| {
            c.app()
                .unwrap()
                .as_any()
                .downcast_ref::<Sink>()
                .unwrap()
                .received
        })
        .unwrap_or(0);
    let completed_at = (delivered >= p.transfer).then(|| summary.ended_at.as_secs_f64());
    (
        summary,
        Results {
            fallback,
            subflows,
            options_stripped,
            delivered,
            completed_at,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stripping_hop_forces_single_subflow_fallback_that_completes() {
        let p = Params {
            transfer: 500_000,
            ..Default::default()
        };
        let r = run(&p);
        assert!(r.fallback, "client fell back to plain TCP");
        assert_eq!(r.subflows, 1, "join refused: one subflow only");
        assert!(r.options_stripped > 0, "the middlebox actually interfered");
        assert_eq!(r.delivered, p.transfer, "graceful fallback completes");
    }

    #[test]
    fn clear_control_negotiates_mptcp_with_two_subflows() {
        let p = Params {
            strip: false,
            transfer: 500_000,
            ..Default::default()
        };
        let r = run(&p);
        assert!(!r.fallback, "MPTCP negotiated");
        assert_eq!(r.subflows, 2, "backup join succeeded");
        assert_eq!(r.options_stripped, 0);
        assert_eq!(r.delivered, p.transfer);
    }

    #[test]
    fn middlebox_is_deterministic_per_seed() {
        let p = Params {
            transfer: 300_000,
            ..Default::default()
        };
        let (s1, _) = run_instrumented(&p);
        let (s2, _) = run_instrumented(&p);
        assert_eq!(s1, s2);
    }
}
