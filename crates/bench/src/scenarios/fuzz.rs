//! Fuzz — randomized generated scenarios under the protocol-invariant
//! oracle, as a first-class registered scenario.
//!
//! The generator lives in [`crate::fuzz`]; this module is the thin
//! scenario adapter that puts a slice of the committed fixed-seed corpus
//! into the perf/sweep matrix, so every `perf_report` run (and therefore
//! every CI build, via `perf_gate`) executes generated scenarios with the
//! oracle enabled alongside the hand-written ones. The full corpus runs in
//! the dedicated `fuzz` binary / CI job.

use crate::fuzz::{run_case, CaseOutcome};

/// Run one corpus seed; the matrix adapter.
pub fn run_instrumented(seed: u64) -> (smapp_sim::RunSummary, CaseOutcome) {
    let out = run_case(seed);
    (out.summary, out)
}

/// The corpus slice the matrix runs: `n` seeds from the front of the
/// committed corpus (smoke keeps it small; the `fuzz` bin runs everything).
pub fn matrix_seeds(n: usize) -> Vec<u64> {
    let corpus = crate::fuzz::default_corpus();
    corpus.into_iter().take(n).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_slice_is_a_corpus_prefix() {
        let s = matrix_seeds(4);
        assert_eq!(s.len(), 4);
        assert_eq!(s, crate::fuzz::default_corpus()[..4].to_vec());
    }

    #[test]
    fn adapter_reports_the_case_outcome() {
        let (summary, out) = run_instrumented(matrix_seeds(1)[0]);
        assert_eq!(summary, out.summary);
        assert!(out.violations.is_empty(), "{:?}", out.violations);
    }
}
