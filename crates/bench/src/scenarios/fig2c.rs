//! Figure 2c — CDF of 100 MB transfer completion times over a 4-path ECMP
//! fabric: the §4.4 refresh controller versus the in-kernel ndiffports.
//!
//! "The two routers load-balance the flows over four available paths that
//! have a capacity of 8 Mbps and delays of respectively 10, 20, 30 and
//! 40 msec. The client sends a 100 MBytes file and opens 5 subflows."
//! Ndiffports gambles once on its 5 random source ports: runs cluster by
//! how many distinct paths the hash picked (the paper sees ≈28 s with 4
//! paths, ≈37 s with 3, ≈55 s with 2). The refresh controller keeps
//! killing the slowest subflow and redrawing, converging toward all four
//! paths ("the shortest time using the four paths is 27.8 s, and the worst
//! time using only one path is 111.7 s").

use smapp::{ControllerRuntime, NdiffportsController, RefreshConfig, RefreshController};
use smapp_mptcp::apps::{BulkSender, Sink};
use smapp_mptcp::StackConfig;
use smapp_netlink::LatencyModel;
use smapp_pm::topo::{self, SERVER_ADDR};
use smapp_pm::{Host, NdiffportsPm};
use smapp_sim::{LinkCfg, SimTime};

use crate::stats::Cdf;

/// Which manager drives the subflows.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Manager {
    /// In-kernel ndiffports (the paper's baseline).
    Ndiffports,
    /// Userspace ndiffports (no refresh) — for ablation.
    NdiffportsUser,
    /// The §4.4 refresh controller.
    Refresh,
}

/// Parameters of one Fig. 2c series.
#[derive(Debug, Clone)]
pub struct Params {
    /// Base RNG seed.
    pub seed0: u64,
    /// Independent runs.
    pub runs: u64,
    /// Transfer size (paper: 100 MB).
    pub transfer: u64,
    /// Subflows per connection (paper: 5).
    pub n: u8,
    /// Manager under test.
    pub manager: Manager,
}

impl Default for Params {
    fn default() -> Self {
        Params {
            seed0: 100,
            runs: 20,
            transfer: 100_000_000,
            n: 5,
            manager: Manager::Refresh,
        }
    }
}

/// Path configs of the paper's fabric: 4 × 8 Mb/s, 10/20/30/40 ms.
pub fn paper_paths() -> Vec<LinkCfg> {
    (1..=4).map(|i| LinkCfg::mbps_ms(8, 10 * i)).collect()
}

/// Run one seed; returns `(completion seconds, distinct paths used)`.
pub fn run_one(p: &Params, seed: u64) -> (f64, usize) {
    let (summary, used) = run_one_instrumented(p, seed);
    (summary.ended_at.as_secs_f64(), used)
}

/// Like [`run_one`], returning the full [`smapp_sim::RunSummary`] (event count, peak
/// queue depth) alongside the distinct-paths count — the perf harness uses
/// the event count both for events/sec and to assert that optimized builds
/// reproduce the baseline trajectory exactly.
pub fn run_one_instrumented(p: &Params, seed: u64) -> (smapp_sim::RunSummary, usize) {
    let mut client = match p.manager {
        Manager::Ndiffports => {
            Host::new("client", StackConfig::default()).with_pm(Box::new(NdiffportsPm::new(p.n)))
        }
        Manager::NdiffportsUser => Host::new("client", StackConfig::default()).with_user(
            ControllerRuntime::boxed(NdiffportsController::new(p.n)),
            LatencyModel::idle_host(),
        ),
        Manager::Refresh => Host::new("client", StackConfig::default()).with_user(
            ControllerRuntime::boxed(RefreshController::new(RefreshConfig {
                n: p.n,
                ..Default::default()
            })),
            LatencyModel::idle_host(),
        ),
    };
    client.connect_at(
        SimTime::from_millis(10),
        None,
        SERVER_ADDR,
        80,
        Box::new(
            BulkSender::new(p.transfer)
                .close_when_done()
                .stop_sim_when_acked(),
        ),
    );
    let mut server = Host::new("server", StackConfig::default());
    server.listen(
        80,
        Box::new(|| {
            Box::new(Sink {
                close_on_eof: true,
                ..Default::default()
            })
        }),
    );
    let net = topo::ecmp(seed, client, server, &paper_paths());
    let mut sim = net.sim;
    sim.core.set_trace(Box::new(smapp_sim::Oracle::new()));
    // Generous horizon: worst case (1 path) is ~110 s for 100 MB.
    let summary = sim.run_until(SimTime::from_secs(1200));
    smapp_pm::verify::conclude(&mut sim, &summary, "fig2c", seed).expect_clean();
    let used = net
        .paths
        .iter()
        .filter(|&&l| {
            sim.core.link_stats(l, smapp_sim::Dir::AtoB).bytes_delivered > p.transfer / 100
        })
        .count();
    (summary, used)
}

/// Results of a Fig. 2c series.
#[derive(Debug)]
pub struct Results {
    /// Completion-time CDF, seconds.
    pub completion: Cdf,
    /// Distinct-paths histogram: `counts[k]` = runs that used k+1 paths.
    pub paths_used: [u64; 4],
}

/// Aggregate `runs` seeds.
pub fn run(p: &Params) -> Results {
    let mut times = Vec::new();
    let mut paths_used = [0u64; 4];
    for i in 0..p.runs {
        let (t, used) = run_one(p, p.seed0 + i);
        times.push(t);
        paths_used[used.clamp(1, 4) - 1] += 1;
    }
    Results {
        completion: Cdf::new(times),
        paths_used,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig2c_refresh_beats_ndiffports() {
        // Reduced size for test speed: 20 MB, 6 runs each.
        let small = |manager| Params {
            runs: 6,
            transfer: 20_000_000,
            manager,
            ..Default::default()
        };
        let refresh = run(&small(Manager::Refresh));
        let ndiff = run(&small(Manager::Ndiffports));
        // Medians: the refresh controller must win.
        let r = refresh.completion.median();
        let n = ndiff.completion.median();
        assert!(
            r < n,
            "refresh median {r:.1}s must beat ndiffports median {n:.1}s"
        );
        // Ndiffports shows spread across path counts; refresh concentrates
        // on high path counts (>= 3 paths in the vast majority of runs).
        let refresh_high: u64 = refresh.paths_used[2] + refresh.paths_used[3];
        assert!(
            refresh_high >= 5,
            "refresh mostly uses >=3 paths: {:?}",
            refresh.paths_used
        );
    }
}
