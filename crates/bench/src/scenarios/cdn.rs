//! CDN — a heavy-tailed, wavy-arrival traffic mix over a multipath edge.
//!
//! The paper's workloads are clean-room shapes (one bulk transfer, chained
//! GETs, a fixed-rate stream). This scenario runs the messier workload a
//! CDN edge actually serves, drawn from [`crate::traffic::TrafficModel`]:
//! flow sizes follow a bounded Pareto (mice dominate counts, elephants
//! dominate bytes), arrivals form a Poisson process modulated by a
//! sinusoidal "diurnal" wave, and the application mix splits short
//! GET-style transfers from paced streaming flows — all bit-deterministic
//! per seed.
//!
//! A dual-homed client plays the user population, opening every sampled
//! flow to one server over the two-path topology with a full-mesh path
//! manager, so short flows and streams share (and compete for) both
//! subflow pools. The run executes under the protocol-invariant oracle
//! like every other scenario.

use std::time::Duration;

use smapp_mptcp::apps::{BulkSender, Sink, StreamSender};
use smapp_mptcp::{App, StackConfig};
use smapp_pm::topo::{self, CLIENT_ADDR1, SERVER_ADDR};
use smapp_pm::{FullMeshPm, Host};
use smapp_sim::{LinkCfg, SimRng, SimTime};

use crate::traffic::{FlowClass, TrafficModel};

/// Parameters of one CDN-traffic run.
#[derive(Debug, Clone)]
pub struct Params {
    /// RNG seed (world and traffic sample).
    pub seed: u64,
    /// Traffic model to sample flows from.
    pub model: TrafficModel,
    /// Cap on sampled flows.
    pub max_flows: usize,
    /// Arrival window end (flows start before this).
    pub window: SimTime,
    /// Simulation horizon.
    pub horizon: SimTime,
}

impl Default for Params {
    fn default() -> Self {
        Params {
            seed: 47,
            model: TrafficModel::cdn(),
            max_flows: 60,
            window: SimTime::from_secs(20),
            horizon: SimTime::from_secs(120),
        }
    }
}

/// Results of one CDN-traffic run.
#[derive(Debug)]
pub struct Results {
    /// Flows the model scheduled.
    pub flows: usize,
    /// Of which paced streaming flows.
    pub streams: usize,
    /// Total bytes the model asked for.
    pub offered: u64,
    /// Bytes the server applications received.
    pub delivered: u64,
    /// Server-side connections observed (== flows when all arrived).
    pub server_conns: usize,
    /// When the run went idle (all flows drained), if within the horizon.
    pub drained_at: Option<f64>,
}

/// Decorrelates the traffic sample from the world RNG.
const TRAFFIC_SALT: u64 = 0xCD11_7AFF_1C5A_17ED;

/// Run one CDN-traffic experiment.
pub fn run(p: &Params) -> Results {
    run_instrumented(p).1
}

/// Like [`run`], additionally returning the simulator's
/// [`smapp_sim::RunSummary`] for the perf harness and sweep matrix.
pub fn run_instrumented(p: &Params) -> (smapp_sim::RunSummary, Results) {
    let mut trng = SimRng::seed_from_u64(p.seed ^ TRAFFIC_SALT);
    let flows = p
        .model
        .sample(&mut trng, SimTime::from_millis(10), p.window, p.max_flows);

    let mut client =
        Host::new("client", StackConfig::default()).with_pm(Box::new(FullMeshPm::new()));
    let mut offered = 0u64;
    let mut streams = 0usize;
    for f in &flows {
        let app: Box<dyn App> = match f.class {
            FlowClass::ShortGet => {
                offered += f.size;
                Box::new(BulkSender::new(f.size).close_when_done())
            }
            FlowClass::Streaming => {
                streams += 1;
                // The stream sends whole blocks, so round the sampled
                // size to what the app will actually write.
                let blocks = (f.size / 16_384).clamp(1, 60);
                offered += blocks * 16_384;
                Box::new(StreamSender::new(16_384, Duration::from_millis(40), blocks))
            }
        };
        client.connect_at(f.start, Some(CLIENT_ADDR1), SERVER_ADDR, 80, app);
    }
    let mut server = Host::new("server", StackConfig::default());
    server.listen(
        80,
        Box::new(|| {
            Box::new(Sink {
                close_on_eof: true,
                ..Default::default()
            })
        }),
    );
    let net = topo::two_path(
        p.seed,
        client,
        server,
        LinkCfg::mbps_ms(20, 10),
        LinkCfg::mbps_ms(10, 25),
    );
    let mut sim = net.sim;
    sim.core.set_trace(Box::new(smapp_sim::Oracle::new()));
    let summary = sim.run_until(p.horizon);
    smapp_pm::verify::conclude(&mut sim, &summary, "cdn", p.seed).expect_clean();

    let server_host = topo::host(&sim, net.server);
    let mut delivered = 0u64;
    let mut server_conns = 0usize;
    for c in server_host.stack.connections() {
        server_conns += 1;
        if let Some(s) = c.app().and_then(|a| a.as_any().downcast_ref::<Sink>()) {
            delivered += s.received;
        }
    }
    let drained_at =
        (summary.reason == smapp_sim::StopReason::Idle).then(|| summary.ended_at.as_secs_f64());
    (
        summary,
        Results {
            flows: flows.len(),
            streams,
            offered,
            delivered,
            server_conns,
            drained_at,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn smoke_params() -> Params {
        Params {
            max_flows: 14,
            // Keep the elephant tail short so the smoke run drains fast.
            model: TrafficModel {
                size_max: 150_000,
                ..TrafficModel::cdn()
            },
            window: SimTime::from_secs(8),
            horizon: SimTime::from_secs(60),
            ..Default::default()
        }
    }

    #[test]
    fn cdn_mix_drains_oracle_clean_with_full_delivery() {
        let p = smoke_params();
        let r = run(&p);
        assert!(r.flows >= 5, "model scheduled a real mix: {}", r.flows);
        assert_eq!(r.server_conns, r.flows, "every flow arrived");
        assert_eq!(r.delivered, r.offered, "every offered byte delivered");
        assert!(r.drained_at.is_some(), "the mix drained within the horizon");
    }

    #[test]
    fn cdn_mix_contains_both_flow_classes() {
        let p = Params {
            max_flows: 40,
            ..smoke_params()
        };
        let r = run(&p);
        assert!(r.streams > 0, "some flows stream");
        assert!(r.streams < r.flows, "most flows are GETs");
    }

    #[test]
    fn cdn_is_deterministic_per_seed() {
        let p = smoke_params();
        let (s1, r1) = run_instrumented(&p);
        let (s2, r2) = run_instrumented(&p);
        assert_eq!(s1, s2);
        assert_eq!(r1.delivered, r2.delivered);
        let (s3, _) = run_instrumented(&Params {
            seed: 48,
            ..smoke_params()
        });
        assert!(s3 != s1, "different seed, different trajectory");
    }
}
