//! Figure 3 — "Kernel path manager is slightly faster than user space path
//! manager to open a second subflow."
//!
//! "The client performs one thousand consecutive HTTP/1.0 GET queries for
//! a 512 KB file. [...] We measure the delay between the SYN of the
//! initial subflow (i.e., containing the MP_CAPABLE option) and the SYN of
//! the second subflow (i.e., containing the MP_JOIN option)." Both
//! managers create the second subflow immediately at establishment; the
//! userspace one pays two netlink boundary crossings — "on average, the
//! user space path manager increases the delay by 23 microseconds",
//! staying below 37 µs under CPU stress.

use std::cell::RefCell;
use std::rc::Rc;

use smapp::{ControllerRuntime, NdiffportsController};
use smapp_mptcp::apps::{GetClient, GetProgress, GetServer};
use smapp_mptcp::StackConfig;
use smapp_netlink::LatencyModel;
use smapp_pm::topo::{self, SERVER_ADDR};
use smapp_pm::{Host, NdiffportsPm};
use smapp_sim::{LinkCfg, SimTime};

use crate::stats::Cdf;
use crate::trace::HandshakeTraceSink;

/// Which path manager creates the second subflow.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Manager {
    /// In-kernel ndiffports.
    Kernel,
    /// Userspace controller behind the netlink boundary.
    Userspace,
}

/// Parameters of one Fig. 3 series.
#[derive(Debug, Clone)]
pub struct Params {
    /// RNG seed.
    pub seed: u64,
    /// Consecutive GETs (paper: 1000).
    pub gets: u32,
    /// Response size (paper: 512 KB).
    pub response: u64,
    /// Manager under test.
    pub manager: Manager,
    /// Model a CPU-stressed host (the paper's stress experiment).
    pub stressed: bool,
}

impl Default for Params {
    fn default() -> Self {
        Params {
            seed: 7,
            gets: 1000,
            response: 512 * 1024,
            manager: Manager::Kernel,
            stressed: false,
        }
    }
}

/// Run one series; returns the CAPA→JOIN deltas (microseconds) plus the
/// number of completed GET cycles.
pub fn run(p: &Params) -> (Cdf, u32) {
    let (_, cdf, completed) = run_instrumented(p);
    (cdf, completed)
}

/// Like [`run`], additionally returning the simulator's [`smapp_sim::RunSummary`]
/// (event count, peak queue depth) for the perf harness.
pub fn run_instrumented(p: &Params) -> (smapp_sim::RunSummary, Cdf, u32) {
    let latency = if p.stressed {
        LatencyModel::stressed_host()
    } else {
        LatencyModel::idle_host()
    };
    let mut client = match p.manager {
        Manager::Kernel => {
            Host::new("client", StackConfig::default()).with_pm(Box::new(NdiffportsPm::new(2)))
        }
        Manager::Userspace => Host::new("client", StackConfig::default()).with_user(
            ControllerRuntime::boxed(NdiffportsController::new(2)),
            latency,
        ),
    };
    let progress = Rc::new(RefCell::new(GetProgress::default()));
    client.connect_at(
        SimTime::from_millis(1),
        None,
        SERVER_ADDR,
        80,
        Box::new(GetClient {
            remaining: p.gets - 1,
            request_size: 100,
            dst: SERVER_ADDR,
            dst_port: 80,
            progress: Rc::clone(&progress),
            stop_when_done: true,
        }),
    );
    let response = p.response;
    let mut server = Host::new("server", StackConfig::default());
    server.listen(80, Box::new(move || Box::new(GetServer::new(response))));

    // 1 Gb/s lab link, 50 µs one-way (the paper's direct Ethernet cable).
    let lab = LinkCfg::new(1_000_000_000, std::time::Duration::from_micros(50));
    let net = topo::two_path(p.seed, client, server, lab.clone(), lab);
    let mut sim = net.sim;
    sim.core.set_trace(smapp_sim::Oracle::wrapping(Box::new(
        HandshakeTraceSink::new(net.client),
    )));
    let summary = sim.run_until(SimTime::from_secs(3600));

    let verdict = smapp_pm::verify::conclude(&mut sim, &summary, "fig3", p.seed);
    verdict.expect_clean();
    let sink = verdict.inner.expect("sink installed");
    let deltas_us: Vec<f64> = sink
        .as_any()
        .downcast_ref::<HandshakeTraceSink>()
        .expect("handshake sink")
        .deltas
        .iter()
        .map(|s| s * 1e6)
        .collect();
    let completed = progress.borrow().completed;
    (summary, Cdf::new(deltas_us), completed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig3_userspace_penalty_small() {
        let gets = 60;
        let (kernel, did_k) = run(&Params {
            gets,
            response: 128 * 1024,
            manager: Manager::Kernel,
            ..Default::default()
        });
        let (user, did_u) = run(&Params {
            gets,
            response: 128 * 1024,
            manager: Manager::Userspace,
            ..Default::default()
        });
        assert_eq!(did_k, gets);
        assert_eq!(did_u, gets);
        assert_eq!(kernel.len(), gets as usize, "one JOIN per connection");
        assert_eq!(user.len(), gets as usize);
        let penalty = user.mean() - kernel.mean();
        // The paper: ≈23 µs on an idle host. Accept a 5–60 µs band (our
        // latency model is calibrated, not fitted).
        assert!(
            (5.0..60.0).contains(&penalty),
            "userspace penalty {penalty:.1}us outside the plausible band \
             (kernel {}; user {})",
            kernel.summary("k"),
            user.summary("u")
        );
        // The whole user CDF sits right of the kernel CDF.
        assert!(user.median() > kernel.median());
    }

    #[test]
    fn fig3_stress_increases_penalty_but_bounded() {
        let gets = 40;
        let (kernel, _) = run(&Params {
            gets,
            response: 64 * 1024,
            manager: Manager::Kernel,
            ..Default::default()
        });
        let (stressed, _) = run(&Params {
            gets,
            response: 64 * 1024,
            manager: Manager::Userspace,
            stressed: true,
            ..Default::default()
        });
        let penalty = stressed.mean() - kernel.mean();
        assert!(
            penalty < 80.0,
            "stressed penalty stays bounded: {penalty:.1}us"
        );
        assert!(penalty > 10.0, "stress costs more: {penalty:.1}us");
    }
}
