//! Figure 2b — CDF of the delay to deliver each 64 KB block under packet
//! loss: the default full-mesh path manager versus the §4.3 smart-stream
//! controller.
//!
//! "We consider a simple streaming application that sends one 64 KBytes
//! block every second. [...] two 5 Mbps links between the client and the
//! server. Each link has a 10 msec delay." Losses of 10–40 % hit the
//! initial path. The paper's claim: the default full-mesh manager shows a
//! multi-second tail (reinjection keeps feeding the crippled subflow and
//! its ever-growing RTO), while the smart controller "provides almost the
//! same CDF of the block delays for packet loss ratios in the 10–40 %
//! range".

use std::time::Duration;

use smapp::{ControllerRuntime, StreamConfig, StreamController};
use smapp_mptcp::apps::{Sink, StreamSender};
use smapp_mptcp::StackConfig;
use smapp_netlink::LatencyModel;
use smapp_pm::topo::{self, CLIENT_ADDR1, CLIENT_ADDR2, SERVER_ADDR};
use smapp_pm::{FullMeshPm, Host};
use smapp_sim::{LinkCfg, LossModel, SimTime};

use crate::stats::Cdf;

/// Which manager drives the subflows.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Manager {
    /// Kernel full-mesh (the paper's baseline).
    FullMesh,
    /// The §4.3 smart-stream controller.
    SmartStream,
}

/// Parameters of one Fig. 2b series.
#[derive(Debug, Clone)]
pub struct Params {
    /// Base RNG seed; run `runs` seeds starting here.
    pub seed0: u64,
    /// Independent runs to aggregate.
    pub runs: u64,
    /// Blocks per run.
    pub blocks: u64,
    /// Loss ratio on the initial path.
    pub loss: f64,
    /// Manager under test.
    pub manager: Manager,
}

impl Default for Params {
    fn default() -> Self {
        Params {
            seed0: 1,
            runs: 5,
            blocks: 30,
            loss: 0.30,
            manager: Manager::SmartStream,
        }
    }
}

/// Run one seed; returns the per-block delivery delays in seconds
/// (completion at the sink minus the block's write time at the sender).
pub fn run_one(p: &Params, seed: u64) -> Vec<f64> {
    run_one_instrumented(p, seed).1
}

/// Like [`run_one`], additionally returning the simulator's
/// [`smapp_sim::RunSummary`] (event count, peak queue depth) for the perf
/// harness and sweep matrix.
pub fn run_one_instrumented(p: &Params, seed: u64) -> (smapp_sim::RunSummary, Vec<f64>) {
    let block = 64 * 1024u64;
    let mut client = match p.manager {
        Manager::FullMesh => {
            Host::new("client", StackConfig::default()).with_pm(Box::new(FullMeshPm::new()))
        }
        Manager::SmartStream => Host::new("client", StackConfig::default()).with_user(
            ControllerRuntime::boxed(StreamController::new(StreamConfig::paper(CLIENT_ADDR2))),
            LatencyModel::idle_host(),
        ),
    };
    client.connect_at(
        SimTime::from_millis(10),
        Some(CLIENT_ADDR1),
        SERVER_ADDR,
        80,
        Box::new(StreamSender::new(block, Duration::from_secs(1), p.blocks)),
    );
    let mut server = Host::new("server", StackConfig::default());
    server.listen(
        80,
        Box::new(move || {
            Box::new(Sink {
                close_on_eof: true,
                stop_on_eof: true,
                ..Sink::with_blocks(block)
            })
        }),
    );
    let net = topo::two_path(
        seed,
        client,
        server,
        LinkCfg::mbps_ms(5, 10),
        LinkCfg::mbps_ms(5, 10),
    );
    let mut sim = net.sim;
    sim.core.set_trace(Box::new(smapp_sim::Oracle::new()));
    let l1 = net.link1;
    let loss = p.loss;
    // Loss starts with the stream (after the handshake completes).
    sim.at(SimTime::from_millis(200), move |core| {
        core.set_loss_both(l1, LossModel::Bernoulli(loss));
    });
    let summary = sim.run_until(SimTime::from_secs(p.blocks + 120));
    smapp_pm::verify::conclude(&mut sim, &summary, "fig2b", seed).expect_clean();

    // Pair block completions (sink side) with block starts (sender side).
    let starts: Vec<SimTime> = topo::host(&sim, net.client)
        .stack
        .connections()
        .next()
        .and_then(|c| c.app())
        .and_then(|a| a.as_any().downcast_ref::<StreamSender>())
        .map(|s| s.block_starts.clone())
        .unwrap_or_default();
    let completions: Vec<SimTime> = topo::host(&sim, net.server)
        .stack
        .connections()
        .next()
        .and_then(|c| c.app())
        .and_then(|a| a.as_any().downcast_ref::<Sink>())
        .map(|s| s.block_completions.clone())
        .unwrap_or_default();
    let delays = starts
        .iter()
        .zip(&completions)
        .map(|(s, c)| c.saturating_since(*s).as_secs_f64())
        .collect();
    (summary, delays)
}

/// Aggregate `runs` seeds into one CDF.
pub fn run(p: &Params) -> Cdf {
    let mut delays = Vec::new();
    for i in 0..p.runs {
        delays.extend(run_one(p, p.seed0 + i));
    }
    Cdf::new(delays)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig2b_smart_stream_bounds_tail() {
        let smart = run(&Params {
            runs: 2,
            blocks: 20,
            loss: 0.30,
            manager: Manager::SmartStream,
            ..Default::default()
        });
        let baseline = run(&Params {
            runs: 2,
            blocks: 20,
            loss: 0.30,
            manager: Manager::FullMesh,
            ..Default::default()
        });
        assert!(!smart.is_empty() && !baseline.is_empty());
        // The paper's qualitative claim: the smart controller's tail beats
        // the default full-mesh tail under 30% loss.
        let smart_p90 = smart.quantile(0.9);
        let base_p90 = baseline.quantile(0.9);
        assert!(
            smart_p90 < base_p90,
            "smart p90 {smart_p90:.2}s must beat baseline p90 {base_p90:.2}s"
        );
        // And the bulk of smart blocks arrive within ~1.5 s.
        assert!(
            smart.fraction_at_or_below(1.5) > 0.7,
            "most smart blocks within 1.5s: {}",
            smart.summary("smart")
        );
    }
}
