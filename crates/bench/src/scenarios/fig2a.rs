//! Figure 2a — "The subflow controller detects when the retransmission
//! timer becomes too long and creates the backup subflow at this time."
//!
//! A bulk transfer starts over the primary path; at t = 1 s its loss ratio
//! jumps to 30 %. The §4.2 controller watches `timeout` events and, when
//! the backed-off RTO exceeds 1 s, cuts the primary and opens a subflow
//! over the backup interface. The output is the data-sequence-vs-time
//! trace, coloured by path — the paper's plot.

use std::time::Duration;

use smapp::{controller_of, BackupConfig, BackupController, ControllerRuntime};
use smapp_mptcp::apps::{BulkSender, Sink};
use smapp_mptcp::StackConfig;
use smapp_netlink::LatencyModel;
use smapp_pm::topo::{self, CLIENT_ADDR1, CLIENT_ADDR2, SERVER_ADDR};
use smapp_pm::Host;
use smapp_sim::{LinkCfg, LossModel, SimTime};

use crate::trace::SeqTraceSink;

/// Parameters of the Fig. 2a run.
#[derive(Debug, Clone)]
pub struct Params {
    /// RNG seed.
    pub seed: u64,
    /// When the primary path degrades.
    pub loss_onset: SimTime,
    /// Loss ratio after onset (paper: 0.30).
    pub loss: f64,
    /// Controller threshold (paper: 1 s).
    pub rto_threshold: Duration,
    /// Transfer size.
    pub transfer: u64,
    /// Simulation horizon.
    pub horizon: SimTime,
}

impl Default for Params {
    fn default() -> Self {
        Params {
            seed: 42,
            loss_onset: SimTime::from_secs(1),
            loss: 0.30,
            rto_threshold: Duration::from_secs(1),
            transfer: 2_000_000,
            horizon: SimTime::from_secs(60),
        }
    }
}

/// Results of the Fig. 2a run.
#[derive(Debug)]
pub struct Results {
    /// `(seconds, relative data seq, path)` rows; path 0 = primary
    /// ("Master" in the paper), 1 = backup.
    pub rows: Vec<(f64, u64, usize)>,
    /// When the controller switched, if it did.
    pub switch_at: Option<f64>,
    /// Bytes the server received.
    pub delivered: u64,
    /// Simulated completion time (all data acknowledged).
    pub completed_at: Option<f64>,
}

/// Run the experiment.
pub fn run(p: &Params) -> Results {
    run_instrumented(p).1
}

/// Like [`run`], additionally returning the simulator's [`smapp_sim::RunSummary`]
/// (event count, peak queue depth) for the perf harness.
pub fn run_instrumented(p: &Params) -> (smapp_sim::RunSummary, Results) {
    let controller = BackupController::new(BackupConfig {
        rto_threshold: p.rto_threshold,
        backup_src: CLIENT_ADDR2,
    });
    let mut client = Host::new("client", StackConfig::default()).with_user(
        ControllerRuntime::boxed(controller),
        LatencyModel::idle_host(),
    );
    client.connect_at(
        SimTime::from_millis(10),
        Some(CLIENT_ADDR1),
        SERVER_ADDR,
        80,
        Box::new(
            BulkSender::new(p.transfer)
                .close_when_done()
                .stop_sim_when_acked(),
        ),
    );
    let mut server = Host::new("server", StackConfig::default());
    server.listen(
        80,
        Box::new(|| {
            Box::new(Sink {
                close_on_eof: true,
                ..Default::default()
            })
        }),
    );
    let net = topo::two_path(
        p.seed,
        client,
        server,
        LinkCfg::mbps_ms(5, 10),
        LinkCfg::mbps_ms(5, 10),
    );
    let mut sim = net.sim;
    sim.core
        .set_trace(smapp_sim::Oracle::wrapping(Box::new(SeqTraceSink::new(
            vec![net.link1, net.link2],
        ))));
    let l1 = net.link1;
    let (onset, loss) = (p.loss_onset, p.loss);
    sim.at(onset, move |core| {
        core.set_loss_both(l1, LossModel::Bernoulli(loss));
    });
    let summary = sim.run_until(p.horizon);

    let verdict = smapp_pm::verify::conclude(&mut sim, &summary, "fig2a", p.seed);
    verdict.expect_clean();
    let sink = verdict.inner.expect("trace sink installed");
    let rows = sink
        .as_any()
        .downcast_ref::<SeqTraceSink>()
        .expect("seq sink")
        .relative_rows();

    let client_host = topo::host(&sim, net.client);
    let ctrl = controller_of::<BackupController>(client_host).unwrap();
    let switch_at = ctrl.switchovers.first().map(|(t, _, _)| t.as_secs_f64());
    let delivered = topo::host(&sim, net.server)
        .stack
        .connections()
        .next()
        .map(|c| {
            c.app()
                .unwrap()
                .as_any()
                .downcast_ref::<Sink>()
                .unwrap()
                .received
        })
        .unwrap_or(0);
    let completed_at = (delivered >= p.transfer).then(|| summary.ended_at.as_secs_f64());
    (
        summary,
        Results {
            rows,
            switch_at,
            delivered,
            completed_at,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig2a_backup_switchover() {
        let p = Params {
            transfer: 1_000_000,
            ..Default::default()
        };
        let r = run(&p);
        let switch = r.switch_at.expect("controller switched");
        assert!(switch > 1.0, "switch after loss onset, got {switch}");
        assert!(switch < 30.0, "switch within seconds, got {switch}");
        assert_eq!(r.delivered, p.transfer, "transfer completed via backup");
        // Before the switch: only path 0; after (plus a little slack for
        // in-flight packets): new data on path 1 only.
        let before: Vec<_> = r.rows.iter().filter(|(t, _, _)| *t < switch).collect();
        assert!(before.iter().all(|(_, _, path)| *path == 0));
        let after_tail: Vec<_> = r
            .rows
            .iter()
            .filter(|(t, _, _)| *t > switch + 0.1)
            .collect();
        assert!(!after_tail.is_empty());
        assert!(after_tail.iter().all(|(_, _, path)| *path == 1));
        // The sequence trace progresses on the backup path.
        let max_seq_backup = after_tail.iter().map(|(_, s, _)| *s).max().unwrap();
        let max_seq_primary = before.iter().map(|(_, s, _)| *s).max().unwrap();
        assert!(max_seq_backup > max_seq_primary);
    }
}
