//! Handover — break-before-make WiFi→LTE mobility under the scripted
//! dynamics engine.
//!
//! The §4.2 story taken to its mobile conclusion: a dual-homed smartphone
//! uploads over WiFi; as the user walks away the path first *degrades*
//! (scripted loss onset) and then *disappears* (scripted interface-down —
//! the radio loses its association). The smart-backup controller reacts to
//! whichever signal lands first: the backed-off RTO crossing the 1 s
//! threshold (the paper's soft switch), or the hard `IfaceDown` subflow
//! death (mobility). Either way the cellular subflow — never established
//! beforehand, saving energy and radio resources — is activated and the
//! transfer completes over LTE.
//!
//! Everything that changes mid-run is a [`smapp_sim::NetemScript`]
//! entry executed through the calendar event queue, so per-seed
//! trajectories are bit-identical across reruns and `--jobs N` sweeps.

use std::time::Duration;

use smapp::{controller_of, BackupConfig, BackupController, ControllerRuntime};
use smapp_mptcp::apps::{BulkSender, Sink};
use smapp_mptcp::StackConfig;
use smapp_netlink::LatencyModel;
use smapp_pm::topo::{self, CLIENT_ADDR1, CLIENT_ADDR2, SERVER_ADDR};
use smapp_pm::Host;
use smapp_sim::{InstallPolicy, LinkCfg, LossPct, Netem, NetemScript, SimTime};

use crate::trace::SeqTraceSink;

/// Parameters of one handover run.
#[derive(Debug, Clone)]
pub struct Params {
    /// RNG seed.
    pub seed: u64,
    /// When the WiFi path starts degrading.
    pub loss_onset: SimTime,
    /// WiFi loss ratio after onset.
    pub loss: f64,
    /// When the WiFi interface goes down entirely (the hard break).
    pub break_at: SimTime,
    /// Controller RTO threshold for the soft switch (paper: 1 s).
    pub rto_threshold: Duration,
    /// Transfer size in bytes.
    pub transfer: u64,
    /// Simulation horizon.
    pub horizon: SimTime,
}

impl Default for Params {
    fn default() -> Self {
        Params {
            seed: 21,
            loss_onset: SimTime::from_secs(1),
            loss: 0.30,
            break_at: SimTime::from_secs(5),
            rto_threshold: Duration::from_secs(1),
            transfer: 2_000_000,
            horizon: SimTime::from_secs(120),
        }
    }
}

/// Results of one handover run.
#[derive(Debug)]
pub struct Results {
    /// When the controller activated the cellular subflow (seconds).
    pub switch_at: Option<f64>,
    /// Bytes the server received.
    pub delivered: u64,
    /// Completion time, if the transfer finished within the horizon.
    pub completed_at: Option<f64>,
    /// `(seconds, relative data seq, path)` trace rows (path 0 = WiFi,
    /// 1 = LTE).
    pub rows: Vec<(f64, u64, usize)>,
}

/// Run one handover.
pub fn run(p: &Params) -> Results {
    run_instrumented(p).1
}

/// Like [`run`], additionally returning the simulator's
/// [`smapp_sim::RunSummary`] for the perf harness and sweep matrix.
pub fn run_instrumented(p: &Params) -> (smapp_sim::RunSummary, Results) {
    let controller = BackupController::new(BackupConfig {
        rto_threshold: p.rto_threshold,
        backup_src: CLIENT_ADDR2, // the cellular interface
    });
    let mut client = Host::new("smartphone", StackConfig::default()).with_user(
        ControllerRuntime::boxed(controller),
        LatencyModel::idle_host(),
    );
    client.connect_at(
        SimTime::from_millis(10),
        Some(CLIENT_ADDR1), // start on WiFi
        SERVER_ADDR,
        80,
        Box::new(
            BulkSender::new(p.transfer)
                .close_when_done()
                .stop_sim_when_acked(),
        ),
    );
    let mut server = Host::new("server", StackConfig::default());
    server.listen(
        80,
        Box::new(|| {
            Box::new(Sink {
                close_on_eof: true,
                ..Default::default()
            })
        }),
    );
    let net = topo::two_path(
        p.seed,
        client,
        server,
        LinkCfg::mbps_ms(5, 10), // WiFi
        LinkCfg::mbps_ms(5, 40), // LTE: more delay
    );
    let mut sim = net.sim;
    sim.core
        .set_trace(smapp_sim::Oracle::wrapping(Box::new(SeqTraceSink::new(
            vec![net.link1, net.link2],
        ))));

    // The mobility script: degrade, then hard-break, the WiFi path.
    sim.install(
        NetemScript::new()
            .at(
                p.loss_onset,
                Netem::on(net.link1).loss(LossPct::ratio(p.loss)),
            )
            .at(p.break_at, Netem::iface(net.client_if1).down()),
        InstallPolicy::Sort,
    )
    .unwrap();
    let summary = sim.run_until(p.horizon);

    let verdict = smapp_pm::verify::conclude(&mut sim, &summary, "handover", p.seed);
    verdict.expect_clean();
    let sink = verdict.inner.expect("trace installed");
    let rows = sink
        .as_any()
        .downcast_ref::<SeqTraceSink>()
        .expect("seq sink")
        .relative_rows();
    let phone = topo::host(&sim, net.client);
    let ctrl = controller_of::<BackupController>(phone).unwrap();
    let switch_at = ctrl.switchovers.first().map(|(t, _, _)| t.as_secs_f64());
    let delivered = topo::host(&sim, net.server)
        .stack
        .connections()
        .next()
        .map(|c| {
            c.app()
                .unwrap()
                .as_any()
                .downcast_ref::<Sink>()
                .unwrap()
                .received
        })
        .unwrap_or(0);
    let completed_at = (delivered >= p.transfer).then(|| summary.ended_at.as_secs_f64());
    (
        summary,
        Results {
            switch_at,
            delivered,
            completed_at,
            rows,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handover_activates_backup_and_completes() {
        // 2 MB at 5 Mb/s needs >3 s of wire time, so the 1 s loss onset
        // and 5 s hard break both land mid-transfer.
        let p = Params::default();
        let r = run(&p);
        let switch = r.switch_at.expect("controller activated the backup");
        assert!(
            switch > p.loss_onset.as_secs_f64(),
            "switch after onset, got {switch}"
        );
        assert!(switch < 30.0, "switch within seconds, got {switch}");
        assert_eq!(r.delivered, p.transfer, "transfer completed over LTE");
        // After the hard break nothing more flows on the WiFi path.
        let break_s = p.break_at.as_secs_f64();
        assert!(
            r.rows
                .iter()
                .all(|(t, _, path)| *path != 0 || *t <= break_s),
            "no WiFi traffic after the interface went down"
        );
    }

    #[test]
    fn hard_break_before_soft_switch_still_hands_over() {
        // Break the WiFi interface *before* the RTO can cross the 1 s
        // threshold: the controller must react to the IfaceDown subflow
        // death instead of the timeout signal.
        let p = Params {
            loss_onset: SimTime::from_millis(900),
            break_at: SimTime::from_secs(1),
            ..Default::default()
        };
        let r = run(&p);
        assert!(r.switch_at.is_some(), "hard break still activates backup");
        assert_eq!(r.delivered, p.transfer);
    }

    #[test]
    fn handover_is_deterministic_per_seed() {
        let p = Params {
            transfer: 300_000,
            ..Default::default()
        };
        let (s1, r1) = run_instrumented(&p);
        let (s2, r2) = run_instrumented(&p);
        assert_eq!(s1, s2);
        assert_eq!(r1.rows, r2.rows);
        assert_eq!(r1.switch_at, r2.switch_at);
    }
}
