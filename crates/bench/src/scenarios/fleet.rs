//! Fleet — a many-client workload far beyond anything in the paper.
//!
//! The paper's experiments all run a *single* SMAPP client. The north-star
//! system serves heavy traffic from millions of users, so this scenario
//! opens the fleet dimension: hundreds to thousands of concurrent SMAPP
//! clients, each a full multihomed MPTCP endpoint, doing staggered
//! HTTP/1.0-style GETs against one server through a shared ECMP bottleneck
//! fabric. Half the clients run the in-kernel ndiffports path manager, half
//! run the §4.4 refresh controller behind the netlink boundary — the two
//! production configurations, side by side under contention.
//!
//! Besides opening a workload dimension, the fleet is a deliberate stress
//! test of the simulator's calendar event queue: thousands of concurrent
//! connections keep tens of thousands of timers and in-flight packets
//! queued at once — depths far beyond the ~5.7 k peak the fig3 chain
//! reaches — while per-client `/24` routes exercise the router's memoized
//! longest-prefix-match path.

use std::cell::RefCell;
use std::rc::Rc;
use std::time::Duration;

use smapp::{ControllerRuntime, RefreshConfig, RefreshController};
use smapp_mptcp::apps::{GetClient, GetProgress, GetServer};
use smapp_mptcp::{ConnState, StackConfig};
use smapp_netlink::{decode, LatencyModel, PmNlMessage};
use smapp_pm::topo::{self, SERVER_ADDR};
use smapp_pm::{Host, NdiffportsPm};
use smapp_sim::{
    Addr, AddrPrefix, InstallPolicy, LinkCfg, Netem, NetemScript, Router, SimTime, Simulator,
};

use crate::sweep::fnv1a;

/// Parameters of one fleet run.
#[derive(Debug, Clone)]
pub struct Params {
    /// Number of concurrent clients (paper scenarios: 1; fleet: 100s–1000s).
    pub clients: usize,
    /// Chained GETs per client.
    pub gets: u32,
    /// Response size per GET, bytes.
    pub response: u64,
    /// Request size, bytes.
    pub request: usize,
    /// Connect-time spacing between consecutive clients.
    pub stagger: Duration,
    /// Subflows per client connection.
    pub n_subflows: u8,
    /// The shared bottleneck: parallel ECMP paths between the two routers.
    pub paths: Vec<LinkCfg>,
    /// Per-client access link.
    pub access: LinkCfg,
    /// Sockdiag probe delay after each client's connect instant: every
    /// client is probed mid-transfer at `connect + probe_after` and again
    /// fleet-wide at 500 ms. `None` disables probing (probes are strictly
    /// read-only, so trajectories are identical either way).
    pub probe_after: Option<Duration>,
    /// Simulation horizon (the run normally drains and stops earlier).
    pub horizon: SimTime,
}

impl Default for Params {
    fn default() -> Self {
        Params {
            clients: 800,
            gets: 1,
            response: 128 * 1024,
            request: 100,
            stagger: Duration::from_millis(2),
            n_subflows: 2,
            // 4 × 50 Mb/s with spread delays: a 200 Mb/s shared fabric.
            paths: vec![
                LinkCfg::mbps_ms(50, 5),
                LinkCfg::mbps_ms(50, 10),
                LinkCfg::mbps_ms(50, 15),
                LinkCfg::mbps_ms(50, 20),
            ],
            access: LinkCfg::mbps_ms(100, 2),
            probe_after: Some(Duration::from_millis(40)),
            horizon: SimTime::from_secs(120),
        }
    }
}

/// The addressing scheme below supports this many clients before the
/// second octet would overflow (16 + 10_000/200 = 66 ≤ 255, with room to
/// spare); [`run_instrumented`] rejects larger fleets up front rather
/// than wrapping octets into colliding addresses.
pub const MAX_CLIENTS: usize = 10_000;

/// Address of client `i` (one unique /24 per client).
fn client_addr(i: usize) -> Addr {
    // 10.16.0.0 upward — disjoint from the 10.0.x.x experiment space.
    Addr::new(10, 16 + (i / 200) as u8, (i % 200) as u8, 1)
}

/// Aggregate results of a fleet run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FleetStats {
    /// GET cycles expected (`clients × gets`).
    pub expected: u64,
    /// GET cycles completed within the horizon.
    pub completed: u64,
    /// Clients that finished every GET.
    pub clients_done: usize,
    /// Completion time of the last finished GET, nanoseconds.
    pub last_completion_ns: u64,
    /// FNV-1a digest over every client's completion-time series (client
    /// order, nanosecond precision) — the byte-parity fingerprint of the
    /// whole fleet trajectory.
    pub completions_digest: u64,
    /// Sockdiag probes answered across the fleet.
    pub diag_probes: u64,
    /// Connections reported across all sockdiag replies.
    pub diag_conns: u64,
    /// Subflow snapshots (with RTT/cwnd) across all sockdiag replies.
    pub diag_subflows: u64,
    /// Connections caught live mid-transfer: established, with at least
    /// one subflow reporting a nonzero cwnd and a sampled RTT.
    pub diag_live: u64,
    /// FNV-1a digest over the raw encoded sockdiag reply frames of every
    /// client, in client order — byte parity for the introspection plane.
    pub diag_digest: u64,
}

/// Run one seed; returns the simulator summary plus fleet statistics.
pub fn run_instrumented(p: &Params, seed: u64) -> (smapp_sim::RunSummary, FleetStats) {
    assert!(p.clients > 0 && p.gets > 0 && !p.paths.is_empty());
    assert!(
        p.clients <= MAX_CLIENTS,
        "fleet addressing supports at most {MAX_CLIENTS} clients"
    );
    let mut sim = Simulator::new(seed);
    sim.core.set_trace(Box::new(smapp_sim::Oracle::new()));

    // Server.
    let response = p.response;
    let mut server = Host::new("server", StackConfig::default());
    server.listen(80, Box::new(move || Box::new(GetServer::new(response))));
    let server_id = sim.add_node(Box::new(server));
    let s_if = sim.add_iface(server_id, SERVER_ADDR, "eth0");

    // The two routers around the shared bottleneck.
    let r1_id = sim.add_node(Box::new(Router::new(11)));
    let r2_id = sim.add_node(Box::new(Router::new(22)));
    let r2_s = sim.add_iface(r2_id, Addr::new(10, 0, 9, 254), "toS");
    sim.connect(r2_s, s_if, LinkCfg::mbps_ms(1000, 1));

    let mut r1_ups = Vec::new();
    let mut r2_ups = Vec::new();
    for (i, cfg) in p.paths.iter().enumerate() {
        let a = sim.add_iface(r1_id, Addr::new(10, 1, i as u8, 1), "up");
        let b = sim.add_iface(r2_id, Addr::new(10, 1, i as u8, 2), "down");
        sim.connect(a, b, cfg.clone());
        r1_ups.push(a);
        r2_ups.push(b);
    }

    // Clients: even indices run the in-kernel ndiffports PM, odd indices
    // the userspace refresh controller — the fleet is heterogeneous.
    let mut progress: Vec<Rc<RefCell<GetProgress>>> = Vec::with_capacity(p.clients);
    let mut client_ids: Vec<smapp_sim::NodeId> = Vec::with_capacity(p.clients);
    let mut client_routes: Vec<(AddrPrefix, smapp_sim::IfaceId)> = Vec::with_capacity(p.clients);
    for i in 0..p.clients {
        let mut client = if i % 2 == 0 {
            Host::new(format!("c{i}"), StackConfig::default())
                .with_pm(Box::new(NdiffportsPm::new(p.n_subflows)))
        } else {
            Host::new(format!("c{i}"), StackConfig::default()).with_user(
                ControllerRuntime::boxed(RefreshController::new(RefreshConfig {
                    n: p.n_subflows,
                    ..Default::default()
                })),
                LatencyModel::idle_host(),
            )
        };
        let prog = Rc::new(RefCell::new(GetProgress::default()));
        client.connect_at(
            SimTime::from_millis(10) + p.stagger * i as u32,
            None,
            SERVER_ADDR,
            80,
            Box::new(GetClient {
                remaining: p.gets - 1,
                request_size: p.request,
                dst: SERVER_ADDR,
                dst_port: 80,
                progress: Rc::clone(&prog),
                stop_when_done: false,
            }),
        );
        progress.push(prog);

        let addr = client_addr(i);
        let client_id = sim.add_node(Box::new(client));
        client_ids.push(client_id);
        let c_if = sim.add_iface(client_id, addr, "eth0");
        let r_if = sim.add_iface(
            r1_id,
            Addr::new(addr.octets()[0], addr.octets()[1], addr.octets()[2], 254),
            "toC",
        );
        sim.connect(c_if, r_if, p.access.clone());
        client_routes.push((AddrPrefix::new(addr, 24), r_if));
    }

    {
        let r1 = sim
            .node_mut(r1_id)
            .as_any_mut()
            .downcast_mut::<Router>()
            .unwrap();
        r1.add_route("10.0.9.0/24".parse().unwrap(), r1_ups);
        for (prefix, iface) in client_routes {
            r1.add_route(prefix, vec![iface]);
        }
    }
    {
        let r2 = sim
            .node_mut(r2_id)
            .as_any_mut()
            .downcast_mut::<Router>()
            .unwrap();
        r2.add_route("10.0.9.0/24".parse().unwrap(), vec![r2_s]);
        // Return traffic to every client funnels back over the bottleneck.
        r2.add_route("10.0.0.0/8".parse().unwrap(), r2_ups);
    }

    // Sockdiag sweep: probe every client mid-transfer (shortly after its
    // own staggered connect) and once more fleet-wide at 500 ms. Probes
    // are strictly read-only — no RNG draws, no sends — so a probed run's
    // trajectory is bit-identical to an unprobed one.
    if let Some(after) = p.probe_after {
        let mut script = NetemScript::new();
        for (i, &id) in client_ids.iter().enumerate() {
            let connect = SimTime::from_millis(10) + p.stagger * i as u32;
            script.add(connect + after, Netem::peer(id).probe());
            script.add(SimTime::from_millis(500), Netem::peer(id).probe());
        }
        sim.install(script, InstallPolicy::Sort).unwrap();
    }

    // Watchdog: the refresh controllers re-arm their poll timers for as
    // long as they live, so the event queue never drains on its own. A
    // 1 Hz script watches aggregate progress and stops the run as soon as
    // every GET has completed — `ended_at` then reports the fleet's true
    // completion second instead of the horizon.
    let expected = p.clients as u64 * p.gets as u64;
    let watch: Rc<Vec<Rc<RefCell<GetProgress>>>> = Rc::new(progress.clone());
    for t in 1..=(p.horizon.as_secs_f64().ceil() as u64) {
        let watch = Rc::clone(&watch);
        sim.at(SimTime::from_secs(t), move |core| {
            let done: u64 = watch.iter().map(|c| c.borrow().completed as u64).sum();
            if done >= expected {
                core.request_stop();
            }
        });
    }

    let summary = sim.run_until(p.horizon);
    smapp_pm::verify::conclude(&mut sim, &summary, "fleet", seed).expect_clean();

    // Fold every client's completion series into the stats.
    let mut completed = 0u64;
    let mut clients_done = 0usize;
    let mut last_ns = 0u64;
    let mut digest_bytes: Vec<u8> = Vec::with_capacity(p.clients * 16);
    for prog in &progress {
        let prog = prog.borrow();
        completed += prog.completed as u64;
        if prog.completed >= p.gets {
            clients_done += 1;
        }
        for t in &prog.completions {
            let ns = t.as_nanos();
            last_ns = last_ns.max(ns);
            digest_bytes.extend_from_slice(&ns.to_le_bytes());
        }
        // Client delimiter keeps (a,bc) and (ab,c) distributions distinct.
        digest_bytes.push(0xFF);
    }
    // Fold the sockdiag plane into the stats: decode every stored reply
    // frame (exercising the full netlink wire path) and fingerprint the
    // raw bytes for per-seed parity.
    let mut diag_probes = 0u64;
    let mut diag_conns = 0u64;
    let mut diag_subflows = 0u64;
    let mut diag_live = 0u64;
    let mut diag_bytes: Vec<u8> = Vec::new();
    for &id in &client_ids {
        let host = topo::host(&sim, id);
        diag_probes += host.diag.probes;
        for frame in &host.diag.replies {
            diag_bytes.extend_from_slice(frame);
            let Ok(PmNlMessage::DiagReply { conns, .. }) = decode(frame) else {
                panic!("stored probe reply must decode as a diag reply");
            };
            for c in &conns {
                diag_conns += 1;
                diag_subflows += c.subflows.len() as u64;
                if c.state == ConnState::Established
                    && c.subflows.iter().any(|(_, i)| i.cwnd > 0 && i.srtt_us > 0)
                {
                    diag_live += 1;
                }
            }
        }
    }
    let stats = FleetStats {
        expected,
        completed,
        clients_done,
        last_completion_ns: last_ns,
        completions_digest: fnv1a(&digest_bytes),
        diag_probes,
        diag_conns,
        diag_subflows,
        diag_live,
        diag_digest: fnv1a(&diag_bytes),
    };
    (summary, stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Params {
        Params {
            clients: 24,
            gets: 2,
            response: 24 * 1024,
            stagger: Duration::from_millis(5),
            paths: vec![LinkCfg::mbps_ms(50, 5), LinkCfg::mbps_ms(50, 10)],
            ..Default::default()
        }
    }

    #[test]
    fn fleet_completes_and_is_deterministic() {
        let p = small();
        let (s1, f1) = run_instrumented(&p, 3);
        assert_eq!(
            f1.completed, f1.expected,
            "all GETs complete within the horizon: {f1:?}"
        );
        assert_eq!(f1.clients_done, p.clients);
        assert!(f1.last_completion_ns > 0);
        // The watchdog stops the run at the first whole second after the
        // fleet finishes — well before the horizon.
        assert_eq!(s1.reason, smapp_sim::StopReason::Requested);
        assert!(s1.ended_at < p.horizon);
        // The queue holds at least one pending item per client early on.
        assert!(
            s1.peak_queue > p.clients,
            "fleet stresses the event queue: peak {} with {} clients",
            s1.peak_queue,
            p.clients
        );
        // The sockdiag sweep answered every scripted probe (two per
        // client) and caught real mid-run state: connections with subflow
        // RTT/cwnd snapshots, at least one of them live mid-transfer.
        assert_eq!(f1.diag_probes, 2 * p.clients as u64);
        assert!(f1.diag_conns > 0, "dumps report connections: {f1:?}");
        assert!(f1.diag_subflows > 0, "dumps report subflows: {f1:?}");
        assert!(
            f1.diag_live > 0,
            "a mid-transfer probe sees established conns with cwnd/RTT: {f1:?}"
        );
        // Same seed ⇒ bit-identical trajectory (digest covers every
        // completion instant of every client), including the encoded
        // sockdiag reply bytes.
        let (s2, f2) = run_instrumented(&p, 3);
        assert_eq!(f1, f2);
        assert_eq!(s1.events, s2.events);
        assert_eq!(s1.ended_at, s2.ended_at);
        // Different seed ⇒ different micro-trajectory.
        let (_, f3) = run_instrumented(&p, 4);
        assert_ne!(f1.completions_digest, f3.completions_digest);
    }

    #[test]
    fn probes_are_invisible_to_the_trajectory() {
        // A probed run and an unprobed run of the same seed must agree on
        // every completion instant: sockdiag is a pure observer.
        let p = small();
        let (_, probed) = run_instrumented(&p, 9);
        let unprobed_p = Params {
            probe_after: None,
            ..small()
        };
        let (_, unprobed) = run_instrumented(&unprobed_p, 9);
        assert!(probed.diag_probes > 0 && unprobed.diag_probes == 0);
        assert_eq!(probed.completions_digest, unprobed.completions_digest);
        assert_eq!(probed.last_completion_ns, unprobed.last_completion_ns);
    }
}
