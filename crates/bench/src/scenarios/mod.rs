//! Experiment scenarios — one module per paper artifact, plus workloads
//! that go beyond the paper (the many-client [`fleet`], the scripted
//! network-dynamics trio [`handover`], [`flap`], [`middlebox`], the
//! heavy-tailed [`cdn`] traffic mix, and the generated-scenario [`fuzz`]
//! corpus running under the protocol-invariant oracle).

pub mod cdn;
pub mod fig2a;
pub mod fig2b;
pub mod fig2c;
pub mod fig3;
pub mod flap;
pub mod fleet;
pub mod fuzz;
pub mod handover;
pub mod middlebox;
pub mod sec42;

/// Every registered scenario, by module name. The scenario-coverage guard
/// (`tests/scenario_coverage.rs`) asserts that this list matches the
/// `pub mod` declarations above **and** that every entry appears in the
/// `perf_report --smoke` matrix — a new scenario cannot be added without
/// being benchmarked.
pub const ALL: &[&str] = &[
    "cdn",
    "fig2a",
    "fig2b",
    "fig2c",
    "fig3",
    "flap",
    "fleet",
    "fuzz",
    "handover",
    "middlebox",
    "sec42",
];
