//! Experiment scenarios — one module per paper artifact, plus workloads
//! that go beyond the paper (the many-client [`fleet`]).

pub mod fig2a;
pub mod fig2b;
pub mod fig2c;
pub mod fig3;
pub mod fleet;
pub mod sec42;
