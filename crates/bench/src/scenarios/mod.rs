//! Experiment scenarios — one module per paper artifact.

pub mod fig2a;
pub mod fig2b;
pub mod fig2c;
pub mod fig3;
pub mod sec42;
