//! Statistics helpers for the experiment harness: empirical CDFs and
//! small summary tables, printed the way the paper's figures report them.

/// An empirical distribution over `f64` samples.
#[derive(Debug, Clone)]
pub struct Cdf {
    /// Sorted samples.
    pub samples: Vec<f64>,
}

impl Cdf {
    /// Build from raw samples (sorts them).
    pub fn new(mut samples: Vec<f64>) -> Self {
        samples.sort_by(|a, b| a.partial_cmp(b).expect("no NaNs in samples"));
        Cdf { samples }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// The `q`-quantile (0.0–1.0), by nearest-rank.
    pub fn quantile(&self, q: f64) -> f64 {
        assert!(!self.is_empty(), "quantile of empty CDF");
        let q = q.clamp(0.0, 1.0);
        let idx = ((self.samples.len() as f64 - 1.0) * q).round() as usize;
        self.samples[idx]
    }

    /// Median.
    pub fn median(&self) -> f64 {
        self.quantile(0.5)
    }

    /// Arithmetic mean.
    pub fn mean(&self) -> f64 {
        if self.is_empty() {
            return 0.0;
        }
        self.samples.iter().sum::<f64>() / self.samples.len() as f64
    }

    /// Smallest sample.
    pub fn min(&self) -> f64 {
        self.samples.first().copied().unwrap_or(0.0)
    }

    /// Largest sample.
    pub fn max(&self) -> f64 {
        self.samples.last().copied().unwrap_or(0.0)
    }

    /// Fraction of samples ≤ `x`.
    pub fn fraction_at_or_below(&self, x: f64) -> f64 {
        if self.is_empty() {
            return 0.0;
        }
        let n = self.samples.partition_point(|&s| s <= x);
        n as f64 / self.samples.len() as f64
    }

    /// `(x, F(x))` points thinned to at most `max_points`, suitable for
    /// plotting the CDF curve.
    pub fn curve(&self, max_points: usize) -> Vec<(f64, f64)> {
        if self.is_empty() {
            return Vec::new();
        }
        let n = self.samples.len();
        let step = (n / max_points.max(1)).max(1);
        let mut pts = Vec::new();
        for i in (0..n).step_by(step) {
            pts.push((self.samples[i], (i + 1) as f64 / n as f64));
        }
        if pts.last().map(|p| p.1) != Some(1.0) {
            pts.push((self.samples[n - 1], 1.0));
        }
        pts
    }

    /// Print the curve as `x<tab>F(x)` rows prefixed with a series label —
    /// the format every `fig*` binary emits.
    pub fn print_series(&self, label: &str, unit: &str, max_points: usize) {
        println!("# series: {label} ({unit}, n={})", self.len());
        for (x, f) in self.curve(max_points) {
            println!("{label}\t{x:.6}\t{f:.4}");
        }
    }

    /// One-line summary.
    pub fn summary(&self, label: &str) -> String {
        if self.is_empty() {
            return format!("{label}: no samples");
        }
        format!(
            "{label}: n={} min={:.3} p25={:.3} median={:.3} mean={:.3} p75={:.3} p95={:.3} max={:.3}",
            self.len(),
            self.min(),
            self.quantile(0.25),
            self.median(),
            self.mean(),
            self.quantile(0.75),
            self.quantile(0.95),
            self.max()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cdf() -> Cdf {
        Cdf::new(vec![3.0, 1.0, 2.0, 5.0, 4.0])
    }

    #[test]
    fn sorts_and_quantiles() {
        let c = cdf();
        assert_eq!(c.samples, vec![1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(c.min(), 1.0);
        assert_eq!(c.max(), 5.0);
        assert_eq!(c.median(), 3.0);
        assert_eq!(c.quantile(0.0), 1.0);
        assert_eq!(c.quantile(1.0), 5.0);
        assert!((c.mean() - 3.0).abs() < 1e-9);
    }

    #[test]
    fn fraction_below() {
        let c = cdf();
        assert_eq!(c.fraction_at_or_below(0.5), 0.0);
        assert_eq!(c.fraction_at_or_below(3.0), 0.6);
        assert_eq!(c.fraction_at_or_below(10.0), 1.0);
    }

    #[test]
    fn curve_is_monotone_and_ends_at_one() {
        let c = Cdf::new((0..100).map(|i| i as f64).collect());
        let pts = c.curve(10);
        assert!(pts.windows(2).all(|w| w[0].0 <= w[1].0 && w[0].1 <= w[1].1));
        assert_eq!(pts.last().unwrap().1, 1.0);
    }

    #[test]
    #[should_panic(expected = "quantile of empty")]
    fn quantile_of_empty_panics() {
        Cdf::new(vec![]).quantile(0.5);
    }
}

#[cfg(test)]
mod prop {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn cdf_invariants(samples in proptest::collection::vec(0.0f64..1e9, 1..200)) {
            let c = Cdf::new(samples.clone());
            // Sorted.
            prop_assert!(c.samples.windows(2).all(|w| w[0] <= w[1]));
            // Quantiles are monotone in q.
            prop_assert!(c.quantile(0.25) <= c.quantile(0.75));
            // min <= mean <= max.
            prop_assert!(c.min() <= c.mean() + 1e-9);
            prop_assert!(c.mean() <= c.max() + 1e-9);
            // Curve reaches 1.0 and is monotone.
            let pts = c.curve(50);
            prop_assert_eq!(pts.last().unwrap().1, 1.0);
            prop_assert!(pts.windows(2).all(|w| w[0].1 <= w[1].1));
        }
    }
}
