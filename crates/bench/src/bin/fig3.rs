//! Regenerate Figure 3: CDF of the delay between the `MP_CAPABLE` SYN and
//! the `MP_JOIN` SYN — kernel vs userspace path manager.
//!
//! ```text
//! cargo run --release -p smapp-bench --bin fig3 [--quick] [--stressed]
//! ```

use smapp_bench::scenarios::fig3::{self, Manager};

use smapp_bench::count_alloc::CountingAlloc;

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let stressed = std::env::args().any(|a| a == "--stressed");
    let gets = if quick { 200 } else { 1000 };
    eprintln!("# fig3: {gets} consecutive 512 KB GETs over a 1 Gb/s lab link;");
    eprintln!("#       delay between SYN(MP_CAPABLE) and SYN(MP_JOIN), microseconds");

    let (kernel, _) = fig3::run(&fig3::Params {
        gets,
        manager: Manager::Kernel,
        ..Default::default()
    });
    kernel.print_series("kernel", "us", 80);
    eprintln!("# {}", kernel.summary("kernel"));

    let (user, _) = fig3::run(&fig3::Params {
        gets,
        manager: Manager::Userspace,
        stressed,
        ..Default::default()
    });
    let label = if stressed {
        "userspace-stressed"
    } else {
        "userspace"
    };
    user.print_series(label, "us", 80);
    eprintln!("# {}", user.summary(label));

    let penalty = user.mean() - kernel.mean();
    println!("# mean_userspace_penalty_us\t{penalty:.1}");
    eprintln!("# paper: +23 us mean on an idle host, < 37 us under CPU stress.");
}
