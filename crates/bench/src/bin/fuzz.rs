//! `fuzz` — run the randomized-scenario corpus under the
//! protocol-invariant oracle, or mutate it toward unexplored behavior.
//!
//! Every seed case is derived purely from its seed (topology, link
//! parameters, path-manager mix, adversarial middlebox, traffic mix,
//! dynamics churn — see `smapp_bench::fuzz`), built with the wire oracle
//! and end-host taps enabled, and run to completion. Any invariant
//! violation fails the run with a replayable seed (or, for mutated
//! cases, the full case description) and a shrunken dynamics script
//! printed as copy-pasteable Rust.
//!
//! Usage:
//!
//! ```text
//! fuzz [--corpus PATH] [--cases N --start-seed S] [--jobs N]
//! fuzz --replay SEED            # one case, verbose, shrink on failure
//! fuzz --mutate [--minutes M] [--mutation-seed S]
//! ```
//!
//! With no arguments the committed corpus (`FUZZ_CORPUS.txt`) runs on all
//! cores — exactly what the CI fuzz-smoke job does. `--mutate` seeds the
//! coverage-guided engine from the corpus and mutates cases for the given
//! wall-time budget (default one minute) — exactly what the CI
//! fuzz-mutate job does.

use smapp_bench::count_alloc::CountingAlloc;
use smapp_bench::{fuzz, sweep};

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let flag = |name: &str| -> Option<String> {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1).cloned())
    };
    let jobs = flag("--jobs")
        .map(|v| v.parse::<usize>().expect("--jobs takes a number").max(1))
        .unwrap_or_else(sweep::default_jobs);

    if let Some(seed) = flag("--replay") {
        let seed: u64 = seed.parse().expect("--replay takes a decimal seed");
        replay(seed);
        return;
    }

    let seeds: Vec<u64> = if let Some(path) = flag("--corpus") {
        let text = std::fs::read_to_string(&path).expect("read corpus file");
        fuzz::parse_corpus(&text)
    } else if let Some(n) = flag("--cases") {
        let n: u64 = n.parse().expect("--cases takes a number");
        let start: u64 = flag("--start-seed")
            .map(|s| s.parse().expect("--start-seed takes a number"))
            .unwrap_or(1);
        (start..start + n).collect()
    } else {
        fuzz::default_corpus()
    };

    if args.iter().any(|a| a == "--mutate") {
        let minutes = flag("--minutes")
            .map(|v| v.parse::<f64>().expect("--minutes takes a number"))
            .unwrap_or(1.0);
        let mutation_seed = flag("--mutation-seed")
            .map(|v| v.parse::<u64>().expect("--mutation-seed takes a number"))
            .unwrap_or(1);
        mutate(&seeds, mutation_seed, minutes);
        return;
    }

    let t0 = std::time::Instant::now();
    let outcomes = fuzz::run_corpus(&seeds, jobs);
    let wall = t0.elapsed().as_secs_f64();

    let total_events: u64 = outcomes.iter().map(|o| o.summary.events).sum();
    let delivered: u64 = outcomes.iter().map(|o| o.delivered).sum();
    let mut coverage = smapp_sim::Coverage::new();
    for o in &outcomes {
        coverage.union(&o.coverage);
    }
    let failing: Vec<&fuzz::CaseOutcome> = outcomes
        .iter()
        .filter(|o| !o.violations.is_empty())
        .collect();
    println!(
        "fuzz: {} cases in {wall:.2}s ({} sim events, {} bytes delivered, \
         {} feature bits, --jobs {jobs})",
        outcomes.len(),
        total_events,
        delivered,
        coverage.count()
    );
    if failing.is_empty() {
        println!("fuzz: oracle clean on every case");
        return;
    }

    for o in &failing {
        eprintln!("\nFAIL seed {} ({})", o.seed, o.desc);
        for v in &o.violations {
            eprintln!("  {v}");
        }
        report_shrunk(
            &fuzz::FuzzCase::derive(o.seed),
            &fuzz::FuzzOptions::default(),
        );
        eprintln!(
            "  replay: cargo run --release -p smapp-bench --bin fuzz -- --replay {}",
            o.seed
        );
    }
    eprintln!(
        "\nfuzz: {} of {} cases violated the oracle",
        failing.len(),
        outcomes.len()
    );
    std::process::exit(1);
}

/// Time-boxed coverage-guided mutation from the seed corpus. Exits
/// nonzero if any case — seed or mutant — violates the oracle.
fn mutate(seeds: &[u64], mutation_seed: u64, minutes: f64) {
    let t0 = std::time::Instant::now();
    let budget = std::time::Duration::from_secs_f64(minutes * 60.0);
    let mut m = fuzz::Mutator::from_seeds(seeds, mutation_seed, fuzz::FuzzOptions::default());
    println!(
        "mutate: seeded {} cases, {} feature bits, {:.2}s; mutating for {:.0}s",
        seeds.len(),
        m.baseline_coverage.count(),
        t0.elapsed().as_secs_f64(),
        budget.as_secs_f64()
    );
    let mut last_report = std::time::Instant::now();
    while t0.elapsed() < budget {
        m.step();
        if last_report.elapsed().as_secs() >= 10 {
            last_report = std::time::Instant::now();
            println!(
                "mutate: {} cases run, corpus {}, {} feature bits, {} failures",
                m.cases_run,
                m.corpus().len(),
                m.coverage.count(),
                m.failures.len()
            );
        }
    }
    println!(
        "mutate: done — {} cases run, {} interesting, {} -> {} feature bits, {} failures",
        m.cases_run,
        m.interesting,
        m.baseline_coverage.count(),
        m.coverage.count(),
        m.failures.len()
    );
    if m.failures.is_empty() {
        println!("mutate: oracle clean on every case");
        return;
    }
    let opts = fuzz::FuzzOptions::default();
    for f in &m.failures {
        eprintln!("\nFAIL (mutated case) {}", f.case.describe());
        eprintln!("  case: {:?}", f.case);
        for v in &f.violations {
            eprintln!("  {v}");
        }
        report_shrunk(&f.case, &opts);
    }
    eprintln!(
        "\nmutate: {} of {} cases violated the oracle",
        m.failures.len(),
        m.cases_run
    );
    std::process::exit(1);
}

/// Shrink a failing case's dynamics and print the kept entries as a
/// copy-pasteable Rust `DynamicsScript` snippet.
fn report_shrunk(case: &fuzz::FuzzCase, opts: &fuzz::FuzzOptions) {
    match fuzz::shrink_case(case, opts) {
        Some(s) => {
            eprintln!(
                "  shrunk dynamics to {} of {} entries; as Rust:",
                s.kept.len(),
                case.dynamics.len()
            );
            for line in fuzz::dynamics_snippet(case, &s.kept).lines() {
                eprintln!("    {line}");
            }
        }
        None => eprintln!("  (failure did not reproduce during shrinking)"),
    }
}

fn replay(seed: u64) {
    let case = fuzz::FuzzCase::derive(seed);
    println!("seed {seed}: {}", case.describe());
    for (i, d) in case.dynamics.iter().enumerate() {
        println!("  dyn[{i}] {d:?}");
    }
    let out = fuzz::run_case(seed);
    println!(
        "run: {:?} at t={} ({} events, {} bytes delivered, {} feature bits)",
        out.summary.reason,
        out.summary.ended_at,
        out.summary.events,
        out.delivered,
        out.coverage.count()
    );
    if out.violations.is_empty() {
        println!("oracle: clean");
        return;
    }
    for v in &out.violations {
        eprintln!("  {v}");
    }
    report_shrunk(&case, &fuzz::FuzzOptions::default());
    std::process::exit(1);
}
