//! `fuzz` — run the randomized-scenario corpus under the
//! protocol-invariant oracle.
//!
//! Every case is derived purely from its seed (topology, link parameters,
//! path-manager mix, transfer size, dynamics churn — see
//! `smapp_bench::fuzz`), built with the wire oracle and end-host taps
//! enabled, and run to completion. Any invariant violation fails the run
//! with the replayable `(scenario, seed, time)` triple and a shrunken
//! dynamics script.
//!
//! Usage:
//!
//! ```text
//! fuzz [--corpus PATH] [--cases N --start-seed S] [--jobs N]
//! fuzz --replay SEED            # one case, verbose, shrink on failure
//! ```
//!
//! With no arguments the committed corpus (`FUZZ_CORPUS.txt`) runs on all
//! cores — exactly what the CI fuzz-smoke job does.

use smapp_bench::count_alloc::CountingAlloc;
use smapp_bench::{fuzz, sweep};

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let flag = |name: &str| -> Option<String> {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1).cloned())
    };
    let jobs = flag("--jobs")
        .map(|v| v.parse::<usize>().expect("--jobs takes a number").max(1))
        .unwrap_or_else(sweep::default_jobs);

    if let Some(seed) = flag("--replay") {
        let seed: u64 = seed.parse().expect("--replay takes a decimal seed");
        replay(seed);
        return;
    }

    let seeds: Vec<u64> = if let Some(path) = flag("--corpus") {
        let text = std::fs::read_to_string(&path).expect("read corpus file");
        fuzz::parse_corpus(&text)
    } else if let Some(n) = flag("--cases") {
        let n: u64 = n.parse().expect("--cases takes a number");
        let start: u64 = flag("--start-seed")
            .map(|s| s.parse().expect("--start-seed takes a number"))
            .unwrap_or(1);
        (start..start + n).collect()
    } else {
        fuzz::default_corpus()
    };

    let t0 = std::time::Instant::now();
    let outcomes = fuzz::run_corpus(&seeds, jobs);
    let wall = t0.elapsed().as_secs_f64();

    let total_events: u64 = outcomes.iter().map(|o| o.summary.events).sum();
    let delivered: u64 = outcomes.iter().map(|o| o.delivered).sum();
    let failing: Vec<&fuzz::CaseOutcome> = outcomes
        .iter()
        .filter(|o| !o.violations.is_empty())
        .collect();
    println!(
        "fuzz: {} cases in {wall:.2}s ({} sim events, {} bytes delivered, --jobs {jobs})",
        outcomes.len(),
        total_events,
        delivered
    );
    if failing.is_empty() {
        println!("fuzz: oracle clean on every case");
        return;
    }

    for o in &failing {
        eprintln!("\nFAIL seed {} ({})", o.seed, o.desc);
        for v in &o.violations {
            eprintln!("  {v}");
        }
        match fuzz::shrink(o.seed, &fuzz::FuzzOptions::default()) {
            Some(s) => {
                let case = fuzz::FuzzCase::derive(o.seed);
                eprintln!(
                    "  shrunk dynamics to {} of {} entries:",
                    s.kept.len(),
                    case.dynamics.len()
                );
                for &i in &s.kept {
                    eprintln!("    [{i}] {:?}", case.dynamics[i]);
                }
            }
            None => eprintln!("  (failure did not reproduce during shrinking)"),
        }
        eprintln!(
            "  replay: cargo run --release -p smapp-bench --bin fuzz -- --replay {}",
            o.seed
        );
    }
    eprintln!(
        "\nfuzz: {} of {} cases violated the oracle",
        failing.len(),
        outcomes.len()
    );
    std::process::exit(1);
}

fn replay(seed: u64) {
    let case = fuzz::FuzzCase::derive(seed);
    println!("seed {seed}: {}", case.describe());
    for (i, d) in case.dynamics.iter().enumerate() {
        println!("  dyn[{i}] {d:?}");
    }
    let out = fuzz::run_case(seed);
    println!(
        "run: {:?} at t={} ({} events, {} bytes delivered)",
        out.summary.reason, out.summary.ended_at, out.summary.events, out.delivered
    );
    if out.violations.is_empty() {
        println!("oracle: clean");
        return;
    }
    for v in &out.violations {
        eprintln!("  {v}");
    }
    if let Some(s) = fuzz::shrink(seed, &fuzz::FuzzOptions::default()) {
        eprintln!("shrunk dynamics to entries {:?}", s.kept);
    }
    std::process::exit(1);
}
