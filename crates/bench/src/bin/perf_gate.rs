//! `perf_gate` — the CI perf/parity regression gate.
//!
//! Reads a `perf_report` JSON (typically `/tmp/perf_smoke.json` from the
//! CI smoke step) and fails the build when a hard invariant regressed:
//! parallel-sweep parity, fig2c baseline-trajectory parity, registered
//! scenarios missing from the matrix, or aggregate throughput collapsing
//! below a generous fraction of the committed baseline (see
//! `smapp_bench::gate` for the exact rules).
//!
//! Usage:
//!
//! ```text
//! perf_gate [--report PATH] [--min-ratio X]
//! ```
//!
//! `--report` defaults to `/tmp/perf_smoke.json`; `--min-ratio` scales the
//! committed baseline (default 0.05 — only order-of-magnitude collapses
//! fail; 0 disables the throughput check).

use smapp_bench::gate;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let report = args
        .iter()
        .position(|a| a == "--report")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "/tmp/perf_smoke.json".to_string());
    let min_ratio = args
        .iter()
        .position(|a| a == "--min-ratio")
        .and_then(|i| args.get(i + 1))
        .map(|v| v.parse::<f64>().expect("--min-ratio takes a number"))
        .unwrap_or(gate::DEFAULT_MIN_RATIO);

    let json = match std::fs::read_to_string(&report) {
        Ok(j) => j,
        Err(e) => {
            eprintln!("perf_gate: cannot read {report}: {e}");
            std::process::exit(1);
        }
    };

    let verdict = gate::check(&json, min_ratio);
    println!(
        "perf_gate: {report}: {} scenarios, {:.0} events/sec aggregate, \
         parallel_parity={:?}, fig2c_parity={:?}",
        verdict.scenario_names.len(),
        verdict.events_per_sec,
        verdict.parallel_parity,
        verdict.fig2c_parity,
    );
    if verdict.passed() {
        println!("perf_gate: PASS");
        return;
    }
    for f in &verdict.failures {
        eprintln!("perf_gate: FAIL: {f}");
    }
    std::process::exit(1);
}
