//! Regenerate Figure 2c: CDF of 100 MB completion times over the 4-path
//! ECMP fabric — `Refresh` vs in-kernel `Ndiffports`.
//!
//! ```text
//! cargo run --release -p smapp-bench --bin fig2c [--quick]
//! ```

use smapp_bench::scenarios::fig2c::{self, Manager};

use smapp_bench::count_alloc::CountingAlloc;

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (runs, transfer) = if quick {
        (8, 20_000_000)
    } else {
        (30, 100_000_000)
    };
    eprintln!("# fig2c: 4 ECMP paths x 8 Mb/s (10/20/30/40 ms), 5 subflows,");
    eprintln!(
        "#        {} MB transfer, {runs} runs per manager",
        transfer / 1_000_000
    );

    // The third series is an ablation: ndiffports logic in userspace —
    // isolating "crossing the netlink boundary" from "the refresh policy".
    for (manager, label) in [
        (Manager::Refresh, "refresh"),
        (Manager::Ndiffports, "ndiffports"),
        (Manager::NdiffportsUser, "ndiffports-user"),
    ] {
        let r = fig2c::run(&fig2c::Params {
            seed0: 100,
            runs,
            transfer,
            n: 5,
            manager,
        });
        r.completion.print_series(label, "completion time s", 60);
        eprintln!("# {}", r.completion.summary(label));
        eprintln!(
            "# {label} runs by distinct paths used (1/2/3/4): {:?}",
            r.paths_used
        );
    }
    eprintln!("# paper: ndiffports clusters at ~28s/37s/55s (4/3/2 paths);");
    eprintln!("# paper: refresh concentrates near the 4-path optimum (27.8s floor).");
}
