//! `perf_report` — the perf trajectory's measurement binary.
//!
//! Drives the full scenario×seed matrix (fig2a, fig2b, fig2c, fig3, §4.2,
//! fleet, plus the network-dynamics trio handover/flap/middlebox) through
//! the deterministic multi-core sweep engine, twice: once at `--jobs 1`
//! for single-thread throughput and allocations/event, once at `--jobs N`
//! for aggregate matrix wall-time — asserting the two passes produce
//! bit-identical trajectories. Writes `BENCH_PR10.json`.
//!
//! Usage:
//!
//! ```text
//! perf_report [--smoke] [--jobs N] [--out PATH]
//! ```
//!
//! `--jobs` defaults to the machine's available parallelism. `--smoke`
//! runs reduced workloads (seconds, for CI liveness) and skips the
//! baseline comparison; the default full mode is the configuration the
//! PR-3 acceptance numbers come from. Exits non-zero if a full run's fig2c
//! trajectory diverges from the recorded `524cdc6` baseline, or if the
//! parallel pass diverges from the sequential pass in any mode — a speedup
//! that changes simulation results is a bug, not a speedup.

use smapp_bench::count_alloc::CountingAlloc;
use smapp_bench::{perf, sweep};

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let jobs = args
        .iter()
        .position(|a| a == "--jobs")
        .and_then(|i| args.get(i + 1))
        .map(|v| v.parse::<usize>().expect("--jobs takes a number").max(1))
        .unwrap_or_else(sweep::default_jobs);
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| {
            if smoke {
                // Never let a smoke run silently clobber the recorded
                // full-run benchmark artifact in the repo root.
                std::env::temp_dir()
                    .join("perf_smoke.json")
                    .to_string_lossy()
                    .into_owned()
            } else {
                "BENCH_PR10.json".to_string()
            }
        });

    let report = perf::run_all(smoke, jobs);
    print!("{}", report.render());

    std::fs::write(&out, report.to_json()).expect("write report JSON");
    println!("wrote {out}");

    if !report.parallel_parity {
        eprintln!("FATAL: --jobs {jobs} trajectories diverged from --jobs 1");
        std::process::exit(1);
    }
    if report.fig2c_parity == Some(false) {
        eprintln!("FATAL: fig2c trajectory diverged from the recorded baseline");
        std::process::exit(1);
    }
}
