//! `perf_report` — the perf trajectory's measurement binary.
//!
//! Runs the fig2a / fig2c / fig3 macro scenarios under wall clocks and
//! writes `BENCH_PR2.json` (wall time, events/sec, peak event-queue depth,
//! and the fig2c speedup + trajectory-parity verdict against the `524cdc6`
//! baseline recorded in `smapp_bench::perf`).
//!
//! Usage:
//!
//! ```text
//! perf_report [--smoke] [--out PATH]
//! ```
//!
//! `--smoke` runs reduced workloads (seconds, for CI liveness) and skips
//! the baseline comparison; the default full mode is the configuration the
//! PR-2 acceptance numbers come from. Exits non-zero if a full run's fig2c
//! trajectory diverges from the baseline — a speedup that changes
//! simulation results is a bug, not a speedup.

use smapp_bench::perf;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "BENCH_PR2.json".to_string());

    let report = perf::run_all(smoke);
    print!("{}", report.render());

    std::fs::write(&out, report.to_json()).expect("write report JSON");
    println!("wrote {out}");

    if report.fig2c_parity == Some(false) {
        eprintln!("FATAL: fig2c trajectory diverged from the recorded baseline");
        std::process::exit(1);
    }
}
