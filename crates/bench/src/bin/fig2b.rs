//! Regenerate Figure 2b: CDF of 64 KB block delivery delays.
//!
//! ```text
//! cargo run --release -p smapp-bench --bin fig2b [--quick]
//! ```
//!
//! Emits one CDF series per configuration: the smart-stream controller at
//! 30% loss (the paper notes 10–40% gives "almost the same CDF", which we
//! also emit), and the default full-mesh path manager at 10/20/30/40%
//! loss — the four curves of the figure.

use smapp_bench::scenarios::fig2b::{self, Manager};

use smapp_bench::count_alloc::CountingAlloc;

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (runs, blocks) = if quick { (2, 20) } else { (6, 40) };
    eprintln!("# fig2b: 2 x 5 Mb/s paths, 10 ms delay, one 64 KB block per second");
    eprintln!("#        {runs} runs x {blocks} blocks per configuration");

    // Smart stream under each loss ratio (paper: curves nearly overlap).
    for loss in [0.10, 0.20, 0.30, 0.40] {
        let cdf = fig2b::run(&fig2b::Params {
            seed0: 1,
            runs,
            blocks,
            loss,
            manager: Manager::SmartStream,
        });
        let label = format!("smart-{:.0}pct", loss * 100.0);
        cdf.print_series(&label, "block completion time s", 60);
        eprintln!("# {}", cdf.summary(&label));
    }
    // Default full-mesh baseline under each loss ratio.
    for loss in [0.10, 0.20, 0.30, 0.40] {
        let cdf = fig2b::run(&fig2b::Params {
            seed0: 1,
            runs,
            blocks,
            loss,
            manager: Manager::FullMesh,
        });
        let label = format!("fullmesh-{:.0}pct", loss * 100.0);
        cdf.print_series(&label, "block completion time s", 60);
        eprintln!("# {}", cdf.summary(&label));
    }
    eprintln!("# paper: the smart controller keeps the CDF nearly identical across");
    eprintln!("# paper: 10-40% loss, while the default manager grows a long tail.");
}
