//! Regenerate the §4.2 baseline narrative: without SMAPP, a dead primary
//! path takes ~15 RTO doublings (~12–13 minutes with Linux defaults)
//! before Multipath TCP falls back to the backup-flagged subflow.
//!
//! ```text
//! cargo run --release -p smapp-bench --bin sec42_baseline [--quick]
//! ```

use smapp_bench::scenarios::sec42;

use smapp_bench::count_alloc::CountingAlloc;

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let params = sec42::Params {
        max_retries: if quick { 6 } else { 15 },
        ..Default::default()
    };
    eprintln!("# sec42 baseline: backup-flag semantics, primary blackholed at t=1s,");
    eprintln!(
        "#               give-up after {} doublings",
        params.max_retries
    );
    let r = sec42::run(&params);
    match r.switch_at {
        Some(t) => {
            println!("switch_to_backup_s\t{t:.1}");
            println!("switch_to_backup_min\t{:.2}", t / 60.0);
        }
        None => println!("switch_to_backup_s\tnever"),
    }
    println!("delivered_bytes\t{}", r.delivered);
    match r.completed_at {
        Some(t) => println!("completed_at_s\t{t:.1}"),
        None => println!("completed_at_s\tnot finished"),
    }
    eprintln!("# paper: \"after 12 minutes in our experiment with the default");
    eprintln!("# paper:  Linux configuration, TCP eventually terminates the subflow\"");
}
