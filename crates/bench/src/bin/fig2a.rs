//! Regenerate Figure 2a: the backup-switchover sequence trace.
//!
//! ```text
//! cargo run --release -p smapp-bench --bin fig2a [seed]
//! ```
//!
//! Prints `path<tab>seconds<tab>relative_bytes` rows (path `master` or
//! `backup`) — the series plotted in the paper — plus a summary block.

use smapp_bench::scenarios::fig2a;

use smapp_bench::count_alloc::CountingAlloc;

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn main() {
    let seed = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(42);
    let params = fig2a::Params {
        seed,
        ..Default::default()
    };
    eprintln!("# fig2a: two 5 Mb/s paths, 30% loss on primary from t=1s,");
    eprintln!("#        smart-backup controller with RTO threshold 1s, seed {seed}");
    let r = fig2a::run(&params);

    println!("# series: master/backup (seconds, relative data sequence bytes)");
    for (t, seq, path) in &r.rows {
        let label = if *path == 0 { "master" } else { "backup" };
        println!("{label}\t{t:.4}\t{seq}");
    }
    println!("#");
    match r.switch_at {
        Some(t) => println!("# switchover_at_s\t{t:.3}"),
        None => println!("# switchover_at_s\tnever"),
    }
    println!("# delivered_bytes\t{}", r.delivered);
    match r.completed_at {
        Some(t) => println!("# completed_at_s\t{t:.3}"),
        None => println!("# completed_at_s\tnot finished"),
    }
    println!("# paper: transfer starts on the master subflow; when the backed-off");
    println!("# paper: RTO exceeds 1s the controller kills it and continues on the backup.");
}
