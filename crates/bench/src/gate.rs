//! The CI perf/parity regression gate.
//!
//! `perf_report --smoke` writes a JSON report; the `perf_gate` binary runs
//! this module's [`check`] over it and exits non-zero when a hard
//! invariant regressed:
//!
//! * `parallel_parity` must be `true` — a parallel sweep that changes any
//!   trajectory is a correctness bug, not noise.
//! * `fig2c_trajectory_parity` must be `true` or `null` (smoke runs skip
//!   the baseline comparison) — per-seed simulation trajectories must
//!   reproduce the recorded baseline bit-for-bit.
//! * Aggregate smoke throughput (total events / total wall seconds) must
//!   stay within a **generous** factor of the committed baseline
//!   ([`SMOKE_BASELINE_EVENTS_PER_SEC`]). CI runners vary wildly, so the
//!   default threshold only catches order-of-magnitude collapses
//!   (accidental debug builds, quadratic regressions), not percent-level
//!   noise — the honest perf numbers live in `BENCH_PR10.json`.
//! * The fig2c/refresh row may not drop more than [`FIG2C_MAX_DROP`]
//!   below the best committed BENCH figure
//!   ([`FIG2C_BEST_COMMITTED_EVENTS_PER_SEC`]) — the **ratchet** that
//!   would have caught the PR4→PR9 creeping collapse. Allocation counts
//!   are wall-clock-independent, so each scenario row must also stay
//!   under its committed `allocs_per_event` ceiling
//!   ([`ALLOC_CEILINGS`]). Both checks are disabled together with the
//!   aggregate floor when `min_ratio` is `0.0` (instrumented builds).
//! * Every scenario registered in [`crate::scenarios::ALL`] must appear in
//!   the report — a new scenario cannot silently skip benchmarking.
//! * The generated-scenario fuzz corpus must have run with **zero**
//!   protocol-invariant oracle violations; a missing fuzz section fails
//!   the gate too (the corpus cannot silently stop running).
//! * The corpus slice's union feature coverage (`coverage_bits`) must
//!   **strictly exceed** the recorded dynamics-only baseline
//!   (`baseline_coverage_bits`) — the adversarial middleboxes and the
//!   traffic mix cannot silently stop contributing behavior.
//! * The fleet's sockdiag sweep must have run (`diag.probes > 0`) and its
//!   overhead must stay at **at most one calendar event per probe**
//!   (`extra_events <= probes`): probes are read-only by contract, so any
//!   additional event means introspection perturbed the trajectory.
//!
//! The parser is deliberately tiny and hand-rolled (the workspace carries
//! no serde): it only reads the flat `"key": value` shapes `perf_report`
//! emits.

/// Aggregate smoke events/sec committed as the gate baseline, measured
/// with `perf_report --smoke --jobs 2` on the reference machine.
/// Update when the smoke workload composition changes materially — last
/// re-measured after the PR-10 zero-alloc hot-path work (pooled buffers,
/// SoA calendar queue, scratch-buffer pump loop).
pub const SMOKE_BASELINE_EVENTS_PER_SEC: f64 = 1_350_000.0;

/// Default minimum fraction of [`SMOKE_BASELINE_EVENTS_PER_SEC`] a smoke
/// run must reach: generous enough for slow shared CI runners, tight
/// enough to catch an accidental debug build (~30× slower) or an
/// algorithmic collapse.
pub const DEFAULT_MIN_RATIO: f64 = 0.05;

/// Best committed fig2c/refresh single-thread events/sec among the
/// BENCH_*.json files measured under the current conditions — always-on
/// protocol-invariant oracle plus the counting allocator, i.e. PR 5
/// onward; the PR 2–4 figures predate both layers and are not comparable.
/// Recorded in `BENCH_PR10.json`. This is the **ratchet**: raise it when
/// a PR commits a faster figure, never lower it to absorb a regression.
pub const FIG2C_BEST_COMMITTED_EVENTS_PER_SEC: f64 = 1_582_459.0;

/// Maximum fraction the report's fig2c/refresh row may drop below
/// [`FIG2C_BEST_COMMITTED_EVENTS_PER_SEC`] before the ratchet fails the
/// gate. 25% absorbs run-to-run noise on the reference machine while
/// catching the PR4→PR9 class of creeping regression (−79%) immediately.
pub const FIG2C_MAX_DROP: f64 = 0.25;

/// Per-scenario `allocs_per_event` ceilings, pinned just above the PR-10
/// measured values (smoke and full mode, whichever is higher — short
/// smoke runs amortize setup allocations over fewer events). Keyed by
/// scenario name; every variant of a scenario shares its ceiling. The
/// tier-1 `alloc_ceilings` test re-measures each scenario against this
/// table, and [`check`] enforces it on every emitted report.
pub const ALLOC_CEILINGS: &[(&str, f64)] = &[
    ("fig2a", 0.35),
    ("fig2b", 0.25),
    ("fig2c", 0.20),
    ("fig3", 0.15),
    ("sec42", 0.15),
    ("fleet", 0.55),
    ("handover", 0.20),
    ("flap", 0.20),
    ("middlebox", 0.20),
    ("cdn", 1.10),
    ("fuzz", 0.90),
];

/// The committed allocs/event ceiling for a scenario (any variant).
pub fn alloc_ceiling(scenario: &str) -> Option<f64> {
    ALLOC_CEILINGS
        .iter()
        .find(|(name, _)| *name == scenario)
        .map(|(_, ceiling)| *ceiling)
}

/// Gate verdict: what was read and which invariants failed.
#[derive(Debug)]
pub struct GateReport {
    /// The report's `parallel_parity` flag.
    pub parallel_parity: Option<bool>,
    /// The report's `fig2c_trajectory_parity` flag (`None` = JSON `null`).
    pub fig2c_parity: Option<bool>,
    /// Scenario row names found (`"fig2a/backup"`, …).
    pub scenario_names: Vec<String>,
    /// The report's fuzz-corpus oracle-violation count (`None` = missing).
    pub fuzz_violations: Option<u64>,
    /// The corpus slice's union feature-coverage bits (`None` = missing).
    pub fuzz_coverage_bits: Option<u64>,
    /// The dynamics-only coverage floor recorded alongside it.
    pub fuzz_baseline_bits: Option<u64>,
    /// The fleet's sockdiag probe count (`None` = missing section).
    pub diag_probes: Option<u64>,
    /// Calendar events the probed fleet run cost beyond an unprobed one.
    pub diag_extra_events: Option<u64>,
    /// Aggregate events/sec over all scenario rows.
    pub events_per_sec: f64,
    /// Human-readable failed invariants; empty = gate passes.
    pub failures: Vec<String>,
}

impl GateReport {
    /// True when every invariant held.
    pub fn passed(&self) -> bool {
        self.failures.is_empty()
    }
}

/// Find `"key": <scalar>` in `json` and return the raw scalar text.
fn raw_value<'a>(json: &'a str, key: &str) -> Option<&'a str> {
    let needle = format!("\"{key}\":");
    let start = json.find(&needle)? + needle.len();
    let rest = json[start..].trim_start();
    let end = rest.find([',', '}', '\n']).unwrap_or(rest.len());
    Some(rest[..end].trim())
}

/// Parse a `true`/`false`/`null` flag.
fn flag(json: &str, key: &str) -> Option<bool> {
    match raw_value(json, key) {
        Some("true") => Some(true),
        Some("false") => Some(false),
        _ => None,
    }
}

/// Check a `perf_report` JSON against the gate invariants. `min_ratio`
/// scales [`SMOKE_BASELINE_EVENTS_PER_SEC`]; pass
/// [`DEFAULT_MIN_RATIO`] for the CI default, or `0.0` to disable the
/// throughput check (e.g. under instrumented builds).
pub fn check(json: &str, min_ratio: f64) -> GateReport {
    let mut failures = Vec::new();

    let parallel_parity = flag(json, "parallel_parity");
    if parallel_parity != Some(true) {
        failures.push(format!(
            "parallel_parity is {parallel_parity:?}, expected Some(true): \
             --jobs N trajectories diverged from --jobs 1"
        ));
    }

    // `null` (smoke mode) is acceptable; an explicit `false` is not.
    let fig2c_parity = flag(json, "fig2c_trajectory_parity");
    if fig2c_parity == Some(false) {
        failures.push(
            "fig2c_trajectory_parity is false: per-seed trajectory diverged \
             from the recorded baseline"
                .to_string(),
        );
    }

    // Scenario rows: one object per line in the emitted JSON.
    let mut scenario_names = Vec::new();
    let mut events_total = 0.0f64;
    let mut wall_total = 0.0f64;
    let mut fig2c_events_per_sec = None;
    for line in json.lines() {
        let line = line.trim_start();
        if !line.starts_with('{') || !line.contains("\"workload\":") {
            continue;
        }
        let Some(name) = raw_value(line, "name").map(|v| v.trim_matches('"').to_string()) else {
            continue;
        };
        let events: f64 = raw_value(line, "events")
            .and_then(|v| v.parse().ok())
            .unwrap_or(0.0);
        let wall: f64 = raw_value(line, "wall_s")
            .and_then(|v| v.parse().ok())
            .unwrap_or(0.0);
        events_total += events;
        wall_total += wall;
        if min_ratio > 0.0 {
            // Per-scenario allocator-pressure ceiling: the measurement
            // pass reports allocations/event per row; a breach is a
            // hot-path regression regardless of wall-clock. Disabled
            // together with the throughput checks (`min_ratio` 0.0) for
            // instrumented/debug runs, where concurrent test cells share
            // the process-wide counter.
            let scenario = name.split('/').next().unwrap_or(&name);
            let allocs_per_event: Option<f64> =
                raw_value(line, "allocs_per_event").and_then(|v| v.parse().ok());
            match (alloc_ceiling(scenario), allocs_per_event) {
                (Some(ceiling), Some(ape)) => {
                    if ape > ceiling {
                        failures.push(format!(
                            "scenario {name}: {ape:.2} allocs/event breaches the \
                             committed ceiling {ceiling:.2} — the hot path \
                             regressed allocator pressure"
                        ));
                    }
                }
                (Some(_), None) => failures.push(format!(
                    "scenario {name} carries no allocs_per_event — allocator \
                     pressure was not measured"
                )),
                (None, _) => {}
            }
        }
        if name == "fig2c/refresh" && wall > 0.0 {
            fig2c_events_per_sec = Some(events / wall);
        }
        scenario_names.push(name);
    }
    let events_per_sec = if wall_total > 0.0 {
        events_total / wall_total
    } else {
        0.0
    };

    // The fig2c throughput ratchet: the reference row may not drop more
    // than [`FIG2C_MAX_DROP`] below the best committed BENCH_*.json
    // figure. Disabled together with the aggregate floor (`min_ratio`
    // 0.0) for instrumented/debug builds, where wall-clock means nothing.
    if min_ratio > 0.0 {
        let ratchet_floor = FIG2C_BEST_COMMITTED_EVENTS_PER_SEC * (1.0 - FIG2C_MAX_DROP);
        match fig2c_events_per_sec {
            Some(eps) if eps < ratchet_floor => failures.push(format!(
                "fig2c/refresh at {eps:.0} events/sec dropped more than \
                 {:.0}% below the best committed figure \
                 {FIG2C_BEST_COMMITTED_EVENTS_PER_SEC:.0} (ratchet floor \
                 {ratchet_floor:.0})",
                FIG2C_MAX_DROP * 100.0
            )),
            Some(_) => {}
            None => failures.push(
                "report carries no fig2c/refresh row — the ratchet \
                 reference scenario was not measured"
                    .to_string(),
            ),
        }
    }

    for want in crate::scenarios::ALL {
        if !scenario_names
            .iter()
            .any(|n| n.split('/').next() == Some(*want))
        {
            failures.push(format!(
                "scenario {want} is registered but missing from the report \
                 — it skipped benchmarking"
            ));
        }
    }

    // Fuzz corpus: the generated scenarios must have run (cases > 0),
    // oracle-clean (violations == 0).
    let fuzz_violations = raw_value(json, "violations").and_then(|v| v.parse::<u64>().ok());
    match fuzz_violations {
        Some(0) => {}
        Some(n) => failures.push(format!(
            "fuzz corpus reported {n} protocol-invariant oracle violation(s) — \
             replay the offending seed with `fuzz -- --replay <seed>`"
        )),
        None => failures.push(
            "report carries no fuzz violation count — the generated-scenario \
             corpus did not run"
                .to_string(),
        ),
    }
    let fuzz_cases = raw_value(json, "cases").and_then(|v| v.parse::<u64>().ok());
    if fuzz_violations.is_some() && fuzz_cases.unwrap_or(0) == 0 {
        failures.push(
            "fuzz section reports zero generated cases — the corpus silently \
             stopped running"
                .to_string(),
        );
    }

    // Corpus feature coverage must strictly beat the dynamics-only
    // derivation over the same seeds: a corpus that stops reaching the
    // adversarial-middlebox / traffic-mix feature space regressed even if
    // it stays oracle-clean.
    let fuzz_coverage_bits = raw_value(json, "coverage_bits").and_then(|v| v.parse::<u64>().ok());
    let fuzz_baseline_bits =
        raw_value(json, "baseline_coverage_bits").and_then(|v| v.parse::<u64>().ok());
    match (fuzz_coverage_bits, fuzz_baseline_bits) {
        (Some(cov), Some(base)) => {
            if cov <= base {
                failures.push(format!(
                    "fuzz corpus coverage is {cov} feature bits, not above the \
                     dynamics-only baseline of {base} — the corpus no longer \
                     exercises the extended feature space"
                ));
            }
        }
        _ => failures.push(
            "report carries no fuzz coverage_bits/baseline_coverage_bits — \
             the corpus coverage floor was not measured"
                .to_string(),
        ),
    }

    // Sockdiag plane: the sweep must have run, and since probes are
    // read-only its whole cost is the probe calendar events themselves.
    let diag_probes = raw_value(json, "probes").and_then(|v| v.parse::<u64>().ok());
    let diag_extra_events = raw_value(json, "extra_events").and_then(|v| v.parse::<u64>().ok());
    match (diag_probes, diag_extra_events) {
        (Some(0), _) => failures.push(
            "diag section reports zero sockdiag probes — the fleet's \
             introspection sweep silently stopped running"
                .to_string(),
        ),
        (Some(probes), Some(extra)) => {
            if extra > probes {
                failures.push(format!(
                    "sockdiag overhead is {extra} extra events for {probes} \
                     probes — probes must cost at most one calendar event \
                     each and perturb nothing"
                ));
            }
        }
        _ => failures.push(
            "report carries no diag probes/extra_events — sockdiag probe \
             overhead was not measured"
                .to_string(),
        ),
    }

    let floor = SMOKE_BASELINE_EVENTS_PER_SEC * min_ratio;
    if events_per_sec < floor {
        failures.push(format!(
            "aggregate {events_per_sec:.0} events/sec is below the gate \
             floor {floor:.0} ({min_ratio} x committed baseline \
             {SMOKE_BASELINE_EVENTS_PER_SEC:.0})"
        ));
    }

    GateReport {
        parallel_parity,
        fig2c_parity,
        scenario_names,
        fuzz_violations,
        fuzz_coverage_bits,
        fuzz_baseline_bits,
        diag_probes,
        diag_extra_events,
        events_per_sec,
        failures,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A miniature report in the exact shape `perf_report` emits, with one
    /// row per registered scenario.
    fn sample(parity: &str, fig2c: &str, events: u64) -> String {
        let mut s = String::from("{\n");
        s.push_str(&format!(
            "  \"sweep\": {{\"jobs\": 2, \"parallel_parity\": {parity}}},\n"
        ));
        s.push_str("  \"scenarios\": [\n");
        let n = crate::scenarios::ALL.len();
        for (i, name) in crate::scenarios::ALL.iter().enumerate() {
            // The ratchet keys on the real fig2c/refresh row name.
            let variant = if *name == "fig2c" { "refresh" } else { "v" };
            s.push_str(&format!(
                "    {{\"name\": \"{name}/{variant}\", \"workload\": \"w\", \"runs\": 1, \
                 \"wall_s\": 0.5000, \"events\": {events}, \"events_per_sec\": 1, \
                 \"allocs_per_event\": 0.1, \"peak_queue\": 10, \"sim_s\": 1.0}}{}\n",
                if i + 1 < n { "," } else { "" }
            ));
        }
        s.push_str("  ],\n");
        s.push_str(
            "  \"fuzz\": {\"cases\": 4, \"violations\": 0, \"coverage_bits\": 54, \
             \"baseline_coverage_bits\": 40},\n",
        );
        s.push_str(
            "  \"diag\": {\"probes\": 120, \"conns\": 110, \"subflows\": 200, \
             \"extra_events\": 120},\n",
        );
        s.push_str(&format!("  \"fig2c_trajectory_parity\": {fig2c}\n"));
        s.push_str("}\n");
        s
    }

    #[test]
    fn healthy_report_passes() {
        let json = sample("true", "null", 10_000_000);
        let r = check(&json, DEFAULT_MIN_RATIO);
        assert!(r.passed(), "failures: {:?}", r.failures);
        assert_eq!(r.parallel_parity, Some(true));
        assert_eq!(r.fig2c_parity, None);
        assert_eq!(r.scenario_names.len(), crate::scenarios::ALL.len());
        assert!(r.events_per_sec > 1_000_000.0);
    }

    #[test]
    fn parity_regression_fails() {
        let r = check(&sample("false", "null", 10_000_000), DEFAULT_MIN_RATIO);
        assert!(!r.passed());
        assert!(r.failures.iter().any(|f| f.contains("parallel_parity")));
    }

    #[test]
    fn fig2c_baseline_divergence_fails_but_null_is_fine() {
        let r = check(&sample("true", "false", 10_000_000), DEFAULT_MIN_RATIO);
        assert!(r
            .failures
            .iter()
            .any(|f| f.contains("fig2c_trajectory_parity")));
        let r = check(&sample("true", "true", 10_000_000), DEFAULT_MIN_RATIO);
        assert!(r.passed(), "failures: {:?}", r.failures);
    }

    #[test]
    fn throughput_collapse_fails_but_zero_ratio_disables() {
        // 100 events over 0.5 s per row: far below any sane floor.
        let slow = sample("true", "null", 100);
        assert!(!check(&slow, DEFAULT_MIN_RATIO).passed());
        assert!(check(&slow, 0.0).passed());
    }

    /// Rewrite one field on the fig2c/refresh row only, leaving every
    /// other row untouched.
    fn patch_fig2c_row(json: &str, from: &str, to: &str) -> String {
        json.lines()
            .map(|l| {
                if l.contains("fig2c/refresh") {
                    l.replace(from, to)
                } else {
                    l.to_string()
                }
            })
            .collect::<Vec<_>>()
            .join("\n")
    }

    #[test]
    fn fig2c_ratchet_fails_on_30_percent_regression() {
        // 553_861 events over 0.5 s ≈ 1_107_722 events/sec — a 30% drop
        // from the best committed figure, below the 25% ratchet floor.
        // The other rows keep 20M events/sec, so the aggregate floor
        // stays green and only the ratchet can fail.
        let json = sample("true", "null", 10_000_000);
        let regressed = patch_fig2c_row(&json, "\"events\": 10000000", "\"events\": 553861");
        let r = check(&regressed, DEFAULT_MIN_RATIO);
        assert!(!r.passed());
        assert!(
            r.failures.iter().any(|f| f.contains("ratchet floor")),
            "failures: {:?}",
            r.failures
        );
        // Ratio 0.0 (instrumented builds) disables the ratchet.
        assert!(check(&regressed, 0.0).passed());
        // A 20% drop stays inside the 25% allowance.
        let ok = patch_fig2c_row(&json, "\"events\": 10000000", "\"events\": 633000");
        assert!(check(&ok, DEFAULT_MIN_RATIO).passed());
    }

    #[test]
    fn missing_fig2c_reference_row_fails_ratchet() {
        let renamed = sample("true", "null", 10_000_000).replace("fig2c/refresh", "fig2c/other");
        let r = check(&renamed, DEFAULT_MIN_RATIO);
        assert!(r
            .failures
            .iter()
            .any(|f| f.contains("no fig2c/refresh row")));
    }

    #[test]
    fn alloc_ceiling_breach_fails() {
        // 0.50 allocs/event against fig2c's 0.20 ceiling.
        let json = sample("true", "null", 10_000_000);
        let hot = patch_fig2c_row(
            &json,
            "\"allocs_per_event\": 0.1",
            "\"allocs_per_event\": 0.5",
        );
        let r = check(&hot, DEFAULT_MIN_RATIO);
        assert!(!r.passed());
        assert!(
            r.failures
                .iter()
                .any(|f| f.contains("breaches the committed ceiling")),
            "failures: {:?}",
            r.failures
        );
        // Ratio 0.0 (instrumented builds, shared alloc counter) disables it.
        assert!(check(&hot, 0.0).passed());
    }

    #[test]
    fn missing_allocs_per_event_fails() {
        let json = sample("true", "null", 10_000_000);
        let unmeasured = patch_fig2c_row(&json, "\"allocs_per_event\": 0.1, ", "");
        let r = check(&unmeasured, DEFAULT_MIN_RATIO);
        assert!(r
            .failures
            .iter()
            .any(|f| f.contains("allocator pressure was not measured")));
    }

    #[test]
    fn ceiling_table_covers_every_registered_scenario() {
        for name in crate::scenarios::ALL {
            assert!(
                alloc_ceiling(name).is_some(),
                "scenario {name} has no committed allocs/event ceiling"
            );
        }
    }

    #[test]
    fn zero_fuzz_cases_fails() {
        let empty = sample("true", "null", 10_000_000).replace("\"cases\": 4", "\"cases\": 0");
        let r = check(&empty, DEFAULT_MIN_RATIO);
        assert!(r
            .failures
            .iter()
            .any(|f| f.contains("zero generated cases")));
    }

    #[test]
    fn fuzz_violations_fail_and_missing_section_fails() {
        let bad =
            sample("true", "null", 10_000_000).replace("\"violations\": 0", "\"violations\": 3");
        let r = check(&bad, DEFAULT_MIN_RATIO);
        assert_eq!(r.fuzz_violations, Some(3));
        assert!(r.failures.iter().any(|f| f.contains("oracle violation")));

        let sample_fuzz_line = sample("true", "null", 10_000_000)
            .lines()
            .find(|l| l.contains("\"fuzz\":"))
            .expect("sample carries a fuzz line")
            .to_string();
        let gone = sample("true", "null", 10_000_000).replace(&format!("{sample_fuzz_line}\n"), "");
        let r = check(&gone, DEFAULT_MIN_RATIO);
        assert_eq!(r.fuzz_violations, None);
        assert!(r.failures.iter().any(|f| f.contains("corpus did not run")));
    }

    #[test]
    fn coverage_not_above_baseline_fails() {
        let flat = sample("true", "null", 10_000_000)
            .replace("\"coverage_bits\": 54", "\"coverage_bits\": 40");
        let r = check(&flat, DEFAULT_MIN_RATIO);
        assert_eq!(r.fuzz_coverage_bits, Some(40));
        assert_eq!(r.fuzz_baseline_bits, Some(40));
        assert!(r
            .failures
            .iter()
            .any(|f| f.contains("dynamics-only baseline")));
    }

    #[test]
    fn missing_coverage_fields_fail() {
        let gone = sample("true", "null", 10_000_000).replace(
            ", \"coverage_bits\": 54, \
             \"baseline_coverage_bits\": 40",
            "",
        );
        let r = check(&gone, DEFAULT_MIN_RATIO);
        assert_eq!(r.fuzz_coverage_bits, None);
        assert!(r
            .failures
            .iter()
            .any(|f| f.contains("coverage floor was not measured")));
    }

    #[test]
    fn diag_overhead_and_missing_section_fail() {
        // Healthy sample: extra_events == probes passes (checked by
        // healthy_report_passes). One event too many fails.
        let heavy = sample("true", "null", 10_000_000)
            .replace("\"extra_events\": 120", "\"extra_events\": 121");
        let r = check(&heavy, DEFAULT_MIN_RATIO);
        assert_eq!(r.diag_probes, Some(120));
        assert_eq!(r.diag_extra_events, Some(121));
        assert!(r.failures.iter().any(|f| f.contains("sockdiag overhead")));

        let silent = sample("true", "null", 10_000_000).replace("\"probes\": 120", "\"probes\": 0");
        let r = check(&silent, DEFAULT_MIN_RATIO);
        assert!(r
            .failures
            .iter()
            .any(|f| f.contains("zero sockdiag probes")));

        let sample_diag_line = sample("true", "null", 10_000_000)
            .lines()
            .find(|l| l.contains("\"diag\":"))
            .expect("sample carries a diag line")
            .to_string();
        let gone = sample("true", "null", 10_000_000).replace(&format!("{sample_diag_line}\n"), "");
        let r = check(&gone, DEFAULT_MIN_RATIO);
        assert_eq!(r.diag_probes, None);
        assert!(r
            .failures
            .iter()
            .any(|f| f.contains("overhead was not measured")));
    }

    #[test]
    fn missing_scenario_fails_coverage() {
        let json = sample("true", "null", 10_000_000).replace("\"fleet/v\"", "\"fleeb/v\"");
        let r = check(&json, DEFAULT_MIN_RATIO);
        assert!(r.failures.iter().any(|f| f.contains("scenario fleet")));
    }

    #[test]
    fn sample_matches_serializer_field_order() {
        // The synthetic sample mimics the serializer's row shape; keep the
        // first parsed name consistent with it. True end-to-end coverage
        // against `PerfReport::to_json` lives in
        // `perf::tests::smoke_report_runs_and_serializes`, which pipes a
        // real report through `check`.
        let json = sample("true", "null", 5_000_000);
        let r = check(&json, DEFAULT_MIN_RATIO);
        assert_eq!(
            r.scenario_names[0],
            format!("{}/v", crate::scenarios::ALL[0])
        );
    }
}
