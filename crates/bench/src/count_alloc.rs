//! A counting global allocator for the bench binaries.
//!
//! Wall-time alone hides a class of regressions: an optimization can keep
//! events/sec flat on one machine while tripling allocator pressure (which
//! shows up as wall-time only under different heap states or allocators).
//! Every bench binary installs [`CountingAlloc`] as its `#[global_allocator]`;
//! the perf harness snapshots [`allocs`] around each single-threaded matrix
//! cell and reports **allocations per simulated event** in the committed
//! `BENCH_*.json` trajectory, so future PRs can see allocator-pressure
//! regressions, not just wall-time — and `gate::ALLOC_CEILINGS` fails the
//! build when a scenario's figure regresses past its committed ceiling.
//!
//! The counter is a process-wide relaxed atomic: exact in the `--jobs 1`
//! measurement pass (one cell at a time on one thread), and deliberately
//! not reported for parallel passes where concurrent cells would share it.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCS: AtomicU64 = AtomicU64::new(0);

/// The system allocator plus a process-wide allocation counter. Install
/// with:
///
/// ```ignore
/// #[global_allocator]
/// static ALLOC: smapp_bench::count_alloc::CountingAlloc = smapp_bench::count_alloc::CountingAlloc;
/// ```
pub struct CountingAlloc;

// SAFETY: defers entirely to `System`; the only addition is a relaxed
// counter increment, which allocates nothing and cannot fail.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

/// Heap allocations (alloc + alloc_zeroed + realloc calls) since process
/// start — 0 forever when no bench binary installed [`CountingAlloc`].
pub fn allocs() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    use super::*;

    // The bench lib's own unit-test binary installs the counting allocator,
    // proving the counter actually advances under real allocation traffic.
    #[global_allocator]
    static TEST_ALLOC: CountingAlloc = CountingAlloc;

    #[test]
    fn counter_advances_on_allocation() {
        let before = allocs();
        let v: Vec<u64> = (0..1024).collect();
        let grown = {
            let mut s = Vec::with_capacity(1);
            for i in 0..100 {
                s.push(i); // forces reallocs
            }
            s.len()
        };
        let after = allocs();
        assert!(v.len() == 1024 && grown == 100);
        assert!(
            after > before,
            "allocation counter must advance: before={before} after={after}"
        );
    }
}
