//! Seeded traffic models: heavy-tailed sizes, wavy arrivals, mixed apps.
//!
//! The paper's workloads (bulk transfers, chained GETs, fixed-rate
//! streams) are clean-room shapes. Real CDN-ish traffic is messier along
//! three axes this module models, all driven by one [`SimRng`] so every
//! sample is bit-deterministic per seed:
//!
//! * **flow sizes** follow a bounded Pareto (heavy tail: most flows are
//!   mice, a few elephants carry most bytes),
//! * **flow arrivals** form a Poisson process whose rate is modulated by
//!   a sinusoidal "diurnal" wave (busy hours, quiet hours),
//! * **application mix** splits flows between short GET-style transfers
//!   that close when done and paced streaming flows.
//!
//! Both the fuzzer (`crate::fuzz`) and the `cdn` scenario
//! (`crate::scenarios::cdn`) draw their workloads from here.

use smapp_sim::{SimRng, SimTime};

/// What kind of application a sampled flow runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FlowClass {
    /// A request/response transfer that closes when the bytes are sent.
    ShortGet,
    /// A paced streaming flow (fixed-size blocks at an interval).
    Streaming,
}

/// One sampled flow: when it starts, how many bytes it moves, what runs it.
#[derive(Clone, Copy, Debug)]
pub struct FlowSpec {
    /// Arrival time of the flow (connection scheduled here).
    pub start: SimTime,
    /// Total application bytes.
    pub size: u64,
    /// Application shape.
    pub class: FlowClass,
}

/// A seeded traffic model. Construct one (or take [`TrafficModel::cdn`]),
/// then [`TrafficModel::sample`] flows from a caller-owned RNG.
#[derive(Clone, Copy, Debug)]
pub struct TrafficModel {
    /// Pareto tail index; smaller = heavier tail. Typical web traffic
    /// fits 1.1–1.5.
    pub alpha: f64,
    /// Smallest flow size in bytes (the Pareto lower bound).
    pub size_min: u64,
    /// Largest flow size in bytes (the bounded-Pareto upper cutoff).
    pub size_max: u64,
    /// Mean arrival rate in flows per second at wave midpoint.
    pub rate_hz: f64,
    /// Relative amplitude of the diurnal wave in `[0, 1)`: the
    /// instantaneous rate swings between `rate_hz * (1 ± amplitude)`.
    pub wave_amplitude: f64,
    /// Period of the diurnal wave (compressed into simulation time).
    pub wave_period: SimTime,
    /// Fraction of flows that are [`FlowClass::ShortGet`] (the rest
    /// stream).
    pub get_fraction: f64,
}

impl TrafficModel {
    /// The CDN-ish default: heavy tail (α = 1.2) from 2 KB mice to 2 MB
    /// elephants, ~12 flows/s swinging ±60% over a 20 s "day", 80% GETs.
    pub fn cdn() -> Self {
        TrafficModel {
            alpha: 1.2,
            size_min: 2_000,
            size_max: 2_000_000,
            rate_hz: 12.0,
            wave_amplitude: 0.6,
            wave_period: SimTime::from_secs(20),
            get_fraction: 0.8,
        }
    }

    /// One bounded-Pareto flow size.
    pub fn sample_size(&self, rng: &mut SimRng) -> u64 {
        let u = rng.unit_f64();
        let l = self.size_min.max(1) as f64;
        let h = self.size_max.max(self.size_min) as f64;
        // Inverse CDF of the bounded Pareto(l, h, alpha).
        let ratio = (l / h).powf(self.alpha);
        let x = l / (1.0 - u * (1.0 - ratio)).powf(1.0 / self.alpha);
        (x as u64).clamp(self.size_min, self.size_max)
    }

    /// Instantaneous arrival rate at `t` (the diurnal wave).
    pub fn rate_at(&self, t: SimTime) -> f64 {
        let phase = (t.as_nanos() % self.wave_period.as_nanos().max(1)) as f64
            / self.wave_period.as_nanos().max(1) as f64;
        let wave = (phase * std::f64::consts::TAU).sin();
        (self.rate_hz * (1.0 + self.wave_amplitude * wave)).max(self.rate_hz * 0.01)
    }

    /// Sample the arrival process over `[start, horizon)`, capped at
    /// `max_flows` flows. Arrivals are a non-homogeneous Poisson process
    /// realized by thinning: candidate gaps are exponential at the peak
    /// rate, and each candidate survives with probability
    /// `rate_at(t) / peak`.
    pub fn sample(
        &self,
        rng: &mut SimRng,
        start: SimTime,
        horizon: SimTime,
        max_flows: usize,
    ) -> Vec<FlowSpec> {
        let peak = self.rate_hz * (1.0 + self.wave_amplitude);
        let mut flows = Vec::new();
        let mut t_ns = start.as_nanos() as f64;
        let end_ns = horizon.as_nanos() as f64;
        while flows.len() < max_flows {
            // Exponential gap at the peak rate (inverse-CDF sampling).
            let u = rng.unit_f64().max(f64::MIN_POSITIVE);
            t_ns += -u.ln() / peak * 1e9;
            if t_ns >= end_ns {
                break;
            }
            let t = SimTime::from_nanos(t_ns as u64);
            if !rng.chance(self.rate_at(t) / peak) {
                continue; // thinned: the wave is in a trough
            }
            let class = if rng.chance(self.get_fraction) {
                FlowClass::ShortGet
            } else {
                FlowClass::Streaming
            };
            flows.push(FlowSpec {
                start: t,
                size: self.sample_size(rng),
                class,
            });
        }
        flows
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let m = TrafficModel::cdn();
        let sample = |seed| {
            let mut rng = SimRng::seed_from_u64(seed);
            m.sample(
                &mut rng,
                SimTime::from_millis(5),
                SimTime::from_secs(30),
                200,
            )
        };
        let a = sample(42);
        let b = sample(42);
        assert_eq!(a.len(), b.len());
        assert!(a
            .iter()
            .zip(b.iter())
            .all(|(x, y)| x.start == y.start && x.size == y.size && x.class == y.class));
        let c = sample(43);
        assert!(
            a.len() != c.len()
                || a.iter()
                    .zip(c.iter())
                    .any(|(x, y)| x.start != y.start || x.size != y.size),
            "different seeds should differ"
        );
    }

    #[test]
    fn sizes_are_bounded_and_heavy_tailed() {
        let m = TrafficModel::cdn();
        let mut rng = SimRng::seed_from_u64(7);
        let sizes: Vec<u64> = (0..4000).map(|_| m.sample_size(&mut rng)).collect();
        assert!(sizes.iter().all(|s| (2_000..=2_000_000).contains(s)));
        let mice = sizes.iter().filter(|s| **s < 10_000).count();
        let elephants = sizes.iter().filter(|s| **s > 500_000).count();
        assert!(mice > sizes.len() / 2, "most flows are mice: {mice}");
        assert!(elephants > 0, "the tail reaches elephants");
    }

    #[test]
    fn arrivals_follow_the_wave_and_respect_bounds() {
        let m = TrafficModel::cdn();
        let mut rng = SimRng::seed_from_u64(9);
        let flows = m.sample(&mut rng, SimTime::ZERO, SimTime::from_secs(40), 10_000);
        assert!(!flows.is_empty());
        assert!(flows.windows(2).all(|w| w[0].start <= w[1].start));
        assert!(flows.iter().all(|f| f.start < SimTime::from_secs(40)));
        // Crest (around 1/4 of the period) should outdraw trough (3/4).
        let crest = flows
            .iter()
            .filter(|f| f.start.as_millis() % 20_000 < 10_000)
            .count();
        let trough = flows.len() - crest;
        assert!(crest > trough, "crest {crest} vs trough {trough}");
        // The cap is a hard bound.
        let mut rng = SimRng::seed_from_u64(9);
        assert_eq!(
            m.sample(&mut rng, SimTime::ZERO, SimTime::from_secs(40), 5)
                .len(),
            5
        );
    }

    #[test]
    fn class_mix_matches_get_fraction_roughly() {
        let m = TrafficModel::cdn();
        let mut rng = SimRng::seed_from_u64(11);
        let flows = m.sample(&mut rng, SimTime::ZERO, SimTime::from_secs(120), 2_000);
        let gets = flows
            .iter()
            .filter(|f| f.class == FlowClass::ShortGet)
            .count();
        let frac = gets as f64 / flows.len() as f64;
        assert!((0.65..0.95).contains(&frac), "GET fraction {frac}");
    }
}
