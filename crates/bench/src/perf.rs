//! The performance measurement harness behind the `perf_report` binary.
//!
//! PR 2 measured three macro scenarios one after another on one core. This
//! harness drives the **whole paper surface plus the beyond-paper
//! workloads** — fig2a, fig2b, fig2c, fig3, §4.2, `fleet`, and the
//! scripted network-dynamics trio `handover`/`flap`/`middlebox` — as a
//! declarative scenario×seed [`crate::sweep::Matrix`], twice:
//!
//! 1. at `--jobs 1` (inline, no pool) for single-thread throughput,
//!    allocations/event, and comparability with the PR-2 numbers, and
//! 2. at `--jobs N` (scoped worker pool) for the aggregate matrix
//!    wall-time, asserting the results are **bit-identical** to pass 1 —
//!    a parallel run that changes any trajectory is a bug, not a speedup.
//!
//! The fig2c per-seed trajectory is additionally checked against the
//! recorded `524cdc6` baseline ([`FIG2C_BASELINE`], measured at the first
//! tier-1-green commit), and fig2c single-thread events/sec is compared
//! against the PR-2 figure ([`PR2_FIG2C_EVENTS_PER_SEC`]) to catch
//! single-thread regressions hiding behind multi-core wins.

use std::time::Instant;

use crate::scenarios::{
    cdn, fig2a, fig2b, fig2c, fig3, flap, fleet, fuzz, handover, middlebox, sec42,
};
use crate::sweep::{digest_f64s, fnv1a, parity, Matrix, MatrixEntry, ScenarioRun, SweepResult};

/// fig2c seeds measured into the baseline.
pub const FIG2C_SEEDS: [u64; 3] = [100, 101, 102];

/// Per-seed fig2c trajectory facts at the baseline commit, plus its
/// aggregate throughput. `events` / `ended_at_ns` must reproduce exactly on
/// every optimized build (same seed ⇒ same simulation).
pub struct Fig2cBaseline {
    /// Commit the baseline was measured at.
    pub commit: &'static str,
    /// `RunSummary.events` per seed, in [`FIG2C_SEEDS`] order.
    pub events: [u64; 3],
    /// Simulated completion time (ns) per seed.
    pub ended_at_ns: [u64; 3],
    /// Aggregate events/sec over the three seeds (mean of nine interleaved
    /// runs on the measurement machine).
    pub events_per_sec: f64,
}

/// Baseline measurement for the fig2c macro scenario (100 MB, 5 subflows,
/// refresh controller).
pub const FIG2C_BASELINE: Fig2cBaseline = Fig2cBaseline {
    commit: "524cdc6",
    events: [1_011_738, 947_303, 983_405],
    ended_at_ns: [29_079_104_704, 28_335_975_608, 30_288_957_352],
    events_per_sec: 2_199_931.0,
};

/// fig2c single-thread events/sec recorded in `BENCH_PR2.json` on the PR-2
/// measurement machine — the "no single-thread regression" reference.
///
/// Measurement condition: both this figure and [`FIG2C_BASELINE`]'s
/// `events_per_sec` were recorded by binaries *without* the counting
/// global allocator that `perf_report` has installed since PR 3, whose
/// per-allocation atomic adds bias current readings slightly low
/// (~1.7 allocs/event on fig2c). Treat small ratios-below-1.0 against
/// these constants as within noise; the trajectory-parity checks, not the
/// throughput ratios, are the hard gates.
pub const PR2_FIG2C_EVENTS_PER_SEC: f64 = 2_961_302.0;

fn digest_rows(rows: &[(f64, u64, usize)]) -> u64 {
    let mut bytes = Vec::with_capacity(rows.len() * 24);
    for (t, seq, path) in rows {
        bytes.extend_from_slice(&t.to_bits().to_le_bytes());
        bytes.extend_from_slice(&seq.to_le_bytes());
        bytes.extend_from_slice(&(*path as u64).to_le_bytes());
    }
    fnv1a(&bytes)
}

/// The declarative scenario×seed matrix covering the whole paper surface
/// (fig2a, fig2b, fig2c, fig3, §4.2) plus the beyond-paper workloads:
/// the many-client fleet, the scripted network-dynamics trio
/// (handover, flap, middlebox) and the heavy-tailed cdn traffic mix.
/// `smoke` shrinks workloads to CI-liveness sizes. Every scenario
/// registered in [`crate::scenarios::ALL`] must appear here — enforced by
/// the scenario-coverage guard test.
pub fn paper_matrix(smoke: bool) -> Matrix {
    let mut entries = Vec::new();

    // fig2a — backup switchover under 30% loss.
    let p2a = fig2a::Params {
        transfer: if smoke { 200_000 } else { 2_000_000 },
        ..Default::default()
    };
    let seeds = if smoke { vec![42] } else { vec![42, 43, 44] };
    let workload = format!("{} B transfer, 30% loss onset at 1 s", p2a.transfer);
    entries.push(
        MatrixEntry::new("fig2a", "backup", seeds, move |seed| {
            let p = fig2a::Params {
                seed,
                ..p2a.clone()
            };
            let (summary, r) = fig2a::run_instrumented(&p);
            ScenarioRun {
                summary,
                trajectory: format!(
                    "rows={} digest={:016x} switch={:?} delivered={} done={:?}",
                    r.rows.len(),
                    digest_rows(&r.rows),
                    r.switch_at,
                    r.delivered,
                    r.completed_at
                ),
            }
        })
        .workload(workload),
    );

    // fig2b — smart-stream vs full-mesh block delays under 30% loss.
    // Repetition comes from `seeds2b` (one matrix cell per seed);
    // `Params.runs` only matters to the aggregate `fig2b::run` helper,
    // which the matrix bypasses in favour of `run_one_instrumented`.
    let blocks2b = if smoke { 8 } else { 25 };
    let seeds2b: Vec<u64> = if smoke { vec![1] } else { vec![1, 2] };
    for (variant, manager) in [
        ("smart", fig2b::Manager::SmartStream),
        ("fullmesh", fig2b::Manager::FullMesh),
    ] {
        if smoke && manager == fig2b::Manager::FullMesh {
            continue;
        }
        let p = fig2b::Params {
            blocks: blocks2b,
            loss: 0.30,
            manager,
            ..Default::default()
        };
        let workload = format!("{} x 64 KB blocks, 30% loss, {variant}", p.blocks);
        entries.push(
            MatrixEntry::new("fig2b", variant, seeds2b.clone(), move |seed| {
                let (summary, delays) = fig2b::run_one_instrumented(&p, seed);
                ScenarioRun {
                    summary,
                    trajectory: format!(
                        "blocks={} digest={:016x}",
                        delays.len(),
                        digest_f64s(&delays)
                    ),
                }
            })
            .workload(workload),
        );
    }

    // fig2c — the 100 MB ECMP transfer, refresh and ndiffports.
    let transfer2c = if smoke { 5_000_000 } else { 100_000_000 };
    for (variant, manager, seeds) in [
        (
            "refresh",
            fig2c::Manager::Refresh,
            if smoke {
                vec![FIG2C_SEEDS[0]]
            } else {
                FIG2C_SEEDS.to_vec()
            },
        ),
        (
            "ndiffports",
            fig2c::Manager::Ndiffports,
            if smoke { vec![] } else { vec![100, 101] },
        ),
    ] {
        if seeds.is_empty() {
            continue;
        }
        let p = fig2c::Params {
            transfer: transfer2c,
            manager,
            ..Default::default()
        };
        let workload = format!(
            "{} B transfer, 5 subflows, {variant}, 4 ECMP paths",
            p.transfer
        );
        entries.push(
            MatrixEntry::new("fig2c", variant, seeds, move |seed| {
                let (summary, used) = fig2c::run_one_instrumented(&p, seed);
                ScenarioRun {
                    summary,
                    trajectory: format!("end_ns={} paths={used}", summary.ended_at.as_nanos()),
                }
            })
            .workload(workload),
        );
    }

    // fig3 — consecutive GETs, kernel vs userspace path manager.
    let gets = if smoke { 20 } else { 300 };
    for (variant, manager) in [
        ("kernel", fig3::Manager::Kernel),
        ("userspace", fig3::Manager::Userspace),
    ] {
        if smoke && manager == fig3::Manager::Userspace {
            continue;
        }
        let p = fig3::Params {
            gets,
            manager,
            ..Default::default()
        };
        let workload = format!("{gets} consecutive 512 KB GETs, {variant} PM");
        entries.push(
            MatrixEntry::new("fig3", variant, vec![7], move |seed| {
                let p = fig3::Params { seed, ..p.clone() };
                let (summary, cdf, completed) = fig3::run_instrumented(&p);
                assert_eq!(completed, p.gets, "fig3 workload must complete");
                ScenarioRun {
                    summary,
                    trajectory: format!(
                        "joins={} digest={:016x} completed={completed}",
                        cdf.len(),
                        digest_f64s(&cdf.samples)
                    ),
                }
            })
            .workload(workload),
        );
    }

    // §4.2 — the no-SMAPP give-up baseline.
    let p42 = sec42::Params {
        transfer: if smoke { 1_000_000 } else { 4_000_000 },
        max_retries: if smoke { 6 } else { 15 },
        ..Default::default()
    };
    let workload = format!(
        "{} B transfer, blackhole at 1 s, {}-doubling give-up",
        p42.transfer, p42.max_retries
    );
    entries.push(
        MatrixEntry::new("sec42", "giveup", vec![11], move |seed| {
            let p = sec42::Params {
                seed,
                ..p42.clone()
            };
            let (summary, r) = sec42::run_instrumented(&p);
            ScenarioRun {
                summary,
                trajectory: format!(
                    "switch={:?} delivered={} done={:?}",
                    r.switch_at, r.delivered, r.completed_at
                ),
            }
        })
        .workload(workload),
    );

    // fleet — the many-client workload (queue depths far beyond fig3).
    let pf = fleet_params(smoke);
    let workload = format!(
        "{} clients x {} GET(s) of {} B, {} ECMP bottleneck paths, mixed kernel/refresh",
        pf.clients,
        pf.gets,
        pf.response,
        pf.paths.len()
    );
    entries.push(
        MatrixEntry::new("fleet", "mixed", vec![1], move |seed| {
            let (summary, stats) = fleet::run_instrumented(&pf, seed);
            ScenarioRun {
                summary,
                trajectory: format!(
                    "completed={}/{} clients_done={} last_ns={} digest={:016x} \
                     diag=p{}/c{}/s{} ddigest={:016x}",
                    stats.completed,
                    stats.expected,
                    stats.clients_done,
                    stats.last_completion_ns,
                    stats.completions_digest,
                    stats.diag_probes,
                    stats.diag_conns,
                    stats.diag_subflows,
                    stats.diag_digest
                ),
            }
        })
        .workload(workload),
    );

    // handover — scripted WiFi degrade + hard break, backup activation.
    let ph = handover::Params {
        transfer: if smoke { 800_000 } else { 2_000_000 },
        ..Default::default()
    };
    let seeds = if smoke { vec![21] } else { vec![21, 22, 23] };
    let workload = format!(
        "{} B transfer, 30% WiFi loss at 1 s, iface down at 5 s, smart backup",
        ph.transfer
    );
    entries.push(
        MatrixEntry::new("handover", "backup", seeds, move |seed| {
            let p = handover::Params { seed, ..ph.clone() };
            let (summary, r) = handover::run_instrumented(&p);
            ScenarioRun {
                summary,
                trajectory: format!(
                    "rows={} digest={:016x} switch={:?} delivered={} done={:?}",
                    r.rows.len(),
                    digest_rows(&r.rows),
                    r.switch_at,
                    r.delivered,
                    r.completed_at
                ),
            }
        })
        .workload(workload),
    );

    // flap — a periodically failing ECMP bottleneck path, refresh PM
    // re-establishing around it.
    let pfl = if smoke {
        flap::Params {
            transfer: 4_000_000,
            first_down: smapp_sim::SimTime::from_millis(500),
            flaps: 2,
            ..Default::default()
        }
    } else {
        flap::Params::default()
    };
    let seeds = if smoke { vec![31] } else { vec![31, 32] };
    let workload = format!(
        "{} B transfer, path 0 down {}x for {:?} every {:?}, refresh PM",
        pfl.transfer, pfl.flaps, pfl.down_for, pfl.period
    );
    entries.push(
        MatrixEntry::new("flap", "refresh", seeds, move |seed| {
            let p = flap::Params {
                seed,
                ..pfl.clone()
            };
            let (summary, r) = flap::run_instrumented(&p);
            let refresh_times: Vec<f64> = r.refreshes.iter().map(|(t, _, _)| *t).collect();
            ScenarioRun {
                summary,
                trajectory: format!(
                    "refreshes={} digest={:016x} paths={} delivered={} done={:?}",
                    r.refreshes.len(),
                    digest_f64s(&refresh_times),
                    r.paths_used,
                    r.delivered,
                    r.completed_at
                ),
            }
        })
        .workload(workload),
    );

    // middlebox — an option-stripping hop forcing graceful TCP fallback.
    let pm = middlebox::Params {
        transfer: if smoke { 500_000 } else { 2_000_000 },
        ..Default::default()
    };
    let seeds = if smoke { vec![41] } else { vec![41, 42, 43] };
    let workload = format!(
        "{} B transfer through an MPTCP-option-stripping router hop",
        pm.transfer
    );
    entries.push(
        MatrixEntry::new("middlebox", "strip", seeds, move |seed| {
            let p = middlebox::Params { seed, ..pm.clone() };
            let (summary, r) = middlebox::run_instrumented(&p);
            ScenarioRun {
                summary,
                trajectory: format!(
                    "fallback={} subflows={} stripped={} delivered={} done={:?}",
                    r.fallback, r.subflows, r.options_stripped, r.delivered, r.completed_at
                ),
            }
        })
        .workload(workload),
    );

    // cdn — the heavy-tailed, wavy-arrival traffic mix over two paths.
    let pc = cdn::Params {
        max_flows: if smoke { 14 } else { 40 },
        model: crate::traffic::TrafficModel {
            size_max: if smoke { 150_000 } else { 600_000 },
            ..crate::traffic::TrafficModel::cdn()
        },
        window: smapp_sim::SimTime::from_secs(if smoke { 8 } else { 15 }),
        ..Default::default()
    };
    let seeds = if smoke { vec![47] } else { vec![47, 48] };
    let workload = format!(
        "<= {} Pareto-sized GET/stream flows over a {} s wavy-Poisson window",
        pc.max_flows,
        pc.window.as_secs_f64()
    );
    entries.push(
        MatrixEntry::new("cdn", "traffic", seeds, move |seed| {
            let p = cdn::Params { seed, ..pc.clone() };
            let (summary, r) = cdn::run_instrumented(&p);
            ScenarioRun {
                summary,
                trajectory: format!(
                    "flows={} streams={} offered={} delivered={} drained={:?}",
                    r.flows, r.streams, r.offered, r.delivered, r.drained_at
                ),
            }
        })
        .workload(workload),
    );

    // fuzz — generated scenarios from the committed fixed-seed corpus,
    // protocol-invariant oracle enabled. A `viol=` count other than zero in
    // any trajectory fails the CI gate (and the full corpus runs in the
    // dedicated `fuzz` bin / CI job).
    let n_fuzz = if smoke { 4 } else { 12 };
    let seeds = fuzz::matrix_seeds(n_fuzz);
    let workload =
        format!("{n_fuzz} generated (topology x dynamics x controller) cases, oracle on");
    entries.push(
        MatrixEntry::new("fuzz", "corpus", seeds, move |seed| {
            let (summary, out) = fuzz::run_instrumented(seed);
            ScenarioRun {
                summary,
                trajectory: format!(
                    "viol={} delivered={} cov_bits={} {}",
                    out.violations.len(),
                    out.delivered,
                    out.coverage.count(),
                    out.desc
                ),
            }
        })
        .workload(workload),
    );

    Matrix { entries }
}

/// Fleet parameters of the matrix row (shared with the diag-probe
/// overhead measurement in [`run_all`]).
fn fleet_params(smoke: bool) -> fleet::Params {
    if smoke {
        fleet::Params {
            clients: 60,
            response: 32 * 1024,
            ..Default::default()
        }
    } else {
        fleet::Params::default()
    }
}

/// Parse the `diag=p{probes}/c{conns}/s{subflows}` token of the fleet
/// row's trajectory. A missing or unparseable token reads as zeros — the
/// gate then fails on `probes == 0` rather than silently passing.
fn fleet_diag_in(trajectory: &str) -> (u64, u64, u64) {
    let Some(tok) = trajectory
        .split_whitespace()
        .find_map(|t| t.strip_prefix("diag="))
    else {
        return (0, 0, 0);
    };
    let mut parts = tok.split('/');
    let mut next = |prefix: char| {
        parts
            .next()
            .and_then(|s| s.strip_prefix(prefix))
            .and_then(|s| s.parse::<u64>().ok())
            .unwrap_or(0)
    };
    (next('p'), next('c'), next('s'))
}

/// Parse the `viol=N` prefix a fuzz-row trajectory starts with. An
/// unparseable row (format drift between the matrix closure and this
/// parser) counts as one violation so the gate fails loudly instead of
/// reading a broken row as clean.
fn fuzz_violations_in(trajectory: &str) -> u64 {
    trajectory
        .strip_prefix("viol=")
        .and_then(|r| r.split_whitespace().next())
        .and_then(|n| n.parse().ok())
        .unwrap_or(1)
}

/// Aggregate measurements of one `(scenario, variant)` matrix row, from
/// the single-threaded pass.
pub struct ScenarioPerf {
    /// `scenario/variant` label.
    pub name: String,
    /// Workload description for the report.
    pub workload: String,
    /// Seeds aggregated.
    pub runs: usize,
    /// Sum of per-cell wall-clock seconds (single-threaded pass).
    pub wall_s: f64,
    /// Total simulator events processed.
    pub events: u64,
    /// Events per wall-clock second.
    pub events_per_sec: f64,
    /// Heap allocations per simulated event.
    pub allocs_per_event: f64,
    /// Maximum event-queue depth over the row's runs.
    pub peak_queue: usize,
    /// Simulated seconds covered.
    pub sim_s: f64,
}

/// Full report: the matrix at `--jobs 1` vs `--jobs N`, per-row
/// single-thread measurements, and the fig2c baseline verdicts.
pub struct PerfReport {
    /// Smoke mode (reduced sizes; no baseline comparison).
    pub smoke: bool,
    /// Worker threads used for the parallel pass.
    pub jobs: usize,
    /// `std::thread::available_parallelism()` on the measurement machine —
    /// the context needed to interpret `matrix_speedup`.
    pub machine_parallelism: usize,
    /// Matrix cells executed per pass.
    pub matrix_cells: usize,
    /// Aggregate matrix wall-clock at `--jobs 1`.
    pub wall_jobs1_s: f64,
    /// Aggregate matrix wall-clock at `--jobs N`.
    pub wall_jobsn_s: f64,
    /// `wall_jobs1_s / wall_jobsn_s`.
    pub matrix_speedup: f64,
    /// Did the second pass reproduce the first bit-for-bit? With
    /// `jobs > 1` this is the cross-thread parity gate; with `jobs == 1`
    /// (e.g. a single-core machine) both passes run inline and the check
    /// degenerates to rerun determinism — still a real invariant, but it
    /// exercises no parallelism.
    pub parallel_parity: bool,
    /// Per-row single-thread measurements.
    pub scenarios: Vec<ScenarioPerf>,
    /// Peak event-queue depth of the fleet run (vs fig3's 5737).
    pub fleet_peak_queue: usize,
    /// Generated fuzz cases executed (oracle enabled) in the matrix.
    pub fuzz_cases: usize,
    /// Total oracle violations across those cases (0 on a healthy build).
    pub fuzz_violations: u64,
    /// Union feature-coverage bits over the matrix's corpus slice under
    /// the full case derivation (adversarial middleboxes + traffic mix).
    pub fuzz_coverage_bits: u32,
    /// The same union under the frozen PR-5 derivation (dynamics only) —
    /// the floor the current corpus must strictly beat.
    pub fuzz_baseline_bits: u32,
    /// Sockdiag probes the fleet's scripted sweep answered.
    pub diag_probes: u64,
    /// Connections reported across the fleet's sockdiag replies.
    pub diag_conns: u64,
    /// Subflow RTT/cwnd snapshots across the fleet's sockdiag replies.
    pub diag_subflows: u64,
    /// Calendar events the probed fleet run processed beyond an unprobed
    /// run of the same seed — the whole cost of the introspection plane.
    /// Probes are read-only, so this is exactly one event per probe on a
    /// healthy build (the gate enforces `extra_events <= probes`).
    pub diag_extra_events: u64,
    /// fig2c single-thread speedup over [`FIG2C_BASELINE`] (full mode only).
    pub fig2c_speedup: Option<f64>,
    /// fig2c single-thread events/sec relative to the PR-2 figure
    /// (full mode only; ~1.0 means no single-thread regression).
    pub fig2c_vs_pr2: Option<f64>,
    /// Whether every fig2c seed reproduced the baseline trajectory
    /// (full mode only).
    pub fig2c_parity: Option<bool>,
    /// Human-readable parity details (mismatches, if any).
    pub parity_notes: Vec<String>,
}

fn aggregate(matrix: &Matrix, seq: &[SweepResult]) -> Vec<ScenarioPerf> {
    let mut rows = Vec::new();
    for entry in &matrix.entries {
        let cells: Vec<&SweepResult> = seq
            .iter()
            .filter(|r| r.scenario == entry.scenario && r.variant == entry.variant)
            .collect();
        if cells.is_empty() {
            continue;
        }
        let wall_s: f64 = cells.iter().map(|c| c.wall_s).sum();
        let events: u64 = cells.iter().map(|c| c.run.summary.events).sum();
        let allocs: u64 = cells.iter().map(|c| c.allocs).sum();
        rows.push(ScenarioPerf {
            name: format!("{}/{}", entry.scenario, entry.variant),
            workload: entry.workload.clone(),
            runs: cells.len(),
            wall_s,
            events,
            events_per_sec: events as f64 / wall_s,
            allocs_per_event: allocs as f64 / events.max(1) as f64,
            peak_queue: cells
                .iter()
                .map(|c| c.run.summary.peak_queue)
                .max()
                .unwrap_or(0),
            sim_s: cells
                .iter()
                .map(|c| c.run.summary.ended_at.as_secs_f64())
                .sum(),
        });
    }
    rows
}

/// Run the whole matrix at `--jobs 1` and `--jobs N` and assemble the
/// report. The second pass always runs, even when `jobs == 1`: there it
/// verifies rerun determinism instead of cross-thread parity (see
/// [`PerfReport::parallel_parity`]) — a measurement binary can afford the
/// second pass, and a silent skip would make the parity flag meaningless.
pub fn run_all(smoke: bool, jobs: usize) -> PerfReport {
    let matrix = paper_matrix(smoke);

    let t0 = Instant::now();
    let seq = matrix.run(1);
    let wall_jobs1_s = t0.elapsed().as_secs_f64();

    let t0 = Instant::now();
    let par = matrix.run(jobs);
    let wall_jobsn_s = t0.elapsed().as_secs_f64();

    let parallel_parity = parity(&seq, &par);
    let mut parity_notes = Vec::new();
    if !parallel_parity {
        for (a, b) in seq.iter().zip(&par) {
            if a != b {
                parity_notes.push(format!(
                    "{}/{} seed {}: jobs=1 {:?} != jobs={jobs} {:?}",
                    a.scenario, a.variant, a.seed, a.run.trajectory, b.run.trajectory
                ));
            }
        }
    }

    // fig2c refresh: baseline trajectory parity + speedup (full mode).
    let fig2c_cells: Vec<&SweepResult> = seq
        .iter()
        .filter(|r| r.scenario == "fig2c" && r.variant == "refresh")
        .collect();
    let (mut fig2c_speedup, mut fig2c_vs_pr2, mut fig2c_parity) = (None, None, None);
    if !smoke {
        let mut ok = true;
        for (i, &seed) in FIG2C_SEEDS.iter().enumerate() {
            let Some(cell) = fig2c_cells.iter().find(|c| c.seed == seed) else {
                ok = false;
                parity_notes.push(format!("fig2c seed {seed}: missing from matrix"));
                continue;
            };
            if cell.run.summary.events != FIG2C_BASELINE.events[i] {
                ok = false;
                parity_notes.push(format!(
                    "fig2c seed {seed}: events {} != baseline {}",
                    cell.run.summary.events, FIG2C_BASELINE.events[i]
                ));
            }
            if cell.run.summary.ended_at.as_nanos() != FIG2C_BASELINE.ended_at_ns[i] {
                ok = false;
                parity_notes.push(format!(
                    "fig2c seed {seed}: ended_at {} ns != baseline {} ns",
                    cell.run.summary.ended_at.as_nanos(),
                    FIG2C_BASELINE.ended_at_ns[i]
                ));
            }
        }
        fig2c_parity = Some(ok);
        let wall: f64 = fig2c_cells.iter().map(|c| c.wall_s).sum();
        let events: u64 = fig2c_cells.iter().map(|c| c.run.summary.events).sum();
        let eps = events as f64 / wall;
        fig2c_speedup = Some(eps / FIG2C_BASELINE.events_per_sec);
        fig2c_vs_pr2 = Some(eps / PR2_FIG2C_EVENTS_PER_SEC);
    }

    let fleet_peak_queue = seq
        .iter()
        .filter(|r| r.scenario == "fleet")
        .map(|r| r.run.summary.peak_queue)
        .max()
        .unwrap_or(0);

    // Sockdiag plane: counters from the fleet row, plus the probe
    // overhead measured as extra calendar events vs an unprobed rerun of
    // the same seed (probes are read-only, so the protocol trajectory is
    // identical and the difference is purely the probe events).
    let fleet_row = seq.iter().find(|r| r.scenario == "fleet");
    let (diag_probes, diag_conns, diag_subflows) = fleet_row
        .map(|r| fleet_diag_in(&r.run.trajectory))
        .unwrap_or((0, 0, 0));
    let diag_extra_events = fleet_row
        .map(|r| {
            let unprobed = fleet::Params {
                probe_after: None,
                ..fleet_params(smoke)
            };
            let (summary, _) = fleet::run_instrumented(&unprobed, r.seed);
            r.run.summary.events.saturating_sub(summary.events)
        })
        .unwrap_or(0);

    let fuzz_rows: Vec<&SweepResult> = seq.iter().filter(|r| r.scenario == "fuzz").collect();
    let fuzz_cases = fuzz_rows.len();
    let fuzz_violations = fuzz_rows
        .iter()
        .map(|r| fuzz_violations_in(&r.run.trajectory))
        .fold(0u64, u64::saturating_add);

    // Corpus feature coverage vs the frozen PR-5 derivation over the same
    // seeds: the current derivation (middlebox rewriters, floods, traffic
    // mix) must strictly widen the explored feature space.
    let fuzz_seeds: Vec<u64> = fuzz_rows.iter().map(|r| r.seed).collect();
    let mut cov = smapp_sim::Coverage::new();
    let mut base_cov = smapp_sim::Coverage::new();
    let opts = crate::fuzz::FuzzOptions::default();
    for &seed in &fuzz_seeds {
        cov.union(&crate::fuzz::run_case(seed).coverage);
        let v1 = crate::fuzz::FuzzCase::derive_v1(seed);
        base_cov.union(&crate::fuzz::run_case_opts(&v1, &opts).coverage);
    }

    PerfReport {
        smoke,
        jobs,
        machine_parallelism: crate::sweep::default_jobs(),
        matrix_cells: seq.len(),
        wall_jobs1_s,
        wall_jobsn_s,
        matrix_speedup: wall_jobs1_s / wall_jobsn_s,
        parallel_parity,
        scenarios: aggregate(&matrix, &seq),
        fleet_peak_queue,
        fuzz_cases,
        fuzz_violations,
        fuzz_coverage_bits: cov.count(),
        fuzz_baseline_bits: base_cov.count(),
        diag_probes,
        diag_conns,
        diag_subflows,
        diag_extra_events,
        fig2c_speedup,
        fig2c_vs_pr2,
        fig2c_parity,
        parity_notes,
    }
}

impl PerfReport {
    /// Serialize to the `BENCH_PR3.json` schema (hand-rolled: the workspace
    /// deliberately carries no serde dependency).
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        s.push_str(&format!("  \"smoke\": {},\n", self.smoke));
        s.push_str(&format!(
            "  \"baseline\": {{\"commit\": \"{}\", \"fig2c_events_per_sec\": {:.0}}},\n",
            FIG2C_BASELINE.commit, FIG2C_BASELINE.events_per_sec
        ));
        s.push_str(&format!(
            "  \"pr2\": {{\"fig2c_events_per_sec\": {PR2_FIG2C_EVENTS_PER_SEC:.0}}},\n"
        ));
        s.push_str(&format!(
            "  \"sweep\": {{\"jobs\": {}, \"machine_parallelism\": {}, \"matrix_cells\": {}, \
             \"wall_jobs1_s\": {:.4}, \"wall_jobsn_s\": {:.4}, \"matrix_speedup\": {:.3}, \
             \"parallel_parity\": {}}},\n",
            self.jobs,
            self.machine_parallelism,
            self.matrix_cells,
            self.wall_jobs1_s,
            self.wall_jobsn_s,
            self.matrix_speedup,
            self.parallel_parity
        ));
        s.push_str("  \"scenarios\": [\n");
        for (i, p) in self.scenarios.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"name\": \"{}\", \"workload\": \"{}\", \"runs\": {}, \"wall_s\": {:.4}, \
                 \"events\": {}, \"events_per_sec\": {:.0}, \"allocs_per_event\": {:.2}, \
                 \"peak_queue\": {}, \"sim_s\": {:.3}}}{}\n",
                p.name,
                p.workload,
                p.runs,
                p.wall_s,
                p.events,
                p.events_per_sec,
                p.allocs_per_event,
                p.peak_queue,
                p.sim_s,
                if i + 1 < self.scenarios.len() {
                    ","
                } else {
                    ""
                }
            ));
        }
        s.push_str("  ],\n");
        s.push_str(&format!(
            "  \"fleet\": {{\"peak_queue\": {}, \"fig3_peak_queue_reference\": 5737}},\n",
            self.fleet_peak_queue
        ));
        s.push_str(&format!(
            "  \"fuzz\": {{\"cases\": {}, \"violations\": {}, \"coverage_bits\": {}, \
             \"baseline_coverage_bits\": {}}},\n",
            self.fuzz_cases, self.fuzz_violations, self.fuzz_coverage_bits, self.fuzz_baseline_bits
        ));
        s.push_str(&format!(
            "  \"diag\": {{\"probes\": {}, \"conns\": {}, \"subflows\": {}, \
             \"extra_events\": {}}},\n",
            self.diag_probes, self.diag_conns, self.diag_subflows, self.diag_extra_events
        ));
        match self.fig2c_speedup {
            Some(x) => s.push_str(&format!("  \"fig2c_speedup_vs_baseline\": {x:.3},\n")),
            None => s.push_str("  \"fig2c_speedup_vs_baseline\": null,\n"),
        }
        match self.fig2c_vs_pr2 {
            Some(x) => s.push_str(&format!("  \"fig2c_vs_pr2\": {x:.3},\n")),
            None => s.push_str("  \"fig2c_vs_pr2\": null,\n"),
        }
        match self.fig2c_parity {
            Some(p) => s.push_str(&format!("  \"fig2c_trajectory_parity\": {p}\n")),
            None => s.push_str("  \"fig2c_trajectory_parity\": null\n"),
        }
        s.push_str("}\n");
        s
    }

    /// Render the human-readable table.
    pub fn render(&self) -> String {
        let mut s = String::new();
        s.push_str(&format!(
            "perf_report ({} mode, --jobs {}, machine parallelism {})\n",
            if self.smoke { "smoke" } else { "full" },
            self.jobs,
            self.machine_parallelism
        ));
        s.push_str(&format!(
            "matrix: {} cells  jobs=1 {:.2}s  jobs={} {:.2}s  speedup {:.2}x  parity {}\n",
            self.matrix_cells,
            self.wall_jobs1_s,
            self.jobs,
            self.wall_jobsn_s,
            self.matrix_speedup,
            if self.parallel_parity {
                "IDENTICAL"
            } else {
                "MISMATCH"
            }
        ));
        s.push_str(
            "scenario          runs wall_s    events      events/sec  allocs/ev  peak_q  sim_s\n",
        );
        for p in &self.scenarios {
            s.push_str(&format!(
                "{:<17} {:<4} {:<9.3} {:<11} {:<11.0} {:<10.2} {:<7} {:.2}\n",
                p.name,
                p.runs,
                p.wall_s,
                p.events,
                p.events_per_sec,
                p.allocs_per_event,
                p.peak_queue,
                p.sim_s
            ));
        }
        s.push_str(&format!(
            "fuzz: {} generated cases, {} oracle violation(s), \
             {} feature bits (dynamics-only baseline {})\n",
            self.fuzz_cases, self.fuzz_violations, self.fuzz_coverage_bits, self.fuzz_baseline_bits
        ));
        s.push_str(&format!(
            "diag: {} probes -> {} conns / {} subflow snapshots, \
             +{} events vs unprobed run\n",
            self.diag_probes, self.diag_conns, self.diag_subflows, self.diag_extra_events
        ));
        if let Some(x) = self.fig2c_speedup {
            s.push_str(&format!(
                "fig2c vs {} baseline: {:.2}x events/sec (vs PR2: {:.2}x)\n",
                FIG2C_BASELINE.commit,
                x,
                self.fig2c_vs_pr2.unwrap_or(0.0)
            ));
        }
        if let Some(parity) = self.fig2c_parity {
            s.push_str(&format!(
                "fig2c trajectory parity: {}\n",
                if parity { "IDENTICAL" } else { "MISMATCH" }
            ));
        }
        for n in &self.parity_notes {
            s.push_str(&format!("  {n}\n"));
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_report_runs_and_serializes() {
        let r = run_all(true, 2);
        assert!(r.matrix_cells >= 9, "smoke matrix covers every scenario");
        assert!(r.scenarios.iter().all(|s| s.events > 0));
        assert!(r.scenarios.iter().all(|s| s.peak_queue > 0));
        assert!(
            r.parallel_parity,
            "jobs=1 and jobs=2 must agree bit-for-bit: {:?}",
            r.parity_notes
        );
        assert!(r.fig2c_speedup.is_none());
        let names: Vec<&str> = r.scenarios.iter().map(|s| s.name.as_str()).collect();
        for want in [
            "fig2a/backup",
            "fig2b/smart",
            "fig2c/refresh",
            "fig3/kernel",
            "sec42/giveup",
            "fleet/mixed",
            "handover/backup",
            "flap/refresh",
            "middlebox/strip",
            "cdn/traffic",
            "fuzz/corpus",
        ] {
            assert!(
                names.contains(&want),
                "matrix row {want} missing: {names:?}"
            );
        }
        assert_eq!(r.fuzz_cases, 4, "smoke matrix runs 4 fuzz cases");
        assert_eq!(r.fuzz_violations, 0, "fuzz corpus oracle-clean");
        assert!(
            r.fuzz_coverage_bits > r.fuzz_baseline_bits,
            "full derivation ({} bits) must strictly beat the dynamics-only \
             baseline ({} bits)",
            r.fuzz_coverage_bits,
            r.fuzz_baseline_bits
        );
        // The sockdiag sweep ran over the fleet row and cost exactly one
        // calendar event per probe (probes are read-only).
        assert_eq!(r.diag_probes, 120, "two probes per smoke-fleet client");
        assert!(r.diag_conns > 0 && r.diag_subflows > 0, "dumps carry state");
        assert_eq!(
            r.diag_extra_events, r.diag_probes,
            "probe overhead is one calendar event per probe, nothing else"
        );
        let json = r.to_json();
        assert!(json.contains("\"fig2c_trajectory_parity\": null"));
        assert!(json.contains("\"parallel_parity\": true"));
        assert!(json.contains("\"name\": \"fleet/mixed\""));
        assert!(json.contains(&format!(
            "\"fuzz\": {{\"cases\": 4, \"violations\": 0, \"coverage_bits\": {}, \
             \"baseline_coverage_bits\": {}}}",
            r.fuzz_coverage_bits, r.fuzz_baseline_bits
        )));
        assert!(json.contains(&format!(
            "\"diag\": {{\"probes\": {}, \"conns\": {}, \"subflows\": {}, \
             \"extra_events\": {}}}",
            r.diag_probes, r.diag_conns, r.diag_subflows, r.diag_extra_events
        )));
        // Crude structural check: braces balance.
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "JSON braces balance"
        );
        // End-to-end through the CI gate parser: the real serialized
        // report must parse and pass (throughput check disabled — this is
        // a debug build).
        let verdict = crate::gate::check(&json, 0.0);
        assert!(
            verdict.passed(),
            "gate must pass on a healthy smoke report: {:?}",
            verdict.failures
        );
        assert_eq!(verdict.parallel_parity, Some(true));
        assert_eq!(verdict.fig2c_parity, None, "smoke emits null");
        assert_eq!(verdict.scenario_names.len(), r.scenarios.len());
        let _ = r.render();
    }
}
