//! The performance measurement harness behind the `perf_report` binary.
//!
//! Runs the repo's three macro scenarios (fig2a, fig2c, fig3) under wall
//! clocks, reports simulator throughput (events/sec) and peak event-queue
//! depth, and — for the fig2c 100 MB transfer — asserts *trajectory parity*
//! with the recorded PR-2 baseline: an optimization that changes
//! `RunSummary.events` or the completion time for any seed is a semantics
//! change, not a speedup.
//!
//! The baseline block ([`FIG2C_BASELINE`]) was measured at commit
//! `524cdc6` (the first tier-1-green commit) with this same harness logic,
//! interleaving baseline and optimized binaries on one machine to cancel
//! machine-load drift. Later perf PRs extend `BENCH_PR<n>.json` the same
//! way: measure old and new interleaved, record both.

use std::time::Instant;

use crate::scenarios::{fig2a, fig2c, fig3};

/// fig2c seeds measured into the baseline.
pub const FIG2C_SEEDS: [u64; 3] = [100, 101, 102];

/// Per-seed fig2c trajectory facts at the baseline commit, plus its
/// aggregate throughput. `events` / `ended_at_ns` must reproduce exactly on
/// every optimized build (same seed ⇒ same simulation).
pub struct Fig2cBaseline {
    /// Commit the baseline was measured at.
    pub commit: &'static str,
    /// `RunSummary.events` per seed, in [`FIG2C_SEEDS`] order.
    pub events: [u64; 3],
    /// Simulated completion time (ns) per seed.
    pub ended_at_ns: [u64; 3],
    /// Aggregate events/sec over the three seeds (mean of nine interleaved
    /// runs on the measurement machine).
    pub events_per_sec: f64,
}

/// Baseline measurement for the fig2c macro scenario (100 MB, 5 subflows,
/// refresh controller).
pub const FIG2C_BASELINE: Fig2cBaseline = Fig2cBaseline {
    commit: "524cdc6",
    events: [1_011_738, 947_303, 983_405],
    ended_at_ns: [29_079_104_704, 28_335_975_608, 30_288_957_352],
    events_per_sec: 2_199_931.0,
};

/// One scenario's measurement.
pub struct ScenarioPerf {
    /// Scenario label (`fig2a`, `fig2c`, `fig3`).
    pub name: &'static str,
    /// Workload description for the report.
    pub workload: String,
    /// Wall-clock seconds.
    pub wall_s: f64,
    /// Total simulator events processed.
    pub events: u64,
    /// Events per wall-clock second.
    pub events_per_sec: f64,
    /// Maximum event-queue depth over all runs.
    pub peak_queue: usize,
    /// Simulated seconds covered.
    pub sim_s: f64,
}

/// Full report: the three scenarios plus the fig2c-vs-baseline verdict.
pub struct PerfReport {
    /// Smoke mode (reduced sizes; no baseline comparison).
    pub smoke: bool,
    /// Per-scenario measurements.
    pub scenarios: Vec<ScenarioPerf>,
    /// fig2c speedup over [`FIG2C_BASELINE`] (full mode only).
    pub fig2c_speedup: Option<f64>,
    /// Whether every fig2c seed reproduced the baseline trajectory
    /// (full mode only).
    pub fig2c_parity: Option<bool>,
    /// Human-readable parity details (mismatches, if any).
    pub parity_notes: Vec<String>,
}

/// Run the fig2a macro scenario (backup switchover, 2 MB transfer).
pub fn run_fig2a(smoke: bool) -> ScenarioPerf {
    let p = fig2a::Params {
        transfer: if smoke { 200_000 } else { 2_000_000 },
        ..Default::default()
    };
    let t0 = Instant::now();
    let (summary, _results) = fig2a::run_instrumented(&p);
    let wall = t0.elapsed().as_secs_f64();
    ScenarioPerf {
        name: "fig2a",
        workload: format!("{} B transfer, 30% loss onset at 1 s", p.transfer),
        wall_s: wall,
        events: summary.events,
        events_per_sec: summary.events as f64 / wall,
        peak_queue: summary.peak_queue,
        sim_s: summary.ended_at.as_secs_f64(),
    }
}

/// Run the fig2c macro scenario (paper-size 100 MB over 4 ECMP paths) and
/// check trajectory parity against the baseline.
pub fn run_fig2c(smoke: bool) -> (ScenarioPerf, Option<bool>, Vec<String>) {
    let p = fig2c::Params {
        transfer: if smoke { 5_000_000 } else { 100_000_000 },
        ..Default::default()
    };
    let seeds: &[u64] = if smoke {
        &FIG2C_SEEDS[..1]
    } else {
        &FIG2C_SEEDS
    };
    let mut events = 0u64;
    let mut peak = 0usize;
    let mut sim_s = 0f64;
    let mut parity = true;
    let mut notes = Vec::new();
    let t0 = Instant::now();
    for (i, &seed) in seeds.iter().enumerate() {
        let (summary, _used) = fig2c::run_one_instrumented(&p, seed);
        events += summary.events;
        peak = peak.max(summary.peak_queue);
        sim_s += summary.ended_at.as_secs_f64();
        if !smoke {
            let want_events = FIG2C_BASELINE.events[i];
            let want_end = FIG2C_BASELINE.ended_at_ns[i];
            if summary.events != want_events {
                parity = false;
                notes.push(format!(
                    "seed {seed}: events {} != baseline {want_events}",
                    summary.events
                ));
            }
            if summary.ended_at.as_nanos() != want_end {
                parity = false;
                notes.push(format!(
                    "seed {seed}: ended_at {} ns != baseline {want_end} ns",
                    summary.ended_at.as_nanos()
                ));
            }
        }
    }
    let wall = t0.elapsed().as_secs_f64();
    let perf = ScenarioPerf {
        name: "fig2c",
        workload: format!(
            "{} B transfer x {} seed(s), 5 subflows, refresh controller, 4 ECMP paths",
            p.transfer,
            seeds.len()
        ),
        wall_s: wall,
        events,
        events_per_sec: events as f64 / wall,
        peak_queue: peak,
        sim_s,
    };
    (perf, (!smoke).then_some(parity), notes)
}

/// Run the fig3 macro scenario (consecutive GETs, kernel path manager).
pub fn run_fig3(smoke: bool) -> ScenarioPerf {
    let p = fig3::Params {
        gets: if smoke { 20 } else { 300 },
        manager: fig3::Manager::Kernel,
        ..Default::default()
    };
    let t0 = Instant::now();
    let (summary, _cdf, completed) = fig3::run_instrumented(&p);
    let wall = t0.elapsed().as_secs_f64();
    assert_eq!(completed, p.gets, "fig3 workload must complete");
    ScenarioPerf {
        name: "fig3",
        workload: format!("{} consecutive 512 KB GETs, kernel PM", p.gets),
        wall_s: wall,
        events: summary.events,
        events_per_sec: summary.events as f64 / wall,
        peak_queue: summary.peak_queue,
        sim_s: summary.ended_at.as_secs_f64(),
    }
}

/// Run everything.
pub fn run_all(smoke: bool) -> PerfReport {
    let a = run_fig2a(smoke);
    let (c, parity, notes) = run_fig2c(smoke);
    let f = run_fig3(smoke);
    let speedup = (!smoke).then(|| c.events_per_sec / FIG2C_BASELINE.events_per_sec);
    PerfReport {
        smoke,
        scenarios: vec![a, c, f],
        fig2c_speedup: speedup,
        fig2c_parity: parity,
        parity_notes: notes,
    }
}

impl PerfReport {
    /// Serialize to the `BENCH_PR2.json` schema (hand-rolled: the workspace
    /// deliberately carries no serde dependency).
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        s.push_str(&format!("  \"smoke\": {},\n", self.smoke));
        s.push_str(&format!(
            "  \"baseline\": {{\"commit\": \"{}\", \"fig2c_events_per_sec\": {:.0}}},\n",
            FIG2C_BASELINE.commit, FIG2C_BASELINE.events_per_sec
        ));
        s.push_str("  \"scenarios\": [\n");
        for (i, p) in self.scenarios.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"name\": \"{}\", \"workload\": \"{}\", \"wall_s\": {:.4}, \
                 \"events\": {}, \"events_per_sec\": {:.0}, \"peak_queue\": {}, \
                 \"sim_s\": {:.3}}}{}\n",
                p.name,
                p.workload,
                p.wall_s,
                p.events,
                p.events_per_sec,
                p.peak_queue,
                p.sim_s,
                if i + 1 < self.scenarios.len() {
                    ","
                } else {
                    ""
                }
            ));
        }
        s.push_str("  ],\n");
        match self.fig2c_speedup {
            Some(x) => s.push_str(&format!("  \"fig2c_speedup_vs_baseline\": {x:.3},\n")),
            None => s.push_str("  \"fig2c_speedup_vs_baseline\": null,\n"),
        }
        match self.fig2c_parity {
            Some(p) => s.push_str(&format!("  \"fig2c_trajectory_parity\": {p}\n")),
            None => s.push_str("  \"fig2c_trajectory_parity\": null\n"),
        }
        s.push_str("}\n");
        s
    }

    /// Render the human-readable table.
    pub fn render(&self) -> String {
        let mut s = String::new();
        s.push_str(&format!(
            "perf_report ({} mode)\n",
            if self.smoke { "smoke" } else { "full" }
        ));
        s.push_str("scenario  wall_s    events      events/sec  peak_queue  sim_s\n");
        for p in &self.scenarios {
            s.push_str(&format!(
                "{:<9} {:<9.3} {:<11} {:<11.0} {:<11} {:.2}\n",
                p.name, p.wall_s, p.events, p.events_per_sec, p.peak_queue, p.sim_s
            ));
        }
        if let Some(x) = self.fig2c_speedup {
            s.push_str(&format!(
                "fig2c vs {} baseline: {:.2}x events/sec\n",
                FIG2C_BASELINE.commit, x
            ));
        }
        if let Some(parity) = self.fig2c_parity {
            s.push_str(&format!(
                "fig2c trajectory parity: {}\n",
                if parity { "IDENTICAL" } else { "MISMATCH" }
            ));
            for n in &self.parity_notes {
                s.push_str(&format!("  {n}\n"));
            }
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_report_runs_and_serializes() {
        let r = run_all(true);
        assert_eq!(r.scenarios.len(), 3);
        assert!(r.scenarios.iter().all(|s| s.events > 0));
        assert!(r.scenarios.iter().all(|s| s.peak_queue > 0));
        assert!(r.fig2c_speedup.is_none());
        let json = r.to_json();
        assert!(json.contains("\"fig2c_trajectory_parity\": null"));
        assert!(json.contains("\"name\": \"fig2c\""));
        // Crude structural check: braces balance.
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "JSON braces balance"
        );
    }
}
