//! Trace sinks used by the experiment harness — the tcpdump of the
//! simulation. These parse real wire bytes out of packets, exactly as the
//! paper's measurements parsed captures.

use std::collections::VecDeque;

use smapp_mptcp::options::MpOption;
use smapp_sim::{LinkId, SimTime, TraceEvent, TraceKind, TraceSink};
use smapp_tcp::TcpSegment;

/// One observed data segment for the Fig. 2a sequence plot.
#[derive(Debug, Clone, Copy)]
pub struct SeqPoint {
    /// Observation time.
    pub at: SimTime,
    /// Absolute data sequence number (wire DSN).
    pub dsn: u64,
    /// Payload length.
    pub len: u16,
    /// Which traced link carried it (index into the watch list).
    pub path: usize,
}

/// Records `(time, DSN, path)` for every data segment entering the watched
/// links — the raw material of the paper's Fig. 2a.
#[derive(Debug)]
pub struct SeqTraceSink {
    links: Vec<LinkId>,
    /// Collected points.
    pub points: Vec<SeqPoint>,
}

impl SeqTraceSink {
    /// Watch the given links (client-side enqueue direction).
    pub fn new(links: Vec<LinkId>) -> Self {
        SeqTraceSink {
            links,
            points: Vec::new(),
        }
    }

    /// Relative, plot-ready rows: `(seconds, relative bytes, path)`.
    /// DSNs are rebased to the smallest observed.
    pub fn relative_rows(&self) -> Vec<(f64, u64, usize)> {
        let Some(base) = self.points.iter().map(|p| p.dsn).min() else {
            return Vec::new();
        };
        self.points
            .iter()
            .map(|p| (p.at.as_secs_f64(), p.dsn - base, p.path))
            .collect()
    }
}

impl TraceSink for SeqTraceSink {
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
    fn record(&mut self, ev: &TraceEvent<'_>) {
        let TraceKind::Enqueue { link, .. } = ev.kind else {
            return;
        };
        let Some(path) = self.links.iter().position(|&l| l == link) else {
            return;
        };
        let Ok(seg) = TcpSegment::decode(&ev.pkt.payload) else {
            return;
        };
        if seg.payload.is_empty() {
            return;
        }
        for opt in seg.mptcp_opts() {
            if let Ok(MpOption::Dss(dss)) = MpOption::decode(opt) {
                if let Some(m) = dss.mapping {
                    if m.len > 0 {
                        self.points.push(SeqPoint {
                            at: ev.at,
                            dsn: m.dsn,
                            len: m.len,
                            path,
                        });
                    }
                }
            }
        }
    }
}

/// Measures the delay between each connection's `MP_CAPABLE` SYN and the
/// following `MP_JOIN` SYN — the paper's Fig. 3 metric, as observed on the
/// wire at the client.
#[derive(Debug)]
pub struct HandshakeTraceSink {
    /// Only record transmissions originated by this node (routers re-send
    /// the same packet when forwarding).
    node: smapp_sim::NodeId,
    /// Pending MP_CAPABLE SYN timestamps (FIFO; the workload runs
    /// connections strictly sequentially).
    pending: VecDeque<SimTime>,
    /// CAPA→JOIN deltas, seconds.
    pub deltas: Vec<f64>,
}

impl HandshakeTraceSink {
    /// A sink watching SYNs originated by `node` (the client).
    pub fn new(node: smapp_sim::NodeId) -> Self {
        HandshakeTraceSink {
            node,
            pending: VecDeque::new(),
            deltas: Vec::new(),
        }
    }
}

impl TraceSink for HandshakeTraceSink {
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
    fn record(&mut self, ev: &TraceEvent<'_>) {
        // Watch the transmission at the originating host only.
        let TraceKind::Send { node, .. } = ev.kind else {
            return;
        };
        if node != self.node {
            return;
        }
        let Ok(seg) = TcpSegment::decode(&ev.pkt.payload) else {
            return;
        };
        if !seg.hdr.flags.syn || seg.hdr.flags.ack {
            return;
        }
        for opt in seg.mptcp_opts() {
            match MpOption::decode(opt) {
                Ok(MpOption::Capable {
                    receiver_key: None, ..
                }) => {
                    self.pending.push_back(ev.at);
                }
                Ok(MpOption::JoinSyn { .. }) => {
                    if let Some(capa_at) = self.pending.pop_front() {
                        self.deltas.push((ev.at - capa_at).as_secs_f64());
                    }
                }
                _ => {}
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use smapp_mptcp::options::{Dss, DssMapping};
    use smapp_sim::{Addr, Dir, Packet};
    use smapp_tcp::{TcpFlags, TcpHeader, TcpOption, TcpOptions};

    fn data_pkt(dsn: u64, len: u16) -> Packet {
        let seg = TcpSegment {
            hdr: TcpHeader {
                src_port: 1,
                dst_port: 2,
                flags: TcpFlags::ACK,
                options: TcpOptions::from([TcpOption::Mptcp(
                    MpOption::Dss(Dss {
                        data_ack: None,
                        mapping: Some(DssMapping { dsn, ssn: 1, len }),
                        data_fin: false,
                    })
                    .encode(),
                )]),
                ..Default::default()
            },
            payload: Bytes::from(vec![0u8; len as usize]),
        };
        Packet::tcp(
            Addr::new(1, 1, 1, 1),
            Addr::new(2, 2, 2, 2),
            seg.encode().unwrap(),
        )
    }

    fn syn_pkt(opt: MpOption) -> Packet {
        let seg = TcpSegment {
            hdr: TcpHeader {
                src_port: 1,
                dst_port: 2,
                flags: TcpFlags::SYN,
                options: TcpOptions::from([TcpOption::Mptcp(opt.encode())]),
                ..Default::default()
            },
            payload: Bytes::new(),
        };
        Packet::tcp(
            Addr::new(1, 1, 1, 1),
            Addr::new(2, 2, 2, 2),
            seg.encode().unwrap(),
        )
    }

    #[test]
    fn seq_sink_collects_and_rebases() {
        let mut sink = SeqTraceSink::new(vec![LinkId(0), LinkId(1)]);
        let p1 = data_pkt(1000, 100);
        let p2 = data_pkt(1100, 100);
        sink.record(&TraceEvent {
            at: SimTime::from_millis(1),
            kind: TraceKind::Enqueue {
                link: LinkId(0),
                dir: Dir::AtoB,
            },
            pkt: &p1,
        });
        sink.record(&TraceEvent {
            at: SimTime::from_millis(2),
            kind: TraceKind::Enqueue {
                link: LinkId(1),
                dir: Dir::AtoB,
            },
            pkt: &p2,
        });
        // Unwatched link: ignored.
        sink.record(&TraceEvent {
            at: SimTime::from_millis(3),
            kind: TraceKind::Enqueue {
                link: LinkId(9),
                dir: Dir::AtoB,
            },
            pkt: &p2,
        });
        let rows = sink.relative_rows();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0], (0.001, 0, 0));
        assert_eq!(rows[1], (0.002, 100, 1));
    }

    #[test]
    fn handshake_sink_pairs_capa_join() {
        let mut sink = HandshakeTraceSink::new(smapp_sim::NodeId(0));
        let node = smapp_sim::NodeId(0);
        let iface = smapp_sim::IfaceId(0);
        let capa = syn_pkt(MpOption::Capable {
            version: 0,
            flags: 1,
            sender_key: 7,
            receiver_key: None,
        });
        let join = syn_pkt(MpOption::JoinSyn {
            backup: false,
            addr_id: 1,
            token: 9,
            nonce: 3,
        });
        sink.record(&TraceEvent {
            at: SimTime::from_micros(100),
            kind: TraceKind::Send { node, iface },
            pkt: &capa,
        });
        sink.record(&TraceEvent {
            at: SimTime::from_micros(450),
            kind: TraceKind::Send { node, iface },
            pkt: &join,
        });
        assert_eq!(sink.deltas.len(), 1);
        assert!((sink.deltas[0] - 350e-6).abs() < 1e-12);
    }
}
