//! Coverage-guided scenario fuzzing with the protocol-invariant oracle
//! attached.
//!
//! In the spirit of history-based checkers that exercise *generated*
//! executions against an executable specification (rather than hand-picked
//! cases), this module derives a complete scenario — topology, link
//! parameters, path-manager mix, workload, middlebox/rewriter family,
//! adversarial flood plan and a [`smapp_sim::DynamicsScript`] of mid-run churn — from
//! a `u64` seed, runs it with the wire oracle and the end-host taps
//! enabled, and reports every invariant violation with the replayable
//! `(scenario="fuzz", seed, time)` triple.
//!
//! Beyond pure seed derivation, the module is a **coverage-guided mutation
//! engine** ([`Mutator`]): every run folds what it touched into a 256-bit
//! feature bitmap ([`Coverage`]) — wire-level features recorded by the
//! oracle (bits 0..64, `smapp_sim::coverage::wire`) plus case-shape and
//! outcome features assembled here (bits 64.., [`feat`]). A mutated case
//! that sets a bit no earlier case set is *interesting*: it joins the
//! corpus and becomes a preferred mutation parent, steering the search
//! toward unexplored feature space. Everything stays bit-deterministic:
//! one seeded [`SimRng`] drives parent selection and every mutation
//! operator, so a `(seed corpus, mutation seed)` pair replays identically.
//!
//! * [`FuzzCase::derive`] — seed → scenario description (deterministic; no
//!   state outside the seed). [`FuzzCase::derive_v1`] is the frozen PR-5
//!   derivation (no rewriters, floods or traffic model) kept as the
//!   seed-only coverage baseline.
//! * [`run_case`] / [`run_case_opts`] — build, run,
//!   [`smapp_pm::verify::conclude`], assemble the coverage bitmap; never
//!   panics, so a corpus sweep reports every failure.
//! * [`Mutator`] — the coverage-guided loop: seed the corpus, then
//!   mutate/splice cases toward new feature bits ([`Mutator::step`]).
//! * [`shrink`] / [`shrink_case`] — for a failing case, bisect the
//!   dynamics script down to a minimal still-failing subset;
//!   [`dynamics_snippet`] renders the survivor as a copy-pasteable Rust
//!   `DynamicsScript` snippet.
//! * [`default_corpus`] — the committed fixed-seed corpus
//!   (`FUZZ_CORPUS.txt`) CI runs on every build; failures reproduce
//!   locally with `cargo run --release -p smapp-bench --bin fuzz --
//!   --replay <seed>`.
//!
//! Corpus sweeps parallelize over the same worker pool as the scenario
//! matrix ([`crate::sweep::run_jobs`]); each case is one independent,
//! thread-confined world. The mutation loop is single-threaded by design —
//! its corpus evolution is part of the deterministic trajectory.

use std::time::Duration;

use smapp_mptcp::apps::{BulkSender, Sink, StreamSender};
use smapp_mptcp::{App, NoopPm, StackConfig};
use smapp_pm::topo::{self, CLIENT_ADDR1, CLIENT_ADDR2, SERVER_ADDR};
use smapp_pm::{verify, FullMeshPm, Host, NdiffportsPm};
use smapp_sim::adversary::{FloodCfg, FloodMix, FloodSource};
use smapp_sim::{
    Addr, Coverage, Dir, InstallPolicy, LinkCfg, LinkId, LossPct, Netem, NetemScript, OneWayDelay,
    Oracle, QueueLen, RateBps, Router, RunSummary, SimRng, SimTime, Simulator, StopReason,
};

use crate::pms::BackupFlagPm;
use crate::sweep::{run_jobs, JobFn};
use crate::traffic::{FlowClass, TrafficModel};

/// Topology family of one case.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Topo {
    /// Dual-homed client behind one router ([`topo::two_path`]).
    TwoPath,
    /// Single-homed client across an ECMP fan of `n` paths ([`topo::ecmp`]).
    Ecmp(usize),
}

/// Path-manager / controller mix of one case.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PmMix {
    /// No path manager: single subflow.
    Noop,
    /// Kernel full-mesh.
    FullMesh,
    /// Kernel ndiffports with `n` subflows.
    Ndiffports(u8),
    /// Immediate backup subflow over the second interface (two-path only).
    BackupFlag,
}

/// Middlebox behaviour of one case (two-path topology only).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Strip {
    /// Router forwards options untouched.
    Off,
    /// Router strips MPTCP options from the first SYN on: the handshake
    /// itself degrades to plain TCP.
    FromStart,
    /// Stripping switches on *between* the handshake and the first data
    /// segment — the RFC 6824 §3.7 inference case: MPTCP is negotiated,
    /// then the peer's first data arrives DSS-less.
    MidHandshake,
}

/// Adversarial rewriter family on the router forwarding path (two-path
/// topology only; see `smapp_sim::rewrite` and the `Router` knobs).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Rewrite {
    /// Router forwards byte-identical segments.
    Off,
    /// NAT-style per-flow sequence/ack shifting (symmetric, stateless).
    SeqNat,
    /// Option-free data segments are split in half.
    Split,
    /// Contiguous option-free data segments are coalesced.
    Coalesce,
    /// Every n-th pure ACK per flow is dropped (FIN exchanges exempt).
    AckThin(u32),
}

/// A planned SYN / `MP_JOIN` flood riding alongside the real workload
/// (two-path topology only; the flood host hangs off its own router leg).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FloodPlan {
    /// Handshake mix the attacker emits.
    pub mix: FloodMix,
    /// Total bogus SYNs.
    pub count: u32,
    /// Gap between SYNs, milliseconds.
    pub interval_ms: u64,
    /// First SYN time, milliseconds.
    pub start_ms: u64,
}

/// Heavy-tailed background traffic from [`TrafficModel`]: up to `flows`
/// extra client connections (Pareto sizes, wavy Poisson arrivals, mixed
/// GET/streaming apps) share the path with the main transfer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TrafficPlan {
    /// Cap on sampled background flows.
    pub flows: u8,
}

/// One abstract scripted action; links are indices into the case's link
/// table (two-path: `[link1, link2]`, ECMP: the parallel paths) so a case
/// is fully described before the world exists.
#[derive(Clone, Debug)]
pub struct FuzzDyn {
    /// When the action runs.
    pub at: SimTime,
    /// Which table link it targets.
    pub link_idx: usize,
    /// What happens.
    pub action: FuzzAction,
}

/// Abstract dynamics action (resolved to a typed [`Netem`] clause at
/// build time).
#[derive(Clone, Debug)]
pub enum FuzzAction {
    /// Serialization-rate change, bits/s.
    Rate(u64),
    /// Bernoulli loss-ratio change.
    Loss(f64),
    /// One-way delay change.
    Delay(Duration),
    /// Drop-tail queue capacity change, packets.
    Queue(usize),
    /// Link down, back up after the duration.
    FlapDown(Duration),
    /// Netem-style reordering: hold-back probability and extra delay.
    Reorder(f64, Duration),
    /// Netem-style duplication probability.
    Duplicate(f64),
    /// Read-only sockdiag snapshot of the client host (ignores the
    /// entry's `link_idx`; never perturbs the trajectory).
    Probe,
}

/// A fully derived (or mutated) fuzz case.
#[derive(Clone, Debug)]
pub struct FuzzCase {
    /// The world seed (mutated cases draw a fresh one).
    pub seed: u64,
    /// Topology family.
    pub topo: Topo,
    /// Per-link configs: two-path `[cfg1, cfg2]`, ECMP one per path.
    pub link_cfgs: Vec<LinkCfg>,
    /// Path-manager mix.
    pub pm: PmMix,
    /// Transfer size, bytes.
    pub transfer: u64,
    /// Middlebox behaviour.
    pub strip: Strip,
    /// Adversarial rewriter family.
    pub rewrite: Rewrite,
    /// Optional SYN/`MP_JOIN` flood.
    pub flood: Option<FloodPlan>,
    /// Optional heavy-tailed background traffic.
    pub traffic: Option<TrafficPlan>,
    /// Scripted churn.
    pub dynamics: Vec<FuzzDyn>,
    /// Simulation horizon.
    pub horizon: SimTime,
}

/// Time the client workload connects (fixed so [`Strip::MidHandshake`]
/// can place its toggle deterministically inside the handshake window).
const CONNECT_AT_MS: u64 = 10;

/// For [`Strip::MidHandshake`] the two-path access delays are pinned to
/// 10 ms so the strip toggle at 36 ms lands after the router forwarded the
/// SYN/ACK (~22 ms) and before the first data transits it (~42 ms).
const MID_STRIP_AT_MS: u64 = 36;

/// Decorrelates the background-traffic sampler from the world RNG.
const TRAFFIC_SALT: u64 = 0x7AFF_1C0D_E15E_ED42;

impl FuzzCase {
    /// The frozen PR-5 derivation: seed → case with no rewriter family, no
    /// flood and no traffic model. Kept verbatim as the seed-only coverage
    /// baseline the mutation engine must beat (and as the shared RNG draw
    /// prefix of [`FuzzCase::derive`], so the two derivations agree on
    /// every common field).
    pub fn derive_v1(seed: u64) -> FuzzCase {
        Self::derive_base(seed).0
    }

    fn derive_base(seed: u64) -> (FuzzCase, SimRng) {
        // Decorrelate from the world RNG (which also consumes `seed`).
        let mut r = SimRng::seed_from_u64(seed ^ 0x5EED_F0CC_0BAD_CA5E);
        let topo = if r.chance(0.5) {
            Topo::TwoPath
        } else {
            Topo::Ecmp(r.range_u64(2, 5) as usize)
        };
        let n_links = match topo {
            Topo::TwoPath => 2,
            Topo::Ecmp(n) => n,
        };
        let strip = match topo {
            Topo::TwoPath => {
                let x = r.range_u64(0, 100);
                if x < 20 {
                    Strip::FromStart
                } else if x < 35 {
                    Strip::MidHandshake
                } else {
                    Strip::Off
                }
            }
            Topo::Ecmp(_) => Strip::Off,
        };
        let link_cfgs: Vec<LinkCfg> = (0..n_links)
            .map(|_| {
                if strip == Strip::MidHandshake {
                    // Pinned delays: the mid-handshake toggle instant
                    // depends on them.
                    LinkCfg::mbps_ms(5, 10)
                } else {
                    let mbps = r.range_u64(2, 21);
                    let delay_ms = r.range_u64(2, 41);
                    LinkCfg::mbps_ms(mbps, delay_ms).queue(r.range_u64(16, 129) as usize)
                }
            })
            .collect();
        let pm = if strip == Strip::MidHandshake {
            // Joins would add subflows and defeat the single-subflow §3.7
            // inference window; keep the case on one subflow.
            PmMix::Noop
        } else {
            match (topo.clone(), r.range_u64(0, 3)) {
                (_, 0) => PmMix::Noop,
                (Topo::TwoPath, 1) => PmMix::BackupFlag,
                (Topo::TwoPath, _) => PmMix::FullMesh,
                (Topo::Ecmp(_), 1) => PmMix::Ndiffports(r.range_u64(2, 6) as u8),
                (Topo::Ecmp(_), _) => PmMix::FullMesh,
            }
        };
        let transfer = r.range_u64(20_000, 150_001);
        let n_dyn = r.range_u64(0, 5) as usize;
        let mut dynamics = Vec::with_capacity(n_dyn);
        for _ in 0..n_dyn {
            let at = SimTime::from_millis(r.range_u64(200, 30_000));
            let link_idx = r.range_u64(0, n_links as u64) as usize;
            let action = match r.range_u64(0, 5) {
                0 => FuzzAction::Rate(r.range_u64(500_000, 20_000_001)),
                1 => FuzzAction::Loss(r.range_u64(0, 26) as f64 / 100.0),
                2 => FuzzAction::Delay(Duration::from_millis(r.range_u64(1, 61))),
                3 => FuzzAction::Queue(r.range_u64(8, 129) as usize),
                _ => FuzzAction::FlapDown(Duration::from_millis(r.range_u64(100, 2_001))),
            };
            dynamics.push(FuzzDyn {
                at,
                link_idx,
                action,
            });
        }
        (
            FuzzCase {
                seed,
                topo,
                link_cfgs,
                pm,
                transfer,
                strip,
                rewrite: Rewrite::Off,
                flood: None,
                traffic: None,
                dynamics,
                horizon: SimTime::from_secs(60),
            },
            r,
        )
    }

    /// Derive the complete case from `seed` — deterministic, stateless.
    ///
    /// Draws the [`FuzzCase::derive_v1`] prefix first, then appends the
    /// adversarial families: a rewriter pick, a flood plan and a traffic
    /// plan. The appended values are always *drawn* (so the draw sequence
    /// never depends on the prefix) but only *applied* where they are
    /// meaningful: rewriters and floods need the two-path router, and the
    /// pinned [`Strip::MidHandshake`] inference family stays untouched.
    pub fn derive(seed: u64) -> FuzzCase {
        let (mut case, mut r) = Self::derive_base(seed);
        let rw = r.range_u64(0, 100);
        let thin = r.range_u64(2, 5) as u32;
        let rewrite = match rw {
            0..=49 => Rewrite::Off,
            50..=61 => Rewrite::SeqNat,
            62..=73 => Rewrite::Split,
            74..=85 => Rewrite::Coalesce,
            _ => Rewrite::AckThin(thin),
        };
        let flood_on = r.chance(0.25);
        let flood = FloodPlan {
            mix: match r.range_u64(0, 3) {
                0 => FloodMix::PlainSyn,
                1 => FloodMix::MpJoin,
                _ => FloodMix::Mixed,
            },
            count: r.range_u64(20, 121) as u32,
            interval_ms: r.range_u64(1, 20),
            start_ms: r.range_u64(5, 2_000),
        };
        let traffic_on = r.chance(0.3);
        let flows = r.range_u64(1, 5) as u8;
        // Netem-operator draws appended after every older family (so the
        // older draw sequence stays frozen): reorder, duplicate, probe.
        // Always drawn, conditionally applied.
        let n_links = case.link_cfgs.len() as u64;
        let reorder_on = r.chance(0.15);
        let reorder = FuzzDyn {
            at: SimTime::from_millis(r.range_u64(200, 30_000)),
            link_idx: r.range_u64(0, n_links) as usize,
            action: FuzzAction::Reorder(
                r.range_u64(1, 16) as f64 / 100.0,
                Duration::from_millis(r.range_u64(1, 31)),
            ),
        };
        let dup_on = r.chance(0.15);
        let dup = FuzzDyn {
            at: SimTime::from_millis(r.range_u64(200, 30_000)),
            link_idx: r.range_u64(0, n_links) as usize,
            action: FuzzAction::Duplicate(r.range_u64(1, 11) as f64 / 100.0),
        };
        let probe_on = r.chance(0.3);
        let probe = FuzzDyn {
            at: SimTime::from_millis(r.range_u64(500, 20_000)),
            link_idx: 0,
            action: FuzzAction::Probe,
        };

        if case.topo == Topo::TwoPath && case.strip != Strip::MidHandshake {
            case.rewrite = rewrite;
            if matches!(case.rewrite, Rewrite::Split | Rewrite::Coalesce)
                && case.strip == Strip::Off
            {
                // Split/coalesce only touch option-free segments; with
                // MPTCP options intact they would never fire. Stripping
                // from the start makes the whole flow eligible.
                case.strip = Strip::FromStart;
            }
            if flood_on {
                case.flood = Some(flood);
            }
        }
        if case.strip != Strip::MidHandshake && traffic_on {
            case.traffic = Some(TrafficPlan { flows });
        }
        if case.strip != Strip::MidHandshake {
            // The pinned §3.7 inference family stays untouched; everyone
            // else may gain the netem operators.
            if reorder_on {
                case.dynamics.push(reorder);
            }
            if dup_on {
                case.dynamics.push(dup);
            }
            if probe_on {
                case.dynamics.push(probe);
            }
        }
        case
    }

    /// One-line description (stable; part of the sweep trajectory).
    pub fn describe(&self) -> String {
        let topo = match self.topo {
            Topo::TwoPath => "two_path".to_string(),
            Topo::Ecmp(n) => format!("ecmp{n}"),
        };
        format!(
            "{topo} pm={:?} strip={:?} rw={:?} transfer={} dyn={} flood={} bg={}",
            self.pm,
            self.strip,
            self.rewrite,
            self.transfer,
            self.dynamics.len(),
            self.flood.map(|f| f.count).unwrap_or(0),
            self.traffic.map(|t| t.flows).unwrap_or(0),
        )
    }
}

/// Case-shape and outcome feature bits (64..), unioned with the oracle's
/// wire bits (`smapp_sim::coverage::wire`, 0..64) into one [`Coverage`]
/// bitmap per run. Bit numbers are part of the recorded corpus baseline —
/// append, never renumber.
pub mod feat {
    /// Case ran the two-path topology.
    pub const TOPO_TWO_PATH: u32 = 64;
    /// Case ran an ECMP fan.
    pub const TOPO_ECMP: u32 = 65;
    /// Options stripped from the first SYN on.
    pub const STRIP_FROM_START: u32 = 66;
    /// The §3.7 mid-handshake strip family.
    pub const STRIP_MID_HANDSHAKE: u32 = 67;
    /// Path managers.
    pub const PM_NOOP: u32 = 68;
    /// Kernel full-mesh PM ran.
    pub const PM_FULL_MESH: u32 = 69;
    /// Kernel ndiffports PM ran.
    pub const PM_NDIFFPORTS: u32 = 70;
    /// Backup-flag controller ran.
    pub const PM_BACKUP_FLAG: u32 = 71;
    /// Dynamics action kinds that were scheduled.
    pub const DYN_RATE: u32 = 72;
    /// A loss-ratio change was scheduled.
    pub const DYN_LOSS: u32 = 73;
    /// A delay change was scheduled.
    pub const DYN_DELAY: u32 = 74;
    /// A queue-capacity change was scheduled.
    pub const DYN_QUEUE: u32 = 75;
    /// A link flap was scheduled.
    pub const DYN_FLAP: u32 = 76;
    /// Rewriter families.
    pub const REWRITE_SEQ_NAT: u32 = 77;
    /// Split rewriter configured.
    pub const REWRITE_SPLIT: u32 = 78;
    /// Coalesce rewriter configured.
    pub const REWRITE_COALESCE: u32 = 79;
    /// ACK-thinning rewriter configured.
    pub const REWRITE_ACK_THIN: u32 = 80;
    /// Flood mixes.
    pub const FLOOD_PLAIN: u32 = 81;
    /// An `MP_JOIN` flood ran.
    pub const FLOOD_MP_JOIN: u32 = 82;
    /// A mixed flood ran.
    pub const FLOOD_MIXED: u32 = 83;
    /// Background traffic-model flows were scheduled.
    pub const TRAFFIC_MODEL: u32 = 84;
    /// At least one background flow was a paced stream.
    pub const TRAFFIC_STREAMING: u32 = 85;
    /// A netem reorder impairment was scheduled.
    pub const DYN_REORDER: u32 = 86;
    /// A netem duplicate impairment was scheduled.
    pub const DYN_DUPLICATE: u32 = 87;
    /// A scripted sockdiag probe was scheduled.
    pub const DYN_PROBE: u32 = 88;

    /// Run drained to idle.
    pub const STOP_IDLE: u32 = 96;
    /// Run hit the horizon.
    pub const STOP_HORIZON: u32 = 97;
    /// Run stopped for another reason (requested / event limit).
    pub const STOP_OTHER: u32 = 98;
    /// Server received the full main transfer.
    pub const DELIVERED_ALL: u32 = 99;
    /// Server received part of the main transfer.
    pub const DELIVERED_PARTIAL: u32 = 100;
    /// Server received nothing.
    pub const DELIVERED_NONE: u32 = 101;
    /// Some connection inferred a plain-TCP fallback (RFC 6824 §3.7).
    pub const FALLBACK_INFERRED: u32 = 102;
    /// Some connection reinjected data across subflows.
    pub const REINJECTIONS: u32 = 103;
    /// Some connection ran more than one subflow.
    pub const MULTI_SUBFLOW: u32 = 104;
    /// The router actually stripped options.
    pub const OPTIONS_STRIPPED: u32 = 105;
    /// The router actually rewrote sequence numbers.
    pub const SEQ_REWRITTEN: u32 = 106;
    /// The router actually split segments.
    pub const SEGMENTS_SPLIT: u32 = 107;
    /// The router actually coalesced segments.
    pub const SEGMENTS_COALESCED: u32 = 108;
    /// The router actually dropped thinned ACKs.
    pub const ACKS_THINNED: u32 = 109;
    /// The flood source emitted SYNs.
    pub const FLOOD_SYNS_SENT: u32 = 110;
    /// The flood source RST-answered a SYN-ACK.
    pub const FLOOD_RSTS: u32 = 111;
    /// Base of the subflow close-reason block: bit `112 + i` is set when
    /// some connection closed a subflow with `SubflowError` coverage bit
    /// `i` (0 = graceful FIN, then Timeout, Reset, Refused, NetUnreachable,
    /// IfaceDown, PmRequested).
    pub const CLOSE_REASON_BASE: u32 = 112;
    /// Some link actually held a packet back (reorder fired).
    pub const PKTS_REORDERED: u32 = 119;
    /// Some link actually duplicated a packet at admission.
    pub const PKTS_DUPLICATED: u32 = 120;
    /// A scripted sockdiag probe captured at least one live connection.
    pub const DIAG_CONNS: u32 = 121;
    /// The run violated the oracle (wire- or host-level).
    pub const FAILED: u32 = 126;
}

/// Build-time options the corpus never varies — the broken-build detection
/// path flips them to prove the engine notices.
#[derive(Clone, Debug)]
pub struct FuzzOptions {
    /// Forwarded into every host's [`StackConfig::fallback_inference`].
    pub fallback_inference: bool,
    /// Arms the router's **test-only** split-rewriter fault (zeroed data
    /// offset on the second half); only observable when a case actually
    /// splits segments.
    pub buggy_split: bool,
    /// Dynamics entries to keep (`None` = all) — the shrinker's lever.
    pub dynamics_keep: Option<Vec<bool>>,
}

impl Default for FuzzOptions {
    fn default() -> Self {
        FuzzOptions {
            fallback_inference: true,
            buggy_split: false,
            dynamics_keep: None,
        }
    }
}

/// Outcome of one fuzz case.
#[derive(Clone, Debug)]
pub struct CaseOutcome {
    /// The seed (replay key for derived cases).
    pub seed: u64,
    /// [`FuzzCase::describe`] of the case that ran.
    pub desc: String,
    /// The simulator's run summary.
    pub summary: RunSummary,
    /// Oracle violations (wire + end-host), replay-labelled.
    pub violations: Vec<String>,
    /// Bytes the server application received (all flows).
    pub delivered: u64,
    /// The run's feature bitmap: oracle wire bits ∪ case/outcome bits.
    pub coverage: Coverage,
}

/// Derive and run one case with default options.
pub fn run_case(seed: u64) -> CaseOutcome {
    run_case_opts(&FuzzCase::derive(seed), &FuzzOptions::default())
}

/// Run a (possibly mutated) case under explicit options.
pub fn run_case_opts(case: &FuzzCase, opts: &FuzzOptions) -> CaseOutcome {
    let cfg = StackConfig {
        fallback_inference: opts.fallback_inference,
        ..StackConfig::default()
    };
    let mut client = Host::new("client", cfg.clone());
    client.pm = match case.pm {
        PmMix::Noop => Box::new(NoopPm),
        PmMix::FullMesh => Box::new(FullMeshPm::new()),
        PmMix::Ndiffports(n) => Box::new(NdiffportsPm::new(n)),
        PmMix::BackupFlag => Box::new(BackupFlagPm::new(CLIENT_ADDR2)),
    };
    // No `stop_sim_when_acked()`: letting the world drain to a
    // `StopReason::Idle` end keeps the oracle's end-of-run link-
    // conservation *equality* check live for every case that completes
    // (a requested stop would leave packets legitimately in flight and
    // skip it).
    client.connect_at(
        SimTime::from_millis(CONNECT_AT_MS),
        Some(CLIENT_ADDR1),
        SERVER_ADDR,
        80,
        Box::new(BulkSender::new(case.transfer).close_when_done()),
    );
    // Heavy-tailed background flows from the traffic model, sampled from a
    // salted RNG so the schedule is part of the case identity.
    let mut any_stream = false;
    if let Some(tp) = case.traffic {
        let model = TrafficModel {
            size_min: 2_000,
            size_max: 120_000,
            rate_hz: 1.5,
            wave_period: SimTime::from_secs(10),
            ..TrafficModel::cdn()
        };
        let mut trng = SimRng::seed_from_u64(case.seed ^ TRAFFIC_SALT);
        let window = case.horizon.min(SimTime::from_secs(20));
        for f in model.sample(
            &mut trng,
            SimTime::from_millis(CONNECT_AT_MS),
            window,
            tp.flows as usize,
        ) {
            let app: Box<dyn App> = match f.class {
                FlowClass::ShortGet => Box::new(BulkSender::new(f.size).close_when_done()),
                FlowClass::Streaming => {
                    any_stream = true;
                    let blocks = (f.size / 8_192).clamp(1, 40);
                    Box::new(StreamSender::new(8_192, Duration::from_millis(50), blocks))
                }
            };
            client.connect_at(f.start, Some(CLIENT_ADDR1), SERVER_ADDR, 80, app);
        }
    }
    let mut server = Host::new("server", cfg);
    server.listen(
        80,
        Box::new(|| {
            Box::new(Sink {
                close_on_eof: true,
                ..Default::default()
            })
        }),
    );

    // Build the world and the link table the abstract dynamics refer to.
    let (mut sim, links, router, client_node, server_node) = match case.topo {
        Topo::TwoPath => {
            let net = topo::two_path(
                case.seed,
                client,
                server,
                case.link_cfgs[0].clone(),
                case.link_cfgs[1].clone(),
            );
            (
                net.sim,
                vec![net.link1, net.link2],
                Some(net.router),
                net.client,
                net.server,
            )
        }
        Topo::Ecmp(_) => {
            let net = topo::ecmp(case.seed, client, server, &case.link_cfgs);
            (net.sim, net.paths.clone(), None, net.client, net.server)
        }
    };
    sim.core.set_trace(Box::new(Oracle::new()));

    // Rewriter family + test-only fault knob, directly on the router.
    if let Some(router) = router {
        let r = sim
            .node_mut(router)
            .as_any_mut()
            .downcast_mut::<Router>()
            .expect("two-path router node");
        match case.rewrite {
            Rewrite::Off => {}
            Rewrite::SeqNat => r.seq_nat = true,
            Rewrite::Split => r.split_segments = true,
            Rewrite::Coalesce => r.coalesce_segments = true,
            Rewrite::AckThin(n) => r.ack_thin = n.max(2),
        }
        r.buggy_split = opts.buggy_split;
    }

    // The flood host hangs off its own router leg (10.0.3.0/24) so bogus
    // handshakes share the fat link with the real workload.
    let mut flood_node = None;
    if let (Some(fp), Some(router)) = (case.flood, router) {
        let fl = sim.add_node(Box::new(FloodSource::new(FloodCfg {
            target: SERVER_ADDR,
            port: 80,
            start: SimTime::from_millis(fp.start_ms),
            interval: Duration::from_millis(fp.interval_ms.max(1)),
            count: fp.count,
            mix: fp.mix,
        })));
        let fi = sim.add_iface(fl, Addr::new(10, 0, 3, 1), "eth0");
        let ri = sim.add_iface(router, Addr::new(10, 0, 3, 254), "r3");
        sim.node_mut(router)
            .as_any_mut()
            .downcast_mut::<Router>()
            .expect("two-path router node")
            .add_route("10.0.3.0/24".parse().unwrap(), vec![ri]);
        sim.connect(fi, ri, LinkCfg::mbps_ms(100, 1));
        flood_node = Some(fl);
    }

    // The impairment program, in the typed netem grammar. Each abstract
    // action compiles to the same `DynAction`s in the same positional
    // order the hand-rolled script used to push, so per-seed trajectories
    // are unchanged.
    let mut script = NetemScript::new();
    match (case.strip, router) {
        (Strip::FromStart, Some(router)) => {
            script.add(SimTime::ZERO, Netem::peer(router).strip_mptcp(true));
        }
        (Strip::MidHandshake, Some(router)) => {
            script.add(
                SimTime::from_millis(MID_STRIP_AT_MS),
                Netem::peer(router).strip_mptcp(true),
            );
        }
        _ => {}
    }
    for (i, d) in case.dynamics.iter().enumerate() {
        if let Some(keep) = &opts.dynamics_keep {
            if !keep.get(i).copied().unwrap_or(true) {
                continue;
            }
        }
        let link: LinkId = links[d.link_idx.min(links.len() - 1)];
        match d.action {
            FuzzAction::Rate(bps) => {
                script.add(d.at, Netem::on(link).rate(RateBps::bps(bps)));
            }
            FuzzAction::Loss(p) => {
                script.add(d.at, Netem::on(link).loss(LossPct::ratio(p)));
            }
            FuzzAction::Delay(delay) => {
                script.add(d.at, Netem::on(link).delay(OneWayDelay::from(delay)));
            }
            FuzzAction::Queue(pkts) => {
                script.add(d.at, Netem::on(link).queue(QueueLen::pkts(pkts)));
            }
            FuzzAction::FlapDown(down_for) => {
                script.add(d.at, Netem::on(link).down());
                script.add(d.at + down_for, Netem::on(link).up());
            }
            FuzzAction::Reorder(pct, hold) => {
                script.add(
                    d.at,
                    Netem::on(link).reorder(LossPct::ratio(pct), OneWayDelay::from(hold)),
                );
            }
            FuzzAction::Duplicate(pct) => {
                script.add(d.at, Netem::on(link).duplicate(LossPct::ratio(pct)));
            }
            FuzzAction::Probe => {
                script.add(d.at, Netem::peer(client_node).probe());
            }
        }
    }
    sim.install(script, InstallPolicy::Sort)
        .expect("sort policy never rejects");

    let summary = sim.run_until(case.horizon);
    let verdict = verify::conclude(&mut sim, &summary, "fuzz", case.seed);
    let delivered = server_delivered(&sim, server_node);

    // Assemble the feature bitmap: oracle wire bits ∪ case shape ∪ what
    // the run actually did.
    let mut cov = verdict.wire_coverage;
    match case.topo {
        Topo::TwoPath => cov.set(feat::TOPO_TWO_PATH),
        Topo::Ecmp(_) => cov.set(feat::TOPO_ECMP),
    }
    match case.strip {
        Strip::Off => {}
        Strip::FromStart => cov.set(feat::STRIP_FROM_START),
        Strip::MidHandshake => cov.set(feat::STRIP_MID_HANDSHAKE),
    }
    cov.set(match case.pm {
        PmMix::Noop => feat::PM_NOOP,
        PmMix::FullMesh => feat::PM_FULL_MESH,
        PmMix::Ndiffports(_) => feat::PM_NDIFFPORTS,
        PmMix::BackupFlag => feat::PM_BACKUP_FLAG,
    });
    for d in &case.dynamics {
        cov.set(match d.action {
            FuzzAction::Rate(_) => feat::DYN_RATE,
            FuzzAction::Loss(_) => feat::DYN_LOSS,
            FuzzAction::Delay(_) => feat::DYN_DELAY,
            FuzzAction::Queue(_) => feat::DYN_QUEUE,
            FuzzAction::FlapDown(_) => feat::DYN_FLAP,
            FuzzAction::Reorder(..) => feat::DYN_REORDER,
            FuzzAction::Duplicate(_) => feat::DYN_DUPLICATE,
            FuzzAction::Probe => feat::DYN_PROBE,
        });
    }
    for &link in &links {
        for dir in [Dir::AtoB, Dir::BtoA] {
            let s = sim.core.link_stats(link, dir);
            if s.reordered > 0 {
                cov.set(feat::PKTS_REORDERED);
            }
            if s.duplicated > 0 {
                cov.set(feat::PKTS_DUPLICATED);
            }
        }
    }
    match case.rewrite {
        Rewrite::Off => {}
        Rewrite::SeqNat => cov.set(feat::REWRITE_SEQ_NAT),
        Rewrite::Split => cov.set(feat::REWRITE_SPLIT),
        Rewrite::Coalesce => cov.set(feat::REWRITE_COALESCE),
        Rewrite::AckThin(_) => cov.set(feat::REWRITE_ACK_THIN),
    }
    if let Some(fp) = case.flood {
        cov.set(match fp.mix {
            FloodMix::PlainSyn => feat::FLOOD_PLAIN,
            FloodMix::MpJoin => feat::FLOOD_MP_JOIN,
            FloodMix::Mixed => feat::FLOOD_MIXED,
        });
    }
    if case.traffic.is_some() {
        cov.set(feat::TRAFFIC_MODEL);
        if any_stream {
            cov.set(feat::TRAFFIC_STREAMING);
        }
    }
    cov.set(match summary.reason {
        StopReason::Idle => feat::STOP_IDLE,
        StopReason::Horizon => feat::STOP_HORIZON,
        _ => feat::STOP_OTHER,
    });
    cov.set(if delivered >= case.transfer {
        feat::DELIVERED_ALL
    } else if delivered > 0 {
        feat::DELIVERED_PARTIAL
    } else {
        feat::DELIVERED_NONE
    });
    if let Some(router) = router {
        let r = sim
            .node(router)
            .as_any()
            .downcast_ref::<Router>()
            .expect("two-path router node");
        for (counter, bit) in [
            (r.options_stripped, feat::OPTIONS_STRIPPED),
            (r.seq_rewritten, feat::SEQ_REWRITTEN),
            (r.segments_split, feat::SEGMENTS_SPLIT),
            (r.segments_coalesced, feat::SEGMENTS_COALESCED),
            (r.acks_thinned, feat::ACKS_THINNED),
        ] {
            if counter > 0 {
                cov.set(bit);
            }
        }
    }
    if let Some(fl) = flood_node {
        let f = sim
            .node(fl)
            .as_any()
            .downcast_ref::<FloodSource>()
            .expect("flood node");
        if f.sent > 0 {
            cov.set(feat::FLOOD_SYNS_SENT);
        }
        if f.rst_replies > 0 {
            cov.set(feat::FLOOD_RSTS);
        }
    }
    for id in sim.node_ids() {
        let Some(host) = sim.node(id).as_any().downcast_ref::<Host>() else {
            continue;
        };
        let probed_conns = host.diag.replies.iter().any(|frame| {
            matches!(smapp_netlink::decode(frame),
                     Ok(smapp_netlink::PmNlMessage::DiagReply { conns, .. }) if !conns.is_empty())
        });
        if probed_conns {
            cov.set(feat::DIAG_CONNS);
        }
        for conn in host.stack.connections() {
            if conn.stats.fallback_inferred {
                cov.set(feat::FALLBACK_INFERRED);
            }
            if conn.stats.reinjections > 0 {
                cov.set(feat::REINJECTIONS);
            }
            if conn.subflow_count() > 1 {
                cov.set(feat::MULTI_SUBFLOW);
            }
            for bit in 0..7 {
                if conn.stats.sf_close_reasons & (1 << bit) != 0 {
                    cov.set(feat::CLOSE_REASON_BASE + bit);
                }
            }
        }
    }
    if !verdict.violations.is_empty() {
        cov.set(feat::FAILED);
    }

    CaseOutcome {
        seed: case.seed,
        desc: case.describe(),
        summary,
        violations: verdict.violations,
        delivered,
        coverage: cov,
    }
}

fn server_delivered(sim: &Simulator, server: smapp_sim::NodeId) -> u64 {
    topo::host(sim, server)
        .stack
        .connections()
        .filter_map(|c| c.app())
        .filter_map(|a| a.as_any().downcast_ref::<Sink>())
        .map(|s| s.received)
        .sum()
}

/// A shrunken failing case.
#[derive(Debug)]
pub struct Shrunk {
    /// Indices of the dynamics entries still needed to reproduce.
    pub kept: Vec<usize>,
    /// Violations of the minimized case.
    pub violations: Vec<String>,
}

/// Minimize a failing case's dynamics script: greedily drop entries that
/// are not needed to keep the oracle failing, to a fixed point. Returns
/// `None` when the case does not fail in the first place.
pub fn shrink_case(case: &FuzzCase, opts: &FuzzOptions) -> Option<Shrunk> {
    let n = case.dynamics.len();
    let base = run_case_opts(case, opts);
    if base.violations.is_empty() {
        return None;
    }
    let mut keep = vec![true; n];
    let fails = |keep: &[bool]| {
        let o = run_case_opts(
            case,
            &FuzzOptions {
                dynamics_keep: Some(keep.to_vec()),
                ..opts.clone()
            },
        );
        (!o.violations.is_empty()).then_some(o.violations)
    };
    let mut violations = base.violations;
    let mut changed = true;
    while changed {
        changed = false;
        for i in 0..n {
            if !keep[i] {
                continue;
            }
            keep[i] = false;
            match fails(&keep) {
                Some(v) => {
                    violations = v;
                    changed = true;
                }
                None => keep[i] = true,
            }
        }
    }
    Some(Shrunk {
        kept: (0..n).filter(|&i| keep[i]).collect(),
        violations,
    })
}

/// [`shrink_case`] for a seed-derived case.
pub fn shrink(seed: u64, opts: &FuzzOptions) -> Option<Shrunk> {
    shrink_case(&FuzzCase::derive(seed), opts)
}

/// Render a case's strip toggle plus the `kept` dynamics entries as a
/// copy-pasteable Rust [`NetemScript`] snippet — exactly what
/// [`run_case_opts`] installs, so a failure report can be replayed in a
/// hand-written test without re-deriving anything. `links[i]` / `router`
/// / `client` refer to the scenario topology's handles in case order.
pub fn dynamics_snippet(case: &FuzzCase, kept: &[usize]) -> String {
    let mut s = String::from("let mut script = NetemScript::new();\n");
    match case.strip {
        Strip::Off => {}
        Strip::FromStart => {
            s.push_str("script.add(SimTime::ZERO, Netem::peer(router).strip_mptcp(true));\n")
        }
        Strip::MidHandshake => s.push_str(&format!(
            "script.add(SimTime::from_millis({MID_STRIP_AT_MS}), \
             Netem::peer(router).strip_mptcp(true));\n"
        )),
    }
    for &i in kept {
        let Some(d) = case.dynamics.get(i) else {
            continue;
        };
        let at = d.at.as_millis();
        let link = format!("links[{}]", d.link_idx);
        match d.action {
            FuzzAction::Rate(bps) => s.push_str(&format!(
                "script.add(SimTime::from_millis({at}), \
                 Netem::on({link}).rate(RateBps::bps({bps})));\n"
            )),
            FuzzAction::Loss(p) => s.push_str(&format!(
                "script.add(SimTime::from_millis({at}), \
                 Netem::on({link}).loss(LossPct::ratio({p:?})));\n"
            )),
            FuzzAction::Delay(delay) => s.push_str(&format!(
                "script.add(SimTime::from_millis({at}), \
                 Netem::on({link}).delay(OneWayDelay::ms({})));\n",
                delay.as_millis()
            )),
            FuzzAction::Queue(pkts) => s.push_str(&format!(
                "script.add(SimTime::from_millis({at}), \
                 Netem::on({link}).queue(QueueLen::pkts({pkts})));\n"
            )),
            FuzzAction::FlapDown(down_for) => {
                s.push_str(&format!(
                    "script.add(SimTime::from_millis({at}), Netem::on({link}).down());\n"
                ));
                s.push_str(&format!(
                    "script.add(SimTime::from_millis({}), Netem::on({link}).up());\n",
                    at + down_for.as_millis() as u64
                ));
            }
            FuzzAction::Reorder(pct, hold) => s.push_str(&format!(
                "script.add(SimTime::from_millis({at}), \
                 Netem::on({link}).reorder(LossPct::ratio({pct:?}), OneWayDelay::ms({})));\n",
                hold.as_millis()
            )),
            FuzzAction::Duplicate(pct) => s.push_str(&format!(
                "script.add(SimTime::from_millis({at}), \
                 Netem::on({link}).duplicate(LossPct::ratio({pct:?})));\n"
            )),
            FuzzAction::Probe => s.push_str(&format!(
                "script.add(SimTime::from_millis({at}), Netem::peer(client).probe());\n"
            )),
        }
    }
    s.push_str("sim.install(script, InstallPolicy::Sort).unwrap();\n");
    s
}

/// Decorrelates the mutation RNG from world and derivation RNGs.
const MUT_SALT: u64 = 0xC0FF_EE00_5EED_FACE;

/// One failing case the mutation engine found, with enough to reproduce:
/// the full case description (mutated cases are not seed-derivable).
#[derive(Clone, Debug)]
pub struct MutFailure {
    /// The exact case that failed.
    pub case: FuzzCase,
    /// Its oracle violations.
    pub violations: Vec<String>,
}

/// What one [`Mutator::step`] produced.
#[derive(Clone, Debug)]
pub struct StepOutcome {
    /// Description of the mutated case.
    pub desc: String,
    /// Did the case set feature bits no earlier case set?
    pub interesting: bool,
    /// Oracle violations of the case (0 = clean).
    pub violations: usize,
}

/// The coverage-guided mutation engine. Seed it from corpus seeds
/// ([`Mutator::from_seeds`]), then [`Mutator::step`] mutates corpus
/// entries toward unexplored feature space: a case whose bitmap sets new
/// bits joins the corpus and is preferred as the next parent. Fully
/// deterministic per `(seeds, mutation_seed, opts)`.
pub struct Mutator {
    opts: FuzzOptions,
    rng: SimRng,
    corpus: Vec<FuzzCase>,
    /// Union feature bitmap over every case run so far.
    pub coverage: Coverage,
    /// The union bitmap right after seeding, before any mutation — the
    /// floor the engine must beat to count as exploring.
    pub baseline_coverage: Coverage,
    /// Cases executed (seed corpus + mutations).
    pub cases_run: u64,
    /// Cases that set at least one new feature bit.
    pub interesting: u64,
    /// Every oracle-violating case observed, in discovery order.
    pub failures: Vec<MutFailure>,
    last_interesting: usize,
}

impl Mutator {
    /// Run every seed case, recording coverage and failures, and return
    /// the engine ready to mutate.
    pub fn from_seeds(seeds: &[u64], mutation_seed: u64, opts: FuzzOptions) -> Mutator {
        let mut m = Mutator {
            opts,
            rng: SimRng::seed_from_u64(mutation_seed ^ MUT_SALT),
            corpus: Vec::new(),
            coverage: Coverage::new(),
            baseline_coverage: Coverage::new(),
            cases_run: 0,
            interesting: 0,
            failures: Vec::new(),
            last_interesting: 0,
        };
        for &s in seeds {
            let case = FuzzCase::derive(s);
            let out = run_case_opts(&case, &m.opts);
            m.cases_run += 1;
            if m.coverage.new_bits(&out.coverage) > 0 {
                m.interesting += 1;
                m.last_interesting = m.corpus.len();
            }
            m.coverage.union(&out.coverage);
            if !out.violations.is_empty() {
                m.failures.push(MutFailure {
                    case: case.clone(),
                    violations: out.violations,
                });
            }
            // Seed cases always stay in the corpus: they are the
            // replayable anchors mutation starts from.
            m.corpus.push(case);
        }
        m.baseline_coverage = m.coverage;
        m
    }

    /// The current corpus (seed cases + every interesting mutant).
    pub fn corpus(&self) -> &[FuzzCase] {
        &self.corpus
    }

    /// Mutate one parent, run the child, classify it. Interesting children
    /// join the corpus; violating children are recorded in
    /// [`Mutator::failures`].
    pub fn step(&mut self) -> StepOutcome {
        let mut case = self.pick_parent();
        let ops = 1 + self.rng.range_u64(0, 3);
        for _ in 0..ops {
            self.mutate_once(&mut case);
        }
        // A fresh world seed per child: topology RNG diversity is part of
        // the search space too.
        case.seed = self.rng.next_u64();
        sanitize(&mut case, &mut self.rng);

        let out = run_case_opts(&case, &self.opts);
        self.cases_run += 1;
        let interesting = self.coverage.new_bits(&out.coverage) > 0;
        if interesting {
            self.coverage.union(&out.coverage);
            self.corpus.push(case.clone());
            self.last_interesting = self.corpus.len() - 1;
            self.interesting += 1;
        }
        let violations = out.violations.len();
        if violations > 0 {
            self.failures.push(MutFailure {
                case,
                violations: out.violations,
            });
        }
        StepOutcome {
            desc: out.desc,
            interesting,
            violations,
        }
    }

    fn pick_parent(&mut self) -> FuzzCase {
        if self.corpus.is_empty() {
            // Degenerate engine (no seeds): derive fresh cases instead.
            return FuzzCase::derive(self.rng.next_u64());
        }
        let idx = if self.rng.chance(0.5) {
            self.last_interesting.min(self.corpus.len() - 1)
        } else {
            self.rng.range_u64(0, self.corpus.len() as u64) as usize
        };
        self.corpus[idx].clone()
    }

    fn mutate_once(&mut self, c: &mut FuzzCase) {
        match self.rng.range_u64(0, 12) {
            0 => {
                c.transfer = match self.rng.range_u64(0, 3) {
                    0 => (c.transfer / 2).max(1_000),
                    1 => c.transfer.saturating_mul(2).min(400_000),
                    _ => self.rng.range_u64(5_000, 200_001),
                };
            }
            1 => {
                if !c.link_cfgs.is_empty() {
                    let i = self.rng.range_u64(0, c.link_cfgs.len() as u64) as usize;
                    c.link_cfgs[i] = random_link(&mut self.rng);
                }
            }
            2 => {
                let n_links = c.link_cfgs.len().max(1);
                c.dynamics.push(random_dyn(&mut self.rng, n_links));
            }
            3 => {
                if !c.dynamics.is_empty() {
                    let i = self.rng.range_u64(0, c.dynamics.len() as u64) as usize;
                    c.dynamics.remove(i);
                }
            }
            4 => {
                if !c.dynamics.is_empty() {
                    let i = self.rng.range_u64(0, c.dynamics.len() as u64) as usize;
                    c.dynamics[i].at = SimTime::from_millis(self.rng.range_u64(200, 30_000));
                }
            }
            5 => {
                c.pm = match self.rng.range_u64(0, 4) {
                    0 => PmMix::Noop,
                    1 => PmMix::FullMesh,
                    2 => PmMix::Ndiffports(self.rng.range_u64(2, 6) as u8),
                    _ => PmMix::BackupFlag,
                };
            }
            6 => {
                c.strip = match c.strip {
                    Strip::Off => Strip::FromStart,
                    Strip::FromStart => Strip::MidHandshake,
                    Strip::MidHandshake => Strip::Off,
                };
            }
            7 => {
                c.rewrite = match self.rng.range_u64(0, 5) {
                    0 => Rewrite::Off,
                    1 => Rewrite::SeqNat,
                    2 => Rewrite::Split,
                    3 => Rewrite::Coalesce,
                    _ => Rewrite::AckThin(self.rng.range_u64(2, 5) as u32),
                };
            }
            8 => {
                c.flood = if c.flood.is_some() && self.rng.chance(0.4) {
                    None
                } else {
                    Some(random_flood(&mut self.rng))
                };
            }
            9 => {
                c.traffic = if c.traffic.is_some() {
                    None
                } else {
                    Some(TrafficPlan {
                        flows: self.rng.range_u64(1, 5) as u8,
                    })
                };
            }
            10 => {
                // Splice: steal one dynamics entry from a donor corpus case.
                if !self.corpus.is_empty() {
                    let d = self.rng.range_u64(0, self.corpus.len() as u64) as usize;
                    let n = self.corpus[d].dynamics.len();
                    if n > 0 {
                        let i = self.rng.range_u64(0, n as u64) as usize;
                        let entry = self.corpus[d].dynamics[i].clone();
                        c.dynamics.push(entry);
                    }
                }
            }
            _ => {
                c.topo = match c.topo {
                    Topo::TwoPath => Topo::Ecmp(self.rng.range_u64(2, 5) as usize),
                    Topo::Ecmp(_) => Topo::TwoPath,
                };
            }
        }
    }
}

fn random_link(r: &mut SimRng) -> LinkCfg {
    let mbps = r.range_u64(2, 21);
    let delay_ms = r.range_u64(2, 41);
    LinkCfg::mbps_ms(mbps, delay_ms).queue(r.range_u64(16, 129) as usize)
}

fn random_dyn(r: &mut SimRng, n_links: usize) -> FuzzDyn {
    let at = SimTime::from_millis(r.range_u64(200, 30_000));
    let link_idx = r.range_u64(0, n_links as u64) as usize;
    let action = match r.range_u64(0, 8) {
        0 => FuzzAction::Rate(r.range_u64(500_000, 20_000_001)),
        1 => FuzzAction::Loss(r.range_u64(0, 26) as f64 / 100.0),
        2 => FuzzAction::Delay(Duration::from_millis(r.range_u64(1, 61))),
        3 => FuzzAction::Queue(r.range_u64(8, 129) as usize),
        4 => FuzzAction::Reorder(
            r.range_u64(1, 16) as f64 / 100.0,
            Duration::from_millis(r.range_u64(1, 31)),
        ),
        5 => FuzzAction::Duplicate(r.range_u64(1, 11) as f64 / 100.0),
        6 => FuzzAction::Probe,
        _ => FuzzAction::FlapDown(Duration::from_millis(r.range_u64(100, 2_001))),
    };
    FuzzDyn {
        at,
        link_idx,
        action,
    }
}

fn random_flood(r: &mut SimRng) -> FloodPlan {
    FloodPlan {
        mix: match r.range_u64(0, 3) {
            0 => FloodMix::PlainSyn,
            1 => FloodMix::MpJoin,
            _ => FloodMix::Mixed,
        },
        count: r.range_u64(20, 121) as u32,
        interval_ms: r.range_u64(1, 20),
        start_ms: r.range_u64(5, 2_000),
    }
}

/// Repair a mutated case so it describes a runnable world: link-table
/// arity matches the topology, families stay within the topologies that
/// support them, and the pinned mid-handshake inference family keeps its
/// pinned parameters. Mirrors the constraints [`FuzzCase::derive`]
/// enforces, so mutation can never leave the valid case space.
fn sanitize(c: &mut FuzzCase, rng: &mut SimRng) {
    if let Topo::Ecmp(n) = &mut c.topo {
        *n = (*n).clamp(2, 4);
    }
    let n_links = match c.topo {
        Topo::TwoPath => 2,
        Topo::Ecmp(n) => n,
    };
    while c.link_cfgs.len() < n_links {
        c.link_cfgs.push(random_link(rng));
    }
    c.link_cfgs.truncate(n_links);

    // Family ↔ topology constraints (same as derive's).
    match c.topo {
        Topo::Ecmp(_) => {
            c.strip = Strip::Off;
            c.rewrite = Rewrite::Off;
            c.flood = None;
            if c.pm == PmMix::BackupFlag {
                c.pm = PmMix::FullMesh;
            }
        }
        Topo::TwoPath => {
            if matches!(c.pm, PmMix::Ndiffports(_)) {
                c.pm = PmMix::FullMesh;
            }
        }
    }
    if matches!(c.rewrite, Rewrite::Split | Rewrite::Coalesce) && c.strip == Strip::Off {
        c.strip = Strip::FromStart;
    }
    if let Rewrite::AckThin(n) = &mut c.rewrite {
        *n = (*n).clamp(2, 8);
    }
    if c.strip == Strip::MidHandshake {
        c.pm = PmMix::Noop;
        c.rewrite = Rewrite::Off;
        c.flood = None;
        c.traffic = None;
        for l in &mut c.link_cfgs {
            *l = LinkCfg::mbps_ms(5, 10);
        }
    }

    c.transfer = c.transfer.clamp(1_000, 400_000);
    c.dynamics.truncate(8);
    for d in &mut c.dynamics {
        d.link_idx %= n_links;
        if d.at >= c.horizon {
            d.at = SimTime::from_millis(200);
        }
    }
}

/// The committed fixed-seed corpus (`FUZZ_CORPUS.txt` at the repo root):
/// one decimal seed per line, `#` comments allowed. CI fuzzes exactly this
/// list, so every CI failure reproduces locally by seed.
pub fn default_corpus() -> Vec<u64> {
    parse_corpus(include_str!("../../../FUZZ_CORPUS.txt"))
}

/// Parse a corpus file: one decimal seed per line, `#` comments allowed.
/// The one parser shared by [`default_corpus`] and the `fuzz` bin's
/// `--corpus` flag, so the two can never drift apart.
pub fn parse_corpus(text: &str) -> Vec<u64> {
    text.lines()
        .map(|l| l.split('#').next().unwrap_or("").trim())
        .filter(|l| !l.is_empty())
        .map(|l| l.parse().expect("corpus seeds are decimal u64"))
        .collect()
}

/// Run a list of seeds across `jobs` workers (results in seed-list order).
pub fn run_corpus(seeds: &[u64], jobs: usize) -> Vec<CaseOutcome> {
    let jobs_vec: Vec<JobFn<'_, CaseOutcome>> = seeds
        .iter()
        .map(|&s| {
            let f: JobFn<'_, CaseOutcome> = Box::new(move || run_case(s));
            f
        })
        .collect();
    run_jobs(jobs_vec, jobs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derivation_is_deterministic_and_varied() {
        let a = FuzzCase::derive(1234);
        let b = FuzzCase::derive(1234);
        assert_eq!(a.describe(), b.describe());
        assert_eq!(a.transfer, b.transfer);
        // Across a seed range, every family appears.
        let cases: Vec<FuzzCase> = (0..60).map(FuzzCase::derive).collect();
        assert!(cases.iter().any(|c| c.topo == Topo::TwoPath));
        assert!(cases.iter().any(|c| matches!(c.topo, Topo::Ecmp(_))));
        assert!(cases.iter().any(|c| c.strip != Strip::Off));
        assert!(cases.iter().any(|c| !c.dynamics.is_empty()));
        assert!(cases.iter().any(|c| c.rewrite != Rewrite::Off));
        assert!(cases.iter().any(|c| c.flood.is_some()));
        assert!(cases.iter().any(|c| c.traffic.is_some()));
    }

    #[test]
    fn derive_v1_is_a_frozen_prefix_of_derive() {
        for seed in 0..200u64 {
            let v1 = FuzzCase::derive_v1(seed);
            let v2 = FuzzCase::derive(seed);
            // The v1 derivation never carries the new families...
            assert_eq!(v1.rewrite, Rewrite::Off);
            assert!(v1.flood.is_none() && v1.traffic.is_none());
            // ...and every shared field agrees (strip may only be
            // upgraded Off → FromStart by the split/coalesce rule).
            assert_eq!(v1.pm, v2.pm, "seed {seed}");
            assert_eq!(v1.transfer, v2.transfer, "seed {seed}");
            // v2 may append netem operators (reorder/duplicate/probe)
            // after the shared prefix, never inside it.
            assert!(v2.dynamics.len() >= v1.dynamics.len(), "seed {seed}");
            for (a, b) in v1.dynamics.iter().zip(&v2.dynamics) {
                assert_eq!(a.at, b.at, "seed {seed}");
                assert_eq!(a.link_idx, b.link_idx, "seed {seed}");
                assert_eq!(
                    std::mem::discriminant(&a.action),
                    std::mem::discriminant(&b.action),
                    "seed {seed}"
                );
            }
            for extra in &v2.dynamics[v1.dynamics.len()..] {
                assert!(
                    matches!(
                        extra.action,
                        FuzzAction::Reorder(..) | FuzzAction::Duplicate(_) | FuzzAction::Probe
                    ),
                    "seed {seed}: appended entry must be a netem operator"
                );
            }
            assert!(
                v1.strip == v2.strip || (v1.strip == Strip::Off && v2.strip == Strip::FromStart),
                "seed {seed}: {:?} vs {:?}",
                v1.strip,
                v2.strip
            );
        }
    }

    #[test]
    fn corpus_file_parses_and_is_large_enough() {
        let corpus = default_corpus();
        assert!(
            corpus.len() >= 100,
            "CI must fuzz at least 100 cases, corpus has {}",
            corpus.len()
        );
        let mut dedup = corpus.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), corpus.len(), "corpus seeds are unique");
    }

    #[test]
    fn a_case_runs_oracle_clean_and_reruns_identically() {
        let a = run_case(default_corpus()[0]);
        assert!(a.violations.is_empty(), "{:?}", a.violations);
        let b = run_case(default_corpus()[0]);
        assert_eq!(a.summary, b.summary);
        assert_eq!(a.delivered, b.delivered);
        // Coverage determinism is a pinned invariant: same seed, same
        // bitmap, bit for bit.
        assert_eq!(a.coverage, b.coverage);
        assert!(a.coverage.count() > 0);
    }

    #[test]
    fn corpus_prefix_reaches_the_recorded_feature_floor() {
        // The committed corpus front-loads family diversity: its first 12
        // seeds alone must reach the recorded feature-coverage floor, so a
        // corpus edit that hollows out coverage fails loudly.
        let mut cov = Coverage::new();
        for &s in default_corpus().iter().take(12) {
            cov.union(&run_case(s).coverage);
        }
        assert!(
            cov.count() >= 50,
            "corpus prefix coverage fell to {} feature bits (the committed \
             corpus head reaches 54): {}",
            cov.count(),
            cov.to_hex()
        );
    }

    #[test]
    fn mid_handshake_strip_cases_exercise_fallback_inference() {
        // At least one corpus seed must land in the §3.7 inference family,
        // and it must run clean on the healthy build.
        let seed = default_corpus()
            .into_iter()
            .find(|&s| FuzzCase::derive(s).strip == Strip::MidHandshake)
            .expect("corpus covers the mid-handshake strip family");
        let out = run_case(seed);
        assert!(out.violations.is_empty(), "{:?}", out.violations);
        assert!(out.delivered > 0, "fallback still delivers");
    }

    #[test]
    fn broken_fallback_inference_is_caught_with_a_replayable_seed() {
        // The acceptance-criteria experiment: disable the RFC 6824 §3.7
        // fallback inference (a deliberately broken build) and the oracle
        // must flag the run, naming the seed.
        let seed = default_corpus()
            .into_iter()
            .find(|&s| FuzzCase::derive(s).strip == Strip::MidHandshake)
            .expect("corpus covers the mid-handshake strip family");
        let out = run_case_opts(
            &FuzzCase::derive(seed),
            &FuzzOptions {
                fallback_inference: false,
                ..Default::default()
            },
        );
        assert!(
            !out.violations.is_empty(),
            "oracle must catch the broken build"
        );
        assert!(
            out.violations
                .iter()
                .any(|v| v.contains(&format!("seed={seed}")) && v.contains("DSS mapping")),
            "violation names the replayable seed and the missing mappings: {:?}",
            out.violations
        );
        assert!(out.coverage.get(feat::FAILED));
    }

    #[test]
    fn rewriter_families_run_oracle_clean_and_fire() {
        // Each adversarial rewriter, on an otherwise simple two-path case:
        // the run must stay oracle-clean AND the router must have actually
        // exercised the rewriter (its outcome bit is set).
        for (rewrite, bit) in [
            (Rewrite::SeqNat, feat::SEQ_REWRITTEN),
            (Rewrite::Split, feat::SEGMENTS_SPLIT),
            (Rewrite::Coalesce, feat::SEGMENTS_COALESCED),
            (Rewrite::AckThin(2), feat::ACKS_THINNED),
        ] {
            let mut case = FuzzCase::derive_v1(2);
            assert_eq!(case.topo, Topo::TwoPath, "pick a two-path seed");
            case.dynamics.clear();
            case.transfer = 60_000;
            case.pm = PmMix::Noop;
            case.rewrite = rewrite;
            if rewrite == Rewrite::Coalesce {
                // The coalescer only holds a segment 200 µs; segments
                // arrive back-to-back within that window only on a fast
                // access link.
                case.link_cfgs = vec![LinkCfg::mbps_ms(100, 5); 2];
            }
            case.strip = if rewrite == Rewrite::SeqNat {
                Strip::Off // NAT must coexist with live MPTCP options
            } else {
                Strip::FromStart
            };
            let out = run_case_opts(&case, &FuzzOptions::default());
            assert!(
                out.violations.is_empty(),
                "{rewrite:?}: {:?}",
                out.violations
            );
            assert!(out.delivered >= case.transfer, "{rewrite:?} delivers");
            assert!(out.coverage.get(bit), "{rewrite:?} actually fired");
        }
    }

    #[test]
    fn flood_families_run_oracle_clean_alongside_the_transfer() {
        for mix in [FloodMix::PlainSyn, FloodMix::MpJoin, FloodMix::Mixed] {
            let mut case = FuzzCase::derive_v1(2);
            case.dynamics.clear();
            case.transfer = 40_000;
            case.flood = Some(FloodPlan {
                mix,
                count: 30,
                interval_ms: 3,
                start_ms: 20,
            });
            let out = run_case_opts(&case, &FuzzOptions::default());
            assert!(out.violations.is_empty(), "{mix:?}: {:?}", out.violations);
            assert!(
                out.delivered >= case.transfer,
                "{mix:?}: real flow survives"
            );
            assert!(out.coverage.get(feat::FLOOD_SYNS_SENT), "{mix:?} flooded");
        }
    }

    #[test]
    fn traffic_model_flows_share_the_world_cleanly() {
        let mut case = FuzzCase::derive_v1(2);
        case.dynamics.clear();
        case.transfer = 30_000;
        case.traffic = Some(TrafficPlan { flows: 3 });
        let out = run_case_opts(&case, &FuzzOptions::default());
        assert!(out.violations.is_empty(), "{:?}", out.violations);
        assert!(
            out.delivered > case.transfer,
            "background flows delivered bytes on top of the main transfer"
        );
        assert!(out.coverage.get(feat::TRAFFIC_MODEL));
    }

    #[test]
    fn mutation_is_deterministic_and_expands_coverage() {
        let seeds: Vec<u64> = default_corpus().into_iter().take(4).collect();
        let run = |n: usize| {
            let mut m = Mutator::from_seeds(&seeds, 7, FuzzOptions::default());
            let descs: Vec<String> = (0..n).map(|_| m.step().desc).collect();
            (m.coverage, m.baseline_coverage, descs)
        };
        let (cov_a, base_a, descs_a) = run(12);
        let (cov_b, _, descs_b) = run(12);
        assert_eq!(descs_a, descs_b, "mutation trajectory replays exactly");
        assert_eq!(cov_a, cov_b);
        assert!(
            cov_a.count() > base_a.count(),
            "12 mutation steps must explore past the 4-seed baseline \
             ({} vs {} bits)",
            cov_a.count(),
            base_a.count()
        );
    }

    #[test]
    fn mutation_engine_finds_broken_fallback_inference() {
        // The acceptance-criteria experiment, mutation edition: the seed
        // slice deliberately EXCLUDES the mid-handshake family, so replay
        // alone cannot catch a build with fallback inference disabled —
        // the engine has to mutate its way into the failing family.
        let seeds: Vec<u64> = default_corpus()
            .into_iter()
            .filter(|&s| FuzzCase::derive(s).strip != Strip::MidHandshake)
            .take(5)
            .collect();
        let opts = FuzzOptions {
            fallback_inference: false,
            ..Default::default()
        };
        let mut m = Mutator::from_seeds(&seeds, 3, opts);
        assert!(
            m.failures.is_empty(),
            "seed replay alone must not catch it: {:?}",
            m.failures
        );
        let mut steps = 0;
        while m.failures.is_empty() && steps < 300 {
            m.step();
            steps += 1;
        }
        assert!(
            !m.failures.is_empty(),
            "mutation must reach the broken family within 300 steps \
             (coverage {} bits over {} cases)",
            m.coverage.count(),
            m.cases_run
        );
        let f = &m.failures[0];
        assert_eq!(f.case.strip, Strip::MidHandshake);
        assert!(
            f.violations.iter().any(|v| v.contains("DSS mapping")),
            "{:?}",
            f.violations
        );
    }

    #[test]
    fn mutation_engine_finds_the_buggy_split_rewriter() {
        // Second broken build: the router's split rewriter corrupts the
        // second half (test-only knob). Only cases that actually split
        // segments can see it — the seed slice has none, mutation must
        // switch a case into the split family.
        let seeds: Vec<u64> = default_corpus()
            .into_iter()
            .filter(|&s| FuzzCase::derive(s).rewrite != Rewrite::Split)
            .take(5)
            .collect();
        let opts = FuzzOptions {
            buggy_split: true,
            ..Default::default()
        };
        let mut m = Mutator::from_seeds(&seeds, 5, opts);
        assert!(
            m.failures.is_empty(),
            "seed replay alone must not catch it: {:?}",
            m.failures
        );
        let mut steps = 0;
        while m.failures.is_empty() && steps < 300 {
            m.step();
            steps += 1;
        }
        assert!(
            !m.failures.is_empty(),
            "mutation must reach the split family within 300 steps"
        );
        assert_eq!(m.failures[0].case.rewrite, Rewrite::Split);
    }

    #[test]
    fn shrinker_returns_none_for_clean_cases() {
        assert!(shrink(default_corpus()[0], &FuzzOptions::default()).is_none());
    }

    /// Corpus regeneration helper (not a test of the build):
    /// `cargo test -p smapp-bench --release --lib fuzz -- --ignored
    /// --nocapture` scans a seed range, keeps oracle-clean seeds, orders
    /// them greedily by marginal feature coverage (so the corpus *prefix*
    /// is maximally diverse — the smoke matrix and the feature-floor test
    /// both run prefixes), fills up with ascending clean seeds, and prints
    /// a ready-to-commit `FUZZ_CORPUS.txt`.
    #[test]
    #[ignore]
    fn regenerate_corpus_scan() {
        let candidates: Vec<u64> = (9000..9800).collect();
        let outs = run_corpus(&candidates, 8);
        let clean: Vec<(u64, Coverage)> = candidates
            .iter()
            .zip(&outs)
            .filter(|(_, o)| o.violations.is_empty())
            .map(|(&s, o)| (s, o.coverage))
            .collect();
        println!("# clean: {}/{}", clean.len(), candidates.len());
        for (s, o) in candidates.iter().zip(&outs) {
            if !o.violations.is_empty() {
                println!("# DIRTY seed={s} {} :: {:?}", o.desc, o.violations);
            }
        }
        // Greedy max-marginal-coverage ordering.
        let mut remaining = clean.clone();
        let mut picked: Vec<u64> = Vec::new();
        let mut union = Coverage::new();
        loop {
            let best = remaining
                .iter()
                .enumerate()
                .map(|(i, (_, c))| (union.new_bits(c), i))
                .max_by_key(|&(gain, i)| (gain, usize::MAX - i));
            match best {
                Some((gain, i)) if gain > 0 => {
                    let (s, c) = remaining.remove(i);
                    union.union(&c);
                    picked.push(s);
                }
                _ => break,
            }
        }
        println!(
            "# greedy head: {} seeds -> {} bits",
            picked.len(),
            union.count()
        );
        for (s, _) in remaining {
            if picked.len() >= 120 {
                break;
            }
            picked.push(s);
        }
        let mut prefix = Coverage::new();
        for &s in picked.iter().take(12) {
            prefix.union(&run_case(s).coverage);
        }
        println!("# first-12 union: {} bits", prefix.count());
        let n_mid = picked
            .iter()
            .filter(|&&s| FuzzCase::derive(s).strip == Strip::MidHandshake)
            .count();
        println!("# mid-handshake cases: {n_mid}");
        for s in &picked {
            println!("{s}");
        }
    }

    #[test]
    fn regression_fallback_never_reinjects_on_rto() {
        // Found by this fuzzer (seed 9611): a fallback connection whose
        // segments the split rewriter doubles will RTO under queue
        // pressure; connection-level reinjection then appended the
        // in-flight bytes at fresh subflow offsets, and the receiver's
        // identity mapping delivered them as duplicate stream bytes past
        // the end of the stream. `add_reinject` is now a no-op in
        // fallback; the transfer must arrive exactly once.
        let mut case = FuzzCase::derive(9611);
        case.dynamics.clear();
        case.flood = None;
        case.traffic = None;
        case.pm = PmMix::Noop;
        assert_eq!(case.strip, Strip::FromStart);
        assert_eq!(case.rewrite, Rewrite::Split);
        let out = run_case_opts(&case, &FuzzOptions::default());
        assert!(out.violations.is_empty(), "{:?}", out.violations);
        assert_eq!(out.delivered, case.transfer, "exactly once, no dup");
    }

    #[test]
    fn snippet_renders_the_kept_dynamics_as_rust() {
        let case = FuzzCase {
            seed: 1,
            topo: Topo::TwoPath,
            link_cfgs: vec![LinkCfg::mbps_ms(5, 10), LinkCfg::mbps_ms(5, 10)],
            pm: PmMix::Noop,
            transfer: 10_000,
            strip: Strip::FromStart,
            rewrite: Rewrite::Off,
            flood: None,
            traffic: None,
            dynamics: vec![
                FuzzDyn {
                    at: SimTime::from_millis(500),
                    link_idx: 1,
                    action: FuzzAction::Loss(0.25),
                },
                FuzzDyn {
                    at: SimTime::from_millis(900),
                    link_idx: 0,
                    action: FuzzAction::FlapDown(Duration::from_millis(300)),
                },
            ],
            horizon: SimTime::from_secs(60),
        };
        let s = dynamics_snippet(&case, &[1]);
        assert!(s.starts_with("let mut script = NetemScript::new();\n"));
        assert!(s.contains("Netem::peer(router).strip_mptcp(true)"), "{s}");
        // Only the kept entry is rendered.
        assert!(!s.contains("loss"), "{s}");
        assert!(s.contains("script.add(SimTime::from_millis(900), Netem::on(links[0]).down());"));
        assert!(s.contains("script.add(SimTime::from_millis(1200), Netem::on(links[0]).up());"));
        assert!(s.ends_with("sim.install(script, InstallPolicy::Sort).unwrap();\n"));
    }

    #[test]
    fn snippet_renders_the_netem_operators() {
        let case = FuzzCase {
            seed: 1,
            topo: Topo::TwoPath,
            link_cfgs: vec![LinkCfg::mbps_ms(5, 10), LinkCfg::mbps_ms(5, 10)],
            pm: PmMix::Noop,
            transfer: 10_000,
            strip: Strip::Off,
            rewrite: Rewrite::Off,
            flood: None,
            traffic: None,
            dynamics: vec![
                FuzzDyn {
                    at: SimTime::from_millis(400),
                    link_idx: 0,
                    action: FuzzAction::Reorder(0.1, Duration::from_millis(5)),
                },
                FuzzDyn {
                    at: SimTime::from_millis(600),
                    link_idx: 1,
                    action: FuzzAction::Duplicate(0.02),
                },
                FuzzDyn {
                    at: SimTime::from_millis(800),
                    link_idx: 0,
                    action: FuzzAction::Probe,
                },
            ],
            horizon: SimTime::from_secs(60),
        };
        let s = dynamics_snippet(&case, &[0, 1, 2]);
        assert!(
            s.contains("Netem::on(links[0]).reorder(LossPct::ratio(0.1), OneWayDelay::ms(5))"),
            "{s}"
        );
        assert!(
            s.contains("Netem::on(links[1]).duplicate(LossPct::ratio(0.02))"),
            "{s}"
        );
        assert!(
            s.contains("script.add(SimTime::from_millis(800), Netem::peer(client).probe());"),
            "{s}"
        );
    }
}
