//! Randomized-but-seeded scenario fuzzing with the protocol-invariant
//! oracle attached.
//!
//! In the spirit of history-based checkers that exercise *generated*
//! executions against an executable specification (rather than hand-picked
//! cases), this module derives a complete scenario — topology, link
//! parameters, path-manager mix, workload and a [`DynamicsScript`] of
//! mid-run churn — purely from a `u64` seed, runs it with the wire oracle
//! and the end-host taps enabled, and reports every invariant violation
//! with the replayable `(scenario="fuzz", seed, time)` triple.
//!
//! * [`FuzzCase::derive`] — seed → scenario description (deterministic; no
//!   state outside the seed).
//! * [`run_case`] — build, run, [`smapp_pm::verify::conclude`]; never
//!   panics, so a corpus sweep reports every failure.
//! * [`shrink`] — for a failing case, bisect the dynamics script down to a
//!   minimal still-failing subset (greedy single-entry removal to a fixed
//!   point — scripts are short, so this is exact enough and cheap).
//! * [`default_corpus`] — the committed fixed-seed corpus
//!   (`FUZZ_CORPUS.txt`) CI runs on every build; failures reproduce
//!   locally with `cargo run --release -p smapp-bench --bin fuzz --
//!   --replay <seed>`.
//!
//! Corpus sweeps parallelize over the same worker pool as the scenario
//! matrix ([`crate::sweep::run_jobs`]); each case is one independent,
//! thread-confined world.

use std::time::Duration;

use smapp_mptcp::apps::{BulkSender, Sink};
use smapp_mptcp::{NoopPm, StackConfig};
use smapp_pm::topo::{self, CLIENT_ADDR1, CLIENT_ADDR2, SERVER_ADDR};
use smapp_pm::{verify, FullMeshPm, Host, NdiffportsPm};
use smapp_sim::{
    DynAction, DynamicsScript, LinkCfg, LinkId, LossModel, NodeCommand, Oracle, RunSummary, SimRng,
    SimTime, Simulator,
};

use crate::pms::BackupFlagPm;
use crate::sweep::{run_jobs, JobFn};

/// Topology family of one case.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Topo {
    /// Dual-homed client behind one router ([`topo::two_path`]).
    TwoPath,
    /// Single-homed client across an ECMP fan of `n` paths ([`topo::ecmp`]).
    Ecmp(usize),
}

/// Path-manager / controller mix of one case.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PmMix {
    /// No path manager: single subflow.
    Noop,
    /// Kernel full-mesh.
    FullMesh,
    /// Kernel ndiffports with `n` subflows.
    Ndiffports(u8),
    /// Immediate backup subflow over the second interface (two-path only).
    BackupFlag,
}

/// Middlebox behaviour of one case (two-path topology only).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Strip {
    /// Router forwards options untouched.
    Off,
    /// Router strips MPTCP options from the first SYN on: the handshake
    /// itself degrades to plain TCP.
    FromStart,
    /// Stripping switches on *between* the handshake and the first data
    /// segment — the RFC 6824 §3.7 inference case: MPTCP is negotiated,
    /// then the peer's first data arrives DSS-less.
    MidHandshake,
}

/// One abstract scripted action; links are indices into the case's link
/// table (two-path: `[link1, link2]`, ECMP: the parallel paths) so a case
/// is fully described before the world exists.
#[derive(Clone, Debug)]
pub struct FuzzDyn {
    /// When the action runs.
    pub at: SimTime,
    /// Which table link it targets.
    pub link_idx: usize,
    /// What happens.
    pub action: FuzzAction,
}

/// Abstract dynamics action (resolved to [`DynAction`] at build time).
#[derive(Clone, Debug)]
pub enum FuzzAction {
    /// Serialization-rate change, bits/s.
    Rate(u64),
    /// Bernoulli loss-ratio change.
    Loss(f64),
    /// One-way delay change.
    Delay(Duration),
    /// Drop-tail queue capacity change, packets.
    Queue(usize),
    /// Link down, back up after the duration.
    FlapDown(Duration),
}

/// A fully derived fuzz case.
#[derive(Clone, Debug)]
pub struct FuzzCase {
    /// The master seed (also seeds the simulation world).
    pub seed: u64,
    /// Topology family.
    pub topo: Topo,
    /// Per-link configs: two-path `[cfg1, cfg2]`, ECMP one per path.
    pub link_cfgs: Vec<LinkCfg>,
    /// Path-manager mix.
    pub pm: PmMix,
    /// Transfer size, bytes.
    pub transfer: u64,
    /// Middlebox behaviour.
    pub strip: Strip,
    /// Scripted churn.
    pub dynamics: Vec<FuzzDyn>,
    /// Simulation horizon.
    pub horizon: SimTime,
}

/// Time the client workload connects (fixed so [`Strip::MidHandshake`]
/// can place its toggle deterministically inside the handshake window).
const CONNECT_AT_MS: u64 = 10;

/// For [`Strip::MidHandshake`] the two-path access delays are pinned to
/// 10 ms so the strip toggle at 36 ms lands after the router forwarded the
/// SYN/ACK (~22 ms) and before the first data transits it (~42 ms).
const MID_STRIP_AT_MS: u64 = 36;

impl FuzzCase {
    /// Derive the complete case from `seed` — deterministic, stateless.
    pub fn derive(seed: u64) -> FuzzCase {
        // Decorrelate from the world RNG (which also consumes `seed`).
        let mut r = SimRng::seed_from_u64(seed ^ 0x5EED_F0CC_0BAD_CA5E);
        let topo = if r.chance(0.5) {
            Topo::TwoPath
        } else {
            Topo::Ecmp(r.range_u64(2, 5) as usize)
        };
        let n_links = match topo {
            Topo::TwoPath => 2,
            Topo::Ecmp(n) => n,
        };
        let strip = match topo {
            Topo::TwoPath => {
                let x = r.range_u64(0, 100);
                if x < 20 {
                    Strip::FromStart
                } else if x < 35 {
                    Strip::MidHandshake
                } else {
                    Strip::Off
                }
            }
            Topo::Ecmp(_) => Strip::Off,
        };
        let link_cfgs: Vec<LinkCfg> = (0..n_links)
            .map(|_| {
                if strip == Strip::MidHandshake {
                    // Pinned delays: the mid-handshake toggle instant
                    // depends on them.
                    LinkCfg::mbps_ms(5, 10)
                } else {
                    let mbps = r.range_u64(2, 21);
                    let delay_ms = r.range_u64(2, 41);
                    LinkCfg::mbps_ms(mbps, delay_ms).queue(r.range_u64(16, 129) as usize)
                }
            })
            .collect();
        let pm = if strip == Strip::MidHandshake {
            // Joins would add subflows and defeat the single-subflow §3.7
            // inference window; keep the case on one subflow.
            PmMix::Noop
        } else {
            match (topo.clone(), r.range_u64(0, 3)) {
                (_, 0) => PmMix::Noop,
                (Topo::TwoPath, 1) => PmMix::BackupFlag,
                (Topo::TwoPath, _) => PmMix::FullMesh,
                (Topo::Ecmp(_), 1) => PmMix::Ndiffports(r.range_u64(2, 6) as u8),
                (Topo::Ecmp(_), _) => PmMix::FullMesh,
            }
        };
        let transfer = r.range_u64(20_000, 150_001);
        let n_dyn = r.range_u64(0, 5) as usize;
        let mut dynamics = Vec::with_capacity(n_dyn);
        for _ in 0..n_dyn {
            let at = SimTime::from_millis(r.range_u64(200, 30_000));
            let link_idx = r.range_u64(0, n_links as u64) as usize;
            let action = match r.range_u64(0, 5) {
                0 => FuzzAction::Rate(r.range_u64(500_000, 20_000_001)),
                1 => FuzzAction::Loss(r.range_u64(0, 26) as f64 / 100.0),
                2 => FuzzAction::Delay(Duration::from_millis(r.range_u64(1, 61))),
                3 => FuzzAction::Queue(r.range_u64(8, 129) as usize),
                _ => FuzzAction::FlapDown(Duration::from_millis(r.range_u64(100, 2_001))),
            };
            dynamics.push(FuzzDyn {
                at,
                link_idx,
                action,
            });
        }
        FuzzCase {
            seed,
            topo,
            link_cfgs,
            pm,
            transfer,
            strip,
            dynamics,
            horizon: SimTime::from_secs(60),
        }
    }

    /// One-line description (stable; part of the sweep trajectory).
    pub fn describe(&self) -> String {
        let topo = match self.topo {
            Topo::TwoPath => "two_path".to_string(),
            Topo::Ecmp(n) => format!("ecmp{n}"),
        };
        format!(
            "{topo} pm={:?} strip={:?} transfer={} dyn={}",
            self.pm,
            self.strip,
            self.transfer,
            self.dynamics.len()
        )
    }
}

/// Build-time options the corpus never varies — the broken-build detection
/// path flips them to prove the oracle notices.
#[derive(Clone, Debug)]
pub struct FuzzOptions {
    /// Forwarded into every host's [`StackConfig::fallback_inference`].
    pub fallback_inference: bool,
    /// Dynamics entries to keep (`None` = all) — the shrinker's lever.
    pub dynamics_keep: Option<Vec<bool>>,
}

impl Default for FuzzOptions {
    fn default() -> Self {
        FuzzOptions {
            fallback_inference: true,
            dynamics_keep: None,
        }
    }
}

/// Outcome of one fuzz case.
#[derive(Clone, Debug)]
pub struct CaseOutcome {
    /// The seed (replay key).
    pub seed: u64,
    /// [`FuzzCase::describe`] of the derived case.
    pub desc: String,
    /// The simulator's run summary.
    pub summary: RunSummary,
    /// Oracle violations (wire + end-host), replay-labelled.
    pub violations: Vec<String>,
    /// Bytes the server application received.
    pub delivered: u64,
}

/// Derive and run one case with default options.
pub fn run_case(seed: u64) -> CaseOutcome {
    run_case_opts(&FuzzCase::derive(seed), &FuzzOptions::default())
}

/// Run a (possibly modified) case under explicit options.
pub fn run_case_opts(case: &FuzzCase, opts: &FuzzOptions) -> CaseOutcome {
    let cfg = StackConfig {
        fallback_inference: opts.fallback_inference,
        ..StackConfig::default()
    };
    let mut client = Host::new("client", cfg.clone());
    client.pm = match case.pm {
        PmMix::Noop => Box::new(NoopPm),
        PmMix::FullMesh => Box::new(FullMeshPm::new()),
        PmMix::Ndiffports(n) => Box::new(NdiffportsPm::new(n)),
        PmMix::BackupFlag => Box::new(BackupFlagPm::new(CLIENT_ADDR2)),
    };
    // No `stop_sim_when_acked()`: letting the world drain to a
    // `StopReason::Idle` end keeps the oracle's end-of-run link-
    // conservation *equality* check live for every case that completes
    // (a requested stop would leave packets legitimately in flight and
    // skip it).
    client.connect_at(
        SimTime::from_millis(CONNECT_AT_MS),
        Some(CLIENT_ADDR1),
        SERVER_ADDR,
        80,
        Box::new(BulkSender::new(case.transfer).close_when_done()),
    );
    let mut server = Host::new("server", cfg);
    server.listen(
        80,
        Box::new(|| {
            Box::new(Sink {
                close_on_eof: true,
                ..Default::default()
            })
        }),
    );

    // Build the world and the link table the abstract dynamics refer to.
    let (mut sim, links, router, server_node) = match case.topo {
        Topo::TwoPath => {
            let net = topo::two_path(
                case.seed,
                client,
                server,
                case.link_cfgs[0].clone(),
                case.link_cfgs[1].clone(),
            );
            (
                net.sim,
                vec![net.link1, net.link2],
                Some(net.router),
                net.server,
            )
        }
        Topo::Ecmp(_) => {
            let net = topo::ecmp(case.seed, client, server, &case.link_cfgs);
            (net.sim, net.paths.clone(), None, net.server)
        }
    };
    sim.core.set_trace(Box::new(Oracle::new()));

    let mut script = DynamicsScript::new();
    match (case.strip, router) {
        (Strip::FromStart, Some(router)) => script.push(
            SimTime::ZERO,
            DynAction::Command {
                node: router,
                cmd: NodeCommand::StripMptcp(true),
            },
        ),
        (Strip::MidHandshake, Some(router)) => script.push(
            SimTime::from_millis(MID_STRIP_AT_MS),
            DynAction::Command {
                node: router,
                cmd: NodeCommand::StripMptcp(true),
            },
        ),
        _ => {}
    }
    for (i, d) in case.dynamics.iter().enumerate() {
        if let Some(keep) = &opts.dynamics_keep {
            if !keep.get(i).copied().unwrap_or(true) {
                continue;
            }
        }
        let link: LinkId = links[d.link_idx.min(links.len() - 1)];
        match d.action {
            FuzzAction::Rate(bps) => script.push(
                d.at,
                DynAction::SetRate {
                    link,
                    dir: None,
                    rate_bps: bps,
                },
            ),
            FuzzAction::Loss(p) => script.push(
                d.at,
                DynAction::SetLoss {
                    link,
                    dir: None,
                    loss: LossModel::Bernoulli(p),
                },
            ),
            FuzzAction::Delay(delay) => script.push(
                d.at,
                DynAction::SetDelay {
                    link,
                    dir: None,
                    delay,
                },
            ),
            FuzzAction::Queue(pkts) => script.push(
                d.at,
                DynAction::SetQueue {
                    link,
                    dir: None,
                    pkts,
                },
            ),
            FuzzAction::FlapDown(down_for) => {
                script.push(d.at, DynAction::LinkAdmin { link, up: false });
                script.push(d.at + down_for, DynAction::LinkAdmin { link, up: true });
            }
        }
    }
    sim.install_dynamics(script);

    let summary = sim.run_until(case.horizon);
    let verdict = verify::conclude(&mut sim, &summary, "fuzz", case.seed);
    let delivered = server_delivered(&sim, server_node);
    CaseOutcome {
        seed: case.seed,
        desc: case.describe(),
        summary,
        violations: verdict.violations,
        delivered,
    }
}

fn server_delivered(sim: &Simulator, server: smapp_sim::NodeId) -> u64 {
    topo::host(sim, server)
        .stack
        .connections()
        .filter_map(|c| c.app())
        .filter_map(|a| a.as_any().downcast_ref::<Sink>())
        .map(|s| s.received)
        .sum()
}

/// A shrunken failing case.
#[derive(Debug)]
pub struct Shrunk {
    /// Indices of the dynamics entries still needed to reproduce.
    pub kept: Vec<usize>,
    /// Violations of the minimized case.
    pub violations: Vec<String>,
}

/// Minimize a failing case's dynamics script: greedily drop entries that
/// are not needed to keep the oracle failing, to a fixed point. Returns
/// `None` when the case does not fail in the first place.
pub fn shrink(seed: u64, opts: &FuzzOptions) -> Option<Shrunk> {
    let case = FuzzCase::derive(seed);
    let n = case.dynamics.len();
    let base = run_case_opts(&case, opts);
    if base.violations.is_empty() {
        return None;
    }
    let mut keep = vec![true; n];
    let fails = |keep: &[bool]| {
        let o = run_case_opts(
            &case,
            &FuzzOptions {
                dynamics_keep: Some(keep.to_vec()),
                ..opts.clone()
            },
        );
        (!o.violations.is_empty()).then_some(o.violations)
    };
    let mut violations = base.violations;
    let mut changed = true;
    while changed {
        changed = false;
        for i in 0..n {
            if !keep[i] {
                continue;
            }
            keep[i] = false;
            match fails(&keep) {
                Some(v) => {
                    violations = v;
                    changed = true;
                }
                None => keep[i] = true,
            }
        }
    }
    Some(Shrunk {
        kept: (0..n).filter(|&i| keep[i]).collect(),
        violations,
    })
}

/// The committed fixed-seed corpus (`FUZZ_CORPUS.txt` at the repo root):
/// one decimal seed per line, `#` comments allowed. CI fuzzes exactly this
/// list, so every CI failure reproduces locally by seed.
pub fn default_corpus() -> Vec<u64> {
    parse_corpus(include_str!("../../../FUZZ_CORPUS.txt"))
}

/// Parse a corpus file: one decimal seed per line, `#` comments allowed.
/// The one parser shared by [`default_corpus`] and the `fuzz` bin's
/// `--corpus` flag, so the two can never drift apart.
pub fn parse_corpus(text: &str) -> Vec<u64> {
    text.lines()
        .map(|l| l.split('#').next().unwrap_or("").trim())
        .filter(|l| !l.is_empty())
        .map(|l| l.parse().expect("corpus seeds are decimal u64"))
        .collect()
}

/// Run a list of seeds across `jobs` workers (results in seed-list order).
pub fn run_corpus(seeds: &[u64], jobs: usize) -> Vec<CaseOutcome> {
    let jobs_vec: Vec<JobFn<'_, CaseOutcome>> = seeds
        .iter()
        .map(|&s| {
            let f: JobFn<'_, CaseOutcome> = Box::new(move || run_case(s));
            f
        })
        .collect();
    run_jobs(jobs_vec, jobs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derivation_is_deterministic_and_varied() {
        let a = FuzzCase::derive(1234);
        let b = FuzzCase::derive(1234);
        assert_eq!(a.describe(), b.describe());
        assert_eq!(a.transfer, b.transfer);
        // Across a seed range, both topology families and at least one
        // stripping case appear.
        let cases: Vec<FuzzCase> = (0..40).map(FuzzCase::derive).collect();
        assert!(cases.iter().any(|c| c.topo == Topo::TwoPath));
        assert!(cases.iter().any(|c| matches!(c.topo, Topo::Ecmp(_))));
        assert!(cases.iter().any(|c| c.strip != Strip::Off));
        assert!(cases.iter().any(|c| !c.dynamics.is_empty()));
    }

    #[test]
    fn corpus_file_parses_and_is_large_enough() {
        let corpus = default_corpus();
        assert!(
            corpus.len() >= 100,
            "CI must fuzz at least 100 cases, corpus has {}",
            corpus.len()
        );
        let mut dedup = corpus.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), corpus.len(), "corpus seeds are unique");
    }

    #[test]
    fn a_case_runs_oracle_clean_and_reruns_identically() {
        let a = run_case(default_corpus()[0]);
        assert!(a.violations.is_empty(), "{:?}", a.violations);
        let b = run_case(default_corpus()[0]);
        assert_eq!(a.summary, b.summary);
        assert_eq!(a.delivered, b.delivered);
    }

    #[test]
    fn mid_handshake_strip_cases_exercise_fallback_inference() {
        // At least one corpus seed must land in the §3.7 inference family,
        // and it must run clean on the healthy build.
        let seed = default_corpus()
            .into_iter()
            .find(|&s| FuzzCase::derive(s).strip == Strip::MidHandshake)
            .expect("corpus covers the mid-handshake strip family");
        let out = run_case(seed);
        assert!(out.violations.is_empty(), "{:?}", out.violations);
        assert!(out.delivered > 0, "fallback still delivers");
    }

    #[test]
    fn broken_fallback_inference_is_caught_with_a_replayable_seed() {
        // The acceptance-criteria experiment: disable the RFC 6824 §3.7
        // fallback inference (a deliberately broken build) and the oracle
        // must flag the run, naming the seed.
        let seed = default_corpus()
            .into_iter()
            .find(|&s| FuzzCase::derive(s).strip == Strip::MidHandshake)
            .expect("corpus covers the mid-handshake strip family");
        let out = run_case_opts(
            &FuzzCase::derive(seed),
            &FuzzOptions {
                fallback_inference: false,
                ..Default::default()
            },
        );
        assert!(
            !out.violations.is_empty(),
            "oracle must catch the broken build"
        );
        assert!(
            out.violations
                .iter()
                .any(|v| v.contains(&format!("seed={seed}")) && v.contains("DSS mapping")),
            "violation names the replayable seed and the missing mappings: {:?}",
            out.violations
        );
    }

    #[test]
    fn shrinker_returns_none_for_clean_cases() {
        assert!(shrink(default_corpus()[0], &FuzzOptions::default()).is_none());
    }
}
