//! The deterministic multi-core sweep engine.
//!
//! Every experiment in this repo is an embarrassingly parallel matrix of
//! `(scenario × seed × parameter override)` runs: each cell builds its own
//! simulation world from a seed and runs it to completion, sharing nothing
//! with any other cell. This module executes that matrix across all cores
//! while keeping the *output* bit-identical to a sequential run:
//!
//! * **Worlds are thread-confined.** A job is a `Send` *builder closure*;
//!   the worker thread that picks it up constructs the world locally, so
//!   single-threaded internals (`Rc<RefCell<…>>` app state, `RefCell`-free
//!   but `!Sync` simulator guts) never cross a thread boundary.
//! * **Results come back in job order.** Workers write each result into
//!   the slot reserved for its job index; the engine returns the slots in
//!   index order. Completion order — which *does* vary with thread count
//!   and machine load — is unobservable in the output.
//! * **No new dependencies.** The pool is `std::thread::scope` over an
//!   atomic work-stealing counter; `--jobs 1` runs inline on the caller's
//!   thread (no pool, identical to a plain `for` loop — this is the mode
//!   used for single-thread perf measurements).
//!
//! [`run_jobs`] is the raw engine; [`Matrix`] is the declarative layer the
//! perf harness feeds: scenario constructors × seed lists, expanded in
//! stable order.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use smapp_sim::RunSummary;

use crate::count_alloc;

/// A boxed unit of work: builds a world, runs it, returns its result.
/// The lifetime lets jobs borrow the matrix that spawned them — workers
/// run inside [`std::thread::scope`], which outlives no borrow.
pub type JobFn<'a, T> = Box<dyn FnOnce() -> T + Send + 'a>;

/// How many workers to use by default: the machine's available
/// parallelism (1 when it cannot be determined).
pub fn default_jobs() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Run `jobs` on `workers` threads, returning results **in job order**
/// regardless of completion order or worker count.
///
/// `workers <= 1` runs every job inline on the calling thread — byte-for-
/// byte the sequential loop, with zero threading overhead. With more
/// workers, a scoped pool pulls job indices from a shared atomic counter
/// (dynamic load balancing: long jobs don't convoy short ones) and each
/// result lands in its job's dedicated slot.
pub fn run_jobs<'a, T: Send>(jobs: Vec<JobFn<'a, T>>, workers: usize) -> Vec<T> {
    if workers <= 1 || jobs.len() <= 1 {
        return jobs.into_iter().map(|j| j()).collect();
    }
    let slots: Vec<Mutex<Option<T>>> = jobs.iter().map(|_| Mutex::new(None)).collect();
    let queue: Vec<Mutex<Option<JobFn<'a, T>>>> =
        jobs.into_iter().map(|j| Mutex::new(Some(j))).collect();
    let next = AtomicUsize::new(0);
    let n_workers = workers.min(queue.len());
    std::thread::scope(|s| {
        for _ in 0..n_workers {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= queue.len() {
                    break;
                }
                let job = queue[i]
                    .lock()
                    .expect("job slot poisoned")
                    .take()
                    .expect("job claimed twice");
                let out = job();
                *slots[i].lock().expect("result slot poisoned") = Some(out);
            });
        }
    });
    slots
        .into_iter()
        .map(|s| {
            s.into_inner()
                .expect("result slot poisoned")
                .expect("worker died before writing its result")
        })
        .collect()
}

/// What one matrix cell produces: the simulator's run summary plus a
/// deterministic rendering of the scenario's per-seed trajectory. Two runs
/// of the same cell must produce identical `ScenarioRun`s; the parity
/// check compares them byte for byte across `--jobs` settings.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioRun {
    /// The simulator's summary (events, end time, peak queue depth).
    pub summary: RunSummary,
    /// Deterministic trajectory encoding (scenario-specific; includes a
    /// digest of the full metric series, not just aggregates).
    pub trajectory: String,
}

/// One row of the declarative job matrix: a scenario constructor and the
/// seeds to run it under. Parameter overrides are baked into the closure
/// (each variant of a scenario is its own entry with its own label).
pub struct MatrixEntry {
    /// Scenario name (`fig2a`, `fig2c`, `fleet`, …).
    pub scenario: &'static str,
    /// Parameter-override label (`refresh`, `kernel`, `giveup15`, …);
    /// empty when the scenario has a single configuration.
    pub variant: &'static str,
    /// Seeds to run, one job per seed.
    pub seeds: Vec<u64>,
    /// Human-readable workload description, for reports.
    pub workload: String,
    /// Scenario constructor: builds the world for one seed **on the worker
    /// thread** and runs it.
    pub build: Box<dyn Fn(u64) -> ScenarioRun + Send + Sync>,
}

impl MatrixEntry {
    /// Convenience constructor.
    pub fn new(
        scenario: &'static str,
        variant: &'static str,
        seeds: Vec<u64>,
        build: impl Fn(u64) -> ScenarioRun + Send + Sync + 'static,
    ) -> Self {
        MatrixEntry {
            scenario,
            variant,
            seeds,
            workload: String::new(),
            build: Box::new(build),
        }
    }

    /// Attach a workload description.
    pub fn workload(mut self, workload: String) -> Self {
        self.workload = workload;
        self
    }
}

/// One completed matrix cell, in stable `(entry, seed)` order.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepResult {
    /// Scenario name of the owning entry.
    pub scenario: &'static str,
    /// Variant label of the owning entry.
    pub variant: &'static str,
    /// The seed this cell ran under.
    pub seed: u64,
    /// The deterministic scenario output.
    pub run: ScenarioRun,
    /// Wall-clock seconds this cell took on its worker.
    pub wall_s: f64,
    /// Heap allocations during the cell (meaningful at `--jobs 1`, where
    /// the process-wide counter is not shared with concurrent cells).
    pub allocs: u64,
}

/// A declarative scenario×seed matrix.
pub struct Matrix {
    /// The rows; expansion and result order follow insertion order.
    pub entries: Vec<MatrixEntry>,
}

impl Matrix {
    /// Total number of jobs the matrix expands to.
    pub fn len(&self) -> usize {
        self.entries.iter().map(|e| e.seeds.len()).sum()
    }

    /// True when no entry has any seed.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Execute the matrix on `workers` threads. Results are in stable
    /// `(entry index, seed index)` order — independent of worker count and
    /// completion order.
    pub fn run(&self, workers: usize) -> Vec<SweepResult> {
        let mut jobs: Vec<JobFn<'_, SweepResult>> = Vec::with_capacity(self.len());
        for entry in &self.entries {
            for &seed in &entry.seeds {
                let build = &entry.build;
                let (scenario, variant) = (entry.scenario, entry.variant);
                jobs.push(Box::new(move || {
                    let allocs0 = count_alloc::allocs();
                    let t0 = Instant::now();
                    let run = build(seed);
                    let wall_s = t0.elapsed().as_secs_f64();
                    let allocs = count_alloc::allocs().saturating_sub(allocs0);
                    SweepResult {
                        scenario,
                        variant,
                        seed,
                        run,
                        wall_s,
                        allocs,
                    }
                }));
            }
        }
        run_jobs(jobs, workers)
    }
}

/// Do two sweep passes agree bit-for-bit? Compares everything except the
/// wall-clock and allocation measurements (which legitimately vary).
pub fn parity(a: &[SweepResult], b: &[SweepResult]) -> bool {
    a.len() == b.len()
        && a.iter().zip(b).all(|(x, y)| {
            x.scenario == y.scenario
                && x.variant == y.variant
                && x.seed == y.seed
                // Full structural equality: trajectory string plus every
                // RunSummary field (events, end time, stop reason, peak).
                && x.run == y.run
        })
}

/// FNV-1a over raw bytes — used by scenarios to fold a full metric series
/// into the trajectory string, so parity checks cover every sample, not
/// just aggregates.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Digest a series of `f64` samples (bit-exact, order-sensitive).
pub fn digest_f64s(xs: &[f64]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for x in xs {
        for b in x.to_bits().to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;
    use std::time::Duration;

    #[test]
    fn results_come_back_in_job_order_not_completion_order() {
        // Job 0 sleeps long enough that, with 2+ workers, jobs 1..4 finish
        // first. The result vector must still lead with job 0's output.
        let finished = std::sync::Arc::new(AtomicU64::new(0));
        let jobs: Vec<JobFn<'static, (usize, u64)>> = (0..5)
            .map(|i| {
                let finished = std::sync::Arc::clone(&finished);
                let f: JobFn<'static, (usize, u64)> = Box::new(move || {
                    if i == 0 {
                        std::thread::sleep(Duration::from_millis(120));
                    }
                    let rank = finished.fetch_add(1, Ordering::SeqCst);
                    (i, rank)
                });
                f
            })
            .collect();
        let out = run_jobs(jobs, 2);
        let ids: Vec<usize> = out.iter().map(|(i, _)| *i).collect();
        assert_eq!(ids, vec![0, 1, 2, 3, 4], "stable job order");
        // Sanity: the sleeper did not finish first, i.e. the stable order
        // was *not* simply completion order.
        assert!(
            out[0].1 > 0,
            "job 0 should complete after at least one other job (completion ranks: {out:?})"
        );
    }

    #[test]
    fn worker_count_does_not_change_results() {
        let mk = || -> Vec<JobFn<'static, u64>> {
            (0..16)
                .map(|i| {
                    let f: JobFn<'static, u64> = Box::new(move || {
                        // Deterministic per-job computation.
                        let mut x = i as u64 + 1;
                        for _ in 0..1000 {
                            x = x
                                .wrapping_mul(6364136223846793005)
                                .wrapping_add(1442695040888963407);
                        }
                        x
                    });
                    f
                })
                .collect()
        };
        let seq = run_jobs(mk(), 1);
        let par4 = run_jobs(mk(), 4);
        let par9 = run_jobs(mk(), 9);
        assert_eq!(seq, par4);
        assert_eq!(seq, par9);
    }

    #[test]
    fn more_workers_than_jobs_is_fine() {
        let jobs: Vec<JobFn<'static, usize>> = (0..3usize)
            .map(|i| Box::new(move || i) as JobFn<'static, usize>)
            .collect();
        assert_eq!(run_jobs(jobs, 64), vec![0, 1, 2]);
        assert_eq!(
            run_jobs(Vec::<JobFn<'static, usize>>::new(), 4),
            Vec::<usize>::new()
        );
    }

    #[test]
    fn matrix_expands_in_stable_order() {
        let m = Matrix {
            entries: vec![
                MatrixEntry::new("a", "x", vec![10, 11], |seed| ScenarioRun {
                    summary: RunSummary {
                        reason: smapp_sim::StopReason::Idle,
                        ended_at: smapp_sim::SimTime::from_millis(seed),
                        events: seed,
                        peak_queue: 1,
                    },
                    trajectory: format!("seed={seed}"),
                }),
                MatrixEntry::new("b", "", vec![7], |seed| ScenarioRun {
                    summary: RunSummary {
                        reason: smapp_sim::StopReason::Idle,
                        ended_at: smapp_sim::SimTime::from_millis(seed),
                        events: seed,
                        peak_queue: 2,
                    },
                    trajectory: format!("seed={seed}"),
                }),
            ],
        };
        assert_eq!(m.len(), 3);
        let r1 = m.run(1);
        let r4 = m.run(4);
        let keys: Vec<_> = r1.iter().map(|r| (r.scenario, r.variant, r.seed)).collect();
        assert_eq!(keys, vec![("a", "x", 10), ("a", "x", 11), ("b", "", 7)]);
        assert!(parity(&r1, &r4), "jobs=1 and jobs=4 must agree");
    }

    #[test]
    fn digests_are_order_sensitive_and_stable() {
        assert_eq!(fnv1a(b"abc"), fnv1a(b"abc"));
        assert_ne!(fnv1a(b"abc"), fnv1a(b"acb"));
        assert_eq!(digest_f64s(&[1.0, 2.0]), digest_f64s(&[1.0, 2.0]));
        assert_ne!(digest_f64s(&[1.0, 2.0]), digest_f64s(&[2.0, 1.0]));
        // Bit-exact: -0.0 and 0.0 differ.
        assert_ne!(digest_f64s(&[0.0]), digest_f64s(&[-0.0]));
    }
}
