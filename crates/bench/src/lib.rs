//! # smapp-bench — the experiment harness
//!
//! Regenerates every figure of the SMAPP paper (the paper has no tables):
//!
//! | Artifact | Scenario | Binary |
//! |---|---|---|
//! | Fig. 2a — backup switchover sequence trace | [`scenarios::fig2a`] | `fig2a` |
//! | Fig. 2b — block-delay CDF, smart stream vs full-mesh | [`scenarios::fig2b`] | `fig2b` |
//! | Fig. 2c — 100 MB completion CDF, refresh vs ndiffports | [`scenarios::fig2c`] | `fig2c` |
//! | Fig. 3 — CAPA→JOIN delay CDF, kernel vs userspace | [`scenarios::fig3`] | `fig3` |
//! | §4.2 narrative — 15-doubling give-up baseline | [`scenarios::sec42`] | `sec42_baseline` |
//!
//! Each binary prints plot-ready series (`label\tx\tF(x)` rows) plus a
//! summary block; Criterion micro/macro benchmarks live under `benches/`.
//!
//! Beyond the paper, the scripted network-dynamics scenarios (built on
//! `smapp_sim::dynamics`) open the networks-that-change axis:
//! [`scenarios::handover`] (break-before-make WiFi→LTE mobility),
//! [`scenarios::flap`] (a periodically failing ECMP bottleneck routed
//! around by the refresh controller) and [`scenarios::middlebox`] (an
//! MPTCP-option-stripping hop forcing graceful plain-TCP fallback) —
//! plus the many-client [`scenarios::fleet`] workload and the
//! heavy-tailed [`scenarios::cdn`] traffic mix (bounded-Pareto sizes,
//! wavy-Poisson arrivals; [`traffic`]).
//!
//! Every run executes under the protocol-invariant oracle
//! (`smapp_sim::Oracle` + the `smapp-mptcp` end-host taps, concluded by
//! `smapp_pm::verify`), and the [`fuzz`] module turns that oracle into a
//! specification to fuzz against: seed-derived topologies, dynamics
//! scripts, adversarial middleboxes (NAT seq rewriting, segment
//! split/coalesce, ACK thinning, SYN/`MP_JOIN` floods), traffic mixes
//! and controller mixes, **coverage-guided mutation** over a 256-bit
//! feature bitmap (`fuzz --mutate`, the CI fuzz-mutate job), and
//! failing cases shrunk to a minimal dynamics subset and reported as
//! replayable seeds or full case literals (`fuzz` binary; fixed corpus
//! in `FUZZ_CORPUS.txt`).
//!
//! The `perf_report` binary ([`perf`]) drives the full scenario×seed
//! matrix — every paper artifact above plus the beyond-paper workloads —
//! through the deterministic multi-core [`sweep`] engine (`--jobs N`),
//! measures wall time, events/sec, peak event-queue depth and
//! allocations/event ([`count_alloc`]), writes `BENCH_PR9.json`, and
//! verifies both that parallel execution reproduces the sequential
//! trajectories bit-for-bit and that the fig2c per-seed trajectory is
//! identical to the recorded `524cdc6` baseline. The `perf_gate` binary
//! ([`gate`]) re-checks those invariants (plus scenario coverage and a
//! generous throughput floor) over the CI smoke report and fails the
//! build on regression.

#![warn(missing_docs)]

pub mod count_alloc;
pub mod fuzz;
pub mod gate;
pub mod perf;
pub mod pms;
pub mod scenarios;
pub mod stats;
pub mod sweep;
pub mod trace;
pub mod traffic;

pub use stats::Cdf;
