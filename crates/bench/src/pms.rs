//! Extra path managers used only by the experiment harness.

use smapp_mptcp::{PathManagerHook, PmAction, PmActions, PmEvent, StackView};
use smapp_sim::Addr;

/// The pre-SMAPP baseline for §4.2: establish a subflow over the backup
/// interface immediately, flagged backup (RFC 6824 semantics). The
/// scheduler then ignores it until the primary subflow *dies* — which,
/// with the default Linux give-up of 15 RTO doublings, takes on the order
/// of twelve minutes. (The harness reads the actual switch instant from
/// the packet trace.)
#[derive(Debug)]
pub struct BackupFlagPm {
    /// The backup interface's address.
    pub backup_src: Addr,
    /// Subflows opened (diagnostics).
    pub opened: u64,
}

impl BackupFlagPm {
    /// New instance using `backup_src` for the backup subflow.
    pub fn new(backup_src: Addr) -> Self {
        BackupFlagPm {
            backup_src,
            opened: 0,
        }
    }
}

impl PathManagerHook for BackupFlagPm {
    fn on_event(&mut self, ev: &PmEvent, _view: &dyn StackView, actions: &mut PmActions) {
        if let PmEvent::ConnEstablished {
            token,
            tuple,
            is_client: true,
        } = ev
        {
            self.opened += 1;
            actions.push(PmAction::OpenSubflow {
                token: *token,
                src: self.backup_src,
                src_port: 0,
                dst: tuple.dst,
                dst_port: tuple.dst_port,
                backup: true,
            });
        }
    }

    fn name(&self) -> &'static str {
        "backup-flag"
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}
