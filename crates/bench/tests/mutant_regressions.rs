//! Regression pins for bugs found by the coverage-guided mutation engine.
//!
//! Mutated cases are not seed-derivable, so each failing case the engine
//! surfaced is committed here verbatim (the `fuzz --mutate` failure report
//! prints the full `FuzzCase` literal for exactly this purpose).

use smapp_bench::fuzz::{
    run_case_opts, FuzzAction, FuzzCase, FuzzDyn, FuzzOptions, PmMix, Rewrite, Strip, Topo,
};
use smapp_sim::{LinkCfg, SimTime};
use std::time::Duration;

/// Found by a 60 s `fuzz --mutate` run (the CI fuzz-mutate job's exact
/// configuration): with the split rewriter re-segmenting the stream,
/// cumulative ACKs land *mid-segment*, and the partial-ACK trim in
/// `Flight::on_cum_ack` moved the head's offset without touching the
/// stored `SegTag` payload. The next RTO then replayed the *full original
/// payload at the trimmed offset* — shifting the byte stream forward and
/// writing 19 bytes past its end (receiver delivered 88170 bytes of an
/// 88151-byte stream). Fixed in `retransmit_head`, which now skips the
/// acked prefix of the stored payload and advances the DSS mapping to
/// match.
#[test]
fn partial_ack_retransmission_never_shifts_the_stream() {
    let case = FuzzCase {
        seed: 11001988291751153430,
        topo: Topo::TwoPath,
        link_cfgs: vec![
            LinkCfg::mbps_ms(8, 3).queue(59),
            LinkCfg::mbps_ms(18, 27).queue(67),
        ],
        pm: PmMix::FullMesh,
        transfer: 88_151,
        strip: Strip::FromStart,
        rewrite: Rewrite::Split,
        flood: None,
        traffic: None,
        dynamics: Default::default(),
        horizon: SimTime::from_secs(60),
    };
    let out = run_case_opts(&case, &FuzzOptions::default());
    assert!(out.violations.is_empty(), "{:#?}", out.violations);
    assert!(out.delivered >= case.transfer, "full delivery");
}

/// Also found by a 60 s `fuzz --mutate` run: mid-handshake stripping plus
/// 23 % loss. The receiver inferred plain-TCP fallback (no DSS on the
/// first data segment), but the *sender* stayed in MPTCP mode — its RTO
/// queued a connection-level reinjection, and the reinjected bytes went
/// out at fresh subflow offsets the fallback receiver identity-mapped
/// past the end of the stream (235448 bytes delivered of a 231124-byte
/// transfer). Fixed by the sender-side §3.7 inference: a sole subflow
/// whose data is being cumulatively acked by segments carrying no MPTCP
/// options, from a peer that never sent a DSS, falls back too (and drops
/// any queued reinjections).
#[test]
fn stripped_sender_infers_fallback_and_never_reinjects() {
    let case = FuzzCase {
        seed: 14840394600692395291,
        topo: Topo::TwoPath,
        link_cfgs: vec![LinkCfg::mbps_ms(5, 10), LinkCfg::mbps_ms(5, 10)],
        pm: PmMix::Noop,
        transfer: 231_124,
        strip: Strip::MidHandshake,
        rewrite: Rewrite::Off,
        flood: None,
        traffic: None,
        dynamics: vec![
            FuzzDyn {
                at: SimTime::from_millis(5_298),
                link_idx: 1,
                action: FuzzAction::Queue(78),
            },
            FuzzDyn {
                at: SimTime::from_millis(12_116),
                link_idx: 0,
                action: FuzzAction::FlapDown(Duration::from_millis(169)),
            },
            FuzzDyn {
                at: SimTime::from_millis(394),
                link_idx: 0,
                action: FuzzAction::Loss(0.23),
            },
        ],
        horizon: SimTime::from_secs(60),
    };
    let out = run_case_opts(&case, &FuzzOptions::default());
    assert!(out.violations.is_empty(), "{:#?}", out.violations);
}
