//! Tier-1 allocator-pressure regression test.
//!
//! Installs the counting allocator and re-runs every registered scenario
//! in smoke mode, asserting each one's measured allocations per simulated
//! event stays under the ceiling committed in
//! [`smapp_bench::gate::ALLOC_CEILINGS`]. This is the tier-1 twin of the
//! CI `perf_gate`: the gate reads the numbers out of a release
//! `perf_report`, this test re-measures them from scratch on every
//! `cargo test`. Allocation counts are deterministic per cell (unlike
//! wall-clock), so the assertions hold in debug builds too.
//!
//! The second half proves the protocol-invariant oracle itself is
//! allocation-free on its clean path: a synthetic clean trace stream
//! (valid TCP segments carrying DSS mappings, link-conserving event
//! order) must not allocate at all after the first-packet warmup.
//!
//! Both measurements live in ONE `#[test]` so nothing else in this
//! binary allocates concurrently while a window is being measured.

use bytes::Bytes;
use smapp_bench::count_alloc::{self, CountingAlloc};
use smapp_bench::gate::alloc_ceiling;
use smapp_bench::perf::paper_matrix;
use smapp_sim::trace::{TraceEvent, TraceKind, TraceSink};
use smapp_sim::{Addr, Dir, IfaceId, LinkId, NodeId, Oracle, Packet, SimTime};

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// A valid 36-byte TCP header (offset 9 words) with one kind-30 DSS
/// option carrying a mapping for `payload_len` bytes, followed by that
/// payload. The oracle's clean path walks exactly this shape on every
/// data segment of a real run.
fn dss_data_segment(payload_len: usize) -> Bytes {
    let mut b = vec![0u8; 36 + payload_len];
    b[0..2].copy_from_slice(&4000u16.to_be_bytes()); // src port
    b[2..4].copy_from_slice(&80u16.to_be_bytes()); // dst port
    b[12] = 9 << 4; // data offset: 36 bytes
    b[13] = 0x10; // ACK
                  // Options: kind 30, len 14, subtype DSS (0x2), flags 0x04 (mapping
                  // present, 4-byte DSN) -> DSN(4) SSN(4) len(2); then two NOPs.
    b[20] = 30;
    b[21] = 14;
    b[22] = 0x20;
    b[23] = 0x04;
    b[32..34].copy_from_slice(&(payload_len as u16).to_be_bytes());
    b[34] = 1;
    b[35] = 1;
    Bytes::from(b)
}

/// Drive one packet through the conserving event sequence the simulator
/// emits: Send at the host, Enqueue/TxStart on the link, Deliver at the
/// far end.
fn record_clean_hop(oracle: &mut Oracle, pkt: &Packet, t_us: u64) {
    let kinds = [
        TraceKind::Send {
            node: NodeId(0),
            iface: IfaceId(0),
        },
        TraceKind::Enqueue {
            link: LinkId(0),
            dir: Dir::AtoB,
        },
        TraceKind::TxStart {
            link: LinkId(0),
            dir: Dir::AtoB,
        },
        TraceKind::Deliver {
            link: LinkId(0),
            iface: IfaceId(1),
            node: NodeId(1),
        },
    ];
    for (i, kind) in kinds.into_iter().enumerate() {
        oracle.record(&TraceEvent {
            at: SimTime::from_micros(t_us + i as u64),
            kind,
            pkt,
        });
    }
}

#[test]
fn scenarios_stay_under_committed_alloc_ceilings_and_oracle_is_clean() {
    // ---- Part 1: every registered scenario under its ceiling. ----
    // jobs = 1: the process-wide counter is exact when cells run one at
    // a time.
    let results = paper_matrix(true).run(1);
    assert!(!results.is_empty(), "smoke matrix produced no cells");

    let mut per_scenario: Vec<(&'static str, u64, u64)> = Vec::new();
    for r in &results {
        match per_scenario.iter_mut().find(|(s, _, _)| *s == r.scenario) {
            Some((_, allocs, events)) => {
                *allocs += r.allocs;
                *events += r.run.summary.events;
            }
            None => per_scenario.push((r.scenario, r.allocs, r.run.summary.events)),
        }
    }

    for (scenario, allocs, events) in &per_scenario {
        let ceiling = alloc_ceiling(scenario)
            .unwrap_or_else(|| panic!("scenario {scenario} has no committed ceiling"));
        assert!(*events > 0, "scenario {scenario} processed zero events");
        let per_event = *allocs as f64 / *events as f64;
        assert!(
            per_event <= ceiling,
            "scenario {scenario}: {per_event:.3} allocs/event breaches the \
             committed ceiling {ceiling:.2} ({allocs} allocations over \
             {events} events) — the hot path regressed allocator pressure"
        );
    }

    // ---- Part 2: the oracle's clean path allocates nothing. ----
    let mut oracle = Oracle::new();
    let pkt = Packet::tcp(
        Addr::new(1, 0, 0, 1),
        Addr::new(1, 0, 0, 2),
        dss_data_segment(1000),
    );
    // Warmup: the first hop may grow the per-link ledger.
    record_clean_hop(&mut oracle, &pkt, 0);

    let before = count_alloc::allocs();
    for i in 1..=10_000u64 {
        record_clean_hop(&mut oracle, &pkt, i * 10);
    }
    let after = count_alloc::allocs();
    assert!(
        oracle.is_clean(),
        "synthetic clean stream raised violations: {:?}",
        oracle.violations()
    );
    assert_eq!(
        after - before,
        0,
        "Oracle::record allocated {} times across 40,000 clean-path events \
         — the always-on oracle must be free on the clean path",
        after - before
    );
}
