//! Scenario-coverage guard: every scenario module registered in
//! `src/scenarios/mod.rs` must be listed in `scenarios::ALL` **and**
//! appear in the `perf_report --smoke` matrix, so a new scenario cannot
//! land without being benchmarked (and therefore without being covered by
//! the CI perf/parity gate, which checks the same list against the smoke
//! report).

use smapp_bench::{perf, scenarios};

/// The `pub mod X;` declarations, parsed from the module source itself so
/// the list cannot drift silently.
fn declared_modules() -> Vec<String> {
    include_str!("../src/scenarios/mod.rs")
        .lines()
        .filter_map(|l| {
            l.trim()
                .strip_prefix("pub mod ")
                .and_then(|r| r.strip_suffix(';'))
                .map(str::to_string)
        })
        .collect()
}

#[test]
fn all_list_matches_module_declarations() {
    let mut declared = declared_modules();
    declared.sort();
    let mut listed: Vec<String> = scenarios::ALL.iter().map(|s| s.to_string()).collect();
    listed.sort();
    assert_eq!(
        declared, listed,
        "scenarios::ALL must list exactly the `pub mod` scenario modules"
    );
}

#[test]
fn every_registered_scenario_is_in_the_smoke_matrix() {
    let matrix = perf::paper_matrix(true);
    let in_matrix: Vec<&str> = matrix.entries.iter().map(|e| e.scenario).collect();
    for want in scenarios::ALL {
        assert!(
            in_matrix.contains(want),
            "scenario `{want}` is registered but absent from the smoke \
             matrix — it would silently skip benchmarking (matrix: {in_matrix:?})"
        );
    }
}

#[test]
fn matrix_scenarios_are_all_registered() {
    // The reverse direction: a matrix row must come from a registered
    // module, so ALL stays the single source of truth.
    let matrix = perf::paper_matrix(true);
    for e in &matrix.entries {
        assert!(
            scenarios::ALL.contains(&e.scenario),
            "matrix row `{}` has no registered scenario module",
            e.scenario
        );
    }
}
