//! Tier-1 guard: every registered scenario runs under the
//! protocol-invariant oracle, clean, at one smoke seed each.
//!
//! The scenarios themselves call `smapp_pm::verify::conclude(...)
//! .expect_clean()` after every run, so simply *running* each one at a
//! smoke size exercises the wire oracle (time monotonicity, link
//! conservation, TCP/MPTCP wire sanity) and the end-host taps (stream
//! digests, DSS coverage, buffer/sequence bounds) — a violation panics
//! with the replayable `(scenario, seed, time)` triple.
//!
//! The runner list below is checked against `scenarios::ALL`, so a new
//! scenario cannot register without adding an oracle-clean smoke run here.

use smapp_bench::scenarios::{
    self, cdn, fig2a, fig2b, fig2c, fig3, flap, fleet, fuzz, handover, middlebox, sec42,
};

/// A named smoke run.
type Runner = (&'static str, Box<dyn FnOnce()>);

/// One smoke-size run per scenario, by name. Each closure panics on any
/// oracle violation (via `expect_clean` inside the scenario).
fn runners() -> Vec<Runner> {
    vec![
        (
            "cdn",
            Box::new(|| {
                let p = cdn::Params {
                    max_flows: 10,
                    model: smapp_bench::traffic::TrafficModel {
                        size_max: 120_000,
                        ..smapp_bench::traffic::TrafficModel::cdn()
                    },
                    window: smapp_sim::SimTime::from_secs(6),
                    ..Default::default()
                };
                let (summary, r) = cdn::run_instrumented(&p);
                assert!(summary.events > 0);
                assert!(r.flows > 0 && r.delivered == r.offered);
            }) as Box<dyn FnOnce()>,
        ),
        (
            "fig2a",
            Box::new(|| {
                let p = fig2a::Params {
                    transfer: 200_000,
                    ..Default::default()
                };
                let (summary, _) = fig2a::run_instrumented(&p);
                assert!(summary.events > 0);
            }) as Box<dyn FnOnce()>,
        ),
        (
            "fig2b",
            Box::new(|| {
                let p = fig2b::Params {
                    blocks: 4,
                    ..Default::default()
                };
                let (summary, _) = fig2b::run_one_instrumented(&p, 1);
                assert!(summary.events > 0);
            }),
        ),
        (
            "fig2c",
            Box::new(|| {
                let p = fig2c::Params {
                    transfer: 2_000_000,
                    ..Default::default()
                };
                let (summary, _) = fig2c::run_one_instrumented(&p, 100);
                assert!(summary.events > 0);
            }),
        ),
        (
            "fig3",
            Box::new(|| {
                let p = fig3::Params {
                    gets: 5,
                    ..Default::default()
                };
                let (summary, _, completed) = fig3::run_instrumented(&p);
                assert!(summary.events > 0);
                assert_eq!(completed, 5);
            }),
        ),
        (
            "flap",
            Box::new(|| {
                let p = flap::Params {
                    transfer: 1_000_000,
                    first_down: smapp_sim::SimTime::from_millis(500),
                    flaps: 1,
                    ..Default::default()
                };
                let (summary, _) = flap::run_instrumented(&p);
                assert!(summary.events > 0);
            }),
        ),
        (
            "fleet",
            Box::new(|| {
                let p = fleet::Params {
                    clients: 12,
                    response: 16 * 1024,
                    ..Default::default()
                };
                let (summary, stats) = fleet::run_instrumented(&p, 1);
                assert!(summary.events > 0);
                assert!(stats.completed > 0);
            }),
        ),
        (
            "fuzz",
            Box::new(|| {
                let (summary, out) = fuzz::run_instrumented(fuzz::matrix_seeds(1)[0]);
                assert!(summary.events > 0);
                assert!(out.violations.is_empty(), "{:?}", out.violations);
            }),
        ),
        (
            "handover",
            Box::new(|| {
                let p = handover::Params {
                    transfer: 400_000,
                    ..Default::default()
                };
                let (summary, _) = handover::run_instrumented(&p);
                assert!(summary.events > 0);
            }),
        ),
        (
            "middlebox",
            Box::new(|| {
                let p = middlebox::Params {
                    transfer: 300_000,
                    ..Default::default()
                };
                let (summary, r) = middlebox::run_instrumented(&p);
                assert!(summary.events > 0);
                assert!(r.fallback, "stripping forces fallback");
            }),
        ),
        (
            "sec42",
            Box::new(|| {
                let p = sec42::Params {
                    transfer: 500_000,
                    max_retries: 5,
                    ..Default::default()
                };
                let (summary, _) = sec42::run_instrumented(&p);
                assert!(summary.events > 0);
            }),
        ),
    ]
}

#[test]
fn every_registered_scenario_runs_oracle_clean() {
    let runners = runners();
    let covered: Vec<&str> = runners.iter().map(|(n, _)| *n).collect();
    assert_eq!(
        covered,
        scenarios::ALL.to_vec(),
        "oracle smoke coverage must list exactly scenarios::ALL, in order"
    );
    for (name, run) in runners {
        // Any oracle violation panics inside the scenario with the
        // replayable (scenario, seed, time) triple.
        eprintln!("oracle smoke: {name}");
        run();
    }
}

/// Every member of the adversarial middlebox family — the four rewriters
/// and the three flood mixes — runs oracle-clean with full delivery on a
/// fixed smoke case. The fuzzer explores these knobs randomly; this pins
/// each one individually so a family member cannot silently break (or
/// silently stop rewriting) outside a fuzz run.
#[test]
fn adversarial_middlebox_family_runs_oracle_clean() {
    use smapp_bench::fuzz::{feat, run_case_opts, FuzzCase, FuzzOptions, Rewrite, Strip};
    use smapp_sim::adversary::FloodMix;
    use smapp_sim::LinkCfg;

    let base = || {
        let mut c = FuzzCase::derive_v1(2);
        assert!(matches!(c.topo, smapp_bench::fuzz::Topo::TwoPath));
        c.dynamics.clear();
        c
    };
    let opts = FuzzOptions::default();

    for (rw, bit) in [
        (Rewrite::SeqNat, feat::SEQ_REWRITTEN),
        (Rewrite::Split, feat::SEGMENTS_SPLIT),
        (Rewrite::Coalesce, feat::SEGMENTS_COALESCED),
        (Rewrite::AckThin(3), feat::ACKS_THINNED),
    ] {
        let mut c = base();
        c.rewrite = rw;
        // The rewriters only touch option-free segments, so run them on a
        // stripped (plain-TCP fallback) path — except SeqNat, which
        // rewrites every segment. Coalescing needs a fast access link to
        // beat the router's flush timer.
        if rw != Rewrite::SeqNat {
            c.strip = Strip::FromStart;
        }
        if rw == Rewrite::Coalesce {
            c.link_cfgs = vec![LinkCfg::mbps_ms(100, 5); 2];
        }
        eprintln!("adversarial smoke: {rw:?}");
        let out = run_case_opts(&c, &opts);
        assert!(out.violations.is_empty(), "{rw:?}: {:?}", out.violations);
        assert!(out.delivered >= c.transfer, "{rw:?} delivered everything");
        assert!(out.coverage.get(bit), "{rw:?} actually fired");
    }

    for (mix, bit) in [
        (FloodMix::PlainSyn, feat::FLOOD_PLAIN),
        (FloodMix::MpJoin, feat::FLOOD_MP_JOIN),
        (FloodMix::Mixed, feat::FLOOD_MIXED),
    ] {
        let mut c = base();
        c.flood = Some(smapp_bench::fuzz::FloodPlan {
            mix,
            count: 25,
            interval_ms: 4,
            start_ms: 30,
        });
        eprintln!("adversarial smoke: flood {mix:?}");
        let out = run_case_opts(&c, &opts);
        assert!(out.violations.is_empty(), "{mix:?}: {:?}", out.violations);
        assert!(out.delivered >= c.transfer, "{mix:?} delivered everything");
        assert!(out.coverage.get(feat::FLOOD_SYNS_SENT), "flood ran");
        assert!(out.coverage.get(bit), "{mix:?} mix bit set");
    }
}
