//! Tier-1 determinism gate for the sweep engine: the same scenario×seed
//! matrix run at `--jobs 1` and `--jobs 4` must produce byte-identical
//! per-seed trajectories and identical `RunSummary`s — thread count and
//! completion order must be unobservable in the results.

use smapp_bench::scenarios::{fig2a, fig2c, fig3, flap, fleet, handover, middlebox};
use smapp_bench::sweep::{parity, Matrix, MatrixEntry, ScenarioRun};

/// A miniature but heterogeneous matrix: three paper scenarios, a small
/// fleet, and the three dynamics-scripted scenarios (same seed + script
/// must be bit-identical at any worker count), several seeds each, with
/// deliberately uneven cell runtimes so parallel completion order differs
/// from job order.
fn mini_matrix() -> Matrix {
    let entries = vec![
        MatrixEntry::new("fig2a", "backup", vec![42, 43], |seed| {
            let p = fig2a::Params {
                seed,
                transfer: 300_000,
                ..Default::default()
            };
            let (summary, r) = fig2a::run_instrumented(&p);
            ScenarioRun {
                summary,
                trajectory: format!("rows={} delivered={}", r.rows.len(), r.delivered),
            }
        }),
        MatrixEntry::new("fig2c", "refresh", vec![100, 101], |seed| {
            let p = fig2c::Params {
                transfer: 3_000_000,
                ..Default::default()
            };
            let (summary, used) = fig2c::run_one_instrumented(&p, seed);
            ScenarioRun {
                summary,
                trajectory: format!("end_ns={} paths={used}", summary.ended_at.as_nanos()),
            }
        }),
        MatrixEntry::new("fig3", "kernel", vec![7], |seed| {
            let p = fig3::Params {
                seed,
                gets: 15,
                response: 64 * 1024,
                ..Default::default()
            };
            let (summary, cdf, completed) = fig3::run_instrumented(&p);
            ScenarioRun {
                summary,
                trajectory: format!("joins={} completed={completed}", cdf.len()),
            }
        }),
        MatrixEntry::new("fleet", "mixed", vec![1, 2], |seed| {
            let p = fleet::Params {
                clients: 30,
                gets: 1,
                response: 16 * 1024,
                stagger: std::time::Duration::from_millis(3),
                paths: vec![
                    smapp_sim::LinkCfg::mbps_ms(50, 5),
                    smapp_sim::LinkCfg::mbps_ms(50, 10),
                ],
                ..Default::default()
            };
            let (summary, stats) = fleet::run_instrumented(&p, seed);
            ScenarioRun {
                summary,
                trajectory: format!(
                    "completed={}/{} digest={:016x}",
                    stats.completed, stats.expected, stats.completions_digest
                ),
            }
        }),
        MatrixEntry::new("handover", "backup", vec![21, 22], |seed| {
            let p = handover::Params {
                seed,
                ..Default::default()
            };
            let (summary, r) = handover::run_instrumented(&p);
            ScenarioRun {
                summary,
                trajectory: format!(
                    "rows={} switch={:?} delivered={}",
                    r.rows.len(),
                    r.switch_at,
                    r.delivered
                ),
            }
        }),
        MatrixEntry::new("flap", "refresh", vec![31], |seed| {
            let p = flap::Params {
                seed,
                transfer: 8_000_000,
                flaps: 2,
                ..Default::default()
            };
            let (summary, r) = flap::run_instrumented(&p);
            ScenarioRun {
                summary,
                trajectory: format!(
                    "refreshes={} paths={} delivered={} done={:?}",
                    r.refreshes.len(),
                    r.paths_used,
                    r.delivered,
                    r.completed_at
                ),
            }
        }),
        MatrixEntry::new("middlebox", "strip", vec![41, 42], |seed| {
            let p = middlebox::Params {
                seed,
                transfer: 500_000,
                ..Default::default()
            };
            let (summary, r) = middlebox::run_instrumented(&p);
            ScenarioRun {
                summary,
                trajectory: format!(
                    "fallback={} subflows={} stripped={} delivered={}",
                    r.fallback, r.subflows, r.options_stripped, r.delivered
                ),
            }
        }),
    ];
    Matrix { entries }
}

#[test]
fn jobs1_and_jobs4_agree_bit_for_bit() {
    let matrix = mini_matrix();
    let seq = matrix.run(1);
    let par = matrix.run(4);
    assert_eq!(seq.len(), matrix.len());

    // Engine-level verdict…
    assert!(
        parity(&seq, &par),
        "parallel results diverged from sequential"
    );

    // …and the explicit per-cell statement of what that means: identical
    // RunSummary (events, end time, stop reason, peak queue) and
    // byte-identical trajectory strings, in identical order.
    for (a, b) in seq.iter().zip(&par) {
        assert_eq!(
            (a.scenario, a.variant, a.seed),
            (b.scenario, b.variant, b.seed),
            "result order must be stable"
        );
        assert_eq!(
            a.run.summary, b.run.summary,
            "{}/{} seed {}: RunSummary differs",
            a.scenario, a.variant, a.seed
        );
        assert_eq!(
            a.run.trajectory.as_bytes(),
            b.run.trajectory.as_bytes(),
            "{}/{} seed {}: trajectory differs",
            a.scenario,
            a.variant,
            a.seed
        );
    }

    // Rerunning parallel again is also stable (no hidden global state).
    let par2 = matrix.run(4);
    assert!(parity(&par, &par2));
}
