//! Criterion macro-benchmarks: one group per paper artifact, at reduced
//! scale so `cargo bench` terminates quickly. These measure the wall-clock
//! cost of regenerating each figure (simulation throughput), not the
//! simulated results themselves — those are printed by the `fig*` binaries
//! and recorded in EXPERIMENTS.md.

use criterion::{criterion_group, criterion_main, Criterion};
use smapp_bench::scenarios::{fig2a, fig2b, fig2c, fig3, sec42};

fn bench_fig2a(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig2a");
    g.sample_size(10);
    g.bench_function("backup_switchover_1mb", |b| {
        let mut seed = 0;
        b.iter(|| {
            seed += 1;
            fig2a::run(&fig2a::Params {
                seed,
                transfer: 1_000_000,
                ..Default::default()
            })
        })
    });
    g.finish();
}

fn bench_fig2b(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig2b");
    g.sample_size(10);
    g.bench_function("smart_stream_10_blocks", |b| {
        let mut seed = 0;
        b.iter(|| {
            seed += 1;
            fig2b::run_one(
                &fig2b::Params {
                    blocks: 10,
                    loss: 0.30,
                    manager: fig2b::Manager::SmartStream,
                    ..Default::default()
                },
                seed,
            )
        })
    });
    g.bench_function("fullmesh_10_blocks", |b| {
        let mut seed = 0;
        b.iter(|| {
            seed += 1;
            fig2b::run_one(
                &fig2b::Params {
                    blocks: 10,
                    loss: 0.30,
                    manager: fig2b::Manager::FullMesh,
                    ..Default::default()
                },
                seed,
            )
        })
    });
    g.finish();
}

fn bench_fig2c(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig2c");
    g.sample_size(10);
    for (manager, name) in [
        (fig2c::Manager::Refresh, "refresh_5mb"),
        (fig2c::Manager::Ndiffports, "ndiffports_5mb"),
    ] {
        g.bench_function(name, |b| {
            let mut seed = 1000;
            b.iter(|| {
                seed += 1;
                fig2c::run_one(
                    &fig2c::Params {
                        transfer: 5_000_000,
                        manager,
                        ..Default::default()
                    },
                    seed,
                )
            })
        });
    }
    g.finish();
}

fn bench_fig3(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig3");
    g.sample_size(10);
    for (manager, name) in [
        (fig3::Manager::Kernel, "kernel_20_gets"),
        (fig3::Manager::Userspace, "userspace_20_gets"),
    ] {
        g.bench_function(name, |b| {
            let mut seed = 0;
            b.iter(|| {
                seed += 1;
                fig3::run(&fig3::Params {
                    seed,
                    gets: 20,
                    response: 128 * 1024,
                    manager,
                    ..Default::default()
                })
            })
        });
    }
    g.finish();
}

fn bench_sec42(c: &mut Criterion) {
    let mut g = c.benchmark_group("sec42");
    g.sample_size(10);
    g.bench_function("baseline_6_retries", |b| {
        let mut seed = 0;
        b.iter(|| {
            seed += 1;
            sec42::run(&sec42::Params {
                seed,
                max_retries: 6,
                transfer: 1_000_000,
                ..Default::default()
            })
        })
    });
    g.finish();
}

criterion_group!(
    figures,
    bench_fig2a,
    bench_fig2b,
    bench_fig2c,
    bench_fig3,
    bench_sec42
);
criterion_main!(figures);
