//! Criterion micro-benchmarks of the hot paths: wire codecs, crypto,
//! reassembly, schedulers, netlink framing, ECMP hashing and the raw
//! simulator event loop.

use bytes::Bytes;
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use smapp_mptcp::crypto::{hmac_sha1, sha1};
use smapp_mptcp::options::{Dss, DssMapping, MpOption};
use smapp_mptcp::{LowestRtt, SchedCandidate, Scheduler};
use smapp_netlink::{decode as nl_decode, encode_event};
use smapp_sim::{Addr, FlowKey};
use smapp_tcp::{Reassembly, TcpFlags, TcpHeader, TcpOption, TcpOptions, TcpSegment};
use std::hint::black_box;

fn bench_tcp_codec(c: &mut Criterion) {
    let seg = TcpSegment {
        hdr: TcpHeader {
            src_port: 43210,
            dst_port: 80,
            seq: 0xDEAD_BEEF.into(),
            ack: 0x0102_0304.into(),
            flags: TcpFlags::ACK,
            window: 65535,
            options: TcpOptions::from([TcpOption::Mptcp(
                MpOption::Dss(Dss {
                    data_ack: Some(123_456_789),
                    mapping: Some(DssMapping {
                        dsn: 987_654_321,
                        ssn: 42,
                        len: 1400,
                    }),
                    data_fin: false,
                })
                .encode(),
            )]),
        },
        payload: Bytes::from(vec![0xA5u8; 1400]),
    };
    let wire = seg.encode().unwrap();
    let mut g = c.benchmark_group("tcp_codec");
    g.throughput(Throughput::Bytes(wire.len() as u64));
    g.bench_function("encode_1400b_dss", |b| {
        b.iter(|| black_box(&seg).encode().unwrap())
    });
    g.bench_function("decode_1400b_dss", |b| {
        b.iter(|| TcpSegment::decode(black_box(&wire)).unwrap())
    });
    g.finish();
}

fn bench_crypto(c: &mut Criterion) {
    let mut g = c.benchmark_group("crypto");
    let key = [0xABu8; 8];
    g.bench_function("sha1_8b_token_derivation", |b| {
        b.iter(|| sha1(black_box(&key)))
    });
    let msg = [0u8; 64];
    g.bench_function("hmac_sha1_join_auth", |b| {
        b.iter(|| hmac_sha1(black_box(&key), black_box(&msg)))
    });
    g.finish();
}

fn bench_reassembly(c: &mut Criterion) {
    let mut g = c.benchmark_group("reassembly");
    g.bench_function("in_order_1000x1400", |b| {
        let chunk = Bytes::from(vec![0u8; 1400]);
        b.iter(|| {
            let mut r = Reassembly::new();
            for i in 0..1000u64 {
                r.insert(i * 1400, chunk.clone());
                black_box(r.pop_ready());
            }
        })
    });
    g.bench_function("reverse_order_200x1400", |b| {
        let chunk = Bytes::from(vec![0u8; 1400]);
        b.iter(|| {
            let mut r = Reassembly::new();
            for i in (0..200u64).rev() {
                r.insert(i * 1400, chunk.clone());
            }
            black_box(r.pop_ready());
        })
    });
    g.finish();
}

fn bench_scheduler(c: &mut Criterion) {
    let cands: Vec<SchedCandidate> = (0..8)
        .map(|i| SchedCandidate {
            id: i,
            srtt: Some(std::time::Duration::from_millis(10 + i as u64 * 7)),
            cwnd_space: 14_000,
            in_flight: 1400,
            backup: false,
        })
        .collect();
    c.bench_function("scheduler_lowest_rtt_8_subflows", |b| {
        let mut s = LowestRtt;
        b.iter(|| s.select(black_box(&cands)))
    });
}

fn bench_netlink(c: &mut Criterion) {
    let ev = smapp_mptcp::PmEvent::SubflowEstablished {
        token: 0xDEAD_BEEF,
        id: 3,
        tuple: smapp_mptcp::FourTuple {
            src: Addr::new(10, 0, 1, 1),
            src_port: 43210,
            dst: Addr::new(10, 0, 9, 1),
            dst_port: 80,
        },
        backup: false,
        initiated_here: true,
    };
    let frame = encode_event(&ev);
    let mut g = c.benchmark_group("netlink");
    g.bench_function("encode_sub_estab_event", |b| {
        b.iter(|| encode_event(black_box(&ev)))
    });
    g.bench_function("decode_sub_estab_event", |b| {
        b.iter(|| nl_decode(black_box(&frame)).unwrap())
    });
    g.finish();
}

fn bench_ecmp_hash(c: &mut Criterion) {
    let key = FlowKey {
        src: Addr::new(10, 0, 1, 1),
        dst: Addr::new(10, 0, 9, 1),
        src_port: 43210,
        dst_port: 80,
        proto: 6,
    };
    c.bench_function("ecmp_hash", |b| b.iter(|| black_box(&key).ecmp_hash(7)));
}

fn bench_simulator(c: &mut Criterion) {
    use smapp_mptcp::apps::{BulkSender, Sink};
    use smapp_mptcp::StackConfig;
    use smapp_pm::topo::{self, SERVER_ADDR};
    use smapp_pm::Host;
    use smapp_sim::{LinkCfg, SimTime};
    let mut g = c.benchmark_group("simulator");
    g.sample_size(10);
    g.throughput(Throughput::Bytes(1_000_000));
    g.bench_function("bulk_1mb_end_to_end", |b| {
        let mut seed = 0;
        b.iter(|| {
            seed += 1;
            let mut client = Host::new("client", StackConfig::default());
            client.connect_at(
                SimTime::from_millis(1),
                None,
                SERVER_ADDR,
                80,
                Box::new(
                    BulkSender::new(1_000_000)
                        .close_when_done()
                        .stop_sim_when_acked(),
                ),
            );
            let mut server = Host::new("server", StackConfig::default());
            server.listen(
                80,
                Box::new(|| {
                    Box::new(Sink {
                        close_on_eof: true,
                        ..Default::default()
                    })
                }),
            );
            let net = topo::two_path(
                seed,
                client,
                server,
                LinkCfg::mbps_ms(100, 5),
                LinkCfg::mbps_ms(100, 5),
            );
            let mut sim = net.sim;
            sim.run_until(SimTime::from_secs(30))
        })
    });
    g.finish();
}

criterion_group!(
    micro,
    bench_tcp_codec,
    bench_crypto,
    bench_reassembly,
    bench_scheduler,
    bench_netlink,
    bench_ecmp_hash,
    bench_simulator
);
criterion_main!(micro);
