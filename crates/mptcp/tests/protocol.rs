//! Protocol-level integration tests: multiple subflows, backup semantics,
//! reinjection, break-before-make, address signalling, fallback.
//!
//! These drive two full stacks through the in-memory harness, applying
//! path-manager actions directly (the real path managers live in
//! `smapp-pm`; the SMAPP controllers in `smapp`).

use std::time::Duration;

use smapp_mptcp::apps::{BulkSender, Sink};
use smapp_mptcp::harness::{Harness, Side};
use smapp_mptcp::{
    ConnState, NullApp, PmAction, PmEvent, RecordingPm, SfState, StackConfig, SubflowError,
};
use smapp_sim::{Addr, SimTime};

const A1: Addr = Addr::new(10, 0, 0, 1);
const A2: Addr = Addr::new(10, 0, 2, 1);
const B1: Addr = Addr::new(10, 0, 1, 1);
const B2: Addr = Addr::new(10, 0, 3, 1);

fn closing_sink() -> Box<dyn smapp_mptcp::App> {
    Box::new(Sink {
        close_on_eof: true,
        ..Default::default()
    })
}

fn two_addr_harness(seed: u64) -> Harness {
    let mut h = Harness::new(seed, Duration::from_millis(10), vec![A1, A2], vec![B1]);
    h.b.listen(80, Box::new(|| closing_sink()));
    h
}

#[test]
fn mp_join_adds_second_subflow() {
    let mut h = two_addr_harness(1);
    let token = h.connect(Side::A, 80, Box::new(NullApp)).unwrap();
    h.run_until(SimTime::from_millis(100));

    assert!(h.apply(
        Side::A,
        &PmAction::OpenSubflow {
            token,
            src: A2,
            src_port: 0,
            dst: B1,
            dst_port: 80,
            backup: false,
        },
    ));
    h.run_until(SimTime::from_millis(300));

    let conn = h.a.conn_by_token(token).unwrap();
    assert_eq!(conn.live_subflow_ids(), vec![0, 1]);
    assert_eq!(conn.subflow(1).unwrap().state, SfState::Established);
    // Server sees two subflows on its (single) connection as well.
    let sconn = h.b.connections().next().unwrap();
    assert_eq!(sconn.live_subflow_ids().len(), 2);
    // Join handshake authenticated: the subflow's tuple uses A2.
    assert_eq!(conn.subflow(1).unwrap().tuple.src, A2);
}

#[test]
fn join_with_bad_token_is_refused() {
    let mut h = two_addr_harness(2);
    let token = h.connect(Side::A, 80, Box::new(NullApp)).unwrap();
    h.run_until(SimTime::from_millis(100));
    // Claim a bogus remote: open toward a port with no matching token by
    // connecting to the right port but corrupting is impossible from the
    // public API — instead verify that a second *connection's* join stays
    // separate: open a subflow on a dead token.
    assert!(!h.apply(
        Side::A,
        &PmAction::OpenSubflow {
            token: token.wrapping_add(1),
            src: A2,
            src_port: 0,
            dst: B1,
            dst_port: 80,
            backup: false,
        },
    ));
}

#[test]
fn round_robin_spreads_data_over_subflows() {
    let mut h = two_addr_harness(3);
    h.a = {
        let mut s = smapp_mptcp::HostStack::new(StackConfig {
            scheduler: "round-robin",
            ..Default::default()
        });
        s.set_local_addr(A1, true);
        s.set_local_addr(A2, true);
        s
    };
    let token = h
        .connect(
            Side::A,
            80,
            Box::new(BulkSender::new(2_000_000).close_when_done()),
        )
        .unwrap();
    h.run_until(SimTime::from_millis(50));
    h.apply(
        Side::A,
        &PmAction::OpenSubflow {
            token,
            src: A2,
            src_port: 0,
            dst: B1,
            dst_port: 80,
            backup: false,
        },
    );
    h.run_until(SimTime::from_secs(60));
    let conn = h.a.conn_by_token(token).unwrap();
    let s0 = conn.subflow_info(0).unwrap();
    let s1 = conn.subflow_info(1).unwrap();
    assert!(s0.bytes_acked > 100_000, "subflow 0 carried data: {s0:?}");
    assert!(s1.bytes_acked > 100_000, "subflow 1 carried data: {s1:?}");
    let sink_bytes =
        h.b.connections()
            .next()
            .unwrap()
            .app()
            .unwrap()
            .as_any()
            .downcast_ref::<Sink>()
            .unwrap()
            .received;
    assert_eq!(sink_bytes, 2_000_000);
}

#[test]
fn backup_subflow_idle_until_primary_dies() {
    let mut h = two_addr_harness(4);
    h.rate_a2b = Some(10_000_000);
    h.rate_b2a = Some(10_000_000);
    let token = h
        .connect(
            Side::A,
            80,
            Box::new(BulkSender::new(3_000_000).close_when_done()),
        )
        .unwrap();
    h.run_until(SimTime::from_millis(50));
    h.apply(
        Side::A,
        &PmAction::OpenSubflow {
            token,
            src: A2,
            src_port: 0,
            dst: B1,
            dst_port: 80,
            backup: true,
        },
    );
    h.run_until(SimTime::from_millis(400));
    {
        let conn = h.a.conn_by_token(token).unwrap();
        let backup = conn.subflow_info(1).unwrap();
        assert!(backup.backup);
        assert_eq!(
            backup.bytes_acked, 0,
            "backup must not carry data while the primary lives"
        );
    }
    // Kill the primary with an RST-style close.
    h.apply(
        Side::A,
        &PmAction::CloseSubflow {
            token,
            id: 0,
            reset: true,
        },
    );
    h.run_until(SimTime::from_secs(120));
    let conn = h.a.conn_by_token(token).unwrap();
    let backup = conn.subflow_info(1).unwrap();
    assert!(
        backup.bytes_acked > 0,
        "backup takes over after the primary dies"
    );
    let sink_bytes =
        h.b.connections()
            .next()
            .unwrap()
            .app()
            .unwrap()
            .as_any()
            .downcast_ref::<Sink>()
            .unwrap()
            .received;
    assert_eq!(sink_bytes, 3_000_000, "no data lost across the switchover");
}

#[test]
fn blackhole_triggers_rto_reinjection() {
    // Two subflows; a loss window destroys in-flight data. Each RTO makes
    // the victim's in-flight meta ranges eligible for reinjection (while
    // the subflow keeps retransmitting them itself) - the paper's §4.3
    // mechanism. After the network heals the transfer completes and the
    // reinjection counter shows connection-level recovery happened.
    let mut h = two_addr_harness(5);
    h.rate_a2b = Some(10_000_000);
    h.rate_b2a = Some(10_000_000);
    let token = h
        .connect(
            Side::A,
            80,
            Box::new(BulkSender::new(2_000_000).close_when_done()),
        )
        .unwrap();
    h.run_until(SimTime::from_millis(50));
    h.apply(
        Side::A,
        &PmAction::OpenSubflow {
            token,
            src: A2,
            src_port: 0,
            dst: B1,
            dst_port: 80,
            backup: false,
        },
    );
    // Let data flow on both, then blackhole for one second.
    h.run_until(SimTime::from_millis(400));
    h.loss_a2b = 1.0;
    h.loss_b2a = 1.0;
    h.run_until(SimTime::from_millis(1400));
    h.loss_a2b = 0.0;
    h.loss_b2a = 0.0;
    h.run_until(SimTime::from_secs(120));
    let conn = h.a.conn_by_token(token).unwrap();
    assert!(
        conn.stats.reinjections > 0,
        "lost in-flight data must be reinjected at the connection level"
    );
    let sink_bytes =
        h.b.connections()
            .next()
            .unwrap()
            .app()
            .unwrap()
            .as_any()
            .downcast_ref::<Sink>()
            .unwrap()
            .received;
    assert_eq!(sink_bytes, 2_000_000);
}

#[test]
fn rto_exhaustion_fires_timeout_events_then_kills() {
    let mut h = two_addr_harness(6);
    // Short give-up for test speed: 5 doublings.
    h.a = {
        let mut cfg = StackConfig::default();
        cfg.rto.max_retries = 5;
        let mut s = smapp_mptcp::HostStack::new(cfg);
        s.set_local_addr(A1, true);
        s.set_local_addr(A2, true);
        s
    };
    h.pm_a = Box::new(RecordingPm::default());
    h.rate_a2b = Some(10_000_000);
    h.rate_b2a = Some(10_000_000);
    let token = h
        .connect(Side::A, 80, Box::new(BulkSender::new(5_000_000)))
        .unwrap();
    h.run_until(SimTime::from_millis(500));
    // Blackhole both directions: every retransmission is lost.
    h.loss_a2b = 1.0;
    h.loss_b2a = 1.0;
    h.run_until(SimTime::from_secs(120));
    let pm = h.pm_a.as_any_mut().downcast_mut::<RecordingPm>().unwrap();
    let timeouts = pm.count(|e| matches!(e, PmEvent::RtoExpired { .. }));
    assert!(
        timeouts >= 4,
        "each expiry raises the paper's `timeout` event (got {timeouts})"
    );
    // Timer values grow (exponential backoff visible to the controller).
    let rtos: Vec<Duration> = pm
        .events
        .iter()
        .filter_map(|e| match e {
            PmEvent::RtoExpired { current_rto, .. } => Some(*current_rto),
            _ => None,
        })
        .collect();
    assert!(rtos.windows(2).all(|w| w[1] >= w[0]));
    assert_eq!(
        pm.count(|e| matches!(
            e,
            PmEvent::SubflowClosed {
                error: SubflowError::Timeout,
                ..
            }
        )),
        1,
        "subflow killed after max_retries"
    );
    // The connection survives with zero subflows (break-before-make base).
    let conn = h.a.conn_by_token(token).unwrap();
    assert_eq!(conn.state, ConnState::Established);
    assert!(conn.live_subflow_ids().is_empty());
}

#[test]
fn break_before_make_resumes_on_new_subflow() {
    let mut h = two_addr_harness(7);
    h.a = {
        let mut cfg = StackConfig::default();
        cfg.rto.max_retries = 4;
        let mut s = smapp_mptcp::HostStack::new(cfg);
        s.set_local_addr(A1, true);
        s.set_local_addr(A2, true);
        s
    };
    h.rate_a2b = Some(10_000_000);
    h.rate_b2a = Some(10_000_000);
    let total = 1_000_000u64;
    let token = h
        .connect(
            Side::A,
            80,
            Box::new(BulkSender::new(total).close_when_done()),
        )
        .unwrap();
    h.run_until(SimTime::from_millis(300));
    // Blackhole until the lone subflow dies.
    h.loss_a2b = 1.0;
    h.loss_b2a = 1.0;
    h.run_until(SimTime::from_secs(60));
    assert!(h
        .a
        .conn_by_token(token)
        .unwrap()
        .live_subflow_ids()
        .is_empty());
    // Network heals; controller opens a fresh subflow from the other addr.
    h.loss_a2b = 0.0;
    h.loss_b2a = 0.0;
    assert!(h.apply(
        Side::A,
        &PmAction::OpenSubflow {
            token,
            src: A2,
            src_port: 0,
            dst: B1,
            dst_port: 80,
            backup: false,
        },
    ));
    h.run_until(SimTime::from_secs(200));
    let sink_bytes =
        h.b.connections()
            .next()
            .unwrap()
            .app()
            .unwrap()
            .as_any()
            .downcast_ref::<Sink>()
            .unwrap()
            .received;
    assert_eq!(sink_bytes, total, "transfer completes on the new subflow");
}

#[test]
fn add_addr_learned_and_usable_for_join() {
    let mut h = Harness::new(8, Duration::from_millis(10), vec![A1, A2], vec![B1, B2]);
    h.b.listen(80, Box::new(|| closing_sink()));
    h.pm_a = Box::new(RecordingPm::default());
    let token = h.connect(Side::A, 80, Box::new(NullApp)).unwrap();
    h.run_until(SimTime::from_millis(100));
    // Server announces its second address.
    let server_token = h.b.connections().next().unwrap().token;
    h.apply(
        Side::B,
        &PmAction::AnnounceAddr {
            token: server_token,
            addr_id: 2,
            addr: B2,
        },
    );
    h.run_until(SimTime::from_millis(200));
    {
        let pm = h.pm_a.as_any_mut().downcast_mut::<RecordingPm>().unwrap();
        assert_eq!(
            pm.count(|e| matches!(
                e,
                PmEvent::AddAddrReceived { addr, .. } if *addr == B2
            )),
            1
        );
    }
    let conn = h.a.conn_by_token(token).unwrap();
    assert!(conn.remote_addrs.iter().any(|(_, a, _)| *a == B2));
    // Join toward the announced address.
    h.apply(
        Side::A,
        &PmAction::OpenSubflow {
            token,
            src: A2,
            src_port: 0,
            dst: B2,
            dst_port: 80,
            backup: false,
        },
    );
    h.run_until(SimTime::from_millis(400));
    let conn = h.a.conn_by_token(token).unwrap();
    assert_eq!(conn.subflow(1).unwrap().state, SfState::Established);
    assert_eq!(conn.subflow(1).unwrap().tuple.dst, B2);
}

#[test]
fn remove_addr_event_reaches_peer_pm() {
    let mut h = Harness::new(9, Duration::from_millis(10), vec![A1], vec![B1, B2]);
    h.b.listen(80, Box::new(|| closing_sink()));
    h.pm_a = Box::new(RecordingPm::default());
    h.connect(Side::A, 80, Box::new(NullApp)).unwrap();
    h.run_until(SimTime::from_millis(100));
    let server_token = h.b.connections().next().unwrap().token;
    h.apply(
        Side::B,
        &PmAction::AnnounceAddr {
            token: server_token,
            addr_id: 2,
            addr: B2,
        },
    );
    h.run_until(SimTime::from_millis(200));
    h.apply(
        Side::B,
        &PmAction::WithdrawAddr {
            token: server_token,
            addr_id: 2,
        },
    );
    h.run_until(SimTime::from_millis(300));
    let pm = h.pm_a.as_any_mut().downcast_mut::<RecordingPm>().unwrap();
    assert_eq!(
        pm.count(|e| matches!(e, PmEvent::RemAddrReceived { addr_id: 2, .. })),
        1
    );
}

#[test]
fn mp_prio_flips_backup_flag_at_peer() {
    let mut h = two_addr_harness(10);
    let token = h.connect(Side::A, 80, Box::new(NullApp)).unwrap();
    h.run_until(SimTime::from_millis(100));
    h.apply(
        Side::A,
        &PmAction::SetBackup {
            token,
            id: 0,
            backup: true,
        },
    );
    h.run_until(SimTime::from_millis(200));
    let sconn = h.b.connections().next().unwrap();
    assert!(
        sconn.subflow(0).unwrap().backup,
        "MP_PRIO must flip the peer's view"
    );
    assert!(h.a.conn_by_token(token).unwrap().subflow(0).unwrap().backup);
}

#[test]
fn plain_tcp_fallback_when_server_lacks_mptcp() {
    let mut h = Harness::new(11, Duration::from_millis(10), vec![A1], vec![B1]);
    h.b = {
        let mut s = smapp_mptcp::HostStack::new(StackConfig {
            mptcp_enabled: false,
            ..Default::default()
        });
        s.set_local_addr(B1, true);
        s
    };
    h.b.listen(80, Box::new(|| closing_sink()));
    let token = h
        .connect(
            Side::A,
            80,
            Box::new(BulkSender::new(100_000).close_when_done()),
        )
        .unwrap();
    h.run_until(SimTime::from_secs(20));
    let conn = h.a.conn_by_token(token).unwrap();
    assert_eq!(conn.state, ConnState::Closed, "transfer completed");
    assert_eq!(conn.remote_token(), None, "no MPTCP negotiated");
    let sink_bytes =
        h.b.connections()
            .next()
            .unwrap()
            .app()
            .unwrap()
            .as_any()
            .downcast_ref::<Sink>()
            .unwrap()
            .received;
    assert_eq!(sink_bytes, 100_000);
    // A join attempt on a fallback connection must fail.
    assert!(!h.apply(
        Side::A,
        &PmAction::OpenSubflow {
            token,
            src: A1,
            src_port: 0,
            dst: B1,
            dst_port: 80,
            backup: false,
        },
    ));
}

#[test]
fn middlebox_stripping_both_directions_forces_clean_fallback() {
    // An option-normalizing middlebox strips MPTCP options in both
    // directions from the first SYN on: the handshake degrades to plain
    // TCP on both sides and the transfer still completes.
    let mut h = Harness::new(31, Duration::from_millis(10), vec![A1], vec![B1]);
    h.b.listen(80, Box::new(|| closing_sink()));
    h.strip_a2b = true;
    h.strip_b2a = true;
    let token = h
        .connect(
            Side::A,
            80,
            Box::new(BulkSender::new(100_000).close_when_done()),
        )
        .unwrap();
    h.run_until(SimTime::from_secs(20));
    assert!(h.stripped[0] >= 1, "SYN options stripped");
    let conn = h.a.conn_by_token(token).unwrap();
    assert_eq!(conn.state, ConnState::Closed, "transfer completed");
    assert!(conn.is_fallback());
    assert!(
        !conn.stats.fallback_inferred,
        "handshake-level fallback, not data-level inference"
    );
    let sconn = h.b.connections().next().unwrap();
    assert!(sconn.is_fallback());
    let sink = sconn
        .app()
        .unwrap()
        .as_any()
        .downcast_ref::<Sink>()
        .unwrap();
    assert_eq!(sink.received, 100_000);
    // Joins stay refused on a fallback connection.
    assert!(!h.apply(
        Side::A,
        &PmAction::OpenSubflow {
            token,
            src: A1,
            src_port: 0,
            dst: B1,
            dst_port: 80,
            backup: false,
        },
    ));
}

#[test]
fn one_directional_stripping_infers_fallback_from_dss_less_data() {
    // The middlebox strips only B→A: the server's SYN/ACK loses its
    // MP_CAPABLE, so the *client* falls back at handshake time — but the
    // server saw an intact MP_CAPABLE SYN and believes MPTCP was
    // negotiated. The client's first data segment then arrives without a
    // DSS option; without RFC 6824 §3.7 inference the server would drop
    // those bytes as unmapped forever and the transfer would stall.
    let mut h = Harness::new(32, Duration::from_millis(10), vec![A1], vec![B1]);
    h.b.listen(80, Box::new(|| closing_sink()));
    h.strip_b2a = true;
    let token = h
        .connect(
            Side::A,
            80,
            Box::new(BulkSender::new(100_000).close_when_done()),
        )
        .unwrap();
    h.run_until(SimTime::from_secs(30));
    let conn = h.a.conn_by_token(token).unwrap();
    assert!(conn.is_fallback(), "client fell back at the SYN/ACK");
    let sconn = h.b.connections().next().unwrap();
    assert!(
        sconn.is_fallback(),
        "server inferred the fallback from data"
    );
    assert!(
        sconn.stats.fallback_inferred,
        "server-side fallback came from the DSS-less-first-data inference"
    );
    let sink = sconn
        .app()
        .unwrap()
        .as_any()
        .downcast_ref::<Sink>()
        .unwrap();
    assert_eq!(
        sink.received, 100_000,
        "transfer completed despite stripping"
    );
    assert_eq!(conn.state, ConnState::Closed);
}

#[test]
fn subflow_established_events_on_both_sides() {
    let mut h = two_addr_harness(12);
    h.pm_a = Box::new(RecordingPm::default());
    h.pm_b = Box::new(RecordingPm::default());
    let token = h.connect(Side::A, 80, Box::new(NullApp)).unwrap();
    h.run_until(SimTime::from_millis(100));
    h.apply(
        Side::A,
        &PmAction::OpenSubflow {
            token,
            src: A2,
            src_port: 0,
            dst: B1,
            dst_port: 80,
            backup: false,
        },
    );
    h.run_until(SimTime::from_millis(300));
    for (side_pm, initiated) in [(&mut h.pm_a, true), (&mut h.pm_b, false)] {
        let pm = side_pm.as_any_mut().downcast_mut::<RecordingPm>().unwrap();
        assert_eq!(
            pm.count(|e| matches!(e, PmEvent::ConnEstablished { .. })),
            1
        );
        assert_eq!(
            pm.count(
                |e| matches!(e, PmEvent::SubflowEstablished { id: 1, initiated_here, .. }
                    if *initiated_here == initiated)
            ),
            1,
            "join sub_estab event (initiated={initiated})"
        );
    }
}

#[test]
fn heavy_loss_transfer_still_completes_on_two_subflows() {
    let mut h = two_addr_harness(13);
    h.loss_a2b = 0.15;
    h.loss_b2a = 0.15;
    let total = 200_000u64;
    let token = h
        .connect(
            Side::A,
            80,
            Box::new(BulkSender::new(total).close_when_done()),
        )
        .unwrap();
    h.run_until(SimTime::from_millis(500));
    h.apply(
        Side::A,
        &PmAction::OpenSubflow {
            token,
            src: A2,
            src_port: 0,
            dst: B1,
            dst_port: 80,
            backup: false,
        },
    );
    h.run_until(SimTime::from_secs(300));
    let sink_bytes =
        h.b.connections()
            .next()
            .unwrap()
            .app()
            .unwrap()
            .as_any()
            .downcast_ref::<Sink>()
            .unwrap()
            .received;
    assert_eq!(sink_bytes, total, "reliability under 15% loss, 2 subflows");
}
