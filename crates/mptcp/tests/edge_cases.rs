//! Edge-case and failure-injection tests for the MPTCP engine: handshake
//! loss, FASTCLOSE, fallback teardown, redundant scheduling, flow-control
//! limits and congestion-controller coupling.

use std::time::Duration;

use smapp_mptcp::apps::{BulkSender, Sink};
use smapp_mptcp::harness::{Harness, Side};
use smapp_mptcp::{CcAlgo, ConnState, HostStack, NullApp, PmAction, StackConfig};
use smapp_sim::{Addr, SimTime};

const A1: Addr = Addr::new(10, 0, 0, 1);
const A2: Addr = Addr::new(10, 0, 2, 1);
const B1: Addr = Addr::new(10, 0, 1, 1);

fn closing_sink() -> Box<dyn smapp_mptcp::App> {
    Box::new(Sink {
        close_on_eof: true,
        ..Default::default()
    })
}

fn harness_with(seed: u64, cfg_a: StackConfig, cfg_b: StackConfig) -> Harness {
    let mut h = Harness::new(seed, Duration::from_millis(10), vec![A1, A2], vec![B1]);
    h.a = {
        let mut s = HostStack::new(cfg_a);
        s.set_local_addr(A1, true);
        s.set_local_addr(A2, true);
        s
    };
    h.b = {
        let mut s = HostStack::new(cfg_b);
        s.set_local_addr(B1, true);
        s
    };
    h.b.listen(80, Box::new(closing_sink));
    h
}

fn sink_received(h: &Harness) -> u64 {
    h.b.connections()
        .next()
        .and_then(|c| c.app())
        .and_then(|a| a.as_any().downcast_ref::<Sink>())
        .map(|s| s.received)
        .unwrap_or(0)
}

/// The initial SYN is lost repeatedly; the handshake still completes via
/// SYN retransmission with exponential backoff.
#[test]
fn handshake_survives_syn_loss() {
    let mut h = harness_with(1, StackConfig::default(), StackConfig::default());
    // Lose everything for the first 2.5 s: the first SYN (t=0) and the 1 s
    // retransmission die; the 3 s one gets through.
    h.loss_a2b = 1.0;
    let token = h.connect(Side::A, 80, Box::new(NullApp)).unwrap();
    h.run_until(SimTime::from_millis(2500));
    assert_eq!(
        h.a.conn_by_token(token).unwrap().state,
        ConnState::Establishing
    );
    h.loss_a2b = 0.0;
    h.run_until(SimTime::from_secs(10));
    assert_eq!(
        h.a.conn_by_token(token).unwrap().state,
        ConnState::Established,
        "handshake completed after the blackhole lifted"
    );
}

/// SYN retry exhaustion aborts the connection and tells the app.
#[test]
fn handshake_gives_up_after_syn_retries() {
    let cfg = StackConfig {
        syn_retries: 2,
        ..Default::default()
    };
    let mut h = harness_with(2, cfg, StackConfig::default());
    h.loss_a2b = 1.0;
    let token = h.connect(Side::A, 80, Box::new(NullApp)).unwrap();
    h.run_until(SimTime::from_secs(60));
    assert_eq!(h.a.conn_by_token(token).unwrap().state, ConnState::Closed);
}

/// Tiny receive buffer: flow control throttles the sender but every byte
/// still arrives (the advertised-window path works).
#[test]
fn tiny_receive_window_transfer_completes() {
    let cfg_b = StackConfig {
        recv_buf: 8 * 1024, // 8 KB receive buffer
        ..Default::default()
    };
    let mut h = harness_with(3, StackConfig::default(), cfg_b);
    let total = 200_000u64;
    let token = h
        .connect(
            Side::A,
            80,
            Box::new(BulkSender::new(total).close_when_done()),
        )
        .unwrap();
    h.run_until(SimTime::from_secs(60));
    assert_eq!(sink_received(&h), total);
    assert_eq!(h.a.conn_by_token(token).unwrap().state, ConnState::Closed);
}

/// The redundant scheduler duplicates data on every subflow; the receiver
/// still sees the stream exactly once.
#[test]
fn redundant_scheduler_delivers_exactly_once() {
    let cfg = StackConfig {
        scheduler: "redundant",
        ..Default::default()
    };
    let mut h = harness_with(4, cfg, StackConfig::default());
    let total = 300_000u64;
    let token = h
        .connect(
            Side::A,
            80,
            Box::new(BulkSender::new(total).close_when_done()),
        )
        .unwrap();
    h.run_until(SimTime::from_millis(50));
    h.apply(
        Side::A,
        &PmAction::OpenSubflow {
            token,
            src: A2,
            src_port: 0,
            dst: B1,
            dst_port: 80,
            backup: false,
        },
    );
    h.run_until(SimTime::from_secs(60));
    assert_eq!(sink_received(&h), total, "no duplication at the app level");
    let conn = h.a.conn_by_token(token).unwrap();
    assert!(
        conn.stats.reinjections > 0,
        "redundant copies were actually sent"
    );
}

/// Reno (uncoupled) is more aggressive than LIA (coupled) when two
/// subflows share one bottleneck — the RFC 6356 fairness goal.
#[test]
fn lia_is_less_aggressive_than_reno_on_shared_bottleneck() {
    // The harness pipe *is* a shared bottleneck when rate-limited.
    let completion = |cc: CcAlgo| -> SimTime {
        let cfg = StackConfig {
            cc,
            ..Default::default()
        };
        let mut h = harness_with(5, cfg, StackConfig::default());
        h.rate_a2b = Some(10_000_000);
        h.rate_b2a = Some(10_000_000);
        h.loss_a2b = 0.01; // light loss so CA (where coupling acts) matters
        h.loss_b2a = 0.01;
        let token = h
            .connect(
                Side::A,
                80,
                Box::new(BulkSender::new(2_000_000).close_when_done()),
            )
            .unwrap();
        h.run_until(SimTime::from_millis(50));
        h.apply(
            Side::A,
            &PmAction::OpenSubflow {
                token,
                src: A2,
                src_port: 0,
                dst: B1,
                dst_port: 80,
                backup: false,
            },
        );
        h.run_until(SimTime::from_secs(300))
    };
    let reno = completion(CcAlgo::Reno);
    let lia = completion(CcAlgo::Lia);
    // Both finish; LIA must not be *faster* than uncoupled Reno on a
    // shared bottleneck (it deliberately backs off its aggregate rate).
    assert!(
        lia >= reno,
        "coupled LIA ({lia}) must not beat uncoupled Reno ({reno}) on a shared bottleneck"
    );
}

/// A graceful (FIN) PM-requested close drains in-flight data first.
#[test]
fn graceful_pm_close_drains_before_fin() {
    let mut h = harness_with(6, StackConfig::default(), StackConfig::default());
    h.rate_a2b = Some(10_000_000);
    h.rate_b2a = Some(10_000_000);
    let total = 1_000_000u64;
    let token = h
        .connect(
            Side::A,
            80,
            Box::new(BulkSender::new(total).close_when_done()),
        )
        .unwrap();
    h.run_until(SimTime::from_millis(50));
    h.apply(
        Side::A,
        &PmAction::OpenSubflow {
            token,
            src: A2,
            src_port: 0,
            dst: B1,
            dst_port: 80,
            backup: false,
        },
    );
    h.run_until(SimTime::from_millis(300));
    // Gracefully close subflow 0 mid-transfer (no reset).
    h.apply(
        Side::A,
        &PmAction::CloseSubflow {
            token,
            id: 0,
            reset: false,
        },
    );
    h.run_until(SimTime::from_secs(60));
    assert_eq!(sink_received(&h), total, "graceful close loses nothing");
}

/// Duplicate ADD_ADDR announcements are idempotent at the receiver.
#[test]
fn duplicate_add_addr_recorded_once() {
    let mut h = harness_with(7, StackConfig::default(), StackConfig::default());
    let token = h.connect(Side::A, 80, Box::new(NullApp)).unwrap();
    h.run_until(SimTime::from_millis(100));
    let server_token = h.b.connections().next().unwrap().token;
    for _ in 0..3 {
        h.apply(
            Side::B,
            &PmAction::AnnounceAddr {
                token: server_token,
                addr_id: 9,
                addr: Addr::new(10, 0, 3, 1),
            },
        );
        h.run_until(h.now() + Duration::from_millis(100));
    }
    let conn = h.a.conn_by_token(token).unwrap();
    assert_eq!(
        conn.remote_addrs
            .iter()
            .filter(|(id, _, _)| *id == 9)
            .count(),
        1
    );
}

/// Closing a subflow that never existed is rejected without panicking.
#[test]
fn pm_commands_on_missing_targets_are_safe() {
    let mut h = harness_with(8, StackConfig::default(), StackConfig::default());
    let token = h.connect(Side::A, 80, Box::new(NullApp)).unwrap();
    h.run_until(SimTime::from_millis(100));
    // Unknown subflow id: no-op.
    assert!(h.apply(
        Side::A,
        &PmAction::CloseSubflow {
            token,
            id: 77,
            reset: true,
        },
    ));
    // Unknown token: rejected.
    assert!(!h.apply(
        Side::A,
        &PmAction::SetBackup {
            token: token ^ 0xFFFF,
            id: 0,
            backup: true,
        },
    ));
    h.run_until(SimTime::from_secs(1));
    assert_eq!(
        h.a.conn_by_token(token).unwrap().state,
        ConnState::Established
    );
}

/// Opening a subflow from a down interface is refused by the stack.
#[test]
fn open_subflow_from_down_iface_refused() {
    let mut h = harness_with(9, StackConfig::default(), StackConfig::default());
    let token = h.connect(Side::A, 80, Box::new(NullApp)).unwrap();
    h.run_until(SimTime::from_millis(100));
    h.a.set_local_addr(A2, false);
    assert!(!h.apply(
        Side::A,
        &PmAction::OpenSubflow {
            token,
            src: A2,
            src_port: 0,
            dst: B1,
            dst_port: 80,
            backup: false,
        },
    ));
}
