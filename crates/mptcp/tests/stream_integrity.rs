//! Stream integrity: the byte stream delivered to the application is
//! *exactly* the byte stream written, in order, no duplicates, no holes —
//! under loss, multiple subflows, reinjection and subflow death. This is
//! the strongest correctness property of the whole engine, checked with
//! position-dependent payloads (every byte encodes its own stream offset).

use std::time::Duration;

use bytes::Bytes;
use smapp_mptcp::app::{App, AppCtx};
use smapp_mptcp::harness::{Harness, Side};
use smapp_mptcp::PmAction;
use smapp_sim::{Addr, SimTime};

const A1: Addr = Addr::new(10, 0, 0, 1);
const A2: Addr = Addr::new(10, 0, 2, 1);
const B1: Addr = Addr::new(10, 0, 1, 1);

/// The expected byte at stream offset `i`.
fn pattern(i: u64) -> u8 {
    (i % 251) as u8 ^ (i / 251 % 256) as u8
}

/// Writes `total` position-encoded bytes, then closes.
struct PatternSender {
    total: u64,
    written: u64,
}

impl App for PatternSender {
    fn on_established(&mut self, ctx: &mut AppCtx<'_, '_>) {
        self.fill(ctx);
    }
    fn on_send_space(&mut self, ctx: &mut AppCtx<'_, '_>) {
        self.fill(ctx);
    }
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

impl PatternSender {
    fn fill(&mut self, ctx: &mut AppCtx<'_, '_>) {
        while self.written < self.total {
            let want = (self.total - self.written).min(16 * 1024) as usize;
            let chunk: Vec<u8> = (0..want)
                .map(|k| pattern(self.written + k as u64))
                .collect();
            let n = ctx.write(&chunk);
            self.written += n as u64;
            if n < want {
                return;
            }
        }
        ctx.close();
    }
}

/// Verifies every received byte against its expected position value.
#[derive(Default)]
struct PatternChecker {
    received: u64,
    mismatches: u64,
    eof: bool,
}

impl App for PatternChecker {
    fn on_data(&mut self, _ctx: &mut AppCtx<'_, '_>, data: Bytes) {
        for (k, &b) in data.iter().enumerate() {
            if b != pattern(self.received + k as u64) {
                self.mismatches += 1;
            }
        }
        self.received += data.len() as u64;
    }
    fn on_eof(&mut self, ctx: &mut AppCtx<'_, '_>) {
        self.eof = true;
        ctx.close();
    }
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

fn run_scenario(seed: u64, loss: f64, total: u64, second_subflow: bool, blackhole: bool) {
    let mut h = Harness::new(seed, Duration::from_millis(10), vec![A1, A2], vec![B1]);
    h.b.listen(80, Box::new(|| Box::new(PatternChecker::default())));
    h.rate_a2b = Some(10_000_000);
    h.rate_b2a = Some(10_000_000);
    h.loss_a2b = loss;
    h.loss_b2a = loss;
    let token = h
        .connect(Side::A, 80, Box::new(PatternSender { total, written: 0 }))
        .unwrap();
    if second_subflow {
        h.run_until(SimTime::from_millis(100));
        h.apply(
            Side::A,
            &PmAction::OpenSubflow {
                token,
                src: A2,
                src_port: 0,
                dst: B1,
                dst_port: 80,
                backup: false,
            },
        );
    }
    if blackhole {
        // A one-second total outage in the middle of the transfer: RTOs,
        // reinjection, recovery.
        h.run_until(SimTime::from_millis(600));
        h.loss_a2b = 1.0;
        h.loss_b2a = 1.0;
        h.run_until(SimTime::from_millis(1600));
        h.loss_a2b = loss;
        h.loss_b2a = loss;
    }
    h.run_until(SimTime::from_secs(600));

    let checker =
        h.b.connections()
            .next()
            .unwrap()
            .app()
            .unwrap()
            .as_any()
            .downcast_ref::<PatternChecker>()
            .unwrap();
    assert_eq!(
        checker.received, total,
        "seed {seed} loss {loss}: byte count"
    );
    assert_eq!(
        checker.mismatches, 0,
        "seed {seed} loss {loss}: every byte at its exact offset"
    );
    assert!(checker.eof, "seed {seed}: EOF delivered");
}

#[test]
fn clean_single_path() {
    run_scenario(1, 0.0, 500_000, false, false);
}

#[test]
fn lossy_single_path() {
    run_scenario(2, 0.10, 300_000, false, false);
}

#[test]
fn clean_two_paths() {
    run_scenario(3, 0.0, 500_000, true, false);
}

#[test]
fn lossy_two_paths() {
    run_scenario(4, 0.10, 300_000, true, false);
}

#[test]
fn blackhole_recovery_two_paths() {
    run_scenario(5, 0.02, 500_000, true, true);
}

#[test]
fn heavy_loss_two_paths() {
    run_scenario(6, 0.20, 150_000, true, false);
}

/// Property-style sweep: many seeds × loss ratios, smaller transfers.
#[test]
fn integrity_sweep() {
    for seed in 10..20 {
        let loss = (seed % 4) as f64 * 0.05;
        run_scenario(seed, loss, 60_000, seed % 2 == 0, false);
    }
}
