//! Packet schedulers.
//!
//! "The Multipath TCP implementation uses a packet scheduler to decide over
//! which available subflow each data is transmitted. Several schedulers
//! have been implemented and the default one prefers the subflow with the
//! lowest round-trip-time provided that its congestion window is open."
//! (§2 of the paper.) This module implements that default ([`LowestRtt`]),
//! plus round-robin and redundant schedulers as in the Paasch et al.
//! scheduler study the paper cites.
//!
//! Backup semantics (RFC 6824): a subflow flagged backup receives data only
//! while no non-backup subflow is available. The stack applies that filter
//! before consulting the scheduler, so schedulers only rank *eligible*
//! subflows.

use std::time::Duration;

use crate::pm::SubflowId;

/// What a scheduler sees about one eligible subflow.
#[derive(Clone, Copy, Debug)]
pub struct SchedCandidate {
    /// Subflow id.
    pub id: SubflowId,
    /// Smoothed RTT; `None` if no sample yet (brand-new subflow).
    pub srtt: Option<Duration>,
    /// Free congestion-window space in bytes (cwnd − in-flight).
    pub cwnd_space: u64,
    /// Total bytes in flight.
    pub in_flight: u64,
    /// Backup flag (candidates may all be backups when no regular subflow
    /// is alive).
    pub backup: bool,
}

/// A packet scheduler: picks which subflow carries the next segment.
pub trait Scheduler: std::fmt::Debug + Send {
    /// Choose among `candidates` (all established, all with cwnd space).
    /// Returning `None` defers transmission until conditions change.
    fn select(&mut self, candidates: &[SchedCandidate]) -> Option<SubflowId>;

    /// Name for reports ("lowest-rtt", "round-robin", "redundant").
    fn name(&self) -> &'static str;

    /// Redundant schedulers return true: the stack then sends a copy of the
    /// segment on *every* candidate rather than just the selected one.
    fn duplicates(&self) -> bool {
        false
    }
}

/// The Linux default: lowest smoothed RTT wins; unsampled subflows lose to
/// sampled ones (they'll get their chance when the sampled ones fill their
/// windows); ties break by lower id for determinism.
#[derive(Debug, Default, Clone)]
pub struct LowestRtt;

impl Scheduler for LowestRtt {
    fn select(&mut self, candidates: &[SchedCandidate]) -> Option<SubflowId> {
        candidates
            .iter()
            .min_by_key(|c| (c.srtt.unwrap_or(Duration::MAX), c.id))
            .map(|c| c.id)
    }
    fn name(&self) -> &'static str {
        "lowest-rtt"
    }
}

/// Strict rotation over subflows with space.
#[derive(Debug, Default, Clone)]
pub struct RoundRobin {
    last: Option<SubflowId>,
}

impl Scheduler for RoundRobin {
    fn select(&mut self, candidates: &[SchedCandidate]) -> Option<SubflowId> {
        // Allocation-free successor pick: one scan tracking the smallest id
        // overall (wrap-around target) and the smallest id greater than the
        // previous pick — equivalent to sorting and taking the next entry,
        // without building a Vec per scheduling decision.
        let mut first: Option<SubflowId> = None;
        let mut succ: Option<SubflowId> = None;
        for c in candidates {
            if first.is_none_or(|f| c.id < f) {
                first = Some(c.id);
            }
            if let Some(last) = self.last {
                if c.id > last && succ.is_none_or(|s| c.id < s) {
                    succ = Some(c.id);
                }
            }
        }
        let next = succ.or(first)?;
        self.last = Some(next);
        Some(next)
    }
    fn name(&self) -> &'static str {
        "round-robin"
    }
}

/// Send every segment on every available subflow (latency-oriented).
#[derive(Debug, Default, Clone)]
pub struct Redundant;

impl Scheduler for Redundant {
    fn select(&mut self, candidates: &[SchedCandidate]) -> Option<SubflowId> {
        // The primary copy goes to the lowest-RTT subflow; the stack
        // duplicates onto the rest because `duplicates()` is true.
        LowestRtt.select(candidates)
    }
    fn name(&self) -> &'static str {
        "redundant"
    }
    fn duplicates(&self) -> bool {
        true
    }
}

/// Construct a scheduler by name; used by scenario configuration.
pub fn by_name(name: &str) -> Option<Box<dyn Scheduler>> {
    match name {
        "lowest-rtt" => Some(Box::new(LowestRtt)),
        "round-robin" => Some(Box::new(RoundRobin::default())),
        "redundant" => Some(Box::new(Redundant)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cand(id: u8, srtt_ms: Option<u64>, space: u64) -> SchedCandidate {
        SchedCandidate {
            id,
            srtt: srtt_ms.map(Duration::from_millis),
            cwnd_space: space,
            in_flight: 0,
            backup: false,
        }
    }

    #[test]
    fn lowest_rtt_picks_min() {
        let mut s = LowestRtt;
        let picked = s.select(&[cand(0, Some(40), 100), cand(1, Some(10), 100)]);
        assert_eq!(picked, Some(1));
    }

    #[test]
    fn lowest_rtt_unsampled_loses() {
        let mut s = LowestRtt;
        let picked = s.select(&[cand(0, None, 100), cand(1, Some(500), 100)]);
        assert_eq!(picked, Some(1));
    }

    #[test]
    fn lowest_rtt_tie_breaks_by_id() {
        let mut s = LowestRtt;
        let picked = s.select(&[cand(2, Some(10), 100), cand(1, Some(10), 100)]);
        assert_eq!(picked, Some(1));
    }

    #[test]
    fn lowest_rtt_empty() {
        assert_eq!(LowestRtt.select(&[]), None);
    }

    #[test]
    fn round_robin_rotates() {
        let mut s = RoundRobin::default();
        let c = [
            cand(0, Some(10), 1),
            cand(1, Some(10), 1),
            cand(2, Some(10), 1),
        ];
        assert_eq!(s.select(&c), Some(0));
        assert_eq!(s.select(&c), Some(1));
        assert_eq!(s.select(&c), Some(2));
        assert_eq!(s.select(&c), Some(0));
    }

    #[test]
    fn round_robin_skips_missing() {
        let mut s = RoundRobin::default();
        let all = [cand(0, None, 1), cand(1, None, 1), cand(2, None, 1)];
        assert_eq!(s.select(&all), Some(0));
        // Subflow 1 lost its window space; rotation jumps to 2.
        let partial = [cand(0, None, 1), cand(2, None, 1)];
        assert_eq!(s.select(&partial), Some(2));
        assert_eq!(s.select(&partial), Some(0));
    }

    #[test]
    fn redundant_duplicates() {
        let mut s = Redundant;
        assert!(s.duplicates());
        assert_eq!(
            s.select(&[cand(0, Some(99), 1), cand(1, Some(1), 1)]),
            Some(1)
        );
    }

    #[test]
    fn by_name_lookup() {
        assert!(by_name("lowest-rtt").is_some());
        assert!(by_name("round-robin").is_some());
        assert!(by_name("redundant").is_some());
        assert!(by_name("bogus").is_none());
    }
}
