//! Ready-made applications for tests, examples and experiments.
//!
//! * [`BulkSender`] — writes N bytes as fast as backpressure allows
//!   (Fig. 2a backup experiment, Fig. 2c 100 MB transfer).
//! * [`Sink`] — consumes everything, tracking per-block completion times
//!   (the receiving side of every experiment; Fig. 2b measures its block
//!   completions).
//! * [`StreamSender`] — writes one fixed-size block per interval, the
//!   §4.3 streaming workload.
//! * [`GetClient`] / [`GetServer`] — HTTP/1.0-style request/response with
//!   connection chaining, the §4.5 (Fig. 3) workload: 1000 consecutive
//!   GETs of a 512 KB object.

use std::cell::RefCell;
use std::rc::Rc;

use bytes::Bytes;
use smapp_sim::SimTime;

use crate::app::{App, AppCtx};

/// Writes `total` bytes, then (optionally) closes. Tracks when every byte
/// was acknowledged.
#[derive(Debug, Default)]
pub struct BulkSender {
    /// Bytes to send.
    pub total: u64,
    written: u64,
    close_when_done: bool,
    stop_sim_when_acked: bool,
    /// When the connection established.
    pub established_at: Option<SimTime>,
    /// When every byte (and the DATA_FIN, if closing) was acknowledged.
    pub acked_at: Option<SimTime>,
}

impl BulkSender {
    /// Send `total` bytes.
    pub fn new(total: u64) -> Self {
        BulkSender {
            total,
            ..Default::default()
        }
    }

    /// Close the connection after the last byte is written.
    pub fn close_when_done(mut self) -> Self {
        self.close_when_done = true;
        self
    }

    /// Stop the simulation once everything is acknowledged.
    pub fn stop_sim_when_acked(mut self) -> Self {
        self.stop_sim_when_acked = true;
        self
    }

    fn fill(&mut self, ctx: &mut AppCtx<'_, '_>) {
        while self.written < self.total {
            let want = (self.total - self.written).min(64 * 1024) as usize;
            let chunk = vec![0xA5u8; want];
            let n = ctx.write(&chunk);
            self.written += n as u64;
            if n < want {
                return; // buffer full; resume on_send_space
            }
        }
        if self.close_when_done {
            ctx.close();
        }
    }

    fn check_done(&mut self, ctx: &mut AppCtx<'_, '_>) {
        if self.acked_at.is_none() && ctx.bytes_acked() >= self.total && self.total > 0 {
            self.acked_at = Some(ctx.now());
            if self.stop_sim_when_acked {
                ctx.stop_sim();
            }
        }
    }
}

impl App for BulkSender {
    fn on_established(&mut self, ctx: &mut AppCtx<'_, '_>) {
        self.established_at = Some(ctx.now());
        self.fill(ctx);
        self.check_done(ctx);
    }
    fn on_send_space(&mut self, ctx: &mut AppCtx<'_, '_>) {
        self.fill(ctx);
        self.check_done(ctx);
    }
    fn on_data(&mut self, ctx: &mut AppCtx<'_, '_>, _data: Bytes) {
        self.check_done(ctx);
    }
    fn on_eof(&mut self, ctx: &mut AppCtx<'_, '_>) {
        self.check_done(ctx);
    }
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

/// Consumes the incoming stream; optionally tracks completion of
/// fixed-size blocks (for the Fig. 2b CDF).
#[derive(Debug, Default)]
pub struct Sink {
    /// Total bytes received.
    pub received: u64,
    /// When EOF (DATA_FIN) was consumed.
    pub eof_at: Option<SimTime>,
    /// Block size to track, 0 = no tracking.
    pub block_size: u64,
    /// Completion time of each full block, in order.
    pub block_completions: Vec<SimTime>,
    /// Close back (half-close reciprocation) when EOF arrives.
    pub close_on_eof: bool,
    /// Stop the simulation at EOF.
    pub stop_on_eof: bool,
}

impl Sink {
    /// A sink that records completion times of `block_size`-byte blocks.
    pub fn with_blocks(block_size: u64) -> Self {
        Sink {
            block_size,
            ..Default::default()
        }
    }
}

impl App for Sink {
    fn on_data(&mut self, ctx: &mut AppCtx<'_, '_>, data: Bytes) {
        let before = self.received;
        self.received += data.len() as u64;
        if let Some(blocks_before) = before.checked_div(self.block_size) {
            let mut boundary = (blocks_before + 1) * self.block_size;
            while boundary <= self.received {
                self.block_completions.push(ctx.now());
                boundary += self.block_size;
            }
        }
    }
    fn on_eof(&mut self, ctx: &mut AppCtx<'_, '_>) {
        self.eof_at = Some(ctx.now());
        if self.close_on_eof {
            ctx.close();
        }
        if self.stop_on_eof {
            ctx.stop_sim();
        }
    }
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

/// Writes one `block_size` block every `interval`, `blocks` times in total
/// — the §4.3 streaming workload (64 KB every second).
#[derive(Debug)]
pub struct StreamSender {
    /// Block size in bytes.
    pub block_size: u64,
    /// Interval between block starts.
    pub interval: std::time::Duration,
    /// Number of blocks to send.
    pub blocks: u64,
    /// Blocks fully handed to the stack so far.
    pub sent: u64,
    /// Time each block's write began (send deadline base).
    pub block_starts: Vec<SimTime>,
    pending: u64,
    close_when_done: bool,
}

impl StreamSender {
    /// `blocks` blocks of `block_size` bytes, one per `interval`.
    pub fn new(block_size: u64, interval: std::time::Duration, blocks: u64) -> Self {
        StreamSender {
            block_size,
            interval,
            blocks,
            sent: 0,
            block_starts: Vec::new(),
            pending: 0,
            close_when_done: true,
        }
    }

    fn write_pending(&mut self, ctx: &mut AppCtx<'_, '_>) {
        while self.pending > 0 {
            let want = self.pending.min(16 * 1024) as usize;
            let chunk = vec![0x5Au8; want];
            let n = ctx.write(&chunk);
            self.pending -= n as u64;
            if n < want {
                return;
            }
        }
        if self.sent == self.blocks && self.pending == 0 && self.close_when_done {
            ctx.close();
        }
    }

    fn start_block(&mut self, ctx: &mut AppCtx<'_, '_>) {
        if self.sent >= self.blocks {
            return;
        }
        self.sent += 1;
        self.block_starts.push(ctx.now());
        self.pending += self.block_size;
        self.write_pending(ctx);
        if self.sent < self.blocks {
            ctx.set_timer(self.interval, 1);
        }
    }
}

impl App for StreamSender {
    fn on_established(&mut self, ctx: &mut AppCtx<'_, '_>) {
        self.start_block(ctx);
    }
    fn on_app_timer(&mut self, ctx: &mut AppCtx<'_, '_>, _token: u64) {
        self.start_block(ctx);
    }
    fn on_send_space(&mut self, ctx: &mut AppCtx<'_, '_>) {
        self.write_pending(ctx);
    }
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

/// Shared progress of a [`GetClient`] chain.
#[derive(Debug, Default)]
pub struct GetProgress {
    /// Completed request/response cycles.
    pub completed: u32,
    /// Completion time of each cycle.
    pub completions: Vec<SimTime>,
}

/// HTTP/1.0-style client: sends a small request, reads the response until
/// EOF, closes, and opens the next connection — `remaining` times.
pub struct GetClient {
    /// Remaining connections to run after this one.
    pub remaining: u32,
    /// Request size in bytes.
    pub request_size: usize,
    /// Server address for follow-up connections.
    pub dst: smapp_sim::Addr,
    /// Server port.
    pub dst_port: u16,
    /// Shared progress record.
    pub progress: Rc<RefCell<GetProgress>>,
    /// Stop the simulation after the final cycle.
    pub stop_when_done: bool,
}

impl App for GetClient {
    fn on_established(&mut self, ctx: &mut AppCtx<'_, '_>) {
        let req = vec![b'G'; self.request_size];
        ctx.write(&req);
    }
    fn on_eof(&mut self, ctx: &mut AppCtx<'_, '_>) {
        {
            let mut p = self.progress.borrow_mut();
            p.completed += 1;
            p.completions.push(ctx.now());
        }
        ctx.close();
        if self.remaining > 0 {
            ctx.connect(
                self.dst,
                self.dst_port,
                Box::new(GetClient {
                    remaining: self.remaining - 1,
                    request_size: self.request_size,
                    dst: self.dst,
                    dst_port: self.dst_port,
                    progress: Rc::clone(&self.progress),
                    stop_when_done: self.stop_when_done,
                }),
            );
        } else if self.stop_when_done {
            ctx.stop_sim();
        }
    }
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

/// Serves a fixed-size response to any request, then closes its direction
/// (HTTP/1.0 semantics).
#[derive(Debug)]
pub struct GetServer {
    /// Response size in bytes.
    pub response_size: u64,
    written: u64,
    responding: bool,
}

impl GetServer {
    /// Serve `response_size` bytes per request.
    pub fn new(response_size: u64) -> Self {
        GetServer {
            response_size,
            written: 0,
            responding: false,
        }
    }

    fn fill(&mut self, ctx: &mut AppCtx<'_, '_>) {
        if !self.responding {
            return;
        }
        while self.written < self.response_size {
            let want = (self.response_size - self.written).min(64 * 1024) as usize;
            let chunk = vec![0xC3u8; want];
            let n = ctx.write(&chunk);
            self.written += n as u64;
            if n < want {
                return;
            }
        }
        ctx.close();
    }
}

impl App for GetServer {
    fn on_data(&mut self, ctx: &mut AppCtx<'_, '_>, _req: Bytes) {
        if !self.responding {
            self.responding = true;
            self.fill(ctx);
        }
    }
    fn on_send_space(&mut self, ctx: &mut AppCtx<'_, '_>) {
        self.fill(ctx);
    }
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::{Harness, Side};
    use smapp_sim::Addr;
    use std::time::Duration;

    #[test]
    fn bulk_sender_completion_and_block_tracking() {
        let mut h = Harness::new(
            1,
            Duration::from_millis(5),
            vec![Addr::new(10, 0, 0, 1)],
            vec![Addr::new(10, 0, 1, 1)],
        );
        h.b.listen(
            80,
            Box::new(|| {
                Box::new(Sink {
                    close_on_eof: true,
                    ..Sink::with_blocks(64 * 1024)
                })
            }),
        );
        let token = h
            .connect(
                Side::A,
                80,
                Box::new(BulkSender::new(256 * 1024).close_when_done()),
            )
            .unwrap();
        h.run_until(SimTime::from_secs(20));
        let sink =
            h.b.connections()
                .next()
                .unwrap()
                .app()
                .unwrap()
                .as_any()
                .downcast_ref::<Sink>()
                .unwrap();
        assert_eq!(sink.received, 256 * 1024);
        assert_eq!(sink.block_completions.len(), 4);
        assert!(sink.block_completions.windows(2).all(|w| w[0] <= w[1]));
        let bulk =
            h.a.conn_by_token(token)
                .unwrap()
                .app()
                .unwrap()
                .as_any()
                .downcast_ref::<BulkSender>()
                .unwrap();
        assert!(bulk.acked_at.is_some());
    }

    #[test]
    fn stream_sender_paces_blocks() {
        let mut h = Harness::new(
            2,
            Duration::from_millis(5),
            vec![Addr::new(10, 0, 0, 1)],
            vec![Addr::new(10, 0, 1, 1)],
        );
        h.b.listen(80, Box::new(|| Box::new(Sink::with_blocks(64 * 1024))));
        let token = h
            .connect(
                Side::A,
                80,
                Box::new(StreamSender::new(64 * 1024, Duration::from_secs(1), 5)),
            )
            .unwrap();
        h.run_until(SimTime::from_secs(30));
        let app = h.a.conn_by_token(token).unwrap().app().unwrap();
        let s = app.as_any().downcast_ref::<StreamSender>().unwrap();
        assert_eq!(s.sent, 5);
        assert_eq!(s.block_starts.len(), 5);
        // Block starts are 1 s apart.
        for w in s.block_starts.windows(2) {
            assert_eq!((w[1] - w[0]).as_millis(), 1000);
        }
        let sink =
            h.b.connections()
                .next()
                .unwrap()
                .app()
                .unwrap()
                .as_any()
                .downcast_ref::<Sink>()
                .unwrap();
        assert_eq!(sink.received, 5 * 64 * 1024);
        assert_eq!(sink.block_completions.len(), 5);
    }

    #[test]
    fn get_chain_runs_n_cycles() {
        let mut h = Harness::new(
            3,
            Duration::from_millis(2),
            vec![Addr::new(10, 0, 0, 1)],
            vec![Addr::new(10, 0, 1, 1)],
        );
        h.b.listen(80, Box::new(|| Box::new(GetServer::new(100_000))));
        let progress = Rc::new(RefCell::new(GetProgress::default()));
        h.connect(
            Side::A,
            80,
            Box::new(GetClient {
                remaining: 4,
                request_size: 100,
                dst: Addr::new(10, 0, 1, 1),
                dst_port: 80,
                progress: Rc::clone(&progress),
                stop_when_done: false,
            }),
        )
        .unwrap();
        h.run_until(SimTime::from_secs(60));
        assert_eq!(progress.borrow().completed, 5);
        // Five distinct connections were created on the server.
        assert_eq!(h.b.connections().count(), 5);
        let times = &progress.borrow().completions;
        assert!(times.windows(2).all(|w| w[0] < w[1]));
    }
}
