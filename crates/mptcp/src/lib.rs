//! # smapp-mptcp — a Multipath TCP engine (RFC 6824 subset)
//!
//! The data plane of the SMAPP reproduction: connections composed of
//! subflows, with the in-kernel path-manager interface the paper's Netlink
//! path manager plugs into.
//!
//! * [`crypto`] / [`token`] — SHA-1, HMAC-SHA1 and the key→token/IDSN
//!   derivations of RFC 6824.
//! * [`options`] — byte-exact MPTCP option codec (MP_CAPABLE, MP_JOIN,
//!   DSS, ADD_ADDR, REMOVE_ADDR, MP_PRIO, MP_FAIL, MP_FASTCLOSE).
//! * [`subflow`] — per-path TCP machinery.
//! * [`conn`] — the meta socket: handshakes, DSS mappings, scheduling,
//!   reinjection, DATA_FIN teardown.
//! * [`stack`] — per-host connection table, demux (including MP_JOIN by
//!   token), timers, path-manager actions.
//! * [`scheduler`] — lowest-RTT (Linux default), round-robin, redundant.
//! * [`pm`] — the path-manager hook interface ("red interface" in the
//!   paper's Fig. 1) plus event/action types.
//! * [`app`] / [`apps`] — the socket-like application interface and the
//!   experiment workloads.
//! * [`harness`] — a deterministic two-host in-memory harness used by the
//!   protocol tests.
//!
//! ## Example: bulk transfer over the harness
//!
//! ```
//! use smapp_mptcp::harness::{Harness, Side};
//! use smapp_mptcp::apps::{BulkSender, Sink};
//! use smapp_sim::{Addr, SimTime};
//! use std::time::Duration;
//!
//! let mut h = Harness::new(42, Duration::from_millis(10),
//!                          vec![Addr::new(10, 0, 0, 1)],
//!                          vec![Addr::new(10, 0, 1, 1)]);
//! h.b.listen(80, Box::new(|| Box::new(Sink::default())));
//! h.connect(Side::A, 80, Box::new(BulkSender::new(100_000).close_when_done()));
//! h.run_until(SimTime::from_secs(10));
//! let sink = h.b.connections().next().unwrap().app().unwrap()
//!     .as_any().downcast_ref::<Sink>().unwrap();
//! assert_eq!(sink.received, 100_000);
//! ```

#![warn(missing_docs)]

pub mod app;
pub mod apps;
pub mod config;
pub mod conn;
pub mod crypto;
pub mod env;
pub mod harness;
pub mod options;
pub mod pm;
pub mod scheduler;
pub mod stack;
pub mod subflow;
pub mod token;

pub use app::{App, AppCtx, NullApp};
pub use config::{CcAlgo, StackConfig};
pub use conn::{ConnInfo, ConnState, Connection, Role};
pub use env::{ConnectRequest, OutPacket, StackEnv};
pub use options::{Dss, DssMapping, MpOption, MpParseError};
pub use pm::{
    ConnToken, FourTuple, NoopPm, PathManagerHook, PmAction, PmActions, PmEvent, RecordingPm,
    StackView, SubflowError, SubflowId, EVENT_MASK_ALL,
};
pub use scheduler::{LowestRtt, Redundant, RoundRobin, SchedCandidate, Scheduler};
pub use stack::{
    parse_timer_token, timer_identity, timer_rearm_supersedes, timer_token, HostStack, TimerKind,
};
pub use subflow::{SfState, Subflow};
pub use token::{idsn_from_key, join_hmac_a, join_hmac_b, token_from_key, Key};
