//! A subflow: one TCP connection member of a Multipath TCP connection.
//!
//! Subflows own the classic TCP sender/receiver machinery — sequence
//! tracking, RTT estimation, RTO with backoff, congestion control, flight
//! tracking, reassembly — built from the `smapp-tcp` components. The
//! connection-level logic (DSS mappings, scheduling, reinjection) lives in
//! [`crate::conn`]; the subflow exposes the knobs it needs.

use std::collections::VecDeque;
use std::time::Duration;

use bytes::Bytes;
use smapp_sim::SimTime;
use smapp_tcp::{
    pacing_rate, CongestionControl, Flight, Reassembly, RtoState, RttEstimator, TcpInfo,
    TcpStateInfo,
};

use crate::pm::{FourTuple, SubflowId};

/// Protocol state of a subflow.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SfState {
    /// SYN sent, awaiting SYN/ACK (initiator).
    SynSent,
    /// SYN received, SYN/ACK sent, awaiting the third ACK (responder).
    SynReceived,
    /// Handshake complete.
    Established,
    /// Fully closed (FIN exchange done, RST, or error).
    Closed,
}

/// A contiguous range of the connection-level (meta) stream.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MetaRange {
    /// First meta offset.
    pub off: u64,
    /// Length in bytes.
    pub len: u32,
}

impl MetaRange {
    /// One past the last covered offset.
    pub fn end(&self) -> u64 {
        self.off + self.len as u64
    }
}

/// Tag attached to each in-flight subflow segment: enough to rebuild the
/// exact segment for retransmission and to reinject its meta range
/// elsewhere. Subflow-level retransmission must not depend on the meta send
/// buffer (the data may already be data-acked via another subflow), so the
/// payload bytes ride along (cheap: `Bytes` is reference-counted).
#[derive(Clone, Debug)]
pub struct SegTag {
    /// Meta range this segment's payload maps to (None for a bare FIN).
    pub map: Option<MetaRange>,
    /// The payload bytes as originally sent.
    pub payload: Bytes,
    /// Whether this segment carried a DATA_FIN signal.
    pub data_fin: bool,
}

/// Mapping from subflow stream offsets to meta stream offsets, learned from
/// received DSS options.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RecvMap {
    /// Subflow stream offset of the first mapped byte.
    pub ssn: u64,
    /// Meta stream offset it corresponds to.
    pub meta: u64,
    /// Mapped length.
    pub len: u32,
}

/// Counters for reporting.
#[derive(Clone, Debug, Default)]
pub struct SfStats {
    /// Bytes of payload cumulatively acknowledged by the peer.
    pub bytes_acked: u64,
    /// Segments retransmitted (RTO + fast retransmit).
    pub retrans: u64,
    /// When the subflow was created.
    pub created_at: SimTime,
    /// When it reached Established (if ever).
    pub established_at: Option<SimTime>,
}

/// One subflow.
pub struct Subflow {
    /// Dense per-connection id (also used as the MPTCP address id).
    pub id: SubflowId,
    /// The four-tuple.
    pub tuple: FourTuple,
    /// Protocol state.
    pub state: SfState,
    /// Did this host initiate the subflow?
    pub initiated_here: bool,

    // --- sender side ---
    /// Our initial sequence number (wire).
    pub iss: u32,
    /// Next new payload offset to send (subflow stream, 0-based).
    pub snd_off: u64,
    /// Lowest unacknowledged payload offset.
    pub una_off: u64,
    /// In-flight segments.
    pub flight: Flight<SegTag>,
    /// RTT estimator.
    pub rtt: RttEstimator,
    /// RTO backoff state.
    pub rto: RtoState,
    /// Congestion controller.
    pub cc: Box<dyn CongestionControl>,
    /// Duplicate-ACK counter.
    pub dupacks: u32,
    /// Fast-recovery high-water mark (exit when una passes it).
    pub recovery: Option<u64>,
    /// Offset at which our FIN was sent (occupies one sequence number).
    pub fin_sent_off: Option<u64>,
    /// Our FIN has been acknowledged.
    pub fin_acked: bool,
    /// We want to send a FIN once the flight drains.
    pub fin_wanted: bool,

    // --- RTO timer bookkeeping (armed by the stack through StackEnv) ---
    /// Generation of the currently armed timer; stale firings are ignored.
    pub rto_gen: u64,
    /// Whether a timer is conceptually armed.
    pub rto_armed: bool,

    // --- receiver side ---
    /// Peer's initial sequence number (wire).
    pub irs: u32,
    /// Subflow-level reassembly (payload offsets).
    pub reasm: Reassembly,
    /// DSS mappings covering received subflow bytes, sorted by `ssn`.
    pub recv_maps: VecDeque<RecvMap>,
    /// Subflow offset of the peer's FIN, once seen.
    pub peer_fin_off: Option<u64>,
    /// The peer's FIN has been consumed in order.
    pub peer_fin_consumed: bool,

    // --- MPTCP bits ---
    /// Backup priority (set at establishment, changed by MP_PRIO).
    pub backup: bool,
    /// Our nonce for the MP_JOIN handshake.
    pub nonce_local: u32,
    /// Peer's nonce.
    pub nonce_remote: u32,
    /// SYN (or SYN/ACK) retransmissions remaining before giving up.
    pub syn_retries_left: u32,

    /// Peer receive window in bytes (already unscaled).
    pub peer_window: u64,
    /// Peer's window-scale shift from the handshake.
    pub peer_wscale: u8,
    /// Soft errors observed (ICMP unreachable while established).
    pub soft_errors: u32,
    /// Counters.
    pub stats: SfStats,
}

impl std::fmt::Debug for Subflow {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Subflow#{} {} {:?} una={} nxt={} cwnd={}",
            self.id,
            self.tuple,
            self.state,
            self.una_off,
            self.snd_off,
            self.cc.cwnd()
        )
    }
}

impl Subflow {
    /// Create a subflow object in the given initial state.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        id: SubflowId,
        tuple: FourTuple,
        state: SfState,
        initiated_here: bool,
        iss: u32,
        nonce_local: u32,
        backup: bool,
        cc: Box<dyn CongestionControl>,
        rto: RtoState,
        syn_retries: u32,
        now: SimTime,
    ) -> Self {
        Subflow {
            id,
            tuple,
            state,
            initiated_here,
            iss,
            snd_off: 0,
            una_off: 0,
            flight: Flight::new(),
            rtt: RttEstimator::new(),
            rto,
            cc,
            dupacks: 0,
            recovery: None,
            fin_sent_off: None,
            fin_acked: false,
            fin_wanted: false,
            rto_gen: 0,
            rto_armed: false,
            irs: 0,
            reasm: Reassembly::new(),
            recv_maps: VecDeque::new(),
            peer_fin_off: None,
            peer_fin_consumed: false,
            backup,
            nonce_local,
            nonce_remote: 0,
            syn_retries_left: syn_retries,
            peer_window: 64 * 1024,
            peer_wscale: 0,
            soft_errors: 0,
            stats: SfStats {
                created_at: now,
                ..Default::default()
            },
        }
    }

    /// Wire sequence number for payload offset `off`.
    pub fn wire_seq(&self, off: u64) -> u32 {
        (self.iss as u64).wrapping_add(1).wrapping_add(off) as u32
    }

    /// Unwrap an incoming wire sequence number to a payload offset, guided
    /// by the next expected offset.
    pub fn offset_from_wire_seq(&self, seq: u32) -> u64 {
        let rel = seq.wrapping_sub(self.irs.wrapping_add(1));
        smapp_tcp::unwrap_u32(self.reasm.next_expected(), rel)
    }

    /// Unwrap an incoming wire ACK to an acked payload offset.
    pub fn offset_from_wire_ack(&self, ack: u32) -> u64 {
        let rel = ack.wrapping_sub(self.iss.wrapping_add(1));
        smapp_tcp::unwrap_u32(self.una_off.max(1), rel)
    }

    /// The ACK value we advertise: everything delivered in order, plus one
    /// for the peer's consumed FIN.
    pub fn wire_ack(&self) -> u32 {
        let mut v = (self.irs as u64)
            .wrapping_add(1)
            .wrapping_add(self.reasm.next_expected());
        if self.peer_fin_consumed {
            v = v.wrapping_add(1);
        }
        v as u32
    }

    /// Free congestion-window space in bytes.
    pub fn cwnd_space(&self) -> u64 {
        self.cc.cwnd().saturating_sub(self.flight.bytes_in_flight())
    }

    /// Is this subflow usable for (new) data?
    pub fn can_carry_data(&self) -> bool {
        self.state == SfState::Established && self.fin_sent_off.is_none() && !self.fin_wanted
    }

    /// Record a new DSS mapping for received data, deduplicating repeats
    /// (retransmissions re-announce the same mapping).
    pub fn add_recv_map(&mut self, m: RecvMap) {
        if m.len == 0 {
            return;
        }
        if self
            .recv_maps
            .iter()
            .any(|x| x.ssn == m.ssn && x.meta == m.meta && x.len == m.len)
        {
            return;
        }
        let pos = self
            .recv_maps
            .iter()
            .position(|x| x.ssn > m.ssn)
            .unwrap_or(self.recv_maps.len());
        self.recv_maps.insert(pos, m);
    }

    /// Translate a chunk of in-order subflow payload (at `ssn`) to its meta
    /// offset using the stored mappings. Returns `None` when no mapping
    /// covers the byte — a protocol violation from the peer.
    pub fn meta_offset_of(&self, ssn: u64) -> Option<u64> {
        self.recv_maps
            .iter()
            .find(|m| m.ssn <= ssn && ssn < m.ssn + m.len as u64)
            .map(|m| m.meta + (ssn - m.ssn))
    }

    /// Drop mappings entirely below the delivered subflow offset.
    pub fn gc_recv_maps(&mut self) {
        let delivered = self.reasm.next_expected();
        while let Some(front) = self.recv_maps.front() {
            if front.ssn + front.len as u64 <= delivered {
                self.recv_maps.pop_front();
            } else {
                break;
            }
        }
    }

    /// Current (backed-off) retransmission timeout.
    pub fn current_rto(&self) -> Duration {
        self.rto.current_rto(&self.rtt)
    }

    /// Anything outstanding that the RTO timer must guard?
    pub fn has_retransmittable(&self) -> bool {
        !self.flight.is_empty() || (self.fin_sent_off.is_some() && !self.fin_acked)
    }

    /// Has the FIN handshake fully completed in both directions?
    pub fn close_complete(&self) -> bool {
        self.fin_acked && self.peer_fin_consumed
    }

    /// `TCP_INFO`-style snapshot.
    pub fn info(&self) -> TcpInfo {
        let srtt = self.rtt.srtt();
        TcpInfo {
            state: match self.state {
                SfState::SynSent => TcpStateInfo::SynSent,
                SfState::SynReceived => TcpStateInfo::SynReceived,
                SfState::Established => {
                    if self.fin_sent_off.is_some() || self.peer_fin_off.is_some() {
                        TcpStateInfo::Closing
                    } else {
                        TcpStateInfo::Established
                    }
                }
                SfState::Closed => TcpStateInfo::Closed,
            },
            srtt_us: srtt.map_or(0, |d| d.as_micros() as u64),
            rttvar_us: self.rtt.rttvar().as_micros() as u64,
            rto_us: self.current_rto().as_micros() as u64,
            backoffs: self.rto.backoffs(),
            cwnd: self.cc.cwnd(),
            ssthresh: self.cc.ssthresh(),
            pacing_rate: pacing_rate(self.cc.cwnd(), srtt, self.cc.in_slow_start()).unwrap_or(0),
            snd_una: self.una_off,
            snd_nxt: self.snd_off,
            in_flight: self.flight.bytes_in_flight(),
            bytes_acked: self.stats.bytes_acked,
            retrans: self.stats.retrans,
            backup: self.backup,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smapp_sim::Addr;
    use smapp_tcp::{Reno, RtoPolicy};

    fn mk(iss: u32, irs: u32) -> Subflow {
        let mut s = Subflow::new(
            0,
            FourTuple {
                src: Addr::new(10, 0, 0, 1),
                src_port: 1000,
                dst: Addr::new(10, 0, 0, 2),
                dst_port: 80,
            },
            SfState::Established,
            true,
            iss,
            7,
            false,
            Box::new(Reno::new(1400)),
            RtoState::new(RtoPolicy::default()),
            6,
            SimTime::ZERO,
        );
        s.irs = irs;
        s
    }

    #[test]
    fn wire_seq_roundtrip_near_wrap() {
        let s = mk(u32::MAX - 2, 1000);
        // Offset 0 -> iss+1 wraps.
        assert_eq!(s.wire_seq(0), u32::MAX - 1);
        assert_eq!(s.wire_seq(5), 3);
    }

    #[test]
    fn offset_from_wire_seq_tracks_expected() {
        let mut s = mk(0, u32::MAX - 10);
        // Peer's first byte is at irs+1.
        assert_eq!(s.offset_from_wire_seq(u32::MAX - 9), 0);
        // After consuming 100 bytes, a wire seq 50 bytes further unwraps
        // relative to expected offset 100.
        s.reasm.insert(0, Bytes::from(vec![0u8; 100]));
        s.reasm.pop_ready();
        let wire = (u32::MAX - 9).wrapping_add(100);
        assert_eq!(s.offset_from_wire_seq(wire), 100);
    }

    #[test]
    fn wire_ack_counts_fin() {
        let mut s = mk(0, 999);
        s.reasm.insert(0, Bytes::from(vec![0u8; 10]));
        s.reasm.pop_ready();
        assert_eq!(s.wire_ack(), 999u32.wrapping_add(1).wrapping_add(10));
        s.peer_fin_consumed = true;
        assert_eq!(s.wire_ack(), 999u32.wrapping_add(1).wrapping_add(11));
    }

    #[test]
    fn recv_map_translation() {
        let mut s = mk(0, 0);
        s.add_recv_map(RecvMap {
            ssn: 0,
            meta: 1000,
            len: 100,
        });
        s.add_recv_map(RecvMap {
            ssn: 100,
            meta: 5000,
            len: 50,
        });
        assert_eq!(s.meta_offset_of(0), Some(1000));
        assert_eq!(s.meta_offset_of(99), Some(1099));
        assert_eq!(s.meta_offset_of(100), Some(5000));
        assert_eq!(s.meta_offset_of(149), Some(5049));
        assert_eq!(s.meta_offset_of(150), None);
    }

    #[test]
    fn recv_map_dedup_and_gc() {
        let mut s = mk(0, 0);
        let m = RecvMap {
            ssn: 0,
            meta: 0,
            len: 100,
        };
        s.add_recv_map(m);
        s.add_recv_map(m);
        assert_eq!(s.recv_maps.len(), 1);
        s.reasm.insert(0, Bytes::from(vec![0u8; 100]));
        s.reasm.pop_ready();
        s.gc_recv_maps();
        assert!(s.recv_maps.is_empty());
    }

    #[test]
    fn recv_maps_stay_sorted() {
        let mut s = mk(0, 0);
        s.add_recv_map(RecvMap {
            ssn: 100,
            meta: 100,
            len: 10,
        });
        s.add_recv_map(RecvMap {
            ssn: 0,
            meta: 0,
            len: 10,
        });
        assert!(s.recv_maps[0].ssn < s.recv_maps[1].ssn);
    }

    #[test]
    fn cwnd_space_and_data_eligibility() {
        let mut s = mk(0, 0);
        assert_eq!(s.cwnd_space(), 14_000);
        assert!(s.can_carry_data());
        s.flight.on_send(
            0,
            14_000,
            SimTime::ZERO,
            SegTag {
                map: None,
                payload: Bytes::new(),
                data_fin: false,
            },
        );
        assert_eq!(s.cwnd_space(), 0);
        s.fin_wanted = true;
        assert!(!s.can_carry_data());
    }

    #[test]
    fn info_reports_state() {
        let mut s = mk(0, 0);
        let i = s.info();
        assert_eq!(i.state, TcpStateInfo::Established);
        assert_eq!(i.cwnd, 14_000);
        assert_eq!(i.pacing_rate, 0, "no rtt sample yet");
        s.rtt.on_sample(Duration::from_millis(10));
        assert!(s.info().pacing_rate > 0);
        s.state = SfState::Closed;
        assert_eq!(s.info().state, TcpStateInfo::Closed);
    }
}
