//! The Multipath TCP connection (meta socket).
//!
//! A [`Connection`] owns the data-sequence space, the subflows, the packet
//! scheduler and the application. It implements:
//!
//! * the `MP_CAPABLE` and `MP_JOIN` handshakes (with real HMAC material),
//! * data transmission with DSS mappings, chosen per segment by the
//!   scheduler (lowest-RTT by default),
//! * connection-level acknowledgments (DATA_ACK) and **reinjection**: when
//!   a subflow times out or dies, its unacknowledged meta ranges become
//!   eligible for transmission on the other subflows — while the original
//!   subflow keeps retransmitting, which is exactly the §4.3 pathology the
//!   smart-streaming controller works around,
//! * DATA_FIN / subflow FIN teardown, RST and ICMP error handling,
//! * the path-manager event stream (`PmEvent`) the SMAPP architecture
//!   builds on.

use std::collections::BTreeMap;
use std::time::Duration;

use bytes::Bytes;
use smapp_sim::{Addr, SimTime};
use smapp_tcp::{
    lia_alpha, CongestionControl, Lia, Reno, RtoState, StreamTap, TcpFlags, TcpHeader, TcpInfo,
    TcpOption, TcpOptions, TcpSegment,
};

use crate::app::{App, AppCtx};
use crate::config::{CcAlgo, StackConfig};
use crate::env::StackEnv;
use crate::options::{Dss, DssMapping, MpOption, CAPABLE_FLAG_HMAC_SHA1, MPTCP_VERSION};
use crate::pm::{ConnToken, FourTuple, PmEvent, SubflowError, SubflowId};
use crate::scheduler::{by_name, SchedCandidate, Scheduler};
use crate::stack::{timer_token, TimerKind};
use crate::subflow::{MetaRange, RecvMap, SegTag, SfState, Subflow};
use crate::token::{idsn_from_key, join_hmac_a, join_hmac_b, token_from_key, Key};

/// Connection role.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Role {
    /// This host sent the initial `MP_CAPABLE` SYN.
    Client,
    /// This host accepted it.
    Server,
}

/// Coarse connection state.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ConnState {
    /// Initial handshake in progress.
    Establishing,
    /// Data may flow.
    Established,
    /// Fully closed (or aborted).
    Closed,
}

/// Lifetime counters.
#[derive(Clone, Debug, Default)]
pub struct ConnStats {
    /// When the connection object was created.
    pub created_at: SimTime,
    /// When the three-way handshake completed.
    pub established_at: Option<SimTime>,
    /// When it fully closed.
    pub closed_at: Option<SimTime>,
    /// Meta-level payload bytes sent (first transmissions, not retx).
    pub bytes_sent: u64,
    /// Meta-level payload bytes delivered to the application.
    pub bytes_received: u64,
    /// Segments reinjected onto a different subflow.
    pub reinjections: u64,
    /// MPTCP was negotiated but the peer's first data arrived without any
    /// DSS option — a middlebox stripped the options mid-path and the
    /// connection inferred a plain-TCP fallback (RFC 6824 §3.7).
    pub fallback_inferred: bool,
    /// Oracle tap: rolling digest over every byte the application wrote,
    /// in stream order (see `smapp_tcp::check`).
    pub tap_sent: StreamTap,
    /// Oracle tap: rolling digest over every byte delivered to the
    /// application, in stream order.
    pub tap_recvd: StreamTap,
    /// In-order subflow bytes that arrived without a DSS mapping and were
    /// discarded (RFC 6824 protocol violation by the peer — or a stripped
    /// path the fallback inference failed to catch). Oracle-clean runs
    /// have zero.
    pub unmapped_rx_bytes: u64,
    /// End-host invariant violations recorded by the connection's own
    /// taps (capped; the count is what gates).
    pub integrity_violations: Vec<String>,
    /// Coverage hook: one-hot mask of every subflow close reason this
    /// connection observed (`SubflowError::coverage_bit`), graceful FIN
    /// closes included. The fuzzer folds this into its feature bitmap.
    pub sf_close_reasons: u8,
}

/// Connection-level info exposed to path managers and controllers.
#[derive(Clone, Debug)]
pub struct ConnInfo {
    /// Local token.
    pub token: ConnToken,
    /// Coarse state.
    pub state: ConnState,
    /// Live subflow ids.
    pub subflows: Vec<SubflowId>,
    /// First un-data-acked meta offset (the paper's `snd_una` signal used
    /// by the smart-streaming controller).
    pub meta_una: u64,
    /// Next meta offset to be sent.
    pub meta_snd_nxt: u64,
    /// Bytes delivered to the application.
    pub bytes_received: u64,
    /// Peer's advertised receive window, bytes.
    pub peer_window: u64,
}

/// The meta socket.
pub struct Connection {
    /// Slot index within the stack (stable; slots are never reused).
    pub idx: usize,
    /// Our token (identifies the connection toward path managers).
    pub token: ConnToken,
    /// Role.
    pub role: Role,
    /// State.
    pub state: ConnState,
    /// Stats.
    pub stats: ConnStats,

    local_key: Key,
    remote_key: Option<Key>,
    remote_token: Option<ConnToken>,
    /// Wire IDSN bases (our outgoing data, peer's incoming data).
    idsn_local: u64,
    idsn_remote: u64,

    app: Option<Box<dyn App>>,
    app_closed: bool,

    // --- meta send state (offsets are 0-based stream offsets) ---
    meta_send: smapp_tcp::SendBuffer,
    meta_snd_nxt: u64,
    meta_una: u64,
    fin_sent_off: Option<u64>,
    fin_acked: bool,
    meta_fin_gen: u64,
    meta_fin_backoff: u32,

    // --- meta receive state ---
    meta_recv: smapp_tcp::Reassembly,
    peer_fin_off: Option<u64>,
    eof_delivered: bool,
    recv_buf: u64,

    // --- subflows & scheduling ---
    subflows: Vec<Subflow>,
    scheduler: Box<dyn Scheduler>,
    /// Pending reinjection ranges: start -> end (meta offsets).
    reinject: BTreeMap<u64, u64>,
    peer_window: u64,
    /// Scratch for [`Connection::pump`]'s candidate list; capacity is
    /// retained across events so the pump loop does not allocate.
    sched_scratch: Vec<SchedCandidate>,
    /// Scratch for [`Connection::update_coupling`]'s per-subflow inputs.
    coupling_scratch: Vec<(u64, u64)>,

    // --- addresses ---
    /// Remote addresses learned from ADD_ADDR: (id, addr, port).
    pub remote_addrs: Vec<(u8, Addr, u16)>,
    /// The original destination (address id 0 in PM terms).
    pub initial_remote: (Addr, u16),
    next_local_addr_id: u8,

    coupled_cc: bool,
    cfg_mss: usize,
    wscale: u8,
    /// Plain-TCP fallback: the peer did not negotiate MPTCP. Single
    /// subflow, no DSS options, identity mapping between subflow and meta
    /// stream, close via the subflow FIN.
    fallback: bool,
    /// True once any DSS option has been received from the peer. Gates the
    /// sender-side §3.7 fallback inference: a plain ACK proves stripping
    /// only while the peer has never spoken DSS.
    peer_dss_seen: bool,
}

impl std::fmt::Debug for Connection {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Connection(token={:08x} {:?} {:?} subflows={})",
            self.token,
            self.role,
            self.state,
            self.subflows.len()
        )
    }
}

/// Internal helper bundling what segment emission needs.
struct SegBuild {
    tuple: FourTuple,
    seg: TcpSegment,
}

impl Connection {
    // ------------------------------------------------------------------
    // Construction & handshakes
    // ------------------------------------------------------------------

    /// Create the client side and emit the initial `MP_CAPABLE` SYN.
    #[allow(clippy::too_many_arguments)]
    pub fn client(
        idx: usize,
        cfg: &StackConfig,
        tuple: FourTuple,
        app: Box<dyn App>,
        env: &mut StackEnv<'_>,
        events: &mut Vec<PmEvent>,
    ) -> Connection {
        let local_key = env.rng.range_u64(1, u64::MAX);
        let iss = env.rng.range_u64(0, 1 << 32) as u32;
        let nonce = env.rng.range_u64(0, 1 << 32) as u32;
        let mut conn = Connection::common(idx, cfg, Role::Client, local_key, app, env.now);
        conn.initial_remote = (tuple.dst, tuple.dst_port);
        let mut sf = conn.new_subflow_obj(
            cfg,
            tuple,
            SfState::SynSent,
            true,
            iss,
            nonce,
            false,
            env.now,
        );
        sf.id = 0;
        conn.subflows.push(sf);
        events.push(PmEvent::ConnCreated {
            token: conn.token,
            tuple,
            initial_subflow: 0,
            is_client: true,
        });
        conn.send_syn(0, cfg, env);
        conn.arm_rto(0, env);
        conn
    }

    /// Create the server side from a received `MP_CAPABLE` (or plain) SYN
    /// and emit the SYN/ACK.
    #[allow(clippy::too_many_arguments)]
    pub fn server_from_syn(
        idx: usize,
        cfg: &StackConfig,
        tuple: FourTuple,
        syn: &TcpSegment,
        app: Box<dyn App>,
        env: &mut StackEnv<'_>,
        events: &mut Vec<PmEvent>,
    ) -> Connection {
        let local_key = env.rng.range_u64(1, u64::MAX);
        let iss = env.rng.range_u64(0, 1 << 32) as u32;
        let mut conn = Connection::common(idx, cfg, Role::Server, local_key, app, env.now);
        // Parse the client's key (if we speak MPTCP at all).
        if cfg.mptcp_enabled {
            for opt in syn.mptcp_opts() {
                if let Ok(MpOption::Capable {
                    sender_key,
                    receiver_key: None,
                    ..
                }) = MpOption::decode(opt)
                {
                    conn.set_remote_key(sender_key);
                }
            }
        }
        if conn.remote_key.is_none() {
            conn.fallback = true;
        }
        conn.initial_remote = (tuple.dst, tuple.dst_port);
        let mut sf = conn.new_subflow_obj(
            cfg,
            tuple,
            SfState::SynReceived,
            false,
            iss,
            0,
            false,
            env.now,
        );
        sf.id = 0;
        sf.irs = syn.hdr.seq.0;
        sf.peer_wscale = syn
            .hdr
            .options
            .iter()
            .find_map(|o| match o {
                TcpOption::WindowScale(s) => Some(*s),
                _ => None,
            })
            .unwrap_or(0);
        sf.peer_window = syn.hdr.window as u64; // SYN windows are unscaled
        conn.subflows.push(sf);
        events.push(PmEvent::ConnCreated {
            token: conn.token,
            tuple,
            initial_subflow: 0,
            is_client: false,
        });
        conn.send_synack(0, cfg, env);
        conn.arm_rto(0, env);
        conn
    }

    fn common(
        idx: usize,
        cfg: &StackConfig,
        role: Role,
        local_key: Key,
        app: Box<dyn App>,
        now: SimTime,
    ) -> Connection {
        Connection {
            idx,
            token: token_from_key(local_key),
            role,
            state: ConnState::Establishing,
            stats: ConnStats {
                created_at: now,
                ..Default::default()
            },
            local_key,
            remote_key: None,
            remote_token: None,
            idsn_local: idsn_from_key(local_key),
            idsn_remote: 0,
            app: Some(app),
            app_closed: false,
            meta_send: smapp_tcp::SendBuffer::with_capacity(cfg.send_buf),
            meta_snd_nxt: 0,
            meta_una: 0,
            fin_sent_off: None,
            fin_acked: false,
            meta_fin_gen: 0,
            meta_fin_backoff: 0,
            meta_recv: smapp_tcp::Reassembly::new(),
            peer_fin_off: None,
            eof_delivered: false,
            recv_buf: cfg.recv_buf,
            subflows: Vec::new(),
            scheduler: by_name(cfg.scheduler).expect("unknown scheduler in config"),
            reinject: BTreeMap::new(),
            peer_window: 64 * 1024,
            sched_scratch: Vec::new(),
            coupling_scratch: Vec::new(),
            remote_addrs: Vec::new(),
            initial_remote: (Addr::UNSPECIFIED, 0),
            next_local_addr_id: 1,
            coupled_cc: cfg.cc == CcAlgo::Lia,
            cfg_mss: cfg.mss,
            wscale: cfg.window_scale,
            fallback: !cfg.mptcp_enabled,
            peer_dss_seen: false,
        }
    }

    /// True when the connection fell back to plain TCP.
    pub fn is_fallback(&self) -> bool {
        self.fallback
    }

    /// Enter inferred plain-TCP fallback (RFC 6824 §3.7): a middlebox is
    /// stripping MPTCP options mid-connection. Refuse further joins and
    /// drop any queued connection-level reinjections — the peer reads the
    /// subflow as plain TCP, so reinjected bytes at fresh subflow offsets
    /// would be misread as new stream data.
    fn infer_fallback(&mut self) {
        self.fallback = true;
        self.remote_key = None;
        self.remote_token = None;
        self.stats.fallback_inferred = true;
        self.reinject.clear();
    }

    /// Record an end-host oracle violation (capped; see
    /// [`ConnStats::integrity_violations`]).
    fn integrity_violation(&mut self, detail: String) {
        if self.stats.integrity_violations.len() < 16 {
            self.stats.integrity_violations.push(detail);
        }
    }

    fn set_remote_key(&mut self, key: Key) {
        self.remote_key = Some(key);
        self.remote_token = Some(token_from_key(key));
        self.idsn_remote = idsn_from_key(key);
    }

    fn new_cc(&self, cfg: &StackConfig) -> Box<dyn CongestionControl> {
        match cfg.cc {
            CcAlgo::Reno => Box::new(Reno::new(cfg.mss as u64)),
            CcAlgo::Lia => Box::new(Lia::new(cfg.mss as u64)),
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn new_subflow_obj(
        &self,
        cfg: &StackConfig,
        tuple: FourTuple,
        state: SfState,
        initiated_here: bool,
        iss: u32,
        nonce: u32,
        backup: bool,
        now: SimTime,
    ) -> Subflow {
        Subflow::new(
            self.subflows.len() as SubflowId,
            tuple,
            state,
            initiated_here,
            iss,
            nonce,
            backup,
            self.new_cc(cfg),
            RtoState::new(cfg.rto.clone()),
            cfg.syn_retries,
            now,
        )
    }

    /// Open an additional subflow via `MP_JOIN`. Fails (returns `None`)
    /// when the connection is not established or the remote key is unknown.
    #[allow(clippy::too_many_arguments)]
    pub fn open_subflow(
        &mut self,
        cfg: &StackConfig,
        env: &mut StackEnv<'_>,
        tuple: FourTuple,
        backup: bool,
    ) -> Option<SubflowId> {
        if self.state != ConnState::Established || self.remote_token.is_none() {
            return None;
        }
        let iss = env.rng.range_u64(0, 1 << 32) as u32;
        let nonce = env.rng.range_u64(0, 1 << 32) as u32;
        let sf = self.new_subflow_obj(
            cfg,
            tuple,
            SfState::SynSent,
            true,
            iss,
            nonce,
            backup,
            env.now,
        );
        let id = sf.id;
        self.subflows.push(sf);
        self.send_syn(id, cfg, env);
        self.arm_rto(id, env);
        Some(id)
    }

    /// Accept an `MP_JOIN` SYN for this connection; emits the SYN/ACK.
    pub fn accept_join_syn(
        &mut self,
        cfg: &StackConfig,
        env: &mut StackEnv<'_>,
        tuple: FourTuple,
        syn: &TcpSegment,
    ) -> Option<SubflowId> {
        let (backup, nonce_remote) = syn.mptcp_opts().find_map(|o| match MpOption::decode(o) {
            Ok(MpOption::JoinSyn { backup, nonce, .. }) => Some((backup, nonce)),
            _ => None,
        })?;
        let iss = env.rng.range_u64(0, 1 << 32) as u32;
        let nonce_local = env.rng.range_u64(0, 1 << 32) as u32;
        let mut sf = self.new_subflow_obj(
            cfg,
            tuple,
            SfState::SynReceived,
            false,
            iss,
            nonce_local,
            backup,
            env.now,
        );
        let id = sf.id;
        sf.irs = syn.hdr.seq.0;
        sf.nonce_remote = nonce_remote;
        sf.peer_wscale = syn
            .hdr
            .options
            .iter()
            .find_map(|o| match o {
                TcpOption::WindowScale(s) => Some(*s),
                _ => None,
            })
            .unwrap_or(0);
        self.subflows.push(sf);
        self.send_synack(id, cfg, env);
        self.arm_rto(id, env);
        Some(id)
    }

    fn send_syn(&mut self, id: SubflowId, cfg: &StackConfig, env: &mut StackEnv<'_>) {
        let window = self.advertised_window_unscaled();
        let sf = &self.subflows[id as usize];
        let mp = if !cfg.mptcp_enabled {
            None
        } else if sf.id == 0 {
            Some(MpOption::Capable {
                version: MPTCP_VERSION,
                flags: CAPABLE_FLAG_HMAC_SHA1,
                sender_key: self.local_key,
                receiver_key: None,
            })
        } else {
            Some(MpOption::JoinSyn {
                backup: sf.backup,
                addr_id: sf.id,
                token: self.remote_token.expect("join without remote token"),
                nonce: sf.nonce_local,
            })
        };
        let mut options = TcpOptions::from([
            TcpOption::Mss(cfg.mss as u16),
            TcpOption::WindowScale(self.wscale),
        ]);
        if let Some(mp) = mp {
            options.push(TcpOption::Mptcp(mp.encode()));
        }
        let seg = TcpSegment {
            hdr: TcpHeader {
                src_port: sf.tuple.src_port,
                dst_port: sf.tuple.dst_port,
                seq: sf.iss.into(),
                ack: 0.into(),
                flags: TcpFlags::SYN,
                window,
                options,
            },
            payload: Bytes::new(),
        };
        env.send_segment(sf.tuple.src, sf.tuple.dst, &seg);
    }

    fn send_synack(&mut self, id: SubflowId, cfg: &StackConfig, env: &mut StackEnv<'_>) {
        let window = self.advertised_window_unscaled();
        let sf = &self.subflows[id as usize];
        let mp = if !cfg.mptcp_enabled || (self.remote_key.is_none() && sf.id == 0) {
            None
        } else if sf.id == 0 {
            Some(MpOption::Capable {
                version: MPTCP_VERSION,
                flags: CAPABLE_FLAG_HMAC_SHA1,
                sender_key: self.local_key,
                receiver_key: None,
            })
        } else {
            // Responder HMAC: we are B on this subflow.
            let hmac = join_hmac_b(
                self.remote_key.expect("join accept without keys"),
                self.local_key,
                sf.nonce_remote,
                sf.nonce_local,
            );
            Some(MpOption::JoinSynAck {
                backup: sf.backup,
                addr_id: sf.id,
                hmac,
                nonce: sf.nonce_local,
            })
        };
        let mut options = TcpOptions::from([
            TcpOption::Mss(cfg.mss as u16),
            TcpOption::WindowScale(self.wscale),
        ]);
        if let Some(mp) = mp {
            options.push(TcpOption::Mptcp(mp.encode()));
        }
        let seg = TcpSegment {
            hdr: TcpHeader {
                src_port: sf.tuple.src_port,
                dst_port: sf.tuple.dst_port,
                seq: sf.iss.into(),
                ack: sf.irs.wrapping_add(1).into(),
                flags: TcpFlags::SYN_ACK,
                window,
                options,
            },
            payload: Bytes::new(),
        };
        env.send_segment(sf.tuple.src, sf.tuple.dst, &seg);
    }

    /// The third ACK of a handshake (initial or join).
    fn send_handshake_ack(&mut self, id: SubflowId, env: &mut StackEnv<'_>) {
        let window = self.advertised_window_scaled();
        let sf = &self.subflows[id as usize];
        let mp = if sf.id == 0 {
            self.remote_key.map(|rk| MpOption::Capable {
                version: MPTCP_VERSION,
                flags: CAPABLE_FLAG_HMAC_SHA1,
                sender_key: self.local_key,
                receiver_key: Some(rk),
            })
        } else {
            self.remote_key.map(|rk| MpOption::JoinAck {
                hmac: join_hmac_a(self.local_key, rk, sf.nonce_local, sf.nonce_remote),
            })
        };
        let mut options = TcpOptions::new();
        if let Some(mp) = mp {
            options.push(TcpOption::Mptcp(mp.encode()));
        }
        let seg = TcpSegment {
            hdr: TcpHeader {
                src_port: sf.tuple.src_port,
                dst_port: sf.tuple.dst_port,
                seq: sf.wire_seq(sf.snd_off).into(),
                ack: sf.wire_ack().into(),
                flags: TcpFlags::ACK,
                window,
                options,
            },
            payload: Bytes::new(),
        };
        env.send_segment(sf.tuple.src, sf.tuple.dst, &seg);
    }

    // ------------------------------------------------------------------
    // Accessors
    // ------------------------------------------------------------------

    /// Subflow ids currently alive (not closed).
    pub fn live_subflow_ids(&self) -> Vec<SubflowId> {
        self.subflows
            .iter()
            .filter(|s| s.state != SfState::Closed)
            .map(|s| s.id)
            .collect()
    }

    /// Total subflows ever created on this connection (live and closed) —
    /// 1 for the lifetime of a fallback connection.
    pub fn subflow_count(&self) -> usize {
        self.subflows.len()
    }

    /// A subflow by id.
    pub fn subflow(&self, id: SubflowId) -> Option<&Subflow> {
        self.subflows.get(id as usize)
    }

    /// `TCP_INFO` of a subflow.
    pub fn subflow_info(&self, id: SubflowId) -> Option<TcpInfo> {
        self.subflows.get(id as usize).map(|s| s.info())
    }

    /// Connection-level info.
    pub fn info(&self) -> ConnInfo {
        ConnInfo {
            token: self.token,
            state: self.state,
            subflows: self.live_subflow_ids(),
            meta_una: self.meta_una,
            meta_snd_nxt: self.meta_snd_nxt,
            bytes_received: self.stats.bytes_received,
            peer_window: self.peer_window,
        }
    }

    /// First un-data-acked meta offset.
    pub fn meta_una(&self) -> u64 {
        self.meta_una
    }

    /// Bytes delivered to the app.
    pub fn bytes_delivered(&self) -> u64 {
        self.stats.bytes_received
    }

    /// Free send-buffer space.
    pub fn send_space(&self) -> u64 {
        self.meta_send.free()
    }

    /// The app attached to this connection (for post-run inspection).
    pub fn app(&self) -> Option<&dyn App> {
        self.app.as_deref()
    }

    /// Mutable app access.
    pub fn app_mut(&mut self) -> Option<&mut (dyn App + 'static)> {
        match self.app.as_mut() {
            Some(b) => Some(b.as_mut()),
            None => None,
        }
    }

    /// Local token of the peer (known after the handshake).
    pub fn remote_token(&self) -> Option<ConnToken> {
        self.remote_token
    }

    // ------------------------------------------------------------------
    // Application interface (via AppCtx)
    // ------------------------------------------------------------------

    pub(crate) fn app_write(&mut self, data: &[u8]) -> usize {
        if self.app_closed || self.state == ConnState::Closed {
            return 0;
        }
        let n = self.meta_send.write(data);
        self.stats.tap_sent.update(&data[..n]);
        n
    }

    pub(crate) fn app_close(&mut self) {
        self.app_closed = true;
    }

    // ------------------------------------------------------------------
    // Window bookkeeping
    // ------------------------------------------------------------------

    fn advertised_window_unscaled(&self) -> u16 {
        self.recv_free().min(u16::MAX as u64) as u16
    }

    fn advertised_window_scaled(&self) -> u16 {
        (self.recv_free() >> self.wscale).min(u16::MAX as u64) as u16
    }

    fn recv_free(&self) -> u64 {
        self.recv_buf
            .saturating_sub(self.meta_recv.buffered_bytes())
    }

    // ------------------------------------------------------------------
    // Timers
    // ------------------------------------------------------------------

    fn arm_rto(&mut self, id: SubflowId, env: &mut StackEnv<'_>) {
        let idx = self.idx;
        let sf = &mut self.subflows[id as usize];
        sf.rto_gen = sf.rto_gen.wrapping_add(1) & 0x0FFF_FFFF;
        sf.rto_armed = true;
        let t = timer_token(TimerKind::Rto, idx, id, sf.rto_gen);
        env.timers.push((sf.current_rto(), t));
    }

    fn disarm_rto(&mut self, id: SubflowId) {
        self.subflows[id as usize].rto_armed = false;
    }

    fn arm_meta_fin_timer(&mut self, env: &mut StackEnv<'_>) {
        self.meta_fin_gen = self.meta_fin_gen.wrapping_add(1) & 0x0FFF_FFFF;
        let backoff = std::time::Duration::from_secs(1 << self.meta_fin_backoff.min(5));
        let t = timer_token(TimerKind::MetaFin, self.idx, 0, self.meta_fin_gen);
        env.timers.push((backoff, t));
    }

    /// Handle a retransmission-timer firing for subflow `id`.
    pub fn on_rto_timer(
        &mut self,
        id: SubflowId,
        gen: u64,
        cfg: &StackConfig,
        env: &mut StackEnv<'_>,
        events: &mut Vec<PmEvent>,
    ) {
        let Some(sf) = self.subflows.get(id as usize) else {
            return;
        };
        if !sf.rto_armed || sf.rto_gen != gen || sf.state == SfState::Closed {
            return;
        }
        match sf.state {
            SfState::SynSent | SfState::SynReceived => self.handshake_rto(id, cfg, env, events),
            SfState::Established => self.established_rto(id, cfg, env, events),
            SfState::Closed => {}
        }
    }

    fn handshake_rto(
        &mut self,
        id: SubflowId,
        cfg: &StackConfig,
        env: &mut StackEnv<'_>,
        events: &mut Vec<PmEvent>,
    ) {
        let sf = &mut self.subflows[id as usize];
        if sf.syn_retries_left == 0 {
            let err = SubflowError::Timeout;
            self.kill_subflow(id, err, env, events);
            if id == 0 && self.state == ConnState::Establishing {
                self.abort(env, events);
            }
            return;
        }
        sf.syn_retries_left -= 1;
        sf.rto.on_expiry();
        let state = sf.state;
        match state {
            SfState::SynSent => self.send_syn(id, cfg, env),
            SfState::SynReceived => self.send_synack(id, cfg, env),
            _ => unreachable!(),
        }
        self.arm_rto(id, env);
    }

    fn established_rto(
        &mut self,
        id: SubflowId,
        cfg: &StackConfig,
        env: &mut StackEnv<'_>,
        events: &mut Vec<PmEvent>,
    ) {
        let sf = &mut self.subflows[id as usize];
        if !sf.has_retransmittable() {
            sf.rto_armed = false;
            return;
        }
        sf.rto.on_expiry();
        if sf.rto.exhausted() {
            self.kill_subflow(id, SubflowError::Timeout, env, events);
            self.pump(cfg, env, events);
            return;
        }
        let flight_bytes = sf.flight.bytes_in_flight();
        sf.cc.on_retransmit_timeout(flight_bytes);
        sf.recovery = None;
        sf.dupacks = 0;
        // Connection-level reinjection: everything this subflow has in
        // flight becomes eligible on the other subflows.
        let ranges: Vec<MetaRange> = sf.flight.iter().filter_map(|s| s.tag.map).collect();
        for r in ranges {
            self.add_reinject(r);
        }
        self.retransmit_head(id, env);
        let (current_rto, backoffs) = {
            let sf = &self.subflows[id as usize];
            (sf.current_rto(), sf.rto.backoffs())
        };
        events.push(PmEvent::RtoExpired {
            token: self.token,
            id,
            current_rto,
            backoffs,
        });
        self.arm_rto(id, env);
        self.pump(cfg, env, events);
    }

    /// Retransmit the oldest outstanding segment (or the FIN) on `id`.
    fn retransmit_head(&mut self, id: SubflowId, env: &mut StackEnv<'_>) {
        let data_ack = self.current_data_ack();
        let window = self.advertised_window_scaled();
        let head = {
            let sf = &mut self.subflows[id as usize];
            sf.stats.retrans += 1;
            sf.flight
                .mark_head_retransmitted(env.now)
                .map(|(off, len)| {
                    (
                        off,
                        len,
                        sf.flight.oldest().expect("head exists").tag.clone(),
                    )
                })
        };
        if let Some((off, len, tag)) = head {
            // A partial ACK may have trimmed the head inside the original
            // segment (a middlebox that re-segments the stream makes
            // mid-segment cumulative ACKs routine): the tag still holds the
            // payload as originally sent, so skip the acked prefix and
            // advance the mapping to match. Replaying the full payload at
            // the trimmed offset would shift the byte stream and write past
            // its end.
            let skip = tag.payload.len() - len as usize;
            let payload = tag.payload.slice(skip..);
            let mapping = tag.map.map(|m| DssMapping {
                dsn: self.wire_dsn(m.off + skip as u64),
                ssn: (off as u32).wrapping_add(1),
                len: (m.len - skip as u32) as u16,
            });
            let sf = &self.subflows[id as usize];
            let seg = TcpSegment {
                hdr: TcpHeader {
                    src_port: sf.tuple.src_port,
                    dst_port: sf.tuple.dst_port,
                    seq: sf.wire_seq(off).into(),
                    ack: sf.wire_ack().into(),
                    flags: TcpFlags {
                        psh: true,
                        ..TcpFlags::ACK
                    },
                    window,
                    options: TcpOptions::from([TcpOption::Mptcp(
                        MpOption::Dss(Dss {
                            data_ack: Some(data_ack),
                            mapping,
                            data_fin: tag.data_fin,
                        })
                        .encode(),
                    )]),
                },
                payload,
            };
            env.send_segment(sf.tuple.src, sf.tuple.dst, &seg);
        } else {
            let fin = {
                let sf = &self.subflows[id as usize];
                sf.fin_sent_off.filter(|_| !sf.fin_acked)
            };
            if let Some(fin_off) = fin {
                let built = self.build_fin_segment(id, fin_off, data_ack, window);
                env.send_segment(built.tuple.src, built.tuple.dst, &built.seg);
            }
        }
    }

    /// Meta-level DATA_FIN retransmission timer.
    pub fn on_meta_fin_timer(
        &mut self,
        gen: u64,
        cfg: &StackConfig,
        env: &mut StackEnv<'_>,
        events: &mut Vec<PmEvent>,
    ) {
        if gen != self.meta_fin_gen || self.fin_acked || self.state == ConnState::Closed {
            return;
        }
        let Some(fin_off) = self.fin_sent_off else {
            return;
        };
        self.meta_fin_backoff += 1;
        if self.meta_fin_backoff > 10 {
            // Peer is unreachable at the data level; abort.
            self.abort(env, events);
            return;
        }
        // Re-send a standalone DATA_FIN on every live subflow: one of them
        // may be a zombie (the peer's side died behind a NAT and its RST
        // never reached us), and the data level deduplicates the signal.
        let ids: Vec<SubflowId> = self
            .subflows
            .iter()
            .filter(|s| s.state == SfState::Established)
            .map(|s| s.id)
            .collect();
        for id in ids {
            self.send_standalone_datafin(id, fin_off, env);
        }
        self.arm_meta_fin_timer(env);
        let _ = cfg;
    }

    fn best_live_subflow(&self) -> Option<SubflowId> {
        self.subflows
            .iter()
            .filter(|s| s.state == SfState::Established)
            .min_by_key(|s| (s.rtt.srtt().unwrap_or(std::time::Duration::MAX), s.id))
            .map(|s| s.id)
    }

    // ------------------------------------------------------------------
    // Data sequence plumbing
    // ------------------------------------------------------------------

    fn wire_dsn(&self, meta_off: u64) -> u64 {
        self.idsn_local.wrapping_add(1).wrapping_add(meta_off)
    }

    fn meta_off_from_wire_dsn(&self, dsn: u64) -> u64 {
        dsn.wrapping_sub(self.idsn_remote.wrapping_add(1))
    }

    /// A DATA_ACK acknowledges *our* stream, so it is decoded against our
    /// own IDSN (unlike DSNs, which live in the peer's space).
    fn meta_off_from_wire_data_ack(&self, dack: u64) -> u64 {
        dack.wrapping_sub(self.idsn_local.wrapping_add(1))
    }

    fn current_data_ack(&self) -> u64 {
        let mut off = self.meta_recv.next_expected();
        if self.eof_delivered {
            off += 1;
        }
        self.idsn_remote.wrapping_add(1).wrapping_add(off)
    }

    // ------------------------------------------------------------------
    // Reinjection bookkeeping
    // ------------------------------------------------------------------

    fn add_reinject(&mut self, r: MetaRange) {
        // Plain-TCP fallback must never reinject: there is one subflow and
        // no DSS mapping to re-anchor the bytes, so `send_data_on` would
        // append the payload at a fresh subflow offset and the receiver's
        // identity mapping would deliver it as duplicate stream bytes past
        // the end of the stream. Subflow-level retransmission
        // (`retransmit_head`) is the only recovery path here. (Found by
        // the scenario fuzzer: split-rewriter cases RTO under queue
        // pressure and tripped the stream-duplication oracle.)
        if self.fallback {
            return;
        }
        let start = r.off.max(self.meta_una);
        let end = r.end();
        if start >= end {
            return;
        }
        // Coalesce with neighbours.
        let mut start = start;
        let mut end = end;
        // Predecessor overlapping or touching.
        if let Some((&ps, &pe)) = self.reinject.range(..=start).next_back() {
            if pe >= start {
                start = ps;
                end = end.max(pe);
                self.reinject.remove(&ps);
            }
        }
        // Successors covered.
        while let Some((&ns, &ne)) = self.reinject.range(start..).next() {
            if ns > end {
                break;
            }
            end = end.max(ne);
            self.reinject.remove(&ns);
        }
        self.reinject.insert(start, end);
    }

    fn gc_reinject(&mut self) {
        let una = self.meta_una;
        let to_fix: Vec<(u64, u64)> = self.reinject.range(..una).map(|(&s, &e)| (s, e)).collect();
        for (s, e) in to_fix {
            self.reinject.remove(&s);
            if e > una {
                self.reinject.insert(una, e);
            }
        }
    }

    fn take_reinject_chunk(&mut self, max_len: u32) -> Option<MetaRange> {
        loop {
            let (&start, &end) = self.reinject.iter().next()?;
            self.reinject.remove(&start);
            let start = start.max(self.meta_una);
            if start >= end {
                continue;
            }
            let len = ((end - start) as u32).min(max_len);
            if start + (len as u64) < end {
                self.reinject.insert(start + len as u64, end);
            }
            return Some(MetaRange { off: start, len });
        }
    }

    /// Bytes currently pending reinjection (diagnostics).
    pub fn reinject_pending(&self) -> u64 {
        self.reinject.iter().map(|(s, e)| e - s).sum()
    }

    // ------------------------------------------------------------------
    // Transmission pump
    // ------------------------------------------------------------------

    /// Candidates for the scheduler: established, able to carry data, with
    /// congestion window space; backups filtered per RFC 6824. Fills the
    /// caller's buffer so the per-segment pump loop reuses one allocation.
    fn fill_sched_candidates(&self, out: &mut Vec<SchedCandidate>) {
        out.clear();
        let any_regular_alive = self
            .subflows
            .iter()
            .any(|s| s.state == SfState::Established && !s.backup && s.can_carry_data());
        out.extend(
            self.subflows
                .iter()
                .filter(|s| s.can_carry_data() && s.cwnd_space() > 0)
                .filter(|s| !s.backup || !any_regular_alive)
                .map(|s| SchedCandidate {
                    id: s.id,
                    srtt: s.rtt.srtt(),
                    cwnd_space: s.cwnd_space(),
                    in_flight: s.flight.bytes_in_flight(),
                    backup: s.backup,
                }),
        );
    }

    /// Drive transmission: reinjections first, then new data, then the
    /// DATA_FIN. Runs until no scheduler candidate or nothing to send.
    #[allow(clippy::ptr_arg)]
    pub fn pump(&mut self, cfg: &StackConfig, env: &mut StackEnv<'_>, events: &mut Vec<PmEvent>) {
        if self.state != ConnState::Established {
            return;
        }
        let mss = self.cfg_mss as u32;
        let mut cands = std::mem::take(&mut self.sched_scratch);
        loop {
            self.fill_sched_candidates(&mut cands);
            if cands.is_empty() {
                break;
            }
            // 1. Reinjection has priority.
            if let Some(r) = self.take_reinject_chunk(mss) {
                let Some(chosen) = self.scheduler.select(&cands) else {
                    // Put it back; nothing can carry it now.
                    self.add_reinject(r);
                    break;
                };
                let space = self.subflows[chosen as usize].cwnd_space() as u32;
                let len = r.len.min(space.max(1));
                let sent = MetaRange { off: r.off, len };
                self.send_data_on(chosen, sent, false, env);
                self.stats.reinjections += 1;
                if len < r.len {
                    self.add_reinject(MetaRange {
                        off: r.off + len as u64,
                        len: r.len - len,
                    });
                }
                continue;
            }
            // 2. New data, subject to the peer's receive window.
            let unsent = self.meta_send.tail_offset() - self.meta_snd_nxt;
            let window_budget = self
                .peer_window
                .saturating_sub(self.meta_snd_nxt - self.meta_una);
            let can_new = unsent.min(window_budget);
            if can_new > 0 {
                let Some(chosen) = self.scheduler.select(&cands) else {
                    break;
                };
                let space = self.subflows[chosen as usize].cwnd_space() as u32;
                let len = (can_new as u32).min(mss).min(space.max(1));
                let range = MetaRange {
                    off: self.meta_snd_nxt,
                    len,
                };
                // Piggyback the DATA_FIN on the final data segment
                // (MPTCP only; fallback closes with a plain FIN below).
                let is_last = !self.fallback
                    && self.app_closed
                    && range.end() == self.meta_send.tail_offset()
                    && self.fin_sent_off.is_none();
                self.send_data_on(chosen, range, is_last, env);
                if is_last {
                    self.fin_sent_off = Some(range.end());
                    self.meta_fin_backoff = 0;
                    self.arm_meta_fin_timer(env);
                }
                self.meta_snd_nxt += len as u64;
                self.stats.bytes_sent += len as u64;
                if self.scheduler.duplicates() {
                    for c in &cands {
                        if c.id != chosen {
                            self.send_data_on(c.id, range, false, env);
                            self.stats.reinjections += 1;
                        }
                    }
                }
                continue;
            }
            // 3. Finish sending: standalone DATA_FIN (MPTCP) or plain FIN
            // on the lone subflow (fallback).
            if self.app_closed
                && self.fin_sent_off.is_none()
                && self.meta_snd_nxt == self.meta_send.tail_offset()
            {
                let fin_off = self.meta_send.tail_offset();
                if self.fallback {
                    self.fin_sent_off = Some(fin_off);
                    self.subflows[0].fin_wanted = true;
                    self.try_send_subflow_fin(0, env);
                } else {
                    let Some(chosen) = self.scheduler.select(&cands) else {
                        break;
                    };
                    self.send_standalone_datafin(chosen, fin_off, env);
                    self.fin_sent_off = Some(fin_off);
                    self.meta_fin_backoff = 0;
                    self.arm_meta_fin_timer(env);
                }
            }
            break;
        }
        self.sched_scratch = cands;
        self.update_coupling();
        self.maybe_close_subflows(env, events);
        let _ = cfg;
    }

    /// Transmit `range` of the meta stream on subflow `id`.
    fn send_data_on(
        &mut self,
        id: SubflowId,
        range: MetaRange,
        data_fin: bool,
        env: &mut StackEnv<'_>,
    ) {
        let payload = self.meta_send.slice(range.off, range.len);
        let data_ack = self.current_data_ack();
        let window = self.advertised_window_scaled();
        let dsn = self.wire_dsn(range.off);
        let sf = &mut self.subflows[id as usize];
        let ssn_off = sf.snd_off;
        sf.flight.on_send(
            ssn_off,
            range.len,
            env.now,
            SegTag {
                map: Some(range),
                payload: payload.clone(),
                data_fin,
            },
        );
        sf.snd_off += range.len as u64;
        let options = if self.fallback {
            TcpOptions::new()
        } else {
            TcpOptions::from([TcpOption::Mptcp(
                MpOption::Dss(Dss {
                    data_ack: Some(data_ack),
                    mapping: Some(DssMapping {
                        dsn,
                        ssn: (ssn_off as u32).wrapping_add(1),
                        len: range.len as u16,
                    }),
                    data_fin,
                })
                .encode(),
            )])
        };
        let sf = &self.subflows[id as usize];
        let seg = TcpSegment {
            hdr: TcpHeader {
                src_port: sf.tuple.src_port,
                dst_port: sf.tuple.dst_port,
                seq: sf.wire_seq(ssn_off).into(),
                ack: sf.wire_ack().into(),
                flags: TcpFlags {
                    psh: true,
                    ..TcpFlags::ACK
                },
                window,
                options,
            },
            payload,
        };
        let (src, dst) = (sf.tuple.src, sf.tuple.dst);
        let need_arm = !sf.rto_armed;
        env.send_segment(src, dst, &seg);
        if need_arm {
            self.arm_rto(id, env);
        }
    }

    fn send_standalone_datafin(&mut self, id: SubflowId, fin_off: u64, env: &mut StackEnv<'_>) {
        let data_ack = self.current_data_ack();
        let window = self.advertised_window_scaled();
        let dsn = self.wire_dsn(fin_off);
        let sf = &self.subflows[id as usize];
        let seg = TcpSegment {
            hdr: TcpHeader {
                src_port: sf.tuple.src_port,
                dst_port: sf.tuple.dst_port,
                seq: sf.wire_seq(sf.snd_off).into(),
                ack: sf.wire_ack().into(),
                flags: TcpFlags::ACK,
                window,
                options: TcpOptions::from([TcpOption::Mptcp(
                    MpOption::Dss(Dss {
                        data_ack: Some(data_ack),
                        mapping: Some(DssMapping {
                            dsn,
                            ssn: 0,
                            len: 0,
                        }),
                        data_fin: true,
                    })
                    .encode(),
                )]),
            },
            payload: Bytes::new(),
        };
        env.send_segment(sf.tuple.src, sf.tuple.dst, &seg);
    }

    /// Send a pure ACK (subflow + data ack) on `id`, optionally carrying
    /// extra MPTCP options (ADD_ADDR, MP_PRIO, ...).
    fn send_ack(&mut self, id: SubflowId, extra: Vec<MpOption>, env: &mut StackEnv<'_>) {
        let data_ack = self.current_data_ack();
        let window = self.advertised_window_scaled();
        let sf = &self.subflows[id as usize];
        let mut options = if self.fallback {
            TcpOptions::new()
        } else {
            TcpOptions::from([TcpOption::Mptcp(
                MpOption::Dss(Dss {
                    data_ack: Some(data_ack),
                    mapping: None,
                    data_fin: false,
                })
                .encode(),
            )])
        };
        for e in extra {
            options.push(TcpOption::Mptcp(e.encode()));
        }
        let seg = TcpSegment {
            hdr: TcpHeader {
                src_port: sf.tuple.src_port,
                dst_port: sf.tuple.dst_port,
                seq: sf.wire_seq(sf.snd_off).into(),
                ack: sf.wire_ack().into(),
                flags: TcpFlags::ACK,
                window,
                options,
            },
            payload: Bytes::new(),
        };
        env.send_segment(sf.tuple.src, sf.tuple.dst, &seg);
    }

    fn build_fin_segment(
        &self,
        id: SubflowId,
        fin_off: u64,
        data_ack: u64,
        window: u16,
    ) -> SegBuild {
        let sf = &self.subflows[id as usize];
        SegBuild {
            tuple: sf.tuple,
            seg: TcpSegment {
                hdr: TcpHeader {
                    src_port: sf.tuple.src_port,
                    dst_port: sf.tuple.dst_port,
                    seq: sf.wire_seq(fin_off).into(),
                    ack: sf.wire_ack().into(),
                    flags: TcpFlags {
                        fin: true,
                        ..TcpFlags::ACK
                    },
                    window,
                    options: TcpOptions::from([TcpOption::Mptcp(
                        MpOption::Dss(Dss {
                            data_ack: Some(data_ack),
                            mapping: None,
                            data_fin: false,
                        })
                        .encode(),
                    )]),
                },
                payload: Bytes::new(),
            },
        }
    }

    /// LIA coupling: recompute alpha across subflows and push it down.
    fn update_coupling(&mut self) {
        if !self.coupled_cc {
            return;
        }
        let mut inputs = std::mem::take(&mut self.coupling_scratch);
        inputs.clear();
        inputs.extend(
            self.subflows
                .iter()
                .filter(|s| s.state == SfState::Established)
                .map(|s| {
                    (
                        s.cc.cwnd(),
                        s.rtt.srtt().map_or(100_000, |d| d.as_micros() as u64),
                    )
                }),
        );
        if inputs.len() >= 2 {
            let alpha = lia_alpha(&inputs);
            let total: u64 = inputs.iter().map(|(c, _)| c).sum();
            for s in &mut self.subflows {
                if s.state == SfState::Established {
                    s.cc.set_coupling(alpha, total);
                }
            }
        }
        self.coupling_scratch = inputs;
    }

    // ------------------------------------------------------------------
    // Segment receive path
    // ------------------------------------------------------------------

    /// Process an incoming segment for subflow `id`.
    pub fn on_segment(
        &mut self,
        id: SubflowId,
        seg: &TcpSegment,
        cfg: &StackConfig,
        env: &mut StackEnv<'_>,
        events: &mut Vec<PmEvent>,
    ) {
        let state = match self.subflows.get(id as usize) {
            Some(s) => s.state,
            None => return,
        };
        if seg.hdr.flags.rst {
            let err = if state == SfState::SynSent {
                SubflowError::Refused
            } else {
                SubflowError::Reset
            };
            self.kill_subflow(id, err, env, events);
            if self.state == ConnState::Establishing && id == 0 {
                self.abort(env, events);
            } else {
                self.pump(cfg, env, events);
            }
            return;
        }
        match state {
            SfState::SynSent => self.on_segment_synsent(id, seg, cfg, env, events),
            SfState::SynReceived => self.on_segment_synreceived(id, seg, cfg, env, events),
            SfState::Established => self.on_segment_established(id, seg, cfg, env, events),
            SfState::Closed => { /* stale segment for a dead subflow */ }
        }
    }

    fn on_segment_synsent(
        &mut self,
        id: SubflowId,
        seg: &TcpSegment,
        cfg: &StackConfig,
        env: &mut StackEnv<'_>,
        events: &mut Vec<PmEvent>,
    ) {
        if !(seg.hdr.flags.syn && seg.hdr.flags.ack) {
            return;
        }
        // Validate the ACK covers our SYN.
        let sf = &self.subflows[id as usize];
        if seg.hdr.ack.0 != sf.iss.wrapping_add(1) {
            return;
        }
        // Parse MPTCP side.
        let mut capable_key = None;
        let mut join = None;
        for o in seg.mptcp_opts() {
            match MpOption::decode(o) {
                Ok(MpOption::Capable {
                    sender_key,
                    receiver_key: None,
                    ..
                }) => capable_key = Some(sender_key),
                Ok(MpOption::JoinSynAck {
                    backup,
                    hmac,
                    nonce,
                    ..
                }) => join = Some((backup, hmac, nonce)),
                _ => {}
            }
        }
        if id == 0 {
            match capable_key {
                Some(k) => self.set_remote_key(k),
                None => {
                    // Peer fell back to plain TCP: single-subflow mode.
                    self.remote_key = None;
                    self.remote_token = None;
                    self.fallback = true;
                }
            }
        } else {
            // MP_JOIN: verify the responder HMAC.
            let Some((_backup, hmac, nonce_b)) = join else {
                // No valid JOIN response: treat as refusal.
                self.kill_subflow(id, SubflowError::Refused, env, events);
                return;
            };
            let sf = &mut self.subflows[id as usize];
            sf.nonce_remote = nonce_b;
            let expect = join_hmac_b(
                self.local_key,
                self.remote_key.expect("join without keys"),
                self.subflows[id as usize].nonce_local,
                nonce_b,
            );
            if expect != hmac {
                self.kill_subflow(id, SubflowError::Refused, env, events);
                return;
            }
        }
        let now = env.now;
        let sf = &mut self.subflows[id as usize];
        sf.irs = seg.hdr.seq.0;
        sf.reasm = smapp_tcp::Reassembly::new();
        sf.peer_wscale = seg
            .hdr
            .options
            .iter()
            .find_map(|o| match o {
                TcpOption::WindowScale(s) => Some(*s),
                _ => None,
            })
            .unwrap_or(0);
        sf.peer_window = seg.hdr.window as u64; // SYN/ACK window unscaled
        sf.state = SfState::Established;
        sf.stats.established_at = Some(now);
        if let Some(d) = now.checked_since(sf.stats.created_at) {
            sf.rtt.on_sample(d);
        }
        sf.rto.on_ack_progress();
        sf.rto_armed = false;
        let tuple = sf.tuple;
        let backup = sf.backup;
        self.peer_window = seg.hdr.window as u64; // SYN/ACK window is unscaled
        self.send_handshake_ack(id, env);
        if id == 0 {
            self.state = ConnState::Established;
            self.stats.established_at = Some(now);
            events.push(PmEvent::ConnEstablished {
                token: self.token,
                tuple,
                is_client: self.role == Role::Client,
            });
        }
        events.push(PmEvent::SubflowEstablished {
            token: self.token,
            id,
            tuple,
            backup,
            initiated_here: true,
        });
        if id == 0 {
            self.app_event_established(env);
        }
        self.pump(cfg, env, events);
    }

    fn on_segment_synreceived(
        &mut self,
        id: SubflowId,
        seg: &TcpSegment,
        cfg: &StackConfig,
        env: &mut StackEnv<'_>,
        events: &mut Vec<PmEvent>,
    ) {
        let sf = &self.subflows[id as usize];
        // Duplicate SYN (our SYN/ACK was lost): resend it.
        if seg.hdr.flags.syn && !seg.hdr.flags.ack {
            self.send_synack(id, cfg, env);
            return;
        }
        if !seg.hdr.flags.ack || seg.hdr.ack.0 != sf.iss.wrapping_add(1) {
            return;
        }
        // For joins, the third ACK must carry a valid HMAC-A.
        if id != 0 {
            let hmac_ok = seg.mptcp_opts().any(|o| {
                matches!(
                    MpOption::decode(o),
                    Ok(MpOption::JoinAck { hmac })
                        if hmac == join_hmac_a(
                            self.remote_key.expect("join without keys"),
                            self.local_key,
                            self.subflows[id as usize].nonce_remote,
                            self.subflows[id as usize].nonce_local,
                        )
                )
            });
            if !hmac_ok {
                // Not the authenticated third ACK; wait for it (the
                // SYN/ACK RTO will retransmit if it never comes).
                return;
            }
        }
        let now = env.now;
        let sf = &mut self.subflows[id as usize];
        sf.state = SfState::Established;
        sf.stats.established_at = Some(now);
        if let Some(d) = now.checked_since(sf.stats.created_at) {
            sf.rtt.on_sample(d);
        }
        sf.rto.on_ack_progress();
        sf.rto_armed = false;
        sf.peer_window = (seg.hdr.window as u64) << sf.peer_wscale;
        let tuple = sf.tuple;
        let backup = sf.backup;
        self.peer_window = (seg.hdr.window as u64) << sf.peer_wscale;
        if id == 0 {
            self.state = ConnState::Established;
            self.stats.established_at = Some(now);
            events.push(PmEvent::ConnEstablished {
                token: self.token,
                tuple,
                is_client: self.role == Role::Client,
            });
        }
        events.push(PmEvent::SubflowEstablished {
            token: self.token,
            id,
            tuple,
            backup,
            initiated_here: false,
        });
        if id == 0 {
            self.app_event_established(env);
        }
        // The third ACK may carry data; process it in the established path.
        if !seg.payload.is_empty() || seg.hdr.flags.fin {
            self.on_segment_established(id, seg, cfg, env, events);
        } else {
            self.pump(cfg, env, events);
        }
    }

    #[allow(clippy::cognitive_complexity)]
    fn on_segment_established(
        &mut self,
        id: SubflowId,
        seg: &TcpSegment,
        cfg: &StackConfig,
        env: &mut StackEnv<'_>,
        events: &mut Vec<PmEvent>,
    ) {
        // Duplicate SYN/ACK: our handshake ACK was lost — resend it.
        if seg.hdr.flags.syn && seg.hdr.flags.ack {
            let sf = &self.subflows[id as usize];
            if seg.hdr.seq.0 == sf.irs {
                self.send_handshake_ack(id, env);
            }
            return;
        }

        // ---- parse MPTCP options ----
        let mut dss: Option<Dss> = None;
        let mut extra_events: Vec<PmEvent> = Vec::new();
        let mut prio_change: Option<(Option<u8>, bool)> = None;
        let mut fastclose = false;
        let mut any_mp_opt = false;
        for o in seg.mptcp_opts() {
            any_mp_opt = true;
            match MpOption::decode(o) {
                Ok(MpOption::Dss(d)) => dss = Some(d),
                Ok(MpOption::AddAddr {
                    addr_id,
                    addr,
                    port,
                }) if !self.remote_addrs.iter().any(|(i, _, _)| *i == addr_id) => {
                    let p = port.unwrap_or(self.subflows[id as usize].tuple.dst_port);
                    self.remote_addrs.push((addr_id, addr, p));
                    extra_events.push(PmEvent::AddAddrReceived {
                        token: self.token,
                        addr_id,
                        addr,
                        port,
                    });
                }
                Ok(MpOption::RemoveAddr { addr_ids }) => {
                    for aid in addr_ids {
                        self.remote_addrs.retain(|(i, _, _)| *i != aid);
                        extra_events.push(PmEvent::RemAddrReceived {
                            token: self.token,
                            addr_id: aid,
                        });
                    }
                }
                Ok(MpOption::Prio { backup, addr_id }) => prio_change = Some((addr_id, backup)),
                Ok(MpOption::FastClose { .. }) => fastclose = true,
                _ => {}
            }
        }
        events.append(&mut extra_events);
        if dss.is_some() {
            self.peer_dss_seen = true;
        }
        if fastclose {
            self.abort(env, events);
            return;
        }
        if let Some((addr_id, backup)) = prio_change {
            let target = addr_id.unwrap_or(id);
            if let Some(sf) = self.subflows.get_mut(target as usize) {
                sf.backup = backup;
            }
        }

        // ---- fallback inference (RFC 6824 §3.7; `cfg.fallback_inference`
        // exists so the oracle's broken-build detection test can switch the
        // mechanism off and prove the invariant checker catches it) ----
        // MPTCP was negotiated, yet the very first data-bearing segment on
        // the (sole) initial subflow carries no DSS option: a middlebox on
        // the path is stripping MPTCP options — possibly in one direction
        // only, so the handshake looked fine to us. The peer cannot signal
        // mappings; staying in MPTCP mode would discard its bytes as
        // unmapped forever. Fall back to plain TCP on this subflow and
        // refuse further joins, exactly as if the handshake had fallen
        // back.
        if cfg.fallback_inference
            && !self.fallback
            && id == 0
            && self.subflows.len() == 1
            && dss.is_none()
            && !seg.payload.is_empty()
            && self.meta_recv.next_expected() == 0
            && self.peer_fin_off.is_none()
        {
            self.infer_fallback();
        }

        // ---- subflow-level ACK processing ----
        let pre_ack_una = self.subflows[id as usize].una_off;
        let mut data_acked_progress = false;
        if seg.hdr.flags.ack {
            self.process_subflow_ack(id, seg, env, events);
        }
        // Sender-side §3.7 inference, the mirror image of the receiver-side
        // check above: we sent DSS-mapped data, and the (sole) subflow's
        // cumulative ACK is advancing over it via segments carrying no
        // MPTCP options at all, from a peer that has never sent a DSS —
        // a middlebox is stripping our options, so the peer is reading the
        // subflow as plain TCP. Fall back before any connection-level
        // reinjection can place bytes at fresh subflow offsets the peer
        // would misread as new data (identity mapping past the stream end).
        if cfg.fallback_inference
            && !self.fallback
            && id == 0
            && self.subflows.len() == 1
            && !any_mp_opt
            && seg.payload.is_empty()
            && !self.peer_dss_seen
            && self.subflows[id as usize].una_off > pre_ack_una
        {
            self.infer_fallback();
        }
        // Peer window (conn-level; any subflow updates it).
        {
            let sf = &self.subflows[id as usize];
            if sf.state == SfState::Closed {
                return; // killed during ack processing
            }
            self.peer_window = (seg.hdr.window as u64) << sf.peer_wscale;
        }

        // ---- DSS: data ack (fallback: the subflow ACK is the data ack) ----
        if self.fallback {
            let sf0 = &self.subflows[0];
            let acked = sf0.una_off.min(sf0.snd_off);
            let fin_acked = sf0.fin_acked;
            data_acked_progress = self.on_data_ack(acked, env, events);
            if fin_acked {
                self.fin_acked = true;
            }
        } else if let Some(d) = &dss {
            if let Some(wire_ack) = d.data_ack {
                let acked = self.meta_off_from_wire_data_ack(wire_ack);
                data_acked_progress = self.on_data_ack(acked, env, events);
            }
        }

        // ---- payload ----
        let mut should_ack = false;
        if !seg.payload.is_empty() {
            should_ack = true;
            let sf = &mut self.subflows[id as usize];
            let off = sf.offset_from_wire_seq(seg.hdr.seq.0);
            // Record the DSS mapping for these bytes (fallback: identity).
            if self.fallback {
                let sf = &mut self.subflows[id as usize];
                sf.add_recv_map(RecvMap {
                    ssn: off,
                    meta: off,
                    len: seg.payload.len() as u32,
                });
            } else if let Some(d) = &dss {
                if let Some(m) = d.mapping {
                    if m.len > 0 {
                        let meta = self.meta_off_from_wire_dsn(m.dsn);
                        let sf = &mut self.subflows[id as usize];
                        sf.add_recv_map(RecvMap {
                            ssn: off,
                            meta,
                            len: m.len.min(seg.payload.len() as u16) as u32,
                        });
                    }
                }
            }
            let sf = &mut self.subflows[id as usize];
            sf.reasm.insert(off, seg.payload.clone());
            // Pop in-order subflow bytes and lift them to the meta level;
            // each popped chunk carries the subflow offset of its first
            // byte.
            while let Some((ssn, chunk)) = self.subflows[id as usize].reasm.pop_next() {
                let mut inner_off = 0usize;
                while inner_off < chunk.len() {
                    let at = ssn + inner_off as u64;
                    let sf = &self.subflows[id as usize];
                    match sf.meta_offset_of(at) {
                        Some(meta) => {
                            // Extent of this mapping from `at`.
                            let map = sf
                                .recv_maps
                                .iter()
                                .find(|m| m.ssn <= at && at < m.ssn + m.len as u64)
                                .copied()
                                .expect("mapping exists");
                            let take = ((map.ssn + map.len as u64 - at) as usize)
                                .min(chunk.len() - inner_off);
                            let piece = chunk.slice(inner_off..inner_off + take);
                            self.meta_recv.insert(meta, piece);
                            inner_off += take;
                        }
                        None => {
                            // Unmapped bytes: protocol violation; drop the
                            // rest of the chunk (and let the oracle see it).
                            let dropped = (chunk.len() - inner_off) as u64;
                            self.stats.unmapped_rx_bytes += dropped;
                            self.integrity_violation(format!(
                                "{dropped} in-order subflow bytes at ssn {at} carry no \
                                 DSS mapping (discarded)"
                            ));
                            inner_off = chunk.len();
                        }
                    }
                }
            }
            let sf = &mut self.subflows[id as usize];
            sf.gc_recv_maps();
            // Window-bound tap: everything buffered above the meta socket
            // must fit the advertised receive buffer — the sender can only
            // have sent into windows we opened.
            let buffered = self.meta_recv.buffered_bytes();
            if buffered > self.recv_buf {
                let cap = self.recv_buf;
                self.integrity_violation(format!(
                    "receive reassembly holds {buffered} bytes > receive buffer {cap}"
                ));
            }
        }

        // ---- DATA_FIN ----
        if let Some(d) = &dss {
            if d.data_fin {
                let fin_meta = match d.mapping {
                    Some(m) if m.len > 0 => self.meta_off_from_wire_dsn(m.dsn) + m.len as u64,
                    Some(m) => self.meta_off_from_wire_dsn(m.dsn),
                    None => self.meta_recv.next_expected(),
                };
                if self.peer_fin_off.is_none() {
                    self.peer_fin_off = Some(fin_meta);
                }
                should_ack = true;
            }
        }

        // ---- deliver meta data to the app ----
        self.deliver_meta(env);

        // ---- subflow FIN ----
        if seg.hdr.flags.fin {
            should_ack = true;
            let sf = &mut self.subflows[id as usize];
            let off = sf.offset_from_wire_seq(seg.hdr.seq.0);
            let fin_off = off + seg.payload.len() as u64;
            sf.peer_fin_off = Some(fin_off);
        }
        {
            let sf = &mut self.subflows[id as usize];
            if let Some(f) = sf.peer_fin_off {
                if !sf.peer_fin_consumed && sf.reasm.next_expected() >= f {
                    sf.peer_fin_consumed = true;
                }
            }
        }
        if self.fallback && self.peer_fin_off.is_none() {
            let consumed = self.subflows[0].peer_fin_consumed;
            if consumed {
                self.peer_fin_off = Some(self.meta_recv.next_expected());
                self.deliver_meta(env);
            }
        }

        // ---- acknowledge ----
        if should_ack {
            self.send_ack(id, Vec::new(), env);
        }

        // ---- progress: close bookkeeping, new transmissions ----
        let _ = data_acked_progress;
        self.finish_subflow_close(id, env, events);
        self.pump(cfg, env, events);
        self.maybe_conn_closed(env, events);
    }

    /// Cumulative/duplicate ACK handling for one subflow.
    fn process_subflow_ack(
        &mut self,
        id: SubflowId,
        seg: &TcpSegment,
        env: &mut StackEnv<'_>,
        _events: &mut [PmEvent],
    ) {
        let now = env.now;
        let sf = &mut self.subflows[id as usize];
        let acked_off = sf.offset_from_wire_ack(seg.hdr.ack.0);
        let fin_limit = sf.fin_sent_off.map(|f| f + 1);
        let max_valid = fin_limit.unwrap_or(sf.snd_off).max(sf.snd_off);
        if acked_off > max_valid {
            return; // nonsense ACK
        }
        if acked_off > sf.una_off {
            let data_limit = acked_off.min(sf.snd_off);
            let res = sf.flight.on_cum_ack(data_limit, now);
            if let Some(s) = res.rtt_sample {
                sf.rtt.on_sample(s);
                // HyStart-style delay-based slow-start exit: once the RTT
                // has inflated well past the minimum, the pipe is full and
                // further doubling only builds queues (Linux does the same
                // through CUBIC's HyStart).
                if sf.cc.in_slow_start() {
                    if let Some(min) = sf.rtt.min_rtt() {
                        let thresh = min + (min / 4).max(Duration::from_millis(4));
                        if s > thresh {
                            sf.cc.hystart_exit();
                        }
                    }
                }
            }
            if res.acked_bytes > 0 {
                sf.cc.on_ack(res.acked_bytes);
                sf.stats.bytes_acked += res.acked_bytes;
            }
            sf.rto.on_ack_progress();
            sf.una_off = acked_off;
            sf.dupacks = 0;
            let mut retransmit_hole = false;
            if let Some(rec) = sf.recovery {
                if sf.una_off >= rec {
                    sf.cc.on_exit_recovery();
                    sf.recovery = None;
                } else {
                    // RFC 6582 NewReno partial ACK: the next hole starts at
                    // the new una — retransmit it immediately instead of
                    // waiting for the RTO.
                    retransmit_hole = !sf.flight.is_empty();
                }
            }
            if let Some(f) = sf.fin_sent_off {
                if acked_off > f {
                    sf.fin_acked = true;
                }
            }
            // Restart or stop the retransmission timer.
            if sf.has_retransmittable() {
                self.arm_rto(id, env);
            } else {
                self.disarm_rto(id);
            }
            if retransmit_hole {
                self.retransmit_head(id, env);
            }
        } else if acked_off == sf.una_off
            && seg.payload.is_empty()
            && !seg.hdr.flags.syn
            && !seg.hdr.flags.fin
            && !sf.flight.is_empty()
        {
            sf.dupacks += 1;
            if sf.dupacks == 3 && sf.recovery.is_none() {
                let flight = sf.flight.bytes_in_flight();
                sf.cc.on_enter_recovery(flight);
                sf.recovery = Some(sf.snd_off);
                self.retransmit_head(id, env);
            }
        }
    }

    /// Meta-level cumulative data ACK. Returns true when it advanced.
    fn on_data_ack(
        &mut self,
        acked_off: u64,
        env: &mut StackEnv<'_>,
        _events: &mut [PmEvent],
    ) -> bool {
        let fin_plus = self.fin_sent_off.map(|f| f + 1);
        let limit = fin_plus.unwrap_or(self.meta_snd_nxt).max(self.meta_snd_nxt);
        let acked = acked_off.min(limit);
        if acked <= self.meta_una {
            return false;
        }
        if let Some(f) = self.fin_sent_off {
            if acked > f {
                self.fin_acked = true;
            }
        }
        let release_to = acked.min(self.meta_send.tail_offset());
        let had_free = self.meta_send.free();
        self.meta_send.release_until(release_to);
        self.meta_una = acked.min(self.fin_sent_off.unwrap_or(acked));
        self.gc_reinject();
        // Send-side sequence-space bounds: una never passes snd_nxt, and
        // snd_nxt never passes the bytes the application actually wrote.
        if self.meta_una > self.meta_snd_nxt || self.meta_snd_nxt > self.meta_send.tail_offset() {
            let (una, nxt, tail) = (
                self.meta_una,
                self.meta_snd_nxt,
                self.meta_send.tail_offset(),
            );
            self.integrity_violation(format!(
                "meta sequence bounds broken: una={una} snd_nxt={nxt} tail={tail}"
            ));
        }
        if self.meta_send.free() > had_free && !self.app_closed {
            self.app_event_send_space(env);
        }
        true
    }

    /// Insert-order delivery to the application.
    fn deliver_meta(&mut self, env: &mut StackEnv<'_>) {
        while let Some((_, c)) = self.meta_recv.pop_next() {
            self.stats.bytes_received += c.len() as u64;
            self.stats.tap_recvd.update(&c);
            self.app_event_data(env, c);
        }
        if let Some(f) = self.peer_fin_off {
            if !self.eof_delivered && self.meta_recv.next_expected() >= f {
                self.eof_delivered = true;
                self.app_event_eof(env);
            }
        }
    }

    // ------------------------------------------------------------------
    // Close / abort / kill
    // ------------------------------------------------------------------

    /// When the meta close handshake is done in both directions, wind down
    /// the subflows with FIN exchanges.
    fn maybe_close_subflows(&mut self, env: &mut StackEnv<'_>, _events: &mut [PmEvent]) {
        if !(self.fin_acked && self.eof_delivered) {
            return;
        }
        let ids: Vec<SubflowId> = self
            .subflows
            .iter()
            .filter(|s| s.state == SfState::Established && s.fin_sent_off.is_none())
            .map(|s| s.id)
            .collect();
        for id in ids {
            self.subflows[id as usize].fin_wanted = true;
            self.try_send_subflow_fin(id, env);
        }
    }

    fn try_send_subflow_fin(&mut self, id: SubflowId, env: &mut StackEnv<'_>) {
        let sf = &mut self.subflows[id as usize];
        if sf.state != SfState::Established || sf.fin_sent_off.is_some() || !sf.flight.is_empty() {
            return;
        }
        let fin_off = sf.snd_off;
        sf.fin_sent_off = Some(fin_off);
        let data_ack = self.current_data_ack();
        let window = self.advertised_window_scaled();
        let built = self.build_fin_segment(id, fin_off, data_ack, window);
        env.send_segment(built.tuple.src, built.tuple.dst, &built.seg);
        self.arm_rto(id, env);
    }

    /// After ACK processing, progress subflow FIN state machines.
    fn finish_subflow_close(
        &mut self,
        id: SubflowId,
        env: &mut StackEnv<'_>,
        events: &mut Vec<PmEvent>,
    ) {
        // Peer closed toward us and we're done too? Reciprocate the FIN.
        let reciprocate = {
            let sf = &self.subflows[id as usize];
            sf.state == SfState::Established
                && sf.peer_fin_consumed
                && sf.fin_sent_off.is_none()
                && self.fin_acked
                && self.eof_delivered
        };
        if reciprocate {
            self.subflows[id as usize].fin_wanted = true;
        }
        // FIN wanted and flight drained? send it.
        if self.subflows[id as usize].fin_wanted {
            self.try_send_subflow_fin(id, env);
        }
        // Both directions done? Subflow is closed.
        let done = {
            let sf = &self.subflows[id as usize];
            sf.state == SfState::Established && sf.close_complete()
        };
        if done {
            let sf = &mut self.subflows[id as usize];
            sf.state = SfState::Closed;
            sf.rto_armed = false;
            let tuple = sf.tuple;
            self.stats.sf_close_reasons |= SubflowError::None.coverage_bit();
            events.push(PmEvent::SubflowClosed {
                token: self.token,
                id,
                tuple,
                error: SubflowError::None,
            });
        }
    }

    /// Did every subflow close after a completed meta close? Then the
    /// connection is done.
    fn maybe_conn_closed(&mut self, env: &mut StackEnv<'_>, events: &mut Vec<PmEvent>) {
        if self.state != ConnState::Established {
            return;
        }
        let meta_done = self.fin_acked && self.eof_delivered;
        let all_closed = self.subflows.iter().all(|s| s.state == SfState::Closed);
        if meta_done && all_closed {
            self.state = ConnState::Closed;
            self.stats.closed_at = Some(env.now);
            events.push(PmEvent::ConnClosed { token: self.token });
            self.app_event_closed(env.now);
        }
    }

    /// Hard-abort the connection (handshake failure, FASTCLOSE, meta
    /// timeout): every subflow dies, the app learns immediately.
    pub fn abort(&mut self, env: &mut StackEnv<'_>, events: &mut Vec<PmEvent>) {
        if self.state == ConnState::Closed {
            return;
        }
        let ids: Vec<SubflowId> = self.live_subflow_ids();
        for id in ids {
            self.kill_subflow(id, SubflowError::Timeout, env, events);
        }
        self.state = ConnState::Closed;
        self.stats.closed_at = Some(env.now);
        events.push(PmEvent::ConnClosed { token: self.token });
        self.app_event_closed(env.now);
    }

    /// Kill one subflow with an error; unacked meta data it carried becomes
    /// eligible for reinjection elsewhere.
    pub fn kill_subflow(
        &mut self,
        id: SubflowId,
        error: SubflowError,
        _env: &mut StackEnv<'_>,
        events: &mut Vec<PmEvent>,
    ) {
        let Some(sf) = self.subflows.get_mut(id as usize) else {
            return;
        };
        if sf.state == SfState::Closed {
            return;
        }
        sf.state = SfState::Closed;
        sf.rto_armed = false;
        self.stats.sf_close_reasons |= error.coverage_bit();
        let tuple = sf.tuple;
        let ranges: Vec<MetaRange> = sf.flight.iter().filter_map(|s| s.tag.map).collect();
        sf.flight.clear();
        for r in ranges {
            self.add_reinject(r);
        }
        events.push(PmEvent::SubflowClosed {
            token: self.token,
            id,
            tuple,
            error,
        });
    }

    /// PM-requested graceful or hard close of a subflow.
    pub fn pm_close_subflow(
        &mut self,
        id: SubflowId,
        reset: bool,
        cfg: &StackConfig,
        env: &mut StackEnv<'_>,
        events: &mut Vec<PmEvent>,
    ) {
        let Some(sf) = self.subflows.get(id as usize) else {
            return;
        };
        if sf.state == SfState::Closed {
            return;
        }
        if reset || sf.state != SfState::Established {
            // Send an RST so the peer tears down too.
            let sf = &self.subflows[id as usize];
            let seg = TcpSegment {
                hdr: TcpHeader {
                    src_port: sf.tuple.src_port,
                    dst_port: sf.tuple.dst_port,
                    seq: sf.wire_seq(sf.snd_off).into(),
                    ack: sf.wire_ack().into(),
                    flags: TcpFlags::RST,
                    window: 0,
                    options: TcpOptions::new(),
                },
                payload: Bytes::new(),
            };
            env.send_segment(sf.tuple.src, sf.tuple.dst, &seg);
            self.kill_subflow(id, SubflowError::PmRequested, env, events);
            self.pump(cfg, env, events);
        } else {
            // Graceful: stop scheduling data on it, FIN when drained.
            self.subflows[id as usize].fin_wanted = true;
            self.try_send_subflow_fin(id, env);
        }
    }

    /// PM-requested backup-priority change; signals MP_PRIO to the peer.
    pub fn pm_set_backup(&mut self, id: SubflowId, backup: bool, env: &mut StackEnv<'_>) {
        if let Some(sf) = self.subflows.get_mut(id as usize) {
            if sf.state == SfState::Established {
                sf.backup = backup;
                self.send_ack(
                    id,
                    vec![MpOption::Prio {
                        backup,
                        addr_id: None,
                    }],
                    env,
                );
            }
        }
    }

    /// PM-requested address announcement (ADD_ADDR to the peer).
    pub fn pm_announce_addr(&mut self, addr_id: u8, addr: Addr, env: &mut StackEnv<'_>) {
        self.next_local_addr_id = self.next_local_addr_id.max(addr_id + 1);
        if let Some(id) = self.best_live_subflow() {
            self.send_ack(
                id,
                vec![MpOption::AddAddr {
                    addr_id,
                    addr,
                    port: None,
                }],
                env,
            );
        }
    }

    /// PM-requested address withdrawal (REMOVE_ADDR to the peer).
    pub fn pm_withdraw_addr(&mut self, addr_id: u8, env: &mut StackEnv<'_>) {
        if let Some(id) = self.best_live_subflow() {
            self.send_ack(
                id,
                vec![MpOption::RemoveAddr {
                    addr_ids: vec![addr_id],
                }],
                env,
            );
        }
    }

    /// ICMP unreachable observed for subflow `id`.
    pub fn on_icmp_unreachable(
        &mut self,
        id: SubflowId,
        cfg: &StackConfig,
        env: &mut StackEnv<'_>,
        events: &mut Vec<PmEvent>,
    ) {
        let Some(sf) = self.subflows.get_mut(id as usize) else {
            return;
        };
        match sf.state {
            SfState::SynSent | SfState::SynReceived => {
                self.kill_subflow(id, SubflowError::NetUnreachable, env, events);
                if id == 0 && self.state == ConnState::Establishing {
                    self.abort(env, events);
                } else {
                    self.pump(cfg, env, events);
                }
            }
            _ => sf.soft_errors += 1,
        }
    }

    // ------------------------------------------------------------------
    // App event helpers (take/put dance around the borrow checker)
    // ------------------------------------------------------------------

    fn app_event_established(&mut self, env: &mut StackEnv<'_>) {
        if let Some(mut app) = self.app.take() {
            app.on_established(&mut AppCtx { conn: self, env });
            self.app = Some(app);
        }
    }

    fn app_event_data(&mut self, env: &mut StackEnv<'_>, data: Bytes) {
        if let Some(mut app) = self.app.take() {
            app.on_data(&mut AppCtx { conn: self, env }, data);
            self.app = Some(app);
        }
    }

    fn app_event_send_space(&mut self, env: &mut StackEnv<'_>) {
        if let Some(mut app) = self.app.take() {
            app.on_send_space(&mut AppCtx { conn: self, env });
            self.app = Some(app);
        }
    }

    fn app_event_eof(&mut self, env: &mut StackEnv<'_>) {
        if let Some(mut app) = self.app.take() {
            app.on_eof(&mut AppCtx { conn: self, env });
            self.app = Some(app);
        }
    }

    fn app_event_closed(&mut self, now: SimTime) {
        if let Some(app) = self.app.as_mut() {
            app.on_closed(now);
        }
    }

    /// Dispatch an application timer.
    pub fn on_app_timer(
        &mut self,
        token: u64,
        cfg: &StackConfig,
        env: &mut StackEnv<'_>,
        events: &mut Vec<PmEvent>,
    ) {
        if let Some(mut app) = self.app.take() {
            app.on_app_timer(&mut AppCtx { conn: self, env }, token);
            self.app = Some(app);
        }
        self.pump(cfg, env, events);
    }

    /// Let the app push more data / react, then pump (host calls this after
    /// out-of-band app interactions).
    pub fn kick(&mut self, cfg: &StackConfig, env: &mut StackEnv<'_>, events: &mut Vec<PmEvent>) {
        self.pump(cfg, env, events);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::app::NullApp;
    use smapp_sim::SimRng;

    fn tuple() -> FourTuple {
        FourTuple {
            src: Addr::new(10, 0, 0, 1),
            src_port: 40_000,
            dst: Addr::new(10, 0, 0, 2),
            dst_port: 80,
        }
    }

    #[test]
    fn client_emits_capable_syn() {
        let mut rng = SimRng::seed_from_u64(1);
        let mut env = StackEnv::new(SimTime::ZERO, &mut rng);
        let mut events = Vec::new();
        let cfg = StackConfig::default();
        let conn = Connection::client(0, &cfg, tuple(), Box::new(NullApp), &mut env, &mut events);
        assert_eq!(conn.state, ConnState::Establishing);
        assert_eq!(env.out.len(), 1);
        let seg = TcpSegment::decode(&env.out[0].seg).unwrap();
        assert!(seg.hdr.flags.syn && !seg.hdr.flags.ack);
        let mp = MpOption::decode(seg.mptcp_opt().unwrap()).unwrap();
        assert!(matches!(
            mp,
            MpOption::Capable {
                receiver_key: None,
                ..
            }
        ));
        assert!(matches!(
            events[0],
            PmEvent::ConnCreated {
                is_client: true,
                ..
            }
        ));
        // One RTO timer armed for the SYN.
        assert_eq!(env.timers.len(), 1);
    }

    #[test]
    fn plain_tcp_client_emits_bare_syn() {
        let mut rng = SimRng::seed_from_u64(1);
        let mut env = StackEnv::new(SimTime::ZERO, &mut rng);
        let mut events = Vec::new();
        let cfg = StackConfig {
            mptcp_enabled: false,
            ..Default::default()
        };
        let _conn = Connection::client(0, &cfg, tuple(), Box::new(NullApp), &mut env, &mut events);
        let seg = TcpSegment::decode(&env.out[0].seg).unwrap();
        assert!(seg.mptcp_opt().is_none());
    }

    #[test]
    fn reinject_ranges_coalesce() {
        let mut rng = SimRng::seed_from_u64(2);
        let mut env = StackEnv::new(SimTime::ZERO, &mut rng);
        let mut events = Vec::new();
        let cfg = StackConfig::default();
        let mut conn =
            Connection::client(0, &cfg, tuple(), Box::new(NullApp), &mut env, &mut events);
        conn.add_reinject(MetaRange { off: 0, len: 100 });
        conn.add_reinject(MetaRange { off: 100, len: 100 });
        conn.add_reinject(MetaRange { off: 50, len: 20 });
        assert_eq!(conn.reinject_pending(), 200);
        assert_eq!(conn.reinject.len(), 1);
        conn.add_reinject(MetaRange { off: 500, len: 10 });
        assert_eq!(conn.reinject.len(), 2);
        // Chunks come out in offset order, clipped to max_len.
        let c1 = conn.take_reinject_chunk(150).unwrap();
        assert_eq!((c1.off, c1.len), (0, 150));
        let c2 = conn.take_reinject_chunk(150).unwrap();
        assert_eq!((c2.off, c2.len), (150, 50));
        let c3 = conn.take_reinject_chunk(150).unwrap();
        assert_eq!((c3.off, c3.len), (500, 10));
        assert!(conn.take_reinject_chunk(10).is_none());
    }

    #[test]
    fn reinject_respects_meta_una() {
        let mut rng = SimRng::seed_from_u64(3);
        let mut env = StackEnv::new(SimTime::ZERO, &mut rng);
        let mut events = Vec::new();
        let cfg = StackConfig::default();
        let mut conn =
            Connection::client(0, &cfg, tuple(), Box::new(NullApp), &mut env, &mut events);
        conn.meta_una = 80;
        conn.add_reinject(MetaRange { off: 0, len: 100 });
        let c = conn.take_reinject_chunk(1000).unwrap();
        assert_eq!((c.off, c.len), (80, 20));
    }

    #[test]
    fn dsn_conversions_roundtrip() {
        let mut rng = SimRng::seed_from_u64(4);
        let mut env = StackEnv::new(SimTime::ZERO, &mut rng);
        let mut events = Vec::new();
        let cfg = StackConfig::default();
        let mut conn =
            Connection::client(0, &cfg, tuple(), Box::new(NullApp), &mut env, &mut events);
        conn.idsn_remote = conn.idsn_local; // pretend symmetric for the test
        let off = 123_456u64;
        let wire = conn.wire_dsn(off);
        assert_eq!(conn.meta_off_from_wire_dsn(wire), off);
    }
}
