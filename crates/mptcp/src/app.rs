//! Applications over the byte-stream service.
//!
//! An [`App`] rides on one connection: it is told when the connection is
//! established, receives the in-order byte stream, writes into the send
//! buffer, and can arm private timers. The SMAPP premise is that apps see
//! *only* this socket-like interface — everything multipath-aware goes
//! through the subflow controller instead.
//!
//! Ready-made apps used by the experiments live in [`crate::apps`].

use bytes::Bytes;
use smapp_sim::{Addr, SimTime};

use crate::conn::Connection;
use crate::env::{ConnectRequest, StackEnv};

/// Application callbacks. All default to no-ops so simple apps stay simple.
pub trait App {
    /// The connection completed its three-way handshake.
    fn on_established(&mut self, ctx: &mut AppCtx<'_, '_>) {
        let _ = ctx;
    }
    /// In-order data arrived.
    fn on_data(&mut self, ctx: &mut AppCtx<'_, '_>, data: Bytes) {
        let _ = (ctx, data);
    }
    /// Send-buffer space became available after being full.
    fn on_send_space(&mut self, ctx: &mut AppCtx<'_, '_>) {
        let _ = ctx;
    }
    /// A timer armed via [`AppCtx::set_timer`] fired.
    fn on_app_timer(&mut self, ctx: &mut AppCtx<'_, '_>, token: u64) {
        let _ = (ctx, token);
    }
    /// The peer finished sending (DATA_FIN consumed — end of stream).
    fn on_eof(&mut self, ctx: &mut AppCtx<'_, '_>) {
        let _ = ctx;
    }
    /// The connection is fully closed (both directions done or aborted).
    fn on_closed(&mut self, now: SimTime) {
        let _ = now;
    }
    /// Downcast support for post-run inspection.
    fn as_any(&self) -> &dyn std::any::Any;
    /// Mutable downcast support.
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any;
}

/// What an application may do during a callback.
pub struct AppCtx<'a, 'e> {
    pub(crate) conn: &'a mut Connection,
    pub(crate) env: &'a mut StackEnv<'e>,
}

impl AppCtx<'_, '_> {
    /// Current time.
    pub fn now(&self) -> SimTime {
        self.env.now
    }

    /// Write bytes into the connection send buffer; returns how many were
    /// accepted (backpressure applies — watch
    /// [`App::on_send_space`] for room).
    pub fn write(&mut self, data: &[u8]) -> usize {
        self.conn.app_write(data)
    }

    /// Free space in the send buffer.
    pub fn send_space(&self) -> u64 {
        self.conn.send_space()
    }

    /// Finish sending: after buffered data drains, a DATA_FIN is sent.
    pub fn close(&mut self) {
        self.conn.app_close();
    }

    /// Bytes of application payload acknowledged by the peer so far.
    pub fn bytes_acked(&self) -> u64 {
        self.conn.meta_una()
    }

    /// Bytes of application payload delivered to us so far.
    pub fn bytes_received(&self) -> u64 {
        self.conn.bytes_delivered()
    }

    /// Arm an application timer. `token` must fit in 32 bits (the stack
    /// multiplexes it into its timer space).
    pub fn set_timer(&mut self, after: std::time::Duration, token: u32) {
        let t =
            crate::stack::timer_token(crate::stack::TimerKind::App, self.conn.idx, 0, token as u64);
        self.env.timers.push((after, t));
    }

    /// Ask the host to open a brand-new connection (used by workload
    /// drivers such as the Fig. 3 repeated-GET client).
    pub fn connect(&mut self, dst: Addr, dst_port: u16, app: Box<dyn App>) {
        self.env.connects.push(ConnectRequest {
            src: None,
            dst,
            dst_port,
            app,
        });
    }

    /// Ask the simulation to stop (workload complete).
    pub fn stop_sim(&mut self) {
        self.env.stop = true;
    }
}

/// An app that does nothing (server-side default while testing).
#[derive(Debug, Default)]
pub struct NullApp;

impl App for NullApp {
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}
