//! Multipath TCP option codec (RFC 6824).
//!
//! All MPTCP signalling travels in TCP option kind 30; the first nibble of
//! the option payload selects a *subtype*. `smapp-tcp` carries that payload
//! opaquely as [`smapp_tcp::TcpOption::Mptcp`]; this module encodes and
//! decodes it.
//!
//! The connection-level checksum (negotiated off by default in the Linux
//! kernel deployments the paper ran on) is not used, so DSS options carry
//! no checksum field. Data sequence numbers and data ACKs always use the
//! 8-byte form on encode; the 4-byte forms are accepted on decode.

use bytes::BufMut;
use smapp_sim::Addr;
use smapp_tcp::OptBytes;

/// MPTCP protocol version we speak (RFC 6824 = version 0).
pub const MPTCP_VERSION: u8 = 0;
/// `MP_CAPABLE` flag bit H: use HMAC-SHA1 (always set).
pub const CAPABLE_FLAG_HMAC_SHA1: u8 = 0x01;

/// Subtype numbers.
mod subtype {
    pub const MP_CAPABLE: u8 = 0x0;
    pub const MP_JOIN: u8 = 0x1;
    pub const DSS: u8 = 0x2;
    pub const ADD_ADDR: u8 = 0x3;
    pub const REMOVE_ADDR: u8 = 0x4;
    pub const MP_PRIO: u8 = 0x5;
    pub const MP_FAIL: u8 = 0x6;
    pub const MP_FASTCLOSE: u8 = 0x7;
}

/// The data-sequence-signal option body.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub struct Dss {
    /// Connection-level cumulative acknowledgment (data ACK).
    pub data_ack: Option<u64>,
    /// Mapping of subflow payload to the data sequence space.
    pub mapping: Option<DssMapping>,
    /// DATA_FIN: the mapping (or, alone, the data ack position) signals
    /// the end of the data stream.
    pub data_fin: bool,
}

/// One DSS mapping: `len` bytes starting at subflow-relative sequence
/// `ssn` carry data sequence numbers starting at `dsn`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DssMapping {
    /// Data sequence number of the first mapped byte.
    pub dsn: u64,
    /// Relative subflow sequence number of the first mapped byte.
    pub ssn: u32,
    /// Mapped length in bytes (a DATA_FIN-only mapping may be 0).
    pub len: u16,
}

/// A decoded MPTCP option.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MpOption {
    /// `MP_CAPABLE`: SYN and SYN/ACK carry one key; the third ACK carries
    /// both (sender's first).
    Capable {
        /// Protocol version (0).
        version: u8,
        /// Flag bits A–H.
        flags: u8,
        /// The sender's key.
        sender_key: u64,
        /// The receiver's key (third-ACK form only).
        receiver_key: Option<u64>,
    },
    /// `MP_JOIN` on a SYN: request to add a subflow to the connection
    /// identified by `token`.
    JoinSyn {
        /// Backup-priority bit B.
        backup: bool,
        /// Sender's address identifier.
        addr_id: u8,
        /// Receiver's connection token.
        token: u32,
        /// Sender's random nonce.
        nonce: u32,
    },
    /// `MP_JOIN` on a SYN/ACK: responder authentication.
    JoinSynAck {
        /// Backup-priority bit B.
        backup: bool,
        /// Sender's address identifier.
        addr_id: u8,
        /// Truncated (64-bit) HMAC-B.
        hmac: u64,
        /// Sender's random nonce.
        nonce: u32,
    },
    /// `MP_JOIN` on the third ACK: initiator authentication (full HMAC-A).
    JoinAck {
        /// 160-bit HMAC-A.
        hmac: [u8; 20],
    },
    /// Data sequence signal.
    Dss(Dss),
    /// Announce an additional address (+optional port).
    AddAddr {
        /// Address identifier.
        addr_id: u8,
        /// The announced IPv4-style address.
        addr: Addr,
        /// Optional port (absent = same as the connection).
        port: Option<u16>,
    },
    /// Withdraw previously announced addresses.
    RemoveAddr {
        /// Address identifiers being removed.
        addr_ids: Vec<u8>,
    },
    /// Change subflow priority (`MP_PRIO`).
    Prio {
        /// New backup-priority value.
        backup: bool,
        /// Optionally address the change to another subflow by address id.
        addr_id: Option<u8>,
    },
    /// Subflow-level failure with the failing DSN (`MP_FAIL`).
    Fail {
        /// Data sequence number that could not be handled.
        dsn: u64,
    },
    /// Abort the whole connection (`MP_FASTCLOSE`).
    FastClose {
        /// Receiver's key, proving the sender belongs to the connection.
        key: u64,
    },
}

/// Errors from [`MpOption::decode`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MpParseError {
    /// Payload empty or shorter than its subtype requires.
    Truncated,
    /// Unknown subtype nibble.
    BadSubtype(u8),
    /// Subtype recognised but the length fits no defined form.
    BadLength {
        /// The subtype in question.
        subtype: u8,
        /// The offending payload length.
        len: usize,
    },
}

impl std::fmt::Display for MpParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MpParseError::Truncated => write!(f, "mptcp option truncated"),
            MpParseError::BadSubtype(s) => write!(f, "unknown mptcp subtype {s}"),
            MpParseError::BadLength { subtype, len } => {
                write!(f, "bad length {len} for mptcp subtype {subtype}")
            }
        }
    }
}

impl std::error::Error for MpParseError {}

// DSS flag bits (RFC 6824 §3.3).
const DSS_FLAG_DATA_ACK: u8 = 0x01;
const DSS_FLAG_DATA_ACK8: u8 = 0x02;
const DSS_FLAG_DSN: u8 = 0x04;
const DSS_FLAG_DSN8: u8 = 0x08;
const DSS_FLAG_DATA_FIN: u8 = 0x10;

impl MpOption {
    /// Encode to the option payload carried inside TCP option kind 30.
    ///
    /// Returns inline fixed-capacity bytes: MPTCP option bodies top out at
    /// 22 bytes (JoinAck), well under the 38-byte [`OptBytes`] limit, so
    /// encoding allocates nothing.
    pub fn encode(&self) -> OptBytes {
        let mut b = OptBytes::new();
        match self {
            MpOption::Capable {
                version,
                flags,
                sender_key,
                receiver_key,
            } => {
                b.put_u8(subtype::MP_CAPABLE << 4 | (version & 0x0F));
                b.put_u8(*flags);
                b.put_u64(*sender_key);
                if let Some(rk) = receiver_key {
                    b.put_u64(*rk);
                }
            }
            MpOption::JoinSyn {
                backup,
                addr_id,
                token,
                nonce,
            } => {
                b.put_u8(subtype::MP_JOIN << 4 | (*backup as u8));
                b.put_u8(*addr_id);
                b.put_u32(*token);
                b.put_u32(*nonce);
            }
            MpOption::JoinSynAck {
                backup,
                addr_id,
                hmac,
                nonce,
            } => {
                b.put_u8(subtype::MP_JOIN << 4 | (*backup as u8));
                b.put_u8(*addr_id);
                b.put_u64(*hmac);
                b.put_u32(*nonce);
            }
            MpOption::JoinAck { hmac } => {
                b.put_u8(subtype::MP_JOIN << 4);
                b.put_u8(0);
                b.put_slice(hmac);
            }
            MpOption::Dss(dss) => {
                let mut flags = 0u8;
                if dss.data_ack.is_some() {
                    flags |= DSS_FLAG_DATA_ACK | DSS_FLAG_DATA_ACK8;
                }
                if dss.mapping.is_some() {
                    flags |= DSS_FLAG_DSN | DSS_FLAG_DSN8;
                }
                if dss.data_fin {
                    flags |= DSS_FLAG_DATA_FIN;
                }
                b.put_u8(subtype::DSS << 4);
                b.put_u8(flags);
                if let Some(ack) = dss.data_ack {
                    b.put_u64(ack);
                }
                if let Some(m) = dss.mapping {
                    b.put_u64(m.dsn);
                    b.put_u32(m.ssn);
                    b.put_u16(m.len);
                    // No checksum: not negotiated.
                }
            }
            MpOption::AddAddr {
                addr_id,
                addr,
                port,
            } => {
                // IPVer nibble = 4.
                b.put_u8(subtype::ADD_ADDR << 4 | 4);
                b.put_u8(*addr_id);
                b.put_u32(addr.0);
                if let Some(p) = port {
                    b.put_u16(*p);
                }
            }
            MpOption::RemoveAddr { addr_ids } => {
                b.put_u8(subtype::REMOVE_ADDR << 4);
                for id in addr_ids {
                    b.put_u8(*id);
                }
            }
            MpOption::Prio { backup, addr_id } => {
                b.put_u8(subtype::MP_PRIO << 4 | (*backup as u8));
                if let Some(id) = addr_id {
                    b.put_u8(*id);
                }
            }
            MpOption::Fail { dsn } => {
                b.put_u8(subtype::MP_FAIL << 4);
                b.put_u8(0);
                b.put_u64(*dsn);
            }
            MpOption::FastClose { key } => {
                b.put_u8(subtype::MP_FASTCLOSE << 4);
                b.put_u8(0);
                b.put_u64(*key);
            }
        }
        b
    }

    /// Decode from the payload of TCP option kind 30.
    pub fn decode(p: &[u8]) -> Result<MpOption, MpParseError> {
        if p.is_empty() {
            return Err(MpParseError::Truncated);
        }
        let st = p[0] >> 4;
        let low = p[0] & 0x0F;
        match st {
            subtype::MP_CAPABLE => match p.len() {
                10 | 18 => Ok(MpOption::Capable {
                    version: low,
                    flags: p[1],
                    sender_key: be64(&p[2..10]),
                    receiver_key: (p.len() == 18).then(|| be64(&p[10..18])),
                }),
                l => Err(MpParseError::BadLength {
                    subtype: st,
                    len: l,
                }),
            },
            subtype::MP_JOIN => match p.len() {
                10 => Ok(MpOption::JoinSyn {
                    backup: low & 1 != 0,
                    addr_id: p[1],
                    token: be32(&p[2..6]),
                    nonce: be32(&p[6..10]),
                }),
                14 => Ok(MpOption::JoinSynAck {
                    backup: low & 1 != 0,
                    addr_id: p[1],
                    hmac: be64(&p[2..10]),
                    nonce: be32(&p[10..14]),
                }),
                22 => Ok(MpOption::JoinAck {
                    hmac: p[2..22].try_into().expect("length checked"),
                }),
                l => Err(MpParseError::BadLength {
                    subtype: st,
                    len: l,
                }),
            },
            subtype::DSS => {
                if p.len() < 2 {
                    return Err(MpParseError::Truncated);
                }
                let flags = p[1];
                let mut i = 2usize;
                let mut dss = Dss {
                    data_fin: flags & DSS_FLAG_DATA_FIN != 0,
                    ..Default::default()
                };
                if flags & DSS_FLAG_DATA_ACK != 0 {
                    let w = if flags & DSS_FLAG_DATA_ACK8 != 0 {
                        8
                    } else {
                        4
                    };
                    if p.len() < i + w {
                        return Err(MpParseError::Truncated);
                    }
                    dss.data_ack = Some(if w == 8 {
                        be64(&p[i..i + 8])
                    } else {
                        be32(&p[i..i + 4]) as u64
                    });
                    i += w;
                }
                if flags & DSS_FLAG_DSN != 0 {
                    let w = if flags & DSS_FLAG_DSN8 != 0 { 8 } else { 4 };
                    if p.len() < i + w + 6 {
                        return Err(MpParseError::Truncated);
                    }
                    let dsn = if w == 8 {
                        be64(&p[i..i + 8])
                    } else {
                        be32(&p[i..i + 4]) as u64
                    };
                    i += w;
                    let ssn = be32(&p[i..i + 4]);
                    let len = u16::from_be_bytes([p[i + 4], p[i + 5]]);
                    dss.mapping = Some(DssMapping { dsn, ssn, len });
                }
                Ok(MpOption::Dss(dss))
            }
            subtype::ADD_ADDR => match p.len() {
                6 | 8 => Ok(MpOption::AddAddr {
                    addr_id: p[1],
                    addr: Addr(be32(&p[2..6])),
                    port: (p.len() == 8).then(|| u16::from_be_bytes([p[6], p[7]])),
                }),
                l => Err(MpParseError::BadLength {
                    subtype: st,
                    len: l,
                }),
            },
            subtype::REMOVE_ADDR => {
                if p.len() < 2 {
                    return Err(MpParseError::Truncated);
                }
                Ok(MpOption::RemoveAddr {
                    addr_ids: Vec::from(&p[1..]),
                })
            }
            subtype::MP_PRIO => match p.len() {
                1 => Ok(MpOption::Prio {
                    backup: low & 1 != 0,
                    addr_id: None,
                }),
                2 => Ok(MpOption::Prio {
                    backup: low & 1 != 0,
                    addr_id: Some(p[1]),
                }),
                l => Err(MpParseError::BadLength {
                    subtype: st,
                    len: l,
                }),
            },
            subtype::MP_FAIL => {
                if p.len() != 10 {
                    return Err(MpParseError::BadLength {
                        subtype: st,
                        len: p.len(),
                    });
                }
                Ok(MpOption::Fail {
                    dsn: be64(&p[2..10]),
                })
            }
            subtype::MP_FASTCLOSE => {
                if p.len() != 10 {
                    return Err(MpParseError::BadLength {
                        subtype: st,
                        len: p.len(),
                    });
                }
                Ok(MpOption::FastClose {
                    key: be64(&p[2..10]),
                })
            }
            other => Err(MpParseError::BadSubtype(other)),
        }
    }
}

fn be32(b: &[u8]) -> u32 {
    u32::from_be_bytes([b[0], b[1], b[2], b[3]])
}

fn be64(b: &[u8]) -> u64 {
    u64::from_be_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(opt: MpOption) {
        let enc = opt.encode();
        let dec = MpOption::decode(&enc).unwrap();
        assert_eq!(dec, opt);
    }

    #[test]
    fn capable_forms() {
        roundtrip(MpOption::Capable {
            version: 0,
            flags: CAPABLE_FLAG_HMAC_SHA1,
            sender_key: 0x1122_3344_5566_7788,
            receiver_key: None,
        });
        roundtrip(MpOption::Capable {
            version: 0,
            flags: CAPABLE_FLAG_HMAC_SHA1,
            sender_key: 1,
            receiver_key: Some(2),
        });
    }

    #[test]
    fn join_forms() {
        roundtrip(MpOption::JoinSyn {
            backup: true,
            addr_id: 2,
            token: 0xCAFE_BABE,
            nonce: 42,
        });
        roundtrip(MpOption::JoinSynAck {
            backup: false,
            addr_id: 3,
            hmac: 0xDEAD_BEEF_0BAD_F00D,
            nonce: 7,
        });
        roundtrip(MpOption::JoinAck { hmac: [9; 20] });
    }

    #[test]
    fn dss_forms() {
        roundtrip(MpOption::Dss(Dss {
            data_ack: Some(123_456_789_000),
            mapping: None,
            data_fin: false,
        }));
        roundtrip(MpOption::Dss(Dss {
            data_ack: None,
            mapping: Some(DssMapping {
                dsn: 99,
                ssn: 7,
                len: 1400,
            }),
            data_fin: false,
        }));
        roundtrip(MpOption::Dss(Dss {
            data_ack: Some(5),
            mapping: Some(DssMapping {
                dsn: 1,
                ssn: 2,
                len: 0,
            }),
            data_fin: true,
        }));
    }

    #[test]
    fn dss_decodes_short_forms() {
        // Hand-built DSS with 4-byte data ack and 4-byte DSN.
        let mut p = vec![subtype::DSS << 4, DSS_FLAG_DATA_ACK | DSS_FLAG_DSN];
        p.extend_from_slice(&0x0A0B0C0Du32.to_be_bytes()); // data ack
        p.extend_from_slice(&0x01020304u32.to_be_bytes()); // dsn
        p.extend_from_slice(&7u32.to_be_bytes()); // ssn
        p.extend_from_slice(&100u16.to_be_bytes()); // len
        let got = MpOption::decode(&p).unwrap();
        assert_eq!(
            got,
            MpOption::Dss(Dss {
                data_ack: Some(0x0A0B0C0D),
                mapping: Some(DssMapping {
                    dsn: 0x01020304,
                    ssn: 7,
                    len: 100
                }),
                data_fin: false,
            })
        );
    }

    #[test]
    fn addr_options() {
        roundtrip(MpOption::AddAddr {
            addr_id: 5,
            addr: Addr::new(10, 0, 2, 1),
            port: None,
        });
        roundtrip(MpOption::AddAddr {
            addr_id: 5,
            addr: Addr::new(10, 0, 2, 1),
            port: Some(8080),
        });
        roundtrip(MpOption::RemoveAddr {
            addr_ids: vec![1, 2, 3],
        });
    }

    #[test]
    fn prio_fail_fastclose() {
        roundtrip(MpOption::Prio {
            backup: true,
            addr_id: None,
        });
        roundtrip(MpOption::Prio {
            backup: false,
            addr_id: Some(9),
        });
        roundtrip(MpOption::Fail {
            dsn: 0xFFFF_0000_1111,
        });
        roundtrip(MpOption::FastClose { key: 0xABCD });
    }

    #[test]
    fn decode_errors() {
        assert_eq!(MpOption::decode(&[]), Err(MpParseError::Truncated));
        assert_eq!(
            MpOption::decode(&[0x80, 0]),
            Err(MpParseError::BadSubtype(8))
        );
        assert_eq!(
            MpOption::decode(&[0x00, 0, 1]),
            Err(MpParseError::BadLength { subtype: 0, len: 3 })
        );
        // DSS claiming a mapping but truncated.
        assert_eq!(
            MpOption::decode(&[subtype::DSS << 4, DSS_FLAG_DSN | DSS_FLAG_DSN8, 0, 0]),
            Err(MpParseError::Truncated)
        );
    }

    #[test]
    fn join_syn_roundtrips_through_tcp_option() {
        // Full path: MpOption -> TcpOption::Mptcp -> TCP wire -> back.
        use smapp_tcp::{TcpHeader, TcpOption, TcpSegment};
        let mp = MpOption::JoinSyn {
            backup: false,
            addr_id: 1,
            token: 0x1234_5678,
            nonce: 0x9ABC_DEF0,
        };
        let seg = TcpSegment {
            hdr: TcpHeader {
                options: smapp_tcp::TcpOptions::from([TcpOption::Mptcp(mp.encode())]),
                ..Default::default()
            },
            payload: bytes::Bytes::new(),
        };
        let wire = seg.encode().unwrap();
        let back = TcpSegment::decode(&wire).unwrap();
        let opt = back.mptcp_opt().unwrap();
        assert_eq!(MpOption::decode(opt).unwrap(), mp);
    }
}

#[cfg(test)]
mod prop {
    use super::*;
    use proptest::prelude::*;

    fn arb_option() -> impl Strategy<Value = MpOption> {
        prop_oneof![
            (
                any::<u8>(),
                any::<u64>(),
                proptest::option::of(any::<u64>())
            )
                .prop_map(|(flags, sk, rk)| MpOption::Capable {
                    version: 0,
                    flags,
                    sender_key: sk,
                    receiver_key: rk,
                }),
            (any::<bool>(), any::<u8>(), any::<u32>(), any::<u32>()).prop_map(
                |(backup, addr_id, token, nonce)| MpOption::JoinSyn {
                    backup,
                    addr_id,
                    token,
                    nonce,
                }
            ),
            (any::<bool>(), any::<u8>(), any::<u64>(), any::<u32>()).prop_map(
                |(backup, addr_id, hmac, nonce)| MpOption::JoinSynAck {
                    backup,
                    addr_id,
                    hmac,
                    nonce,
                }
            ),
            any::<[u8; 20]>().prop_map(|hmac| MpOption::JoinAck { hmac }),
            (
                proptest::option::of(any::<u64>()),
                proptest::option::of((any::<u64>(), any::<u32>(), any::<u16>())),
                any::<bool>()
            )
                .prop_map(|(ack, map, fin)| MpOption::Dss(Dss {
                    data_ack: ack,
                    mapping: map.map(|(dsn, ssn, len)| DssMapping { dsn, ssn, len }),
                    data_fin: fin,
                })),
            (
                any::<u8>(),
                any::<u32>(),
                proptest::option::of(any::<u16>())
            )
                .prop_map(|(addr_id, a, port)| MpOption::AddAddr {
                    addr_id,
                    addr: Addr(a),
                    port,
                }),
            proptest::collection::vec(any::<u8>(), 1..8)
                .prop_map(|addr_ids| MpOption::RemoveAddr { addr_ids }),
            (any::<bool>(), proptest::option::of(any::<u8>()))
                .prop_map(|(backup, addr_id)| MpOption::Prio { backup, addr_id }),
            any::<u64>().prop_map(|dsn| MpOption::Fail { dsn }),
            any::<u64>().prop_map(|key| MpOption::FastClose { key }),
        ]
    }

    proptest! {
        #[test]
        fn roundtrip(opt in arb_option()) {
            let enc = opt.encode();
            prop_assert_eq!(MpOption::decode(&enc).unwrap(), opt);
        }

        #[test]
        fn decode_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..40)) {
            let _ = MpOption::decode(&bytes);
        }
    }
}
