//! The stack's side-effect channel.
//!
//! Stack entry points collect their outputs — packets to transmit, timers
//! to arm, connect requests from applications, a stop request — in a
//! [`StackEnv`] provided by the caller (the host node, or a test harness).
//! This keeps the protocol machinery free of any direct dependency on the
//! simulator's node/context machinery and makes every state transition
//! unit-testable.

use bytes::Bytes;
use smapp_sim::{Addr, SimRng, SimTime};
use smapp_tcp::TcpSegment;

use crate::app::App;

/// A packet the stack wants transmitted.
#[derive(Debug)]
pub struct OutPacket {
    /// Source address (selects the outgoing interface on the host).
    pub src: Addr,
    /// Destination address.
    pub dst: Addr,
    /// Encoded TCP segment bytes.
    pub seg: Bytes,
}

/// An application's request to open a new connection.
pub struct ConnectRequest {
    /// Bind to this local address (None = host default).
    pub src: Option<Addr>,
    /// Remote address.
    pub dst: Addr,
    /// Remote port.
    pub dst_port: u16,
    /// Application to attach to the new connection.
    pub app: Box<dyn App>,
}

impl std::fmt::Debug for ConnectRequest {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ConnectRequest(-> {}:{})", self.dst, self.dst_port)
    }
}

/// Mutable context threaded through every stack entry point.
pub struct StackEnv<'a> {
    /// Current time.
    pub now: SimTime,
    /// Simulation RNG (keys, nonces, ISS, ephemeral ports).
    pub rng: &'a mut SimRng,
    /// Packets to transmit, in order.
    pub out: Vec<OutPacket>,
    /// Timers to arm: `(delay, stack-domain token)`.
    pub timers: Vec<(std::time::Duration, u64)>,
    /// Connect requests raised by applications during this call.
    pub connects: Vec<ConnectRequest>,
    /// Set when an application asks the whole simulation to stop.
    pub stop: bool,
}

impl<'a> StackEnv<'a> {
    /// A fresh env at `now`.
    pub fn new(now: SimTime, rng: &'a mut SimRng) -> Self {
        StackEnv {
            now,
            rng,
            out: Vec::new(),
            timers: Vec::new(),
            connects: Vec::new(),
            stop: false,
        }
    }

    /// Encode and queue a segment for transmission.
    ///
    /// # Panics
    /// Panics if the segment's options exceed the TCP limit — the stack
    /// never builds such segments, so this is an engine bug.
    pub fn send_segment(&mut self, src: Addr, dst: Addr, seg: &TcpSegment) {
        let bytes = seg.encode().expect("stack built an unencodable segment");
        self.out.push(OutPacket {
            src,
            dst,
            seg: bytes,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smapp_tcp::{TcpHeader, TcpSegment};

    #[test]
    fn send_segment_encodes() {
        let mut rng = SimRng::seed_from_u64(1);
        let mut env = StackEnv::new(SimTime::ZERO, &mut rng);
        let seg = TcpSegment {
            hdr: TcpHeader {
                src_port: 10,
                dst_port: 20,
                ..Default::default()
            },
            payload: Bytes::from_static(b"hi"),
        };
        env.send_segment(Addr::new(1, 1, 1, 1), Addr::new(2, 2, 2, 2), &seg);
        assert_eq!(env.out.len(), 1);
        let back = TcpSegment::decode(&env.out[0].seg).unwrap();
        assert_eq!(back.payload, Bytes::from_static(b"hi"));
        assert_eq!(env.out[0].src, Addr::new(1, 1, 1, 1));
    }
}
