//! Stack configuration.

use smapp_tcp::RtoPolicy;

/// Which congestion controller subflows use.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CcAlgo {
    /// Uncoupled NewReno per subflow.
    Reno,
    /// Coupled Linked-Increases (RFC 6356), the Linux MPTCP default.
    Lia,
}

/// Tunables of a host stack. Defaults mirror the Linux MPTCP kernel the
/// paper ran on.
#[derive(Clone, Debug)]
pub struct StackConfig {
    /// Maximum segment size (payload bytes per segment).
    pub mss: usize,
    /// Connection-level send buffer, bytes.
    pub send_buf: u64,
    /// Connection-level receive buffer, bytes.
    pub recv_buf: u64,
    /// Retransmission-timeout policy.
    pub rto: RtoPolicy,
    /// Congestion controller for subflows.
    pub cc: CcAlgo,
    /// Packet scheduler name (see [`crate::scheduler::by_name`]).
    pub scheduler: &'static str,
    /// Window-scale shift advertised on SYN.
    pub window_scale: u8,
    /// SYN (and SYN/ACK) retransmission attempts before giving up.
    pub syn_retries: u32,
    /// Speak Multipath TCP (false = plain TCP fallback behaviour).
    pub mptcp_enabled: bool,
    /// Infer a plain-TCP fallback when MPTCP was negotiated but the peer's
    /// first data arrives DSS-less (RFC 6824 §3.7 — a mid-path option
    /// stripper). Default on; exists as a knob so the protocol-invariant
    /// oracle's broken-build detection test can prove that disabling the
    /// mechanism is caught (unmapped receive bytes).
    pub fallback_inference: bool,
}

impl Default for StackConfig {
    fn default() -> Self {
        StackConfig {
            mss: 1400,
            send_buf: 4 << 20,
            recv_buf: 4 << 20,
            rto: RtoPolicy::default(),
            cc: CcAlgo::Lia,
            scheduler: "lowest-rtt",
            window_scale: 7,
            syn_retries: 6,
            mptcp_enabled: true,
            fallback_inference: true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_linuxlike() {
        let c = StackConfig::default();
        assert_eq!(c.mss, 1400);
        assert_eq!(c.cc, CcAlgo::Lia);
        assert_eq!(c.scheduler, "lowest-rtt");
        assert!(c.mptcp_enabled);
        assert_eq!(c.rto.max_retries, 15);
    }
}
