//! In-memory two-host harness.
//!
//! Drives two [`HostStack`]s against each other over an idealized pipe
//! (constant delay, optional Bernoulli loss, infinite bandwidth) with a
//! private event queue. This is *not* the full network simulator — that is
//! `smapp-sim` — but it exercises every protocol path deterministically and
//! is what the protocol test-suite and doc examples are built on.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::time::Duration;

use smapp_sim::{Addr, Packet, SimRng, SimTime};

use crate::app::App;
use crate::env::{ConnectRequest, OutPacket, StackEnv};
use crate::pm::{ConnToken, NoopPm, PathManagerHook, PmActions};
use crate::stack::HostStack;

/// Which host an event targets.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Side {
    /// Host A (conventionally the client).
    A,
    /// Host B (conventionally the server).
    B,
}

impl Side {
    /// The other side.
    pub fn other(self) -> Side {
        match self {
            Side::A => Side::B,
            Side::B => Side::A,
        }
    }
}

#[derive(Debug)]
enum Ev {
    Deliver(Side, Packet),
    Timer(Side, u64),
}

struct Scheduled {
    at: SimTime,
    seq: u64,
    ev: Ev,
}

impl PartialEq for Scheduled {
    fn eq(&self, o: &Self) -> bool {
        self.at == o.at && self.seq == o.seq
    }
}
impl Eq for Scheduled {}
impl PartialOrd for Scheduled {
    fn partial_cmp(&self, o: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(o))
    }
}
impl Ord for Scheduled {
    fn cmp(&self, o: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(o.at, o.seq))
    }
}

/// Owned leftovers of a `StackEnv` after a stack call.
struct EnvParts {
    out: Vec<OutPacket>,
    timers: Vec<(Duration, u64)>,
    connects: Vec<ConnectRequest>,
}

/// The two-host harness.
pub struct Harness {
    /// Host A's stack.
    pub a: HostStack,
    /// Host B's stack.
    pub b: HostStack,
    /// Host A's path manager.
    pub pm_a: Box<dyn PathManagerHook>,
    /// Host B's path manager.
    pub pm_b: Box<dyn PathManagerHook>,
    /// One-way delay of the pipe.
    pub delay: Duration,
    /// Loss probability A→B.
    pub loss_a2b: f64,
    /// Loss probability B→A.
    pub loss_b2a: f64,
    /// Serialization rate A→B in bits/s (None = infinite).
    pub rate_a2b: Option<u64>,
    /// Serialization rate B→A in bits/s (None = infinite).
    pub rate_b2a: Option<u64>,
    /// Strip MPTCP options from A→B segments (an option-normalizing
    /// middlebox on the pipe; see `smapp_sim::dynamics`).
    pub strip_a2b: bool,
    /// Strip MPTCP options from B→A segments.
    pub strip_b2a: bool,
    /// Options stripped so far, per direction (A→B, B→A).
    pub stripped: [u64; 2],
    /// Per-direction serializer busy-until time (A→B, B→A).
    busy: [SimTime; 2],
    now: SimTime,
    rng: SimRng,
    queue: BinaryHeap<Reverse<Scheduled>>,
    seq: u64,
    a_addrs: Vec<Addr>,
    b_addrs: Vec<Addr>,
    /// Packets delivered per side (diagnostics).
    pub delivered: [u64; 2],
    /// Set when an app requested the run to stop.
    pub stopped: bool,
}

impl Harness {
    /// Two default-config stacks joined by a pipe with the given one-way
    /// delay. Host A owns `a_addrs`, host B `b_addrs` (all up).
    pub fn new(seed: u64, delay: Duration, a_addrs: Vec<Addr>, b_addrs: Vec<Addr>) -> Self {
        let mut a = HostStack::new(Default::default());
        let mut b = HostStack::new(Default::default());
        for &ad in &a_addrs {
            a.set_local_addr(ad, true);
        }
        for &bd in &b_addrs {
            b.set_local_addr(bd, true);
        }
        Harness {
            a,
            b,
            pm_a: Box::new(NoopPm),
            pm_b: Box::new(NoopPm),
            delay,
            loss_a2b: 0.0,
            loss_b2a: 0.0,
            rate_a2b: None,
            rate_b2a: None,
            strip_a2b: false,
            strip_b2a: false,
            stripped: [0, 0],
            busy: [SimTime::ZERO; 2],
            now: SimTime::ZERO,
            rng: SimRng::seed_from_u64(seed),
            queue: BinaryHeap::new(),
            seq: 0,
            a_addrs,
            b_addrs,
            delivered: [0, 0],
            stopped: false,
        }
    }

    /// Current harness time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    fn push(&mut self, at: SimTime, ev: Ev) {
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(Reverse(Scheduled { at, seq, ev }));
    }

    /// Run `f` against one stack with a fresh env, then dispatch whatever
    /// the call produced. The RNG is temporarily moved out of `self` so the
    /// env can borrow it while `self` stays usable afterwards.
    fn call<R>(&mut self, side: Side, f: impl FnOnce(&mut HostStack, &mut StackEnv<'_>) -> R) -> R {
        let mut rng = std::mem::replace(&mut self.rng, SimRng::seed_from_u64(0));
        let now = self.now;
        let (r, parts, stop) = {
            let mut env = StackEnv::new(now, &mut rng);
            let stack = match side {
                Side::A => &mut self.a,
                Side::B => &mut self.b,
            };
            let r = f(stack, &mut env);
            let StackEnv {
                out,
                timers,
                connects,
                stop,
                ..
            } = env;
            (
                r,
                EnvParts {
                    out,
                    timers,
                    connects,
                },
                stop,
            )
        };
        self.rng = rng;
        self.stopped |= stop;
        self.dispatch(side, parts);
        r
    }

    fn dispatch(&mut self, side: Side, parts: EnvParts) {
        for (d, tok) in parts.timers {
            self.push(self.now + d, Ev::Timer(side, tok));
        }
        for p in parts.out {
            let to = if self.b_addrs.contains(&p.dst) {
                Side::B
            } else {
                Side::A
            };
            let (loss, rate, strip, dir) = match side {
                Side::A => (self.loss_a2b, self.rate_a2b, self.strip_a2b, 0),
                Side::B => (self.loss_b2a, self.rate_b2a, self.strip_b2a, 1),
            };
            if self.rng.chance(loss) {
                continue;
            }
            let mut pkt = Packet::tcp(p.src, p.dst, p.seg);
            if strip {
                if let Some((cleaned, n)) = smapp_sim::dynamics::strip_mptcp_options(&pkt.payload) {
                    pkt.payload = cleaned;
                    self.stripped[dir] += n as u64;
                }
            }
            // Serialize at the pipe rate (FIFO per direction), then propagate.
            let tx_end = match rate {
                Some(bps) => {
                    let start = self.busy[dir].max(self.now);
                    let end = start + smapp_sim::tx_time(pkt.wire_bits(), bps);
                    self.busy[dir] = end;
                    end
                }
                None => self.now,
            };
            self.push(tx_end + self.delay, Ev::Deliver(to, pkt));
        }
        // Kernel path manager loop over the events this call raised.
        self.run_pm(side);
        // App-driven connects (each may itself produce packets/timers).
        for c in parts.connects {
            self.call(side, |stack, env| {
                stack.connect(env, c.src, c.dst, c.dst_port, c.app)
            });
        }
    }

    /// Run the side's path manager over pending stack events until quiet.
    fn run_pm(&mut self, side: Side) {
        for _ in 0..8 {
            let events = match side {
                Side::A => self.a.take_events(),
                Side::B => self.b.take_events(),
            };
            if events.is_empty() {
                break;
            }
            let mut actions = PmActions::new();
            {
                let (stack, pm) = match side {
                    Side::A => (&self.a, &mut self.pm_a),
                    Side::B => (&self.b, &mut self.pm_b),
                };
                for ev in &events {
                    pm.on_event(ev, stack, &mut actions);
                }
            }
            let acts = actions.drain();
            if acts.is_empty() {
                continue;
            }
            self.call(side, |stack, env| {
                for a in &acts {
                    stack.apply_action(env, a);
                }
            });
        }
    }

    /// Apply a path-manager action directly (tests driving subflow
    /// creation without a real path manager).
    pub fn apply(&mut self, side: Side, action: &crate::pm::PmAction) -> bool {
        self.call(side, |stack, env| stack.apply_action(env, action))
    }

    /// Open a connection from `side` to the other side's first address.
    pub fn connect(&mut self, side: Side, dst_port: u16, app: Box<dyn App>) -> Option<ConnToken> {
        let dst = match side {
            Side::A => self.b_addrs[0],
            Side::B => self.a_addrs[0],
        };
        self.call(side, |stack, env| {
            stack.connect(env, None, dst, dst_port, app)
        })
    }

    /// Run until the queue drains, an app stops the run, or `horizon`
    /// passes. Returns the end time.
    pub fn run_until(&mut self, horizon: SimTime) -> SimTime {
        let mut guard = 0u64;
        loop {
            if self.stopped {
                break;
            }
            let Some(Reverse(head)) = self.queue.peek() else {
                break;
            };
            if head.at > horizon {
                break;
            }
            guard += 1;
            assert!(guard < 50_000_000, "harness runaway");
            let Reverse(Scheduled { at, ev, .. }) = self.queue.pop().unwrap();
            self.now = at;
            match ev {
                Ev::Deliver(side, pkt) => {
                    self.delivered[side as usize] += 1;
                    self.call(side, |stack, env| stack.on_packet(env, &pkt));
                }
                Ev::Timer(side, tok) => {
                    self.call(side, |stack, env| stack.on_timer(env, tok));
                }
            }
        }
        self.now
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::app::NullApp;
    use crate::apps::{BulkSender, Sink};
    use crate::conn::ConnState;

    fn addr_a() -> Addr {
        Addr::new(10, 0, 0, 1)
    }
    fn addr_b() -> Addr {
        Addr::new(10, 0, 1, 1)
    }

    fn harness(seed: u64) -> Harness {
        let mut h = Harness::new(
            seed,
            Duration::from_millis(10),
            vec![addr_a()],
            vec![addr_b()],
        );
        h.b.listen(
            80,
            Box::new(|| {
                Box::new(Sink {
                    close_on_eof: true,
                    ..Default::default()
                })
            }),
        );
        h
    }

    #[test]
    fn three_way_handshake_establishes() {
        let mut h = harness(1);
        let token = h.connect(Side::A, 80, Box::new(NullApp)).unwrap();
        h.run_until(SimTime::from_secs(2));
        let conn = h.a.conn_by_token(token).unwrap();
        assert_eq!(conn.state, ConnState::Established);
        // Server side established too, with a different (its own) token.
        let server_conn = h.b.connections().next().unwrap();
        assert_eq!(server_conn.state, ConnState::Established);
        assert_eq!(conn.remote_token(), Some(server_conn.token));
        // Handshake RTT sample: one-way 10 ms -> RTT 20 ms.
        let info = conn.subflow_info(0).unwrap();
        assert_eq!(info.srtt_us, 20_000);
    }

    #[test]
    fn bulk_transfer_delivers_every_byte() {
        let mut h = harness(2);
        let total = 300_000u64;
        h.connect(
            Side::A,
            80,
            Box::new(BulkSender::new(total).close_when_done()),
        )
        .unwrap();
        h.run_until(SimTime::from_secs(30));
        let server_conn = h.b.connections().next().unwrap();
        let sink = server_conn
            .app()
            .unwrap()
            .as_any()
            .downcast_ref::<Sink>()
            .unwrap();
        assert_eq!(sink.received, total);
        assert!(sink.eof_at.is_some(), "DATA_FIN must reach the sink");
        // Full close on both sides.
        assert_eq!(server_conn.state, ConnState::Closed);
        assert_eq!(h.a.connections().next().unwrap().state, ConnState::Closed);
    }

    #[test]
    fn transfer_survives_moderate_loss() {
        let mut h = harness(3);
        h.loss_a2b = 0.05;
        h.loss_b2a = 0.05;
        let total = 100_000u64;
        h.connect(
            Side::A,
            80,
            Box::new(BulkSender::new(total).close_when_done()),
        )
        .unwrap();
        h.run_until(SimTime::from_secs(120));
        let server_conn = h.b.connections().next().unwrap();
        let sink = server_conn
            .app()
            .unwrap()
            .as_any()
            .downcast_ref::<Sink>()
            .unwrap();
        assert_eq!(sink.received, total, "reliable delivery under loss");
    }

    #[test]
    fn connect_to_closed_port_is_refused() {
        let mut h = harness(4);
        let token = h.connect(Side::A, 9999, Box::new(NullApp)).unwrap();
        h.run_until(SimTime::from_secs(5));
        let conn = h.a.conn_by_token(token).unwrap();
        assert_eq!(conn.state, ConnState::Closed);
        assert!(h.b.rst_sent >= 1);
    }

    #[test]
    fn deterministic_across_runs() {
        let run = |seed| {
            let mut h = harness(seed);
            h.loss_a2b = 0.1;
            h.connect(
                Side::A,
                80,
                Box::new(BulkSender::new(50_000).close_when_done()),
            );
            h.run_until(SimTime::from_secs(60));
            (h.delivered, h.now().as_nanos())
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }
}
