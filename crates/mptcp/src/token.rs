//! Keys, tokens and initial data sequence numbers (RFC 6824 §3.1/§3.2).
//!
//! Each end of a Multipath TCP connection contributes a random 64-bit key
//! in the `MP_CAPABLE` exchange. From a key, both ends derive:
//!
//! * the **token** — the most significant 32 bits of `SHA-1(key)` — which
//!   identifies the connection in later `MP_JOIN` handshakes (and which the
//!   SMAPP path manager uses to name connections toward userspace), and
//! * the **initial data sequence number (IDSN)** — the least significant
//!   64 bits of the same digest.

use crate::crypto::sha1;

/// A 64-bit MPTCP key.
pub type Key = u64;

/// The 32-bit connection token derived from `key`.
pub fn token_from_key(key: Key) -> u32 {
    let digest = sha1(&key.to_be_bytes());
    u32::from_be_bytes([digest[0], digest[1], digest[2], digest[3]])
}

/// The 64-bit initial data sequence number derived from `key`.
pub fn idsn_from_key(key: Key) -> u64 {
    let digest = sha1(&key.to_be_bytes());
    u64::from_be_bytes([
        digest[12], digest[13], digest[14], digest[15], digest[16], digest[17], digest[18],
        digest[19],
    ])
}

/// HMAC for the `MP_JOIN` SYN/ACK (RFC 6824 §3.2): key = Key-B ‖ Key-A,
/// message = R-B ‖ R-A, truncated to the most significant 64 bits.
pub fn join_hmac_b(key_a: Key, key_b: Key, nonce_a: u32, nonce_b: u32) -> u64 {
    let mut key = Vec::with_capacity(16);
    key.extend_from_slice(&key_b.to_be_bytes());
    key.extend_from_slice(&key_a.to_be_bytes());
    let mut msg = Vec::with_capacity(8);
    msg.extend_from_slice(&nonce_b.to_be_bytes());
    msg.extend_from_slice(&nonce_a.to_be_bytes());
    let mac = crate::crypto::hmac_sha1(&key, &msg);
    u64::from_be_bytes([
        mac[0], mac[1], mac[2], mac[3], mac[4], mac[5], mac[6], mac[7],
    ])
}

/// HMAC for the third `MP_JOIN` ACK (RFC 6824 §3.2): key = Key-A ‖ Key-B,
/// message = R-A ‖ R-B, full 160 bits.
pub fn join_hmac_a(key_a: Key, key_b: Key, nonce_a: u32, nonce_b: u32) -> [u8; 20] {
    let mut key = Vec::with_capacity(16);
    key.extend_from_slice(&key_a.to_be_bytes());
    key.extend_from_slice(&key_b.to_be_bytes());
    let mut msg = Vec::with_capacity(8);
    msg.extend_from_slice(&nonce_a.to_be_bytes());
    msg.extend_from_slice(&nonce_b.to_be_bytes());
    crate::crypto::hmac_sha1(&key, &msg)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn token_and_idsn_deterministic() {
        let k = 0x0102_0304_0506_0708;
        assert_eq!(token_from_key(k), token_from_key(k));
        assert_eq!(idsn_from_key(k), idsn_from_key(k));
    }

    #[test]
    fn token_and_idsn_differ_across_keys() {
        assert_ne!(token_from_key(1), token_from_key(2));
        assert_ne!(idsn_from_key(1), idsn_from_key(2));
    }

    #[test]
    fn token_is_sha1_high_bits() {
        // Independent derivation for one key.
        let k: u64 = 0xDEAD_BEEF_CAFE_F00D;
        let digest = crate::crypto::sha1(&k.to_be_bytes());
        let expect = u32::from_be_bytes([digest[0], digest[1], digest[2], digest[3]]);
        assert_eq!(token_from_key(k), expect);
    }

    #[test]
    fn idsn_is_sha1_low_bits() {
        let k: u64 = 0xDEAD_BEEF_CAFE_F00D;
        let digest = crate::crypto::sha1(&k.to_be_bytes());
        let expect = u64::from_be_bytes(digest[12..20].try_into().unwrap());
        assert_eq!(idsn_from_key(k), expect);
    }

    #[test]
    fn join_hmacs_are_asymmetric() {
        let (ka, kb, ra, rb) = (11, 22, 33, 44);
        // The two directions must differ (different key/message order).
        let b = join_hmac_b(ka, kb, ra, rb);
        let a = join_hmac_a(ka, kb, ra, rb);
        assert_ne!(&a[..8], &b.to_be_bytes());
    }

    #[test]
    fn join_hmac_depends_on_every_input() {
        let base = join_hmac_b(1, 2, 3, 4);
        assert_ne!(join_hmac_b(9, 2, 3, 4), base);
        assert_ne!(join_hmac_b(1, 9, 3, 4), base);
        assert_ne!(join_hmac_b(1, 2, 9, 4), base);
        assert_ne!(join_hmac_b(1, 2, 3, 9), base);
    }
}
