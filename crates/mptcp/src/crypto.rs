//! SHA-1 and HMAC-SHA1, implemented from scratch.
//!
//! RFC 6824 derives connection tokens and initial data sequence numbers
//! from SHA-1 over the exchanged keys, and authenticates `MP_JOIN`
//! handshakes with HMAC-SHA1. No cryptography crate is available in the
//! offline dependency set, and the algorithms are small, so they are
//! implemented here and validated against the RFC 3174 / RFC 2202 test
//! vectors. SHA-1 is cryptographically broken for collision resistance,
//! but this reproduces the protocol as specified in 2013 — exactly what the
//! paper's kernel used.

/// Output size of SHA-1 in bytes.
pub const SHA1_LEN: usize = 20;
/// SHA-1 block size in bytes.
const BLOCK_LEN: usize = 64;

/// Compute the SHA-1 digest of `data`.
pub fn sha1(data: &[u8]) -> [u8; SHA1_LEN] {
    let mut h: [u32; 5] = [0x67452301, 0xEFCDAB89, 0x98BADCFE, 0x10325476, 0xC3D2E1F0];

    // Message with padding: 0x80, zeros, 64-bit big-endian bit length.
    let bit_len = (data.len() as u64) * 8;
    let mut msg = Vec::with_capacity(data.len() + BLOCK_LEN + 9);
    msg.extend_from_slice(data);
    msg.push(0x80);
    while msg.len() % BLOCK_LEN != 56 {
        msg.push(0);
    }
    msg.extend_from_slice(&bit_len.to_be_bytes());

    let mut w = [0u32; 80];
    for block in msg.chunks_exact(BLOCK_LEN) {
        for (i, word) in block.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes([word[0], word[1], word[2], word[3]]);
        }
        for i in 16..80 {
            w[i] = (w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16]).rotate_left(1);
        }
        let (mut a, mut b, mut c, mut d, mut e) = (h[0], h[1], h[2], h[3], h[4]);
        for (i, &wi) in w.iter().enumerate() {
            let (f, k) = match i {
                0..=19 => ((b & c) | ((!b) & d), 0x5A827999),
                20..=39 => (b ^ c ^ d, 0x6ED9EBA1),
                40..=59 => ((b & c) | (b & d) | (c & d), 0x8F1BBCDC),
                _ => (b ^ c ^ d, 0xCA62C1D6),
            };
            let tmp = a
                .rotate_left(5)
                .wrapping_add(f)
                .wrapping_add(e)
                .wrapping_add(k)
                .wrapping_add(wi);
            e = d;
            d = c;
            c = b.rotate_left(30);
            b = a;
            a = tmp;
        }
        h[0] = h[0].wrapping_add(a);
        h[1] = h[1].wrapping_add(b);
        h[2] = h[2].wrapping_add(c);
        h[3] = h[3].wrapping_add(d);
        h[4] = h[4].wrapping_add(e);
    }

    let mut out = [0u8; SHA1_LEN];
    for (i, word) in h.iter().enumerate() {
        out[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
    }
    out
}

/// Compute HMAC-SHA1 (RFC 2104) of `msg` under `key`.
pub fn hmac_sha1(key: &[u8], msg: &[u8]) -> [u8; SHA1_LEN] {
    let mut k = [0u8; BLOCK_LEN];
    if key.len() > BLOCK_LEN {
        k[..SHA1_LEN].copy_from_slice(&sha1(key));
    } else {
        k[..key.len()].copy_from_slice(key);
    }
    let mut inner = Vec::with_capacity(BLOCK_LEN + msg.len());
    let mut outer = Vec::with_capacity(BLOCK_LEN + SHA1_LEN);
    for &b in &k {
        inner.push(b ^ 0x36);
    }
    inner.extend_from_slice(msg);
    let inner_hash = sha1(&inner);
    for &b in &k {
        outer.push(b ^ 0x5C);
    }
    outer.extend_from_slice(&inner_hash);
    sha1(&outer)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    // RFC 3174 / FIPS 180-1 test vectors.
    #[test]
    fn sha1_abc() {
        assert_eq!(
            hex(&sha1(b"abc")),
            "a9993e364706816aba3e25717850c26c9cd0d89d"
        );
    }

    #[test]
    fn sha1_two_block_message() {
        assert_eq!(
            hex(&sha1(
                b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"
            )),
            "84983e441c3bd26ebaae4aa1f95129e5e54670f1"
        );
    }

    #[test]
    fn sha1_empty() {
        assert_eq!(hex(&sha1(b"")), "da39a3ee5e6b4b0d3255bfef95601890afd80709");
    }

    #[test]
    fn sha1_million_a() {
        let msg = vec![b'a'; 1_000_000];
        assert_eq!(hex(&sha1(&msg)), "34aa973cd4c4daa4f61eeb2bdbad27316534016f");
    }

    #[test]
    fn sha1_exact_block_boundary() {
        // 64-byte message exercises the "padding adds a whole block" path.
        let msg = [0x61u8; 64];
        assert_eq!(hex(&sha1(&msg)), "0098ba824b5c16427bd7a1122a5a442a25ec644d");
    }

    // RFC 2202 HMAC-SHA1 test vectors.
    #[test]
    fn hmac_rfc2202_case1() {
        let key = [0x0b; 20];
        assert_eq!(
            hex(&hmac_sha1(&key, b"Hi There")),
            "b617318655057264e28bc0b6fb378c8ef146be00"
        );
    }

    #[test]
    fn hmac_rfc2202_case2() {
        assert_eq!(
            hex(&hmac_sha1(b"Jefe", b"what do ya want for nothing?")),
            "effcdf6ae5eb2fa2d27416d5f184df9c259a7c79"
        );
    }

    #[test]
    fn hmac_rfc2202_case3() {
        let key = [0xaa; 20];
        let msg = [0xdd; 50];
        assert_eq!(
            hex(&hmac_sha1(&key, &msg)),
            "125d7342b9ac11cd91a39af48aa17b4f63f175d3"
        );
    }

    #[test]
    fn hmac_rfc2202_long_key() {
        // Case 6: 80-byte key forces the key-hashing path.
        let key = [0xaa; 80];
        assert_eq!(
            hex(&hmac_sha1(
                &key,
                b"Test Using Larger Than Block-Size Key - Hash Key First"
            )),
            "aa4ae5e15272d00e95705637ce8a3b55ed402112"
        );
    }

    #[test]
    fn hmac_distinct_keys_distinct_macs() {
        assert_ne!(hmac_sha1(b"k1", b"msg"), hmac_sha1(b"k2", b"msg"));
        assert_ne!(hmac_sha1(b"k", b"msg1"), hmac_sha1(b"k", b"msg2"));
    }
}
