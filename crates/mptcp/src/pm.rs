//! The in-kernel path-manager interface.
//!
//! This is the "red interface" of the paper's Figure 1: the set of events
//! the Multipath TCP stack raises toward whatever path manager is plugged
//! in, and the actions a path manager can request in response. The
//! in-kernel `fullmesh` and `ndiffports` baselines (crate `smapp-pm`)
//! implement [`PathManagerHook`] directly; the SMAPP Netlink path manager
//! implements it by serializing every event toward userspace and replaying
//! userspace commands back through [`PmAction`]s.

use std::time::Duration;

use smapp_sim::Addr;
use smapp_tcp::TcpInfo;

/// Identifies a connection toward path managers: the local token
/// (RFC 6824 §3.1), as the paper's netlink PM does.
pub type ConnToken = u32;

/// Per-connection subflow identifier (dense, assigned at creation).
pub type SubflowId = u8;

/// The four-tuple of a subflow.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct FourTuple {
    /// Local address.
    pub src: Addr,
    /// Local port.
    pub src_port: u16,
    /// Remote address.
    pub dst: Addr,
    /// Remote port.
    pub dst_port: u16,
}

impl std::fmt::Display for FourTuple {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{} -> {}:{}",
            self.src, self.src_port, self.dst, self.dst_port
        )
    }
}

/// Why a subflow was closed — the errno-style codes the paper attaches to
/// `sub_closed` events so controllers can react per error class.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SubflowError {
    /// Normal FIN close.
    None,
    /// Excessive retransmission timeouts (`ETIMEDOUT`).
    Timeout,
    /// RST received (`ECONNRESET`).
    Reset,
    /// Connection refused — RST in answer to our SYN (`ECONNREFUSED`).
    Refused,
    /// ICMP network/host unreachable (`ENETUNREACH`).
    NetUnreachable,
    /// Local interface went down (`ENETDOWN`).
    IfaceDown,
    /// Closed on request of a path manager or controller.
    PmRequested,
}

impl SubflowError {
    /// The errno number Linux would report, for the netlink encoding.
    pub fn errno(self) -> u16 {
        match self {
            SubflowError::None => 0,
            SubflowError::Timeout => 110,        // ETIMEDOUT
            SubflowError::Reset => 104,          // ECONNRESET
            SubflowError::Refused => 111,        // ECONNREFUSED
            SubflowError::NetUnreachable => 101, // ENETUNREACH
            SubflowError::IfaceDown => 100,      // ENETDOWN
            SubflowError::PmRequested => 125,    // ECANCELED
        }
    }

    /// One-hot bit for coverage bitmasks (`ConnStats::sf_close_reasons`):
    /// bit 0 is a graceful FIN close, bits 1..7 the error variants.
    pub fn coverage_bit(self) -> u8 {
        1 << match self {
            SubflowError::None => 0,
            SubflowError::Timeout => 1,
            SubflowError::Reset => 2,
            SubflowError::Refused => 3,
            SubflowError::NetUnreachable => 4,
            SubflowError::IfaceDown => 5,
            SubflowError::PmRequested => 6,
        }
    }

    /// Inverse of [`SubflowError::errno`]; unknown numbers map to `Timeout`.
    pub fn from_errno(e: u16) -> Self {
        match e {
            0 => SubflowError::None,
            104 => SubflowError::Reset,
            111 => SubflowError::Refused,
            101 => SubflowError::NetUnreachable,
            100 => SubflowError::IfaceDown,
            125 => SubflowError::PmRequested,
            _ => SubflowError::Timeout,
        }
    }
}

/// Events raised by the stack toward the path manager. These mirror the
/// event list in §3 of the paper.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PmEvent {
    /// A connection object exists (client: SYN sent; server: SYN received).
    ConnCreated {
        /// Connection token.
        token: ConnToken,
        /// Four-tuple of the initial subflow.
        tuple: FourTuple,
        /// Id of the initial subflow (always 0).
        initial_subflow: SubflowId,
        /// True on the connection-initiating host.
        is_client: bool,
    },
    /// Three-way handshake completed (the paper's `estab`).
    ConnEstablished {
        /// Connection token.
        token: ConnToken,
        /// Four-tuple of the initial subflow.
        tuple: FourTuple,
        /// True on the connection-initiating host.
        is_client: bool,
    },
    /// The connection is gone (the paper's `closed`).
    ConnClosed {
        /// Connection token.
        token: ConnToken,
    },
    /// A subflow completed its handshake (the paper's `sub_estab`).
    SubflowEstablished {
        /// Connection token.
        token: ConnToken,
        /// Subflow id within the connection.
        id: SubflowId,
        /// The subflow's four-tuple.
        tuple: FourTuple,
        /// Whether the subflow carries the backup flag.
        backup: bool,
        /// True if this end initiated the subflow.
        initiated_here: bool,
    },
    /// A subflow died (the paper's `sub_closed`), with the reason.
    SubflowClosed {
        /// Connection token.
        token: ConnToken,
        /// Subflow id within the connection.
        id: SubflowId,
        /// The subflow's four-tuple.
        tuple: FourTuple,
        /// Why it closed.
        error: SubflowError,
    },
    /// The peer announced an address (the paper's `add_addr`).
    AddAddrReceived {
        /// Connection token.
        token: ConnToken,
        /// Peer's address identifier.
        addr_id: u8,
        /// The announced address.
        addr: Addr,
        /// Optional announced port.
        port: Option<u16>,
    },
    /// The peer withdrew an address (the paper's `rem_addr`).
    RemAddrReceived {
        /// Connection token.
        token: ConnToken,
        /// Peer's address identifier.
        addr_id: u8,
    },
    /// A retransmission timer expired on a subflow (the paper's `timeout`).
    /// Reports the timer value now in force (after backoff), as the paper
    /// describes controllers comparing it against a threshold.
    RtoExpired {
        /// Connection token.
        token: ConnToken,
        /// Subflow id within the connection.
        id: SubflowId,
        /// The backed-off RTO now armed.
        current_rto: Duration,
        /// Consecutive expiries so far.
        backoffs: u32,
    },
    /// A local address became usable (the paper's `new_local_addr`).
    LocalAddrUp {
        /// The address.
        addr: Addr,
    },
    /// A local address went away (the paper's `del_local_addr`).
    LocalAddrDown {
        /// The address.
        addr: Addr,
    },
}

impl PmEvent {
    /// The subscription-mask bit for this event class (see the paper:
    /// "The subflow controller receives only notifications for events it
    /// registered to").
    pub fn mask_bit(&self) -> u32 {
        match self {
            PmEvent::ConnCreated { .. } => 1 << 0,
            PmEvent::ConnEstablished { .. } => 1 << 1,
            PmEvent::ConnClosed { .. } => 1 << 2,
            PmEvent::SubflowEstablished { .. } => 1 << 3,
            PmEvent::SubflowClosed { .. } => 1 << 4,
            PmEvent::AddAddrReceived { .. } => 1 << 5,
            PmEvent::RemAddrReceived { .. } => 1 << 6,
            PmEvent::RtoExpired { .. } => 1 << 7,
            PmEvent::LocalAddrUp { .. } => 1 << 8,
            PmEvent::LocalAddrDown { .. } => 1 << 9,
        }
    }
}

/// Mask with every event bit set.
pub const EVENT_MASK_ALL: u32 = (1 << 10) - 1;

/// Actions a path manager can request from the stack.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PmAction {
    /// Open an additional subflow on `conn` from `src` (port 0 = pick an
    /// ephemeral port) to `dst`.
    OpenSubflow {
        /// Target connection.
        token: ConnToken,
        /// Local source address.
        src: Addr,
        /// Local source port; 0 lets the stack pick an ephemeral port.
        src_port: u16,
        /// Remote address.
        dst: Addr,
        /// Remote port.
        dst_port: u16,
        /// Request backup priority for the new subflow.
        backup: bool,
    },
    /// Close a subflow (FIN if possible, RST if `reset`).
    CloseSubflow {
        /// Target connection.
        token: ConnToken,
        /// Subflow to close.
        id: SubflowId,
        /// Send RST instead of a graceful FIN.
        reset: bool,
    },
    /// Change a subflow's backup priority (sends `MP_PRIO`).
    SetBackup {
        /// Target connection.
        token: ConnToken,
        /// Subflow whose priority changes.
        id: SubflowId,
        /// New backup value.
        backup: bool,
    },
    /// Announce a local address to the peer via `ADD_ADDR`.
    AnnounceAddr {
        /// Target connection.
        token: ConnToken,
        /// Our address identifier for the announcement.
        addr_id: u8,
        /// The address to announce.
        addr: Addr,
    },
    /// Withdraw a previously announced address via `REMOVE_ADDR`.
    WithdrawAddr {
        /// Target connection.
        token: ConnToken,
        /// The address identifier being withdrawn.
        addr_id: u8,
    },
}

/// Collector for the actions a path manager requests while handling an
/// event. The stack applies them after the callback returns.
#[derive(Debug, Default)]
pub struct PmActions {
    actions: Vec<PmAction>,
}

impl PmActions {
    /// New empty collector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Queue an action.
    pub fn push(&mut self, a: PmAction) {
        self.actions.push(a);
    }

    /// Drain all queued actions.
    pub fn drain(&mut self) -> Vec<PmAction> {
        std::mem::take(&mut self.actions)
    }

    /// Number of queued actions.
    pub fn len(&self) -> usize {
        self.actions.len()
    }

    /// True when no actions are queued.
    pub fn is_empty(&self) -> bool {
        self.actions.is_empty()
    }
}

/// Read-only view of stack state offered to path managers during event
/// handling (the in-kernel PMs can inspect any control block, as in Linux).
pub trait StackView {
    /// `TCP_INFO`-style snapshot of one subflow.
    fn subflow_info(&self, token: ConnToken, id: SubflowId) -> Option<TcpInfo>;
    /// Ids of the live (not closed) subflows of a connection.
    fn subflow_ids(&self, token: ConnToken) -> Vec<SubflowId>;
    /// Local addresses currently usable (interfaces that are up).
    fn local_addrs(&self) -> Vec<Addr>;
    /// Remote addresses known for a connection (initial + ADD_ADDR learned),
    /// as `(addr_id, addr, port)`.
    fn remote_addrs(&self, token: ConnToken) -> Vec<(u8, Addr, u16)>;
}

/// A path manager plugged into the stack.
///
/// `Send` so a pre-built kernel PM can travel inside a scenario-builder
/// closure to a sweep worker thread; once plugged into a host it is only
/// ever driven by that world's thread.
pub trait PathManagerHook: Send {
    /// Handle one stack event, optionally queueing actions.
    fn on_event(&mut self, ev: &PmEvent, view: &dyn StackView, actions: &mut PmActions);

    /// Name for logs and reports ("fullmesh", "ndiffports", "netlink").
    fn name(&self) -> &'static str;

    /// Downcast support (the host needs to reach the netlink PM's queues).
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any;
}

/// A path manager that does nothing — plain single-path TCP behaviour.
#[derive(Debug, Default)]
pub struct NoopPm;

impl PathManagerHook for NoopPm {
    fn on_event(&mut self, _ev: &PmEvent, _view: &dyn StackView, _actions: &mut PmActions) {}
    fn name(&self) -> &'static str {
        "noop"
    }
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

/// A path manager that records every event it sees and takes no action.
/// Useful in tests and for event-stream inspection.
#[derive(Debug, Default)]
pub struct RecordingPm {
    /// Events in arrival order.
    pub events: Vec<PmEvent>,
}

impl RecordingPm {
    /// Count events matching a predicate.
    pub fn count(&self, f: impl Fn(&PmEvent) -> bool) -> usize {
        self.events.iter().filter(|e| f(e)).count()
    }
}

impl PathManagerHook for RecordingPm {
    fn on_event(&mut self, ev: &PmEvent, _view: &dyn StackView, _actions: &mut PmActions) {
        self.events.push(ev.clone());
    }
    fn name(&self) -> &'static str {
        "recording"
    }
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errno_roundtrip() {
        for e in [
            SubflowError::None,
            SubflowError::Timeout,
            SubflowError::Reset,
            SubflowError::Refused,
            SubflowError::NetUnreachable,
            SubflowError::IfaceDown,
            SubflowError::PmRequested,
        ] {
            assert_eq!(SubflowError::from_errno(e.errno()), e);
        }
    }

    #[test]
    fn mask_bits_distinct() {
        let evs = [
            PmEvent::ConnCreated {
                token: 1,
                tuple: t(),
                initial_subflow: 0,
                is_client: true,
            },
            PmEvent::ConnEstablished {
                token: 1,
                tuple: t(),
                is_client: true,
            },
            PmEvent::ConnClosed { token: 1 },
            PmEvent::SubflowEstablished {
                token: 1,
                id: 0,
                tuple: t(),
                backup: false,
                initiated_here: true,
            },
            PmEvent::SubflowClosed {
                token: 1,
                id: 0,
                tuple: t(),
                error: SubflowError::Reset,
            },
            PmEvent::AddAddrReceived {
                token: 1,
                addr_id: 1,
                addr: Addr::new(1, 1, 1, 1),
                port: None,
            },
            PmEvent::RemAddrReceived {
                token: 1,
                addr_id: 1,
            },
            PmEvent::RtoExpired {
                token: 1,
                id: 0,
                current_rto: Duration::from_secs(1),
                backoffs: 1,
            },
            PmEvent::LocalAddrUp {
                addr: Addr::new(1, 1, 1, 1),
            },
            PmEvent::LocalAddrDown {
                addr: Addr::new(1, 1, 1, 1),
            },
        ];
        let mut seen = std::collections::HashSet::new();
        for e in &evs {
            assert!(seen.insert(e.mask_bit()), "duplicate mask bit");
            assert!(e.mask_bit() & EVENT_MASK_ALL != 0);
        }
    }

    fn t() -> FourTuple {
        FourTuple {
            src: Addr::new(10, 0, 0, 1),
            src_port: 1000,
            dst: Addr::new(10, 0, 0, 2),
            dst_port: 80,
        }
    }

    #[test]
    fn actions_collector() {
        let mut a = PmActions::new();
        assert!(a.is_empty());
        a.push(PmAction::CloseSubflow {
            token: 9,
            id: 1,
            reset: false,
        });
        assert_eq!(a.len(), 1);
        let drained = a.drain();
        assert_eq!(drained.len(), 1);
        assert!(a.is_empty());
    }
}
