//! The host stack: connection table, demultiplexing, listeners, timers and
//! the path-manager boundary.
//!
//! One [`HostStack`] is the "kernel" of one simulated host. It owns every
//! connection, demultiplexes incoming packets to subflows (including
//! `MP_JOIN` SYNs routed by token), applies path-manager actions, and
//! surfaces [`PmEvent`]s for whatever path manager the host plugged in.

use std::collections::HashMap;

use bytes::Bytes;
use smapp_sim::{Addr, FxHashMap, FxHashSet, IcmpMsg, Packet, PROTO_ICMP, PROTO_TCP};
use smapp_tcp::{SeqNum, TcpFlags, TcpHeader, TcpInfo, TcpOptions, TcpSegment};

use crate::app::App;
use crate::config::StackConfig;
use crate::conn::{ConnInfo, ConnState, Connection};
use crate::env::StackEnv;
use crate::options::MpOption;
use crate::pm::{ConnToken, FourTuple, PmAction, PmEvent, StackView, SubflowError, SubflowId};

/// Timer classes multiplexed into the stack's `u64` timer tokens.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TimerKind {
    /// Subflow retransmission timer.
    Rto,
    /// Application timer.
    App,
    /// Connection-level DATA_FIN retransmission timer.
    MetaFin,
}

/// Pack a stack timer token: `kind(4) | conn_idx(24) | subflow(8) | gen(28)`.
pub fn timer_token(kind: TimerKind, conn_idx: usize, sub: SubflowId, gen: u64) -> u64 {
    let k = match kind {
        TimerKind::Rto => 1u64,
        TimerKind::App => 2,
        TimerKind::MetaFin => 3,
    };
    debug_assert!(conn_idx < (1 << 24), "connection index overflow");
    debug_assert!(gen < (1 << 28), "timer generation overflow");
    (k << 60) | ((conn_idx as u64 & 0xFF_FFFF) << 36) | ((sub as u64) << 28) | (gen & 0x0FFF_FFFF)
}

/// Low bits of a stack timer token holding its generation counter.
pub const TIMER_GEN_MASK: u64 = 0x0FFF_FFFF;

/// The token's *identity* — (kind, connection, subflow) with the generation
/// masked off. Stable across rearms of the same logical timer.
pub fn timer_identity(t: u64) -> u64 {
    t & !TIMER_GEN_MASK
}

/// Whether rearming a timer with this token supersedes every older
/// generation of the same [`timer_identity`]. True for RTO and MetaFin
/// (the stack bumps their per-identity generation on each arm and ignores
/// stale firings), so a host may cancel the superseded simulator timer.
/// False for App timers: applications choose their own tokens and may keep
/// any number outstanding.
pub fn timer_rearm_supersedes(t: u64) -> bool {
    matches!(
        parse_timer_token(t),
        Some((TimerKind::Rto | TimerKind::MetaFin, ..))
    )
}

/// Unpack a stack timer token.
pub fn parse_timer_token(t: u64) -> Option<(TimerKind, usize, SubflowId, u64)> {
    let kind = match t >> 60 {
        1 => TimerKind::Rto,
        2 => TimerKind::App,
        3 => TimerKind::MetaFin,
        _ => return None,
    };
    Some((
        kind,
        ((t >> 36) & 0xFF_FFFF) as usize,
        ((t >> 28) & 0xFF) as SubflowId,
        t & 0x0FFF_FFFF,
    ))
}

/// Application factory used by listeners: one app instance per accepted
/// connection.
///
/// Factories are `Send` — they are part of a scenario's *builder* surface,
/// which the sweep engine may move to a worker thread before the world is
/// constructed. The [`App`]s a factory returns need not be `Send`: apps
/// live and die on the world's one thread.
pub type AppFactory = Box<dyn FnMut() -> Box<dyn App> + Send>;

/// The per-host TCP/MPTCP stack.
pub struct HostStack {
    /// Configuration shared by all connections.
    pub cfg: StackConfig,
    conns: Vec<Option<Connection>>,
    /// Demux: four-tuple (local perspective) -> (conn slot, subflow id).
    /// Fx-hashed: hit once per received packet.
    flows: FxHashMap<FourTuple, (usize, SubflowId)>,
    /// Demux: our token -> conn slot (for MP_JOIN and PM commands).
    by_token: FxHashMap<ConnToken, usize>,
    listeners: HashMap<u16, AppFactory>,
    /// Local addresses and their up/down state (host keeps this current).
    local_addrs: Vec<(Addr, bool)>,
    used_ports: FxHashSet<(Addr, u16)>,
    /// Events awaiting pickup by the host's path manager.
    events: Vec<PmEvent>,
    /// Count of RSTs sent to unknown flows (diagnostics).
    pub rst_sent: u64,
}

impl HostStack {
    /// A stack with the given configuration.
    pub fn new(cfg: StackConfig) -> Self {
        HostStack {
            cfg,
            conns: Vec::new(),
            flows: FxHashMap::default(),
            by_token: FxHashMap::default(),
            listeners: HashMap::new(),
            local_addrs: Vec::new(),
            used_ports: FxHashSet::default(),
            events: Vec::new(),
            rst_sent: 0,
        }
    }

    // ------------------------------------------------------------------
    // Host plumbing
    // ------------------------------------------------------------------

    /// Register the host's local addresses (call at start and on change).
    pub fn set_local_addr(&mut self, addr: Addr, up: bool) {
        match self.local_addrs.iter_mut().find(|(a, _)| *a == addr) {
            Some(slot) => slot.1 = up,
            None => self.local_addrs.push((addr, up)),
        }
    }

    /// Local addresses currently up.
    pub fn local_addrs_up(&self) -> Vec<Addr> {
        self.local_addrs
            .iter()
            .filter(|(_, up)| *up)
            .map(|(a, _)| *a)
            .collect()
    }

    /// Drain pending path-manager events.
    pub fn take_events(&mut self) -> Vec<PmEvent> {
        std::mem::take(&mut self.events)
    }

    /// Listen on a port; `factory` builds the per-connection server app.
    pub fn listen(&mut self, port: u16, factory: AppFactory) {
        self.listeners.insert(port, factory);
    }

    /// Open a client connection toward `dst:dst_port`. Returns the token.
    pub fn connect(
        &mut self,
        env: &mut StackEnv<'_>,
        src: Option<Addr>,
        dst: Addr,
        dst_port: u16,
        app: Box<dyn App>,
    ) -> Option<ConnToken> {
        let src = src.or_else(|| self.local_addrs_up().first().copied())?;
        let src_port = self.alloc_port(env, src)?;
        let tuple = FourTuple {
            src,
            src_port,
            dst,
            dst_port,
        };
        let idx = self.conns.len();
        let conn = Connection::client(idx, &self.cfg, tuple, app, env, &mut self.events);
        let token = conn.token;
        self.flows.insert(tuple, (idx, 0));
        self.by_token.insert(token, idx);
        self.conns.push(Some(conn));
        Some(token)
    }

    fn alloc_port(&mut self, env: &mut StackEnv<'_>, addr: Addr) -> Option<u16> {
        for _ in 0..64 {
            let p = env.rng.ephemeral_port();
            if self.used_ports.insert((addr, p)) {
                return Some(p);
            }
        }
        None
    }

    // ------------------------------------------------------------------
    // Packet input
    // ------------------------------------------------------------------

    /// Process an incoming packet addressed to this host.
    pub fn on_packet(&mut self, env: &mut StackEnv<'_>, pkt: &Packet) {
        match pkt.proto {
            PROTO_TCP => self.on_tcp(env, pkt),
            PROTO_ICMP => self.on_icmp(env, pkt),
            _ => {}
        }
    }

    fn on_tcp(&mut self, env: &mut StackEnv<'_>, pkt: &Packet) {
        let Ok(seg) = TcpSegment::decode(&pkt.payload) else {
            return; // malformed: drop
        };
        let tuple = FourTuple {
            src: pkt.dst,
            src_port: seg.hdr.dst_port,
            dst: pkt.src,
            dst_port: seg.hdr.src_port,
        };
        // 1. Existing subflow?
        if let Some(&(idx, sub)) = self.flows.get(&tuple) {
            if let Some(conn) = self.conns[idx].as_mut() {
                conn.on_segment(sub, &seg, &self.cfg, env, &mut self.events);
                self.post_process(idx, env);
                return;
            }
        }
        // 2. New SYN?
        if seg.hdr.flags.syn && !seg.hdr.flags.ack {
            // MP_JOIN: route by token.
            let join_token = seg.mptcp_opts().find_map(|o| match MpOption::decode(o) {
                Ok(MpOption::JoinSyn { token, .. }) => Some(token),
                _ => None,
            });
            if let Some(token) = join_token {
                if let Some(&idx) = self.by_token.get(&token) {
                    if let Some(conn) = self.conns[idx].as_mut() {
                        if let Some(sub) = conn.accept_join_syn(&self.cfg, env, tuple, &seg) {
                            self.flows.insert(tuple, (idx, sub));
                            self.used_ports.insert((tuple.src, tuple.src_port));
                            return;
                        }
                    }
                }
                // Unknown token: refuse.
                self.send_rst(env, &tuple, &seg);
                return;
            }
            // MP_CAPABLE or plain SYN: needs a listener.
            if self.listeners.contains_key(&tuple.src_port) {
                let app = (self.listeners.get_mut(&tuple.src_port).unwrap())();
                let idx = self.conns.len();
                let conn = Connection::server_from_syn(
                    idx,
                    &self.cfg,
                    tuple,
                    &seg,
                    app,
                    env,
                    &mut self.events,
                );
                self.flows.insert(tuple, (idx, 0));
                self.by_token.insert(conn.token, idx);
                self.used_ports.insert((tuple.src, tuple.src_port));
                self.conns.push(Some(conn));
                return;
            }
            self.send_rst(env, &tuple, &seg);
            return;
        }
        // 3. Anything else for an unknown flow: RST (unless it is an RST).
        if !seg.hdr.flags.rst {
            self.send_rst(env, &tuple, &seg);
        }
    }

    fn send_rst(&mut self, env: &mut StackEnv<'_>, tuple: &FourTuple, offending: &TcpSegment) {
        self.rst_sent += 1;
        let seg = TcpSegment {
            hdr: TcpHeader {
                src_port: tuple.src_port,
                dst_port: tuple.dst_port,
                seq: offending.hdr.ack,
                ack: SeqNum(
                    offending
                        .hdr
                        .seq
                        .0
                        .wrapping_add(offending.payload.len() as u32)
                        .wrapping_add(offending.hdr.flags.syn as u32),
                ),
                flags: TcpFlags::RST,
                window: 0,
                options: TcpOptions::new(),
            },
            payload: Bytes::new(),
        };
        env.send_segment(tuple.src, tuple.dst, &seg);
    }

    fn on_icmp(&mut self, env: &mut StackEnv<'_>, pkt: &Packet) {
        let Some(IcmpMsg::DestUnreachable {
            orig_src_port,
            orig_dst_port,
            ..
        }) = IcmpMsg::decode(&pkt.payload)
        else {
            return;
        };
        // Find the subflow whose local port matches the original sender's
        // source port (we sent the packet the ICMP complains about).
        let found = self.flows.iter().find_map(|(t, &(idx, sub))| {
            (t.src_port == orig_src_port && t.dst_port == orig_dst_port).then_some((idx, sub))
        });
        if let Some((idx, sub)) = found {
            if let Some(conn) = self.conns[idx].as_mut() {
                conn.on_icmp_unreachable(sub, &self.cfg, env, &mut self.events);
            }
            self.post_process(idx, env);
        }
    }

    // ------------------------------------------------------------------
    // Timers
    // ------------------------------------------------------------------

    /// Dispatch a stack timer token.
    pub fn on_timer(&mut self, env: &mut StackEnv<'_>, token: u64) {
        let Some((kind, idx, sub, gen)) = parse_timer_token(token) else {
            return;
        };
        let Some(Some(conn)) = self.conns.get_mut(idx) else {
            return;
        };
        match kind {
            TimerKind::Rto => conn.on_rto_timer(sub, gen, &self.cfg, env, &mut self.events),
            TimerKind::App => conn.on_app_timer(gen, &self.cfg, env, &mut self.events),
            TimerKind::MetaFin => conn.on_meta_fin_timer(gen, &self.cfg, env, &mut self.events),
        }
        self.post_process(idx, env);
    }

    // ------------------------------------------------------------------
    // Local address changes
    // ------------------------------------------------------------------

    /// An interface changed state. Emits the paper's `new_local_addr` /
    /// `del_local_addr` events; on down, kills subflows bound to the
    /// address (the NIC is gone — Linux errors them out the same way).
    pub fn on_local_addr(&mut self, env: &mut StackEnv<'_>, addr: Addr, up: bool) {
        self.set_local_addr(addr, up);
        self.events.push(if up {
            PmEvent::LocalAddrUp { addr }
        } else {
            PmEvent::LocalAddrDown { addr }
        });
        if !up {
            for idx in 0..self.conns.len() {
                let Some(conn) = self.conns[idx].as_mut() else {
                    continue;
                };
                let victims: Vec<SubflowId> = conn
                    .live_subflow_ids()
                    .into_iter()
                    .filter(|&id| conn.subflow(id).is_some_and(|s| s.tuple.src == addr))
                    .collect();
                for id in victims {
                    conn.kill_subflow(id, SubflowError::IfaceDown, env, &mut self.events);
                }
                self.post_process(idx, env);
            }
        }
    }

    // ------------------------------------------------------------------
    // Path-manager actions
    // ------------------------------------------------------------------

    /// Apply one path-manager action. Returns false when the target
    /// connection/subflow no longer exists.
    pub fn apply_action(&mut self, env: &mut StackEnv<'_>, action: &PmAction) -> bool {
        let token = match action {
            PmAction::OpenSubflow { token, .. }
            | PmAction::CloseSubflow { token, .. }
            | PmAction::SetBackup { token, .. }
            | PmAction::AnnounceAddr { token, .. }
            | PmAction::WithdrawAddr { token, .. } => *token,
        };
        let Some(&idx) = self.by_token.get(&token) else {
            return false;
        };
        let Some(conn) = self.conns[idx].as_mut() else {
            return false;
        };
        let ok = match action {
            PmAction::OpenSubflow {
                src,
                src_port,
                dst,
                dst_port,
                backup,
                ..
            } => {
                // The address must be local and up.
                if !self.local_addrs.iter().any(|(a, up)| a == src && *up) {
                    false
                } else {
                    let src_port = if *src_port == 0 {
                        match self.alloc_port_inner(env, *src) {
                            Some(p) => p,
                            None => return false,
                        }
                    } else {
                        *src_port
                    };
                    let tuple = FourTuple {
                        src: *src,
                        src_port,
                        dst: *dst,
                        dst_port: *dst_port,
                    };
                    let conn = self.conns[idx].as_mut().unwrap();
                    match conn.open_subflow(&self.cfg, env, tuple, *backup) {
                        Some(sub) => {
                            self.flows.insert(tuple, (idx, sub));
                            true
                        }
                        None => false,
                    }
                }
            }
            PmAction::CloseSubflow { id, reset, .. } => {
                conn.pm_close_subflow(*id, *reset, &self.cfg, env, &mut self.events);
                true
            }
            PmAction::SetBackup { id, backup, .. } => {
                conn.pm_set_backup(*id, *backup, env);
                true
            }
            PmAction::AnnounceAddr { addr_id, addr, .. } => {
                conn.pm_announce_addr(*addr_id, *addr, env);
                true
            }
            PmAction::WithdrawAddr { addr_id, .. } => {
                conn.pm_withdraw_addr(*addr_id, env);
                true
            }
        };
        self.post_process(idx, env);
        ok
    }

    fn alloc_port_inner(&mut self, env: &mut StackEnv<'_>, addr: Addr) -> Option<u16> {
        for _ in 0..64 {
            let p = env.rng.ephemeral_port();
            if self.used_ports.insert((addr, p)) {
                return Some(p);
            }
        }
        None
    }

    /// House-keeping after any connection activity: drop closed flows from
    /// the demux tables and release fully closed connections.
    fn post_process(&mut self, idx: usize, _env: &mut StackEnv<'_>) {
        let Some(conn) = self.conns[idx].as_ref() else {
            return;
        };
        // Remove demux entries of closed subflows.
        let dead: Vec<FourTuple> = self
            .flows
            .iter()
            .filter(|(_, &(i, sub))| {
                i == idx
                    && self.conns[idx]
                        .as_ref()
                        .and_then(|c| c.subflow(sub))
                        .is_none_or(|s| s.state == crate::subflow::SfState::Closed)
            })
            .map(|(t, _)| *t)
            .collect();
        for t in dead {
            self.flows.remove(&t);
        }
        if conn.state == ConnState::Closed {
            self.by_token.remove(&conn.token);
            // Keep the connection object for post-run inspection, but it no
            // longer participates in demux.
        }
    }

    // ------------------------------------------------------------------
    // Introspection
    // ------------------------------------------------------------------

    /// Tokens of all connections (including closed ones, for reporting).
    pub fn tokens(&self) -> Vec<ConnToken> {
        self.conns.iter().flatten().map(|c| c.token).collect()
    }

    /// A connection by token (live) or by scanning (closed).
    pub fn conn_by_token(&self, token: ConnToken) -> Option<&Connection> {
        if let Some(&idx) = self.by_token.get(&token) {
            return self.conns[idx].as_deref_conn();
        }
        self.conns.iter().flatten().find(|c| c.token == token)
    }

    /// Mutable connection access by token.
    pub fn conn_by_token_mut(&mut self, token: ConnToken) -> Option<&mut Connection> {
        if let Some(&idx) = self.by_token.get(&token) {
            return self.conns[idx].as_mut();
        }
        self.conns.iter_mut().flatten().find(|c| c.token == token)
    }

    /// All connections, in creation order.
    pub fn connections(&self) -> impl Iterator<Item = &Connection> {
        self.conns.iter().flatten()
    }

    /// Connection-level info.
    pub fn conn_info(&self, token: ConnToken) -> Option<ConnInfo> {
        self.conn_by_token(token).map(|c| c.info())
    }
}

/// Helper to keep `conn_by_token` readable.
trait AsDerefConn {
    fn as_deref_conn(&self) -> Option<&Connection>;
}

impl AsDerefConn for Option<Connection> {
    fn as_deref_conn(&self) -> Option<&Connection> {
        self.as_ref()
    }
}

impl StackView for HostStack {
    fn subflow_info(&self, token: ConnToken, id: SubflowId) -> Option<TcpInfo> {
        self.conn_by_token(token)?.subflow_info(id)
    }
    fn subflow_ids(&self, token: ConnToken) -> Vec<SubflowId> {
        self.conn_by_token(token)
            .map(|c| c.live_subflow_ids())
            .unwrap_or_default()
    }
    fn local_addrs(&self) -> Vec<Addr> {
        self.local_addrs_up()
    }
    fn remote_addrs(&self, token: ConnToken) -> Vec<(u8, Addr, u16)> {
        self.conn_by_token(token)
            .map(|c| {
                let mut v = vec![(0u8, c.initial_remote.0, c.initial_remote.1)];
                v.extend(c.remote_addrs.iter().copied());
                v
            })
            .unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timer_token_roundtrip() {
        for kind in [TimerKind::Rto, TimerKind::App, TimerKind::MetaFin] {
            let t = timer_token(kind, 123, 7, 99_999);
            assert_eq!(parse_timer_token(t), Some((kind, 123, 7, 99_999)));
        }
        assert_eq!(parse_timer_token(0), None);
    }

    #[test]
    fn timer_token_max_fields() {
        let t = timer_token(TimerKind::Rto, (1 << 24) - 1, 255, (1 << 28) - 1);
        assert_eq!(
            parse_timer_token(t),
            Some((TimerKind::Rto, (1 << 24) - 1, 255, (1 << 28) - 1))
        );
    }
}
