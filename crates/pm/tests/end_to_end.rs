//! End-to-end tests over the real network simulator: kernel path managers
//! building meshes across routed topologies, and a minimal userspace
//! process driving the stack through genuine netlink frames.

use std::time::Duration;

use bytes::Bytes;
use smapp_mptcp::apps::{BulkSender, Sink};
use smapp_mptcp::{ConnState, StackConfig};
use smapp_netlink::{
    decode, encode_command, LatencyModel, PmNlCommand, PmNlMessage, UserCtx, UserProcess,
};
use smapp_pm::topo::{self, CLIENT_ADDR2, SERVER_ADDR};
use smapp_pm::{FullMeshPm, Host, NdiffportsPm};
use smapp_sim::{LinkCfg, SimTime};

fn client_host() -> Host {
    Host::new("client", StackConfig::default())
}

fn server_host() -> Host {
    let mut h = Host::new("server", StackConfig::default());
    h.listen(
        80,
        Box::new(|| {
            Box::new(Sink {
                close_on_eof: true,
                ..Default::default()
            })
        }),
    );
    h
}

fn sink_bytes(sim: &smapp_sim::Simulator, server: smapp_sim::NodeId) -> u64 {
    topo::host(sim, server)
        .stack
        .connections()
        .next()
        .map(|c| {
            c.app()
                .unwrap()
                .as_any()
                .downcast_ref::<Sink>()
                .unwrap()
                .received
        })
        .unwrap_or(0)
}

#[test]
fn fullmesh_builds_two_subflows_over_two_paths() {
    let mut client = client_host().with_pm(Box::new(FullMeshPm::new()));
    client.connect_at(
        SimTime::from_millis(10),
        None,
        SERVER_ADDR,
        80,
        Box::new(BulkSender::new(2_000_000).close_when_done()),
    );
    let net = topo::two_path(
        1,
        client,
        server_host(),
        LinkCfg::mbps_ms(5, 10),
        LinkCfg::mbps_ms(5, 10),
    );
    let mut sim = net.sim;
    sim.run_until(SimTime::from_secs(60));

    let client = topo::host(&sim, net.client);
    let conn = client.stack.connections().next().unwrap();
    assert_eq!(conn.state, ConnState::Closed, "transfer finished");
    // The mesh created a second subflow from the second interface.
    let sf1 = conn.subflow(1).expect("second subflow exists");
    assert_eq!(sf1.tuple.src, CLIENT_ADDR2);
    assert_eq!(sink_bytes(&sim, net.server), 2_000_000);
    // Both access links carried data packets.
    let l1 = sim.core.link_stats(net.link1, smapp_sim::Dir::AtoB);
    let l2 = sim.core.link_stats(net.link2, smapp_sim::Dir::AtoB);
    assert!(
        l1.delivered > 100,
        "link1 carried packets: {}",
        l1.delivered
    );
    assert!(
        l2.delivered > 100,
        "link2 carried packets: {}",
        l2.delivered
    );
}

#[test]
fn fullmesh_aggregates_bandwidth() {
    // 2 MB over one 5 Mb/s path ≈ 3.4 s; over two ≈ half that. Require the
    // fullmesh run to beat the single-path run clearly.
    let time_with = |mesh: bool| {
        let mut client = client_host();
        if mesh {
            client = client.with_pm(Box::new(FullMeshPm::new()));
        }
        client.connect_at(
            SimTime::from_millis(10),
            None,
            SERVER_ADDR,
            80,
            Box::new(
                BulkSender::new(2_000_000)
                    .close_when_done()
                    .stop_sim_when_acked(),
            ),
        );
        let net = topo::two_path(
            2,
            client,
            server_host(),
            LinkCfg::mbps_ms(5, 10),
            LinkCfg::mbps_ms(5, 10),
        );
        let mut sim = net.sim;
        let summary = sim.run_until(SimTime::from_secs(60));
        summary.ended_at
    };
    let single = time_with(false);
    let meshed = time_with(true);
    assert!(
        meshed.as_secs_f64() < single.as_secs_f64() * 0.7,
        "mesh {meshed} vs single {single}"
    );
}

#[test]
fn ndiffports_opens_n_subflows_over_ecmp() {
    let mut client = client_host().with_pm(Box::new(NdiffportsPm::new(5)));
    client.connect_at(
        SimTime::from_millis(10),
        None,
        SERVER_ADDR,
        80,
        Box::new(BulkSender::new(1_000_000).close_when_done()),
    );
    let paths: Vec<LinkCfg> = (0..4).map(|i| LinkCfg::mbps_ms(8, 10 * (i + 1))).collect();
    let net = topo::ecmp(3, client, server_host(), &paths);
    let mut sim = net.sim;
    sim.run_until(SimTime::from_secs(60));

    let client = topo::host(&sim, net.client);
    let conn = client.stack.connections().next().unwrap();
    // 5 subflows total were created (0..=4).
    assert!(conn.subflow(4).is_some(), "five subflows exist");
    assert_eq!(sink_bytes(&sim, net.server), 1_000_000);
    // The parallel paths were actually used (ECMP spread).
    let used = net
        .paths
        .iter()
        .filter(|&&l| sim.core.link_stats(l, smapp_sim::Dir::AtoB).delivered > 0)
        .count();
    assert!(used >= 2, "ECMP must spread 5 subflows over >=2 paths");
}

/// A minimal userspace controller: subscribes to everything; when the
/// connection establishes, opens one extra subflow from the second
/// interface — the ndiffports-in-userspace shape of §4.5, reduced to its
/// essentials. Everything crosses the boundary as real netlink frames.
#[derive(Default)]
struct MiniController {
    /// Establishment events seen.
    estabs: u32,
    /// Acks received from the kernel.
    acks: u32,
    seq: u32,
}

impl UserProcess for MiniController {
    fn on_start(&mut self, ctx: &mut UserCtx<'_>) {
        self.seq += 1;
        ctx.send(encode_command(
            self.seq,
            &PmNlCommand::Subscribe {
                mask: smapp_mptcp::EVENT_MASK_ALL,
            },
        ));
    }
    fn on_message(&mut self, ctx: &mut UserCtx<'_>, frame: Bytes) {
        match decode(&frame) {
            Ok(PmNlMessage::Event(smapp_mptcp::PmEvent::ConnEstablished {
                token,
                tuple,
                is_client: true,
            })) => {
                self.estabs += 1;
                self.seq += 1;
                ctx.send(encode_command(
                    self.seq,
                    &PmNlCommand::SubflowCreate {
                        token,
                        src: CLIENT_ADDR2,
                        src_port: 0,
                        dst: tuple.dst,
                        dst_port: tuple.dst_port,
                        backup: false,
                    },
                ));
            }
            Ok(PmNlMessage::Ack { errno, .. }) => {
                assert_eq!(errno, 0, "kernel must accept the command");
                self.acks += 1;
            }
            _ => {}
        }
    }
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

#[test]
fn userspace_controller_creates_subflow_through_netlink() {
    let mut client = client_host().with_user(
        Box::new(MiniController::default()),
        LatencyModel::idle_host(),
    );
    client.connect_at(
        SimTime::from_millis(10),
        None,
        SERVER_ADDR,
        80,
        Box::new(BulkSender::new(500_000).close_when_done()),
    );
    let net = topo::two_path(
        4,
        client,
        server_host(),
        LinkCfg::mbps_ms(5, 10),
        LinkCfg::mbps_ms(5, 10),
    );
    let mut sim = net.sim;
    sim.run_until(SimTime::from_secs(60));

    let client = topo::host(&sim, net.client);
    let ctrl = client.user_as::<MiniController>().unwrap();
    assert_eq!(ctrl.estabs, 1);
    assert!(ctrl.acks >= 2, "subscribe + subflow-create acks");
    let conn = client.stack.connections().next().unwrap();
    let sf1 = conn.subflow(1).expect("controller-created subflow");
    assert_eq!(sf1.tuple.src, CLIENT_ADDR2);
    assert_eq!(sink_bytes(&sim, net.server), 500_000);
}

#[test]
fn unsubscribed_controller_sees_nothing() {
    /// Controller that never subscribes: must receive zero events.
    #[derive(Default)]
    struct Deaf {
        messages: u32,
    }
    impl UserProcess for Deaf {
        fn on_message(&mut self, _ctx: &mut UserCtx<'_>, _frame: Bytes) {
            self.messages += 1;
        }
        fn as_any(&self) -> &dyn std::any::Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
            self
        }
    }
    let mut client = client_host().with_user(Box::new(Deaf::default()), LatencyModel::idle_host());
    client.connect_at(
        SimTime::from_millis(10),
        None,
        SERVER_ADDR,
        80,
        Box::new(BulkSender::new(10_000).close_when_done()),
    );
    let net = topo::two_path(
        5,
        client,
        server_host(),
        LinkCfg::mbps_ms(5, 10),
        LinkCfg::mbps_ms(5, 10),
    );
    let mut sim = net.sim;
    sim.run_until(SimTime::from_secs(30));
    let client = topo::host(&sim, net.client);
    assert_eq!(client.user_as::<Deaf>().unwrap().messages, 0);
    assert_eq!(
        sink_bytes(&sim, net.server),
        10_000,
        "data plane unaffected"
    );
}

#[test]
fn firewall_topology_passes_traffic() {
    let mut client = client_host();
    client.connect_at(
        SimTime::from_millis(10),
        None,
        SERVER_ADDR,
        80,
        Box::new(BulkSender::new(100_000).close_when_done()),
    );
    let net = topo::firewalled(
        6,
        client,
        server_host(),
        Duration::from_secs(100),
        smapp_sim::DenyPolicy::SilentDrop,
        false,
        LinkCfg::mbps_ms(10, 5),
    );
    let mut sim = net.sim;
    sim.run_until(SimTime::from_secs(30));
    assert_eq!(sink_bytes(&sim, net.server), 100_000);
}

/// One probed fullmesh run: returns the client's encoded sockdiag reply
/// frames, probed mid-transfer at 0.5 s, 1 s and 1.5 s.
fn probed_run(seed: u64) -> Vec<Bytes> {
    let mut client = client_host().with_pm(Box::new(FullMeshPm::new()));
    client.connect_at(
        SimTime::from_millis(10),
        None,
        SERVER_ADDR,
        80,
        Box::new(BulkSender::new(2_000_000).close_when_done()),
    );
    let net = topo::two_path(
        seed,
        client,
        server_host(),
        LinkCfg::mbps_ms(5, 10),
        LinkCfg::mbps_ms(5, 10),
    );
    let mut sim = net.sim;
    sim.install(
        smapp_sim::NetemScript::new()
            .at(
                SimTime::from_millis(500),
                smapp_sim::Netem::peer(net.client).probe(),
            )
            .at(
                SimTime::from_millis(1000),
                smapp_sim::Netem::peer(net.client).probe(),
            )
            .at(
                SimTime::from_millis(1500),
                smapp_sim::Netem::peer(net.client).probe(),
            ),
        smapp_sim::InstallPolicy::Sort,
    )
    .unwrap();
    sim.run_until(SimTime::from_secs(60));
    topo::host(&sim, net.client).diag.replies.clone()
}

#[test]
fn sockdiag_dumps_are_byte_identical_per_seed_and_see_live_state() {
    for seed in [1u64, 7, 42] {
        let a = probed_run(seed);
        let b = probed_run(seed);
        assert_eq!(a, b, "seed {seed}: probed dumps must be byte-identical");
        assert_eq!(a.len(), 3, "one reply per scripted probe");
        // Mid-transfer dumps report the live connection: established, not
        // fallen back, with per-subflow RTT/cwnd snapshots.
        let mut live_subflows = 0usize;
        for frame in &a {
            let PmNlMessage::DiagReply { conns, .. } = decode(frame).unwrap() else {
                panic!("stored probe reply must decode as a diag reply");
            };
            assert_eq!(conns.len(), 1, "one connection on the client");
            let c = &conns[0];
            assert_eq!(c.state, ConnState::Established);
            assert!(!c.fallback_inferred);
            assert!(c.meta_snd_nxt >= c.meta_una);
            for (_, info) in &c.subflows {
                if info.cwnd > 0 && info.srtt_us > 0 {
                    live_subflows += 1;
                }
            }
        }
        assert!(
            live_subflows > 0,
            "seed {seed}: at least one subflow snapshot carries cwnd/RTT"
        );
    }
}
