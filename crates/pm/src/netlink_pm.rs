//! The Netlink path manager — the paper's kernel-side contribution.
//!
//! `NetlinkPm` plugs into the in-kernel path-manager interface
//! ([`PathManagerHook`]) like `fullmesh` and `ndiffports` do, but instead
//! of deciding anything itself it *delegates*: every event is encoded as a
//! generic-netlink frame and queued toward the subflow controller in
//! userspace. Commands flow the other way (decoded and applied by the
//! host). "The subflow controller receives only notifications for events
//! it registered to" — enforced here with the subscription mask.

use bytes::Bytes;
use smapp_mptcp::{PathManagerHook, PmActions, PmEvent, StackView};
use smapp_netlink::encode_event;

/// The kernel side of the SMAPP architecture.
#[derive(Debug, Default)]
pub struct NetlinkPm {
    /// Subscription mask (bits = [`PmEvent::mask_bit`]); 0 until the
    /// controller subscribes.
    pub mask: u32,
    /// Encoded frames waiting for delivery to userspace.
    outbox: Vec<Bytes>,
    /// Events suppressed by the mask (diagnostics).
    pub suppressed: u64,
    /// Events queued (diagnostics).
    pub queued: u64,
}

impl NetlinkPm {
    /// Fresh instance with an empty subscription.
    pub fn new() -> Self {
        Self::default()
    }

    /// Drain the frames queued toward userspace.
    pub fn take_outbox(&mut self) -> Vec<Bytes> {
        std::mem::take(&mut self.outbox)
    }

    /// True when frames are pending.
    pub fn has_pending(&self) -> bool {
        !self.outbox.is_empty()
    }
}

impl PathManagerHook for NetlinkPm {
    fn on_event(&mut self, ev: &PmEvent, _view: &dyn StackView, _actions: &mut PmActions) {
        if ev.mask_bit() & self.mask == 0 {
            self.suppressed += 1;
            return;
        }
        self.queued += 1;
        self.outbox.push(encode_event(ev));
    }

    fn name(&self) -> &'static str {
        "netlink"
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smapp_mptcp::{ConnToken, EVENT_MASK_ALL};
    use smapp_netlink::{decode, PmNlMessage};
    use smapp_sim::Addr;
    use smapp_tcp::TcpInfo;

    struct NullView;
    impl StackView for NullView {
        fn subflow_info(&self, _: ConnToken, _: u8) -> Option<TcpInfo> {
            None
        }
        fn subflow_ids(&self, _: ConnToken) -> Vec<u8> {
            vec![]
        }
        fn local_addrs(&self) -> Vec<Addr> {
            vec![]
        }
        fn remote_addrs(&self, _: ConnToken) -> Vec<(u8, Addr, u16)> {
            vec![]
        }
    }

    #[test]
    fn unsubscribed_events_suppressed() {
        let mut pm = NetlinkPm::new();
        let mut actions = PmActions::new();
        pm.on_event(&PmEvent::ConnClosed { token: 1 }, &NullView, &mut actions);
        assert!(!pm.has_pending());
        assert_eq!(pm.suppressed, 1);
    }

    #[test]
    fn subscribed_events_encode_to_frames() {
        let mut pm = NetlinkPm::new();
        pm.mask = EVENT_MASK_ALL;
        let mut actions = PmActions::new();
        let ev = PmEvent::ConnClosed { token: 42 };
        pm.on_event(&ev, &NullView, &mut actions);
        let frames = pm.take_outbox();
        assert_eq!(frames.len(), 1);
        assert_eq!(decode(&frames[0]).unwrap(), PmNlMessage::Event(ev));
        assert!(!pm.has_pending());
        assert!(actions.is_empty(), "netlink pm never acts by itself");
    }

    #[test]
    fn partial_mask_filters() {
        let mut pm = NetlinkPm::new();
        let closed = PmEvent::ConnClosed { token: 1 };
        pm.mask = closed.mask_bit();
        let mut actions = PmActions::new();
        pm.on_event(&closed, &NullView, &mut actions);
        pm.on_event(
            &PmEvent::LocalAddrUp {
                addr: Addr::new(1, 1, 1, 1),
            },
            &NullView,
            &mut actions,
        );
        assert_eq!(pm.take_outbox().len(), 1);
        assert_eq!(pm.suppressed, 1);
        assert_eq!(pm.queued, 1);
    }
}
