//! Run-level oracle verdicts: wire checks + end-host checks, one call.
//!
//! The `smapp_sim::Oracle` checks everything observable on the wire; the
//! `smapp-mptcp` connection taps check everything observable above the
//! meta socket (stream digests, DSS coverage at the receiver, buffer and
//! sequence bounds). This module is where the two meet after a run:
//! [`conclude`] drains the wire oracle, sweeps every [`Host`] node for
//! connection-level violations, pairs up the two ends of every connection
//! it can find and cross-checks their byte-stream taps — received bytes
//! must be exactly a prefix of the sent bytes, in both directions.
//!
//! Every violation is prefixed with the replayable `(scenario, seed)`
//! pair; wire violations additionally carry their simulated time, so a
//! report line is a complete replay recipe.

use smapp_mptcp::FourTuple;
use smapp_sim::{oracle, RunSummary, Simulator, TraceSink};

use crate::host::Host;

/// The complete oracle verdict for one finished run.
pub struct RunVerdict {
    /// Scenario label (for replay lines).
    pub scenario: String,
    /// Seed the world was built with.
    pub seed: u64,
    /// All violations: wire-level first (event order), then host-level.
    pub violations: Vec<String>,
    /// The sink the oracle wrapped (scenarios take their collectors back
    /// out of here).
    pub inner: Option<Box<dyn TraceSink>>,
    /// Whether a wire oracle was installed and checked.
    pub wire_checked: bool,
    /// Wire-feature coverage the oracle observed (see
    /// [`smapp_sim::Coverage`]); empty when no oracle was installed.
    pub wire_coverage: smapp_sim::Coverage,
}

impl RunVerdict {
    /// True when every invariant held.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Panic with every violation when the run was not clean. The message
    /// leads with the replayable `(scenario, seed)` triple.
    #[track_caller]
    pub fn expect_clean(&self) {
        assert!(
            self.is_clean(),
            "protocol-invariant oracle: {} violation(s) in scenario `{}` seed {} \
             (replay: rebuild this scenario with the same seed)\n{}",
            self.violations.len(),
            self.scenario,
            self.seed,
            self.violations.join("\n")
        );
    }
}

/// One direction of one connection's stream taps, keyed by the initial
/// subflow's four-tuple (local perspective).
struct Endpoint {
    host: String,
    token: u32,
    tuple: FourTuple,
    sent: smapp_tcp::StreamTap,
    recvd: smapp_tcp::StreamTap,
}

fn reversed(t: &FourTuple) -> FourTuple {
    FourTuple {
        src: t.dst,
        src_port: t.dst_port,
        dst: t.src,
        dst_port: t.src_port,
    }
}

/// Conclude a finished run: drain the wire oracle, sweep every host for
/// end-host violations, and cross-check paired byte streams.
pub fn conclude(
    sim: &mut Simulator,
    summary: &RunSummary,
    scenario: &str,
    seed: u64,
) -> RunVerdict {
    let prefix = format!("[{scenario} seed={seed}]");
    let mut violations = Vec::new();

    // Wire level. A run concluded here is *supposed* to have the oracle
    // installed; a missing one would silently skip every wire invariant,
    // so it is itself a violation (install with
    // `sim.core.set_trace(Box::new(Oracle::new()))` or `Oracle::wrapping`).
    let wire = oracle::conclude(&mut sim.core, summary);
    if !wire.checked {
        violations.push(format!(
            "{prefix} wire oracle was not installed — wire invariants unchecked"
        ));
    }
    for v in &wire.violations {
        violations.push(format!("{prefix} wire {v}"));
    }
    if wire.suppressed > 0 {
        violations.push(format!(
            "{prefix} wire ... and {} more violations suppressed",
            wire.suppressed
        ));
    }

    // Host level: per-connection taps, plus the endpoint table for stream
    // pairing.
    let mut endpoints: Vec<Endpoint> = Vec::new();
    for id in sim.node_ids() {
        let Some(host) = sim.node(id).as_any().downcast_ref::<Host>() else {
            continue;
        };
        for conn in host.stack.connections() {
            for v in &conn.stats.integrity_violations {
                violations.push(format!(
                    "{prefix} host={} conn={:08x} {v}",
                    host.name, conn.token
                ));
            }
            if let Some(sf0) = conn.subflow(0) {
                endpoints.push(Endpoint {
                    host: host.name.clone(),
                    token: conn.token,
                    tuple: sf0.tuple,
                    sent: conn.stats.tap_sent.clone(),
                    recvd: conn.stats.tap_recvd.clone(),
                });
            }
        }
    }

    // Stream integrity across hosts: match each endpoint with the endpoint
    // whose initial-subflow tuple is the mirror image (NATted topologies
    // simply produce no match and are covered by the per-host taps alone).
    // Indexed by tuple so a many-client world (fleet: ~1600 endpoints)
    // pairs in linear time.
    let by_tuple: smapp_sim::FxHashMap<FourTuple, usize> = endpoints
        .iter()
        .enumerate()
        .map(|(i, e)| (e.tuple, i))
        .collect();
    for a in &endpoints {
        let Some(&bi) = by_tuple.get(&reversed(&a.tuple)) else {
            continue;
        };
        let b = &endpoints[bi];
        if let Some(err) = a.sent.check_against_receiver(&b.recvd) {
            violations.push(format!(
                "{prefix} stream {}:{:08x} -> {}:{:08x}: {err}",
                a.host, a.token, b.host, b.token
            ));
        }
    }

    RunVerdict {
        scenario: scenario.to_string(),
        seed,
        violations,
        inner: wire.inner,
        wire_checked: wire.checked,
        wire_coverage: wire.coverage,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topo::{self, SERVER_ADDR};
    use smapp_mptcp::apps::{BulkSender, Sink};
    use smapp_mptcp::StackConfig;
    use smapp_sim::{LinkCfg, Oracle, SimTime};

    fn bulk_world(seed: u64, transfer: u64) -> (Simulator, RunSummary) {
        let mut client = Host::new("client", StackConfig::default());
        client.connect_at(
            SimTime::from_millis(10),
            None,
            SERVER_ADDR,
            80,
            Box::new(BulkSender::new(transfer).close_when_done()),
        );
        let mut server = Host::new("server", StackConfig::default());
        server.listen(
            80,
            Box::new(|| {
                Box::new(Sink {
                    close_on_eof: true,
                    ..Default::default()
                })
            }),
        );
        let net = topo::two_path(
            seed,
            client,
            server,
            LinkCfg::mbps_ms(10, 10),
            LinkCfg::mbps_ms(10, 10),
        );
        let mut sim = net.sim;
        sim.core.set_trace(Box::new(Oracle::new()));
        let summary = sim.run_until(SimTime::from_secs(60));
        (sim, summary)
    }

    #[test]
    fn healthy_transfer_is_oracle_clean_both_levels() {
        let (mut sim, summary) = bulk_world(7, 200_000);
        let verdict = conclude(&mut sim, &summary, "verify-test", 7);
        assert!(verdict.wire_checked, "oracle was installed");
        verdict.expect_clean();
    }

    #[test]
    fn missing_wire_oracle_is_itself_a_violation() {
        // A scenario that installs a plain sink (or none) instead of the
        // oracle must not silently pass `expect_clean`.
        let mut client = Host::new("client", StackConfig::default());
        client.connect_at(
            SimTime::from_millis(10),
            None,
            SERVER_ADDR,
            80,
            Box::new(BulkSender::new(10_000).close_when_done()),
        );
        let mut server = Host::new("server", StackConfig::default());
        server.listen(80, Box::new(|| Box::<Sink>::default()));
        let net = topo::two_path(
            3,
            client,
            server,
            LinkCfg::mbps_ms(10, 10),
            LinkCfg::mbps_ms(10, 10),
        );
        let mut sim = net.sim;
        let summary = sim.run_until(SimTime::from_secs(30));
        let verdict = conclude(&mut sim, &summary, "verify-test", 3);
        assert!(!verdict.wire_checked);
        assert!(
            verdict
                .violations
                .iter()
                .any(|v| v.contains("oracle was not installed")),
            "{:?}",
            verdict.violations
        );
    }

    #[test]
    fn stream_endpoints_pair_and_counts_match() {
        let (mut sim, summary) = bulk_world(8, 150_000);
        let verdict = conclude(&mut sim, &summary, "verify-test", 8);
        verdict.expect_clean();
        // The server really received what the client wrote: find the two
        // hosts and compare tap counts directly.
        let mut sent = None;
        let mut recvd = None;
        for id in sim.node_ids() {
            if let Some(h) = sim.node(id).as_any().downcast_ref::<Host>() {
                for c in h.stack.connections() {
                    match h.name.as_str() {
                        "client" => sent = Some(c.stats.tap_sent.count),
                        "server" => recvd = Some(c.stats.tap_recvd.count),
                        _ => {}
                    }
                }
            }
        }
        assert_eq!(sent, Some(150_000));
        assert_eq!(recvd, Some(150_000));
    }
}
