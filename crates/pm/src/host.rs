//! The host node: a complete endpoint for the network simulator.
//!
//! A [`Host`] wires together, exactly as the paper's Figure 1 draws it:
//!
//! ```text
//!   ┌──────────────────────────────┐
//!   │  subflow controller          │   userspace  (crate `smapp`)
//!   │  (UserProcess)               │
//!   └──────▲──────────────┬────────┘
//!          │ netlink msgs │          ← LatencyModel per crossing
//!   ┌──────┴──────────────▼────────┐
//!   │  NetlinkPm / FullMeshPm / …  │   kernel path manager
//!   │  HostStack (MPTCP engine)    │   kernel data plane
//!   └──────────────────────────────┘
//! ```
//!
//! Packets go to/from the simulator through the host's interfaces; netlink
//! frames cross the user/kernel boundary with sampled latency — the cost
//! Fig. 3 measures.

use std::collections::VecDeque;
use std::time::Duration;

use bytes::Bytes;
use smapp_mptcp::{
    timer_identity, timer_rearm_supersedes, App, ConnToken, HostStack, OutPacket, PathManagerHook,
    PmAction, PmActions, StackConfig, StackEnv,
};
use smapp_netlink::{
    decode, encode_ack, encode_diag_reply, encode_info_reply, DiagConn, LatencyModel, PmNlCommand,
    PmNlMessage, UserCtx, UserProcess,
};
use smapp_sim::{
    Addr, Ctx, FxHashMap, IfaceId, Node, NodeCommand, Packet, SimRng, SimTime, TimerHandle,
};

use crate::netlink_pm::NetlinkPm;

/// Timer-token domains (top nibble). Domains 1–3 belong to the stack.
const D_USER_TIMER: u64 = 4 << 60;
const D_TO_USER: u64 = 5 << 60;
const D_TO_KERNEL: u64 = 6 << 60;
const D_CONNECT: u64 = 7 << 60;
const PAYLOAD: u64 = (1 << 60) - 1;

/// Work items the host feeds through the stack.
enum Work {
    Packet(Packet),
    StackTimer(u64),
    Connect {
        src: Option<Addr>,
        dst: Addr,
        dst_port: u16,
        app: Box<dyn App>,
    },
    Action(PmAction),
    LocalAddr(Addr, bool),
}

/// A client connection scheduled for a future simulated time:
/// `(when, source address, destination, port, app)`.
type ScheduledConnect = (SimTime, Option<Addr>, Addr, u16, Option<Box<dyn App>>);

/// Reusable buffers for [`Host::drive`], so the per-event hot path does not
/// re-allocate its scratch vectors for every packet/timer (they are taken
/// at entry and put back, keeping their capacity, on exit).
#[derive(Default)]
struct DriveScratch {
    work: VecDeque<Work>,
    packets: Vec<OutPacket>,
    timers: Vec<(Duration, u64)>,
    connects: Vec<smapp_mptcp::ConnectRequest>,
}

/// Record of sockdiag probes taken mid-run, filled by scripted
/// [`NodeCommand::Probe`] actions. Probing is read-only: it draws no
/// randomness, sends nothing and arms no timers, so a probed run's
/// trajectory is bit-identical to an unprobed one.
#[derive(Default)]
pub struct DiagLog {
    /// Probes executed so far.
    pub probes: u64,
    /// Encoded `REPLY_DIAG` frames, one per probe, in probe order.
    pub replies: Vec<Bytes>,
}

/// One simulated multihomed endpoint.
pub struct Host {
    /// Human-readable name for reports.
    pub name: String,
    /// The in-kernel stack.
    pub stack: HostStack,
    /// The kernel path manager plugged into the stack.
    pub pm: Box<dyn PathManagerHook>,
    /// Optional userspace subflow-controller process.
    pub user: Option<Box<dyn UserProcess>>,
    /// Boundary latency applied per netlink crossing.
    pub latency: LatencyModel,
    addr_iface: FxHashMap<Addr, IfaceId>,
    /// Live simulator-timer handle per stack-timer identity (token with the
    /// generation bits masked off), for cancel-on-rearm.
    stack_timers: FxHashMap<u64, TimerHandle>,
    pending: FxHashMap<u64, Bytes>,
    next_pending: u64,
    connects: Vec<ScheduledConnect>,
    scratch: DriveScratch,
    /// Netlink frames that failed to decode at the kernel (diagnostics).
    pub malformed_commands: u64,
    /// Sockdiag snapshots taken by scripted `Probe` commands.
    pub diag: DiagLog,
}

impl Host {
    /// A host with the given stack config, no path manager (`NoopPm`) and
    /// no userspace process.
    pub fn new(name: impl Into<String>, cfg: StackConfig) -> Self {
        Host {
            name: name.into(),
            stack: HostStack::new(cfg),
            pm: Box::new(smapp_mptcp::NoopPm),
            user: None,
            latency: LatencyModel::Zero,
            addr_iface: FxHashMap::default(),
            stack_timers: FxHashMap::default(),
            pending: FxHashMap::default(),
            next_pending: 0,
            connects: Vec::new(),
            scratch: DriveScratch::default(),
            malformed_commands: 0,
            diag: DiagLog::default(),
        }
    }

    /// Plug in a kernel path manager.
    pub fn with_pm(mut self, pm: Box<dyn PathManagerHook>) -> Self {
        self.pm = pm;
        self
    }

    /// Attach a userspace process behind the given boundary latency. Also
    /// installs a [`NetlinkPm`] as the kernel path manager.
    pub fn with_user(mut self, user: Box<dyn UserProcess>, latency: LatencyModel) -> Self {
        self.pm = Box::new(NetlinkPm::new());
        self.user = Some(user);
        self.latency = latency;
        self
    }

    /// Listen on `port` with a per-connection app factory.
    pub fn listen(&mut self, port: u16, factory: smapp_mptcp::stack::AppFactory) {
        self.stack.listen(port, factory);
    }

    /// Schedule a client connection at simulated time `at`.
    pub fn connect_at(
        &mut self,
        at: SimTime,
        src: Option<Addr>,
        dst: Addr,
        dst_port: u16,
        app: Box<dyn App>,
    ) {
        self.connects.push((at, src, dst, dst_port, Some(app)));
    }

    /// Downcast the userspace process.
    pub fn user_as<T: 'static>(&self) -> Option<&T> {
        self.user.as_ref()?.as_any().downcast_ref::<T>()
    }

    /// Run one work item through the stack, then the kernel-PM loop.
    /// Outputs are *appended* to the buffers handed in (which become the
    /// stack env's), preserving emission order across batched work items.
    fn run_stack(
        &mut self,
        rng: &mut SimRng,
        now: SimTime,
        work: Work,
        packets: &mut Vec<OutPacket>,
        timers: &mut Vec<(Duration, u64)>,
        connects: &mut Vec<smapp_mptcp::ConnectRequest>,
    ) -> (bool, bool) {
        let mut env = StackEnv {
            now,
            rng,
            out: std::mem::take(packets),
            timers: std::mem::take(timers),
            connects: std::mem::take(connects),
            stop: false,
        };
        let mut action_ok = true;
        match work {
            Work::Packet(p) => self.stack.on_packet(&mut env, &p),
            Work::StackTimer(t) => self.stack.on_timer(&mut env, t),
            Work::Connect {
                src,
                dst,
                dst_port,
                app,
            } => {
                self.stack.connect(&mut env, src, dst, dst_port, app);
            }
            Work::Action(a) => {
                action_ok = self.stack.apply_action(&mut env, &a);
            }
            Work::LocalAddr(addr, up) => self.stack.on_local_addr(&mut env, addr, up),
        }
        // Kernel path-manager loop: events -> actions -> (more events) ...
        for _ in 0..8 {
            let events = self.stack.take_events();
            if events.is_empty() {
                break;
            }
            let mut actions = PmActions::new();
            for ev in &events {
                self.pm.on_event(ev, &self.stack, &mut actions);
            }
            for a in actions.drain() {
                self.stack.apply_action(&mut env, &a);
            }
        }
        *packets = env.out;
        *timers = env.timers;
        *connects = env.connects;
        (env.stop, action_ok)
    }

    /// Feed a work item (and any follow-up connects) through the stack,
    /// then flush packets/timers into the simulator and drain the netlink
    /// outbox toward userspace.
    fn drive(&mut self, ctx: &mut Ctx<'_>, work: Work) -> bool {
        let now = ctx.now();
        let mut queue = std::mem::take(&mut self.scratch.work);
        let mut packets = std::mem::take(&mut self.scratch.packets);
        let mut timers = std::mem::take(&mut self.scratch.timers);
        let mut connects = std::mem::take(&mut self.scratch.connects);
        queue.push_back(work);
        let mut stop = false;
        let mut first_action_ok = true;
        let mut first = true;
        while let Some(w) = queue.pop_front() {
            let (s, action_ok) =
                self.run_stack(ctx.rng(), now, w, &mut packets, &mut timers, &mut connects);
            if first {
                first_action_ok = action_ok;
                first = false;
            }
            stop |= s;
            for c in connects.drain(..) {
                queue.push_back(Work::Connect {
                    src: c.src,
                    dst: c.dst,
                    dst_port: c.dst_port,
                    app: c.app,
                });
            }
        }
        for p in packets.drain(..) {
            if let Some(&iface) = self.addr_iface.get(&p.src) {
                ctx.send(iface, Packet::tcp(p.src, p.dst, p.seg));
            }
        }
        for (d, t) in timers.drain(..) {
            let handle = ctx.set_timer_after(d, t);
            if timer_rearm_supersedes(t) {
                // Rearming supersedes any previous generation of the same
                // timer: cancel it so the queue tracks live work.
                if let Some(old) = self.stack_timers.insert(timer_identity(t), handle) {
                    ctx.cancel_timer(old);
                }
            }
        }
        self.scratch.work = queue;
        self.scratch.packets = packets;
        self.scratch.timers = timers;
        self.scratch.connects = connects;
        if stop {
            ctx.stop();
        }
        self.flush_netlink_outbox(ctx);
        first_action_ok
    }

    /// Move frames queued by the NetlinkPm across the boundary (adds one
    /// latency sample each).
    fn flush_netlink_outbox(&mut self, ctx: &mut Ctx<'_>) {
        if self.user.is_none() {
            return;
        }
        let frames = match self.pm.as_any_mut().downcast_mut::<NetlinkPm>() {
            Some(nl) => nl.take_outbox(),
            None => return,
        };
        for f in frames {
            self.schedule_boundary(ctx, f, D_TO_USER);
        }
    }

    fn schedule_boundary(&mut self, ctx: &mut Ctx<'_>, frame: Bytes, domain: u64) {
        let id = self.next_pending;
        self.next_pending += 1;
        self.pending.insert(id, frame);
        let d = self.latency.sample(ctx.rng());
        ctx.set_timer_after(d, domain | (id & PAYLOAD));
    }

    /// Run a userspace callback and route its outputs.
    fn run_user(
        &mut self,
        ctx: &mut Ctx<'_>,
        f: impl FnOnce(&mut dyn UserProcess, &mut UserCtx<'_>),
    ) {
        let Some(user) = self.user.as_mut() else {
            return;
        };
        let now = ctx.now();
        let (to_kernel, timers) = {
            let mut uctx = UserCtx::new(now, ctx.rng());
            f(user.as_mut(), &mut uctx);
            (uctx.to_kernel, uctx.timers)
        };
        for frame in to_kernel {
            self.schedule_boundary(ctx, frame, D_TO_KERNEL);
        }
        for (d, tok) in timers {
            debug_assert!(tok <= PAYLOAD, "user timer token too large");
            ctx.set_timer_after(d, D_USER_TIMER | (tok & PAYLOAD));
        }
    }

    /// A frame crossed into the kernel: decode and execute.
    fn kernel_receive(&mut self, ctx: &mut Ctx<'_>, frame: Bytes) {
        let msg = match decode(&frame) {
            Ok(m) => m,
            Err(_) => {
                self.malformed_commands += 1;
                return;
            }
        };
        let (seq, cmd) = match msg {
            PmNlMessage::Command { seq, cmd } => (seq, cmd),
            PmNlMessage::DiagRequest { seq, token } => {
                let reply = encode_diag_reply(seq, &self.diag_dump(token));
                self.schedule_boundary(ctx, reply, D_TO_USER);
                return;
            }
            _ => {
                self.malformed_commands += 1;
                return;
            }
        };
        match cmd {
            PmNlCommand::Subscribe { mask } => {
                if let Some(nl) = self.pm.as_any_mut().downcast_mut::<NetlinkPm>() {
                    nl.mask = mask;
                    let ack = encode_ack(seq, 0);
                    self.schedule_boundary(ctx, ack, D_TO_USER);
                    // Netlink dump semantics: a fresh subscriber learns the
                    // current local addresses immediately (real controllers
                    // do an RTM_GETADDR dump at startup).
                    let up_bit = smapp_mptcp::PmEvent::LocalAddrUp {
                        addr: smapp_sim::Addr::UNSPECIFIED,
                    }
                    .mask_bit();
                    if mask & up_bit != 0 {
                        for addr in self.stack.local_addrs_up() {
                            let ev = smapp_mptcp::PmEvent::LocalAddrUp { addr };
                            let frame = smapp_netlink::encode_event(&ev);
                            self.schedule_boundary(ctx, frame, D_TO_USER);
                        }
                    }
                }
            }
            PmNlCommand::GetInfo { token, id } => {
                let reply = self.build_info_reply(seq, token, id);
                self.schedule_boundary(ctx, reply, D_TO_USER);
            }
            other => {
                let action = other
                    .to_action()
                    .expect("remaining commands map to actions");
                let ok = self.drive(ctx, Work::Action(action));
                let ack = encode_ack(
                    seq,
                    if ok {
                        0
                    } else {
                        2 /* ENOENT */
                    },
                );
                self.schedule_boundary(ctx, ack, D_TO_USER);
            }
        }
    }

    fn build_info_reply(&self, seq: u32, token: ConnToken, id: Option<u8>) -> Bytes {
        use smapp_mptcp::StackView;
        let ids = match id {
            Some(one) => vec![one],
            None => self.stack.subflow_ids(token),
        };
        let infos: Vec<(u8, smapp_tcp::TcpInfo)> = ids
            .into_iter()
            .filter_map(|sid| self.stack.subflow_info(token, sid).map(|i| (sid, i)))
            .collect();
        let conn = self
            .stack
            .conn_info(token)
            .map(|ci| (ci.meta_una, ci.meta_snd_nxt));
        encode_info_reply(seq, token, conn, &infos)
    }

    /// Sockdiag dump: live state of every connection on this host (or one
    /// connection by `token`), in creation order. Read-only — safe to call
    /// mid-run from scenario code without perturbing the trajectory.
    pub fn diag_dump(&self, token: Option<ConnToken>) -> Vec<DiagConn> {
        self.stack
            .connections()
            .filter(|c| token.is_none_or(|t| c.token == t))
            .map(|c| {
                let info = c.info();
                let subflows = c
                    .live_subflow_ids()
                    .into_iter()
                    .filter_map(|sid| c.subflow_info(sid).map(|i| (sid, i)))
                    .collect();
                DiagConn {
                    token: c.token,
                    state: info.state,
                    fallback_inferred: c.stats.fallback_inferred,
                    meta_una: info.meta_una,
                    meta_snd_nxt: info.meta_snd_nxt,
                    tap_sent: (c.stats.tap_sent.count, c.stats.tap_sent.fnv),
                    tap_recvd: (c.stats.tap_recvd.count, c.stats.tap_recvd.fnv),
                    reinjections: c.stats.reinjections,
                    subflows,
                }
            })
            .collect()
    }
}

impl Node for Host {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        // Wire up interfaces.
        for (id, iface) in ctx.my_ifaces() {
            self.addr_iface.insert(iface.addr, id);
            self.stack.set_local_addr(iface.addr, iface.up);
        }
        // Give the controller a chance to subscribe.
        self.run_user(ctx, |u, uctx| u.on_start(uctx));
        // Schedule the workload.
        for (i, (at, ..)) in self.connects.iter().enumerate() {
            ctx.set_timer_at(*at, D_CONNECT | i as u64);
        }
    }

    fn on_packet(&mut self, ctx: &mut Ctx<'_>, _iface: IfaceId, pkt: Packet) {
        self.drive(ctx, Work::Packet(pkt));
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        match token >> 60 {
            1..=3 => {
                if timer_rearm_supersedes(token) {
                    // This firing is the live generation (older ones were
                    // cancelled on rearm); drop the bookkeeping entry.
                    self.stack_timers.remove(&timer_identity(token));
                }
                self.drive(ctx, Work::StackTimer(token));
            }
            4 => {
                let tok = token & PAYLOAD;
                self.run_user(ctx, |u, uctx| u.on_timer(uctx, tok));
            }
            5 => {
                if let Some(frame) = self.pending.remove(&(token & PAYLOAD)) {
                    self.run_user(ctx, |u, uctx| u.on_message(uctx, frame));
                }
            }
            6 => {
                if let Some(frame) = self.pending.remove(&(token & PAYLOAD)) {
                    self.kernel_receive(ctx, frame);
                }
            }
            7 => {
                let idx = (token & PAYLOAD) as usize;
                if let Some((_, src, dst, port, app)) = self.connects.get_mut(idx) {
                    if let Some(app) = app.take() {
                        let (src, dst, port) = (*src, *dst, *port);
                        self.drive(
                            ctx,
                            Work::Connect {
                                src,
                                dst,
                                dst_port: port,
                                app,
                            },
                        );
                    }
                }
            }
            _ => {}
        }
    }

    fn on_command(&mut self, _ctx: &mut Ctx<'_>, cmd: &NodeCommand) {
        if let NodeCommand::Probe = cmd {
            // Read-only snapshot: no RNG draws, no sends, no timers.
            let seq = self.diag.probes as u32;
            self.diag.probes += 1;
            let reply = encode_diag_reply(seq, &self.diag_dump(None));
            self.diag.replies.push(reply);
        }
    }

    fn on_iface_admin(&mut self, ctx: &mut Ctx<'_>, iface: IfaceId, up: bool) {
        let addr = ctx.iface(iface).addr;
        self.addr_iface.insert(addr, iface);
        self.drive(ctx, Work::LocalAddr(addr, up));
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}
