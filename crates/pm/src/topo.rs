//! Canned topologies for experiments and tests.
//!
//! These mirror the Mininet setups of the paper:
//!
//! * [`two_path`] — a dual-homed client, a router, and a server: the §4.2
//!   backup and §4.3 streaming experiments.
//! * [`ecmp`] — client and server attached to two routers joined by N
//!   parallel ECMP-balanced paths: the §4.4 experiment.
//! * [`firewalled`] — client behind a stateful firewall: the §4.1
//!   long-lived-connection scenario.

use smapp_sim::{
    Addr, AddrPrefix, DenyPolicy, Firewall, IfaceId, LinkCfg, LinkId, NodeId, Router, Simulator,
};

use crate::host::Host;

/// Client address on path 1.
pub const CLIENT_ADDR1: Addr = Addr::new(10, 0, 1, 1);
/// Client address on path 2.
pub const CLIENT_ADDR2: Addr = Addr::new(10, 0, 2, 1);
/// Server address.
pub const SERVER_ADDR: Addr = Addr::new(10, 0, 9, 1);

/// Handles into a built two-path network.
pub struct TwoPathNet {
    /// The simulator, ready to run.
    pub sim: Simulator,
    /// Client node id.
    pub client: NodeId,
    /// Server node id.
    pub server: NodeId,
    /// Router node id.
    pub router: NodeId,
    /// Link client-iface1 ↔ router.
    pub link1: LinkId,
    /// Link client-iface2 ↔ router.
    pub link2: LinkId,
    /// Link router ↔ server.
    pub fat: LinkId,
    /// Client interface on path 1.
    pub client_if1: IfaceId,
    /// Client interface on path 2.
    pub client_if2: IfaceId,
}

/// Build: client(2 ifaces) —link1/link2→ router —fat→ server.
///
/// `fat` defaults to a high-capacity low-delay link so the interesting
/// dynamics stay on the two access paths.
pub fn two_path(seed: u64, client: Host, server: Host, cfg1: LinkCfg, cfg2: LinkCfg) -> TwoPathNet {
    let mut sim = Simulator::new(seed);
    let client_id = sim.add_node(Box::new(client));
    let server_id = sim.add_node(Box::new(server));
    let router_id = sim.add_node(Box::new(Router::new(1)));

    let c_if1 = sim.add_iface(client_id, CLIENT_ADDR1, "wlan0");
    let c_if2 = sim.add_iface(client_id, CLIENT_ADDR2, "lte0");
    let s_if = sim.add_iface(server_id, SERVER_ADDR, "eth0");
    let r_if1 = sim.add_iface(router_id, Addr::new(10, 0, 1, 254), "r1");
    let r_if2 = sim.add_iface(router_id, Addr::new(10, 0, 2, 254), "r2");
    let r_if9 = sim.add_iface(router_id, Addr::new(10, 0, 9, 254), "r9");

    {
        let router = sim
            .node_mut(router_id)
            .as_any_mut()
            .downcast_mut::<Router>()
            .unwrap();
        router.add_route("10.0.1.0/24".parse().unwrap(), vec![r_if1]);
        router.add_route("10.0.2.0/24".parse().unwrap(), vec![r_if2]);
        router.add_route("10.0.9.0/24".parse().unwrap(), vec![r_if9]);
    }

    let link1 = sim.connect(c_if1, r_if1, cfg1);
    let link2 = sim.connect(c_if2, r_if2, cfg2);
    let fat = sim.connect(r_if9, s_if, LinkCfg::mbps_ms(1000, 1));

    TwoPathNet {
        sim,
        client: client_id,
        server: server_id,
        router: router_id,
        link1,
        link2,
        fat,
        client_if1: c_if1,
        client_if2: c_if2,
    }
}

/// Handles into a built ECMP network.
pub struct EcmpNet {
    /// The simulator, ready to run.
    pub sim: Simulator,
    /// Client node id.
    pub client: NodeId,
    /// Server node id.
    pub server: NodeId,
    /// The N parallel path links (between the two routers).
    pub paths: Vec<LinkId>,
}

/// Build: client —access→ R1 ═N parallel links═ R2 —access→ server.
///
/// Both routers hash the 5-tuple over the N paths (different salts, like
/// independent hardware). `path_cfgs` gives each parallel link's config —
/// the §4.4 experiment uses four 8 Mb/s links with 10/20/30/40 ms delay.
pub fn ecmp(seed: u64, client: Host, server: Host, path_cfgs: &[LinkCfg]) -> EcmpNet {
    assert!(!path_cfgs.is_empty());
    let mut sim = Simulator::new(seed);
    let client_id = sim.add_node(Box::new(client));
    let server_id = sim.add_node(Box::new(server));
    let r1_id = sim.add_node(Box::new(Router::new(11)));
    let r2_id = sim.add_node(Box::new(Router::new(22)));

    let c_if = sim.add_iface(client_id, CLIENT_ADDR1, "eth0");
    let s_if = sim.add_iface(server_id, SERVER_ADDR, "eth0");
    let r1_c = sim.add_iface(r1_id, Addr::new(10, 0, 1, 254), "toC");
    let r2_s = sim.add_iface(r2_id, Addr::new(10, 0, 9, 254), "toS");

    let access = LinkCfg::mbps_ms(1000, 1);
    sim.connect(c_if, r1_c, access.clone());
    let _ = sim.connect(r2_s, s_if, access);

    let mut paths = Vec::new();
    let mut r1_ups = Vec::new();
    let mut r2_ups = Vec::new();
    for (i, cfg) in path_cfgs.iter().enumerate() {
        let a = sim.add_iface(r1_id, Addr::new(10, 1, i as u8, 1), "up");
        let b = sim.add_iface(r2_id, Addr::new(10, 1, i as u8, 2), "down");
        paths.push(sim.connect(a, b, cfg.clone()));
        r1_ups.push(a);
        r2_ups.push(b);
    }

    {
        let r1 = sim
            .node_mut(r1_id)
            .as_any_mut()
            .downcast_mut::<Router>()
            .unwrap();
        r1.add_route("10.0.9.0/24".parse::<AddrPrefix>().unwrap(), r1_ups);
        r1.add_route("10.0.1.0/24".parse().unwrap(), vec![r1_c]);
    }
    {
        let r2 = sim
            .node_mut(r2_id)
            .as_any_mut()
            .downcast_mut::<Router>()
            .unwrap();
        r2.add_route("10.0.1.0/24".parse::<AddrPrefix>().unwrap(), r2_ups);
        r2.add_route("10.0.9.0/24".parse().unwrap(), vec![r2_s]);
    }

    EcmpNet {
        sim,
        client: client_id,
        server: server_id,
        paths,
    }
}

/// Handles into a built firewalled network.
pub struct FirewalledNet {
    /// The simulator, ready to run.
    pub sim: Simulator,
    /// Client node id.
    pub client: NodeId,
    /// Server node id.
    pub server: NodeId,
    /// Firewall node id (downcast to [`Firewall`] to flush state etc.).
    pub firewall: NodeId,
}

/// Build: client —l1→ firewall —l2→ server, with the given idle timeout.
/// `nat` selects NAPT mode (source address/port translation) instead of a
/// plain stateful filter.
pub fn firewalled(
    seed: u64,
    client: Host,
    server: Host,
    idle_timeout: std::time::Duration,
    policy: DenyPolicy,
    nat: bool,
    link: LinkCfg,
) -> FirewalledNet {
    let mut sim = Simulator::new(seed);
    let client_id = sim.add_node(Box::new(client));
    let server_id = sim.add_node(Box::new(server));
    let fw = if nat {
        Firewall::nat(idle_timeout, policy)
    } else {
        Firewall::new(idle_timeout, policy)
    };
    let fw_id = sim.add_node(Box::new(fw));

    let c_if = sim.add_iface(client_id, CLIENT_ADDR1, "eth0");
    let s_if = sim.add_iface(server_id, SERVER_ADDR, "eth0");
    let f_in = sim.add_iface(fw_id, Addr::new(10, 0, 1, 254), "inside");
    let f_out = sim.add_iface(fw_id, Addr::new(10, 0, 9, 254), "outside");

    sim.connect(c_if, f_in, link.clone());
    sim.connect(f_out, s_if, link);

    sim.node_mut(fw_id)
        .as_any_mut()
        .downcast_mut::<Firewall>()
        .unwrap()
        .bind(f_in, f_out);

    FirewalledNet {
        sim,
        client: client_id,
        server: server_id,
        firewall: fw_id,
    }
}

/// Convenience: borrow a node as a [`Host`].
pub fn host(sim: &Simulator, id: NodeId) -> &Host {
    sim.node(id)
        .as_any()
        .downcast_ref::<Host>()
        .expect("node is a Host")
}

/// Convenience: mutably borrow a node as a [`Host`].
pub fn host_mut(sim: &mut Simulator, id: NodeId) -> &mut Host {
    sim.node_mut(id)
        .as_any_mut()
        .downcast_mut::<Host>()
        .expect("node is a Host")
}
