//! The in-kernel `ndiffports` path manager (baseline).
//!
//! "The ndiffports path manager creates n subflows over the same interface
//! as the initial one immediately after the establishment of the
//! connection. This path manager was designed for datacenters where it
//! enables the utilisation of paths that are load-balanced with Equal Cost
//! Multipath." (§2.) Source ports are ephemeral (random), so each subflow
//! hashes to a — hopefully — different ECMP path. §4.4 shows the weakness
//! this implies: with n close to the number of paths, collisions are
//! likely, and the kernel manager never rebalances.

use smapp_mptcp::{PathManagerHook, PmAction, PmActions, PmEvent, StackView};

/// The kernel ndiffports path manager.
#[derive(Debug)]
pub struct NdiffportsPm {
    /// Total subflows per connection (including the initial one).
    pub n: u8,
    /// Subflows opened over the lifetime (diagnostics).
    pub subflows_opened: u64,
}

impl NdiffportsPm {
    /// A manager creating `n` subflows per connection in total.
    pub fn new(n: u8) -> Self {
        assert!(n >= 1);
        NdiffportsPm {
            n,
            subflows_opened: 0,
        }
    }
}

impl PathManagerHook for NdiffportsPm {
    fn on_event(&mut self, ev: &PmEvent, _view: &dyn StackView, actions: &mut PmActions) {
        if let PmEvent::ConnEstablished {
            token,
            tuple,
            is_client: true,
        } = ev
        {
            for _ in 1..self.n {
                self.subflows_opened += 1;
                actions.push(PmAction::OpenSubflow {
                    token: *token,
                    src: tuple.src,
                    src_port: 0, // ephemeral: a fresh ECMP hash
                    dst: tuple.dst,
                    dst_port: tuple.dst_port,
                    backup: false,
                });
            }
        }
    }

    fn name(&self) -> &'static str {
        "ndiffports"
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smapp_mptcp::{ConnToken, FourTuple};
    use smapp_sim::Addr;
    use smapp_tcp::TcpInfo;

    struct NullView;
    impl StackView for NullView {
        fn subflow_info(&self, _: ConnToken, _: u8) -> Option<TcpInfo> {
            None
        }
        fn subflow_ids(&self, _: ConnToken) -> Vec<u8> {
            vec![]
        }
        fn local_addrs(&self) -> Vec<Addr> {
            vec![]
        }
        fn remote_addrs(&self, _: ConnToken) -> Vec<(u8, Addr, u16)> {
            vec![]
        }
    }

    fn estab(is_client: bool) -> PmEvent {
        PmEvent::ConnEstablished {
            token: 7,
            tuple: FourTuple {
                src: Addr::new(10, 0, 0, 1),
                src_port: 40000,
                dst: Addr::new(10, 0, 1, 1),
                dst_port: 80,
            },
            is_client,
        }
    }

    #[test]
    fn opens_n_minus_one_on_establish() {
        let mut pm = NdiffportsPm::new(5);
        let mut actions = PmActions::new();
        pm.on_event(&estab(true), &NullView, &mut actions);
        let acts = actions.drain();
        assert_eq!(acts.len(), 4);
        for a in &acts {
            match a {
                PmAction::OpenSubflow {
                    src_port, backup, ..
                } => {
                    assert_eq!(*src_port, 0, "ephemeral port for a fresh hash");
                    assert!(!backup);
                }
                other => panic!("unexpected action {other:?}"),
            }
        }
    }

    #[test]
    fn server_side_does_nothing() {
        let mut pm = NdiffportsPm::new(5);
        let mut actions = PmActions::new();
        pm.on_event(&estab(false), &NullView, &mut actions);
        assert!(actions.is_empty());
    }

    #[test]
    fn n_one_is_single_path() {
        let mut pm = NdiffportsPm::new(1);
        let mut actions = PmActions::new();
        pm.on_event(&estab(true), &NullView, &mut actions);
        assert!(actions.is_empty());
    }
}
