//! # smapp-pm — path managers and the simulated host
//!
//! The path-manager layer of the SMAPP reproduction:
//!
//! * [`fullmesh`] / [`ndiffports`] — the two in-kernel strategies that
//!   shipped with the Linux MPTCP kernel, used as baselines throughout the
//!   paper's evaluation;
//! * [`netlink_pm`] — the paper's contribution on the kernel side: a path
//!   manager that delegates every decision to userspace over netlink;
//! * [`mod@host`] — a complete simulated endpoint ([`Host`]): stack + kernel
//!   path manager + optional userspace controller behind a latency-modeled
//!   netlink boundary, pluggable into `smapp-sim` as a node;
//! * [`topo`] — the paper's Mininet topologies (two-path, ECMP fan,
//!   firewalled) as one-call builders;
//! * [`verify`] — run-level protocol-invariant oracle verdicts: the wire
//!   oracle (`smapp_sim::Oracle`) plus every host's connection taps,
//!   cross-checked, in one [`conclude`] call.

#![warn(missing_docs)]

pub mod fullmesh;
pub mod host;
pub mod ndiffports;
pub mod netlink_pm;
pub mod topo;
pub mod verify;

pub use fullmesh::FullMeshPm;
pub use host::{DiagLog, Host};
pub use ndiffports::NdiffportsPm;
pub use netlink_pm::NetlinkPm;
pub use topo::{ecmp, firewalled, host, host_mut, two_path, EcmpNet, FirewalledNet, TwoPathNet};
pub use verify::{conclude, RunVerdict};
