//! The in-kernel `fullmesh` path manager (baseline).
//!
//! "The full-mesh path manager listens to events from the underlying
//! network interfaces and creates one subflow towards the server over each
//! active interface. These subflows are created immediately after the
//! creation of the connection or when an interface becomes active." (§2.)
//!
//! Like the Linux module, it acts only on the client side of a connection
//! (servers never create subflows); on the server side it announces
//! additional local addresses via `ADD_ADDR` so the client's mesh can grow.

use std::collections::{HashMap, HashSet};

use smapp_mptcp::{ConnToken, PathManagerHook, PmAction, PmActions, PmEvent, StackView};
use smapp_sim::Addr;

#[derive(Debug, Default)]
struct ConnRec {
    is_client: bool,
    dst_port: u16,
    /// (local, remote) pairs with a live (or in-progress) subflow.
    pairs: HashSet<(Addr, Addr)>,
    /// Local addresses announced to the peer (server side).
    announced: HashSet<Addr>,
}

/// The kernel full-mesh path manager.
#[derive(Debug, Default)]
pub struct FullMeshPm {
    conns: HashMap<ConnToken, ConnRec>,
    /// Subflows opened over the lifetime (diagnostics).
    pub subflows_opened: u64,
}

impl FullMeshPm {
    /// Fresh instance.
    pub fn new() -> Self {
        Self::default()
    }

    /// Create every missing (local × remote) subflow for `token`.
    fn mesh(&mut self, token: ConnToken, view: &dyn StackView, actions: &mut PmActions) {
        let Some(rec) = self.conns.get_mut(&token) else {
            return;
        };
        if !rec.is_client {
            return;
        }
        for local in view.local_addrs() {
            for (_, remote, port) in view.remote_addrs(token) {
                if rec.pairs.insert((local, remote)) {
                    self.subflows_opened += 1;
                    actions.push(PmAction::OpenSubflow {
                        token,
                        src: local,
                        src_port: 0,
                        dst: remote,
                        dst_port: if port != 0 { port } else { rec.dst_port },
                        backup: false,
                    });
                }
            }
        }
    }

    /// Server side: announce local addresses the peer cannot see.
    fn announce(&mut self, token: ConnToken, view: &dyn StackView, actions: &mut PmActions) {
        let Some(rec) = self.conns.get_mut(&token) else {
            return;
        };
        if rec.is_client {
            return;
        }
        let mut next_id = rec.announced.len() as u8 + 1;
        for local in view.local_addrs() {
            // The address the connection already uses needs no announcing.
            let already_used = rec.pairs.iter().any(|(l, _)| *l == local);
            if !already_used && rec.announced.insert(local) {
                actions.push(PmAction::AnnounceAddr {
                    token,
                    addr_id: next_id,
                    addr: local,
                });
                next_id += 1;
            }
        }
    }
}

impl PathManagerHook for FullMeshPm {
    fn on_event(&mut self, ev: &PmEvent, view: &dyn StackView, actions: &mut PmActions) {
        match ev {
            PmEvent::ConnCreated {
                token,
                tuple,
                is_client,
                ..
            } => {
                let rec = self.conns.entry(*token).or_default();
                rec.is_client = *is_client;
                rec.dst_port = tuple.dst_port;
                rec.pairs.insert((tuple.src, tuple.dst));
            }
            PmEvent::ConnEstablished { token, .. } => {
                self.mesh(*token, view, actions);
                self.announce(*token, view, actions);
            }
            PmEvent::ConnClosed { token } => {
                self.conns.remove(token);
            }
            PmEvent::SubflowEstablished { token, tuple, .. } => {
                if let Some(rec) = self.conns.get_mut(token) {
                    rec.pairs.insert((tuple.src, tuple.dst));
                }
            }
            PmEvent::SubflowClosed { token, tuple, .. } => {
                // Forget the pair so a future address event can recreate it.
                // (The kernel fullmesh does not retry by itself — that is
                // exactly the gap the paper's userspace fullmesh fills.)
                if let Some(rec) = self.conns.get_mut(token) {
                    rec.pairs.remove(&(tuple.src, tuple.dst));
                }
            }
            PmEvent::AddAddrReceived { token, .. } => {
                self.mesh(*token, view, actions);
            }
            PmEvent::RemAddrReceived { .. } => {
                // Stack already forgot the address; mesh state updates when
                // the subflows close.
            }
            PmEvent::LocalAddrUp { .. } => {
                let tokens: Vec<ConnToken> = self.conns.keys().copied().collect();
                for t in tokens {
                    self.mesh(t, view, actions);
                    self.announce(t, view, actions);
                }
            }
            PmEvent::LocalAddrDown { addr } => {
                for rec in self.conns.values_mut() {
                    rec.pairs.retain(|(l, _)| l != addr);
                }
            }
            PmEvent::RtoExpired { .. } => {}
        }
    }

    fn name(&self) -> &'static str {
        "fullmesh"
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smapp_mptcp::FourTuple;
    use smapp_tcp::TcpInfo;

    /// A canned view for unit tests.
    struct FakeView {
        locals: Vec<Addr>,
        remotes: Vec<(u8, Addr, u16)>,
    }
    impl StackView for FakeView {
        fn subflow_info(&self, _: ConnToken, _: u8) -> Option<TcpInfo> {
            None
        }
        fn subflow_ids(&self, _: ConnToken) -> Vec<u8> {
            vec![]
        }
        fn local_addrs(&self) -> Vec<Addr> {
            self.locals.clone()
        }
        fn remote_addrs(&self, _: ConnToken) -> Vec<(u8, Addr, u16)> {
            self.remotes.clone()
        }
    }

    const L1: Addr = Addr::new(10, 0, 0, 1);
    const L2: Addr = Addr::new(10, 0, 2, 1);
    const R1: Addr = Addr::new(10, 0, 1, 1);
    const R2: Addr = Addr::new(10, 0, 3, 1);

    fn tuple() -> FourTuple {
        FourTuple {
            src: L1,
            src_port: 40000,
            dst: R1,
            dst_port: 80,
        }
    }

    fn created_and_estab(pm: &mut FullMeshPm, view: &FakeView, is_client: bool) -> PmActions {
        let mut actions = PmActions::new();
        pm.on_event(
            &PmEvent::ConnCreated {
                token: 1,
                tuple: tuple(),
                initial_subflow: 0,
                is_client,
            },
            view,
            &mut actions,
        );
        pm.on_event(
            &PmEvent::ConnEstablished {
                token: 1,
                tuple: tuple(),
                is_client,
            },
            view,
            &mut actions,
        );
        actions
    }

    #[test]
    fn meshes_local_by_remote() {
        let view = FakeView {
            locals: vec![L1, L2],
            remotes: vec![(0, R1, 80), (1, R2, 80)],
        };
        let mut pm = FullMeshPm::new();
        let mut actions = created_and_estab(&mut pm, &view, true);
        let opens: Vec<PmAction> = actions.drain();
        // 2 locals x 2 remotes = 4 pairs, minus the initial (L1,R1) = 3.
        let count = opens
            .iter()
            .filter(|a| matches!(a, PmAction::OpenSubflow { .. }))
            .count();
        assert_eq!(count, 3);
        assert_eq!(pm.subflows_opened, 3);
    }

    #[test]
    fn server_announces_not_meshes() {
        let view = FakeView {
            locals: vec![R1, R2],
            remotes: vec![(0, L1, 40000)],
        };
        let mut pm = FullMeshPm::new();
        // Server perspective: tuple src=R1 (local), dst=L1.
        let mut actions = PmActions::new();
        pm.on_event(
            &PmEvent::ConnCreated {
                token: 1,
                tuple: FourTuple {
                    src: R1,
                    src_port: 80,
                    dst: L1,
                    dst_port: 40000,
                },
                initial_subflow: 0,
                is_client: false,
            },
            &view,
            &mut actions,
        );
        pm.on_event(
            &PmEvent::ConnEstablished {
                token: 1,
                tuple: FourTuple {
                    src: R1,
                    src_port: 80,
                    dst: L1,
                    dst_port: 40000,
                },
                is_client: false,
            },
            &view,
            &mut actions,
        );
        let acts = actions.drain();
        assert!(acts
            .iter()
            .all(|a| !matches!(a, PmAction::OpenSubflow { .. })));
        assert_eq!(
            acts.iter()
                .filter(|a| matches!(a, PmAction::AnnounceAddr { addr, .. } if *addr == R2))
                .count(),
            1
        );
    }

    #[test]
    fn add_addr_extends_mesh() {
        let view = FakeView {
            locals: vec![L1],
            remotes: vec![(0, R1, 80)],
        };
        let mut pm = FullMeshPm::new();
        created_and_estab(&mut pm, &view, true);
        // Remote announces R2.
        let view2 = FakeView {
            locals: vec![L1],
            remotes: vec![(0, R1, 80), (5, R2, 80)],
        };
        let mut actions = PmActions::new();
        pm.on_event(
            &PmEvent::AddAddrReceived {
                token: 1,
                addr_id: 5,
                addr: R2,
                port: None,
            },
            &view2,
            &mut actions,
        );
        let acts = actions.drain();
        assert_eq!(acts.len(), 1);
        assert!(matches!(acts[0], PmAction::OpenSubflow { dst, .. } if dst == R2));
    }

    #[test]
    fn local_addr_up_re_meshes() {
        let view = FakeView {
            locals: vec![L1],
            remotes: vec![(0, R1, 80)],
        };
        let mut pm = FullMeshPm::new();
        created_and_estab(&mut pm, &view, true);
        let view2 = FakeView {
            locals: vec![L1, L2],
            remotes: vec![(0, R1, 80)],
        };
        let mut actions = PmActions::new();
        pm.on_event(&PmEvent::LocalAddrUp { addr: L2 }, &view2, &mut actions);
        let acts = actions.drain();
        assert_eq!(
            acts.iter()
                .filter(|a| matches!(a, PmAction::OpenSubflow { src, .. } if *src == L2))
                .count(),
            1
        );
    }

    #[test]
    fn no_duplicate_subflows() {
        let view = FakeView {
            locals: vec![L1, L2],
            remotes: vec![(0, R1, 80)],
        };
        let mut pm = FullMeshPm::new();
        created_and_estab(&mut pm, &view, true);
        let opened = pm.subflows_opened;
        // Re-delivering establish-like events must not re-open.
        let mut actions = PmActions::new();
        pm.on_event(&PmEvent::LocalAddrUp { addr: L2 }, &view, &mut actions);
        assert!(actions.is_empty());
        assert_eq!(pm.subflows_opened, opened);
    }

    #[test]
    fn closed_subflow_pair_can_reopen_on_addr_event() {
        let view = FakeView {
            locals: vec![L1, L2],
            remotes: vec![(0, R1, 80)],
        };
        let mut pm = FullMeshPm::new();
        created_and_estab(&mut pm, &view, true);
        let mut actions = PmActions::new();
        pm.on_event(
            &PmEvent::SubflowClosed {
                token: 1,
                id: 1,
                tuple: FourTuple {
                    src: L2,
                    src_port: 5,
                    dst: R1,
                    dst_port: 80,
                },
                error: smapp_mptcp::SubflowError::Timeout,
            },
            &view,
            &mut actions,
        );
        pm.on_event(&PmEvent::LocalAddrUp { addr: L2 }, &view, &mut actions);
        let acts = actions.drain();
        assert_eq!(
            acts.iter()
                .filter(|a| matches!(a, PmAction::OpenSubflow { src, .. } if *src == L2))
                .count(),
            1,
            "pair freed by sub_closed can be re-created"
        );
    }
}
