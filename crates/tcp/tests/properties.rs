//! Cross-module property tests for the TCP mechanics.

use proptest::prelude::*;
use smapp_sim::SimTime;
use smapp_tcp::{unwrap_u32, Flight, RtoPolicy, RtoState, RttEstimator};
use std::time::Duration;

proptest! {
    /// The RTO is always within the policy clamps, and never decreases as
    /// backoffs accumulate.
    #[test]
    fn rto_monotone_and_clamped(
        rtt_ms in 1u64..5_000,
        expiries in 0u32..40,
    ) {
        let policy = RtoPolicy::default();
        let mut rtt = RttEstimator::new();
        rtt.on_sample(Duration::from_millis(rtt_ms));
        let mut st = RtoState::new(policy.clone());
        let mut prev = Duration::ZERO;
        for _ in 0..expiries {
            let cur = st.current_rto(&rtt);
            prop_assert!(cur >= policy.min_rto);
            prop_assert!(cur <= policy.max_rto);
            prop_assert!(cur >= prev, "RTO never shrinks under backoff");
            prev = cur;
            st.on_expiry();
        }
        // Progress resets to the un-backoffed base value.
        st.on_ack_progress();
        let reset = st.current_rto(&rtt);
        let fresh = RtoState::new(policy.clone()).current_rto(&rtt);
        prop_assert_eq!(reset, fresh);
        prop_assert_eq!(st.backoffs(), 0);
    }

    /// Unwrapping a wire value produced from a true offset recovers the
    /// true offset whenever the receiver's expectation is within 2^31.
    #[test]
    fn unwrap_inverts_wrap(
        true_off in 0u64..(1u64 << 40),
        err in -100_000i64..100_000,
    ) {
        let expected = true_off.saturating_add_signed(err);
        let wire = true_off as u32;
        prop_assert_eq!(unwrap_u32(expected, wire), true_off);
    }

    /// The flight tracker conserves bytes: sent = acked + in-flight, and
    /// cumulative ACKs never increase the in-flight count.
    #[test]
    fn flight_conserves_bytes(
        segs in proptest::collection::vec(1u32..2000, 1..40),
        ack_points in proptest::collection::vec(0u64..100_000, 1..20),
    ) {
        let mut f: Flight<()> = Flight::new();
        let mut off = 0u64;
        for (i, len) in segs.iter().enumerate() {
            f.on_send(off, *len, SimTime::from_millis(i as u64), ());
            off += *len as u64;
        }
        let total = off;
        prop_assert_eq!(f.bytes_in_flight(), total);
        let mut acked = 0u64;
        let mut sorted = ack_points.clone();
        sorted.sort_unstable();
        for (i, upto) in sorted.into_iter().enumerate() {
            let before = f.bytes_in_flight();
            let res = f.on_cum_ack(upto.min(total), SimTime::from_secs(1 + i as u64));
            acked += res.acked_bytes;
            prop_assert!(f.bytes_in_flight() <= before);
            prop_assert_eq!(acked + f.bytes_in_flight(), total);
        }
    }
}

/// Worst-case give-up time grows with max_retries and stays in the band
/// the paper's narrative relies on.
#[test]
fn give_up_time_grows_with_retries() {
    let mut rtt = RttEstimator::new();
    rtt.on_sample(Duration::from_millis(20));
    let mut prev = Duration::ZERO;
    for retries in [3u32, 6, 10, 15] {
        let st = RtoState::new(RtoPolicy {
            max_retries: retries,
            ..Default::default()
        });
        let t = st.worst_case_give_up_time(&rtt);
        assert!(t > prev);
        prev = t;
    }
    // 15 retries ≈ the paper's ~12-13 minutes.
    assert!((600.0..900.0).contains(&prev.as_secs_f64()));
}
