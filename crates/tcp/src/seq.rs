//! 32-bit wrapping sequence-number arithmetic.
//!
//! TCP sequence numbers live in a 32-bit circular space. This module
//! provides the classic serial-number comparisons plus an *unwrapper* that
//! lifts wire sequence numbers into the flat 64-bit stream-offset space the
//! rest of the engine works in. Internally everything is a `u64` byte
//! offset; only the wire codec deals in wrapped 32-bit values.

use std::fmt;

/// A raw 32-bit TCP sequence number.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct SeqNum(pub u32);

impl SeqNum {
    /// `self + n` with wraparound.
    #[allow(clippy::should_implement_trait)]
    pub fn add(self, n: u32) -> SeqNum {
        SeqNum(self.0.wrapping_add(n))
    }

    /// `self - n` with wraparound.
    #[allow(clippy::should_implement_trait)]
    pub fn sub(self, n: u32) -> SeqNum {
        SeqNum(self.0.wrapping_sub(n))
    }

    /// Serial-number "less than": true if `self` precedes `other` in the
    /// circular space (distance < 2^31).
    pub fn lt(self, other: SeqNum) -> bool {
        (self.0.wrapping_sub(other.0) as i32) < 0
    }

    /// Serial-number "less than or equal".
    pub fn leq(self, other: SeqNum) -> bool {
        self == other || self.lt(other)
    }

    /// Bytes from `self` forward to `other` (wrapping).
    pub fn distance_to(self, other: SeqNum) -> u32 {
        other.0.wrapping_sub(self.0)
    }
}

impl fmt::Debug for SeqNum {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "seq({})", self.0)
    }
}

impl From<u32> for SeqNum {
    fn from(v: u32) -> Self {
        SeqNum(v)
    }
}

/// Lift a wrapped 32-bit wire value into 64-bit space, choosing the value
/// congruent to `wire` (mod 2^32) closest to `expected`.
///
/// This is how the engine reconstructs absolute stream offsets from
/// received headers: the receiver knows roughly where the stream is
/// (`expected` = next expected offset) and the true offset is always within
/// ±2^31 of it on any sane connection.
pub fn unwrap_u32(expected: u64, wire: u32) -> u64 {
    const M: u64 = 1 << 32;
    let base = expected & !(M - 1);
    let candidates = [
        base.checked_sub(M).map(|b| b + wire as u64),
        Some(base + wire as u64),
        base.checked_add(M).map(|b| b + wire as u64),
    ];
    candidates
        .into_iter()
        .flatten()
        .min_by_key(|&c| c.abs_diff(expected))
        .expect("at least one candidate")
}

/// Same idea for DSS data sequence numbers carried as 32-bit values
/// (RFC 6824 allows 4- or 8-byte DSNs; the 4-byte form wraps like this).
pub fn unwrap_dsn32(expected: u64, wire: u32) -> u64 {
    unwrap_u32(expected, wire)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comparisons_across_wrap() {
        let a = SeqNum(u32::MAX - 5);
        let b = a.add(10); // wrapped
        assert!(a.lt(b));
        assert!(!b.lt(a));
        assert!(a.leq(b));
        assert!(a.leq(a));
        assert_eq!(a.distance_to(b), 10);
        assert_eq!(b.0, 4);
    }

    #[test]
    fn add_sub_inverse() {
        let a = SeqNum(1234);
        assert_eq!(a.add(77).sub(77), a);
        let b = SeqNum(3).sub(10);
        assert_eq!(b.add(10), SeqNum(3));
    }

    #[test]
    fn unwrap_near_zero() {
        assert_eq!(unwrap_u32(0, 0), 0);
        assert_eq!(unwrap_u32(0, 100), 100);
        assert_eq!(unwrap_u32(10, u32::MAX), u32::MAX as u64);
    }

    #[test]
    fn unwrap_mid_stream() {
        let expected = 5_000_000_000; // past one wrap (2^32 ≈ 4.29e9)
        let wire = (expected % (1u64 << 32)) as u32;
        assert_eq!(unwrap_u32(expected, wire), expected);
        // A value slightly behind expected.
        let behind = expected - 1000;
        assert_eq!(unwrap_u32(expected, behind as u32), behind);
        // A value ahead of expected.
        let ahead = expected + 100_000;
        assert_eq!(unwrap_u32(expected, ahead as u32), ahead);
    }

    #[test]
    fn unwrap_prefers_closest() {
        // expected exactly at a wrap boundary: both sides reachable.
        let expected = 1u64 << 32;
        assert_eq!(unwrap_u32(expected, 5), (1u64 << 32) + 5);
        assert_eq!(unwrap_u32(expected, u32::MAX - 5), (1u64 << 32) - 6);
    }

    #[test]
    fn unwrap_handles_huge_offsets() {
        let expected = 123 * (1u64 << 32) + 9876;
        assert_eq!(unwrap_u32(expected, 9876), expected);
    }
}
