//! TCP segment wire format.
//!
//! Real byte-level encoding and decoding of TCP headers and options. Every
//! packet travelling through the simulator carries bytes produced here, so
//! the codec is exercised by every experiment, not just by its tests.
//!
//! Multipath TCP options (option kind 30, RFC 6824) are carried as an
//! opaque subtype payload at this layer; the `smapp-mptcp` crate owns the
//! subtype codec. This mirrors the real-world layering where TCP option
//! parsing and MPTCP option semantics live in different parts of the stack.

use bytes::{BufMut, Bytes, BytesMut};

use crate::seq::SeqNum;

/// Maximum bytes of options a TCP header can carry (data offset is 4 bits).
pub const MAX_OPTIONS_LEN: usize = 40;
/// Length of the fixed TCP header.
pub const TCP_HEADER_LEN: usize = 20;
/// TCP option kind carrying all Multipath TCP signalling (RFC 6824).
pub const OPT_KIND_MPTCP: u8 = 30;

/// TCP header flags (the subset the engine uses).
#[derive(Clone, Copy, PartialEq, Eq, Default)]
pub struct TcpFlags {
    /// Synchronize sequence numbers.
    pub syn: bool,
    /// Acknowledgment field significant.
    pub ack: bool,
    /// No more data from sender.
    pub fin: bool,
    /// Reset the connection.
    pub rst: bool,
    /// Push function.
    pub psh: bool,
}

impl TcpFlags {
    /// SYN only.
    pub const SYN: TcpFlags = TcpFlags {
        syn: true,
        ack: false,
        fin: false,
        rst: false,
        psh: false,
    };
    /// SYN+ACK.
    pub const SYN_ACK: TcpFlags = TcpFlags {
        syn: true,
        ack: true,
        fin: false,
        rst: false,
        psh: false,
    };
    /// ACK only.
    pub const ACK: TcpFlags = TcpFlags {
        syn: false,
        ack: true,
        fin: false,
        rst: false,
        psh: false,
    };
    /// RST (with ACK, as Linux sends it).
    pub const RST: TcpFlags = TcpFlags {
        syn: false,
        ack: true,
        fin: false,
        rst: true,
        psh: false,
    };

    fn to_byte(self) -> u8 {
        (self.fin as u8)
            | (self.syn as u8) << 1
            | (self.rst as u8) << 2
            | (self.psh as u8) << 3
            | (self.ack as u8) << 4
    }

    fn from_byte(b: u8) -> Self {
        TcpFlags {
            fin: b & 0x01 != 0,
            syn: b & 0x02 != 0,
            rst: b & 0x04 != 0,
            psh: b & 0x08 != 0,
            ack: b & 0x10 != 0,
        }
    }
}

impl std::fmt::Debug for TcpFlags {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut s = String::new();
        if self.syn {
            s.push('S');
        }
        if self.ack {
            s.push('.');
        }
        if self.fin {
            s.push('F');
        }
        if self.rst {
            s.push('R');
        }
        if self.psh {
            s.push('P');
        }
        write!(f, "[{s}]")
    }
}

/// Maximum bytes of a single option body (40 minus kind and length octets).
pub const MAX_OPT_BODY_LEN: usize = MAX_OPTIONS_LEN - 2;

/// An option body stored inline, without a heap allocation.
///
/// TCP limits the whole options area to 40 bytes, so a single option body
/// can never exceed 38 — small enough to carry by value. This keeps the
/// per-segment hot path (one DSS option per data segment and per ACK) free
/// of `Bytes`/`Vec` churn.
#[derive(Clone, Copy)]
pub struct OptBytes {
    data: [u8; MAX_OPT_BODY_LEN],
    len: u8,
}

impl OptBytes {
    /// Empty body.
    pub const fn new() -> Self {
        OptBytes {
            data: [0; MAX_OPT_BODY_LEN],
            len: 0,
        }
    }

    /// Copy a slice in. Panics if `s` exceeds [`MAX_OPT_BODY_LEN`] — the
    /// decoder can never produce that (option length is bounded by the
    /// 40-byte area), so a panic here flags a construction bug.
    pub fn copy_from_slice(s: &[u8]) -> Self {
        assert!(s.len() <= MAX_OPT_BODY_LEN, "option body exceeds 38 bytes");
        let mut b = OptBytes::new();
        b.data[..s.len()].copy_from_slice(s);
        b.len = s.len() as u8;
        b
    }

    /// The stored bytes.
    pub fn as_slice(&self) -> &[u8] {
        &self.data[..self.len as usize]
    }

    /// Append bytes. Panics on overflow past [`MAX_OPT_BODY_LEN`].
    pub fn push_slice(&mut self, s: &[u8]) {
        let at = self.len as usize;
        assert!(at + s.len() <= MAX_OPT_BODY_LEN, "option body overflow");
        self.data[at..at + s.len()].copy_from_slice(s);
        self.len += s.len() as u8;
    }
}

impl Default for OptBytes {
    fn default() -> Self {
        OptBytes::new()
    }
}

impl BufMut for OptBytes {
    fn put_slice(&mut self, src: &[u8]) {
        self.push_slice(src);
    }
}

impl std::ops::Deref for OptBytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<&[u8]> for OptBytes {
    fn from(s: &[u8]) -> Self {
        OptBytes::copy_from_slice(s)
    }
}

impl<const N: usize> From<&[u8; N]> for OptBytes {
    fn from(s: &[u8; N]) -> Self {
        OptBytes::copy_from_slice(s)
    }
}

impl PartialEq for OptBytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for OptBytes {}

impl std::fmt::Debug for OptBytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:?}", self.as_slice())
    }
}

/// A TCP option.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TcpOption {
    /// Maximum segment size (kind 2), SYN-only.
    Mss(u16),
    /// Window scale shift (kind 3), SYN-only.
    WindowScale(u8),
    /// SACK permitted (kind 4); parsed but unused by this engine.
    SackPermitted,
    /// Timestamps (kind 8): value and echo reply.
    Timestamps {
        /// TSval.
        val: u32,
        /// TSecr.
        ecr: u32,
    },
    /// A Multipath TCP option (kind 30); the payload starts with the
    /// 4-bit subtype and is owned by the MPTCP layer.
    Mptcp(OptBytes),
    /// Any option this engine does not understand; round-trips unchanged.
    Unknown {
        /// Option kind byte.
        kind: u8,
        /// Option payload (excluding kind and length bytes).
        data: OptBytes,
    },
}

/// Maximum number of options one header can carry: every parsed option
/// consumes at least 2 of the 40 option bytes (NOP/EOL are skipped by the
/// decoder, not stored).
pub const MAX_TCP_OPTIONS: usize = MAX_OPTIONS_LEN / 2;

/// A fixed-capacity, inline list of TCP options.
///
/// Replaces the former `Vec<TcpOption>`: decoding a segment and building
/// one for transmit both happen for every simulated packet, and the option
/// list was one heap allocation per event on each side. Capacity
/// [`MAX_TCP_OPTIONS`] is enough for any wire-valid header, so `push` can
/// only panic on a construction bug.
#[derive(Clone, Copy)]
pub struct TcpOptions {
    opts: [TcpOption; MAX_TCP_OPTIONS],
    len: u8,
}

impl TcpOptions {
    const FILL: TcpOption = TcpOption::SackPermitted;

    /// Empty list.
    pub const fn new() -> Self {
        TcpOptions {
            opts: [Self::FILL; MAX_TCP_OPTIONS],
            len: 0,
        }
    }

    /// Append an option. Panics past [`MAX_TCP_OPTIONS`].
    pub fn push(&mut self, opt: TcpOption) {
        let at = self.len as usize;
        assert!(at < MAX_TCP_OPTIONS, "too many TCP options");
        self.opts[at] = opt;
        self.len += 1;
    }

    /// The stored options, in wire order.
    pub fn as_slice(&self) -> &[TcpOption] {
        &self.opts[..self.len as usize]
    }

    /// Drop all options.
    pub fn clear(&mut self) {
        self.len = 0;
    }
}

impl Default for TcpOptions {
    fn default() -> Self {
        TcpOptions::new()
    }
}

impl std::ops::Deref for TcpOptions {
    type Target = [TcpOption];
    fn deref(&self) -> &[TcpOption] {
        self.as_slice()
    }
}

impl<const N: usize> From<[TcpOption; N]> for TcpOptions {
    fn from(arr: [TcpOption; N]) -> Self {
        let mut o = TcpOptions::new();
        for opt in arr {
            o.push(opt);
        }
        o
    }
}

impl From<&[TcpOption]> for TcpOptions {
    fn from(s: &[TcpOption]) -> Self {
        let mut o = TcpOptions::new();
        for opt in s {
            o.push(*opt);
        }
        o
    }
}

impl FromIterator<TcpOption> for TcpOptions {
    fn from_iter<I: IntoIterator<Item = TcpOption>>(iter: I) -> Self {
        let mut o = TcpOptions::new();
        for opt in iter {
            o.push(opt);
        }
        o
    }
}

impl<'a> IntoIterator for &'a TcpOptions {
    type Item = &'a TcpOption;
    type IntoIter = std::slice::Iter<'a, TcpOption>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

impl PartialEq for TcpOptions {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for TcpOptions {}

impl std::fmt::Debug for TcpOptions {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_list().entries(self.as_slice()).finish()
    }
}

impl TcpOption {
    /// Encoded size in bytes, including kind and length octets.
    pub fn wire_len(&self) -> usize {
        match self {
            TcpOption::Mss(_) => 4,
            TcpOption::WindowScale(_) => 3,
            TcpOption::SackPermitted => 2,
            TcpOption::Timestamps { .. } => 10,
            TcpOption::Mptcp(b) => 2 + b.len(),
            TcpOption::Unknown { data, .. } => 2 + data.len(),
        }
    }
}

/// A decoded TCP header.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct TcpHeader {
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Sequence number.
    pub seq: SeqNum,
    /// Acknowledgment number (meaningful when `flags.ack`).
    pub ack: SeqNum,
    /// Control flags.
    pub flags: TcpFlags,
    /// Advertised receive window (possibly scaled by a negotiated shift).
    pub window: u16,
    /// Options, in wire order.
    pub options: TcpOptions,
}

/// A full TCP segment: header plus payload bytes.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct TcpSegment {
    /// The header.
    pub hdr: TcpHeader,
    /// Payload bytes.
    pub payload: Bytes,
}

/// Errors from [`TcpSegment::decode`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// Fewer bytes than a minimal header.
    Truncated,
    /// Data offset field smaller than 5 or past the end of the buffer.
    BadDataOffset,
    /// An option length field was zero, too small, or overran the header.
    BadOptionLength,
    /// Encoding was asked to fit more than 40 bytes of options.
    OptionsTooLong,
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated => write!(f, "segment truncated"),
            WireError::BadDataOffset => write!(f, "bad data offset"),
            WireError::BadOptionLength => write!(f, "bad option length"),
            WireError::OptionsTooLong => write!(f, "options exceed 40 bytes"),
        }
    }
}

impl std::error::Error for WireError {}

impl TcpSegment {
    /// Total bytes this segment occupies (header + options + payload).
    pub fn wire_len(&self) -> usize {
        TCP_HEADER_LEN + options_padded_len(&self.hdr.options) + self.payload.len()
    }

    /// First MPTCP option payload, if any.
    pub fn mptcp_opt(&self) -> Option<&OptBytes> {
        self.mptcp_opts().next()
    }

    /// All MPTCP option payloads, in wire order (a segment may carry e.g.
    /// a DSS and an ADD_ADDR together).
    pub fn mptcp_opts(&self) -> impl Iterator<Item = &OptBytes> {
        self.hdr.options.iter().filter_map(|o| match o {
            TcpOption::Mptcp(b) => Some(b),
            _ => None,
        })
    }

    /// Encode to wire bytes.
    ///
    /// # Errors
    /// [`WireError::OptionsTooLong`] if the options exceed 40 bytes.
    pub fn encode(&self) -> Result<Bytes, WireError> {
        let opt_len = options_padded_len(&self.hdr.options);
        if opt_len > MAX_OPTIONS_LEN {
            return Err(WireError::OptionsTooLong);
        }
        let total = TCP_HEADER_LEN + opt_len + self.payload.len();
        let mut buf = BytesMut::with_capacity(total);
        let h = &self.hdr;
        buf.put_u16(h.src_port);
        buf.put_u16(h.dst_port);
        buf.put_u32(h.seq.0);
        buf.put_u32(h.ack.0);
        let data_offset = ((TCP_HEADER_LEN + opt_len) / 4) as u8;
        buf.put_u8(data_offset << 4);
        buf.put_u8(h.flags.to_byte());
        buf.put_u16(h.window);
        buf.put_u16(0); // checksum: not modeled (no corruption in the simulator)
        buf.put_u16(0); // urgent pointer
        let mut written = 0usize;
        for opt in &h.options {
            written += opt.wire_len();
            match opt {
                TcpOption::Mss(v) => {
                    buf.put_u8(2);
                    buf.put_u8(4);
                    buf.put_u16(*v);
                }
                TcpOption::WindowScale(s) => {
                    buf.put_u8(3);
                    buf.put_u8(3);
                    buf.put_u8(*s);
                }
                TcpOption::SackPermitted => {
                    buf.put_u8(4);
                    buf.put_u8(2);
                }
                TcpOption::Timestamps { val, ecr } => {
                    buf.put_u8(8);
                    buf.put_u8(10);
                    buf.put_u32(*val);
                    buf.put_u32(*ecr);
                }
                TcpOption::Mptcp(b) => {
                    buf.put_u8(OPT_KIND_MPTCP);
                    buf.put_u8((2 + b.len()) as u8);
                    buf.put_slice(b.as_slice());
                }
                TcpOption::Unknown { kind, data } => {
                    buf.put_u8(*kind);
                    buf.put_u8((2 + data.len()) as u8);
                    buf.put_slice(data.as_slice());
                }
            }
        }
        // Pad options with NOPs to a 4-byte boundary.
        while written % 4 != 0 {
            buf.put_u8(1);
            written += 1;
        }
        buf.put_slice(&self.payload);
        Ok(buf.freeze())
    }

    /// Decode from wire bytes.
    ///
    /// Allocation-free: the input is the reference-counted frame buffer,
    /// the returned segment's `payload` is an Arc-backed [`Bytes::slice`]
    /// of it — a 1400-byte payload is never memcpy'd between the sender's
    /// `encode` and the receiving application — and options (tens of bytes
    /// at most, by TCP's 40-byte limit) are parsed into inline
    /// fixed-capacity storage.
    pub fn decode(b: &Bytes) -> Result<TcpSegment, WireError> {
        if b.len() < TCP_HEADER_LEN {
            return Err(WireError::Truncated);
        }
        let data_offset = (b[12] >> 4) as usize * 4;
        if data_offset < TCP_HEADER_LEN || data_offset > b.len() {
            return Err(WireError::BadDataOffset);
        }
        let mut hdr = TcpHeader {
            src_port: u16::from_be_bytes([b[0], b[1]]),
            dst_port: u16::from_be_bytes([b[2], b[3]]),
            seq: SeqNum(u32::from_be_bytes([b[4], b[5], b[6], b[7]])),
            ack: SeqNum(u32::from_be_bytes([b[8], b[9], b[10], b[11]])),
            flags: TcpFlags::from_byte(b[13]),
            window: u16::from_be_bytes([b[14], b[15]]),
            options: TcpOptions::new(),
        };
        let mut i = TCP_HEADER_LEN;
        while i < data_offset {
            let kind = b[i];
            match kind {
                0 => break,  // end of options
                1 => i += 1, // NOP
                _ => {
                    if i + 1 >= data_offset {
                        return Err(WireError::BadOptionLength);
                    }
                    let len = b[i + 1] as usize;
                    if len < 2 || i + len > data_offset {
                        return Err(WireError::BadOptionLength);
                    }
                    let body = &b[i + 2..i + len];
                    let opt = match (kind, len) {
                        (2, 4) => TcpOption::Mss(u16::from_be_bytes([body[0], body[1]])),
                        (3, 3) => TcpOption::WindowScale(body[0]),
                        (4, 2) => TcpOption::SackPermitted,
                        (8, 10) => TcpOption::Timestamps {
                            val: u32::from_be_bytes([body[0], body[1], body[2], body[3]]),
                            ecr: u32::from_be_bytes([body[4], body[5], body[6], body[7]]),
                        },
                        (OPT_KIND_MPTCP, _) => TcpOption::Mptcp(OptBytes::copy_from_slice(body)),
                        _ => TcpOption::Unknown {
                            kind,
                            data: OptBytes::copy_from_slice(body),
                        },
                    };
                    hdr.options.push(opt);
                    i += len;
                }
            }
        }
        Ok(TcpSegment {
            hdr,
            payload: b.slice(data_offset..),
        })
    }
}

/// Length of the encoded options area, padded to a 4-byte boundary.
fn options_padded_len(options: &[TcpOption]) -> usize {
    let raw: usize = options.iter().map(|o| o.wire_len()).sum();
    raw.div_ceil(4) * 4
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_header() -> TcpHeader {
        TcpHeader {
            src_port: 43210,
            dst_port: 80,
            seq: SeqNum(0xDEAD_BEEF),
            ack: SeqNum(0x0102_0304),
            flags: TcpFlags::SYN_ACK,
            window: 65_535,
            options: TcpOptions::from([
                TcpOption::Mss(1400),
                TcpOption::WindowScale(7),
                TcpOption::Mptcp(OptBytes::from(&[0x00, 0x81, 1, 2, 3, 4, 5, 6, 7, 8])),
            ]),
        }
    }

    #[test]
    fn roundtrip_with_options_and_payload() {
        let seg = TcpSegment {
            hdr: sample_header(),
            payload: Bytes::from_static(b"hello world"),
        };
        let wire = seg.encode().unwrap();
        let back = TcpSegment::decode(&wire).unwrap();
        assert_eq!(back, seg);
        assert_eq!(wire.len(), seg.wire_len());
    }

    #[test]
    fn roundtrip_no_options() {
        let seg = TcpSegment {
            hdr: TcpHeader {
                src_port: 1,
                dst_port: 2,
                flags: TcpFlags::ACK,
                ..Default::default()
            },
            payload: Bytes::from_static(&[9; 100]),
        };
        let wire = seg.encode().unwrap();
        assert_eq!(wire.len(), 120);
        assert_eq!(TcpSegment::decode(&wire).unwrap(), seg);
    }

    #[test]
    fn flags_roundtrip() {
        for b in 0..32u8 {
            let f = TcpFlags::from_byte(b);
            assert_eq!(f.to_byte(), b & 0x1F);
        }
    }

    #[test]
    fn ports_lead_the_wire_format() {
        // The simulator peeks ports from the first 4 payload bytes of a
        // packet; guarantee the layout.
        let seg = TcpSegment {
            hdr: TcpHeader {
                src_port: 0x1234,
                dst_port: 0x5678,
                ..Default::default()
            },
            payload: Bytes::new(),
        };
        let wire = seg.encode().unwrap();
        assert_eq!(&wire[..4], &[0x12, 0x34, 0x56, 0x78]);
    }

    #[test]
    fn decode_rejects_truncated() {
        assert_eq!(
            TcpSegment::decode(&Bytes::from(vec![0u8; 10])),
            Err(WireError::Truncated)
        );
    }

    #[test]
    fn decode_rejects_bad_offset() {
        let mut wire = vec![0u8; 20];
        wire[12] = 4 << 4; // data offset 16 < 20
        assert_eq!(
            TcpSegment::decode(&Bytes::from(wire)),
            Err(WireError::BadDataOffset)
        );
        let mut wire = vec![0u8; 20];
        wire[12] = 15 << 4; // data offset 60 > buffer
        assert_eq!(
            TcpSegment::decode(&Bytes::from(wire)),
            Err(WireError::BadDataOffset)
        );
    }

    #[test]
    fn decode_rejects_bad_option_len() {
        let seg = TcpSegment {
            hdr: TcpHeader {
                options: TcpOptions::from([TcpOption::Mss(1400)]),
                ..Default::default()
            },
            payload: Bytes::new(),
        };
        let mut wire = Vec::from(&seg.encode().unwrap()[..]);
        wire[21] = 0; // MSS option length = 0
        assert_eq!(
            TcpSegment::decode(&Bytes::from(wire.clone())),
            Err(WireError::BadOptionLength)
        );
        wire[21] = 40; // overruns header
        assert_eq!(
            TcpSegment::decode(&Bytes::from(wire)),
            Err(WireError::BadOptionLength)
        );
    }

    #[test]
    fn decode_payload_aliases_the_frame_allocation() {
        // Zero-copy receive path: the decoded payload must point *into*
        // the frame's backing allocation, not to a fresh copy. (Option
        // bodies are parsed into inline fixed-size storage instead — 38
        // bytes at most — so the decode path performs no allocation at
        // all.)
        let seg = TcpSegment {
            hdr: sample_header(),
            payload: Bytes::from(vec![0xAB; 1400]),
        };
        let wire = seg.encode().unwrap();
        let frame = wire.as_ptr() as usize;
        let frame_end = frame + wire.len();
        let back = TcpSegment::decode(&wire).unwrap();

        let p = back.payload.as_ptr() as usize;
        assert!(
            p >= frame && p + back.payload.len() <= frame_end,
            "payload must alias the received frame's allocation"
        );
        // The payload sits right where encode wrote it.
        assert_eq!(p - frame, wire.len() - back.payload.len());

        // Option bodies still round-trip byte-for-byte.
        let opt = back.mptcp_opt().unwrap();
        assert_eq!(opt.as_slice(), &[0x00, 0x81, 1, 2, 3, 4, 5, 6, 7, 8]);
    }

    #[test]
    fn encode_rejects_oversized_options() {
        // No single option body can exceed 38 bytes (that is a
        // construction panic, not a wire error), but several legal options
        // together can still blow the 40-byte area.
        let big = TcpOption::Unknown {
            kind: 99,
            data: OptBytes::from(&[0u8; 20]),
        };
        let seg = TcpSegment {
            hdr: TcpHeader {
                options: TcpOptions::from([big, big]),
                ..Default::default()
            },
            payload: Bytes::new(),
        };
        assert_eq!(seg.encode(), Err(WireError::OptionsTooLong));
    }

    #[test]
    #[should_panic(expected = "option body exceeds 38 bytes")]
    fn oversized_option_body_panics_at_construction() {
        let _ = OptBytes::copy_from_slice(&[0u8; 39]);
    }

    #[test]
    fn unknown_options_roundtrip() {
        let seg = TcpSegment {
            hdr: TcpHeader {
                options: TcpOptions::from([TcpOption::Unknown {
                    kind: 254,
                    data: OptBytes::from(&[1, 2, 3]),
                }]),
                ..Default::default()
            },
            payload: Bytes::new(),
        };
        let wire = seg.encode().unwrap();
        assert_eq!(TcpSegment::decode(&wire).unwrap(), seg);
    }

    #[test]
    fn mptcp_opt_accessor() {
        let seg = TcpSegment {
            hdr: sample_header(),
            payload: Bytes::new(),
        };
        assert!(seg.mptcp_opt().is_some());
        let none = TcpSegment::default();
        assert!(none.mptcp_opt().is_none());
    }

    #[test]
    fn nop_padding_parses() {
        // WindowScale alone (3 bytes) forces one NOP of padding.
        let seg = TcpSegment {
            hdr: TcpHeader {
                options: TcpOptions::from([TcpOption::WindowScale(2)]),
                ..Default::default()
            },
            payload: Bytes::from_static(b"x"),
        };
        let wire = seg.encode().unwrap();
        assert_eq!(wire.len(), 20 + 4 + 1);
        let back = TcpSegment::decode(&wire).unwrap();
        assert_eq!(back.hdr.options, seg.hdr.options);
        assert_eq!(back.payload, seg.payload);
    }
}

#[cfg(test)]
mod prop {
    use super::*;
    use proptest::prelude::*;

    fn arb_option() -> impl Strategy<Value = TcpOption> {
        prop_oneof![
            any::<u16>().prop_map(TcpOption::Mss),
            (0u8..15).prop_map(TcpOption::WindowScale),
            Just(TcpOption::SackPermitted),
            (any::<u32>(), any::<u32>()).prop_map(|(val, ecr)| TcpOption::Timestamps { val, ecr }),
            proptest::collection::vec(any::<u8>(), 0..18)
                .prop_map(|v| TcpOption::Mptcp(OptBytes::from(&v[..]))),
            (5u8..=253, proptest::collection::vec(any::<u8>(), 0..10))
                .prop_filter("kinds with dedicated decodings", |(kind, data)| {
                    *kind != OPT_KIND_MPTCP && !(*kind == 8 && data.len() == 8)
                })
                .prop_map(|(kind, data)| TcpOption::Unknown {
                    kind,
                    data: OptBytes::from(&data[..]),
                }),
        ]
    }

    fn arb_segment() -> impl Strategy<Value = TcpSegment> {
        (
            any::<u16>(),
            any::<u16>(),
            any::<u32>(),
            any::<u32>(),
            any::<u8>(),
            any::<u16>(),
            proptest::collection::vec(arb_option(), 0..3),
            proptest::collection::vec(any::<u8>(), 0..200),
        )
            .prop_map(
                |(sp, dp, seq, ack, flags, window, options, payload)| TcpSegment {
                    hdr: TcpHeader {
                        src_port: sp,
                        dst_port: dp,
                        seq: SeqNum(seq),
                        ack: SeqNum(ack),
                        flags: TcpFlags::from_byte(flags),
                        window,
                        options: TcpOptions::from(&options[..]),
                    },
                    payload: Bytes::from(payload),
                },
            )
    }

    /// The original decoder, kept as a reference model: identical parsing
    /// logic, but the payload is copied out into its own allocation and
    /// options are accumulated through a plain `Vec` before conversion.
    fn copying_decode(b: &[u8]) -> Result<TcpSegment, WireError> {
        if b.len() < TCP_HEADER_LEN {
            return Err(WireError::Truncated);
        }
        let data_offset = (b[12] >> 4) as usize * 4;
        if data_offset < TCP_HEADER_LEN || data_offset > b.len() {
            return Err(WireError::BadDataOffset);
        }
        let mut options: Vec<TcpOption> = Vec::new();
        let mut i = TCP_HEADER_LEN;
        while i < data_offset {
            let kind = b[i];
            match kind {
                0 => break,
                1 => i += 1,
                _ => {
                    if i + 1 >= data_offset {
                        return Err(WireError::BadOptionLength);
                    }
                    let len = b[i + 1] as usize;
                    if len < 2 || i + len > data_offset {
                        return Err(WireError::BadOptionLength);
                    }
                    let body = &b[i + 2..i + len];
                    let opt = match (kind, len) {
                        (2, 4) => TcpOption::Mss(u16::from_be_bytes([body[0], body[1]])),
                        (3, 3) => TcpOption::WindowScale(body[0]),
                        (4, 2) => TcpOption::SackPermitted,
                        (8, 10) => TcpOption::Timestamps {
                            val: u32::from_be_bytes([body[0], body[1], body[2], body[3]]),
                            ecr: u32::from_be_bytes([body[4], body[5], body[6], body[7]]),
                        },
                        (OPT_KIND_MPTCP, _) => TcpOption::Mptcp(OptBytes::from(body)),
                        _ => TcpOption::Unknown {
                            kind,
                            data: OptBytes::from(body),
                        },
                    };
                    options.push(opt);
                    i += len;
                }
            }
        }
        let hdr = TcpHeader {
            src_port: u16::from_be_bytes([b[0], b[1]]),
            dst_port: u16::from_be_bytes([b[2], b[3]]),
            seq: SeqNum(u32::from_be_bytes([b[4], b[5], b[6], b[7]])),
            ack: SeqNum(u32::from_be_bytes([b[8], b[9], b[10], b[11]])),
            flags: TcpFlags::from_byte(b[13]),
            window: u16::from_be_bytes([b[14], b[15]]),
            options: TcpOptions::from(&options[..]),
        };
        Ok(TcpSegment {
            hdr,
            payload: Bytes::from(b[data_offset..].to_owned()),
        })
    }

    proptest! {
        #[test]
        fn encode_decode_roundtrip(seg in arb_segment()) {
            prop_assume!(seg.hdr.options.iter().map(|o| o.wire_len()).sum::<usize>() <= 38);
            let wire = seg.encode().unwrap();
            let back = TcpSegment::decode(&wire).unwrap();
            prop_assert_eq!(back, seg);
        }

        #[test]
        fn decode_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..120)) {
            let _ = TcpSegment::decode(&Bytes::from(bytes));
        }

        /// Zero-copy decode agrees byte-for-byte with the old copying
        /// decoder — on valid encodings *and* on arbitrary byte soup
        /// (including which error is returned).
        #[test]
        fn zero_copy_decode_matches_copying_decode(
            seg in arb_segment(),
            soup in proptest::collection::vec(any::<u8>(), 0..120),
        ) {
            if seg.hdr.options.iter().map(|o| o.wire_len()).sum::<usize>() <= 38 {
                let wire = seg.encode().unwrap();
                prop_assert_eq!(TcpSegment::decode(&wire), copying_decode(&wire));
            }
            let soup = Bytes::from(soup);
            prop_assert_eq!(TcpSegment::decode(&soup), copying_decode(&soup));
        }
    }
}
