//! # smapp-tcp — TCP protocol mechanics
//!
//! Building blocks for the TCP engine underneath the SMAPP Multipath TCP
//! stack. This crate deliberately contains *mechanisms*, not a socket: the
//! state machine that composes them into subflows lives in `smapp-mptcp`
//! (a Multipath TCP subflow **is** a TCP connection; a plain TCP connection
//! is an MPTCP connection that never grew a second subflow).
//!
//! Modules:
//!
//! * [`seq`] — 32-bit wrapping sequence arithmetic and 64-bit unwrapping.
//! * [`wire`] — byte-exact TCP header/option codec (MPTCP options are
//!   carried opaquely as option kind 30 and decoded by `smapp-mptcp`).
//! * [`rtt`] — RFC 6298 smoothed RTT estimation.
//! * [`rto`] — retransmission-timeout policy: clamping, exponential
//!   backoff, and the Linux-style give-up after 15 doublings that drives
//!   the paper's §4.2 narrative.
//! * [`cc`] — congestion control: NewReno and the coupled LIA of RFC 6356.
//! * [`buffer`] — send buffer and out-of-order reassembly.
//! * [`flight`] — in-flight segment tracking, Karn's algorithm, cumulative
//!   ACK processing.
//! * [`pacing`] — Linux-style `sk_pacing_rate`, the signal polled by the
//!   paper's §4.4 refresh controller.
//! * [`info`] — the `TCP_INFO`-equivalent snapshot exposed to subflow
//!   controllers.

#![warn(missing_docs)]

pub mod buffer;
pub mod cc;
pub mod check;
pub mod flight;
pub mod info;
pub mod pacing;
pub mod rto;
pub mod rtt;
pub mod seq;
pub mod wire;

pub use buffer::{Reassembly, SendBuffer};
pub use cc::{lia_alpha, CongestionControl, Lia, Reno, ALPHA_SCALE};
pub use check::StreamTap;
pub use flight::{AckResult, Flight, SentSeg};
pub use info::{TcpInfo, TcpStateInfo};
pub use pacing::pacing_rate;
pub use rto::{RtoPolicy, RtoState};
pub use rtt::RttEstimator;
pub use seq::{unwrap_u32, SeqNum};
pub use wire::{
    OptBytes, TcpFlags, TcpHeader, TcpOption, TcpOptions, TcpSegment, WireError, OPT_KIND_MPTCP,
};
