//! Congestion control.
//!
//! Two controllers are provided: classic NewReno ([`Reno`]) used for plain
//! TCP subflows, and the coupled Linked-Increases Algorithm of RFC 6356
//! ([`Lia`]) — the default congestion controller of the Linux MPTCP kernel
//! the paper builds on. LIA couples only the *increase*: in congestion
//! avoidance a subflow grows by one MSS every
//! `max(ALPHA_SCALE·cwnd_total/alpha, cwnd_i)` acknowledged segments, the
//! integer formulation used by the Linux implementation. `alpha` is
//! recomputed by the MPTCP layer across all subflows of a connection
//! ([`lia_alpha`]) and pushed down via [`CongestionControl::set_coupling`].
//!
//! All window state is byte-based, like Linux; congestion-avoidance
//! counting happens in MSS-sized segments.

use std::fmt::Debug;

/// Fixed-point scale for the LIA `alpha` parameter (Linux uses 2^10).
pub const ALPHA_SCALE: u64 = 1024;

/// Behaviour shared by all congestion controllers.
pub trait CongestionControl: Debug {
    /// Current congestion window in bytes.
    fn cwnd(&self) -> u64;
    /// Current slow-start threshold in bytes.
    fn ssthresh(&self) -> u64;
    /// True while `cwnd < ssthresh`.
    fn in_slow_start(&self) -> bool {
        self.cwnd() < self.ssthresh()
    }
    /// `newly_acked` bytes were cumulatively acknowledged.
    fn on_ack(&mut self, newly_acked: u64);
    /// A retransmission timeout fired: collapse the window.
    fn on_retransmit_timeout(&mut self, flight: u64);
    /// Entering fast recovery (triple duplicate ACK) with `flight` bytes
    /// outstanding.
    fn on_enter_recovery(&mut self, flight: u64);
    /// Fast recovery completed (recovery point acknowledged).
    fn on_exit_recovery(&mut self);
    /// Delay-based slow-start exit (HyStart-style): the RTT has risen
    /// enough that the pipe is full — stop doubling now.
    fn hystart_exit(&mut self);
    /// MPTCP coupling hook: the connection-wide `alpha` (scaled by
    /// [`ALPHA_SCALE`]) and the total cwnd across subflows in bytes.
    /// No-op for uncoupled controllers.
    fn set_coupling(&mut self, alpha_scaled: u64, total_cwnd: u64) {
        let _ = (alpha_scaled, total_cwnd);
    }
    /// Short name for reporting ("reno", "lia").
    fn name(&self) -> &'static str;
}

/// Window bookkeeping shared by both controllers.
#[derive(Debug, Clone)]
struct Core {
    mss: u64,
    cwnd: u64,
    ssthresh: u64,
    /// Segments acknowledged since the last CA window increase.
    cnt: u64,
    /// Sub-MSS remainder of acknowledged bytes.
    carry: u64,
}

impl Core {
    fn new(mss: u64) -> Self {
        assert!(mss > 0, "mss must be positive");
        Core {
            mss,
            // Linux initial window: 10 segments (RFC 6928).
            cwnd: 10 * mss,
            ssthresh: u64::MAX / 2,
            cnt: 0,
            carry: 0,
        }
    }

    /// Convert acknowledged bytes into whole segments, carrying remainders.
    fn acked_segs(&mut self, acked: u64) -> u64 {
        self.carry += acked;
        let segs = self.carry / self.mss;
        self.carry %= self.mss;
        segs
    }

    fn cwnd_segs(&self) -> u64 {
        (self.cwnd / self.mss).max(1)
    }

    fn halve(&mut self, flight: u64) {
        self.ssthresh = (flight / 2).max(2 * self.mss);
    }

    fn reset_counters(&mut self) {
        self.cnt = 0;
        self.carry = 0;
    }
}

/// NewReno congestion control.
#[derive(Debug, Clone)]
pub struct Reno {
    core: Core,
}

impl Reno {
    /// New controller for the given MSS.
    pub fn new(mss: u64) -> Self {
        Reno {
            core: Core::new(mss),
        }
    }
}

impl CongestionControl for Reno {
    fn cwnd(&self) -> u64 {
        self.core.cwnd
    }
    fn ssthresh(&self) -> u64 {
        self.core.ssthresh
    }
    fn on_ack(&mut self, newly_acked: u64) {
        if self.in_slow_start() {
            self.core.cwnd += newly_acked;
            return;
        }
        let segs = self.core.acked_segs(newly_acked);
        for _ in 0..segs {
            self.core.cnt += 1;
            if self.core.cnt >= self.core.cwnd_segs() {
                self.core.cwnd += self.core.mss;
                self.core.cnt = 0;
            }
        }
    }
    fn on_retransmit_timeout(&mut self, flight: u64) {
        self.core.halve(flight);
        self.core.cwnd = self.core.mss;
        self.core.reset_counters();
    }
    fn on_enter_recovery(&mut self, flight: u64) {
        self.core.halve(flight);
        self.core.cwnd = self.core.ssthresh;
        self.core.reset_counters();
    }
    fn on_exit_recovery(&mut self) {}
    fn hystart_exit(&mut self) {
        self.core.ssthresh = self.core.ssthresh.min(self.core.cwnd);
    }
    fn name(&self) -> &'static str {
        "reno"
    }
}

/// Coupled Linked-Increases Algorithm (RFC 6356), Linux integer form.
#[derive(Debug, Clone)]
pub struct Lia {
    core: Core,
    /// Connection-wide alpha, scaled by [`ALPHA_SCALE`]. Defaults to the
    /// single-flow value so an uncoupled `Lia` behaves like Reno.
    alpha_scaled: u64,
    /// Total cwnd across all subflows, bytes.
    total_cwnd: u64,
}

impl Lia {
    /// New controller for the given MSS.
    pub fn new(mss: u64) -> Self {
        Lia {
            core: Core::new(mss),
            alpha_scaled: ALPHA_SCALE,
            total_cwnd: 0,
        }
    }
}

impl CongestionControl for Lia {
    fn cwnd(&self) -> u64 {
        self.core.cwnd
    }
    fn ssthresh(&self) -> u64 {
        self.core.ssthresh
    }
    fn on_ack(&mut self, newly_acked: u64) {
        if self.in_slow_start() {
            // RFC 6356 couples only congestion avoidance.
            self.core.cwnd += newly_acked;
            return;
        }
        let segs = self.core.acked_segs(newly_acked);
        let total_segs = (self.total_cwnd.max(self.core.cwnd) / self.core.mss).max(1);
        // One MSS of growth every max(coupled, cwnd) acked segments:
        //   coupled = ALPHA_SCALE * total_cwnd / alpha
        let coupled = ALPHA_SCALE * total_segs / self.alpha_scaled.max(1);
        let thresh = coupled.max(self.core.cwnd_segs());
        for _ in 0..segs {
            self.core.cnt += 1;
            if self.core.cnt >= thresh {
                self.core.cwnd += self.core.mss;
                self.core.cnt = 0;
            }
        }
    }
    fn on_retransmit_timeout(&mut self, flight: u64) {
        self.core.halve(flight);
        self.core.cwnd = self.core.mss;
        self.core.reset_counters();
    }
    fn on_enter_recovery(&mut self, flight: u64) {
        self.core.halve(flight);
        self.core.cwnd = self.core.ssthresh;
        self.core.reset_counters();
    }
    fn on_exit_recovery(&mut self) {}
    fn hystart_exit(&mut self) {
        self.core.ssthresh = self.core.ssthresh.min(self.core.cwnd);
    }
    fn set_coupling(&mut self, alpha_scaled: u64, total_cwnd: u64) {
        self.alpha_scaled = alpha_scaled.max(1);
        self.total_cwnd = total_cwnd;
    }
    fn name(&self) -> &'static str {
        "lia"
    }
}

/// Compute the RFC 6356 `alpha` (scaled by [`ALPHA_SCALE`]) from per-subflow
/// `(cwnd_bytes, rtt_us)` pairs:
///
/// ```text
/// alpha = cwnd_total * max_i(cwnd_i / rtt_i^2) / (sum_i cwnd_i / rtt_i)^2
/// ```
///
/// Subflows with no RTT estimate yet should be passed with a conservative
/// RTT guess rather than omitted.
pub fn lia_alpha(subflows: &[(u64, u64)]) -> u64 {
    if subflows.is_empty() {
        return ALPHA_SCALE;
    }
    let total: f64 = subflows.iter().map(|(c, _)| *c as f64).sum();
    let max_term = subflows
        .iter()
        .map(|&(c, rtt)| c as f64 / ((rtt.max(1) as f64) * (rtt.max(1) as f64)))
        .fold(0.0f64, f64::max);
    let sum_term: f64 = subflows
        .iter()
        .map(|&(c, rtt)| c as f64 / rtt.max(1) as f64)
        .sum();
    if sum_term <= 0.0 || total <= 0.0 {
        return ALPHA_SCALE;
    }
    let alpha = total * max_term / (sum_term * sum_term);
    (alpha * ALPHA_SCALE as f64).clamp(1.0, 1e18) as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    const MSS: u64 = 1400;

    fn in_ca<C: CongestionControl>(cc: &mut C) {
        // Drop out of slow start with a 20*MSS flight: ssthresh = cwnd = 10*MSS.
        cc.on_enter_recovery(20 * MSS);
        cc.on_exit_recovery();
        assert!(!cc.in_slow_start());
    }

    #[test]
    fn reno_initial_window_is_ten_segments() {
        let r = Reno::new(MSS);
        assert_eq!(r.cwnd(), 10 * MSS);
        assert!(r.in_slow_start());
    }

    #[test]
    fn reno_slow_start_doubles_per_rtt() {
        let mut r = Reno::new(MSS);
        let start = r.cwnd();
        r.on_ack(start);
        assert_eq!(r.cwnd(), 2 * start);
    }

    #[test]
    fn reno_ca_adds_one_mss_per_window() {
        let mut r = Reno::new(MSS);
        in_ca(&mut r);
        let before = r.cwnd();
        for _ in 0..10 {
            r.on_ack(MSS);
        }
        assert_eq!(r.cwnd(), before + MSS);
    }

    #[test]
    fn reno_ca_carries_partial_acks() {
        let mut r = Reno::new(MSS);
        in_ca(&mut r);
        let before = r.cwnd();
        // 20 half-MSS acks = 10 segments = one full window.
        for _ in 0..20 {
            r.on_ack(MSS / 2);
        }
        assert_eq!(r.cwnd(), before + MSS);
    }

    #[test]
    fn reno_rto_collapses_to_one_mss() {
        let mut r = Reno::new(MSS);
        r.on_retransmit_timeout(10 * MSS);
        assert_eq!(r.cwnd(), MSS);
        assert_eq!(r.ssthresh(), 5 * MSS);
        assert!(r.in_slow_start());
    }

    #[test]
    fn reno_recovery_halves() {
        let mut r = Reno::new(MSS);
        r.on_enter_recovery(10 * MSS);
        assert_eq!(r.cwnd(), 5 * MSS);
        assert_eq!(r.ssthresh(), 5 * MSS);
    }

    #[test]
    fn ssthresh_floor_two_mss() {
        let mut r = Reno::new(MSS);
        r.on_enter_recovery(MSS);
        assert_eq!(r.ssthresh(), 2 * MSS);
    }

    #[test]
    fn lia_slow_start_uncoupled() {
        let mut l = Lia::new(MSS);
        let start = l.cwnd();
        l.on_ack(start);
        assert_eq!(l.cwnd(), 2 * start);
    }

    #[test]
    fn lia_default_coupling_matches_reno() {
        let mut l = Lia::new(MSS);
        let mut r = Reno::new(MSS);
        in_ca(&mut l);
        in_ca(&mut r);
        l.set_coupling(ALPHA_SCALE, l.cwnd());
        for _ in 0..200 {
            l.on_ack(MSS);
            r.on_ack(MSS);
        }
        assert_eq!(l.cwnd(), r.cwnd());
    }

    #[test]
    fn lia_coupled_increase_never_exceeds_reno() {
        // Huge alpha -> coupled threshold tiny -> bounded by cwnd (Reno).
        let mut l = Lia::new(MSS);
        let mut r = Reno::new(MSS);
        in_ca(&mut l);
        in_ca(&mut r);
        l.set_coupling(1000 * ALPHA_SCALE, l.cwnd());
        for _ in 0..200 {
            l.on_ack(MSS);
            r.on_ack(MSS);
        }
        assert!(l.cwnd() <= r.cwnd(), "lia must not outgrow reno");
    }

    #[test]
    fn lia_small_alpha_grows_slower() {
        let grow = |alpha: u64| {
            let mut l = Lia::new(MSS);
            in_ca(&mut l);
            let total = 2 * l.cwnd();
            l.set_coupling(alpha, total);
            for _ in 0..2000 {
                l.on_ack(MSS);
            }
            l.cwnd()
        };
        assert!(grow(ALPHA_SCALE / 4) < grow(ALPHA_SCALE * 4));
    }

    #[test]
    fn alpha_single_flow_is_one() {
        let a = lia_alpha(&[(100_000, 50_000)]);
        let ratio = a as f64 / ALPHA_SCALE as f64;
        assert!((0.99..1.01).contains(&ratio), "alpha={ratio}");
    }

    #[test]
    fn alpha_two_equal_flows_is_half() {
        let a = lia_alpha(&[(100_000, 50_000), (100_000, 50_000)]);
        let ratio = a as f64 / ALPHA_SCALE as f64;
        assert!((0.49..0.51).contains(&ratio), "alpha={ratio}");
    }

    #[test]
    fn alpha_favors_short_rtt_flow() {
        // A short-RTT subflow dominates max(cwnd/rtt^2); alpha reflects
        // the aggressiveness needed to match a single TCP on the best path.
        let short = lia_alpha(&[(100_000, 10_000), (100_000, 100_000)]);
        let long = lia_alpha(&[(100_000, 100_000), (100_000, 100_000)]);
        assert!(short > long);
    }

    #[test]
    fn alpha_empty_and_degenerate() {
        assert_eq!(lia_alpha(&[]), ALPHA_SCALE);
        assert!(lia_alpha(&[(1000, 0)]) > 0);
        assert_eq!(lia_alpha(&[(0, 1000)]), ALPHA_SCALE);
    }
}
