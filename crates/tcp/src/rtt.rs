//! Round-trip-time estimation per RFC 6298.
//!
//! Maintains the smoothed RTT and RTT variance that feed the retransmission
//! timeout. Samples taken from retransmitted segments are excluded by the
//! caller (Karn's algorithm — the flight tracker knows which segments were
//! retransmitted and never offers them as samples).

use std::time::Duration;

/// Clock granularity `G` from RFC 6298; Linux uses 1 ms timers.
pub const GRANULARITY: Duration = Duration::from_millis(1);

/// Smoothed RTT state.
#[derive(Clone, Debug, Default)]
pub struct RttEstimator {
    srtt: Option<Duration>,
    rttvar: Duration,
    /// Most recent raw sample (exposed in `TcpInfo`).
    last_sample: Option<Duration>,
    /// Minimum RTT ever observed (exposed in `TcpInfo`).
    min_rtt: Option<Duration>,
    samples: u64,
}

impl RttEstimator {
    /// A fresh estimator with no samples.
    pub fn new() -> Self {
        Self::default()
    }

    /// Feed one RTT sample (from a segment that was transmitted once).
    pub fn on_sample(&mut self, r: Duration) {
        self.samples += 1;
        self.last_sample = Some(r);
        self.min_rtt = Some(self.min_rtt.map_or(r, |m| m.min(r)));
        match self.srtt {
            None => {
                // First measurement: SRTT = R, RTTVAR = R/2.
                self.srtt = Some(r);
                self.rttvar = r / 2;
            }
            Some(srtt) => {
                // RTTVAR = 3/4 RTTVAR + 1/4 |SRTT - R|
                let err = srtt.abs_diff(r);
                self.rttvar = (self.rttvar * 3 + err) / 4;
                // SRTT = 7/8 SRTT + 1/8 R
                self.srtt = Some((srtt * 7 + r) / 8);
            }
        }
    }

    /// The smoothed RTT, if at least one sample has been taken.
    pub fn srtt(&self) -> Option<Duration> {
        self.srtt
    }

    /// The RTT variance.
    pub fn rttvar(&self) -> Duration {
        self.rttvar
    }

    /// Most recent raw sample.
    pub fn last_sample(&self) -> Option<Duration> {
        self.last_sample
    }

    /// Minimum observed RTT.
    pub fn min_rtt(&self) -> Option<Duration> {
        self.min_rtt
    }

    /// Number of samples taken.
    pub fn samples(&self) -> u64 {
        self.samples
    }

    /// The base retransmission timeout: `SRTT + max(G, 4*RTTVAR)`, or
    /// `None` before the first sample (callers fall back to the initial
    /// RTO of 1 s).
    pub fn rto_base(&self) -> Option<Duration> {
        self.srtt
            .map(|srtt| srtt + GRANULARITY.max(self.rttvar * 4))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MS: fn(u64) -> Duration = Duration::from_millis;

    #[test]
    fn first_sample_initializes() {
        let mut e = RttEstimator::new();
        assert_eq!(e.srtt(), None);
        assert_eq!(e.rto_base(), None);
        e.on_sample(MS(100));
        assert_eq!(e.srtt(), Some(MS(100)));
        assert_eq!(e.rttvar(), MS(50));
        // RTO = 100 + 4*50 = 300 ms
        assert_eq!(e.rto_base(), Some(MS(300)));
    }

    #[test]
    fn steady_samples_converge() {
        let mut e = RttEstimator::new();
        for _ in 0..50 {
            e.on_sample(MS(80));
        }
        let srtt = e.srtt().unwrap();
        assert_eq!(srtt, MS(80));
        // Variance decays toward zero; RTO approaches SRTT + G.
        assert!(e.rttvar() < MS(2), "rttvar={:?}", e.rttvar());
    }

    #[test]
    fn spike_raises_variance_and_rto() {
        let mut e = RttEstimator::new();
        for _ in 0..20 {
            e.on_sample(MS(50));
        }
        let rto_before = e.rto_base().unwrap();
        e.on_sample(MS(500));
        let rto_after = e.rto_base().unwrap();
        assert!(rto_after > rto_before);
        assert!(rto_after > MS(400), "rto_after={rto_after:?}");
    }

    #[test]
    fn min_and_last_tracked() {
        let mut e = RttEstimator::new();
        e.on_sample(MS(90));
        e.on_sample(MS(30));
        e.on_sample(MS(60));
        assert_eq!(e.min_rtt(), Some(MS(30)));
        assert_eq!(e.last_sample(), Some(MS(60)));
        assert_eq!(e.samples(), 3);
    }

    #[test]
    fn rfc6298_worked_example() {
        // Hand-computed EWMA check.
        let mut e = RttEstimator::new();
        e.on_sample(MS(100)); // srtt=100, var=50
        e.on_sample(MS(200));
        // var = 3/4*50 + 1/4*|100-200| = 37.5+25 = 62.5
        // srtt = 7/8*100 + 1/8*200 = 112.5
        assert_eq!(e.rttvar(), Duration::from_micros(62_500));
        assert_eq!(e.srtt(), Some(Duration::from_micros(112_500)));
    }
}
