//! Pacing-rate computation, Linux style.
//!
//! Linux computes `sk_pacing_rate ≈ factor * cwnd * mss / srtt` with a
//! factor of 2 during slow start (to fill the pipe quickly) and 1.2 in
//! congestion avoidance. The SMAPP §4.4 "refresh" controller polls exactly
//! this value every 2.5 s to find the slowest of its subflows, so the
//! semantics here matter: the rate reflects what the flow *could* push,
//! which converges to the fair share of its current path.

use std::time::Duration;

/// Pacing factor applied during slow start (Linux: 200%).
pub const SS_FACTOR_PCT: u64 = 200;
/// Pacing factor applied in congestion avoidance (Linux: 120%).
pub const CA_FACTOR_PCT: u64 = 120;

/// Compute the pacing rate in bytes per second.
///
/// Returns `None` when no RTT estimate exists yet (Linux reports the
/// initial rate based on the default RTT; we expose the absence and let
/// `TcpInfo` report 0 — a subflow that has never measured an RTT has never
/// carried traffic, which the refresh controller treats as slowest).
pub fn pacing_rate(cwnd_bytes: u64, srtt: Option<Duration>, in_slow_start: bool) -> Option<u64> {
    let srtt = srtt?;
    let srtt_ns = srtt.as_nanos().max(1) as u64;
    let factor = if in_slow_start {
        SS_FACTOR_PCT
    } else {
        CA_FACTOR_PCT
    };
    // rate = factor% * cwnd / srtt  (bytes per second)
    Some(
        (cwnd_bytes as u128 * factor as u128 * 1_000_000_000u128 / (100u128 * srtt_ns as u128))
            as u64,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_without_rtt() {
        assert_eq!(pacing_rate(14_000, None, true), None);
    }

    #[test]
    fn ca_rate_is_cwnd_over_rtt_times_1_2() {
        // cwnd 100 KB, srtt 100 ms -> base rate 1 MB/s -> *1.2.
        let r = pacing_rate(100_000, Some(Duration::from_millis(100)), false).unwrap();
        assert_eq!(r, 1_200_000);
    }

    #[test]
    fn ss_rate_doubles() {
        let r = pacing_rate(100_000, Some(Duration::from_millis(100)), true).unwrap();
        assert_eq!(r, 2_000_000);
    }

    #[test]
    fn faster_path_higher_rate() {
        let slow = pacing_rate(50_000, Some(Duration::from_millis(80)), false).unwrap();
        let fast = pacing_rate(50_000, Some(Duration::from_millis(20)), false).unwrap();
        assert!(fast > slow);
        assert_eq!(fast, slow * 4);
    }

    #[test]
    fn tiny_rtt_does_not_div_zero() {
        let r = pacing_rate(1500, Some(Duration::ZERO), false);
        assert!(r.is_some());
    }
}
