//! End-host stream taps for the protocol-invariant oracle.
//!
//! A [`StreamTap`] observes one direction of a byte stream *above* the
//! (meta-)socket: the sender feeds it every byte accepted from the
//! application, the receiver every byte delivered to the application, both
//! in stream order. Comparing the two taps afterwards checks the core
//! reliable-transport invariant — the delivered bytes are exactly a prefix
//! of the sent bytes, with no loss, duplication, reordering or corruption
//! visible to the application.
//!
//! Because a transfer may still be in flight when a run ends, the tap also
//! records a digest *snapshot* at every [`SNAP_EVERY`]-byte boundary.
//! Two taps can then be compared over their common snapshot prefix even
//! when their byte counts differ — an incomplete transfer still gets its
//! delivered prefix checked in 64 KiB steps.

/// Snapshot interval in bytes (64 KiB): bounded memory (a 100 MB transfer
/// keeps ~1600 snapshots) while catching corruption early in the stream.
pub const SNAP_EVERY: u64 = 64 * 1024;

/// An order-sensitive rolling digest over one direction of a byte stream.
#[derive(Clone, Debug)]
pub struct StreamTap {
    /// Bytes observed so far.
    pub count: u64,
    /// FNV-1a over every byte observed, in order.
    pub fnv: u64,
    /// Digest value at each [`SNAP_EVERY`]-byte boundary, in order.
    pub snaps: Vec<u64>,
}

impl Default for StreamTap {
    fn default() -> Self {
        StreamTap {
            count: 0,
            fnv: 0xcbf2_9ce4_8422_2325,
            snaps: Vec::new(),
        }
    }
}

impl StreamTap {
    /// A fresh tap.
    pub fn new() -> Self {
        Self::default()
    }

    /// Feed the next in-order chunk of the stream.
    pub fn update(&mut self, mut data: &[u8]) {
        while !data.is_empty() {
            let until_snap = (SNAP_EVERY - (self.count % SNAP_EVERY)) as usize;
            let take = until_snap.min(data.len());
            for &b in &data[..take] {
                self.fnv ^= b as u64;
                self.fnv = self.fnv.wrapping_mul(0x0000_0100_0000_01b3);
            }
            self.count += take as u64;
            if self.count % SNAP_EVERY == 0 {
                self.snaps.push(self.fnv);
            }
            data = &data[take..];
        }
    }

    /// Compare a sender tap (`self`) against a receiver tap, returning a
    /// human-readable description of the first divergence, or `None` when
    /// the receiver's stream is a consistent prefix of the sender's.
    pub fn check_against_receiver(&self, rx: &StreamTap) -> Option<String> {
        if rx.count > self.count {
            return Some(format!(
                "receiver delivered {} bytes but sender only wrote {} (duplication)",
                rx.count, self.count
            ));
        }
        let common = self.snaps.len().min(rx.snaps.len());
        for i in 0..common {
            if self.snaps[i] != rx.snaps[i] {
                return Some(format!(
                    "stream digest diverges within bytes [{}, {}): sent {:016x} != received {:016x}",
                    i as u64 * SNAP_EVERY,
                    (i + 1) as u64 * SNAP_EVERY,
                    self.snaps[i],
                    rx.snaps[i]
                ));
            }
        }
        if rx.count == self.count && rx.fnv != self.fnv {
            return Some(format!(
                "full-stream digest mismatch over {} bytes: sent {:016x} != received {:016x}",
                self.count, self.fnv, rx.fnv
            ));
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_streams_agree() {
        let mut a = StreamTap::new();
        let mut b = StreamTap::new();
        let data: Vec<u8> = (0..200_000u32).map(|i| (i * 31 + 7) as u8).collect();
        a.update(&data);
        // Receiver sees the same bytes in different chunk sizes.
        for chunk in data.chunks(777) {
            b.update(chunk);
        }
        assert_eq!(a.count, b.count);
        assert_eq!(a.fnv, b.fnv);
        assert_eq!(a.snaps, b.snaps);
        assert_eq!(a.snaps.len(), (200_000 / SNAP_EVERY) as usize);
        assert!(a.check_against_receiver(&b).is_none());
    }

    #[test]
    fn prefix_receiver_is_consistent() {
        let mut tx = StreamTap::new();
        let mut rx = StreamTap::new();
        let data: Vec<u8> = (0..300_000u32).map(|i| i as u8).collect();
        tx.update(&data);
        rx.update(&data[..150_000]);
        assert!(tx.check_against_receiver(&rx).is_none());
    }

    #[test]
    fn corruption_in_early_prefix_is_caught_despite_incomplete_transfer() {
        let mut tx = StreamTap::new();
        let mut rx = StreamTap::new();
        let data: Vec<u8> = (0..300_000u32).map(|i| i as u8).collect();
        tx.update(&data);
        let mut bad = data[..150_000].to_vec();
        bad[10] ^= 0xFF;
        rx.update(&bad);
        let err = tx.check_against_receiver(&rx).expect("diverges");
        assert!(err.contains("diverges within bytes [0"), "{err}");
    }

    #[test]
    fn over_delivery_is_caught() {
        let mut tx = StreamTap::new();
        let mut rx = StreamTap::new();
        tx.update(&[1, 2, 3]);
        rx.update(&[1, 2, 3, 3]);
        let err = tx.check_against_receiver(&rx).expect("duplication");
        assert!(err.contains("duplication"), "{err}");
    }

    #[test]
    fn same_count_different_bytes_is_caught() {
        let mut tx = StreamTap::new();
        let mut rx = StreamTap::new();
        tx.update(b"abcd");
        rx.update(b"abcx");
        assert!(tx.check_against_receiver(&rx).is_some());
    }
}
