//! Retransmission-timeout policy and exponential backoff.
//!
//! The SMAPP paper leans heavily on Linux RTO behaviour: §4.2 observes that
//! a lossy-but-alive path takes "15 doublings" of the retransmission timer
//! (about 12 minutes) before the kernel finally kills the subflow, and the
//! smart-backup controller's whole point is to watch `timeout` events and
//! act long before that. This module reproduces those dynamics:
//!
//! * base RTO from the RTT estimator, clamped to `[min_rto, max_rto]`
//!   (Linux: 200 ms / 120 s);
//! * initial RTO of 1 s before any RTT sample (RFC 6298 §2.1);
//! * doubling on each expiry, capped at `max_rto`;
//! * give-up after `max_retries` consecutive expiries (Linux
//!   `tcp_retries2` ≈ 15), after which the subflow is aborted with
//!   `ETIMEDOUT`.

use std::time::Duration;

use crate::rtt::RttEstimator;

/// Tunable RTO policy. Defaults mirror Linux.
#[derive(Clone, Debug)]
pub struct RtoPolicy {
    /// Lower clamp for the computed RTO (Linux `TCP_RTO_MIN` = 200 ms).
    pub min_rto: Duration,
    /// Upper clamp (Linux `TCP_RTO_MAX` = 120 s).
    pub max_rto: Duration,
    /// RTO before any RTT sample exists (RFC 6298: 1 s).
    pub initial_rto: Duration,
    /// Consecutive expiries tolerated before the connection/subflow is
    /// aborted (the paper's "15 doublings").
    pub max_retries: u32,
}

impl Default for RtoPolicy {
    fn default() -> Self {
        RtoPolicy {
            min_rto: Duration::from_millis(200),
            max_rto: Duration::from_secs(120),
            initial_rto: Duration::from_secs(1),
            max_retries: 15,
        }
    }
}

/// Per-connection (per-subflow) RTO state.
#[derive(Clone, Debug)]
pub struct RtoState {
    policy: RtoPolicy,
    /// Consecutive expiries since the last successful ACK.
    backoffs: u32,
}

impl RtoState {
    /// Fresh state under the given policy.
    pub fn new(policy: RtoPolicy) -> Self {
        RtoState {
            policy,
            backoffs: 0,
        }
    }

    /// The policy in force.
    pub fn policy(&self) -> &RtoPolicy {
        &self.policy
    }

    /// Number of consecutive backoffs so far.
    pub fn backoffs(&self) -> u32 {
        self.backoffs
    }

    /// The RTO that should be armed *now*, given the estimator state and
    /// the current backoff count: `clamp(base) << backoffs`, capped at
    /// `max_rto`.
    pub fn current_rto(&self, rtt: &RttEstimator) -> Duration {
        let base = rtt
            .rto_base()
            .unwrap_or(self.policy.initial_rto)
            .clamp(self.policy.min_rto, self.policy.max_rto);
        let factor = 1u32 << self.backoffs.min(30);
        base.saturating_mul(factor).min(self.policy.max_rto)
    }

    /// Record an expiry. Returns the new backoff count.
    pub fn on_expiry(&mut self) -> u32 {
        self.backoffs = self.backoffs.saturating_add(1);
        self.backoffs
    }

    /// An ACK of new data arrived: the network is alive, reset backoff.
    pub fn on_ack_progress(&mut self) {
        self.backoffs = 0;
    }

    /// Should the connection give up (abort with `ETIMEDOUT`)?
    pub fn exhausted(&self) -> bool {
        self.backoffs >= self.policy.max_retries
    }

    /// Total time a sender would spend from first expiry to giving up, if
    /// every retransmission is lost. Used by tests and the §4.2 baseline
    /// bench to show the ~12-minute figure from the paper.
    pub fn worst_case_give_up_time(&self, rtt: &RttEstimator) -> Duration {
        let mut total = Duration::ZERO;
        let mut probe = RtoState::new(self.policy.clone());
        for _ in 0..self.policy.max_retries {
            total += probe.current_rto(rtt);
            probe.on_expiry();
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rtt_with(ms: u64) -> RttEstimator {
        let mut e = RttEstimator::new();
        e.on_sample(Duration::from_millis(ms));
        e
    }

    #[test]
    fn initial_rto_is_one_second() {
        let s = RtoState::new(RtoPolicy::default());
        assert_eq!(s.current_rto(&RttEstimator::new()), Duration::from_secs(1));
    }

    #[test]
    fn min_clamp_applies() {
        let s = RtoState::new(RtoPolicy::default());
        // 10 ms RTT gives base 10+4*5=30 ms -> clamped to 200 ms.
        assert_eq!(s.current_rto(&rtt_with(10)), Duration::from_millis(200));
    }

    #[test]
    fn doubling_and_cap() {
        let mut s = RtoState::new(RtoPolicy::default());
        let rtt = rtt_with(10);
        let mut prev = s.current_rto(&rtt);
        assert_eq!(prev, Duration::from_millis(200));
        for _ in 0..10 {
            s.on_expiry();
            let cur = s.current_rto(&rtt);
            assert!(cur == prev * 2 || cur == Duration::from_secs(120));
            prev = cur;
        }
        // 200ms << 10 = 204.8 s -> capped at 120 s.
        assert_eq!(prev, Duration::from_secs(120));
    }

    #[test]
    fn ack_resets_backoff() {
        let mut s = RtoState::new(RtoPolicy::default());
        s.on_expiry();
        s.on_expiry();
        assert_eq!(s.backoffs(), 2);
        s.on_ack_progress();
        assert_eq!(s.backoffs(), 0);
        assert!(!s.exhausted());
    }

    #[test]
    fn exhaustion_after_max_retries() {
        let mut s = RtoState::new(RtoPolicy {
            max_retries: 3,
            ..Default::default()
        });
        assert!(!s.exhausted());
        for _ in 0..3 {
            s.on_expiry();
        }
        assert!(s.exhausted());
    }

    #[test]
    fn paper_twelve_minute_figure() {
        // With a ~20 ms RTT path (base clamped to 200 ms) and 15 retries,
        // total time to give up is 0.2+0.4+...+102.4 (10 terms) + 120*5
        // ≈ 204.6 + 600 ≈ 804.6 s ≈ 13.4 min. The paper reports "after 12
        // minutes in our experiment" — same order, the exact value depends
        // on the RTT when loss started. Assert the 10–15 minute band.
        let s = RtoState::new(RtoPolicy::default());
        let t = s.worst_case_give_up_time(&rtt_with(20));
        let mins = t.as_secs_f64() / 60.0;
        assert!((10.0..15.0).contains(&mins), "gave up after {mins:.1} min");
    }

    #[test]
    fn backoff_shift_saturates() {
        let mut s = RtoState::new(RtoPolicy {
            max_retries: 100,
            ..Default::default()
        });
        for _ in 0..80 {
            s.on_expiry();
        }
        // Shift amount is clamped; must not panic or overflow.
        assert_eq!(s.current_rto(&rtt_with(10)), Duration::from_secs(120));
    }
}
