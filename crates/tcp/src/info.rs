//! `TcpInfo` — the per-subflow state snapshot.
//!
//! The paper's subflow controller "can also retrieve information from the
//! control block of the Multipath TCP connection or one of the subflows. In
//! practice, this is equivalent to the utilisation of the `TCP_INFO` socket
//! option on Linux." This struct is that snapshot: the smart-streaming
//! controller reads `snd_una`, the refresh controller reads `pacing_rate`,
//! and the backup controller reads `rto`/`backoffs`.

use std::time::Duration;

/// Connection/subflow state visible through the get-info command.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TcpInfo {
    /// Protocol state, Linux `tcpi_state` style.
    pub state: TcpStateInfo,
    /// Smoothed RTT in microseconds (0 if unsampled).
    pub srtt_us: u64,
    /// RTT variance in microseconds.
    pub rttvar_us: u64,
    /// Current retransmission timeout in microseconds (with backoff).
    pub rto_us: u64,
    /// Consecutive RTO backoffs since the last ACK progress.
    pub backoffs: u32,
    /// Congestion window, bytes.
    pub cwnd: u64,
    /// Slow-start threshold, bytes.
    pub ssthresh: u64,
    /// Current pacing rate, bytes/second (0 if no RTT sample yet).
    pub pacing_rate: u64,
    /// First unacknowledged stream offset (bytes from stream start).
    pub snd_una: u64,
    /// Next stream offset to be sent.
    pub snd_nxt: u64,
    /// Bytes currently in flight.
    pub in_flight: u64,
    /// Total bytes acknowledged over the lifetime.
    pub bytes_acked: u64,
    /// Total segments retransmitted over the lifetime.
    pub retrans: u64,
    /// True if the subflow carries the MPTCP backup flag.
    pub backup: bool,
}

impl TcpInfo {
    /// Smoothed RTT as a [`Duration`], `None` when unsampled.
    pub fn srtt(&self) -> Option<Duration> {
        (self.srtt_us > 0).then(|| Duration::from_micros(self.srtt_us))
    }

    /// Current RTO as a [`Duration`].
    pub fn rto(&self) -> Duration {
        Duration::from_micros(self.rto_us)
    }
}

/// Coarse protocol states exposed in [`TcpInfo`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum TcpStateInfo {
    /// Connection attempt in progress (SYN sent).
    #[default]
    SynSent,
    /// SYN received, handshake not complete.
    SynReceived,
    /// Established, transferring data.
    Established,
    /// FIN exchange in progress.
    Closing,
    /// Fully closed.
    Closed,
}

impl std::fmt::Display for TcpStateInfo {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            TcpStateInfo::SynSent => "SYN_SENT",
            TcpStateInfo::SynReceived => "SYN_RECV",
            TcpStateInfo::Established => "ESTABLISHED",
            TcpStateInfo::Closing => "CLOSING",
            TcpStateInfo::Closed => "CLOSED",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn srtt_accessor() {
        let mut i = TcpInfo::default();
        assert_eq!(i.srtt(), None);
        i.srtt_us = 25_000;
        assert_eq!(i.srtt(), Some(Duration::from_millis(25)));
    }

    #[test]
    fn rto_accessor() {
        let i = TcpInfo {
            rto_us: 1_000_000,
            ..Default::default()
        };
        assert_eq!(i.rto(), Duration::from_secs(1));
    }

    #[test]
    fn state_display() {
        assert_eq!(TcpStateInfo::Established.to_string(), "ESTABLISHED");
        assert_eq!(TcpStateInfo::default().to_string(), "SYN_SENT");
    }
}
