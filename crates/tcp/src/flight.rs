//! In-flight segment tracking.
//!
//! The flight tracker remembers every transmitted-but-unacknowledged
//! segment: its stream offsets, transmission time, retransmission count and
//! a caller-supplied tag (the MPTCP layer stores the DSS mapping there).
//! It answers the sender's recurring questions: how much is in flight, what
//! does a cumulative ACK release, which segment feeds the RTT estimator
//! (Karn's rule: only never-retransmitted segments), and what should be
//! retransmitted on timeout.

use std::collections::VecDeque;
use std::time::Duration;

use smapp_sim::SimTime;

/// One transmitted segment.
#[derive(Clone, Debug)]
pub struct SentSeg<T> {
    /// Stream offset of the first payload byte.
    pub off: u64,
    /// Payload length in bytes.
    pub len: u32,
    /// When the segment was (last) transmitted.
    pub sent_at: SimTime,
    /// How many times it has been retransmitted (0 = original).
    pub retx: u32,
    /// Caller tag (e.g. the DSS mapping attached to these bytes).
    pub tag: T,
}

impl<T> SentSeg<T> {
    /// Offset one past the last byte.
    pub fn end(&self) -> u64 {
        self.off + self.len as u64
    }
}

/// The set of in-flight segments, ordered by stream offset.
#[derive(Debug)]
pub struct Flight<T> {
    segs: VecDeque<SentSeg<T>>,
    in_flight: u64,
}

impl<T> Default for Flight<T> {
    fn default() -> Self {
        Flight {
            segs: VecDeque::new(),
            in_flight: 0,
        }
    }
}

/// Outcome of processing a cumulative ACK.
#[derive(Clone, Copy, Debug)]
pub struct AckResult {
    /// Bytes newly acknowledged.
    pub acked_bytes: u64,
    /// Number of segments fully released by this ACK.
    pub acked_seg_count: usize,
    /// RTT sample from the most recently sent, never-retransmitted,
    /// fully-acked segment (Karn's algorithm).
    pub rtt_sample: Option<Duration>,
}

impl<T> Flight<T> {
    /// Empty flight.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bytes currently unacknowledged.
    pub fn bytes_in_flight(&self) -> u64 {
        self.in_flight
    }

    /// Number of tracked segments.
    pub fn seg_count(&self) -> usize {
        self.segs.len()
    }

    /// True when nothing is outstanding.
    pub fn is_empty(&self) -> bool {
        self.segs.is_empty()
    }

    /// Stream offset of the oldest unacknowledged byte, if any.
    pub fn oldest_offset(&self) -> Option<u64> {
        self.segs.front().map(|s| s.off)
    }

    /// The oldest unacknowledged segment, if any.
    pub fn oldest(&self) -> Option<&SentSeg<T>> {
        self.segs.front()
    }

    /// Record a (re)transmission. Segments must be recorded in offset order
    /// for originals; retransmissions update the existing entry via
    /// [`Flight::mark_head_retransmitted`] instead.
    pub fn on_send(&mut self, off: u64, len: u32, now: SimTime, tag: T) {
        debug_assert!(len > 0);
        debug_assert!(
            self.segs.back().is_none_or(|s| s.end() <= off),
            "out-of-order original transmission"
        );
        self.segs.push_back(SentSeg {
            off,
            len,
            sent_at: now,
            retx: 0,
            tag,
        });
        self.in_flight += len as u64;
    }

    /// A cumulative ACK up to `upto` arrived at `now`.
    ///
    /// Karn's rule, batch form: if *any* segment released by this ACK was
    /// retransmitted, no RTT sample is taken — a never-retransmitted
    /// segment released in the same batch was blocked behind the
    /// retransmitted hole, so its delay measures loss recovery, not the
    /// path. Otherwise the sample comes from the most recently sent
    /// segment in the batch.
    pub fn on_cum_ack(&mut self, upto: u64, now: SimTime) -> AckResult {
        let mut res = AckResult {
            acked_bytes: 0,
            acked_seg_count: 0,
            rtt_sample: None,
        };
        let mut batch_has_retx = false;
        let mut newest_sent: Option<SimTime> = None;
        while let Some(front) = self.segs.front() {
            if front.end() > upto {
                break;
            }
            let seg = self.segs.pop_front().unwrap();
            self.in_flight -= seg.len as u64;
            res.acked_bytes += seg.len as u64;
            if seg.retx == 0 {
                newest_sent = Some(newest_sent.map_or(seg.sent_at, |t| t.max(seg.sent_at)));
            } else {
                batch_has_retx = true;
            }
            res.acked_seg_count += 1;
        }
        if !batch_has_retx {
            if let Some(sent) = newest_sent {
                res.rtt_sample = now.checked_since(sent);
            }
        }
        // Partial ACK inside the head segment: trim it. (Receivers here ACK
        // on segment boundaries, but middle-of-segment ACKs are legal TCP.)
        if let Some(front) = self.segs.front_mut() {
            if front.off < upto {
                let cut = (upto - front.off) as u32;
                front.off = upto;
                front.len -= cut;
                self.in_flight -= cut as u64;
                res.acked_bytes += cut as u64;
            }
        }
        res
    }

    /// Mark the head segment as retransmitted at `now` and return a copy of
    /// its coordinates for re-encoding, or `None` when empty.
    pub fn mark_head_retransmitted(&mut self, now: SimTime) -> Option<(u64, u32)>
    where
        T: Clone,
    {
        let head = self.segs.front_mut()?;
        head.retx += 1;
        head.sent_at = now;
        Some((head.off, head.len))
    }

    /// Iterate over in-flight segments (offset order).
    pub fn iter(&self) -> impl Iterator<Item = &SentSeg<T>> {
        self.segs.iter()
    }

    /// Drop all state (connection abort).
    pub fn clear(&mut self) {
        self.segs.clear();
        self.in_flight = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    #[test]
    fn send_and_full_ack() {
        let mut f: Flight<()> = Flight::new();
        f.on_send(0, 100, t(0), ());
        f.on_send(100, 100, t(1), ());
        assert_eq!(f.bytes_in_flight(), 200);
        let res = f.on_cum_ack(200, t(51));
        assert_eq!(res.acked_bytes, 200);
        assert_eq!(res.acked_seg_count, 2);
        // Sample from the *last* fully-acked original: sent at 1 ms.
        assert_eq!(res.rtt_sample, Some(Duration::from_millis(50)));
        assert!(f.is_empty());
    }

    #[test]
    fn partial_ack_trims_head() {
        let mut f: Flight<()> = Flight::new();
        f.on_send(0, 100, t(0), ());
        let res = f.on_cum_ack(40, t(10));
        assert_eq!(res.acked_bytes, 40);
        assert_eq!(res.acked_seg_count, 0);
        assert_eq!(f.bytes_in_flight(), 60);
        assert_eq!(f.oldest_offset(), Some(40));
    }

    #[test]
    fn karn_excludes_retransmitted() {
        let mut f: Flight<()> = Flight::new();
        f.on_send(0, 100, t(0), ());
        f.mark_head_retransmitted(t(500));
        let res = f.on_cum_ack(100, t(600));
        assert_eq!(res.rtt_sample, None, "retransmitted segment: no sample");
        assert_eq!(res.acked_bytes, 100);
    }

    #[test]
    fn duplicate_ack_is_noop() {
        let mut f: Flight<()> = Flight::new();
        f.on_send(0, 100, t(0), ());
        f.on_cum_ack(100, t(10));
        let res = f.on_cum_ack(100, t(11));
        assert_eq!(res.acked_bytes, 0);
        assert!(res.rtt_sample.is_none());
    }

    #[test]
    fn retransmit_returns_head_coords() {
        let mut f: Flight<u8> = Flight::new();
        f.on_send(0, 100, t(0), 7);
        f.on_send(100, 50, t(1), 8);
        assert_eq!(f.mark_head_retransmitted(t(300)), Some((0, 100)));
        assert_eq!(f.oldest().unwrap().retx, 1);
        assert_eq!(f.oldest().unwrap().sent_at, t(300));
        // Second retransmission bumps the counter.
        assert_eq!(f.mark_head_retransmitted(t(900)), Some((0, 100)));
        assert_eq!(f.oldest().unwrap().retx, 2);
    }

    #[test]
    fn tags_survive() {
        let mut f: Flight<&'static str> = Flight::new();
        f.on_send(0, 10, t(0), "dss-a");
        f.on_send(10, 10, t(0), "dss-b");
        let res = f.on_cum_ack(10, t(5));
        assert_eq!(res.acked_seg_count, 1);
        assert_eq!(f.oldest().unwrap().tag, "dss-b");
    }

    #[test]
    fn clear_resets() {
        let mut f: Flight<()> = Flight::new();
        f.on_send(0, 10, t(0), ());
        f.clear();
        assert!(f.is_empty());
        assert_eq!(f.bytes_in_flight(), 0);
        assert_eq!(f.mark_head_retransmitted(t(1)), None);
    }
}
