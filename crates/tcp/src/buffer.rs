//! Stream buffers: the send buffer and the out-of-order reassembly queue.
//!
//! Both work in flat 64-bit stream offsets (bytes since the start of the
//! stream). They are used at two levels: per subflow (subflow sequence
//! space) and once per connection (MPTCP data-sequence space).

use std::collections::{BTreeMap, VecDeque};

use bytes::{Bytes, BytesMut};

/// A bounded byte-stream send buffer.
///
/// Holds data the application has written but the receiver has not yet
/// acknowledged. Data is retained until released so any range can be
/// (re)transmitted, including reinjection on another subflow.
#[derive(Debug, Default)]
pub struct SendBuffer {
    /// Stream offset of the first byte in `chunks`.
    head: u64,
    chunks: Vec<Bytes>,
    /// Total buffered bytes.
    len: u64,
    /// Capacity in bytes; `write` accepts at most the free space.
    cap: u64,
}

impl SendBuffer {
    /// A buffer with the given capacity in bytes.
    pub fn with_capacity(cap: u64) -> Self {
        SendBuffer {
            head: 0,
            chunks: Vec::new(),
            len: 0,
            cap,
        }
    }

    /// Offset of the first retained (unacknowledged) byte.
    pub fn head_offset(&self) -> u64 {
        self.head
    }

    /// Offset one past the last buffered byte — where the next write lands.
    pub fn tail_offset(&self) -> u64 {
        self.head + self.len
    }

    /// Buffered bytes.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// True when nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Free space in bytes.
    pub fn free(&self) -> u64 {
        self.cap - self.len
    }

    /// Append as much of `data` as fits; returns the number of bytes
    /// accepted (an application would retry the rest when space frees up).
    pub fn write(&mut self, data: &[u8]) -> usize {
        let take = (self.free().min(data.len() as u64)) as usize;
        if take > 0 {
            // The one copy on the send side: the application's transient
            // slice becomes an owned chunk. Everything downstream
            // (slice/retransmit/encode input) shares it zero-copy.
            self.chunks.push(Bytes::from(data[..take].to_owned()));
            self.len += take as u64;
        }
        take
    }

    /// The range `[off, off+len)` of the stream. The range must be
    /// entirely inside the buffer.
    ///
    /// Zero-copy in the common case: when the range falls inside a single
    /// buffered chunk (applications write in chunks much larger than one
    /// MSS), the result is an Arc-backed sub-slice of that chunk. Only a
    /// range spanning a chunk boundary is assembled into a fresh buffer.
    ///
    /// # Panics
    /// Panics when the range is outside `[head_offset, tail_offset)` —
    /// callers derive ranges from the same bookkeeping, so a violation is
    /// an engine bug.
    pub fn slice(&self, off: u64, len: u32) -> Bytes {
        assert!(
            off >= self.head && off + len as u64 <= self.tail_offset(),
            "slice [{off}, {}) outside buffered [{}, {})",
            off + len as u64,
            self.head,
            self.tail_offset()
        );
        if len == 0 {
            return Bytes::new();
        }
        // Find the chunk containing `off`.
        let mut pos = self.head;
        let mut idx = 0usize;
        while idx < self.chunks.len() {
            let clen = self.chunks[idx].len() as u64;
            if off < pos + clen {
                break;
            }
            pos += clen;
            idx += 1;
        }
        let first = &self.chunks[idx];
        let start = (off - pos) as usize;
        if start + len as usize <= first.len() {
            // Fast path: one chunk covers the whole range.
            return first.slice(start..start + len as usize);
        }
        // Slow path: stitch the spanning range together.
        let mut out = BytesMut::with_capacity(len as usize);
        let want_end = off + len as u64;
        let mut want_from = off;
        for chunk in &self.chunks[idx..] {
            let chunk_end = pos + chunk.len() as u64;
            let s = (want_from - pos) as usize;
            let e = (want_end.min(chunk_end) - pos) as usize;
            out.extend_from_slice(&chunk[s..e]);
            want_from = chunk_end.min(want_end);
            pos = chunk_end;
            if pos >= want_end {
                break;
            }
        }
        debug_assert_eq!(out.len(), len as usize);
        out.freeze()
    }

    /// Release all bytes below `upto` (they were cumulatively acknowledged).
    /// Offsets at or below the current head are ignored.
    pub fn release_until(&mut self, upto: u64) {
        while self.head < upto {
            let Some(first) = self.chunks.first_mut() else {
                break;
            };
            let flen = first.len() as u64;
            if self.head + flen <= upto {
                self.head += flen;
                self.len -= flen;
                self.chunks.remove(0);
            } else {
                let cut = (upto - self.head) as usize;
                *first = first.slice(cut..);
                self.head += cut as u64;
                self.len -= cut as u64;
            }
        }
    }
}

/// Out-of-order reassembly queue for one direction of a stream.
///
/// Segments arrive keyed by stream offset, possibly duplicated, overlapping
/// or out of order; [`Reassembly::pop_next`] yields the in-order byte
/// stream exactly once.
///
/// In-order arrivals (the no-loss steady state, i.e. almost every data
/// segment of a simulation) bypass the `BTreeMap` entirely: they go
/// straight into a ring-buffered ready queue whose capacity is retained
/// across events, so the hot path performs no per-segment allocation.
#[derive(Debug, Default)]
pub struct Reassembly {
    /// Next offset the consumer expects (end of the ready queue).
    next: u64,
    /// Stream offset of the first byte in `ready`. Invariant:
    /// `ready_off + Σ ready lengths == next`.
    ready_off: u64,
    /// Contiguous in-order chunks awaiting [`Reassembly::pop_next`].
    ready: VecDeque<Bytes>,
    /// Pending out-of-order segments, keyed by start offset. Invariant:
    /// entries are disjoint and all end after `next`.
    segs: BTreeMap<u64, Bytes>,
    /// Bytes currently buffered out of order.
    buffered: u64,
}

impl Reassembly {
    /// A reassembly queue expecting offset 0 first.
    pub fn new() -> Self {
        Self::default()
    }

    /// A queue expecting `next` as the first offset (e.g. after a handshake
    /// consumed one sequence number).
    pub fn starting_at(next: u64) -> Self {
        Reassembly {
            next,
            ready_off: next,
            ready: VecDeque::new(),
            segs: BTreeMap::new(),
            buffered: 0,
        }
    }

    /// The next in-order offset the consumer is waiting for.
    pub fn next_expected(&self) -> u64 {
        self.next
    }

    /// Bytes held in out-of-order segments.
    pub fn buffered_bytes(&self) -> u64 {
        self.buffered
    }

    /// True when out-of-order data is pending (a hole exists).
    pub fn has_hole(&self) -> bool {
        !self.segs.is_empty()
    }

    /// Offer a segment at `off`. Duplicate and overlapping bytes are
    /// discarded; new bytes are retained.
    pub fn insert(&mut self, off: u64, data: Bytes) {
        if data.is_empty() {
            return;
        }
        let mut off = off;
        let mut data = data;
        // Trim anything already consumed.
        if off < self.next {
            let skip = self.next - off;
            if skip >= data.len() as u64 {
                return;
            }
            data = data.slice(skip as usize..);
            off = self.next;
        }
        // In-order fast path: exactly the expected offset with nothing
        // buffered out of order — straight into the ready queue, no tree.
        if off == self.next && self.segs.is_empty() {
            self.next = off + data.len() as u64;
            self.ready.push_back(data);
            return;
        }
        // Trim against the predecessor segment.
        if let Some((&p_off, p_data)) = self.segs.range(..=off).next_back() {
            let p_end = p_off + p_data.len() as u64;
            if p_end > off {
                let skip = p_end - off;
                if skip >= data.len() as u64 {
                    return;
                }
                data = data.slice(skip as usize..);
                off = p_end;
            }
        }
        // Swallow or trim successor segments that we now cover.
        let end = off + data.len() as u64;
        while let Some((&s_off, s_data)) = self.segs.range(off..).next() {
            if s_off >= end {
                break;
            }
            let s_len = s_data.len() as u64;
            let s_end = s_off + s_len;
            if s_end <= end {
                // Fully covered: drop it.
                self.segs.remove(&s_off);
                self.buffered -= s_len;
            } else {
                // Partially covered: keep its tail.
                let tail = s_data.slice((end - s_off) as usize..);
                self.segs.remove(&s_off);
                self.buffered -= s_len;
                self.buffered += tail.len() as u64;
                self.segs.insert(end, tail);
                break;
            }
        }
        self.buffered += data.len() as u64;
        self.segs.insert(off, data);
        // Lift whatever became contiguous into the ready queue.
        while let Some((&s_off, _)) = self.segs.first_key_value() {
            if s_off != self.next {
                break;
            }
            let (_, d) = self.segs.pop_first().unwrap();
            self.next += d.len() as u64;
            self.buffered -= d.len() as u64;
            self.ready.push_back(d);
        }
    }

    /// Pop the next in-order chunk, with the stream offset of its first
    /// byte, or `None` when the stream has a hole (or no data) at the
    /// consumption point.
    pub fn pop_next(&mut self) -> Option<(u64, Bytes)> {
        let data = self.ready.pop_front()?;
        let off = self.ready_off;
        self.ready_off += data.len() as u64;
        Some((off, data))
    }

    /// Remove and return the whole in-order prefix now available.
    ///
    /// Convenience for tests and benchmarks; the engine's hot path uses
    /// the allocation-free [`Reassembly::pop_next`] loop instead.
    pub fn pop_ready(&mut self) -> Vec<Bytes> {
        let mut out = Vec::with_capacity(self.ready.len());
        while let Some((_, data)) = self.pop_next() {
            out.push(data);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(s: &[u8]) -> Bytes {
        Bytes::from(s.to_owned())
    }

    #[test]
    fn send_buffer_write_and_cap() {
        let mut sb = SendBuffer::with_capacity(10);
        assert_eq!(sb.write(b"hello"), 5);
        assert_eq!(sb.write(b"world!!"), 5); // only 5 fit
        assert_eq!(sb.len(), 10);
        assert_eq!(sb.free(), 0);
        assert_eq!(sb.write(b"x"), 0);
    }

    #[test]
    fn send_buffer_single_chunk_slice_is_zero_copy() {
        let mut sb = SendBuffer::with_capacity(100);
        sb.write(b"0123456789");
        let chunk_ptr = sb.slice(0, 10).as_ptr() as usize;
        let sub = sb.slice(3, 4);
        assert_eq!(&sub[..], b"3456");
        // The sub-slice aliases the buffered chunk, not a fresh copy.
        assert_eq!(sub.as_ptr() as usize, chunk_ptr + 3);
    }

    #[test]
    fn send_buffer_slice_spans_chunks() {
        let mut sb = SendBuffer::with_capacity(100);
        sb.write(b"hello");
        sb.write(b" ");
        sb.write(b"world");
        assert_eq!(&sb.slice(0, 11)[..], b"hello world");
        assert_eq!(&sb.slice(3, 5)[..], b"lo wo");
        assert_eq!(&sb.slice(6, 5)[..], b"world");
    }

    #[test]
    fn send_buffer_release_partial_chunk() {
        let mut sb = SendBuffer::with_capacity(100);
        sb.write(b"abcdef");
        sb.release_until(2);
        assert_eq!(sb.head_offset(), 2);
        assert_eq!(&sb.slice(2, 4)[..], b"cdef");
        sb.release_until(6);
        assert!(sb.is_empty());
        assert_eq!(sb.tail_offset(), 6);
        // Stale release is a no-op.
        sb.release_until(3);
        assert_eq!(sb.head_offset(), 6);
    }

    #[test]
    #[should_panic(expected = "outside buffered")]
    fn send_buffer_slice_released_panics() {
        let mut sb = SendBuffer::with_capacity(100);
        sb.write(b"abcdef");
        sb.release_until(3);
        sb.slice(0, 2);
    }

    #[test]
    fn reassembly_in_order() {
        let mut r = Reassembly::new();
        r.insert(0, b(b"ab"));
        r.insert(2, b(b"cd"));
        let got: Vec<u8> = r.pop_ready().concat();
        assert_eq!(got, b"abcd");
        assert_eq!(r.next_expected(), 4);
        assert!(!r.has_hole());
    }

    #[test]
    fn reassembly_out_of_order_hole_fill() {
        let mut r = Reassembly::new();
        r.insert(2, b(b"cd"));
        assert!(r.pop_ready().is_empty());
        assert!(r.has_hole());
        assert_eq!(r.buffered_bytes(), 2);
        r.insert(0, b(b"ab"));
        let got: Vec<u8> = r.pop_ready().concat();
        assert_eq!(got, b"abcd");
        assert_eq!(r.buffered_bytes(), 0);
    }

    #[test]
    fn reassembly_duplicate_discarded() {
        let mut r = Reassembly::new();
        r.insert(0, b(b"abcd"));
        r.pop_ready();
        r.insert(0, b(b"abcd")); // full duplicate
        assert!(r.pop_ready().is_empty());
        assert_eq!(r.buffered_bytes(), 0);
    }

    #[test]
    fn reassembly_overlap_trims() {
        let mut r = Reassembly::new();
        r.insert(0, b(b"abc"));
        r.insert(2, b(b"cde")); // overlaps one byte
        let got: Vec<u8> = r.pop_ready().concat();
        assert_eq!(got, b"abcde");
    }

    #[test]
    fn reassembly_covering_insert_swallows() {
        let mut r = Reassembly::new();
        r.insert(2, b(b"c"));
        r.insert(5, b(b"fg"));
        r.insert(0, b(b"abcdefgh")); // covers both
        let got: Vec<u8> = r.pop_ready().concat();
        assert_eq!(got, b"abcdefgh");
        assert_eq!(r.buffered_bytes(), 0);
    }

    #[test]
    fn reassembly_partial_cover_keeps_tail() {
        let mut r = Reassembly::new();
        r.insert(3, b(b"defg"));
        r.insert(0, b(b"abcd")); // covers "d", keeps "efg"
        let got: Vec<u8> = r.pop_ready().concat();
        assert_eq!(got, b"abcdefg");
    }

    #[test]
    fn reassembly_starting_offset() {
        let mut r = Reassembly::starting_at(100);
        r.insert(50, b(b"old")); // entirely stale
        assert!(r.pop_ready().is_empty());
        r.insert(98, b(b"xxab")); // first two stale
        let got: Vec<u8> = r.pop_ready().concat();
        assert_eq!(got, b"ab");
        assert_eq!(r.next_expected(), 102);
    }
}

#[cfg(test)]
mod prop {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Whatever order segments arrive in — duplicated, overlapping,
        /// fragmented — the reassembled stream equals the original.
        #[test]
        fn reassembly_reconstructs_stream(
            stream in proptest::collection::vec(any::<u8>(), 1..300),
            cuts in proptest::collection::vec((0usize..300, 1usize..50), 1..40),
            order in proptest::collection::vec(any::<usize>(), 1..40),
        ) {
            let n = stream.len();
            // Build segment list covering the stream: first the forced
            // full cover (so delivery is guaranteed), then noise cuts.
            let mut segs: Vec<(usize, usize)> = Vec::new();
            let mut pos = 0;
            let mut i = 0;
            while pos < n {
                let (_, len) = cuts[i % cuts.len()];
                let end = (pos + len).min(n);
                segs.push((pos, end));
                pos = end;
                i += 1;
            }
            // Noise: arbitrary extra (possibly overlapping) slices.
            for &(start, len) in &cuts {
                let s = start.min(n.saturating_sub(1));
                let e = (s + len).min(n);
                if s < e {
                    segs.push((s, e));
                }
            }
            // Shuffle deterministically using `order`.
            let mut shuffled: Vec<(usize, usize)> = Vec::with_capacity(segs.len());
            let mut remaining = segs;
            let mut j = 0;
            while !remaining.is_empty() {
                let k = order[j % order.len()] % remaining.len();
                shuffled.push(remaining.swap_remove(k));
                j += 1;
            }

            let mut r = Reassembly::new();
            let mut out: Vec<u8> = Vec::new();
            for (s, e) in shuffled {
                r.insert(s as u64, Bytes::from(stream[s..e].to_owned()));
                for chunk in r.pop_ready() {
                    out.extend_from_slice(&chunk);
                }
            }
            prop_assert_eq!(out, stream);
            prop_assert_eq!(r.buffered_bytes(), 0);
        }

        /// Sliced ranges from the send buffer always equal the bytes written.
        #[test]
        fn send_buffer_slice_correct(
            writes in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 1..50), 1..10),
            release_frac in 0.0f64..1.0,
        ) {
            let mut sb = SendBuffer::with_capacity(1 << 20);
            let mut mirror: Vec<u8> = Vec::new();
            for w in &writes {
                sb.write(w);
                mirror.extend_from_slice(w);
            }
            let release = (mirror.len() as f64 * release_frac) as u64;
            sb.release_until(release);
            let head = sb.head_offset() as usize;
            let tail = sb.tail_offset() as usize;
            prop_assert_eq!(head, release as usize);
            if tail > head {
                let got = sb.slice(head as u64, (tail - head) as u32);
                prop_assert_eq!(&got[..], &mirror[head..tail]);
            }
        }
    }
}
