//! Simulated time.
//!
//! The simulator uses a single monotonically increasing clock expressed in
//! integer nanoseconds. Durations are plain [`std::time::Duration`] values so
//! callers can write `SimTime::ZERO + Duration::from_millis(10)` and compare
//! instants with ordinary operators.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};
use std::time::Duration;

/// An instant on the simulation clock, in nanoseconds since the start of the
/// run.
///
/// `SimTime` is a thin wrapper over `u64`; arithmetic with
/// [`Duration`] saturates on overflow (a simulation that runs for 580 years
/// has other problems).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

impl SimTime {
    /// The beginning of the simulation.
    pub const ZERO: SimTime = SimTime(0);

    /// Largest representable instant; used as an "infinitely far" deadline.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Construct from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// Construct from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// Construct from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000)
    }

    /// Raw nanoseconds since simulation start.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Microseconds since simulation start (truncating).
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// Milliseconds since simulation start (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Seconds since simulation start as a float (for reporting).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Duration elapsed since `earlier`, or `Duration::ZERO` if `earlier` is
    /// in the future.
    pub fn saturating_since(self, earlier: SimTime) -> Duration {
        Duration::from_nanos(self.0.saturating_sub(earlier.0))
    }

    /// Checked subtraction of two instants.
    pub fn checked_since(self, earlier: SimTime) -> Option<Duration> {
        self.0.checked_sub(earlier.0).map(Duration::from_nanos)
    }
}

impl Add<Duration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: Duration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.as_nanos() as u64))
    }
}

impl AddAssign<Duration> for SimTime {
    fn add_assign(&mut self, rhs: Duration) {
        *self = *self + rhs;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = Duration;
    /// Panics in debug builds if `rhs` is later than `self`.
    fn sub(self, rhs: SimTime) -> Duration {
        debug_assert!(rhs.0 <= self.0, "SimTime subtraction underflow");
        Duration::from_nanos(self.0.saturating_sub(rhs.0))
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns >= 1_000_000_000 {
            write!(f, "{:.6}s", self.as_secs_f64())
        } else if ns >= 1_000_000 {
            write!(f, "{:.3}ms", ns as f64 / 1e6)
        } else {
            write!(f, "{}us", ns as f64 / 1e3)
        }
    }
}

/// Convert a transmission size and rate into serialization time.
///
/// `bits` are put on a wire running at `bits_per_sec`; the result is rounded
/// up to the next nanosecond so back-to-back packets never occupy zero time.
pub fn tx_time(bits: u64, bits_per_sec: u64) -> Duration {
    assert!(bits_per_sec > 0, "link rate must be positive");
    let ns = (bits as u128 * 1_000_000_000u128).div_ceil(bits_per_sec as u128);
    Duration::from_nanos(ns as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_accessors() {
        assert_eq!(SimTime::from_secs(2).as_nanos(), 2_000_000_000);
        assert_eq!(SimTime::from_millis(3).as_micros(), 3_000);
        assert_eq!(SimTime::from_micros(5).as_nanos(), 5_000);
        assert_eq!(SimTime::from_secs(1).as_millis(), 1_000);
    }

    #[test]
    fn add_and_sub() {
        let t = SimTime::from_millis(10) + Duration::from_millis(5);
        assert_eq!(t.as_millis(), 15);
        assert_eq!(t - SimTime::from_millis(10), Duration::from_millis(5));
    }

    #[test]
    fn saturating_since_handles_future() {
        let a = SimTime::from_secs(1);
        let b = SimTime::from_secs(2);
        assert_eq!(a.saturating_since(b), Duration::ZERO);
        assert_eq!(b.saturating_since(a), Duration::from_secs(1));
    }

    #[test]
    fn checked_since() {
        let a = SimTime::from_secs(1);
        let b = SimTime::from_secs(2);
        assert_eq!(a.checked_since(b), None);
        assert_eq!(b.checked_since(a), Some(Duration::from_secs(1)));
    }

    #[test]
    fn tx_time_rounds_up() {
        // 1500 bytes at 1 Gb/s = 12 microseconds exactly.
        assert_eq!(tx_time(12_000, 1_000_000_000), Duration::from_micros(12));
        // 1 bit at 3 bit/s: 333333333.33 ns rounds up to ...34.
        assert_eq!(tx_time(1, 3), Duration::from_nanos(333_333_334));
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(format!("{}", SimTime::from_nanos(1_500)), "1.5us");
        assert_eq!(format!("{}", SimTime::from_millis(2)), "2.000ms");
        assert_eq!(format!("{}", SimTime::from_secs(3)), "3.000000s");
    }
}
