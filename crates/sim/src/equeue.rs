//! The simulator's event queue: a calendar queue with an overflow heap.
//!
//! The run loop's innermost operations are "schedule an event a short time
//! from now" and "pop the earliest event". A single `BinaryHeap` pays
//! `O(log n)` sifts on every push and pop. Almost all events in this
//! simulator land within a few link delays of `now`, so [`EventQueue`]
//! keeps a ring of fixed-width time buckets in front of the heap:
//!
//! * pushes into the near future append to an unsorted bucket — `O(1)`;
//! * pushes inside the already-open bucket go to a (tiny) `current` heap;
//! * far-future events (RTO timers, scripted scenario changes) overflow to
//!   a regular binary heap and migrate into the ring as the wheel turns.
//!
//! # Struct-of-arrays layout
//!
//! Events themselves (which can embed a whole packet) live in a slab and
//! are addressed by slot; the heaps and ring buckets move only 24-byte
//! [`Key`]s. Heap sifts therefore shuffle keys, not payloads, and opening
//! a ring bucket heapifies the whole batch in `O(n)` (`BinaryHeap::from`)
//! instead of `n` sifting pushes — the spent heap's allocation is recycled
//! into the emptied bucket, so the steady state allocates nothing.
//!
//! Ordering is **exactly** the `(at, seq)` order a single heap would
//! produce: the structures partition time (`current` < ring < overflow),
//! and each bucket is heapified before it is drained. Determinism is the
//! simulator's core contract; `queue_orders_like_reference` in the tests
//! checks this against a plain-heap reference model.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// Log2 of the bucket width in nanoseconds (2^20 ns ≈ 1.05 ms — around one
/// full-size-packet serialization time on the paper's 8 Mb/s paths).
const BUCKET_SHIFT: u32 = 20;
/// Number of ring buckets. 64 buckets × ~1 ms ≈ 67 ms of near future, which
/// covers queueing + serialization + propagation on the paper's topologies;
/// only RTO-scale timers overflow.
const NUM_BUCKETS: usize = 64;

/// An entry popped from the event queue. Ties are broken by insertion
/// order (`seq`) so the simulation is fully deterministic.
pub(crate) struct Scheduled<E> {
    pub at: SimTime,
    /// Insertion-order tie-breaker; the run loop ignores it, the ordering
    /// tests compare it against the reference model.
    #[cfg_attr(not(test), allow(dead_code))]
    pub seq: u64,
    pub ev: E,
}

/// What the heaps and ring buckets actually move: the ordering fields plus
/// a slab slot. The event payload never travels through a sift.
#[derive(Clone, Copy)]
struct Key {
    at: SimTime,
    seq: u64,
    slot: u32,
}

impl PartialEq for Key {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Key {}
impl PartialOrd for Key {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Key {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// Calendar queue over slab-backed events; see the module docs.
pub(crate) struct EventQueue<E> {
    /// Keys with `at < open_end`, heap-ordered. The only structure pops
    /// come from.
    current: BinaryHeap<Reverse<Key>>,
    /// Unsorted buckets; bucket `(head + k) % NUM_BUCKETS` covers times
    /// `[open_end + k·W, open_end + (k+1)·W)`. Stored pre-wrapped in
    /// `Reverse` so a bucket converts into the min-heap without a remap.
    ring: Vec<Vec<Reverse<Key>>>,
    /// Ring bucket that will be opened next.
    head: usize,
    /// Boundary between `current` and the ring, in ns (multiple of W).
    open_end: u64,
    /// Entries living in the ring (not `current`, not `overflow`).
    ring_len: usize,
    /// Far future: `at >= open_end + NUM_BUCKETS·W`.
    overflow: BinaryHeap<Reverse<Key>>,
    /// Event payloads, addressed by `Key::slot`; freed slots recycle.
    slab: Vec<Option<E>>,
    free: Vec<u32>,
    len: usize,
    peak_len: usize,
}

impl<E> EventQueue<E> {
    pub fn new() -> Self {
        EventQueue {
            current: BinaryHeap::new(),
            ring: (0..NUM_BUCKETS).map(|_| Vec::new()).collect(),
            head: 0,
            open_end: bucket_width(),
            ring_len: 0,
            overflow: BinaryHeap::new(),
            slab: Vec::new(),
            free: Vec::new(),
            len: 0,
            peak_len: 0,
        }
    }

    /// Entries currently queued (live and lazily-cancelled alike).
    pub fn len(&self) -> usize {
        self.len
    }

    /// High-water mark of [`EventQueue::len`] since construction.
    pub fn peak_len(&self) -> usize {
        self.peak_len
    }

    pub fn push(&mut self, at: SimTime, seq: u64, ev: E) {
        let slot = match self.free.pop() {
            Some(s) => {
                self.slab[s as usize] = Some(ev);
                s
            }
            None => {
                self.slab.push(Some(ev));
                (self.slab.len() - 1) as u32
            }
        };
        let key = Key { at, seq, slot };
        let ns = at.as_nanos();
        if ns < self.open_end {
            self.current.push(Reverse(key));
        } else {
            let k = (ns - self.open_end) >> BUCKET_SHIFT;
            if (k as usize) < NUM_BUCKETS {
                self.ring[(self.head + k as usize) % NUM_BUCKETS].push(Reverse(key));
                self.ring_len += 1;
            } else {
                self.overflow.push(Reverse(key));
            }
        }
        self.len += 1;
        if self.len > self.peak_len {
            self.peak_len = self.len;
        }
    }

    /// Time of the earliest entry, advancing the wheel as needed.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        self.prepare_current();
        self.current.peek().map(|Reverse(k)| k.at)
    }

    /// Remove and return the earliest entry (exact `(at, seq)` order).
    pub fn pop(&mut self) -> Option<Scheduled<E>> {
        self.prepare_current();
        let Reverse(key) = self.current.pop()?;
        let ev = self.slab[key.slot as usize]
            .take()
            .expect("queued key points at an occupied slab slot");
        self.free.push(key.slot);
        self.len -= 1;
        Some(Scheduled {
            at: key.at,
            seq: key.seq,
            ev,
        })
    }

    /// Make `current` hold the globally earliest entry (if any exist).
    fn prepare_current(&mut self) {
        while self.current.is_empty() && self.len > 0 {
            if self.ring_len == 0 {
                // Everything lives in the overflow heap: fast-forward the
                // wheel to the overflow head instead of stepping bucket by
                // bucket through empty time.
                let target = self.overflow.peek().map(|Reverse(k)| k.at.as_nanos());
                if let Some(t) = target {
                    let aligned = (t >> BUCKET_SHIFT) << BUCKET_SHIFT;
                    if aligned > self.open_end {
                        self.open_end = aligned;
                    }
                    self.refill_from_overflow();
                }
            }
            self.open_next_bucket();
        }
    }

    /// Open the bucket at `head`: heapify its entries into `current` (an
    /// `O(n)` batch, not `n` sifts — `current` is empty here, the caller's
    /// loop condition) and advance the wheel by one width. The spent
    /// heap's allocation is recycled into the emptied bucket slot.
    fn open_next_bucket(&mut self) {
        debug_assert!(self.current.is_empty(), "bucket opened over a live heap");
        let bucket = std::mem::take(&mut self.ring[self.head]);
        self.ring_len -= bucket.len();
        let spent = std::mem::replace(&mut self.current, BinaryHeap::from(bucket));
        self.ring[self.head] = spent.into_vec();
        self.head = (self.head + 1) % NUM_BUCKETS;
        self.open_end += bucket_width();
        self.refill_from_overflow();
    }

    /// Pull overflow entries that now fall inside the ring's horizon.
    fn refill_from_overflow(&mut self) {
        let horizon = self
            .open_end
            .saturating_add(NUM_BUCKETS as u64 * bucket_width());
        while let Some(Reverse(k)) = self.overflow.peek() {
            let ns = k.at.as_nanos();
            if ns >= horizon {
                break;
            }
            let Reverse(k) = self.overflow.pop().unwrap();
            debug_assert!(ns >= self.open_end, "overflow entry behind the wheel");
            let idx = ((ns - self.open_end) >> BUCKET_SHIFT) as usize;
            self.ring[(self.head + idx) % NUM_BUCKETS].push(Reverse(k));
            self.ring_len += 1;
        }
    }
}

const fn bucket_width() -> u64 {
    1 << BUCKET_SHIFT
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SimRng;

    /// Reference model: one binary heap over whole entries.
    struct RefEntry {
        at: SimTime,
        seq: u64,
        ev: u32,
    }
    impl PartialEq for RefEntry {
        fn eq(&self, other: &Self) -> bool {
            (self.at, self.seq) == (other.at, other.seq)
        }
    }
    impl Eq for RefEntry {}
    impl PartialOrd for RefEntry {
        fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
            Some(self.cmp(other))
        }
    }
    impl Ord for RefEntry {
        fn cmp(&self, other: &Self) -> std::cmp::Ordering {
            (self.at, self.seq).cmp(&(other.at, other.seq))
        }
    }
    struct Reference {
        heap: BinaryHeap<Reverse<RefEntry>>,
    }
    impl Reference {
        fn push(&mut self, at: SimTime, seq: u64, ev: u32) {
            self.heap.push(Reverse(RefEntry { at, seq, ev }));
        }
        fn pop(&mut self) -> Option<(SimTime, u64, u32)> {
            self.heap.pop().map(|Reverse(s)| (s.at, s.seq, s.ev))
        }
    }

    #[test]
    fn pops_in_time_then_seq_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_millis(5), 1, "b");
        q.push(SimTime::from_millis(5), 0, "a");
        q.push(SimTime::from_millis(1), 2, "first");
        q.push(SimTime::from_secs(10), 3, "far");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|s| s.ev)).collect();
        assert_eq!(order, ["first", "a", "b", "far"]);
        assert_eq!(q.len(), 0);
        assert_eq!(q.peak_len(), 4);
    }

    #[test]
    fn peek_matches_pop() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(3), 0, ());
        q.push(SimTime::from_micros(10), 1, ());
        assert_eq!(q.peek_time(), Some(SimTime::from_micros(10)));
        assert_eq!(q.pop().unwrap().at, SimTime::from_micros(10));
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(3)));
    }

    #[test]
    fn empty_queue() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        assert!(q.pop().is_none());
        assert_eq!(q.len(), 0);
    }

    #[test]
    fn slab_slots_recycle() {
        let mut q = EventQueue::new();
        for round in 0..100u64 {
            q.push(SimTime::from_nanos(round), round, round);
            assert_eq!(q.pop().unwrap().ev, round);
        }
        // Push/pop cycles reuse the single freed slot instead of growing.
        assert!(q.slab.len() <= 2, "slab grew to {}", q.slab.len());
    }

    /// Randomized interleaving of pushes (including pushes at the time of
    /// the last pop, as zero-delay events do) must match a plain heap.
    #[test]
    fn queue_orders_like_reference() {
        for seed in 0..20u64 {
            let mut rng = SimRng::seed_from_u64(seed);
            let mut q = EventQueue::new();
            let mut r = Reference {
                heap: BinaryHeap::new(),
            };
            let mut seq = 0u64;
            let mut now = 0u64;
            let mut ev = 0u32;
            for _round in 0..200 {
                // A burst of pushes at `now + delta` for mixed deltas:
                // sub-bucket, intra-ring, and far-future.
                for _ in 0..(rng.next_u64() % 8) {
                    let delta = match rng.next_u64() % 4 {
                        0 => rng.next_u64() % 1_000,                    // same bucket
                        1 => rng.next_u64() % 3_000_000,                // near ring
                        2 => rng.next_u64() % 60_000_000,               // across ring
                        _ => 100_000_000 + rng.next_u64() % 2e9 as u64, // overflow
                    };
                    let at = SimTime::from_nanos(now + delta);
                    q.push(at, seq, ev);
                    r.push(at, seq, ev);
                    seq += 1;
                    ev += 1;
                }
                // Pop a few and compare.
                for _ in 0..(rng.next_u64() % 6) {
                    let got = q.pop().map(|s| (s.at, s.seq, s.ev));
                    let want = r.pop();
                    assert_eq!(got, want, "seed {seed}");
                    if let Some((at, ..)) = got {
                        now = at.as_nanos();
                    }
                }
            }
            // Drain.
            loop {
                let got = q.pop().map(|s| (s.at, s.seq, s.ev));
                let want = r.pop();
                assert_eq!(got, want, "seed {seed} drain");
                if got.is_none() {
                    break;
                }
            }
        }
    }
}
