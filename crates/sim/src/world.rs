//! The simulation world: event queue, links, interfaces, and the run loop.
//!
//! [`Simulator`] owns every [`Node`] plus a [`SimCore`] holding everything
//! else (clock, event queue, RNG, links, interfaces, trace sink). Node
//! callbacks receive a [`Ctx`] — a view over the core scoped to that node —
//! through which they send packets and arm timers. This split keeps borrows
//! disjoint without interior mutability and keeps the whole simulation
//! single-threaded and deterministic.
//!
//! # Event ordering and timers
//!
//! Events execute in strict `(time, insertion order)` order via a calendar
//! queue (`crate::equeue`). Timers armed through [`Ctx::set_timer_after`]
//! return a [`TimerHandle`] and can be cancelled with [`Ctx::cancel_timer`];
//! cancellation is *lazy* — the queue entry stays until its expiry instant
//! and still counts as one processed event when it pops (so enabling
//! cancellation never changes a run's event accounting), but the callback
//! is not invoked and the handle's slot is recycled immediately.

use std::time::Duration;

use crate::addr::Addr;
use crate::dynamics::{DynAction, DynamicsScript, OutOfOrderError};
use crate::equeue::{EventQueue, Scheduled};
use crate::link::{
    Dir, DropReason, Eviction, LinkCfg, LinkDirState, LinkDirStats, LinkId, LossModel, ReorderModel,
};
use crate::node::{Iface, IfaceId, Node, NodeId};
use crate::packet::Packet;
use crate::rng::SimRng;
use crate::time::{tx_time, SimTime};
use crate::trace::{TraceEvent, TraceKind, TraceSink};

/// Internal events the simulator processes.
#[derive(Debug)]
pub(crate) enum SimEvent {
    /// Deliver `on_start` to a node.
    Start(NodeId),
    /// A node timer fired.
    Timer {
        node: NodeId,
        token: u64,
        handle: TimerHandle,
    },
    /// A packet finished serializing on a link direction.
    TxDone { link: LinkId, dir: Dir, pkt: Packet },
    /// A packet finished propagating and arrives at the far end.
    Deliver { link: LinkId, dir: Dir, pkt: Packet },
    /// Administrative interface state change.
    IfaceAdmin { iface: IfaceId, up: bool },
    /// Run a registered script hook.
    Script(usize),
    /// Execute an installed dynamics-script action.
    Dyn(usize),
}

/// One link: two interfaces and two directional states.
#[derive(Debug)]
struct LinkState {
    /// Interface at the A end.
    a: IfaceId,
    /// Interface at the B end.
    b: IfaceId,
    /// `dirs[0]` carries A→B traffic, `dirs[1]` B→A.
    dirs: [LinkDirState; 2],
}

impl LinkState {
    fn dir_mut(&mut self, dir: Dir) -> &mut LinkDirState {
        match dir {
            Dir::AtoB => &mut self.dirs[0],
            Dir::BtoA => &mut self.dirs[1],
        }
    }
    fn dir_ref(&self, dir: Dir) -> &LinkDirState {
        match dir {
            Dir::AtoB => &self.dirs[0],
            Dir::BtoA => &self.dirs[1],
        }
    }
    /// Receiving interface for traffic flowing in `dir`.
    fn sink_iface(&self, dir: Dir) -> IfaceId {
        match dir {
            Dir::AtoB => self.b,
            Dir::BtoA => self.a,
        }
    }
}

/// Why [`Simulator::run`] returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// The event queue drained.
    Idle,
    /// The configured time horizon was reached.
    Horizon,
    /// A node or script called [`Ctx::stop`] / [`SimCore::request_stop`].
    Requested,
    /// The safety event limit was hit (almost certainly a bug).
    EventLimit,
}

/// Summary returned by [`Simulator::run`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunSummary {
    /// Why the run ended.
    pub reason: StopReason,
    /// Simulated time at the end of the run.
    pub ended_at: SimTime,
    /// Number of events processed.
    pub events: u64,
    /// High-water mark of the event queue over the whole simulation.
    pub peak_queue: usize,
}

/// A handle to an armed timer, returned by [`Ctx::set_timer_after`] /
/// [`Ctx::set_timer_at`] and accepted by [`Ctx::cancel_timer`].
///
/// Handles are generation-tagged: once the timer has fired or been
/// cancelled, the handle goes stale and cancelling it again is a safe
/// no-op — even after the underlying slot has been recycled for a newer
/// timer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimerHandle {
    slot: u32,
    gen: u32,
}

/// State of one timer slot (recycled through a free list).
#[derive(Debug, Clone, Copy)]
struct TimerSlot {
    gen: u32,
    armed: bool,
}

/// Everything in the simulation except the nodes.
pub struct SimCore {
    now: SimTime,
    queue: EventQueue<SimEvent>,
    next_seq: u64,
    rng: SimRng,
    links: Vec<LinkState>,
    ifaces: Vec<Iface>,
    /// Per-node interface index: `node_ifaces[n]` lists node `n`'s
    /// interfaces in creation order (O(1) topology lookups).
    node_ifaces: Vec<Vec<IfaceId>>,
    timer_slots: Vec<TimerSlot>,
    timer_free: Vec<u32>,
    live_timers: usize,
    trace: Option<Box<dyn TraceSink>>,
    /// Cached `trace.is_some()` so the hot path skips sink dispatch with a
    /// single branch when tracing is off.
    tracing_on: bool,
    stop_requested: bool,
    /// Hard cap on processed events; a safety net against runaway loops.
    pub event_limit: u64,
}

impl SimCore {
    fn new(seed: u64) -> Self {
        SimCore {
            now: SimTime::ZERO,
            queue: EventQueue::new(),
            next_seq: 0,
            rng: SimRng::seed_from_u64(seed),
            links: Vec::new(),
            ifaces: Vec::new(),
            node_ifaces: Vec::new(),
            timer_slots: Vec::new(),
            timer_free: Vec::new(),
            live_timers: 0,
            trace: None,
            tracing_on: false,
            stop_requested: false,
            event_limit: 500_000_000,
        }
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The simulation RNG.
    pub fn rng(&mut self) -> &mut SimRng {
        &mut self.rng
    }

    /// Ask the run loop to stop after the current event.
    pub fn request_stop(&mut self) {
        self.stop_requested = true;
    }

    /// Install (or replace) the trace sink. Returns the previous one.
    pub fn set_trace(&mut self, sink: Box<dyn TraceSink>) -> Option<Box<dyn TraceSink>> {
        self.tracing_on = true;
        self.trace.replace(sink)
    }

    /// Remove and return the trace sink (typically after a run, to read
    /// collected data back out).
    pub fn take_trace(&mut self) -> Option<Box<dyn TraceSink>> {
        self.tracing_on = false;
        self.trace.take()
    }

    /// Interface metadata.
    pub fn iface(&self, id: IfaceId) -> &Iface {
        &self.ifaces[id.0]
    }

    /// All interfaces belonging to `node`, in creation order.
    pub fn ifaces_of(&self, node: NodeId) -> impl Iterator<Item = (IfaceId, &Iface)> {
        self.node_ifaces
            .get(node.0)
            .into_iter()
            .flatten()
            .map(move |&id| (id, &self.ifaces[id.0]))
    }

    /// Find the interface of `node` carrying address `addr`.
    pub fn iface_by_addr(&self, node: NodeId, addr: Addr) -> Option<IfaceId> {
        self.ifaces_of(node)
            .find(|(_, i)| i.addr == addr)
            .map(|(id, _)| id)
    }

    /// Counters for one direction of a link.
    pub fn link_stats(&self, link: LinkId, dir: Dir) -> &LinkDirStats {
        &self.links[link.0].dir_ref(dir).stats
    }

    /// Replace the loss model of one direction of a link, effective
    /// immediately.
    pub fn set_loss(&mut self, link: LinkId, dir: Dir, loss: LossModel) {
        self.links[link.0].dir_mut(dir).cfg.loss = loss;
    }

    /// Replace the loss model of both directions of a link.
    pub fn set_loss_both(&mut self, link: LinkId, loss: LossModel) {
        self.set_loss(link, Dir::AtoB, loss.clone());
        self.set_loss(link, Dir::BtoA, loss);
    }

    /// Set the serialization rate of one direction of a link, effective
    /// for subsequently started transmissions (a packet already on the
    /// serializer keeps the rate it started with).
    pub fn set_rate(&mut self, link: LinkId, dir: Dir, rate_bps: u64) {
        self.links[link.0].dir_mut(dir).cfg.rate_bps = rate_bps;
    }

    /// Set the one-way propagation delay of one direction of a link,
    /// effective for packets finishing serialization afterwards.
    pub fn set_delay(&mut self, link: LinkId, dir: Dir, delay: Duration) {
        self.links[link.0].dir_mut(dir).cfg.delay = delay;
    }

    /// Set the drop-tail queue capacity of one direction of a link.
    /// Shrinking does not evict queued packets; the bound applies to
    /// subsequent admissions (equivalent to
    /// [`SimCore::set_queue_policy`] with [`Eviction::Keep`]).
    pub fn set_queue(&mut self, link: LinkId, dir: Dir, pkts: usize) {
        self.set_queue_policy(link, dir, pkts, Eviction::Keep);
    }

    /// Set the drop-tail queue capacity of one direction of a link with an
    /// explicit shrink policy: [`Eviction::Keep`] leaves already-queued
    /// packets alone, [`Eviction::DropNewest`] evicts from the queue tail
    /// until occupancy fits the new bound (each eviction is traced as a
    /// [`DropReason::Evicted`] drop).
    pub fn set_queue_policy(&mut self, link: LinkId, dir: Dir, pkts: usize, evict: Eviction) {
        self.links[link.0].dir_mut(dir).cfg.queue_pkts = pkts;
        if evict == Eviction::DropNewest {
            while self.links[link.0].dir_ref(dir).queue.len() > pkts {
                let pkt = self.links[link.0]
                    .dir_mut(dir)
                    .queue
                    .pop_back()
                    .expect("len > pkts implies non-empty");
                self.links[link.0].dir_mut(dir).stats.dropped_evicted += 1;
                self.trace_event(
                    TraceKind::Drop {
                        link: Some(link),
                        reason: DropReason::Evicted,
                    },
                    &pkt,
                );
            }
        }
    }

    /// Set netem-style reordering of one direction of a link, effective
    /// for packets finishing serialization afterwards.
    pub fn set_reorder(&mut self, link: LinkId, dir: Dir, pct: f64, hold: Duration) {
        self.links[link.0].dir_mut(dir).cfg.reorder = ReorderModel { pct, hold };
    }

    /// Set the netem-style duplication probability of one direction of a
    /// link, effective for packets finishing serialization afterwards.
    pub fn set_duplicate(&mut self, link: LinkId, dir: Dir, pct: f64) {
        self.links[link.0].dir_mut(dir).cfg.duplicate_pct = pct;
    }

    /// The two endpoint interfaces of a link (A end, B end).
    pub fn link_ifaces(&self, link: LinkId) -> (IfaceId, IfaceId) {
        let l = &self.links[link.0];
        (l.a, l.b)
    }

    /// Schedule an administrative up/down change for an interface.
    pub fn schedule_iface_admin(&mut self, at: SimTime, iface: IfaceId, up: bool) {
        self.push(at, SimEvent::IfaceAdmin { iface, up });
    }

    /// Entries currently in the event queue (live work plus
    /// lazily-cancelled timers awaiting expiry).
    pub fn queue_depth(&self) -> usize {
        self.queue.len()
    }

    /// High-water mark of [`SimCore::queue_depth`] since construction.
    pub fn peak_queue_depth(&self) -> usize {
        self.queue.peak_len()
    }

    /// Timers armed and not yet fired or cancelled.
    pub fn live_timer_count(&self) -> usize {
        self.live_timers
    }

    /// Cancel a timer. Returns true if the timer was still pending; stale
    /// handles (fired, already cancelled, or recycled slots) are a no-op.
    pub fn cancel_timer(&mut self, handle: TimerHandle) -> bool {
        self.release_timer(handle)
    }

    fn push(&mut self, at: SimTime, ev: SimEvent) {
        debug_assert!(at >= self.now, "scheduling into the past");
        let seq = self.next_seq;
        self.next_seq += 1;
        self.queue.push(at, seq, ev);
    }

    /// Arm a timer for `node` at `at`, allocating a generation-tagged slot.
    fn arm_timer(&mut self, at: SimTime, node: NodeId, token: u64) -> TimerHandle {
        let slot = match self.timer_free.pop() {
            Some(s) => s,
            None => {
                self.timer_slots.push(TimerSlot {
                    gen: 0,
                    armed: false,
                });
                (self.timer_slots.len() - 1) as u32
            }
        };
        let st = &mut self.timer_slots[slot as usize];
        st.armed = true;
        let handle = TimerHandle { slot, gen: st.gen };
        self.live_timers += 1;
        self.push(
            at,
            SimEvent::Timer {
                node,
                token,
                handle,
            },
        );
        handle
    }

    /// Retire a timer slot if `handle` is current. Returns whether the
    /// timer was live. Shared by cancellation and (on firing) dispatch.
    fn release_timer(&mut self, handle: TimerHandle) -> bool {
        match self.timer_slots.get_mut(handle.slot as usize) {
            Some(st) if st.armed && st.gen == handle.gen => {
                st.armed = false;
                st.gen = st.gen.wrapping_add(1);
                self.timer_free.push(handle.slot);
                self.live_timers -= 1;
                true
            }
            _ => false,
        }
    }

    #[inline]
    fn trace_event(&mut self, kind: TraceKind, pkt: &Packet) {
        if !self.tracing_on {
            return;
        }
        self.trace_event_slow(kind, pkt);
    }

    #[cold]
    fn trace_event_slow(&mut self, kind: TraceKind, pkt: &Packet) {
        if let Some(sink) = self.trace.as_mut() {
            sink.record(&TraceEvent {
                at: self.now,
                kind,
                pkt,
            });
        }
    }

    /// Send `pkt` out of `iface`. Shared by `Ctx::send` and script hooks.
    /// Silently drops (with a trace record) when the interface is down or
    /// unplugged — matching a NIC with no carrier.
    pub fn send_from(&mut self, iface_id: IfaceId, pkt: Packet) {
        let iface = &self.ifaces[iface_id.0];
        let node = iface.node;
        if !iface.up {
            self.trace_event(
                TraceKind::Drop {
                    link: None,
                    reason: DropReason::IfaceDown,
                },
                &pkt,
            );
            return;
        }
        let Some((link_id, dir)) = iface.link else {
            self.trace_event(
                TraceKind::Drop {
                    link: None,
                    reason: DropReason::NoRoute,
                },
                &pkt,
            );
            return;
        };
        self.trace_event(
            TraceKind::Send {
                node,
                iface: iface_id,
            },
            &pkt,
        );
        // Drop-tail check up front so the packet can be traced before being
        // moved into the queue — no clone on the accept path. The admission
        // policy itself stays in `LinkDirState`.
        let state = self.links[link_id.0].dir_ref(dir);
        if !state.has_room() {
            self.links[link_id.0].dir_mut(dir).count_queue_drop();
            self.trace_event(
                TraceKind::Drop {
                    link: Some(link_id),
                    reason: DropReason::QueueFull,
                },
                &pkt,
            );
            return;
        }
        let was_idle = !state.busy;
        let dup_p = state.cfg.duplicate_pct;
        self.trace_event(TraceKind::Enqueue { link: link_id, dir }, &pkt);
        // netem-style duplication happens at admission (like tc-netem's
        // enqueue-side duplicate): the copy enters the tail of the same
        // queue and lives a full enqueue → serialize → deliver life of its
        // own, so link conservation holds for it like any other packet —
        // and a copy is never re-trialed. The guard keeps disabled
        // duplication free of RNG draws.
        let dup = dup_p > 0.0 && self.rng.chance(dup_p);
        let copy = dup.then(|| pkt.clone());
        self.links[link_id.0].dir_mut(dir).admit(pkt);
        if let Some(copy) = copy {
            if self.links[link_id.0].dir_ref(dir).has_room() {
                self.trace_event(TraceKind::Enqueue { link: link_id, dir }, &copy);
                let st = self.links[link_id.0].dir_mut(dir);
                st.admit(copy);
                st.stats.duplicated += 1;
            } else {
                self.links[link_id.0].dir_mut(dir).count_queue_drop();
                self.trace_event(
                    TraceKind::Drop {
                        link: Some(link_id),
                        reason: DropReason::QueueFull,
                    },
                    &copy,
                );
            }
        }
        if was_idle {
            self.start_tx(link_id, dir);
        }
    }

    /// Begin serializing the next queued packet, if the line is idle.
    fn start_tx(&mut self, link: LinkId, dir: Dir) {
        let state = self.links[link.0].dir_mut(dir);
        if state.busy {
            return;
        }
        let Some(pkt) = state.queue.pop_front() else {
            return;
        };
        state.busy = true;
        let dt = tx_time(pkt.wire_bits(), state.cfg.rate_bps);
        self.trace_event(TraceKind::TxStart { link, dir }, &pkt);
        self.push(self.now + dt, SimEvent::TxDone { link, dir, pkt });
    }
}

/// A node-scoped view of the simulation core, handed to node callbacks.
pub struct Ctx<'a> {
    core: &'a mut SimCore,
    node: NodeId,
}

impl<'a> Ctx<'a> {
    /// The node this context is scoped to.
    pub fn node_id(&self) -> NodeId {
        self.node
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.core.now()
    }

    /// The simulation RNG.
    pub fn rng(&mut self) -> &mut SimRng {
        self.core.rng()
    }

    /// Send a packet out of one of this node's interfaces.
    ///
    /// # Panics
    /// Panics if `iface` does not belong to this node — that is always a
    /// wiring bug in the scenario.
    pub fn send(&mut self, iface: IfaceId, pkt: Packet) {
        assert_eq!(
            self.core.ifaces[iface.0].node, self.node,
            "node {:?} tried to send from foreign iface {:?}",
            self.node, iface
        );
        self.core.send_from(iface, pkt);
    }

    /// Arm a timer that fires `after` from now, delivering `token` to
    /// [`Node::on_timer`]. The returned handle can cancel the timer; a
    /// dropped handle leaves the timer to fire normally.
    pub fn set_timer_after(&mut self, after: Duration, token: u64) -> TimerHandle {
        let at = self.core.now + after;
        self.core.arm_timer(at, self.node, token)
    }

    /// Arm a timer for an absolute instant (clamped to now if in the past).
    pub fn set_timer_at(&mut self, at: SimTime, token: u64) -> TimerHandle {
        self.core.arm_timer(at.max(self.core.now), self.node, token)
    }

    /// Cancel a timer armed earlier. Returns true when the timer was still
    /// pending; stale handles are a safe no-op.
    pub fn cancel_timer(&mut self, handle: TimerHandle) -> bool {
        self.core.cancel_timer(handle)
    }

    /// Metadata for any interface (commonly this node's own).
    pub fn iface(&self, id: IfaceId) -> &Iface {
        self.core.iface(id)
    }

    /// This node's interfaces, in creation order (borrowed — copy out what
    /// you need before sending).
    pub fn my_ifaces(&self) -> impl Iterator<Item = (IfaceId, &Iface)> {
        self.core.ifaces_of(self.node)
    }

    /// Find this node's interface with the given address.
    pub fn my_iface_by_addr(&self, addr: Addr) -> Option<IfaceId> {
        self.core.iface_by_addr(self.node, addr)
    }

    /// Ask the simulation to stop after the current event.
    pub fn stop(&mut self) {
        self.core.request_stop();
    }
}

/// Script hook: scheduled scenario actions with access to the core (links,
/// loss models, interface admin, more scheduling).
type ScriptFn = Box<dyn FnMut(&mut SimCore)>;

/// Ordering policy for [`Simulator::install`]: what to do with a dynamics
/// script whose entries are not in non-decreasing time order.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum InstallPolicy {
    /// Stably sort entries by time (ties keep insertion order) — a
    /// deterministic normalization, never an error.
    Sort,
    /// Reject out-of-order scripts with an [`OutOfOrderError`].
    Strict,
}

/// The complete simulation.
pub struct Simulator {
    /// The shared core (public so scenario code can inspect links/stats
    /// between runs).
    pub core: SimCore,
    nodes: Vec<Box<dyn Node>>,
    scripts: Vec<ScriptFn>,
    /// Installed dynamics actions, indexed by [`SimEvent::Dyn`]. Each
    /// entry fires exactly once, so dispatch *takes* the action out of its
    /// slot instead of cloning it.
    dynamics: Vec<Option<DynAction>>,
    started: bool,
}

impl Simulator {
    /// Create an empty simulation with the given RNG seed.
    pub fn new(seed: u64) -> Self {
        Simulator {
            core: SimCore::new(seed),
            nodes: Vec::new(),
            scripts: Vec::new(),
            dynamics: Vec::new(),
            started: false,
        }
    }

    /// Add a node; returns its id. Nodes receive `on_start` in id order.
    pub fn add_node(&mut self, node: Box<dyn Node>) -> NodeId {
        let id = NodeId(self.nodes.len());
        self.nodes.push(node);
        self.core.node_ifaces.push(Vec::new());
        id
    }

    /// Add an interface to `node` with address `addr`. The interface starts
    /// up but unplugged; connect it with [`Simulator::connect`].
    pub fn add_iface(&mut self, node: NodeId, addr: Addr, name: impl Into<String>) -> IfaceId {
        assert!(node.0 < self.nodes.len(), "no such node");
        let id = IfaceId(self.core.ifaces.len());
        self.core.ifaces.push(Iface {
            node,
            addr,
            link: None,
            up: true,
            name: name.into(),
        });
        self.core.node_ifaces[node.0].push(id);
        id
    }

    /// Create a link between two interfaces with symmetric configuration.
    pub fn connect(&mut self, a: IfaceId, b: IfaceId, cfg: LinkCfg) -> LinkId {
        self.connect_asym(a, b, cfg.clone(), cfg)
    }

    /// Create a link with per-direction configuration (`ab` carries A→B).
    pub fn connect_asym(&mut self, a: IfaceId, b: IfaceId, ab: LinkCfg, ba: LinkCfg) -> LinkId {
        assert!(
            self.core.ifaces[a.0].link.is_none() && self.core.ifaces[b.0].link.is_none(),
            "interface already connected"
        );
        let id = LinkId(self.core.links.len());
        self.core.links.push(LinkState {
            a,
            b,
            dirs: [LinkDirState::new(ab), LinkDirState::new(ba)],
        });
        self.core.ifaces[a.0].link = Some((id, Dir::AtoB));
        self.core.ifaces[b.0].link = Some((id, Dir::BtoA));
        id
    }

    /// Register a script hook to run at `at`. The hook receives the core
    /// and may change loss models, flip interfaces, or schedule more work.
    pub fn at(&mut self, at: SimTime, hook: impl FnMut(&mut SimCore) + 'static) {
        let idx = self.scripts.len();
        self.scripts.push(Box::new(hook));
        self.core.push(at, SimEvent::Script(idx));
    }

    /// Install a dynamics script — a [`DynamicsScript`] or anything that
    /// compiles into one, e.g. a [`crate::netem::NetemScript`]. Every
    /// entry becomes a calendar-queue event at its scheduled time.
    ///
    /// The ordering policy decides what happens to out-of-order scripts:
    /// [`InstallPolicy::Sort`] stably sorts entries by time first (ties
    /// keep the order they were added in, a deterministic normalization),
    /// while [`InstallPolicy::Strict`] rejects any script whose entries
    /// are not already in non-decreasing time order. Call before running;
    /// an entry scheduled in the simulated past is a scenario bug (debug
    /// assert, same rule as any other event).
    pub fn install(
        &mut self,
        script: impl Into<DynamicsScript>,
        policy: InstallPolicy,
    ) -> Result<(), OutOfOrderError> {
        let script = script.into();
        if policy == InstallPolicy::Strict {
            script.validate()?;
        }
        for entry in script.into_ordered() {
            let idx = self.dynamics.len();
            self.dynamics.push(Some(entry.action));
            self.core.push(entry.at, SimEvent::Dyn(idx));
        }
        Ok(())
    }

    /// Install a [`DynamicsScript`], stably sorting out-of-order entries.
    #[deprecated(note = "use Simulator::install(script, InstallPolicy::Sort)")]
    pub fn install_dynamics(&mut self, script: DynamicsScript) {
        self.install(script, InstallPolicy::Sort)
            .expect("Sort policy never rejects");
    }

    /// Install a [`DynamicsScript`], rejecting out-of-order entries.
    #[deprecated(note = "use Simulator::install(script, InstallPolicy::Strict)")]
    pub fn install_dynamics_strict(
        &mut self,
        script: DynamicsScript,
    ) -> Result<(), OutOfOrderError> {
        self.install(script, InstallPolicy::Strict)
    }

    /// Number of nodes in the simulation.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// All node ids, in creation order (for post-run sweeps over every
    /// node, e.g. the oracle's host-level integrity collection).
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> {
        (0..self.nodes.len()).map(NodeId)
    }

    /// Immutable access to a node (for downcasting after a run).
    pub fn node(&self, id: NodeId) -> &dyn Node {
        self.nodes[id.0].as_ref()
    }

    /// Mutable access to a node.
    pub fn node_mut(&mut self, id: NodeId) -> &mut dyn Node {
        self.nodes[id.0].as_mut()
    }

    /// Run until the queue drains or `horizon` is reached.
    pub fn run_until(&mut self, horizon: SimTime) -> RunSummary {
        self.run_inner(Some(horizon))
    }

    /// Run until the queue drains (or a stop is requested).
    pub fn run(&mut self) -> RunSummary {
        self.run_inner(None)
    }

    fn run_inner(&mut self, horizon: Option<SimTime>) -> RunSummary {
        if !self.started {
            self.started = true;
            for i in 0..self.nodes.len() {
                self.core.push(SimTime::ZERO, SimEvent::Start(NodeId(i)));
            }
        }
        let mut processed = 0u64;
        loop {
            if self.core.stop_requested {
                return self.finish(StopReason::Requested, processed);
            }
            if processed >= self.core.event_limit {
                return self.finish(StopReason::EventLimit, processed);
            }
            let Some(head_at) = self.core.queue.peek_time() else {
                return self.finish(StopReason::Idle, processed);
            };
            if let Some(h) = horizon {
                if head_at > h {
                    self.core.now = h;
                    return self.finish(StopReason::Horizon, processed);
                }
            }
            let Scheduled { at, ev, .. } = self.core.queue.pop().unwrap();
            debug_assert!(at >= self.core.now, "time went backwards");
            self.core.now = at;
            processed += 1;
            self.dispatch(ev);
        }
    }

    fn finish(&mut self, reason: StopReason, events: u64) -> RunSummary {
        RunSummary {
            reason,
            ended_at: self.core.now,
            events,
            peak_queue: self.core.peak_queue_depth(),
        }
    }

    fn dispatch(&mut self, ev: SimEvent) {
        match ev {
            SimEvent::Start(node) => {
                let mut ctx = Ctx {
                    core: &mut self.core,
                    node,
                };
                self.nodes[node.0].on_start(&mut ctx);
            }
            SimEvent::Timer {
                node,
                token,
                handle,
            } => {
                // A stale generation means the timer was cancelled: the
                // entry still counted as a processed event (identical
                // accounting to an uncancellable timer firing into a
                // no-op), but the node is not invoked.
                if !self.core.release_timer(handle) {
                    return;
                }
                let mut ctx = Ctx {
                    core: &mut self.core,
                    node,
                };
                self.nodes[node.0].on_timer(&mut ctx, token);
            }
            SimEvent::TxDone { link, dir, pkt } => {
                // Serializer is free again; decide the packet's fate.
                self.core.links[link.0].dir_mut(dir).busy = false;
                let now = self.core.now;
                let (p, delay, reorder) = {
                    let st = self.core.links[link.0].dir_ref(dir);
                    (st.cfg.loss.ratio_at(now), st.cfg.delay, st.cfg.reorder)
                };
                // Impairment trials run loss → reorder; each is guarded so
                // a disabled impairment performs no RNG draw (existing
                // per-seed trajectories stay bit-identical).
                let lost = p > 0.0 && self.core.rng.chance(p);
                if lost {
                    self.core.links[link.0].dir_mut(dir).stats.dropped_random += 1;
                    self.core.trace_event(
                        TraceKind::Drop {
                            link: Some(link),
                            reason: DropReason::Random,
                        },
                        &pkt,
                    );
                } else {
                    let held = reorder.pct > 0.0 && self.core.rng.chance(reorder.pct);
                    let prop = if held {
                        self.core.links[link.0].dir_mut(dir).stats.reordered += 1;
                        delay + reorder.hold
                    } else {
                        delay
                    };
                    self.core
                        .push(now + prop, SimEvent::Deliver { link, dir, pkt });
                }
                self.core.start_tx(link, dir);
            }
            SimEvent::Deliver { link, dir, pkt } => {
                let iface_id = self.core.links[link.0].sink_iface(dir);
                let iface = &self.core.ifaces[iface_id.0];
                let node = iface.node;
                if !iface.up {
                    self.core.trace_event(
                        TraceKind::Drop {
                            link: Some(link),
                            reason: DropReason::IfaceDown,
                        },
                        &pkt,
                    );
                    return;
                }
                {
                    let st = self.core.links[link.0].dir_mut(dir);
                    st.stats.delivered += 1;
                    st.stats.bytes_delivered += pkt.wire_len() as u64;
                }
                self.core.trace_event(
                    TraceKind::Deliver {
                        link,
                        iface: iface_id,
                        node,
                    },
                    &pkt,
                );
                let mut ctx = Ctx {
                    core: &mut self.core,
                    node,
                };
                self.nodes[node.0].on_packet(&mut ctx, iface_id, pkt);
            }
            SimEvent::IfaceAdmin { iface, up } => {
                self.apply_iface_admin(iface, up);
            }
            SimEvent::Script(idx) => {
                (self.scripts[idx])(&mut self.core);
            }
            SimEvent::Dyn(idx) => {
                let action = self.dynamics[idx]
                    .take()
                    .expect("dynamics action dispatched twice");
                self.apply_dyn(action);
            }
        }
    }

    /// Flip an interface's administrative state and notify its owner —
    /// shared by [`SimEvent::IfaceAdmin`] and dynamics actions.
    fn apply_iface_admin(&mut self, iface: IfaceId, up: bool) {
        let node = self.core.ifaces[iface.0].node;
        self.core.ifaces[iface.0].up = up;
        let mut ctx = Ctx {
            core: &mut self.core,
            node,
        };
        self.nodes[node.0].on_iface_admin(&mut ctx, iface, up);
    }

    /// Execute one dynamics action.
    fn apply_dyn(&mut self, action: DynAction) {
        let both = [Dir::AtoB, Dir::BtoA];
        let dirs = |dir: Option<Dir>| {
            both.into_iter()
                .filter(move |&d| dir.is_none_or(|x| x == d))
        };
        match action {
            DynAction::SetRate {
                link,
                dir,
                rate_bps,
            } => {
                for d in dirs(dir) {
                    self.core.set_rate(link, d, rate_bps);
                }
            }
            DynAction::SetDelay { link, dir, delay } => {
                for d in dirs(dir) {
                    self.core.set_delay(link, d, delay);
                }
            }
            DynAction::SetQueue {
                link,
                dir,
                pkts,
                evict,
            } => {
                for d in dirs(dir) {
                    self.core.set_queue_policy(link, d, pkts, evict);
                }
            }
            DynAction::SetLoss { link, dir, loss } => match dir {
                Some(d) => self.core.set_loss(link, d, loss),
                None => self.core.set_loss_both(link, loss),
            },
            DynAction::SetReorder {
                link,
                dir,
                pct,
                hold,
            } => {
                for d in dirs(dir) {
                    self.core.set_reorder(link, d, pct, hold);
                }
            }
            DynAction::SetDuplicate { link, dir, pct } => {
                for d in dirs(dir) {
                    self.core.set_duplicate(link, d, pct);
                }
            }
            DynAction::LinkAdmin { link, up } => {
                let (a, b) = self.core.link_ifaces(link);
                self.apply_iface_admin(a, up);
                self.apply_iface_admin(b, up);
            }
            DynAction::IfaceAdmin { iface, up } => {
                self.apply_iface_admin(iface, up);
            }
            DynAction::Command { node, cmd } => {
                let mut ctx = Ctx {
                    core: &mut self.core,
                    node,
                };
                self.nodes[node.0].on_command(&mut ctx, &cmd);
            }
            DynAction::Stop => self.core.request_stop(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::Packet;
    use bytes::Bytes;
    use std::any::Any;

    /// Echoes every packet back out the interface it arrived on, and counts.
    struct Echo {
        seen: usize,
    }
    impl Node for Echo {
        fn on_packet(&mut self, ctx: &mut Ctx<'_>, iface: IfaceId, pkt: Packet) {
            self.seen += 1;
            if self.seen < 3 {
                let back = Packet::tcp(pkt.dst, pkt.src, pkt.payload.clone());
                ctx.send(iface, back);
            }
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    /// Sends one packet at start, counts echoes.
    struct Pinger {
        iface: Option<IfaceId>,
        peer: Addr,
        got: usize,
        timer_fired: Vec<u64>,
    }
    impl Node for Pinger {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            let (id, iface) = ctx.my_ifaces().next().unwrap();
            let addr = iface.addr;
            self.iface = Some(id);
            let pkt = Packet::tcp(addr, self.peer, Bytes::from_static(&[0, 1, 0, 2]));
            ctx.send(id, pkt);
            ctx.set_timer_after(Duration::from_millis(500), 7);
        }
        fn on_packet(&mut self, ctx: &mut Ctx<'_>, iface: IfaceId, pkt: Packet) {
            self.got += 1;
            let back = Packet::tcp(pkt.dst, pkt.src, pkt.payload.clone());
            ctx.send(iface, back);
        }
        fn on_timer(&mut self, _ctx: &mut Ctx<'_>, token: u64) {
            self.timer_fired.push(token);
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    fn two_hosts(seed: u64, cfg: LinkCfg) -> (Simulator, NodeId, NodeId) {
        let mut sim = Simulator::new(seed);
        let a = sim.add_node(Box::new(Pinger {
            iface: None,
            peer: Addr::new(10, 0, 0, 2),
            got: 0,
            timer_fired: vec![],
        }));
        let b = sim.add_node(Box::new(Echo { seen: 0 }));
        let ia = sim.add_iface(a, Addr::new(10, 0, 0, 1), "eth0");
        let ib = sim.add_iface(b, Addr::new(10, 0, 0, 2), "eth0");
        sim.connect(ia, ib, cfg);
        (sim, a, b)
    }

    #[test]
    fn ping_pong_round_trips() {
        let (mut sim, a, b) = two_hosts(1, LinkCfg::mbps_ms(10, 5));
        let summary = sim.run();
        assert_eq!(summary.reason, StopReason::Idle);
        let echo = sim.node(b).as_any().downcast_ref::<Echo>().unwrap();
        let ping = sim.node(a).as_any().downcast_ref::<Pinger>().unwrap();
        // Echo replies twice (seen 1,2 reply; 3rd stops), pinger bounces each.
        assert_eq!(echo.seen, 3);
        assert_eq!(ping.got, 2);
        assert_eq!(ping.timer_fired, vec![7]);
        assert!(summary.peak_queue >= 2, "start events queued together");
    }

    #[test]
    fn delivery_takes_delay_plus_serialization() {
        let (mut sim, _a, _b) = two_hosts(1, LinkCfg::mbps_ms(1, 10));
        // Packet: 20B IP + 4B payload = 24B = 192 bits at 1 Mb/s = 192 us.
        // One-way = 192us + 10ms.
        let summary = sim.run_until(SimTime::from_secs(10));
        // Last event: echo's third receipt (no reply): 3 one-way trips.
        // Ping at 0 -> deliver t1 = 10.192ms; reply -> 20.384; reply -> 30.576.
        assert!(summary.ended_at >= SimTime::from_millis(30));
    }

    #[test]
    fn full_loss_blocks_delivery() {
        let (mut sim, a, _b) =
            two_hosts(2, LinkCfg::mbps_ms(10, 5).loss(LossModel::Bernoulli(1.0)));
        sim.run();
        let ping = sim.node(a).as_any().downcast_ref::<Pinger>().unwrap();
        assert_eq!(ping.got, 0);
    }

    #[test]
    fn iface_down_drops_delivery() {
        let (mut sim, a, _b) = two_hosts(3, LinkCfg::mbps_ms(10, 5));
        // Take B's interface down immediately; A's ping must vanish.
        sim.core
            .schedule_iface_admin(SimTime::ZERO, IfaceId(1), false);
        sim.run();
        let ping = sim.node(a).as_any().downcast_ref::<Pinger>().unwrap();
        assert_eq!(ping.got, 0);
    }

    #[test]
    fn scripts_run_and_can_change_loss() {
        let (mut sim, _a, _b) = two_hosts(4, LinkCfg::mbps_ms(10, 5));
        sim.at(SimTime::from_millis(1), |core| {
            core.set_loss_both(LinkId(0), LossModel::Bernoulli(1.0));
        });
        let summary = sim.run();
        assert_eq!(summary.reason, StopReason::Idle);
    }

    #[test]
    fn determinism_same_seed_same_trajectory() {
        let run = |seed| {
            let (mut sim, a, _b) = two_hosts(
                seed,
                LinkCfg::mbps_ms(10, 5).loss(LossModel::Bernoulli(0.5)),
            );
            let s = sim.run();
            let ping = sim.node(a).as_any().downcast_ref::<Pinger>().unwrap();
            (s.events, ping.got)
        };
        assert_eq!(run(7), run(7));
    }

    #[test]
    fn horizon_stops_run() {
        let (mut sim, _a, _b) = two_hosts(5, LinkCfg::mbps_ms(1, 500));
        let s = sim.run_until(SimTime::from_millis(1));
        assert_eq!(s.reason, StopReason::Horizon);
        assert_eq!(s.ended_at, SimTime::from_millis(1));
    }

    #[test]
    #[should_panic(expected = "foreign iface")]
    fn sending_from_foreign_iface_panics() {
        struct Bad;
        impl Node for Bad {
            fn on_start(&mut self, ctx: &mut Ctx<'_>) {
                // Interface 0 belongs to someone else.
                ctx.send(
                    IfaceId(0),
                    Packet::tcp(Addr::UNSPECIFIED, Addr::UNSPECIFIED, Bytes::new()),
                );
            }
            fn on_packet(&mut self, _: &mut Ctx<'_>, _: IfaceId, _: Packet) {}
            fn as_any(&self) -> &dyn Any {
                self
            }
            fn as_any_mut(&mut self) -> &mut dyn Any {
                self
            }
        }
        let mut sim = Simulator::new(0);
        let other = sim.add_node(Box::new(Echo { seen: 0 }));
        let _iface_of_other = sim.add_iface(other, Addr::new(1, 1, 1, 1), "eth0");
        sim.add_node(Box::new(Bad));
        sim.run();
    }

    /// A node that arms a timer, rearms (cancelling the old one) on each
    /// firing, and records what actually fires.
    struct Rearm {
        pending: Option<TimerHandle>,
        rearms_left: u32,
        fired: Vec<u64>,
        cancel_results: Vec<bool>,
    }
    impl Node for Rearm {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            self.pending = Some(ctx.set_timer_after(Duration::from_millis(100), 0));
            // Immediately rearm a few times, like an RTO restarted per ACK.
            for i in 1..=self.rearms_left as u64 {
                let old = self.pending.take().unwrap();
                self.cancel_results.push(ctx.cancel_timer(old));
                self.pending = Some(ctx.set_timer_after(Duration::from_millis(100 + i), i));
            }
        }
        fn on_timer(&mut self, _ctx: &mut Ctx<'_>, token: u64) {
            self.fired.push(token);
        }
        fn on_packet(&mut self, _: &mut Ctx<'_>, _: IfaceId, _: Packet) {}
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    #[test]
    fn cancelled_timers_never_fire_but_still_count_as_events() {
        let mut sim = Simulator::new(9);
        let n = sim.add_node(Box::new(Rearm {
            pending: None,
            rearms_left: 5,
            fired: vec![],
            cancel_results: vec![],
        }));
        let summary = sim.run();
        let node = sim.node(n).as_any().downcast_ref::<Rearm>().unwrap();
        assert_eq!(node.fired, vec![5], "only the live timer fires");
        assert_eq!(node.cancel_results, vec![true; 5]);
        // Start + 6 timer entries (5 cancelled, 1 live) all count.
        assert_eq!(summary.events, 7);
        assert_eq!(sim.core.live_timer_count(), 0);
    }

    #[test]
    fn cancelling_twice_and_after_fire_is_noop() {
        struct TwoCancels {
            results: Vec<bool>,
        }
        impl Node for TwoCancels {
            fn on_start(&mut self, ctx: &mut Ctx<'_>) {
                let h = ctx.set_timer_after(Duration::from_millis(1), 0);
                self.results.push(ctx.cancel_timer(h));
                self.results.push(ctx.cancel_timer(h));
                // A fresh timer re-uses the slot; the stale handle must not
                // be able to cancel it.
                let h2 = ctx.set_timer_after(Duration::from_millis(2), 1);
                assert_ne!(h2, h);
                self.results.push(ctx.cancel_timer(h));
            }
            fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
                assert_eq!(token, 1, "only the second timer is live");
                // Cancelling after firing is a no-op too.
                self.results
                    .push(ctx.cancel_timer(TimerHandle { slot: 0, gen: 0 }));
            }
            fn on_packet(&mut self, _: &mut Ctx<'_>, _: IfaceId, _: Packet) {}
            fn as_any(&self) -> &dyn Any {
                self
            }
            fn as_any_mut(&mut self) -> &mut dyn Any {
                self
            }
        }
        let mut sim = Simulator::new(0);
        let n = sim.add_node(Box::new(TwoCancels { results: vec![] }));
        sim.run();
        let node = sim.node(n).as_any().downcast_ref::<TwoCancels>().unwrap();
        assert_eq!(node.results, vec![true, false, false, false]);
    }

    /// Rearm-heavy workload spread over simulated time: the queue must
    /// track the live window, not the total number of rearms.
    struct HeavyRearm {
        pending: Option<TimerHandle>,
        rearms: u64,
    }
    impl HeavyRearm {
        const RTO: Duration = Duration::from_millis(200);
        const TICK: Duration = Duration::from_millis(1);
    }
    impl Node for HeavyRearm {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            ctx.set_timer_after(Self::TICK, 1);
            self.pending = Some(ctx.set_timer_after(Self::RTO, 0));
        }
        fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
            if token != 1 {
                return; // the "RTO" fired (end of workload)
            }
            // Rearm the RTO, as a new ACK would.
            if let Some(old) = self.pending.take() {
                ctx.cancel_timer(old);
            }
            self.pending = Some(ctx.set_timer_after(Self::RTO, 0));
            self.rearms += 1;
            if self.rearms < 5_000 {
                ctx.set_timer_after(Self::TICK, 1);
            }
        }
        fn on_packet(&mut self, _: &mut Ctx<'_>, _: IfaceId, _: Packet) {}
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    #[test]
    fn dynamics_set_loss_blocks_delivery_like_inline_scripts() {
        use crate::dynamics::{DynAction, DynamicsScript};
        let (mut sim, a, _b) = two_hosts(4, LinkCfg::mbps_ms(10, 5));
        sim.install(
            DynamicsScript::new().at(
                SimTime::ZERO,
                DynAction::SetLoss {
                    link: LinkId(0),
                    dir: None,
                    loss: LossModel::Bernoulli(1.0),
                },
            ),
            InstallPolicy::Sort,
        )
        .unwrap();
        sim.run();
        let ping = sim.node(a).as_any().downcast_ref::<Pinger>().unwrap();
        assert_eq!(ping.got, 0, "full loss installed at t=0 blocks echoes");
    }

    #[test]
    fn dynamics_rate_change_applies_to_later_transmissions() {
        use crate::dynamics::{DynAction, DynamicsScript};
        // Baseline at 1 kb/s (192 ms serialization per 24-byte packet,
        // dominating the run) vs a script that jumps to 100 Mb/s at t=0:
        // serialization shrinks, so the whole exchange ends earlier.
        let run = |script: Option<DynamicsScript>| {
            let (mut sim, _a, _b) = two_hosts(1, LinkCfg::new(1_000, Duration::from_millis(10)));
            if let Some(s) = script {
                sim.install(s, InstallPolicy::Sort).unwrap();
            }
            sim.run().ended_at
        };
        let slow = run(None);
        let fast = run(Some(DynamicsScript::new().at(
            SimTime::ZERO,
            DynAction::SetRate {
                link: LinkId(0),
                dir: None,
                rate_bps: 100_000_000,
            },
        )));
        assert!(
            fast < slow,
            "rate bump must shorten the run: {fast} vs {slow}"
        );
    }

    #[test]
    fn dynamics_link_admin_downs_both_ends_and_notifies() {
        use crate::dynamics::{DynAction, DynamicsScript};
        let (mut sim, a, _b) = two_hosts(3, LinkCfg::mbps_ms(10, 5));
        sim.install(
            DynamicsScript::new().at(
                SimTime::ZERO,
                DynAction::LinkAdmin {
                    link: LinkId(0),
                    up: false,
                },
            ),
            InstallPolicy::Sort,
        )
        .unwrap();
        sim.run();
        let ping = sim.node(a).as_any().downcast_ref::<Pinger>().unwrap();
        assert_eq!(ping.got, 0, "downed link carries nothing");
        assert!(!sim.core.iface(IfaceId(0)).up);
        assert!(!sim.core.iface(IfaceId(1)).up);
    }

    #[test]
    fn dynamics_stop_action_requests_stop() {
        use crate::dynamics::{DynAction, DynamicsScript};
        let (mut sim, _a, _b) = two_hosts(5, LinkCfg::mbps_ms(1, 500));
        sim.install(
            DynamicsScript::new().at(SimTime::from_millis(1), DynAction::Stop),
            InstallPolicy::Sort,
        )
        .unwrap();
        let s = sim.run();
        assert_eq!(s.reason, StopReason::Requested);
        assert_eq!(s.ended_at, SimTime::from_millis(1));
    }

    #[test]
    fn dynamics_out_of_order_scripts_sort_or_reject_deterministically() {
        use crate::dynamics::{DynAction, DynamicsScript};
        let script = || {
            DynamicsScript::new()
                .at(SimTime::from_millis(2), DynAction::Stop)
                .at(
                    SimTime::from_millis(1),
                    DynAction::SetLoss {
                        link: LinkId(0),
                        dir: None,
                        loss: LossModel::Bernoulli(1.0),
                    },
                )
        };
        // Strict install rejects…
        let (mut sim, ..) = two_hosts(6, LinkCfg::mbps_ms(10, 5));
        let err = sim.install(script(), InstallPolicy::Strict).unwrap_err();
        assert_eq!(err.index, 1);
        // …lenient install sorts; two runs of the sorted script agree
        // bit-for-bit with each other.
        let run = |seed| {
            let (mut sim, a, _b) = two_hosts(seed, LinkCfg::mbps_ms(10, 5));
            sim.install(script(), InstallPolicy::Sort).unwrap();
            let s = sim.run();
            let ping = sim.node(a).as_any().downcast_ref::<Pinger>().unwrap();
            (s.events, s.ended_at, ping.got)
        };
        assert_eq!(run(7), run(7));
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_install_shims_still_work() {
        use crate::dynamics::{DynAction, DynamicsScript};
        let script = || DynamicsScript::new().at(SimTime::from_millis(1), DynAction::Stop);
        let (mut sim, ..) = two_hosts(8, LinkCfg::mbps_ms(10, 5));
        sim.install_dynamics(script());
        assert_eq!(sim.run().reason, StopReason::Requested);
        let (mut sim, ..) = two_hosts(8, LinkCfg::mbps_ms(10, 5));
        sim.install_dynamics_strict(script()).unwrap();
        assert_eq!(sim.run().reason, StopReason::Requested);
    }

    #[test]
    fn queue_shrink_keep_does_not_evict_dropnewest_does() {
        use crate::addr::Addr;
        use bytes::Bytes;
        // Build a core with one link and stuff its queue directly.
        let (mut sim, ..) = two_hosts(9, LinkCfg::mbps_ms(10, 5).queue(10));
        let mk = || Packet::tcp(Addr::new(10, 0, 0, 1), Addr::new(10, 0, 0, 2), Bytes::new());
        for _ in 0..6 {
            let st = sim.core.links[0].dir_mut(Dir::AtoB);
            st.admit(mk());
        }
        // Default policy: shrinking below occupancy keeps queued packets.
        sim.core.set_queue(LinkId(0), Dir::AtoB, 2);
        {
            let st = sim.core.links[0].dir_ref(Dir::AtoB);
            assert_eq!(st.queue.len(), 6, "Keep never evicts");
            assert_eq!(st.stats.dropped_evicted, 0);
            assert!(!st.has_room(), "new bound applies to admissions");
        }
        // Explicit DropNewest evicts from the tail down to the new bound.
        sim.core
            .set_queue_policy(LinkId(0), Dir::AtoB, 3, Eviction::DropNewest);
        let st = sim.core.links[0].dir_ref(Dir::AtoB);
        assert_eq!(st.queue.len(), 3);
        assert_eq!(st.stats.dropped_evicted, 3);
    }

    #[test]
    fn duplicate_reenqueues_and_reorder_holds_back() {
        // 100 % duplication: the single ping is serialized twice and the
        // far end sees two copies; link stats stay conserved.
        let (mut sim, _a, b) = two_hosts(12, LinkCfg::mbps_ms(10, 5).duplicate(1.0));
        sim.run();
        let st = sim.core.link_stats(LinkId(0), Dir::AtoB);
        assert!(st.duplicated > 0, "every tx duplicated once");
        assert_eq!(st.enqueued, st.delivered, "copy re-enqueues, so conserved");
        let echo = sim.node(b).as_any().downcast_ref::<Echo>().unwrap();
        assert!(echo.seen >= 2, "far end saw the duplicate");

        // 100 % reorder with a hold long enough to outlast the Pinger's
        // 500 ms watchdog timer: delivery shifts by the hold, so the run
        // ends later and the reordered counter ticks.
        let base = {
            let (mut sim, ..) = two_hosts(13, LinkCfg::mbps_ms(10, 5));
            sim.run().ended_at
        };
        let (mut sim, ..) = two_hosts(
            13,
            LinkCfg::mbps_ms(10, 5).reorder(1.0, Duration::from_millis(600)),
        );
        let held = sim.run().ended_at;
        assert!(
            held > base,
            "hold-back delays the exchange: {held} vs {base}"
        );
        assert!(sim.core.link_stats(LinkId(0), Dir::AtoB).reordered > 0);
    }

    #[test]
    fn disabled_impairments_draw_no_randomness() {
        // A run with reorder/duplicate configured at probability zero is
        // bit-identical to one without the fields touched at all — the
        // guards must not consume RNG draws.
        let run = |cfg: LinkCfg| {
            let (mut sim, a, _b) = two_hosts(14, cfg);
            let s = sim.run();
            let ping = sim.node(a).as_any().downcast_ref::<Pinger>().unwrap();
            (s.events, s.ended_at, ping.got)
        };
        let plain = run(LinkCfg::mbps_ms(10, 5).loss(LossModel::Bernoulli(0.2)));
        let zeroed = run(LinkCfg::mbps_ms(10, 5)
            .loss(LossModel::Bernoulli(0.2))
            .reorder(0.0, Duration::from_millis(30))
            .duplicate(0.0));
        assert_eq!(plain, zeroed);
    }

    #[test]
    fn rearm_heavy_workload_keeps_queue_bounded() {
        let mut sim = Simulator::new(11);
        sim.add_node(Box::new(HeavyRearm {
            pending: None,
            rearms: 0,
        }));
        let summary = sim.run();
        // 5000 rearms happened, but the queue never holds more than the
        // ~200 ms window of not-yet-expired cancelled entries plus the two
        // live timers.
        let window = (HeavyRearm::RTO.as_millis() / HeavyRearm::TICK.as_millis()) as usize;
        assert!(summary.reason == StopReason::Idle);
        assert!(
            summary.peak_queue <= window + 8,
            "peak queue {} must track the live window (~{window}), not \
             the 5000-rearm history",
            summary.peak_queue
        );
        assert_eq!(sim.core.live_timer_count(), 0);
    }
}
