//! Packet tracing.
//!
//! A [`TraceSink`] observes every notable packet event in the simulation —
//! the moral equivalent of running `tcpdump` on every link at once. The
//! bench harness uses sinks to measure things the paper measured from
//! packet captures (e.g. the delay between the `MP_CAPABLE` SYN and the
//! `MP_JOIN` SYN in Fig. 3).

use crate::link::{Dir, DropReason, LinkId};
use crate::node::{IfaceId, NodeId};
use crate::packet::{Packet, PktSummary};
use crate::time::SimTime;

/// What happened to a packet.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceKind {
    /// A node handed the packet to an interface for transmission.
    Send {
        /// Sending node.
        node: NodeId,
        /// Interface the packet was sent from.
        iface: IfaceId,
    },
    /// The packet was accepted into a link queue.
    Enqueue {
        /// Link involved.
        link: LinkId,
        /// Direction of travel.
        dir: Dir,
    },
    /// The packet started serialization onto the wire.
    TxStart {
        /// Link involved.
        link: LinkId,
        /// Direction of travel.
        dir: Dir,
    },
    /// The packet was dropped.
    Drop {
        /// Link involved, when the drop happened on a link.
        link: Option<LinkId>,
        /// Why it was dropped.
        reason: DropReason,
    },
    /// The packet arrived at the far-end interface and was handed to the
    /// owning node.
    Deliver {
        /// Link it arrived over.
        link: LinkId,
        /// Receiving interface.
        iface: IfaceId,
        /// Receiving node.
        node: NodeId,
    },
}

/// A single trace record. Borrowed: sinks copy out what they need.
#[derive(Debug)]
pub struct TraceEvent<'a> {
    /// When it happened.
    pub at: SimTime,
    /// What happened.
    pub kind: TraceKind,
    /// The packet involved.
    pub pkt: &'a Packet,
}

/// Observer of packet events.
///
/// Sinks are `Send` so that scenario-builder closures that construct a
/// sink (e.g. the `bench::sweep` job matrix) can be dispatched to worker
/// threads. Each sink is still *used* by exactly one thread: the world
/// that owns it is thread-confined (see the crate docs on threading).
pub trait TraceSink: Send {
    /// Record one event. Called synchronously from the simulation loop;
    /// implementations should be cheap.
    fn record(&mut self, ev: &TraceEvent<'_>);

    /// Downcast support so callers can take their sink back after a run.
    fn as_any(&self) -> &dyn std::any::Any;

    /// Mutable downcast support.
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any;
}

/// A sink that retains a bounded number of events as structured
/// [`PktSummary`] rows — no string formatting happens while the simulation
/// runs; render rows with [`CollectorSink::render`] (or `Display` on each
/// summary) after the run. Convenient for tests; real experiments use
/// purpose-built sinks.
#[derive(Debug, Default)]
pub struct CollectorSink {
    /// Collected `(time, kind, packet summary)` rows.
    pub events: Vec<(SimTime, TraceKind, PktSummary)>,
    /// Maximum rows kept (0 = unlimited).
    pub cap: usize,
}

impl CollectorSink {
    /// A collector keeping at most `cap` events (0 = unlimited).
    pub fn with_cap(cap: usize) -> Self {
        CollectorSink {
            events: Vec::new(),
            cap,
        }
    }

    /// Count of events matching a predicate on the kind.
    pub fn count_kind(&self, f: impl Fn(&TraceKind) -> bool) -> usize {
        self.events.iter().filter(|(_, k, _)| f(k)).count()
    }

    /// Render the collected rows as `tcpdump`-style lines (read-out time
    /// is the only place strings are built).
    pub fn render(&self) -> Vec<String> {
        self.events
            .iter()
            .map(|(at, kind, pkt)| format!("{at} {kind:?} {pkt}"))
            .collect()
    }
}

impl TraceSink for CollectorSink {
    fn record(&mut self, ev: &TraceEvent<'_>) {
        if self.cap != 0 && self.events.len() >= self.cap {
            return;
        }
        self.events.push((ev.at, ev.kind, ev.pkt.summary()));
    }
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::Addr;
    use bytes::Bytes;

    #[test]
    fn collector_caps() {
        let mut c = CollectorSink::with_cap(2);
        let pkt = Packet::tcp(Addr::new(1, 1, 1, 1), Addr::new(2, 2, 2, 2), Bytes::new());
        for i in 0..5 {
            c.record(&TraceEvent {
                at: SimTime::from_millis(i),
                kind: TraceKind::Enqueue {
                    link: LinkId(0),
                    dir: Dir::AtoB,
                },
                pkt: &pkt,
            });
        }
        assert_eq!(c.events.len(), 2);
        assert_eq!(c.count_kind(|k| matches!(k, TraceKind::Enqueue { .. })), 2);
        // Rendering happens only at read-out, and carries the packet line.
        let lines = c.render();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("1.1.1.1:0 > 2.2.2.2:0 proto=6 len=20"));
    }
}
