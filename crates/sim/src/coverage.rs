//! Feature-coverage bitmap for coverage-guided scenario fuzzing.
//!
//! [`Coverage`] is a fixed 256-bit set. The low 64 bits (the *wire* range)
//! are reserved for features the [`crate::Oracle`] observes directly on
//! trace events — TCP flag shapes, MPTCP option subtypes, drop reasons —
//! and are set by the oracle itself as a pure observer (no RNG, no state
//! the simulation can see, so instrumentation never perturbs a
//! trajectory). Bits 64..256 belong to whoever assembles the final bitmap
//! for a run (the bench fuzzer folds in case shape, middlebox counters,
//! connection stats and the run outcome after the world has stopped).
//!
//! The container is deliberately dumb: set/test/count/union and a
//! compact hex rendering. What makes a *feature* is a convention between
//! the instrumented code and the fuzzer's scheduler — see the `wire`
//! constants here and the bench-side constants in `smapp-bench`.

/// Number of 64-bit words in a [`Coverage`] bitmap.
pub const COVERAGE_WORDS: usize = 4;

/// Total number of feature bits a [`Coverage`] bitmap can hold.
pub const COVERAGE_BITS: u32 = (COVERAGE_WORDS as u32) * 64;

/// A 256-bit feature bitmap. Cheap to copy, cheap to union, and
/// deterministic to render — two runs with the same seed must produce
/// byte-identical bitmaps.
#[derive(Clone, Copy, PartialEq, Eq, Default, Hash)]
pub struct Coverage {
    /// The raw words, least-significant bit = feature 0.
    pub words: [u64; COVERAGE_WORDS],
}

impl Coverage {
    /// The empty bitmap.
    pub const fn new() -> Self {
        Coverage {
            words: [0; COVERAGE_WORDS],
        }
    }

    /// Set feature `bit` (no-op when out of range — callers may derive
    /// bits from open-ended enums).
    #[inline]
    pub fn set(&mut self, bit: u32) {
        if bit < COVERAGE_BITS {
            self.words[(bit / 64) as usize] |= 1u64 << (bit % 64);
        }
    }

    /// True when feature `bit` has been observed.
    #[inline]
    pub fn get(&self, bit: u32) -> bool {
        bit < COVERAGE_BITS && self.words[(bit / 64) as usize] & (1u64 << (bit % 64)) != 0
    }

    /// Number of distinct features observed.
    pub fn count(&self) -> u32 {
        self.words.iter().map(|w| w.count_ones()).sum()
    }

    /// Fold another bitmap into this one.
    pub fn union(&mut self, other: &Coverage) {
        for (a, b) in self.words.iter_mut().zip(other.words.iter()) {
            *a |= b;
        }
    }

    /// Number of features in `other` that this bitmap has not seen —
    /// the fuzzer's "is this case interesting" metric.
    pub fn new_bits(&self, other: &Coverage) -> u32 {
        self.words
            .iter()
            .zip(other.words.iter())
            .map(|(a, b)| (b & !a).count_ones())
            .sum()
    }

    /// True when no feature has been observed.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|w| *w == 0)
    }

    /// Iterate the set feature bits in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = u32> + '_ {
        (0..COVERAGE_BITS).filter(move |b| self.get(*b))
    }

    /// Compact fixed-width hex rendering (most-significant word first),
    /// stable across runs — suitable for golden files and report JSON.
    pub fn to_hex(&self) -> String {
        let mut s = String::with_capacity(COVERAGE_WORDS * 16);
        for w in self.words.iter().rev() {
            s.push_str(&format!("{w:016x}"));
        }
        s
    }
}

impl std::fmt::Debug for Coverage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Coverage({} bits: {})", self.count(), self.to_hex())
    }
}

/// Wire-range feature bits (0..64), set by the [`crate::Oracle`] while it
/// observes trace events. Grouped by what they witness; gaps are reserved.
pub mod wire {
    /// A plain SYN (no ACK) was sent.
    pub const SYN: u32 = 0;
    /// A SYN-ACK was sent.
    pub const SYN_ACK: u32 = 1;
    /// A FIN was sent.
    pub const FIN: u32 = 2;
    /// An RST was sent.
    pub const RST: u32 = 3;
    /// A pure ACK (no payload, no SYN/FIN/RST) was sent.
    pub const PURE_ACK: u32 = 4;
    /// A data-bearing segment was sent.
    pub const DATA: u32 = 5;
    /// A data segment carrying FIN was sent.
    pub const DATA_FIN: u32 = 6;
    /// A TCP segment with *no* options beyond the fixed header was sent
    /// (what an option-stripping middlebox leaves behind).
    pub const NO_OPTIONS: u32 = 7;

    /// MP_CAPABLE on an initial SYN.
    pub const MP_CAPABLE_SYN: u32 = 8;
    /// MP_CAPABLE on a non-SYN (third-ack / data echo) segment.
    pub const MP_CAPABLE_ACK: u32 = 9;
    /// MP_JOIN in any of its three lengths.
    pub const MP_JOIN: u32 = 10;
    /// DSS without a mapping (pure data-ack).
    pub const DSS_ACK_ONLY: u32 = 11;
    /// DSS carrying a mapping.
    pub const DSS_MAP: u32 = 12;
    /// Any other valid MPTCP subtype (ADD_ADDR .. MP_FASTCLOSE).
    pub const MP_OTHER: u32 = 13;

    /// A random (loss-model) drop consumed a transmission.
    pub const DROP_RANDOM: u32 = 16;
    /// A drop because the delivery interface was down.
    pub const DROP_IFACE_DOWN: u32 = 17;
    /// A queue-full (drop-tail) drop before admission.
    pub const DROP_QUEUE_FULL: u32 = 18;
    /// Any other drop reason.
    pub const DROP_OTHER: u32 = 19;

    /// An ICMP packet was sent.
    pub const ICMP: u32 = 24;
    /// At least one invariant violation was recorded.
    pub const VIOLATION: u32 = 25;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_count_roundtrip() {
        let mut c = Coverage::new();
        assert!(c.is_empty());
        c.set(0);
        c.set(63);
        c.set(64);
        c.set(255);
        c.set(256); // out of range: ignored
        c.set(9999);
        assert!(c.get(0) && c.get(63) && c.get(64) && c.get(255));
        assert!(!c.get(1) && !c.get(256));
        assert_eq!(c.count(), 4);
        assert_eq!(c.iter().collect::<Vec<_>>(), vec![0, 63, 64, 255]);
    }

    #[test]
    fn union_and_new_bits() {
        let mut a = Coverage::new();
        a.set(1);
        a.set(100);
        let mut b = Coverage::new();
        b.set(100);
        b.set(200);
        assert_eq!(a.new_bits(&b), 1);
        assert_eq!(b.new_bits(&a), 1);
        a.union(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.new_bits(&b), 0);
    }

    #[test]
    fn hex_is_stable_and_width_fixed() {
        let mut c = Coverage::new();
        c.set(4);
        let h = c.to_hex();
        assert_eq!(h.len(), COVERAGE_WORDS * 16);
        assert!(h.ends_with("10"));
        assert_eq!(h, c.to_hex());
    }
}
