//! Routers with longest-prefix-match forwarding and ECMP.
//!
//! A [`Router`] forwards packets between its interfaces. Each route maps a
//! destination prefix to one *or several* egress interfaces; with several,
//! the router picks one by hashing the packet's 5-tuple — flow-level
//! load-balancing exactly as described in §4.4 of the paper ("load-balancing
//! routers compute a hash over the four-tuple to select the path for each
//! flow"). The hash is salted per router so cascaded routers don't make
//! correlated choices.

use std::any::Any;

use crate::addr::{Addr, AddrPrefix, FlowKey};
use crate::dynamics::{strip_mptcp_options, NodeCommand};
use crate::hash::{FxHashMap, FxHashSet};
use crate::node::{IfaceId, Node};
use crate::packet::{Packet, PROTO_TCP};
use crate::rewrite;
use crate::world::Ctx;

/// One routing-table entry.
#[derive(Clone, Debug)]
pub struct Route {
    /// Destination prefix this entry covers.
    pub prefix: AddrPrefix,
    /// Candidate egress interfaces; >1 means ECMP across them.
    pub egress: Vec<IfaceId>,
}

/// A router node.
#[derive(Debug)]
pub struct Router {
    routes: Vec<Route>,
    /// Memoized longest-prefix-match result per destination address. With
    /// per-client routes (the fleet workload installs one /24 per client)
    /// the linear LPM scan would otherwise be an O(routes) cost on every
    /// forwarded packet. Purely a cache: it never changes which route wins,
    /// so trajectories are identical with or without it.
    lpm_cache: FxHashMap<Addr, Option<usize>>,
    salt: u64,
    /// When set, forwarded TCP segments have their MPTCP options (kind 30)
    /// removed — the protocol-normalizing middlebox interference that
    /// forces endpoints into plain-TCP fallback. Toggled by scenarios
    /// directly or via [`NodeCommand::StripMptcp`] in a dynamics script.
    pub strip_mptcp: bool,
    /// When set, forwarded TCP segments get NAT-style sequence/ack
    /// rewriting: each directed flow's sequence space shifts by a delta
    /// derived from the router salt and the flow key, and acknowledgments
    /// shift back by the reverse flow's delta — so both endpoints see a
    /// consistent (but shifted) conversation, exactly like an
    /// ISN-randomizing NAT. Toggled via [`NodeCommand::SeqNat`].
    pub seq_nat: bool,
    /// When set, eligible option-free data segments are split in two on
    /// the forwarding path (re-segmenting middlebox). Toggled via
    /// [`NodeCommand::SplitSegments`].
    pub split_segments: bool,
    /// When set, contiguous option-free data segments of a flow are
    /// coalesced LRO/GRO-style: one segment is briefly held back and
    /// merged with its successor (or flushed on a short timer). Toggled
    /// via [`NodeCommand::CoalesceSegments`].
    pub coalesce_segments: bool,
    /// Drop every n-th eligible pure ACK per directed flow (`0` = off).
    /// ACKs on flows involved in a FIN exchange are never thinned, so a
    /// close handshake always completes. Toggled via
    /// [`NodeCommand::AckThin`].
    pub ack_thin: u32,
    /// **Test-only** fault injection: when set, the split rewriter emits
    /// a structurally corrupt second half (see
    /// [`rewrite::split_segment`]). Exists so broken-build detection
    /// tests have a deterministic rewriter bug for the fuzzer to find.
    pub buggy_split: bool,
    /// MPTCP options removed while [`Router::strip_mptcp`] was on.
    pub options_stripped: u64,
    /// Segments whose sequence numbers were rewritten by the seq NAT.
    pub seq_rewritten: u64,
    /// Segments split in two by the re-segmenter.
    pub segments_split: u64,
    /// Segment pairs merged by the coalescer.
    pub segments_coalesced: u64,
    /// Pure ACKs dropped by the thinner.
    pub acks_thinned: u64,
    /// Packets forwarded, for reporting.
    pub forwarded: u64,
    /// Packets dropped for lack of a route.
    pub no_route: u64,
    /// Packets dropped because TTL reached zero.
    pub ttl_drops: u64,
    /// One held-back segment per flow awaiting a coalesce partner.
    pending: Vec<(FlowKey, PendingSeg)>,
    /// Directed flows on which this router forwarded a FIN (ack-thinning
    /// exemption state).
    fin_seen: FxHashSet<FlowKey>,
    /// Per-directed-flow pure-ACK counters for the thinner.
    ack_counters: FxHashMap<FlowKey, u32>,
    /// Timer-token generator for coalesce flush timers.
    next_flush_token: u64,
}

/// A segment held back by the coalescer, with the egress it was already
/// routed to and the flush-timer token guarding it.
#[derive(Debug)]
struct PendingSeg {
    pkt: Packet,
    egress: IfaceId,
    token: u64,
}

/// How long the coalescer holds a segment waiting for its successor.
const COALESCE_FLUSH: std::time::Duration = std::time::Duration::from_micros(200);

/// Salt-mixing constant separating seq-NAT deltas from ECMP hashing.
const SEQNAT_SALT: u64 = 0x5EA9_0A7D_EC0D_E5A1;

impl Router {
    /// A router with the given ECMP hash salt (use the router's index).
    pub fn new(salt: u64) -> Self {
        Router {
            routes: Vec::new(),
            lpm_cache: FxHashMap::default(),
            salt,
            strip_mptcp: false,
            seq_nat: false,
            split_segments: false,
            coalesce_segments: false,
            ack_thin: 0,
            buggy_split: false,
            options_stripped: 0,
            seq_rewritten: 0,
            segments_split: 0,
            segments_coalesced: 0,
            acks_thinned: 0,
            forwarded: 0,
            no_route: 0,
            ttl_drops: 0,
            pending: Vec::new(),
            fin_seen: FxHashSet::default(),
            ack_counters: FxHashMap::default(),
            next_flush_token: 0,
        }
    }

    /// Append a route. Lookup uses longest-prefix match; insertion order
    /// breaks ties.
    pub fn add_route(&mut self, prefix: AddrPrefix, egress: Vec<IfaceId>) -> &mut Self {
        assert!(!egress.is_empty(), "route needs at least one egress");
        self.routes.push(Route { prefix, egress });
        // A new route can change any memoized lookup.
        self.lpm_cache.clear();
        self
    }

    /// Longest-prefix match over the routing table (uncached).
    fn lpm(&self, dst: Addr) -> Option<usize> {
        self.routes
            .iter()
            .enumerate()
            .filter(|(_, r)| r.prefix.contains(dst))
            .max_by_key(|(_, r)| r.prefix.len())
            .map(|(i, _)| i)
    }

    /// ECMP selection within a matched route.
    fn pick_within(&self, route: usize, pkt: &Packet) -> IfaceId {
        let egress = &self.routes[route].egress;
        if egress.len() == 1 {
            egress[0]
        } else {
            let h = pkt.flow_key().ecmp_hash(self.salt);
            egress[h as usize % egress.len()]
        }
    }

    /// Pick the egress interface for `pkt`, if any route matches.
    pub fn select_egress(&self, pkt: &Packet) -> Option<IfaceId> {
        self.lpm(pkt.dst).map(|i| self.pick_within(i, pkt))
    }

    /// Like [`Router::select_egress`] but memoizing the prefix match per
    /// destination — the forwarding hot path.
    fn select_egress_cached(&mut self, pkt: &Packet) -> Option<IfaceId> {
        let route = match self.lpm_cache.get(&pkt.dst) {
            Some(&cached) => cached,
            None => {
                let computed = self.lpm(pkt.dst);
                self.lpm_cache.insert(pkt.dst, computed);
                computed
            }
        };
        route.map(|i| self.pick_within(i, pkt))
    }

    /// Per-directed-flow sequence deltas for the seq NAT: the forward
    /// delta shifts this flow's sequence space; the reverse delta undoes
    /// the peer direction's shift in the acknowledgment field. Stateless
    /// and salt-derived, so replays are bit-identical.
    fn nat_deltas(&self, pkt: &Packet) -> (u32, u32) {
        let f = pkt.flow_key();
        let fwd = f.ecmp_hash(self.salt ^ SEQNAT_SALT);
        let rev = f.reversed().ecmp_hash(self.salt ^ SEQNAT_SALT);
        (fwd, rev)
    }

    /// Whether the ack thinner drops this pure ACK. Counts eligible ACKs
    /// per directed flow and drops every n-th — unless either direction
    /// of the flow has carried a FIN through this router, in which case
    /// the close handshake's ACKs must all pass.
    fn thin_this_ack(&mut self, pkt: &Packet) -> bool {
        let key = pkt.flow_key();
        if self.fin_seen.contains(&key) || self.fin_seen.contains(&key.reversed()) {
            return false;
        }
        let c = self.ack_counters.entry(key).or_insert(0);
        *c += 1;
        *c % self.ack_thin == 0
    }

    /// Flush one held segment (by position in the pending list).
    fn flush_pending(&mut self, ctx: &mut Ctx<'_>, idx: usize) {
        let (_, held) = self.pending.remove(idx);
        self.forwarded += 1;
        ctx.send(held.egress, held.pkt);
    }

    /// Flush every held segment (coalescer turned off mid-run).
    fn flush_all_pending(&mut self, ctx: &mut Ctx<'_>) {
        while !self.pending.is_empty() {
            self.flush_pending(ctx, 0);
        }
    }

    /// Hold an eligible segment for coalescing, or merge it with the one
    /// already held for its flow. Returns `false` when the segment is not
    /// coalescible and should be forwarded normally.
    fn coalesce(&mut self, ctx: &mut Ctx<'_>, egress: IfaceId, pkt: &Packet) -> bool {
        let p = &pkt.payload[..];
        let eligible = rewrite::has_no_options(p)
            && rewrite::tcp_payload_len(p).is_some_and(|l| l > 0)
            && rewrite::tcp_flags(p).is_some_and(|f| f & 0x06 == 0);
        if !eligible {
            return false;
        }
        let key = pkt.flow_key();
        if let Some(idx) = self.pending.iter().position(|(k, _)| *k == key) {
            let (_, mut held) = self.pending.remove(idx);
            match rewrite::coalesce_pair(&held.pkt.payload, &pkt.payload) {
                Some(merged) => {
                    held.pkt.payload = merged;
                    self.segments_coalesced += 1;
                    self.forwarded += 1;
                    ctx.send(held.egress, held.pkt);
                    return true;
                }
                None => {
                    // Not contiguous: flush the held segment in order,
                    // then treat the newcomer as a fresh candidate.
                    self.forwarded += 1;
                    ctx.send(held.egress, held.pkt);
                }
            }
        }
        if rewrite::tcp_flags(p).is_some_and(|f| f & 0x01 != 0) {
            return false; // never hold a FIN back
        }
        let token = self.next_flush_token;
        self.next_flush_token += 1;
        self.pending.push((
            key,
            PendingSeg {
                pkt: pkt.clone(),
                egress,
                token,
            },
        ));
        ctx.set_timer_after(COALESCE_FLUSH, token);
        true
    }
}

impl Node for Router {
    fn on_packet(&mut self, ctx: &mut Ctx<'_>, in_iface: IfaceId, mut pkt: Packet) {
        if pkt.ttl <= 1 {
            self.ttl_drops += 1;
            return;
        }
        pkt.ttl -= 1;
        if pkt.proto == PROTO_TCP {
            if self.strip_mptcp {
                if let Some((cleaned, n)) = strip_mptcp_options(&pkt.payload) {
                    pkt.payload = cleaned;
                    self.options_stripped += n as u64;
                }
            }
            if self.seq_nat {
                let (fwd, rev) = self.nat_deltas(&pkt);
                if let Some(rewritten) = rewrite::rewrite_seq_ack(&pkt.payload, fwd, rev) {
                    pkt.payload = rewritten;
                    self.seq_rewritten += 1;
                }
            }
            if self.ack_thin > 0 && rewrite::is_pure_ack(&pkt.payload) && self.thin_this_ack(&pkt) {
                self.acks_thinned += 1;
                return;
            }
            if self.ack_thin > 0 && rewrite::tcp_flags(&pkt.payload).is_some_and(|f| f & 0x01 != 0)
            {
                self.fin_seen.insert(pkt.flow_key());
            }
        }
        match self.select_egress_cached(&pkt) {
            Some(egress) => {
                // A route pointing back out of the ingress interface would
                // loop the packet on a point-to-point link; treat as no route.
                if egress == in_iface {
                    self.no_route += 1;
                    return;
                }
                if pkt.proto == PROTO_TCP
                    && self.coalesce_segments
                    && self.coalesce(ctx, egress, &pkt)
                {
                    return;
                }
                if pkt.proto == PROTO_TCP && self.split_segments {
                    if let Some((a, b)) = rewrite::split_segment(&pkt.payload, self.buggy_split) {
                        self.segments_split += 1;
                        self.forwarded += 2;
                        let mut first = pkt.clone();
                        first.payload = a;
                        pkt.payload = b;
                        ctx.send(egress, first);
                        ctx.send(egress, pkt);
                        return;
                    }
                }
                self.forwarded += 1;
                ctx.send(egress, pkt);
            }
            None => {
                self.no_route += 1;
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        // Coalesce flush timer: forward the held segment it guards, if it
        // is still held (merges and toggle-flushes leave stale timers).
        if let Some(idx) = self.pending.iter().position(|(_, h)| h.token == token) {
            self.flush_pending(ctx, idx);
        }
    }

    fn on_command(&mut self, ctx: &mut Ctx<'_>, cmd: &NodeCommand) {
        match cmd {
            NodeCommand::StripMptcp(on) => self.strip_mptcp = *on,
            NodeCommand::SeqNat(on) => self.seq_nat = *on,
            NodeCommand::SplitSegments(on) => self.split_segments = *on,
            NodeCommand::CoalesceSegments(on) => {
                self.coalesce_segments = *on;
                if !*on {
                    self.flush_all_pending(ctx);
                }
            }
            NodeCommand::AckThin(n) => self.ack_thin = *n,
            NodeCommand::FlushState => {}
            NodeCommand::Probe => {} // routers keep no connection state
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::Addr;
    use bytes::Bytes;

    fn pkt_with_ports(dst: Addr, sport: u16, dport: u16) -> Packet {
        let mut payload = Vec::new();
        payload.extend_from_slice(&sport.to_be_bytes());
        payload.extend_from_slice(&dport.to_be_bytes());
        Packet::tcp(Addr::new(10, 0, 0, 1), dst, Bytes::from(payload))
    }

    #[test]
    fn longest_prefix_wins() {
        let mut r = Router::new(0);
        r.add_route("10.0.0.0/8".parse().unwrap(), vec![IfaceId(1)]);
        r.add_route("10.1.0.0/16".parse().unwrap(), vec![IfaceId(2)]);
        let p = pkt_with_ports(Addr::new(10, 1, 2, 3), 1, 2);
        assert_eq!(r.select_egress(&p), Some(IfaceId(2)));
        let p = pkt_with_ports(Addr::new(10, 2, 2, 3), 1, 2);
        assert_eq!(r.select_egress(&p), Some(IfaceId(1)));
    }

    #[test]
    fn no_route_returns_none() {
        let mut r = Router::new(0);
        r.add_route("10.0.0.0/8".parse().unwrap(), vec![IfaceId(1)]);
        let p = pkt_with_ports(Addr::new(192, 168, 0, 1), 1, 2);
        assert_eq!(r.select_egress(&p), None);
    }

    #[test]
    fn ecmp_spreads_flows_and_is_per_flow_stable() {
        let mut r = Router::new(3);
        r.add_route(
            AddrPrefix::DEFAULT,
            vec![IfaceId(0), IfaceId(1), IfaceId(2), IfaceId(3)],
        );
        let dst = Addr::new(10, 9, 9, 9);
        let mut seen = std::collections::HashSet::new();
        for sport in 0..64u16 {
            let p = pkt_with_ports(dst, 40_000 + sport, 80);
            let first = r.select_egress(&p).unwrap();
            // Same flow key always hashes to the same egress.
            assert_eq!(r.select_egress(&p), Some(first));
            seen.insert(first);
        }
        assert_eq!(seen.len(), 4, "64 flows should cover all 4 paths");
    }

    #[test]
    fn cached_lookup_matches_scan_and_survives_route_adds() {
        let mut r = Router::new(5);
        r.add_route("10.0.0.0/8".parse().unwrap(), vec![IfaceId(1)]);
        let p = pkt_with_ports(Addr::new(10, 1, 2, 3), 1, 2);
        assert_eq!(r.select_egress_cached(&p), r.select_egress(&p));
        assert_eq!(r.select_egress_cached(&p), Some(IfaceId(1)));
        // Adding a longer prefix must invalidate the memoized match.
        r.add_route("10.1.0.0/16".parse().unwrap(), vec![IfaceId(2)]);
        assert_eq!(r.select_egress_cached(&p), Some(IfaceId(2)));
        assert_eq!(r.select_egress_cached(&p), r.select_egress(&p));
        // Negative results are memoized too, and stay consistent.
        let miss = pkt_with_ports(Addr::new(192, 168, 0, 1), 1, 2);
        assert_eq!(r.select_egress_cached(&miss), None);
        assert_eq!(r.select_egress_cached(&miss), None);
        r.add_route("0.0.0.0/0".parse().unwrap(), vec![IfaceId(3)]);
        assert_eq!(r.select_egress_cached(&miss), Some(IfaceId(3)));
    }

    #[test]
    fn stripping_router_removes_mptcp_options_from_forwarded_tcp() {
        // Raw TCP header: ports 1/2, data offset 6 words (one 4-byte
        // option block), option = MPTCP kind 30 len 4.
        let mut seg = vec![0u8; 24];
        seg[0..2].copy_from_slice(&1u16.to_be_bytes());
        seg[2..4].copy_from_slice(&2u16.to_be_bytes());
        seg[12] = 6 << 4;
        seg[20..24].copy_from_slice(&[30, 4, 0x20, 0]);
        let pkt = Packet::tcp(
            Addr::new(10, 0, 0, 1),
            Addr::new(10, 1, 0, 1),
            Bytes::from(seg),
        );

        let mut r = Router::new(0);
        r.strip_mptcp = true;
        // Drive through a real simulator so the rewrite happens on the
        // forwarding path, not in isolation.
        let mut sim = crate::Simulator::new(0);
        let rid = sim.add_node(Box::new(r));
        let sink = sim.add_node(Box::new(CollectOne { got: None }));
        let r_in = sim.add_iface(rid, Addr::new(10, 0, 0, 254), "in");
        let r_out = sim.add_iface(rid, Addr::new(10, 1, 0, 254), "out");
        let s_if = sim.add_iface(sink, Addr::new(10, 1, 0, 1), "eth0");
        let src = sim.add_node(Box::new(SendOnce { pkt: Some(pkt) }));
        let src_if = sim.add_iface(src, Addr::new(10, 0, 0, 1), "eth0");
        sim.connect(src_if, r_in, crate::link::LinkCfg::mbps_ms(100, 1));
        sim.connect(r_out, s_if, crate::link::LinkCfg::mbps_ms(100, 1));
        sim.node_mut(rid)
            .as_any_mut()
            .downcast_mut::<Router>()
            .unwrap()
            .add_route("10.1.0.0/16".parse().unwrap(), vec![r_out]);
        sim.run();
        let router = sim.node(rid).as_any().downcast_ref::<Router>().unwrap();
        assert_eq!(router.options_stripped, 1);
        let sink = sim
            .node(sink)
            .as_any()
            .downcast_ref::<CollectOne>()
            .unwrap();
        let got = sink.got.as_ref().expect("forwarded");
        assert_eq!((got.payload[12] >> 4) as usize * 4, 20, "options gone");
        assert_eq!(got.ports(), (1, 2), "ports untouched");
    }

    /// Emits one canned packet at start.
    pub(super) struct SendOnce {
        pub pkt: Option<Packet>,
    }
    impl Node for SendOnce {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            let (iface, _) = ctx.my_ifaces().next().unwrap();
            let pkt = self.pkt.take().unwrap();
            ctx.send(iface, pkt);
        }
        fn on_packet(&mut self, _: &mut Ctx<'_>, _: IfaceId, _: Packet) {}
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    /// Stores the first packet it receives.
    pub(super) struct CollectOne {
        pub got: Option<Packet>,
    }
    impl Node for CollectOne {
        fn on_packet(&mut self, _: &mut Ctx<'_>, _: IfaceId, pkt: Packet) {
            self.got.get_or_insert(pkt);
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    /// Stores every packet it receives.
    struct CollectAll {
        got: Vec<Packet>,
    }
    impl Node for CollectAll {
        fn on_packet(&mut self, _: &mut Ctx<'_>, _: IfaceId, pkt: Packet) {
            self.got.push(pkt);
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    /// Emits a list of canned packets at start, back to back.
    struct SendMany {
        pkts: Vec<Packet>,
    }
    impl Node for SendMany {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            let (iface, _) = ctx.my_ifaces().next().unwrap();
            for pkt in self.pkts.drain(..) {
                ctx.send(iface, pkt);
            }
        }
        fn on_packet(&mut self, _: &mut Ctx<'_>, _: IfaceId, _: Packet) {}
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    /// Option-free data segment from 10.0.0.1 to 10.1.0.1.
    fn data_seg(seq: u32, flags: u8, payload: &[u8]) -> Packet {
        let mut b = vec![0u8; 20];
        b[0..2].copy_from_slice(&40_000u16.to_be_bytes());
        b[2..4].copy_from_slice(&80u16.to_be_bytes());
        b[4..8].copy_from_slice(&seq.to_be_bytes());
        b[8..12].copy_from_slice(&500u32.to_be_bytes());
        b[12] = 5 << 4;
        b[13] = flags;
        b.extend_from_slice(payload);
        Packet::tcp(
            Addr::new(10, 0, 0, 1),
            Addr::new(10, 1, 0, 1),
            Bytes::from(b),
        )
    }

    /// Drive `pkts` through a router configured by `cfg`; returns what
    /// came out the far side plus the router for counter inspection.
    fn forward_through(cfg: impl FnOnce(&mut Router), pkts: Vec<Packet>) -> (Vec<Packet>, Router) {
        let mut r = Router::new(0);
        cfg(&mut r);
        let mut sim = crate::Simulator::new(0);
        let rid = sim.add_node(Box::new(r));
        let sink = sim.add_node(Box::new(CollectAll { got: Vec::new() }));
        let r_in = sim.add_iface(rid, Addr::new(10, 0, 0, 254), "in");
        let r_out = sim.add_iface(rid, Addr::new(10, 1, 0, 254), "out");
        let s_if = sim.add_iface(sink, Addr::new(10, 1, 0, 1), "eth0");
        let src = sim.add_node(Box::new(SendMany { pkts }));
        let src_if = sim.add_iface(src, Addr::new(10, 0, 0, 1), "eth0");
        sim.connect(src_if, r_in, crate::link::LinkCfg::mbps_ms(100, 1));
        sim.connect(r_out, s_if, crate::link::LinkCfg::mbps_ms(100, 1));
        sim.node_mut(rid)
            .as_any_mut()
            .downcast_mut::<Router>()
            .unwrap()
            .add_route("10.1.0.0/16".parse().unwrap(), vec![r_out]);
        sim.run();
        let got = std::mem::take(
            &mut sim
                .node_mut(sink)
                .as_any_mut()
                .downcast_mut::<CollectAll>()
                .unwrap()
                .got,
        );
        let router = sim
            .node_mut(rid)
            .as_any_mut()
            .downcast_mut::<Router>()
            .unwrap();
        let router = std::mem::replace(router, Router::new(0));
        (got, router)
    }

    #[test]
    fn splitting_router_halves_data_segments_on_the_path() {
        let (got, r) = forward_through(
            |r| r.split_segments = true,
            vec![data_seg(1000, 0x18, b"abcdefgh")],
        );
        assert_eq!(r.segments_split, 1);
        assert_eq!(got.len(), 2);
        assert_eq!(&got[0].payload[20..], b"abcd");
        assert_eq!(&got[1].payload[20..], b"efgh");
        let seq1 = u32::from_be_bytes(got[1].payload[4..8].try_into().unwrap());
        assert_eq!(seq1, 1004);
    }

    #[test]
    fn coalescing_router_merges_contiguous_segments() {
        let (got, r) = forward_through(
            |r| r.coalesce_segments = true,
            vec![data_seg(1000, 0x10, b"abcd"), data_seg(1004, 0x18, b"efgh")],
        );
        assert_eq!(r.segments_coalesced, 1);
        assert_eq!(got.len(), 1);
        assert_eq!(&got[0].payload[20..], b"abcdefgh");
    }

    #[test]
    fn coalescing_router_flushes_a_lone_segment_on_its_timer() {
        let (got, r) = forward_through(
            |r| r.coalesce_segments = true,
            vec![data_seg(1000, 0x10, b"abcd")],
        );
        assert_eq!(r.segments_coalesced, 0);
        assert_eq!(got.len(), 1, "flush timer released the held segment");
        assert_eq!(&got[0].payload[20..], b"abcd");
    }

    #[test]
    fn seq_nat_router_shifts_seq_consistently_per_flow() {
        let (got, r) = forward_through(
            |r| r.seq_nat = true,
            vec![data_seg(1000, 0x10, b"ab"), data_seg(1002, 0x10, b"cd")],
        );
        assert_eq!(r.seq_rewritten, 2);
        let s0 = u32::from_be_bytes(got[0].payload[4..8].try_into().unwrap());
        let s1 = u32::from_be_bytes(got[1].payload[4..8].try_into().unwrap());
        assert_ne!(s0, 1000, "ISN shifted");
        assert_eq!(s1.wrapping_sub(s0), 2, "same delta for the whole flow");
    }

    #[test]
    fn ack_thinning_drops_every_nth_but_spares_fin_exchanges() {
        let pure_ack = || data_seg(2000, 0x10, b"");
        let (got, r) = forward_through(
            |r| r.ack_thin = 2,
            vec![pure_ack(), pure_ack(), pure_ack(), pure_ack()],
        );
        assert_eq!(r.acks_thinned, 2, "every 2nd pure ACK dropped");
        assert_eq!(got.len(), 2);
        // After a FIN passes, the same flow's ACKs are exempt.
        let (got, r) = forward_through(
            |r| r.ack_thin = 2,
            vec![
                data_seg(3000, 0x11, b"x"), // FIN|ACK with data
                pure_ack(),
                pure_ack(),
                pure_ack(),
            ],
        );
        assert_eq!(r.acks_thinned, 0, "FIN exchange never thinned");
        assert_eq!(got.len(), 4);
    }

    #[test]
    fn strip_command_toggles_the_flag() {
        use crate::dynamics::NodeCommand;
        let mut sim = crate::Simulator::new(0);
        let rid = sim.add_node(Box::new(Router::new(0)));
        sim.install(
            crate::DynamicsScript::new().at(
                crate::SimTime::from_millis(1),
                crate::DynAction::Command {
                    node: rid,
                    cmd: NodeCommand::StripMptcp(true),
                },
            ),
            crate::InstallPolicy::Sort,
        )
        .unwrap();
        sim.run();
        let r = sim.node(rid).as_any().downcast_ref::<Router>().unwrap();
        assert!(r.strip_mptcp);
    }

    #[test]
    fn different_salt_different_mapping() {
        let mk = |salt| {
            let mut r = Router::new(salt);
            r.add_route(
                AddrPrefix::DEFAULT,
                vec![IfaceId(0), IfaceId(1), IfaceId(2), IfaceId(3)],
            );
            r
        };
        let r1 = mk(1);
        let r2 = mk(2);
        let dst = Addr::new(10, 9, 9, 9);
        let mapping = |r: &Router| -> Vec<_> {
            (0..32u16)
                .map(|s| {
                    r.select_egress(&pkt_with_ports(dst, 40_000 + s, 80))
                        .unwrap()
                })
                .collect()
        };
        assert_ne!(mapping(&r1), mapping(&r2));
    }
}
