//! Routers with longest-prefix-match forwarding and ECMP.
//!
//! A [`Router`] forwards packets between its interfaces. Each route maps a
//! destination prefix to one *or several* egress interfaces; with several,
//! the router picks one by hashing the packet's 5-tuple — flow-level
//! load-balancing exactly as described in §4.4 of the paper ("load-balancing
//! routers compute a hash over the four-tuple to select the path for each
//! flow"). The hash is salted per router so cascaded routers don't make
//! correlated choices.

use std::any::Any;

use crate::addr::{Addr, AddrPrefix};
use crate::dynamics::{strip_mptcp_options, NodeCommand};
use crate::hash::FxHashMap;
use crate::node::{IfaceId, Node};
use crate::packet::{Packet, PROTO_TCP};
use crate::world::Ctx;

/// One routing-table entry.
#[derive(Clone, Debug)]
pub struct Route {
    /// Destination prefix this entry covers.
    pub prefix: AddrPrefix,
    /// Candidate egress interfaces; >1 means ECMP across them.
    pub egress: Vec<IfaceId>,
}

/// A router node.
#[derive(Debug)]
pub struct Router {
    routes: Vec<Route>,
    /// Memoized longest-prefix-match result per destination address. With
    /// per-client routes (the fleet workload installs one /24 per client)
    /// the linear LPM scan would otherwise be an O(routes) cost on every
    /// forwarded packet. Purely a cache: it never changes which route wins,
    /// so trajectories are identical with or without it.
    lpm_cache: FxHashMap<Addr, Option<usize>>,
    salt: u64,
    /// When set, forwarded TCP segments have their MPTCP options (kind 30)
    /// removed — the protocol-normalizing middlebox interference that
    /// forces endpoints into plain-TCP fallback. Toggled by scenarios
    /// directly or via [`NodeCommand::StripMptcp`] in a dynamics script.
    pub strip_mptcp: bool,
    /// MPTCP options removed while [`Router::strip_mptcp`] was on.
    pub options_stripped: u64,
    /// Packets forwarded, for reporting.
    pub forwarded: u64,
    /// Packets dropped for lack of a route.
    pub no_route: u64,
    /// Packets dropped because TTL reached zero.
    pub ttl_drops: u64,
}

impl Router {
    /// A router with the given ECMP hash salt (use the router's index).
    pub fn new(salt: u64) -> Self {
        Router {
            routes: Vec::new(),
            lpm_cache: FxHashMap::default(),
            salt,
            strip_mptcp: false,
            options_stripped: 0,
            forwarded: 0,
            no_route: 0,
            ttl_drops: 0,
        }
    }

    /// Append a route. Lookup uses longest-prefix match; insertion order
    /// breaks ties.
    pub fn add_route(&mut self, prefix: AddrPrefix, egress: Vec<IfaceId>) -> &mut Self {
        assert!(!egress.is_empty(), "route needs at least one egress");
        self.routes.push(Route { prefix, egress });
        // A new route can change any memoized lookup.
        self.lpm_cache.clear();
        self
    }

    /// Longest-prefix match over the routing table (uncached).
    fn lpm(&self, dst: Addr) -> Option<usize> {
        self.routes
            .iter()
            .enumerate()
            .filter(|(_, r)| r.prefix.contains(dst))
            .max_by_key(|(_, r)| r.prefix.len())
            .map(|(i, _)| i)
    }

    /// ECMP selection within a matched route.
    fn pick_within(&self, route: usize, pkt: &Packet) -> IfaceId {
        let egress = &self.routes[route].egress;
        if egress.len() == 1 {
            egress[0]
        } else {
            let h = pkt.flow_key().ecmp_hash(self.salt);
            egress[h as usize % egress.len()]
        }
    }

    /// Pick the egress interface for `pkt`, if any route matches.
    pub fn select_egress(&self, pkt: &Packet) -> Option<IfaceId> {
        self.lpm(pkt.dst).map(|i| self.pick_within(i, pkt))
    }

    /// Like [`Router::select_egress`] but memoizing the prefix match per
    /// destination — the forwarding hot path.
    fn select_egress_cached(&mut self, pkt: &Packet) -> Option<IfaceId> {
        let route = match self.lpm_cache.get(&pkt.dst) {
            Some(&cached) => cached,
            None => {
                let computed = self.lpm(pkt.dst);
                self.lpm_cache.insert(pkt.dst, computed);
                computed
            }
        };
        route.map(|i| self.pick_within(i, pkt))
    }
}

impl Node for Router {
    fn on_packet(&mut self, ctx: &mut Ctx<'_>, in_iface: IfaceId, mut pkt: Packet) {
        if pkt.ttl <= 1 {
            self.ttl_drops += 1;
            return;
        }
        pkt.ttl -= 1;
        if self.strip_mptcp && pkt.proto == PROTO_TCP {
            if let Some((cleaned, n)) = strip_mptcp_options(&pkt.payload) {
                pkt.payload = cleaned;
                self.options_stripped += n as u64;
            }
        }
        match self.select_egress_cached(&pkt) {
            Some(egress) => {
                // A route pointing back out of the ingress interface would
                // loop the packet on a point-to-point link; treat as no route.
                if egress == in_iface {
                    self.no_route += 1;
                    return;
                }
                self.forwarded += 1;
                ctx.send(egress, pkt);
            }
            None => {
                self.no_route += 1;
            }
        }
    }

    fn on_command(&mut self, _ctx: &mut Ctx<'_>, cmd: &NodeCommand) {
        if let NodeCommand::StripMptcp(on) = cmd {
            self.strip_mptcp = *on;
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::Addr;
    use bytes::Bytes;

    fn pkt_with_ports(dst: Addr, sport: u16, dport: u16) -> Packet {
        let mut payload = Vec::new();
        payload.extend_from_slice(&sport.to_be_bytes());
        payload.extend_from_slice(&dport.to_be_bytes());
        Packet::tcp(Addr::new(10, 0, 0, 1), dst, Bytes::from(payload))
    }

    #[test]
    fn longest_prefix_wins() {
        let mut r = Router::new(0);
        r.add_route("10.0.0.0/8".parse().unwrap(), vec![IfaceId(1)]);
        r.add_route("10.1.0.0/16".parse().unwrap(), vec![IfaceId(2)]);
        let p = pkt_with_ports(Addr::new(10, 1, 2, 3), 1, 2);
        assert_eq!(r.select_egress(&p), Some(IfaceId(2)));
        let p = pkt_with_ports(Addr::new(10, 2, 2, 3), 1, 2);
        assert_eq!(r.select_egress(&p), Some(IfaceId(1)));
    }

    #[test]
    fn no_route_returns_none() {
        let mut r = Router::new(0);
        r.add_route("10.0.0.0/8".parse().unwrap(), vec![IfaceId(1)]);
        let p = pkt_with_ports(Addr::new(192, 168, 0, 1), 1, 2);
        assert_eq!(r.select_egress(&p), None);
    }

    #[test]
    fn ecmp_spreads_flows_and_is_per_flow_stable() {
        let mut r = Router::new(3);
        r.add_route(
            AddrPrefix::DEFAULT,
            vec![IfaceId(0), IfaceId(1), IfaceId(2), IfaceId(3)],
        );
        let dst = Addr::new(10, 9, 9, 9);
        let mut seen = std::collections::HashSet::new();
        for sport in 0..64u16 {
            let p = pkt_with_ports(dst, 40_000 + sport, 80);
            let first = r.select_egress(&p).unwrap();
            // Same flow key always hashes to the same egress.
            assert_eq!(r.select_egress(&p), Some(first));
            seen.insert(first);
        }
        assert_eq!(seen.len(), 4, "64 flows should cover all 4 paths");
    }

    #[test]
    fn cached_lookup_matches_scan_and_survives_route_adds() {
        let mut r = Router::new(5);
        r.add_route("10.0.0.0/8".parse().unwrap(), vec![IfaceId(1)]);
        let p = pkt_with_ports(Addr::new(10, 1, 2, 3), 1, 2);
        assert_eq!(r.select_egress_cached(&p), r.select_egress(&p));
        assert_eq!(r.select_egress_cached(&p), Some(IfaceId(1)));
        // Adding a longer prefix must invalidate the memoized match.
        r.add_route("10.1.0.0/16".parse().unwrap(), vec![IfaceId(2)]);
        assert_eq!(r.select_egress_cached(&p), Some(IfaceId(2)));
        assert_eq!(r.select_egress_cached(&p), r.select_egress(&p));
        // Negative results are memoized too, and stay consistent.
        let miss = pkt_with_ports(Addr::new(192, 168, 0, 1), 1, 2);
        assert_eq!(r.select_egress_cached(&miss), None);
        assert_eq!(r.select_egress_cached(&miss), None);
        r.add_route("0.0.0.0/0".parse().unwrap(), vec![IfaceId(3)]);
        assert_eq!(r.select_egress_cached(&miss), Some(IfaceId(3)));
    }

    #[test]
    fn stripping_router_removes_mptcp_options_from_forwarded_tcp() {
        // Raw TCP header: ports 1/2, data offset 6 words (one 4-byte
        // option block), option = MPTCP kind 30 len 4.
        let mut seg = vec![0u8; 24];
        seg[0..2].copy_from_slice(&1u16.to_be_bytes());
        seg[2..4].copy_from_slice(&2u16.to_be_bytes());
        seg[12] = 6 << 4;
        seg[20..24].copy_from_slice(&[30, 4, 0x20, 0]);
        let pkt = Packet::tcp(
            Addr::new(10, 0, 0, 1),
            Addr::new(10, 1, 0, 1),
            Bytes::from(seg),
        );

        let mut r = Router::new(0);
        r.strip_mptcp = true;
        // Drive through a real simulator so the rewrite happens on the
        // forwarding path, not in isolation.
        let mut sim = crate::Simulator::new(0);
        let rid = sim.add_node(Box::new(r));
        let sink = sim.add_node(Box::new(CollectOne { got: None }));
        let r_in = sim.add_iface(rid, Addr::new(10, 0, 0, 254), "in");
        let r_out = sim.add_iface(rid, Addr::new(10, 1, 0, 254), "out");
        let s_if = sim.add_iface(sink, Addr::new(10, 1, 0, 1), "eth0");
        let src = sim.add_node(Box::new(SendOnce { pkt: Some(pkt) }));
        let src_if = sim.add_iface(src, Addr::new(10, 0, 0, 1), "eth0");
        sim.connect(src_if, r_in, crate::link::LinkCfg::mbps_ms(100, 1));
        sim.connect(r_out, s_if, crate::link::LinkCfg::mbps_ms(100, 1));
        sim.node_mut(rid)
            .as_any_mut()
            .downcast_mut::<Router>()
            .unwrap()
            .add_route("10.1.0.0/16".parse().unwrap(), vec![r_out]);
        sim.run();
        let router = sim.node(rid).as_any().downcast_ref::<Router>().unwrap();
        assert_eq!(router.options_stripped, 1);
        let sink = sim
            .node(sink)
            .as_any()
            .downcast_ref::<CollectOne>()
            .unwrap();
        let got = sink.got.as_ref().expect("forwarded");
        assert_eq!((got.payload[12] >> 4) as usize * 4, 20, "options gone");
        assert_eq!(got.ports(), (1, 2), "ports untouched");
    }

    /// Emits one canned packet at start.
    pub(super) struct SendOnce {
        pub pkt: Option<Packet>,
    }
    impl Node for SendOnce {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            let (iface, _) = ctx.my_ifaces().next().unwrap();
            let pkt = self.pkt.take().unwrap();
            ctx.send(iface, pkt);
        }
        fn on_packet(&mut self, _: &mut Ctx<'_>, _: IfaceId, _: Packet) {}
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    /// Stores the first packet it receives.
    pub(super) struct CollectOne {
        pub got: Option<Packet>,
    }
    impl Node for CollectOne {
        fn on_packet(&mut self, _: &mut Ctx<'_>, _: IfaceId, pkt: Packet) {
            self.got.get_or_insert(pkt);
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    #[test]
    fn strip_command_toggles_the_flag() {
        use crate::dynamics::NodeCommand;
        let mut sim = crate::Simulator::new(0);
        let rid = sim.add_node(Box::new(Router::new(0)));
        sim.install_dynamics(crate::DynamicsScript::new().at(
            crate::SimTime::from_millis(1),
            crate::DynAction::Command {
                node: rid,
                cmd: NodeCommand::StripMptcp(true),
            },
        ));
        sim.run();
        let r = sim.node(rid).as_any().downcast_ref::<Router>().unwrap();
        assert!(r.strip_mptcp);
    }

    #[test]
    fn different_salt_different_mapping() {
        let mk = |salt| {
            let mut r = Router::new(salt);
            r.add_route(
                AddrPrefix::DEFAULT,
                vec![IfaceId(0), IfaceId(1), IfaceId(2), IfaceId(3)],
            );
            r
        };
        let r1 = mk(1);
        let r2 = mk(2);
        let dst = Addr::new(10, 9, 9, 9);
        let mapping = |r: &Router| -> Vec<_> {
            (0..32u16)
                .map(|s| {
                    r.select_egress(&pkt_with_ports(dst, 40_000 + s, 80))
                        .unwrap()
                })
                .collect()
        };
        assert_ne!(mapping(&r1), mapping(&r2));
    }
}
