//! The protocol-invariant oracle: an always-on wire-level checker.
//!
//! [`Oracle`] is a *composable* [`TraceSink`]: install it alone, or let it
//! wrap the sink a scenario already uses ([`Oracle::wrapping`]) — every
//! trace event is checked first and then forwarded unchanged. The oracle is
//! a pure observer (no RNG use, no state the simulation can see), so
//! attaching it never perturbs a trajectory; per-seed runs stay
//! bit-identical with or without it.
//!
//! Checked online, on every event:
//!
//! * **time monotonicity** — trace timestamps never decrease (the calendar
//!   event queue's ordering contract, observed end to end);
//! * **per-link packet conservation** — per link, transmissions never
//!   exceed admissions, and deliveries plus post-serialization drops never
//!   exceed transmissions; at an [`StopReason::Idle`] end of run the
//!   inequalities must close to equalities (no packet vanishes or is
//!   minted inside a link);
//! * **TCP parseability** — every TCP packet handed to an interface
//!   carries a structurally valid TCP segment (header, data offset, option
//!   TLV walk). This is the check that catches a middlebox rewriter
//!   corrupting segments it should normalize;
//! * **MPTCP option sanity** — kind-30 options parse (known subtype,
//!   plausible length), a DSS mapping covers exactly the segment's payload
//!   (RFC 6824 §3.3: our endpoints map whole segments), and `MP_CAPABLE`
//!   keys are unique across connections (key collision ⇒ token collision ⇒
//!   mis-demuxed `MP_JOIN`s — the token-uniqueness requirement of §3.1).
//!
//! Violations carry the simulated time; the run harness
//! (`smapp_pm::verify`) prefixes the `(scenario, seed)` pair so every
//! report is a replayable triple. End-host invariants (byte-stream
//! integrity above the meta socket, DSS mapping coverage at the receiver,
//! buffer/window bounds) live in the `smapp-mptcp` connection taps; this
//! module checks everything observable on the wire.

use crate::coverage::{wire, Coverage};
use crate::hash::FxHashMap;
use crate::packet::{Packet, PROTO_ICMP, PROTO_TCP};
use crate::time::SimTime;
use crate::trace::{TraceEvent, TraceKind, TraceSink};
use crate::world::{RunSummary, StopReason};
use crate::DropReason;

/// One invariant violation, timestamped for replay.
#[derive(Clone, Debug)]
pub struct Violation {
    /// Simulated time of the offending event (end-of-run checks use the
    /// run's final time).
    pub at: SimTime,
    /// Short invariant identifier (`time-monotonicity`,
    /// `link-conservation`, `tcp-parse`, `dss-mapping`, `token-uniqueness`).
    pub invariant: &'static str,
    /// Human-readable specifics.
    pub detail: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "t={} [{}] {}", self.at, self.invariant, self.detail)
    }
}

/// Per-link conservation counters (both directions folded together; the
/// invariants hold per direction, hence also for the sum).
#[derive(Clone, Copy, Debug, Default)]
struct LinkFlow {
    enqueued: u64,
    tx_started: u64,
    delivered: u64,
    /// Drops after serialization started (random loss, iface down at
    /// delivery) — these consume a transmission.
    dropped_after_tx: u64,
    /// Packets evicted from a queue whose capacity shrank under
    /// [`crate::link::Eviction::DropNewest`] — enqueued but never
    /// serialized.
    evicted: u64,
}

/// Cap on stored violations; a broken build can violate millions of times
/// and the first few are what matter.
const MAX_VIOLATIONS: usize = 64;

/// The wire-level invariant checker. See the module docs.
pub struct Oracle {
    inner: Option<Box<dyn TraceSink>>,
    last_at: SimTime,
    links: Vec<LinkFlow>,
    /// MP_CAPABLE sender keys seen on initial SYNs, with the flow that
    /// introduced each: `(src, dst, src_port, dst_port)` packed to a u64
    /// pair for cheap equality.
    capable_keys: FxHashMap<u64, (u32, u32, u16, u16)>,
    violations: Vec<Violation>,
    /// Violations beyond the storage cap (counted, not stored).
    pub suppressed: u64,
    /// Trace events observed (diagnostics).
    pub events_seen: u64,
    /// Wire-feature coverage observed this run (bits in the
    /// [`crate::coverage::wire`] range). Like every other oracle field this
    /// is write-only from the simulation's perspective: recording coverage
    /// never changes a trajectory.
    pub coverage: Coverage,
}

impl Oracle {
    /// A standalone oracle (no inner sink).
    pub fn new() -> Self {
        Oracle {
            inner: None,
            last_at: SimTime::ZERO,
            links: Vec::new(),
            capable_keys: FxHashMap::default(),
            violations: Vec::new(),
            suppressed: 0,
            events_seen: 0,
            coverage: Coverage::new(),
        }
    }

    /// An oracle wrapping an existing sink: events are checked, then
    /// forwarded to `inner` unchanged.
    pub fn wrapping(inner: Box<dyn TraceSink>) -> Box<Oracle> {
        let mut o = Oracle::new();
        o.inner = Some(inner);
        Box::new(o)
    }

    /// The violations recorded so far.
    pub fn violations(&self) -> &[Violation] {
        &self.violations
    }

    /// True when no invariant has been violated.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty() && self.suppressed == 0
    }

    /// Remove and return the wrapped inner sink, if any.
    pub fn take_inner(&mut self) -> Option<Box<dyn TraceSink>> {
        self.inner.take()
    }

    /// Drain the recorded violations (leaves the oracle installed-safe).
    pub fn take_violations(&mut self) -> Vec<Violation> {
        std::mem::take(&mut self.violations)
    }

    /// Run the end-of-run checks: per-link conservation must close to
    /// equality when the run ended with a drained queue ([`StopReason::Idle`];
    /// other stop reasons legitimately leave packets in flight).
    pub fn finish(&mut self, summary: &RunSummary) {
        if summary.reason != StopReason::Idle {
            return;
        }
        let at = summary.ended_at;
        for i in 0..self.links.len() {
            let l = self.links[i];
            if l.enqueued != l.tx_started + l.evicted
                || l.tx_started != l.delivered + l.dropped_after_tx
            {
                let detail = format!(
                    "link {i}: enqueued={} tx_started={} delivered={} dropped_after_tx={} \
                     evicted={} after an idle (drained) end of run",
                    l.enqueued, l.tx_started, l.delivered, l.dropped_after_tx, l.evicted
                );
                self.violate(at, "link-conservation", detail);
            }
        }
    }

    fn violate(&mut self, at: SimTime, invariant: &'static str, detail: String) {
        self.coverage.set(wire::VIOLATION);
        if self.violations.len() >= MAX_VIOLATIONS {
            self.suppressed += 1;
            return;
        }
        self.violations.push(Violation {
            at,
            invariant,
            detail,
        });
    }

    fn link_mut(&mut self, idx: usize) -> &mut LinkFlow {
        if self.links.len() <= idx {
            self.links.resize(idx + 1, LinkFlow::default());
        }
        &mut self.links[idx]
    }

    /// Structural checks on an outgoing TCP packet's wire bytes.
    /// Allocation-free on the (overwhelmingly common) clean path: the
    /// option walk hands each kind-30 body to [`Oracle::check_mptcp_opt`]
    /// without collecting anything.
    fn check_tcp(&mut self, at: SimTime, pkt: &Packet) {
        const FIXED: usize = 20;
        let b = &pkt.payload[..];
        let parse_err = |o: &mut Oracle, e: &'static str| {
            o.violate(
                at,
                "tcp-parse",
                format!("{} -> {}: {e} (len {})", pkt.src, pkt.dst, b.len()),
            );
        };
        if b.len() < FIXED {
            return parse_err(self, "segment shorter than the fixed TCP header");
        }
        let data_offset = (b[12] >> 4) as usize * 4;
        if data_offset < FIXED || data_offset > b.len() {
            return parse_err(self, "bad data offset");
        }
        let seg = TcpWire {
            src_port: u16::from_be_bytes([b[0], b[1]]),
            dst_port: u16::from_be_bytes([b[2], b[3]]),
            syn: b[13] & 0x02 != 0,
            ack: b[13] & 0x10 != 0,
            payload_len: b.len() - data_offset,
        };
        let (fin, rst) = (b[13] & 0x01 != 0, b[13] & 0x04 != 0);
        let cov = &mut self.coverage;
        match (seg.syn, seg.ack) {
            (true, false) => cov.set(wire::SYN),
            (true, true) => cov.set(wire::SYN_ACK),
            _ => {}
        }
        if fin {
            cov.set(wire::FIN);
        }
        if rst {
            cov.set(wire::RST);
        }
        if seg.payload_len > 0 {
            cov.set(if fin { wire::DATA_FIN } else { wire::DATA });
        } else if !seg.syn && !fin && !rst && seg.ack {
            cov.set(wire::PURE_ACK);
        }
        if data_offset == FIXED && !seg.syn {
            cov.set(wire::NO_OPTIONS);
        }
        let mut i = FIXED;
        while i < data_offset {
            match b[i] {
                0 => break,
                1 => i += 1,
                kind => {
                    if i + 1 >= data_offset {
                        return parse_err(self, "truncated option TLV");
                    }
                    let len = b[i + 1] as usize;
                    if len < 2 || i + len > data_offset {
                        return parse_err(self, "bad option length");
                    }
                    if kind == crate::dynamics::OPT_KIND_MPTCP {
                        self.check_mptcp_opt(at, pkt, &seg, &b[i + 2..i + len]);
                    }
                    i += len;
                }
            }
        }
    }

    /// Check one kind-30 option body against `seg`'s context.
    fn check_mptcp_opt(&mut self, at: SimTime, pkt: &Packet, seg: &TcpWire, body: &[u8]) {
        match parse_mptcp(body) {
            Err(e) => self.violate(
                at,
                "mptcp-parse",
                format!("{} -> {}: {e}", pkt.src, pkt.dst),
            ),
            Ok(MpWire::Capable { key }) => {
                self.coverage.set(if seg.syn && !seg.ack {
                    wire::MP_CAPABLE_SYN
                } else {
                    wire::MP_CAPABLE_ACK
                });
                // Key uniqueness is only meaningfully asserted on the
                // initial SYN (retransmits repeat the key on the same flow).
                if seg.syn && !seg.ack {
                    let fk = (pkt.src.0, pkt.dst.0, seg.src_port, seg.dst_port);
                    match self.capable_keys.get(&key) {
                        Some(prev) if *prev != fk => {
                            let detail = format!(
                                "MP_CAPABLE key {key:016x} reused by flow {} -> {} \
                                 (first seen on another flow): token collision across \
                                 connections",
                                pkt.src, pkt.dst
                            );
                            self.violate(at, "token-uniqueness", detail);
                        }
                        Some(_) => {}
                        None => {
                            self.capable_keys.insert(key, fk);
                        }
                    }
                }
            }
            Ok(MpWire::Join) => self.coverage.set(wire::MP_JOIN),
            Ok(MpWire::Dss { map_len: None }) => self.coverage.set(wire::DSS_ACK_ONLY),
            Ok(MpWire::Dss { map_len: Some(len) }) => {
                self.coverage.set(wire::DSS_MAP);
                if len != 0 && len as usize != seg.payload_len {
                    self.violate(
                        at,
                        "dss-mapping",
                        format!(
                            "{} -> {}: DSS mapping len {} != payload len {}",
                            pkt.src, pkt.dst, len, seg.payload_len
                        ),
                    );
                }
            }
            Ok(MpWire::Other) => self.coverage.set(wire::MP_OTHER),
        }
    }
}

impl Default for Oracle {
    fn default() -> Self {
        Self::new()
    }
}

impl TraceSink for Oracle {
    fn record(&mut self, ev: &TraceEvent<'_>) {
        self.events_seen += 1;
        if ev.at < self.last_at {
            let detail = format!(
                "trace time went backwards: {} after {}",
                ev.at, self.last_at
            );
            self.violate(ev.at, "time-monotonicity", detail);
        } else {
            self.last_at = ev.at;
        }
        match ev.kind {
            TraceKind::Send { .. } => {
                if ev.pkt.proto == PROTO_TCP {
                    self.check_tcp(ev.at, ev.pkt);
                } else if ev.pkt.proto == PROTO_ICMP {
                    self.coverage.set(wire::ICMP);
                }
            }
            TraceKind::Enqueue { link, .. } => {
                self.link_mut(link.0).enqueued += 1;
            }
            TraceKind::TxStart { link, .. } => {
                let l = self.link_mut(link.0);
                l.tx_started += 1;
                if l.tx_started > l.enqueued {
                    let (tx, enq) = (l.tx_started, l.enqueued);
                    self.violate(
                        ev.at,
                        "link-conservation",
                        format!("link {}: tx_started {tx} > enqueued {enq}", link.0),
                    );
                }
            }
            TraceKind::Deliver { link, .. } => {
                let l = self.link_mut(link.0);
                l.delivered += 1;
                if l.delivered + l.dropped_after_tx > l.tx_started {
                    let (d, dr, tx) = (l.delivered, l.dropped_after_tx, l.tx_started);
                    self.violate(
                        ev.at,
                        "link-conservation",
                        format!(
                            "link {}: delivered {d} + dropped {dr} > tx_started {tx}",
                            link.0
                        ),
                    );
                }
            }
            TraceKind::Drop { link, reason } => {
                self.coverage.set(match reason {
                    DropReason::Random => wire::DROP_RANDOM,
                    DropReason::IfaceDown => wire::DROP_IFACE_DOWN,
                    DropReason::QueueFull | DropReason::Evicted => wire::DROP_QUEUE_FULL,
                    _ => wire::DROP_OTHER,
                });
                // An evicted packet was enqueued but will never start
                // serialization; it leaves the conservation ledger here.
                if let Some(link) = link {
                    if reason == DropReason::Evicted {
                        let l = self.link_mut(link.0);
                        l.evicted += 1;
                        if l.tx_started + l.evicted > l.enqueued {
                            let (tx, evd, enq) = (l.tx_started, l.evicted, l.enqueued);
                            self.violate(
                                ev.at,
                                "link-conservation",
                                format!(
                                    "link {}: tx_started {tx} + evicted {evd} > enqueued {enq}",
                                    link.0
                                ),
                            );
                        }
                    }
                }
                // QueueFull happens before admission, IfaceDown/NoRoute at
                // the sending host before any link — only drops after
                // serialization started consume a transmission.
                if let Some(link) = link {
                    if matches!(reason, DropReason::Random | DropReason::IfaceDown) {
                        let l = self.link_mut(link.0);
                        l.dropped_after_tx += 1;
                        if l.delivered + l.dropped_after_tx > l.tx_started {
                            let (d, dr, tx) = (l.delivered, l.dropped_after_tx, l.tx_started);
                            self.violate(
                                ev.at,
                                "link-conservation",
                                format!(
                                    "link {}: delivered {d} + dropped {dr} > tx_started {tx}",
                                    link.0
                                ),
                            );
                        }
                    }
                }
            }
        }
        if let Some(inner) = self.inner.as_mut() {
            inner.record(ev);
        }
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

// ---------------------------------------------------------------------
// Minimal wire parsing (hand-rolled; `smapp-tcp` sits *above* this crate,
// so like the middlebox rewriter in `dynamics`, the oracle reads raw
// bytes).
// ---------------------------------------------------------------------

/// What the oracle extracts from one MPTCP (kind-30) option.
enum MpWire {
    /// `MP_CAPABLE` carrying the sender's key (SYN / SYN-ACK form).
    Capable { key: u64 },
    /// `MP_JOIN` in any of its three lengths.
    Join,
    /// DSS with the mapping length when a mapping is present.
    Dss { map_len: Option<u16> },
    /// Any other valid subtype.
    Other,
}

/// Context of the segment an option was found in.
struct TcpWire {
    src_port: u16,
    dst_port: u16,
    syn: bool,
    ack: bool,
    payload_len: usize,
}

/// Parse one kind-30 option body far enough for the oracle's checks.
fn parse_mptcp(p: &[u8]) -> Result<MpWire, &'static str> {
    if p.is_empty() {
        return Err("empty MPTCP option");
    }
    match p[0] >> 4 {
        // MP_CAPABLE: 10 (one key) or 18 (both keys) bytes.
        0x0 => match p.len() {
            10 | 18 => Ok(MpWire::Capable {
                key: u64::from_be_bytes(p[2..10].try_into().expect("length checked")),
            }),
            _ => Err("bad MP_CAPABLE length"),
        },
        // MP_JOIN: SYN (10), SYN/ACK (14), third ACK (22).
        0x1 => match p.len() {
            10 | 14 | 22 => Ok(MpWire::Join),
            _ => Err("bad MP_JOIN length"),
        },
        // DSS: flags select 4/8-byte ack and mapping presence.
        0x2 => {
            if p.len() < 2 {
                return Err("truncated DSS");
            }
            let flags = p[1];
            let mut i = 2usize;
            if flags & 0x01 != 0 {
                i += if flags & 0x02 != 0 { 8 } else { 4 };
            }
            let mut map_len = None;
            if flags & 0x04 != 0 {
                i += if flags & 0x08 != 0 { 8 } else { 4 }; // DSN
                i += 4; // SSN
                if p.len() < i + 2 {
                    return Err("truncated DSS mapping");
                }
                map_len = Some(u16::from_be_bytes([p[i], p[i + 1]]));
                i += 2;
            }
            if p.len() < i {
                return Err("truncated DSS");
            }
            Ok(MpWire::Dss { map_len })
        }
        // ADD_ADDR, REMOVE_ADDR, MP_PRIO, MP_FAIL, MP_FASTCLOSE.
        0x3..=0x7 => Ok(MpWire::Other),
        _ => Err("unknown MPTCP subtype"),
    }
}

/// Outcome of [`conclude`]: the wire-level violations plus whatever inner
/// sink the oracle wrapped (handed back so scenarios can read their own
/// collected data).
pub struct OracleOutcome {
    /// Violations, in event order.
    pub violations: Vec<Violation>,
    /// The wrapped sink (or the raw sink when no oracle was installed).
    pub inner: Option<Box<dyn TraceSink>>,
    /// Whether an oracle was actually installed and checked.
    pub checked: bool,
    /// Violations beyond the storage cap.
    pub suppressed: u64,
    /// Wire-feature coverage the oracle observed (empty when no oracle
    /// was installed).
    pub coverage: Coverage,
}

/// Take the trace sink out of `core`, run the oracle's end-of-run checks,
/// and return the outcome. A non-oracle sink is handed back untouched with
/// `checked == false`.
pub fn conclude(core: &mut crate::world::SimCore, summary: &RunSummary) -> OracleOutcome {
    let mut out = OracleOutcome {
        violations: Vec::new(),
        inner: None,
        checked: false,
        suppressed: 0,
        coverage: Coverage::new(),
    };
    let Some(mut sink) = core.take_trace() else {
        return out;
    };
    match sink.as_any_mut().downcast_mut::<Oracle>() {
        Some(o) => {
            o.finish(summary);
            out.violations = o.take_violations();
            out.suppressed = o.suppressed;
            out.coverage = o.coverage;
            out.inner = o.take_inner();
            out.checked = true;
        }
        None => out.inner = Some(sink),
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::Addr;
    use crate::link::{Dir, LinkId};
    use crate::node::{IfaceId, NodeId};
    use bytes::Bytes;

    fn ev(at_ms: u64, kind: TraceKind, pkt: &Packet) -> TraceEvent<'_> {
        TraceEvent {
            at: SimTime::from_millis(at_ms),
            kind,
            pkt,
        }
    }

    fn tcp_pkt(payload: Vec<u8>) -> Packet {
        Packet::tcp(
            Addr::new(10, 0, 0, 1),
            Addr::new(10, 0, 0, 2),
            Bytes::from(payload),
        )
    }

    /// A minimal valid TCP header with the given flags and options.
    fn raw_tcp(flags: u8, options: &[u8], payload: &[u8]) -> Vec<u8> {
        assert_eq!(options.len() % 4, 0);
        let mut b = vec![0u8; 20];
        b[0..2].copy_from_slice(&40_000u16.to_be_bytes());
        b[2..4].copy_from_slice(&80u16.to_be_bytes());
        b[12] = (((20 + options.len()) / 4) as u8) << 4;
        b[13] = flags;
        b.extend_from_slice(options);
        b.extend_from_slice(payload);
        b
    }

    #[test]
    fn clean_link_lifecycle_is_clean() {
        let mut o = Oracle::new();
        let p = tcp_pkt(raw_tcp(0x10, &[], b"hi"));
        let link = LinkId(0);
        o.record(&ev(
            1,
            TraceKind::Send {
                node: NodeId(0),
                iface: IfaceId(0),
            },
            &p,
        ));
        o.record(&ev(
            1,
            TraceKind::Enqueue {
                link,
                dir: Dir::AtoB,
            },
            &p,
        ));
        o.record(&ev(
            1,
            TraceKind::TxStart {
                link,
                dir: Dir::AtoB,
            },
            &p,
        ));
        o.record(&ev(
            2,
            TraceKind::Deliver {
                link,
                iface: IfaceId(1),
                node: NodeId(1),
            },
            &p,
        ));
        o.finish(&RunSummary {
            reason: StopReason::Idle,
            ended_at: SimTime::from_millis(2),
            events: 4,
            peak_queue: 1,
        });
        assert!(o.is_clean(), "{:?}", o.violations());
    }

    #[test]
    fn delivery_without_transmission_is_flagged() {
        let mut o = Oracle::new();
        let p = tcp_pkt(raw_tcp(0x10, &[], b""));
        let link = LinkId(3);
        o.record(&ev(
            1,
            TraceKind::Deliver {
                link,
                iface: IfaceId(1),
                node: NodeId(1),
            },
            &p,
        ));
        assert_eq!(o.violations()[0].invariant, "link-conservation");
    }

    #[test]
    fn idle_end_with_leftover_packets_is_flagged() {
        let mut o = Oracle::new();
        let p = tcp_pkt(raw_tcp(0x10, &[], b""));
        let link = LinkId(0);
        o.record(&ev(
            1,
            TraceKind::Enqueue {
                link,
                dir: Dir::AtoB,
            },
            &p,
        ));
        o.finish(&RunSummary {
            reason: StopReason::Idle,
            ended_at: SimTime::from_millis(5),
            events: 1,
            peak_queue: 1,
        });
        assert!(!o.is_clean());
        // A horizon stop with the same counters is fine (packet in flight).
        let mut o2 = Oracle::new();
        o2.record(&ev(
            1,
            TraceKind::Enqueue {
                link,
                dir: Dir::AtoB,
            },
            &p,
        ));
        o2.finish(&RunSummary {
            reason: StopReason::Horizon,
            ended_at: SimTime::from_millis(5),
            events: 1,
            peak_queue: 1,
        });
        assert!(o2.is_clean());
    }

    #[test]
    fn time_regression_is_flagged() {
        let mut o = Oracle::new();
        let p = tcp_pkt(raw_tcp(0x10, &[], b""));
        o.record(&ev(
            5,
            TraceKind::Send {
                node: NodeId(0),
                iface: IfaceId(0),
            },
            &p,
        ));
        o.record(&ev(
            3,
            TraceKind::Send {
                node: NodeId(0),
                iface: IfaceId(0),
            },
            &p,
        ));
        assert_eq!(o.violations()[0].invariant, "time-monotonicity");
    }

    #[test]
    fn corrupt_tcp_on_the_wire_is_flagged() {
        let mut o = Oracle::new();
        let mut raw = raw_tcp(0x10, &[], b"x");
        raw[12] = 0xF0; // data offset 60 > len
        let p = tcp_pkt(raw);
        o.record(&ev(
            1,
            TraceKind::Send {
                node: NodeId(0),
                iface: IfaceId(0),
            },
            &p,
        ));
        assert_eq!(o.violations()[0].invariant, "tcp-parse");
    }

    #[test]
    fn dss_mapping_must_cover_payload() {
        // DSS with 8-byte ack + mapping claiming 5 bytes over a 2-byte
        // payload. Body: subtype/flags + ack(8) + dsn(8) + ssn(4) + len(2).
        let mut body = vec![0x20, 0x0F];
        body.extend_from_slice(&[0; 8]); // data ack
        body.extend_from_slice(&[0; 8]); // dsn
        body.extend_from_slice(&[0; 4]); // ssn
        body.extend_from_slice(&5u16.to_be_bytes());
        let mut opts = vec![30, (2 + body.len()) as u8];
        opts.extend_from_slice(&body);
        while opts.len() % 4 != 0 {
            opts.push(1);
        }
        let p = tcp_pkt(raw_tcp(0x18, &opts, b"hi"));
        let mut o = Oracle::new();
        o.record(&ev(
            1,
            TraceKind::Send {
                node: NodeId(0),
                iface: IfaceId(0),
            },
            &p,
        ));
        assert_eq!(o.violations()[0].invariant, "dss-mapping");
    }

    #[test]
    fn capable_key_reuse_across_flows_is_flagged() {
        let mk = |src: Addr| {
            // MP_CAPABLE SYN body: subtype 0, flags, key (8) = 10 bytes.
            let mut body = vec![0x00, 0x01];
            body.extend_from_slice(&0xDEAD_BEEF_u64.to_be_bytes());
            let mut opts = vec![30, 12];
            opts.extend_from_slice(&body); // 12 bytes: already 4-aligned
            let mut p = tcp_pkt(raw_tcp(0x02, &opts, b""));
            p.src = src;
            p
        };
        let mut o = Oracle::new();
        let p1 = mk(Addr::new(10, 0, 0, 1));
        let p2 = mk(Addr::new(10, 0, 0, 7));
        o.record(&ev(
            1,
            TraceKind::Send {
                node: NodeId(0),
                iface: IfaceId(0),
            },
            &p1,
        ));
        // Retransmit on the same flow: fine.
        o.record(&ev(
            2,
            TraceKind::Send {
                node: NodeId(0),
                iface: IfaceId(0),
            },
            &p1,
        ));
        assert!(o.is_clean());
        o.record(&ev(
            3,
            TraceKind::Send {
                node: NodeId(2),
                iface: IfaceId(2),
            },
            &p2,
        ));
        assert_eq!(o.violations()[0].invariant, "token-uniqueness");
    }

    #[test]
    fn coverage_bits_track_wire_features() {
        let mut o = Oracle::new();
        let send = TraceKind::Send {
            node: NodeId(0),
            iface: IfaceId(0),
        };
        // SYN, then a pure ACK, then data+FIN with no options.
        o.record(&ev(1, send, &tcp_pkt(raw_tcp(0x02, &[], b""))));
        o.record(&ev(2, send, &tcp_pkt(raw_tcp(0x10, &[], b""))));
        o.record(&ev(3, send, &tcp_pkt(raw_tcp(0x11, &[], b"xy"))));
        let c = o.coverage;
        assert!(c.get(crate::coverage::wire::SYN));
        assert!(c.get(crate::coverage::wire::PURE_ACK));
        assert!(c.get(crate::coverage::wire::DATA_FIN));
        assert!(c.get(crate::coverage::wire::FIN));
        assert!(c.get(crate::coverage::wire::NO_OPTIONS));
        assert!(!c.get(crate::coverage::wire::SYN_ACK));
        assert!(!c.get(crate::coverage::wire::RST));
        assert!(!c.get(crate::coverage::wire::VIOLATION));
        assert!(o.is_clean());
        // Identical replay ⇒ identical bitmap.
        let mut o2 = Oracle::new();
        o2.record(&ev(1, send, &tcp_pkt(raw_tcp(0x02, &[], b""))));
        o2.record(&ev(2, send, &tcp_pkt(raw_tcp(0x10, &[], b""))));
        o2.record(&ev(3, send, &tcp_pkt(raw_tcp(0x11, &[], b"xy"))));
        assert_eq!(o2.coverage, c);
    }

    #[test]
    fn violations_set_the_violation_coverage_bit() {
        let mut o = Oracle::new();
        let mut raw = raw_tcp(0x10, &[], b"x");
        raw[12] = 0xF0;
        o.record(&ev(
            1,
            TraceKind::Send {
                node: NodeId(0),
                iface: IfaceId(0),
            },
            &tcp_pkt(raw),
        ));
        assert!(o.coverage.get(crate::coverage::wire::VIOLATION));
    }

    #[test]
    fn wrapping_forwards_to_inner() {
        let inner = crate::trace::CollectorSink::with_cap(0);
        let mut o = Oracle::wrapping(Box::new(inner));
        let p = tcp_pkt(raw_tcp(0x10, &[], b""));
        o.record(&ev(
            1,
            TraceKind::Send {
                node: NodeId(0),
                iface: IfaceId(0),
            },
            &p,
        ));
        let inner = o.take_inner().unwrap();
        let c = inner
            .as_any()
            .downcast_ref::<crate::trace::CollectorSink>()
            .unwrap();
        assert_eq!(c.events.len(), 1);
    }
}
